#!/usr/bin/env bash
# Runs the tier-1 scheduler benchmarks and records them as JSON.
#
#   scripts/bench.sh                 # full run: -benchtime 3x -count 3 -> BENCH_sched.json
#   BENCHTIME=1x COUNT=1 scripts/bench.sh   # CI smoke
#
# The sched microbenchmarks cover all three policies on the campus trace
# plus a 10x synthetic trace, and the *Naive variants run the reference
# oracle so the optimized-vs-naive speedup is recorded in the same file.
# -benchmem is always on: bytes_per_op/allocs_per_op in the JSON carry
# the slice-vs-columnar memory comparison (BenchmarkSimulateFeed10x).
#
# A second file, BENCH_incr.json, records the Merkle stage cache:
# cold (fill) vs warm (restore every stage) vs policy-change (one
# late-DAG parameter changed, only sim-policy recomputes) on the
# BenchmarkFullPipeline study. The warm/cold ns_per_op ratio is the
# incremental-recomputation speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_sched.json}"
OUT_INCR="${OUT_INCR:-BENCH_incr.json}"

go build -o /tmp/rcpt-bench ./cmd/rcpt-bench
{
  go test -run '^$' -bench 'BenchmarkSimulate' -benchmem -benchtime "$BENCHTIME" -count "$COUNT" ./internal/sched/
  go test -run '^$' -bench 'BenchmarkFullPipeline$' -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .
} | tee /dev/stderr | /tmp/rcpt-bench -benchtime "$BENCHTIME" -count "$COUNT" -out "$OUT"
echo "wrote $OUT" >&2

go test -run '^$' -bench 'BenchmarkRunColdVsWarmStageCache' -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . |
  tee /dev/stderr | /tmp/rcpt-bench -benchtime "$BENCHTIME" -count "$COUNT" -out "$OUT_INCR"
echo "wrote $OUT_INCR" >&2
