package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("in_flight", "in-flight requests")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge after Set = %d, want -3", got)
	}
}

func TestCounterVecSeriesAreIndependent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests by route and code", "route", "code")
	v.With("/v1/tables/{id}", "200").Add(3)
	v.With("/v1/tables/{id}", "404").Inc()
	v.With("/v1/run", "200").Inc()
	if got := v.With("/v1/tables/{id}", "200").Value(); got != 3 {
		t.Fatalf("series value = %d, want 3", got)
	}
	// With returns the same counter for the same label values.
	if v.With("/v1/run", "200") != v.With("/v1/run", "200") {
		t.Fatal("With not stable for identical label values")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "request latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// 0.05 and 0.1 land in le="0.1" (upper bound inclusive), 0.5 in
	// le="1", 2 in le="10", 100 in +Inf; buckets are cumulative.
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 102.65`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministicAndSorted(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		v := r.CounterVec("zz_total", "last family", "route")
		v.With("b").Inc()
		v.With("a").Add(2)
		r.Gauge("aa_gauge", "first family").Set(7)
		r.Histogram("mm_seconds", "middle", []float64{1}).Observe(0.5)
		return r
	}
	var b1, b2 strings.Builder
	if err := build().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("two identical registries rendered differently:\n%s\n----\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	ia := strings.Index(out, "aa_gauge")
	im := strings.Index(out, "mm_seconds")
	iz := strings.Index(out, "zz_total")
	if !(ia < im && im < iz) {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	if sa, sb := strings.Index(out, `zz_total{route="a"}`), strings.Index(out, `zz_total{route="b"}`); sa == -1 || sb == -1 || sa > sb {
		t.Fatalf("series not sorted by label values:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c_total", "with\nnewline", "route").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `c_total{route="a\"b\\c\n"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `# HELP c_total with\nnewline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	v := r.CounterVec("v_total", "v", "k")
	h := r.Histogram("h_seconds", "h", DefBuckets())
	g := r.Gauge("g", "g")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				v.With(string(rune('a' + i%3))).Inc()
				h.Observe(float64(j) / 100)
				g.Add(1)
				g.Add(-1)
			}
		}(i)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil { // render concurrently with writers
		t.Fatal(err)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "one")
	r.Counter("dup", "two")
}
