package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4). Output is deterministic:
// families are sorted by name and series by label values, so two
// registries holding the same samples render byte-identical bodies.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snap := make([]series, len(keys))
		for i, k := range keys {
			snap[i] = f.series[k]
		}
		f.mu.Unlock()
		if len(snap) == 0 {
			continue
		}
		b.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		b.WriteString("# TYPE " + f.name + " " + string(f.kind) + "\n")
		for i, s := range snap {
			var values []string
			if keys[i] != "" || len(f.labels) > 0 {
				values = strings.Split(keys[i], "\x1f")
			}
			// Clone so histogram "le" appends cannot alias across calls.
			labels := append([]string(nil), f.labels...)
			s.write(&b, f.name, labels, append([]string(nil), values...))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample appends one exposition line: name{l1="v1",...} value.
func writeSample(b *strings.Builder, name string, labels, values []string, value string) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
func formatInt(v int64) string   { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
