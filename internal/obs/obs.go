// Package obs is a small std-lib-only metrics registry for the serving
// layer: counters, gauges, and latency histograms, optionally labelled,
// exported in the Prometheus text exposition format. All metric types
// are safe for concurrent use, and the exposition output is
// deterministic — families sorted by name, series sorted by label
// values — so /metrics bodies are stable and goldenable.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families. The zero value is not usable; create
// with NewRegistry. Registration is expected at construction time
// (duplicate names panic — a wiring bug, not a runtime condition).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family with zero or more labelled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // label names, fixed at registration

	mu     sync.Mutex
	series map[string]series // key = joined label values
}

// series is one sample set within a family.
type series interface {
	// write appends exposition lines for this series.
	write(b *strings.Builder, name string, labels []string, values []string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(name, help string, kind metricKind, labels ...string) *family {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, series: map[string]series{}}
	r.families[name] = f
	return f
}

// seriesKey joins label values with an unprintable separator so the key
// is unambiguous.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// get returns the series for the given label values, creating it with
// mk on first use.
func (f *family) get(values []string, mk func() series) series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
	}
	return s
}

// ---- counter ----

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(b *strings.Builder, name string, labels, values []string) {
	writeSample(b, name, labels, values, formatUint(c.v.Load()))
}

// Counter registers an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter)
	return f.get(nil, func() series { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: counter vec %q needs at least one label", name))
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels...)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() series { return &Counter{} }).(*Counter)
}

// ---- gauge ----

// Gauge is a value that can go up and down. It stores int64 — every
// gauge in this system (in-flight requests, queue depth, cache bytes,
// cache entries) is integral.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(b *strings.Builder, name string, labels, values []string) {
	writeSample(b, name, labels, values, formatInt(g.v.Load()))
}

// Gauge registers an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge)
	return f.get(nil, func() series { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: gauge vec %q needs at least one label", name))
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels...)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() series { return &Gauge{} }).(*Gauge)
}

// ---- histogram ----

// Histogram observes float64 values (typically seconds) into fixed
// cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	counts  []uint64  // per-bucket (non-cumulative), len = len(bounds)+1
	sum     float64
	samples uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.samples++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

func (h *Histogram) write(b *strings.Builder, name string, labels, values []string) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, samples := h.sum, h.samples
	h.mu.Unlock()
	cum := uint64(0)
	for i, bound := range bounds {
		cum += counts[i]
		writeSample(b, name+"_bucket", append(labels, "le"), append(values, formatFloat(bound)), formatUint(cum))
	}
	cum += counts[len(bounds)]
	writeSample(b, name+"_bucket", append(labels, "le"), append(values, "+Inf"), formatUint(cum))
	writeSample(b, name+"_sum", labels, values, formatFloat(sum))
	writeSample(b, name+"_count", labels, values, formatUint(samples))
}

// DefBuckets returns the default latency buckets in seconds, spanning
// cache hits (sub-millisecond) to full pipeline runs (tens of seconds).
func DefBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram with no buckets")
	}
	bounds := append([]float64(nil), buckets...)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %g", bounds[i]))
		}
	}
	if math.IsInf(bounds[len(bounds)-1], +1) {
		bounds = bounds[:len(bounds)-1] // +Inf is implicit
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Histogram registers an unlabelled histogram with the given ascending
// upper bounds (an +Inf bucket is appended automatically).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram)
	return f.get(nil, func() series { return newHistogram(buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: histogram vec %q needs at least one label", name))
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels...), buckets: append([]float64(nil), buckets...)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() series { return newHistogram(v.buckets) }).(*Histogram)
}
