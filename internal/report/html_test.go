package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteHTMLIndex(t *testing.T) {
	entries := []IndexEntry{
		{ID: "T1", Title: "Demographics <2024>", Kind: "table", TableText: "a  b\n1  2\n"},
		{ID: "F1", Title: "Trend & projection", Kind: "figure", SVGFile: "figure1.svg"},
	}
	var buf bytes.Buffer
	if err := WriteHTMLIndex(&buf, `Study "rcpt"`, entries); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Study &#34;rcpt&#34;",
		"Demographics &lt;2024&gt;",
		"Trend &amp; projection",
		`<img src="figure1.svg"`,
		`<a href="#T1">`,
		"<pre>a  b",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("index missing %q:\n%.400s", want, out)
		}
	}
	// Raw unescaped title must not appear.
	if strings.Contains(out, `Study "rcpt"</title>`) && !strings.Contains(out, "&#34;") {
		t.Fatal("title not escaped")
	}
}

func TestWriteHTMLIndexErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTMLIndex(&buf, "x", nil); err == nil {
		t.Fatal("empty entries accepted")
	}
	if err := WriteHTMLIndex(&buf, "x", []IndexEntry{{ID: "T1", Kind: "table"}}); err == nil {
		t.Fatal("table without text accepted")
	}
	if err := WriteHTMLIndex(&buf, "x", []IndexEntry{{ID: "F1", Kind: "figure"}}); err == nil {
		t.Fatal("figure without file accepted")
	}
	if err := WriteHTMLIndex(&buf, "x", []IndexEntry{{ID: "X", Kind: "blob"}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
