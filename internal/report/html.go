package report

import (
	"fmt"
	"html"
	"io"
	"strings"
)

// IndexEntry describes one artifact for the HTML index page.
type IndexEntry struct {
	ID    string // e.g. "T2"
	Title string
	Kind  string // "table" or "figure"
	// TableText is the rendered ASCII table (tables only).
	TableText string
	// SVGFile is the figure file name relative to the index (figures
	// only); the index embeds it via <img>.
	SVGFile string
}

// WriteHTMLIndex renders a self-contained index page over the study's
// artifacts: tables inline as <pre>, figures as <img> references to the
// sibling SVG files. All text is HTML-escaped.
func WriteHTMLIndex(w io.Writer, studyTitle string, entries []IndexEntry) error {
	if len(entries) == 0 {
		return fmt.Errorf("report: no entries for the index")
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(studyTitle))
	b.WriteString(`<style>
body { font-family: sans-serif; max-width: 960px; margin: 2em auto; padding: 0 1em; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; font-size: 13px; }
h2 { border-bottom: 1px solid #ddd; padding-bottom: 4px; margin-top: 2em; }
nav a { margin-right: 1em; }
img { max-width: 100%; border: 1px solid #eee; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n<nav>\n", html.EscapeString(studyTitle))
	for _, e := range entries {
		fmt.Fprintf(&b, "<a href=\"#%s\">%s</a>\n", html.EscapeString(e.ID), html.EscapeString(e.ID))
	}
	b.WriteString("</nav>\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "<h2 id=%q>%s — %s</h2>\n",
			html.EscapeString(e.ID), html.EscapeString(e.ID), html.EscapeString(e.Title))
		switch e.Kind {
		case "table":
			if e.TableText == "" {
				return fmt.Errorf("report: index entry %s has no table text", e.ID)
			}
			fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(e.TableText))
		case "figure":
			if e.SVGFile == "" {
				return fmt.Errorf("report: index entry %s has no figure file", e.ID)
			}
			fmt.Fprintf(&b, "<img src=%q alt=%q>\n",
				html.EscapeString(e.SVGFile), html.EscapeString(e.Title))
		default:
			return fmt.Errorf("report: index entry %s has unknown kind %q", e.ID, e.Kind)
		}
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
