package report

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tab := NewTable("Languages by cohort", "language", "2011", "2024")
	tab.MustAddRow("python", "30.0%", "82.0%")
	tab.MustAddRow("matlab", "45.0%", "20.0%")
	tab.Footnote = "weighted shares; Wilson 95% CIs"
	return tab
}

func TestTableASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable(t).WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Languages by cohort", "language", "python", "-----", "note: weighted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ascii missing %q:\n%s", want, out)
		}
	}
	// Columns align: "python" padded to "language" width.
	lines := strings.Split(out, "\n")
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "language") {
			header = l
		}
		if strings.HasPrefix(l, "python") {
			row = l
		}
	}
	if strings.Index(header, "2011") != strings.Index(row, "30.0%") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable(t).WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Languages by cohort") ||
		!strings.Contains(out, "| python | 30.0% | 82.0% |") ||
		!strings.Contains(out, "|---|---|---|") {
		t.Fatalf("markdown:\n%s", out)
	}
	// Pipes in cells get escaped.
	tab := NewTable("x", "a")
	tab.MustAddRow("p|q")
	buf.Reset()
	_ = tab.WriteMarkdown(&buf)
	if !strings.Contains(buf.String(), `p\|q`) {
		t.Fatalf("pipe not escaped:\n%s", buf.String())
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable(t).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "language,2011,2024" || lines[1] != "python,30.0%,82.0%" {
		t.Fatalf("csv:\n%s", buf.String())
	}
	tab := NewTable("x", "a")
	tab.MustAddRow(`say "hi", ok`)
	buf.Reset()
	_ = tab.WriteCSV(&buf)
	if !strings.Contains(buf.String(), `"say ""hi"", ok"`) {
		t.Fatalf("quoting:\n%s", buf.String())
	}
}

func TestTableJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable(t).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"title":"Languages by cohort","columns":["language","2011","2024"],` +
		`"rows":[["python","30.0%","82.0%"],["matlab","45.0%","20.0%"]],` +
		`"footnote":"weighted shares; Wilson 95% CIs"}` + "\n"
	if buf.String() != want {
		t.Fatalf("json:\n got %s\nwant %s", buf.String(), want)
	}
	// Deterministic across calls (the serving layer hashes this body).
	var again bytes.Buffer
	if err := sampleTable(t).WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of the same table differ")
	}
	// Empty tables encode rows as [], not null.
	empty := NewTable("empty", "a")
	buf.Reset()
	if err := empty.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows":[]`) {
		t.Fatalf("empty rows not []:\n%s", buf.String())
	}
	// Ragged tables are rejected, same as every other renderer.
	broken := NewTable("x", "a")
	broken.Rows = append(broken.Rows, []string{"1", "2"})
	if err := broken.WriteJSON(&buf); err == nil {
		t.Fatal("ragged table rendered as JSON")
	}
}

func TestTableErrors(t *testing.T) {
	tab := NewTable("x", "a", "b")
	if err := tab.AddRow("only-one"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	empty := &Table{}
	var buf bytes.Buffer
	if err := empty.WriteASCII(&buf); err == nil {
		t.Fatal("no-column table rendered")
	}
	broken := NewTable("x", "a")
	broken.Rows = append(broken.Rows, []string{"1", "2"})
	if err := broken.WriteASCII(&buf); err == nil {
		t.Fatal("ragged table rendered")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustAddRow did not panic")
			}
		}()
		tab.MustAddRow("x", "y", "z")
	}()
}

func TestFormatters(t *testing.T) {
	if Pct(0.1234) != "12.3%" {
		t.Fatal(Pct(0.1234))
	}
	if F(3.14159, 2) != "3.14" {
		t.Fatal(F(3.14159, 2))
	}
	if PValue(0.0001) != "<0.001" || PValue(0.042) != "0.042" {
		t.Fatal("pvalue formatting")
	}
	if CI(0.1, 0.2) != "[10.0%, 20.0%]" {
		t.Fatal(CI(0.1, 0.2))
	}
}

func validSVG(t *testing.T, out string) {
	t.Helper()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not an svg document:\n%.200s", out)
	}
	if strings.Count(out, "<svg") != 1 {
		t.Fatal("nested svg")
	}
}

func TestGroupedBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := GroupedBarChart(&buf, "Languages", []string{"python", "c", "r"},
		[]BarSeries{
			{Name: "2011", Values: []float64{0.3, 0.35, 0.2}},
			{Name: "2024", Values: []float64{0.82, 0.22, 0.3}},
		}, "share of respondents", true)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	validSVG(t, out)
	for _, want := range []string{"Languages", "python", "2011", "2024", "<rect"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	if err := GroupedBarChart(&buf, "t", nil, nil, "y", false); err == nil {
		t.Fatal("empty chart accepted")
	}
	if err := GroupedBarChart(&buf, "t", []string{"a"},
		[]BarSeries{{Name: "s", Values: []float64{1, 2}}}, "y", false); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := GroupedBarChart(&buf, "t", []string{"a"},
		[]BarSeries{{Name: "s", Values: []float64{-1}}}, "y", false); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestStackedBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := StackedBarChart(&buf, "Core-hours by field", []string{"physics", "biology"},
		[]BarSeries{
			{Name: "cpu", Values: []float64{1200, 300}},
			{Name: "gpu", Values: []float64{100, 400}},
		}, "core-hours")
	if err != nil {
		t.Fatal(err)
	}
	validSVG(t, buf.String())
	if err := StackedBarChart(&buf, "t", []string{"a"}, nil, "y"); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestLineChart(t *testing.T) {
	var buf bytes.Buffer
	err := LineChart(&buf, "Python share", []float64{2011, 2017, 2024},
		[]LineSeries{{Name: "python", Ys: []float64{0.3, 0.55, 0.82}}},
		"year", "share", true)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	validSVG(t, out)
	if !strings.Contains(out, "<polyline") || !strings.Contains(out, "2011") {
		t.Fatalf("line chart:\n%.300s", out)
	}
	if err := LineChart(&buf, "t", []float64{1}, []LineSeries{{Name: "s", Ys: []float64{1}}}, "x", "y", false); err == nil {
		t.Fatal("single x accepted")
	}
	if err := LineChart(&buf, "t", []float64{1, 1}, []LineSeries{{Name: "s", Ys: []float64{1, 2}}}, "x", "y", false); err == nil {
		t.Fatal("degenerate x range accepted")
	}
}

func TestCDFChart(t *testing.T) {
	var buf bytes.Buffer
	err := CDFChart(&buf, "Job size CDF",
		[]LineSeries{{Name: "2024", Ys: []float64{0.5, 0.9, 1.0}}},
		[][]float64{{1, 32, 1024}}, "cores")
	if err != nil {
		t.Fatal(err)
	}
	validSVG(t, buf.String())
	if err := CDFChart(&buf, "t", []LineSeries{{Name: "s", Ys: []float64{0.5}}},
		[][]float64{{0}}, "x"); err == nil {
		t.Fatal("zero point on log axis accepted")
	}
	if err := CDFChart(&buf, "t", nil, nil, "x"); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestHeatmap(t *testing.T) {
	var buf bytes.Buffer
	err := Heatmap(&buf, "Co-adoption", []string{"vcs", "ci"},
		[][]float64{{1, 0.4}, {0.4, 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	validSVG(t, out)
	if !strings.Contains(out, "0.40") {
		t.Fatal("cell values missing")
	}
	if err := Heatmap(&buf, "t", []string{"a"}, [][]float64{{1, 2}}, 1); err == nil {
		t.Fatal("non-square accepted")
	}
	if err := Heatmap(&buf, "t", []string{"a"}, [][]float64{{1}}, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestDivergingColor(t *testing.T) {
	if divergingColor(0) != "#ffffff" {
		t.Fatal("zero should be white")
	}
	if divergingColor(1) != "#ff0000" {
		t.Fatal("+1 should be red")
	}
	if divergingColor(-1) != "#0000ff" {
		t.Fatalf("-1 should be blue, got %s", divergingColor(-1))
	}
}

func TestNiceMax(t *testing.T) {
	cases := map[float64]float64{0.3: 0.5, 0.82: 1, 7: 10, 1200: 2000, 0: 1}
	for in, want := range cases {
		if got := niceMax(in); got != want {
			t.Fatalf("niceMax(%g)=%g want %g", in, got, want)
		}
	}
}

func TestEscapeXML(t *testing.T) {
	if escapeXML(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatal(escapeXML(`a<b>&"c"`))
	}
}

func TestBoxPlot(t *testing.T) {
	var buf bytes.Buffer
	err := BoxPlot(&buf, "Wait by policy", []BoxStats{
		{Label: "fcfs", Min: 0, Q1: 10, Median: 40, Q3: 80, P95: 150},
		{Label: "easy", Min: 0, Q1: 0, Median: 1, Q3: 3, P95: 10},
	}, "hours")
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	validSVG(t, out)
	for _, want := range []string{"fcfs", "easy", "<rect", "<line"} {
		if !strings.Contains(out, want) {
			t.Fatalf("box plot missing %q", want)
		}
	}
	if err := BoxPlot(&buf, "t", nil, "y"); err == nil {
		t.Fatal("empty accepted")
	}
	if err := BoxPlot(&buf, "t", []BoxStats{
		{Label: "bad", Min: 5, Q1: 1, Median: 2, Q3: 3, P95: 4},
	}, "y"); err == nil {
		t.Fatal("non-monotone summary accepted")
	}
}
