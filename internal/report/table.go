// Package report renders the study's artifacts: aligned ASCII tables,
// Markdown and CSV table exports, and from-scratch SVG charts (bar,
// grouped/stacked bar, line, CDF/step, heatmap). Everything writes to an
// io.Writer; cmd/rcpt-report composes these into the out/ directory that
// mirrors the paper's tables and figures.
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented table with a title and optional
// footnote (where weighted bases and test details go).
type Table struct {
	Title    string
	Columns  []string
	Rows     [][]string
	Footnote string
}

// NewTable creates a table with the given columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("report: row has %d cells for %d columns", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow that panics; for rows with statically correct arity.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// validate checks the table is renderable.
func (t *Table) validate() error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	for i, r := range t.Rows {
		if len(r) != len(t.Columns) {
			return fmt.Errorf("report: row %d has %d cells for %d columns", i, len(r), len(t.Columns))
		}
	}
	return nil
}

// WriteASCII renders the table with aligned columns:
//
//	Title
//	col-a  col-b
//	-----  -----
//	x      y
func (t *Table) WriteASCII(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	dashes := make([]string, len(t.Columns))
	for i, wd := range widths {
		dashes[i] = strings.Repeat("-", wd)
	}
	writeRow(dashes)
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Footnote != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Footnote)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteMarkdown renders a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + esc(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString("|")
		for _, cell := range r {
			b.WriteString(" " + esc(cell) + " |")
		}
		b.WriteByte('\n')
	}
	if t.Footnote != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Footnote)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180 CSV (no title or footnote).
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, f := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(f, ",\"\n\r") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(f, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(f)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonTable is the wire form of a Table. Field order is fixed, so the
// encoding is deterministic: the same table always renders the same
// bytes (the property the serving layer's ETags are derived from).
type jsonTable struct {
	Title    string     `json:"title"`
	Columns  []string   `json:"columns"`
	Rows     [][]string `json:"rows"`
	Footnote string     `json:"footnote,omitempty"`
}

// WriteJSON renders the table as a single JSON object:
//
//	{"title": ..., "columns": [...], "rows": [[...], ...], "footnote": ...}
//
// Rows always encodes as an array (never null), even when empty.
func (t *Table) WriteJSON(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	jt := jsonTable{Title: t.Title, Columns: t.Columns, Rows: t.Rows, Footnote: t.Footnote}
	if jt.Rows == nil {
		jt.Rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// Pct formats a proportion as "12.3%".
func Pct(p float64) string { return fmt.Sprintf("%.1f%%", p*100) }

// F formats a float with the given decimals.
func F(v float64, decimals int) string { return fmt.Sprintf("%.*f", decimals, v) }

// PValue formats p-values the way tables print them ("<0.001" floor).
func PValue(p float64) string {
	if p < 0.001 {
		return "<0.001"
	}
	return fmt.Sprintf("%.3f", p)
}

// CI formats an interval as "[lo, hi]" in percent.
func CI(lo, hi float64) string {
	return fmt.Sprintf("[%.1f%%, %.1f%%]", lo*100, hi*100)
}
