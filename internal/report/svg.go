package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// The SVG renderers are deliberately minimal: fixed layout, one data
// concept per chart type, no external assets. They exist so every paper
// figure is regenerable as a committed artifact, not to be a charting
// library.

// chartPalette cycles through series colors.
var chartPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

const (
	chartW      = 720
	chartH      = 440
	marginLeft  = 70
	marginRight = 150
	marginTop   = 50
	marginBot   = 60
)

func plotW() float64 { return float64(chartW - marginLeft - marginRight) }
func plotH() float64 { return float64(chartH - marginTop - marginBot) }

type svgBuilder struct {
	b strings.Builder
}

func newSVG(title string) *svgBuilder {
	s := &svgBuilder{}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartW, chartH, chartW, chartH)
	s.b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&s.b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginLeft, escapeXML(title))
	return s
}

func (s *svgBuilder) finish(w io.Writer) error {
	s.b.WriteString("</svg>\n")
	_, err := io.WriteString(w, s.b.String())
	return err
}

func escapeXML(t string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(t)
}

// axes draws the plot frame, y gridlines/labels for [0, yMax], and axis
// titles.
func (s *svgBuilder) axes(yMax float64, yLabel, xLabel string, yAsPct bool) {
	x0, y0 := float64(marginLeft), float64(marginTop)
	fmt.Fprintf(&s.b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#999"/>`+"\n",
		x0, y0, plotW(), plotH())
	for i := 0; i <= 4; i++ {
		v := yMax * float64(i) / 4
		y := y0 + plotH()*(1-float64(i)/4)
		fmt.Fprintf(&s.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#eee"/>`+"\n",
			x0, y, x0+plotW(), y)
		label := F(v, 1)
		if yAsPct {
			label = fmt.Sprintf("%.0f%%", v*100)
		}
		fmt.Fprintf(&s.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			x0-6, y+4, label)
	}
	fmt.Fprintf(&s.b, `<text x="14" y="%g" font-family="sans-serif" font-size="12" transform="rotate(-90 14 %g)" text-anchor="middle">%s</text>`+"\n",
		y0+plotH()/2, y0+plotH()/2, escapeXML(yLabel))
	fmt.Fprintf(&s.b, `<text x="%g" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		x0+plotW()/2, chartH-14, escapeXML(xLabel))
}

func (s *svgBuilder) legend(names []string) {
	x := float64(chartW - marginRight + 12)
	for i, n := range names {
		y := float64(marginTop + 14 + 18*i)
		fmt.Fprintf(&s.b, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n",
			x, y-10, chartPalette[i%len(chartPalette)])
		fmt.Fprintf(&s.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			x+16, y, escapeXML(n))
	}
}

func maxOf(vals ...float64) float64 {
	m := math.Inf(-1)
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// niceMax rounds m up to a pleasant axis maximum.
func niceMax(m float64) float64 {
	if m <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(m)))
	for _, mult := range []float64{1, 2, 2.5, 5, 10} {
		if m <= mag*mult {
			return mag * mult
		}
	}
	return mag * 10
}

// BarSeries is one series of a grouped bar chart.
type BarSeries struct {
	Name   string
	Values []float64
}

// GroupedBarChart renders categories on x with one bar per series,
// e.g. language share by cohort. Values are proportions when asPct.
func GroupedBarChart(w io.Writer, title string, categories []string, series []BarSeries, yLabel string, asPct bool) error {
	if len(categories) == 0 || len(series) == 0 {
		return errors.New("report: bar chart needs categories and series")
	}
	yMax := 0.0
	for _, s := range series {
		if len(s.Values) != len(categories) {
			return fmt.Errorf("report: series %q has %d values for %d categories", s.Name, len(s.Values), len(categories))
		}
		for _, v := range s.Values {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("report: series %q has invalid value %g", s.Name, v)
			}
			yMax = maxOf(yMax, v)
		}
	}
	yMax = niceMax(yMax)
	svg := newSVG(title)
	svg.axes(yMax, yLabel, "", asPct)
	groupW := plotW() / float64(len(categories))
	barW := groupW * 0.8 / float64(len(series))
	for ci, cat := range categories {
		gx := float64(marginLeft) + groupW*float64(ci)
		for si, s := range series {
			v := s.Values[ci]
			h := plotH() * v / yMax
			x := gx + groupW*0.1 + barW*float64(si)
			y := float64(marginTop) + plotH() - h
			fmt.Fprintf(&svg.b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"/>`+"\n",
				x, y, barW, h, chartPalette[si%len(chartPalette)])
		}
		fmt.Fprintf(&svg.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end" transform="rotate(-35 %g %g)">%s</text>`+"\n",
			gx+groupW/2, float64(chartH-marginBot+14), gx+groupW/2, float64(chartH-marginBot+14), escapeXML(cat))
	}
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	svg.legend(names)
	return svg.finish(w)
}

// StackedBarChart renders one bar per category, stacked by series.
func StackedBarChart(w io.Writer, title string, categories []string, series []BarSeries, yLabel string) error {
	if len(categories) == 0 || len(series) == 0 {
		return errors.New("report: stacked chart needs categories and series")
	}
	totals := make([]float64, len(categories))
	for _, s := range series {
		if len(s.Values) != len(categories) {
			return fmt.Errorf("report: series %q has %d values for %d categories", s.Name, len(s.Values), len(categories))
		}
		for i, v := range s.Values {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("report: series %q has invalid value %g", s.Name, v)
			}
			totals[i] += v
		}
	}
	yMax := niceMax(maxOf(totals...))
	svg := newSVG(title)
	svg.axes(yMax, yLabel, "", false)
	groupW := plotW() / float64(len(categories))
	for ci, cat := range categories {
		x := float64(marginLeft) + groupW*float64(ci) + groupW*0.15
		cum := 0.0
		for si, s := range series {
			v := s.Values[ci]
			h := plotH() * v / yMax
			y := float64(marginTop) + plotH() - plotH()*cum/yMax - h
			fmt.Fprintf(&svg.b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"/>`+"\n",
				x, y, groupW*0.7, h, chartPalette[si%len(chartPalette)])
			cum += v
		}
		fmt.Fprintf(&svg.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end" transform="rotate(-35 %g %g)">%s</text>`+"\n",
			x+groupW*0.35, float64(chartH-marginBot+14), x+groupW*0.35, float64(chartH-marginBot+14), escapeXML(cat))
	}
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	svg.legend(names)
	return svg.finish(w)
}

// LineSeries is one line of a line chart: y values over shared x values.
type LineSeries struct {
	Name string
	Ys   []float64
}

// LineChart renders series over numeric x values (e.g. years).
func LineChart(w io.Writer, title string, xs []float64, series []LineSeries, xLabel, yLabel string, asPct bool) error {
	if len(xs) < 2 || len(series) == 0 {
		return errors.New("report: line chart needs >= 2 x values and a series")
	}
	yMax := 0.0
	for _, s := range series {
		if len(s.Ys) != len(xs) {
			return fmt.Errorf("report: series %q has %d values for %d xs", s.Name, len(s.Ys), len(xs))
		}
		for _, v := range s.Ys {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("report: series %q has invalid value %g", s.Name, v)
			}
			yMax = maxOf(yMax, v)
		}
	}
	yMax = niceMax(yMax)
	xMin, xMax := xs[0], xs[0]
	for _, x := range xs {
		if x < xMin {
			xMin = x
		}
		if x > xMax {
			xMax = x
		}
	}
	if xMax == xMin {
		return errors.New("report: degenerate x range")
	}
	svg := newSVG(title)
	svg.axes(yMax, yLabel, xLabel, asPct)
	px := func(x float64) float64 {
		return float64(marginLeft) + plotW()*(x-xMin)/(xMax-xMin)
	}
	py := func(y float64) float64 {
		return float64(marginTop) + plotH()*(1-y/yMax)
	}
	for si, s := range series {
		var pts []string
		for i, x := range xs {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(s.Ys[i])))
		}
		fmt.Fprintf(&svg.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), chartPalette[si%len(chartPalette)])
	}
	// X tick labels at each point.
	for _, x := range xs {
		fmt.Fprintf(&svg.b, `<text x="%g" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%g</text>`+"\n",
			px(x), chartH-marginBot+16, x)
	}
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	svg.legend(names)
	return svg.finish(w)
}

// CDFChart renders empirical CDFs (already computed: points and probs
// per series) on a log-x axis, the standard job-size presentation.
func CDFChart(w io.Writer, title string, series []LineSeries, points [][]float64, xLabel string) error {
	if len(series) == 0 || len(series) != len(points) {
		return errors.New("report: CDF chart needs matching series and points")
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	for i, s := range series {
		if len(s.Ys) != len(points[i]) || len(s.Ys) == 0 {
			return fmt.Errorf("report: CDF series %q malformed", s.Name)
		}
		for _, x := range points[i] {
			if x <= 0 {
				return fmt.Errorf("report: CDF log axis needs positive points, got %g", x)
			}
			xMin = math.Min(xMin, x)
			xMax = math.Max(xMax, x)
		}
	}
	if xMax <= xMin {
		xMax = xMin * 10
	}
	svg := newSVG(title)
	svg.axes(1, "fraction of jobs", xLabel, false)
	lxMin, lxMax := math.Log10(xMin), math.Log10(xMax)
	px := func(x float64) float64 {
		return float64(marginLeft) + plotW()*(math.Log10(x)-lxMin)/(lxMax-lxMin)
	}
	py := func(y float64) float64 {
		return float64(marginTop) + plotH()*(1-y)
	}
	for si, s := range series {
		var pts []string
		for i, x := range points[si] {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(s.Ys[i])))
		}
		fmt.Fprintf(&svg.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), chartPalette[si%len(chartPalette)])
	}
	// Decade ticks.
	for d := math.Ceil(lxMin); d <= math.Floor(lxMax); d++ {
		x := math.Pow(10, d)
		fmt.Fprintf(&svg.b, `<text x="%g" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%g</text>`+"\n",
			px(x), chartH-marginBot+16, x)
	}
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	svg.legend(names)
	return svg.finish(w)
}

// Heatmap renders a square matrix with a diverging blue-white-red scale
// over [-scale, +scale] (e.g. phi coefficients with scale 1).
func Heatmap(w io.Writer, title string, labels []string, matrix [][]float64, scale float64) error {
	n := len(labels)
	if n == 0 || len(matrix) != n {
		return errors.New("report: heatmap needs labels matching matrix")
	}
	for _, row := range matrix {
		if len(row) != n {
			return errors.New("report: heatmap matrix not square")
		}
	}
	if scale <= 0 {
		return errors.New("report: heatmap scale must be positive")
	}
	svg := newSVG(title)
	cell := math.Min(plotW(), plotH()) / float64(n)
	x0, y0 := float64(marginLeft), float64(marginTop)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := matrix[i][j] / scale
			if v > 1 {
				v = 1
			}
			if v < -1 {
				v = -1
			}
			fmt.Fprintf(&svg.b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s" stroke="#ccc"/>`+"\n",
				x0+cell*float64(j), y0+cell*float64(i), cell, cell, divergingColor(v))
			fmt.Fprintf(&svg.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="9" text-anchor="middle">%s</text>`+"\n",
				x0+cell*(float64(j)+0.5), y0+cell*(float64(i)+0.55), F(matrix[i][j], 2))
		}
		fmt.Fprintf(&svg.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			x0-6, y0+cell*(float64(i)+0.6), escapeXML(labels[i]))
		fmt.Fprintf(&svg.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end" transform="rotate(-45 %g %g)">%s</text>`+"\n",
			x0+cell*(float64(i)+0.5), y0-6, x0+cell*(float64(i)+0.5), y0-6, escapeXML(labels[i]))
	}
	return svg.finish(w)
}

// divergingColor maps v in [-1,1] onto blue→white→red.
func divergingColor(v float64) string {
	r, g, b := 255.0, 255.0, 255.0
	if v > 0 {
		g = 255 * (1 - v)
		b = 255 * (1 - v)
	} else {
		r = 255 * (1 + v)
		g = 255 * (1 + v)
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(b))
}

// BoxStats is the five-number summary one box of a box plot renders.
type BoxStats struct {
	Label                    string
	Min, Q1, Median, Q3, P95 float64
}

// BoxPlot renders one box-and-whisker per category: box from Q1 to Q3
// with the median line, whiskers to Min and P95.
func BoxPlot(w io.Writer, title string, boxes []BoxStats, yLabel string) error {
	if len(boxes) == 0 {
		return errors.New("report: box plot needs boxes")
	}
	yMax := 0.0
	for _, b := range boxes {
		if !(b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.P95) {
			return fmt.Errorf("report: box %q summary not monotone", b.Label)
		}
		if b.Min < 0 || math.IsNaN(b.P95) || math.IsInf(b.P95, 0) {
			return fmt.Errorf("report: box %q has invalid values", b.Label)
		}
		yMax = maxOf(yMax, b.P95)
	}
	yMax = niceMax(yMax)
	svg := newSVG(title)
	svg.axes(yMax, yLabel, "", false)
	groupW := plotW() / float64(len(boxes))
	py := func(v float64) float64 {
		return float64(marginTop) + plotH()*(1-v/yMax)
	}
	for i, b := range boxes {
		cx := float64(marginLeft) + groupW*(float64(i)+0.5)
		half := groupW * 0.25
		color := chartPalette[i%len(chartPalette)]
		// Whisker line Min..P95.
		fmt.Fprintf(&svg.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"/>`+"\n",
			cx, py(b.Min), cx, py(b.P95), color)
		// Whisker caps.
		for _, v := range []float64{b.Min, b.P95} {
			fmt.Fprintf(&svg.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"/>`+"\n",
				cx-half/2, py(v), cx+half/2, py(v), color)
		}
		// Box Q1..Q3.
		top, bot := py(b.Q3), py(b.Q1)
		fmt.Fprintf(&svg.b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s" fill-opacity="0.35" stroke="%s"/>`+"\n",
			cx-half, top, 2*half, bot-top, color, color)
		// Median line.
		fmt.Fprintf(&svg.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			cx-half, py(b.Median), cx+half, py(b.Median), color)
		// Label.
		fmt.Fprintf(&svg.b, `<text x="%g" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			cx, chartH-marginBot+16, escapeXML(b.Label))
	}
	return svg.finish(w)
}
