package breaker

import (
	"testing"
	"time"
)

func TestOpensAtThresholdAndCoolsDown(t *testing.T) {
	now := time.Unix(0, 0)
	b := New(3, 10*time.Second)

	for i := 0; i < 2; i++ {
		if opened := b.Failure(now); opened {
			t.Fatalf("failure %d opened the circuit early", i+1)
		}
	}
	if !b.Failure(now) {
		t.Fatal("threshold failure did not open the circuit")
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	wait, halfOpened, ok := b.Allow(now.Add(5 * time.Second))
	if ok || halfOpened {
		t.Fatalf("Allow inside cooldown: ok=%v halfOpened=%v", ok, halfOpened)
	}
	if wait != 5*time.Second {
		t.Fatalf("remaining cooldown = %v, want 5s", wait)
	}
	// Cooldown over: exactly one trial admitted, with the transition
	// reported once.
	_, halfOpened, ok = b.Allow(now.Add(10 * time.Second))
	if !ok || !halfOpened {
		t.Fatalf("Allow after cooldown: ok=%v halfOpened=%v", ok, halfOpened)
	}
	if _, halfOpened, ok = b.Allow(now.Add(10 * time.Second)); !ok || halfOpened {
		t.Fatalf("second Allow while half-open: ok=%v halfOpened=%v", ok, halfOpened)
	}
}

func TestHalfOpenOutcomes(t *testing.T) {
	now := time.Unix(0, 0)
	b := New(1, time.Second)
	b.Failure(now)
	if _, _, ok := b.Allow(now.Add(time.Second)); !ok {
		t.Fatal("trial not admitted after cooldown")
	}
	// Trial failure re-opens for a fresh cooldown.
	if !b.Failure(now.Add(time.Second)) {
		t.Fatal("failed trial did not re-open")
	}
	if _, _, ok := b.Allow(now.Add(time.Second + 500*time.Millisecond)); ok {
		t.Fatal("allowed during re-opened cooldown")
	}
	if _, _, ok := b.Allow(now.Add(2 * time.Second)); !ok {
		t.Fatal("second trial not admitted")
	}
	if closed := b.Success(); !closed {
		t.Fatal("successful trial did not report the close transition")
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	// Success on a closed circuit resets the streak without a transition.
	b2 := New(2, time.Second)
	b2.Failure(now)
	if closed := b2.Success(); closed {
		t.Fatal("success on closed circuit reported a transition")
	}
	if b2.Failure(now) {
		t.Fatal("streak not reset by success")
	}
}

func TestThresholdClamp(t *testing.T) {
	b := New(0, time.Second)
	if !b.Failure(time.Unix(0, 0)) {
		t.Fatal("threshold 0 should clamp to 1 and open on first failure")
	}
}
