package breaker

import (
	"testing"
	"time"
)

func TestOpensAtThresholdAndCoolsDown(t *testing.T) {
	now := time.Unix(0, 0)
	b := New(3, 10*time.Second)

	for i := 0; i < 2; i++ {
		if opened := b.Failure(now); opened {
			t.Fatalf("failure %d opened the circuit early", i+1)
		}
	}
	if !b.Failure(now) {
		t.Fatal("threshold failure did not open the circuit")
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	wait, halfOpened, ok := b.Allow(now.Add(5 * time.Second))
	if ok || halfOpened {
		t.Fatalf("Allow inside cooldown: ok=%v halfOpened=%v", ok, halfOpened)
	}
	if wait != 5*time.Second {
		t.Fatalf("remaining cooldown = %v, want 5s", wait)
	}
	// Cooldown over: exactly one trial admitted, with the transition
	// reported once.
	_, halfOpened, ok = b.Allow(now.Add(10 * time.Second))
	if !ok || !halfOpened {
		t.Fatalf("Allow after cooldown: ok=%v halfOpened=%v", ok, halfOpened)
	}
	// A second caller while the trial is outstanding is refused — the
	// whole point of half-open is a single probe, not a thundering herd.
	wait, halfOpened, ok = b.Allow(now.Add(10 * time.Second))
	if ok || halfOpened {
		t.Fatalf("second Allow while half-open: ok=%v halfOpened=%v", ok, halfOpened)
	}
	if wait != 10*time.Second {
		t.Fatalf("half-open refusal wait = %v, want one cooldown (10s)", wait)
	}
}

// TestHalfOpenAdmitsExactlyOneTrial drives many would-be concurrent
// callers (serialized under the owner's lock, as the contract requires)
// through Allow at the same instant: exactly one is admitted, and a
// failed trial re-opens the circuit against the rest.
func TestHalfOpenAdmitsExactlyOneTrial(t *testing.T) {
	now := time.Unix(0, 0)
	b := New(1, 10*time.Second)
	b.Failure(now)

	at := now.Add(10 * time.Second)
	admitted := 0
	for i := 0; i < 50; i++ {
		if _, _, ok := b.Allow(at); ok {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("half-open admitted %d callers, want exactly 1", admitted)
	}
	// The trial fails: back to open, everyone refused for a cooldown.
	if !b.Failure(at) {
		t.Fatal("failed trial did not re-open")
	}
	if _, _, ok := b.Allow(at.Add(5 * time.Second)); ok {
		t.Fatal("caller admitted during re-opened cooldown")
	}
}

// TestHalfOpenTrialTimeout: a trial whose outcome is never reported
// (e.g. the caller was cancelled before Success/Failure) must not wedge
// the breaker — after one cooldown another trial is admitted.
func TestHalfOpenTrialTimeout(t *testing.T) {
	now := time.Unix(0, 0)
	b := New(1, 10*time.Second)
	b.Failure(now)

	if _, _, ok := b.Allow(now.Add(10 * time.Second)); !ok {
		t.Fatal("trial not admitted after cooldown")
	}
	if _, _, ok := b.Allow(now.Add(15 * time.Second)); ok {
		t.Fatal("second trial admitted before the first timed out")
	}
	if _, halfOpened, ok := b.Allow(now.Add(20 * time.Second)); !ok || halfOpened {
		t.Fatalf("replacement trial after silent timeout: ok=%v halfOpened=%v (want ok, no new transition)", ok, halfOpened)
	}
	if closed := b.Success(); !closed {
		t.Fatal("successful replacement trial did not close the circuit")
	}
}

func TestHalfOpenOutcomes(t *testing.T) {
	now := time.Unix(0, 0)
	b := New(1, time.Second)
	b.Failure(now)
	if _, _, ok := b.Allow(now.Add(time.Second)); !ok {
		t.Fatal("trial not admitted after cooldown")
	}
	// Trial failure re-opens for a fresh cooldown.
	if !b.Failure(now.Add(time.Second)) {
		t.Fatal("failed trial did not re-open")
	}
	if _, _, ok := b.Allow(now.Add(time.Second + 500*time.Millisecond)); ok {
		t.Fatal("allowed during re-opened cooldown")
	}
	if _, _, ok := b.Allow(now.Add(2 * time.Second)); !ok {
		t.Fatal("second trial not admitted")
	}
	if closed := b.Success(); !closed {
		t.Fatal("successful trial did not report the close transition")
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	// Success on a closed circuit resets the streak without a transition.
	b2 := New(2, time.Second)
	b2.Failure(now)
	if closed := b2.Success(); closed {
		t.Fatal("success on closed circuit reported a transition")
	}
	if b2.Failure(now) {
		t.Fatal("streak not reset by success")
	}
}

func TestThresholdClamp(t *testing.T) {
	b := New(0, time.Second)
	if !b.Failure(time.Unix(0, 0)) {
		t.Fatal("threshold 0 should clamp to 1 and open on first failure")
	}
}
