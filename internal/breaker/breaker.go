// Package breaker is the repo's shared three-state circuit breaker: the
// state machine PR 4 built for per-fingerprint run protection in the
// serving layer, extracted so the cluster layer can reuse it per peer.
// A Breaker holds pure state — no clock, no locks, no metrics. Callers
// pass their own notion of now (injectable in tests), hold their own
// mutex (the serve runner and the cluster membership each already have
// one), and translate the returned transitions into their own counters.
package breaker

import "time"

// State is the classic circuit-breaker lifecycle.
type State int

const (
	// Closed: requests flow; consecutive failures are counted.
	Closed State = iota
	// Open: requests fast-fail until the cooldown elapses.
	Open
	// HalfOpen: one trial request is in flight; its outcome decides
	// between Closed and another Open cooldown.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// Breaker tracks one subject's failure streak (a config fingerprint, a
// peer replica). After Threshold consecutive failures the circuit opens
// for Cooldown; then one trial is admitted (half-open), whose success
// closes the circuit and whose failure re-opens it.
//
// Not safe for concurrent use on its own: the owner serializes access
// under whatever lock already guards its breaker map.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	state      State
	fails      int       // consecutive failures while closed
	openUntil  time.Time // when an open circuit admits its trial
	trialUntil time.Time // half-open: no second trial before this
}

// New returns a closed breaker. threshold < 1 is clamped to 1.
func New(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// State returns the current state.
func (b *Breaker) State() State { return b.state }

// Allow decides whether a request may proceed at time now. While the
// circuit is open it returns (remaining cooldown, false); when the
// cooldown has elapsed it transitions to half-open — admitting exactly
// one trial — and reports halfOpened so the caller can count the
// transition. While half-open, further callers are refused until the
// trial reports an outcome or one cooldown elapses; the time bound
// means a trial whose outcome is never reported (caller cancelled
// before Success/Failure) delays the next trial instead of wedging the
// circuit forever.
func (b *Breaker) Allow(now time.Time) (wait time.Duration, halfOpened, ok bool) {
	switch b.state {
	case Open:
		if now.Before(b.openUntil) {
			return b.openUntil.Sub(now), false, false
		}
		b.state = HalfOpen
		b.trialUntil = now.Add(b.cooldown)
		return 0, true, true
	case HalfOpen:
		if now.Before(b.trialUntil) {
			return b.trialUntil.Sub(now), false, false
		}
		// The admitted trial went silent: let another through.
		b.trialUntil = now.Add(b.cooldown)
		return 0, false, true
	default:
		return 0, false, true
	}
}

// Success records a successful request. It returns true when the call
// closed a previously open or half-open circuit (a state transition the
// caller may want to count); a success on a closed circuit just resets
// the failure streak.
func (b *Breaker) Success() (closed bool) {
	closed = b.state != Closed
	b.state = Closed
	b.fails = 0
	return closed
}

// Failure records a failed request at time now. It returns true when
// the call opened the circuit (either the threshold was reached while
// closed, or a half-open trial failed).
func (b *Breaker) Failure(now time.Time) (opened bool) {
	switch b.state {
	case HalfOpen:
		// The trial failed: straight back to open for another cooldown.
		b.state = Open
		b.openUntil = now.Add(b.cooldown)
		return true
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = Open
			b.openUntil = now.Add(b.cooldown)
			b.fails = 0
			return true
		}
	}
	return false
}
