package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strings"
	"sync"
	"time"
)

// Dynamic membership, SWIM-style. Each replica keeps a local member
// list with per-member state (alive → suspect → dead, or left on
// graceful shutdown) and an incarnation number, and ships its entire
// list piggybacked on every probe, ack, and join exchange. Incarnation
// numbers give updates a total order per member: a higher incarnation
// always wins, and at equal incarnations the more pessimistic state
// wins (suspect over alive) except that dead/left are sticky — only a
// fresh firsthand contact, which bumps the incarnation past the
// tombstone, resurrects a member. A replica that learns it is suspected
// refutes by incrementing its own incarnation, which outranks the
// suspicion everywhere it gossips.
//
// No consensus anywhere: the lists converge because the merge relation
// is a join-semilattice (commutative, idempotent, monotone), and the
// determinism contract makes convergence *sufficient* — during any
// window where two replicas disagree about membership they can at worst
// both compute a fingerprint, producing identical bytes.

// MemberState is one member's position in the SWIM lifecycle.
type MemberState uint8

const (
	// StateAlive: responding to probes (directly or via a relay).
	StateAlive MemberState = iota
	// StateSuspect: a probe round failed; still in the ring (its keys
	// are served by the next peer in sequence) pending refutation.
	StateSuspect
	// StateDead: suspicion timed out; removed from the ring.
	StateDead
	// StateLeft: announced a graceful departure; removed from the ring.
	StateLeft
)

func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	default:
		return "unknown"
	}
}

// parseMemberState reverses MemberState.String for the wire form.
func parseMemberState(s string) (MemberState, bool) {
	switch s {
	case "alive":
		return StateAlive, true
	case "suspect":
		return StateSuspect, true
	case "dead":
		return StateDead, true
	case "left":
		return StateLeft, true
	default:
		return StateAlive, false
	}
}

// MemberUpdate is one member's record as gossiped on the wire and as
// reported by /v1/peer/status.
type MemberUpdate struct {
	Name        string `json:"name"`  // normalized base URL
	State       string `json:"state"` // alive | suspect | dead | left
	Incarnation uint64 `json:"incarnation"`
}

// memberInfo is the in-memory record for one remote member.
type memberInfo struct {
	state       MemberState
	incarnation uint64
	since       time.Time // when state last changed (suspect timeout, tombstone GC)
}

// memberEvent names a membership transition for the events counter.
type memberEvent string

const (
	eventJoin    memberEvent = "join"
	eventAlive   memberEvent = "alive"
	eventSuspect memberEvent = "suspect"
	eventDead    memberEvent = "dead"
	eventLeft    memberEvent = "left"
	eventRefute  memberEvent = "refute"
)

// Memberlist is one replica's convergent view of the cluster. Self is
// implicit — always alive at the current self-incarnation — and remote
// members live in the map, including dead/left tombstones (kept so
// stale alive gossip cannot resurrect a member the cluster already
// buried; tombstones are GC'd well after any gossip of that incarnation
// has died out).
type Memberlist struct {
	self string
	now  func() time.Time

	mu      sync.Mutex
	selfInc uint64
	members map[string]*memberInfo
	onEvent func(ev memberEvent, member string) // called with mu held; must not block
}

// newMemberlist builds the list with the given initial remote members,
// all alive at incarnation 0 (the static -peers bootstrap). onEvent may
// be nil.
func newMemberlist(self string, initial []string, now func() time.Time, onEvent func(memberEvent, string)) *Memberlist {
	m := &Memberlist{
		self:    self,
		now:     now,
		members: map[string]*memberInfo{},
		onEvent: onEvent,
	}
	t := now()
	for _, name := range initial {
		if name == self {
			continue
		}
		m.members[name] = &memberInfo{state: StateAlive, since: t}
	}
	return m
}

func (m *Memberlist) emit(ev memberEvent, member string) {
	if m.onEvent != nil {
		m.onEvent(ev, member)
	}
}

// SelfIncarnation returns this replica's current incarnation number.
func (m *Memberlist) SelfIncarnation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.selfInc
}

// BumpSelf increments and returns the self incarnation — used by the
// leave broadcast so the departure announcement outranks any alive
// record still circulating.
func (m *Memberlist) BumpSelf() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.selfInc++
	return m.selfInc
}

// Snapshot renders the full membership — self included — sorted by
// name, ready to piggyback on a gossip message or a status response.
func (m *Memberlist) Snapshot() []MemberUpdate {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberUpdate, 0, len(m.members)+1)
	out = append(out, MemberUpdate{Name: m.self, State: StateAlive.String(), Incarnation: m.selfInc})
	for name, info := range m.members {
		out = append(out, MemberUpdate{Name: name, State: info.state.String(), Incarnation: info.incarnation})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RingMembers returns the sorted set of members that belong on the
// hash ring: self plus every remote in alive or suspect state. Suspects
// stay on the ring — demoting them instantly would remap keys on every
// transient probe loss — but the Authority walk skips them, so their
// keys are served by the next member in sequence until the suspicion
// resolves either way.
func (m *Memberlist) RingMembers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.members)+1)
	out = append(out, m.self)
	for name, info := range m.members {
		if info.state == StateAlive || info.state == StateSuspect {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Counts reports how many remote members are alive and suspect.
func (m *Memberlist) Counts() (alive, suspect int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, info := range m.members {
		switch info.state {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		}
	}
	return alive, suspect
}

// StateOf returns a remote member's current state. Self reports alive.
// Unknown members report (dead, false).
func (m *Memberlist) StateOf(name string) (MemberState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if name == m.self {
		return StateAlive, true
	}
	info, ok := m.members[name]
	if !ok {
		return StateDead, false
	}
	return info.state, true
}

// Merge folds a batch of gossiped updates into the local view and
// reports whether the ring membership may have changed. Precedence per
// member: higher incarnation wins outright; at equal incarnation
// suspect overrides alive, and dead/left override both (a terminal
// verdict at incarnation i kills any liveness claim at i). Updates
// about self never change self's record — a suspicion or death notice
// about self at the current incarnation is refuted by bumping the
// incarnation, which outranks the rumor everywhere.
func (m *Memberlist) Merge(updates []MemberUpdate) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, u := range updates {
		state, ok := parseMemberState(u.State)
		if !ok || u.Name == "" {
			continue
		}
		if u.Name == m.self {
			if m.refuteLocked(state, u.Incarnation) {
				changed = true
			}
			continue
		}
		if m.applyLocked(u.Name, state, u.Incarnation) {
			changed = true
		}
	}
	return changed
}

// refuteLocked handles a gossiped claim about self. Caller holds m.mu.
func (m *Memberlist) refuteLocked(state MemberState, inc uint64) (changed bool) {
	switch state {
	case StateAlive:
		// Someone knows us at a higher incarnation (e.g. we refuted,
		// crashed, restarted, and the refutation outlived us): adopt it
		// so our own announcements keep outranking stale rumors.
		if inc > m.selfInc {
			m.selfInc = inc
		}
		return false
	default:
		// suspect/dead/left about self: refute by outbidding.
		if inc >= m.selfInc {
			m.selfInc = inc + 1
			m.emit(eventRefute, m.self)
			return true
		}
		return false
	}
}

// applyLocked folds one update about a remote member. Caller holds m.mu.
func (m *Memberlist) applyLocked(name string, state MemberState, inc uint64) (changed bool) {
	cur, known := m.members[name]
	if !known {
		// Terminal gossip about a member we never met is a tombstone
		// worth keeping (so later stale alive gossip stays dead), but it
		// is not a join.
		m.members[name] = &memberInfo{state: state, incarnation: inc, since: m.now()}
		if state == StateAlive || state == StateSuspect {
			m.emit(eventJoin, name)
			return true
		}
		return false
	}
	if !overrides(state, inc, cur.state, cur.incarnation) {
		return false
	}
	ringBefore := cur.state == StateAlive || cur.state == StateSuspect
	prev := cur.state
	cur.state = state
	cur.incarnation = inc
	cur.since = m.now()
	ringAfter := state == StateAlive || state == StateSuspect
	switch {
	case state == StateAlive && prev != StateAlive:
		m.emit(eventAlive, name)
	case state == StateSuspect && prev != StateSuspect:
		m.emit(eventSuspect, name)
	case state == StateDead && prev != StateDead:
		m.emit(eventDead, name)
	case state == StateLeft && prev != StateLeft:
		m.emit(eventLeft, name)
	}
	return ringBefore != ringAfter || state != prev
}

// overrides is the SWIM precedence relation: does (ns, ni) supersede
// (os, oi)?
func overrides(ns MemberState, ni uint64, os MemberState, oi uint64) bool {
	if ni > oi {
		// A higher incarnation always wins — except that a liveness
		// claim cannot un-bury a tombstone; only firsthand contact
		// (NoteFirsthand) resurrects, because gossip of "alive at i+1"
		// may predate the death it appears to refute.
		if (os == StateDead || os == StateLeft) && (ns == StateAlive || ns == StateSuspect) {
			return false
		}
		return true
	}
	if ni < oi {
		return false
	}
	// Equal incarnation: strictly more pessimistic wins.
	rank := func(s MemberState) int {
		switch s {
		case StateAlive:
			return 0
		case StateSuspect:
			return 1
		default: // dead, left
			return 2
		}
	}
	return rank(ns) > rank(os)
}

// NoteFirsthand records direct, authenticated contact from member name
// claiming incarnation inc: a probe, ack, or join we received from the
// member itself. Firsthand evidence outranks any rumor — including a
// tombstone, which is how a restarted replica (incarnation reset to 0)
// rejoins a ring that declared its previous life dead: the revived
// record's incarnation is bumped past the tombstone so the resurrection
// outgossips it.
func (m *Memberlist) NoteFirsthand(name string, inc uint64) (changed bool) {
	if name == m.self || name == "" {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, known := m.members[name]
	if !known {
		m.members[name] = &memberInfo{state: StateAlive, incarnation: inc, since: m.now()}
		m.emit(eventJoin, name)
		return true
	}
	if cur.state == StateAlive && cur.incarnation >= inc {
		return false
	}
	newInc := inc
	if cur.incarnation >= newInc {
		newInc = cur.incarnation + 1
	}
	prev := cur.state
	cur.state = StateAlive
	cur.incarnation = newInc
	cur.since = m.now()
	if prev != StateAlive {
		if prev == StateDead || prev == StateLeft {
			m.emit(eventJoin, name)
		} else {
			m.emit(eventAlive, name)
		}
		return true
	}
	return false
}

// MarkSuspect downgrades an alive member after a failed probe round
// (direct and indirect probes all failed). The suspicion is pinned to
// the member's current incarnation so a refutation at +1 clears it.
func (m *Memberlist) MarkSuspect(name string) (changed bool) {
	if name == m.self {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.members[name]
	if !ok || cur.state != StateAlive {
		return false
	}
	cur.state = StateSuspect
	cur.since = m.now()
	m.emit(eventSuspect, name)
	return true
}

// SweepSuspects promotes suspicions older than timeout to dead and
// garbage-collects tombstones older than 16× the timeout (long after
// any gossip of that incarnation has stopped circulating). It reports
// whether the ring membership changed.
func (m *Memberlist) SweepSuspects(timeout time.Duration) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	// Collect-then-mutate in sorted order so event emission is
	// deterministic for a given clock.
	names := make([]string, 0, len(m.members))
	for name := range m.members {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		info := m.members[name]
		switch info.state {
		case StateSuspect:
			if now.Sub(info.since) >= timeout {
				info.state = StateDead
				info.since = now
				m.emit(eventDead, name)
				changed = true
			}
		case StateDead, StateLeft:
			if now.Sub(info.since) >= 16*timeout {
				delete(m.members, name)
			}
		}
	}
	return changed
}

// DeadMembers returns the sorted names of members currently held as
// dead tombstones — not graceful departures, which announced their own
// exit and rejoin via the join protocol. This is the reconnection
// probe's candidate set: dead members are off the ring, so nothing on
// the request path would ever contact them again, and a healed
// partition needs someone to make first contact.
func (m *Memberlist) DeadMembers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, 2)
	for name, info := range m.members {
		if info.state == StateDead {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// EpochOf derives the ring epoch from a sorted member list: the first
// eight bytes of the SHA-256 over the newline-joined names. Deriving
// the epoch from content rather than a counter means replicas that
// converge on the same membership converge on the same epoch with no
// coordination — an epoch *is* a membership fingerprint, the same trick
// the artifact layer plays with configuration fingerprints.
func EpochOf(members []string) uint64 {
	sum := sha256.Sum256([]byte(strings.Join(members, "\n")))
	return binary.BigEndian.Uint64(sum[:8])
}
