package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// The consistent-hash ring maps every configuration fingerprint to an
// owner replica. Determinism does the heavy lifting: because a
// fingerprint identifies exactly one artifact byte-set, "who serves
// this run" is a pure routing question — any replica that computes it
// produces the same bytes, so the ring only has to make replicas
// *agree* on a default owner, not keep them consistent. All hashing is
// SHA-256-derived so every process, architecture, and Go release maps
// the same membership to the same ring; the ring must never depend on
// map iteration order or hash/maphash's per-process seed.

// defaultVirtualNodes is the per-peer vnode count. 128 points per peer
// keeps the per-peer share of key space within a few percent of uniform
// for small clusters while the ring stays a few-KB sorted slice.
const defaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring over a set of peer names
// (base URLs in practice). Build a new Ring to change membership; the
// point of consistent hashing is that the rebuilt ring moves only
// ~1/n of the key space.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  []string    // sorted member list
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds a ring with vnodes virtual points per peer (<=0 uses
// the default). Peer order is irrelevant — membership is a set.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	members := append([]string(nil), peers...)
	sort.Strings(members)
	r := &Ring{peers: members, points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, p := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(fmt.Sprintf("%s\x00%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break by peer name so equal hashes (vanishingly rare but
		// possible) still order identically on every replica.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// pointHash maps a label to its position on the ring: the first 8 bytes
// of SHA-256, the same digest family the fingerprint itself uses.
func pointHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the sorted membership.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning key: the first point clockwise from the
// key's position. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successorIndex(key)].peer
}

// Sequence returns every peer in ring order starting at key's owner:
// the owner first, then each distinct successor. This is the takeover
// order — when the owner is unreachable, the first healthy entry after
// it is the lease authority, and every replica walking the same
// sequence converges on the same stand-in.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	seq := make([]string, 0, len(r.peers))
	seen := make(map[string]bool, len(r.peers))
	for i, start := 0, r.successorIndex(key); i < len(r.points) && len(seq) < len(r.peers); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			seq = append(seq, p)
		}
	}
	return seq
}

// successorIndex locates the first ring point at or clockwise after the
// key's hash (wrapping past the top).
func (r *Ring) successorIndex(key string) int {
	h := pointHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
