// Package cluster turns the determinism contract into a scaling
// mechanism. A configuration fingerprint names exactly one artifact
// byte-set no matter which process computes it, so a set of rcpt-serve
// replicas needs no state replication at all — only agreement on who
// computes what first. Three pieces provide that agreement, each
// degrading to local compute when peers misbehave:
//
//   - a consistent-hash ring (ring.go) routes each fingerprint to an
//     owner replica, concentrating cache hits and collapsing duplicate
//     work onto the owner's singleflight;
//   - cluster-wide singleflight (lease.go + the serve integration):
//     non-owners first try a peer cache fill from the owner, and when
//     the owner is gone they race for a compute lease so at most one
//     surviving replica executes the run;
//   - work-stealing stage dispatch (dispatch.go): the replica executing
//     a run farms per-(year, replica) trace stages out to idle peers
//     over a checksummed columnar stream, falling back to local
//     recompute on any fault.
//
// The resulting invariant, pinned by the peer-death tests: faults cost
// latency, never bytes. Any replica, any failure pattern, same
// artifacts.
//
// Membership is static (-peers flag): the ring is fixed at startup and
// liveness is layered on top via health probes and per-peer circuit
// breakers, rather than by mutating membership at runtime — a dead
// peer's keys are taken over by the next healthy peer in ring order
// without remapping anyone else's.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/obs"
)

// Options configures a replica's view of the cluster.
type Options struct {
	// Self is this replica's advertised base URL (e.g.
	// "http://127.0.0.1:8091"); it must appear in Peers.
	Self string
	// Peers lists every replica's base URL, including Self. Order is
	// irrelevant; all replicas must be configured with the same set.
	Peers []string
	// Secret authenticates peer endpoints. Empty disables auth (tests,
	// trusted localhost rings).
	Secret string
	// VirtualNodes per peer on the hash ring (<=0: 128).
	VirtualNodes int
	// LeaseTTL bounds how long a dead lease holder blocks takeover
	// (<=0: 15s).
	LeaseTTL time.Duration
	// ProbeInterval is the health-probe period (<=0: 2s); ProbeTimeout
	// bounds one probe request (<=0: 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// BreakerThreshold consecutive request failures open a peer's
	// circuit for BreakerCooldown (<=0: 3 failures, 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RequestTimeout bounds control-plane requests: lease and status
	// calls (<=0: 5s). Artifact fills and stage steals are
	// compute-bound on the far side and use FillTimeout (<=0: 120s).
	RequestTimeout time.Duration
	FillTimeout    time.Duration
	// HTTPClient overrides the peer transport (tests). Nil builds one
	// with FillTimeout as overall timeout.
	HTTPClient *http.Client
	// Now injects the clock for breakers and leases. Nil uses time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = defaultVirtualNodes
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = defaultLeaseTTL
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.FillTimeout <= 0 {
		o.FillTimeout = 120 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Cluster is one replica's handle on the peer protocol: ring routing,
// lease acquisition, peer fills, stage stealing, and health tracking.
type Cluster struct {
	opts   Options
	self   string
	ring   *Ring
	client *peerClient
	leases *LeaseTable
	now    func() time.Time

	remotes []*peerState // ring order of r.ring.Peers(), self excluded
	byName  map[string]*peerState

	selfInflight atomic.Int64

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool

	peerFills         *obs.CounterVec // outcome: ok | error | integrity
	leaseReqs         *obs.CounterVec // outcome: granted | denied | error
	steals            *obs.CounterVec // outcome: local | remote | fallback
	stealSeconds      *obs.Histogram
	takeovers         *obs.Counter
	peerHealthyG      *obs.GaugeVec   // peer
	breakerOpenG      *obs.GaugeVec   // peer
	probeFailures     *obs.CounterVec // peer
	healthTransitions *obs.CounterVec // peer, direction: up | down
	probePanics       *obs.Counter
}

// New validates the membership, builds the ring, and registers the
// cluster metric families on reg. It does not start probing — call
// Start once the local listener is up, so peers' first probes of a
// booting ring don't race its bind.
func New(opts Options, reg *obs.Registry) (*Cluster, error) {
	opts = opts.withDefaults()
	if opts.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	opts.Self = normalizePeer(opts.Self)
	seen := map[string]bool{}
	peers := make([]string, 0, len(opts.Peers))
	for _, p := range opts.Peers {
		p = normalizePeer(p)
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer URL")
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) base URL", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	if !seen[opts.Self] {
		return nil, fmt.Errorf("cluster: Self %q is not among the configured peers", opts.Self)
	}
	if len(peers) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 peers (got %d); run without -peers for a single replica", len(peers))
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = newHTTPClient(opts.FillTimeout)
	}
	c := &Cluster{
		opts:   opts,
		self:   opts.Self,
		ring:   NewRing(peers, opts.VirtualNodes),
		client: &peerClient{hc: hc, secret: opts.Secret},
		now:    opts.Now,
		byName: map[string]*peerState{},
		stop:   make(chan struct{}),

		peerFills: reg.CounterVec("rcpt_cluster_peer_fills_total",
			"peer cache-fill attempts by outcome", "outcome"),
		leaseReqs: reg.CounterVec("rcpt_cluster_lease_requests_total",
			"compute-lease acquisition attempts by outcome", "outcome"),
		steals: reg.CounterVec("rcpt_cluster_stage_steals_total",
			"trace-stage dispatch decisions by outcome", "outcome"),
		stealSeconds: reg.Histogram("rcpt_cluster_stage_steal_seconds",
			"remote stage execution latency (successful steals)", obs.DefBuckets()),
		takeovers: reg.Counter("rcpt_cluster_lease_takeovers_total",
			"leases acquired from a non-owner authority after the owner was unreachable"),
		peerHealthyG: reg.GaugeVec("rcpt_cluster_peer_healthy",
			"1 when the peer's last health probe succeeded", "peer"),
		breakerOpenG: reg.GaugeVec("rcpt_cluster_peer_breaker_open",
			"1 while the peer's circuit breaker is open", "peer"),
		probeFailures: reg.CounterVec("rcpt_cluster_probe_failures_total",
			"failed health probes per peer", "peer"),
		healthTransitions: reg.CounterVec("rcpt_cluster_health_transitions_total",
			"peer health flips observed by the prober", "peer", "direction"),
		probePanics: reg.Counter("rcpt_cluster_probe_panics_total",
			"recovered panics inside the health prober"),
	}
	for _, p := range c.ring.Peers() {
		if p == c.self {
			continue
		}
		ps := &peerState{name: p, b: breaker.New(opts.BreakerThreshold, opts.BreakerCooldown)}
		c.remotes = append(c.remotes, ps)
		c.byName[p] = ps
		c.peerHealthyG.With(p).Set(1)
		c.breakerOpenG.With(p).Set(0)
	}
	c.leases = NewLeaseTable(opts.LeaseTTL, c.now)
	return c, nil
}

// Start launches the health prober. Idempotent.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(1)
	go c.probeLoop()
}

// Close stops the prober and waits for it to exit — at most one probe
// round (bounded by ProbeTimeout) — unless ctx expires first, in which
// case the prober is left to die on its own and ctx's error is
// returned. Idempotent.
func (c *Cluster) Close(ctx context.Context) error {
	if !c.started {
		return nil
	}
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			// wg.Wait cannot panic; the backstop is the package-wide rule
			// that no cluster goroutine may unwind the process.
			_ = recover()
		}()
		c.wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Self returns this replica's normalized base URL.
func (c *Cluster) Self() string { return c.self }

// Secret returns the shared peer secret (serve's auth middleware needs
// it to verify inbound peer requests).
func (c *Cluster) Secret() string { return c.opts.Secret }

// Leases exposes the local lease table: this replica grants leases for
// keys it is the authority of.
func (c *Cluster) Leases() *LeaseTable { return c.leases }

// Owner returns the ring owner of key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// IsOwner reports whether this replica owns key.
func (c *Cluster) IsOwner(key string) bool { return c.ring.Owner(key) == c.self }

// Sequence returns the takeover order for key (owner first).
func (c *Cluster) Sequence(key string) []string { return c.ring.Sequence(key) }

// Members returns the ring membership (sorted).
func (c *Cluster) Members() []string { return c.ring.Peers() }

// healthyPeer reports whether peer (never self) currently passes
// probes; unknown peers are unhealthy.
func (c *Cluster) healthyPeer(peer string) bool {
	p, ok := c.byName[peer]
	return ok && p.healthyNow()
}

// Authority returns the current lease authority for key: the first
// peer in the ring sequence that is self or healthy. Every replica
// walks the same sequence with (eventually) the same health view, so
// they converge on the same authority; transient disagreement during a
// failure is safe because duplicate computes produce identical bytes.
func (c *Cluster) Authority(key string) string {
	for _, p := range c.ring.Sequence(key) {
		if p == c.self || c.healthyPeer(p) {
			return p
		}
	}
	return c.self
}

// Quorum reports how many replicas (including self) are currently
// believed healthy, and the total membership.
func (c *Cluster) Quorum() (healthy, total int) {
	healthy = 1 // self
	for _, p := range c.remotes {
		if p.healthyNow() {
			healthy++
		}
	}
	return healthy, len(c.remotes) + 1
}

// PeerHealth snapshots every remote peer's state in ring order.
func (c *Cluster) PeerHealth() []PeerHealth {
	out := make([]PeerHealth, 0, len(c.remotes))
	for _, p := range c.remotes {
		out = append(out, p.snapshot())
	}
	return out
}

// AcquireLease obtains (or is denied) the compute lease on key,
// walking the takeover sequence: ask the owner first; if it is
// unhealthy or unreachable, ask the next healthy peer, and so on. Self
// grants locally. The final fallback — every candidate unreachable —
// grants locally: with the whole ring dark this replica must be able
// to serve alone, and a duplicate compute costs CPU, not correctness.
func (c *Cluster) AcquireLease(ctx context.Context, key string) (granted bool, holder string, err error) {
	for _, candidate := range c.ring.Sequence(key) {
		if candidate == c.self {
			g, h, _ := c.leases.Acquire(key, c.self)
			c.countLease(g)
			if g && c.ring.Owner(key) != c.self {
				c.takeovers.Inc()
			}
			return g, h, nil
		}
		p := c.byName[candidate]
		if p == nil || !p.healthyNow() || !p.allow(c.now()) {
			continue
		}
		lctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
		lr, lerr := c.client.postLease(lctx, candidate, LeaseRequest{Key: key, Holder: c.self})
		cancel()
		if lerr != nil {
			c.reportFailure(p, lerr)
			c.leaseReqs.With("error").Inc()
			continue // authority unreachable: next in sequence takes over
		}
		c.reportSuccess(p)
		c.countLease(lr.Granted)
		if lr.Granted && c.ring.Owner(key) != candidate {
			c.takeovers.Inc()
		}
		return lr.Granted, lr.Holder, nil
	}
	g, h, _ := c.leases.Acquire(key, c.self)
	c.countLease(g)
	return g, h, nil
}

func (c *Cluster) countLease(granted bool) {
	if granted {
		c.leaseReqs.With("granted").Inc()
	} else {
		c.leaseReqs.With("denied").Inc()
	}
}

// ReleaseLease drops the lease on key, wherever it was granted.
// Best-effort: an unreachable authority's lease simply expires.
func (c *Cluster) ReleaseLease(ctx context.Context, key string) {
	authority := c.Authority(key)
	if authority == c.self {
		c.leases.Release(key, c.self)
		return
	}
	p := c.byName[authority]
	if p == nil || !p.healthyNow() {
		return
	}
	lctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	// TTL expiry is the backstop: a failed release costs at most one
	// LeaseTTL of blocked takeover, never correctness.
	if _, err := c.client.postLease(lctx, authority, LeaseRequest{Key: key, Holder: c.self, Release: true}); err != nil {
		c.reportFailure(p, err)
	}
}

// FetchArtifact pulls one rendered artifact from peer with breaker
// gating and integrity verification. cfgParam is the encoded config
// (EncodeConfigParam) so the peer can compute a run it has never seen.
func (c *Cluster) FetchArtifact(ctx context.Context, peer, fp, artifact, format, cfgParam string) (*Fill, error) {
	p := c.byName[peer]
	if p == nil {
		return nil, fmt.Errorf("cluster: unknown peer %q", peer)
	}
	if !p.allow(c.now()) {
		c.peerFills.With("error").Inc()
		return nil, fmt.Errorf("cluster: circuit open for peer %s", peer)
	}
	fctx, cancel := context.WithTimeout(ctx, c.opts.FillTimeout)
	defer cancel()
	fill, err := c.client.fetchArtifact(fctx, peer, fp, artifact, format, cfgParam)
	if err != nil {
		c.reportFailure(p, err)
		if isIntegrity(err) {
			c.peerFills.With("integrity").Inc()
		} else {
			c.peerFills.With("error").Inc()
		}
		return nil, err
	}
	c.reportSuccess(p)
	c.peerFills.With("ok").Inc()
	return fill, nil
}

// normalizePeer canonicalizes a peer base URL (no trailing slash).
func normalizePeer(p string) string {
	return strings.TrimRight(strings.TrimSpace(p), "/")
}
