// Package cluster turns the determinism contract into a scaling
// mechanism. A configuration fingerprint names exactly one artifact
// byte-set no matter which process computes it, so a set of rcpt-serve
// replicas needs no state replication at all — only agreement on who
// computes what first. Three pieces provide that agreement, each
// degrading to local compute when peers misbehave:
//
//   - a consistent-hash ring (ring.go) routes each fingerprint to an
//     owner replica, concentrating cache hits and collapsing duplicate
//     work onto the owner's singleflight;
//   - cluster-wide singleflight (lease.go + the serve integration):
//     non-owners first try a peer cache fill from the owner, and when
//     the owner is gone they race for a compute lease so at most one
//     surviving replica executes the run;
//   - work-stealing stage dispatch (dispatch.go): the replica executing
//     a run farms per-(year, replica) trace stages out to idle peers
//     over a checksummed columnar stream, falling back to local
//     recompute on any fault.
//
// The resulting invariant, pinned by the peer-death and partition
// tests: faults cost latency, never bytes. Any replica, any failure
// pattern, same artifacts.
//
// Membership is dynamic (membership.go, gossip.go): replicas probe each
// other SWIM-style (direct probe, then indirect probe through K relays,
// then alive→suspect→dead with incarnation numbers), gossip their full
// member list on every probe and ack, and admit newcomers through a
// seed-node join protocol (-join). The hash ring is rebuilt from the
// live member list under a content-derived epoch — replicas that agree
// on membership agree on the epoch with no coordination — and authority
// fills and lease grants carry that epoch so a request that straddles a
// handover is detected and retried against the new authority. Because
// duplicate computes are byte-identical, every window of membership
// disagreement costs at most duplicated CPU, never wrong bytes.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// epochGaugeMask truncates the 64-bit content-derived epoch to 53 bits
// so the Prometheus gauge (a float64) represents it exactly; the full
// value is exposed as hex in /v1/peer/status. Equality comparisons on
// the gauge remain sound — 53 bits of a SHA-256 prefix do not collide
// across the handful of membership sets a ring sees in its lifetime.
const epochGaugeMask = (uint64(1) << 53) - 1

// Options configures a replica's view of the cluster.
type Options struct {
	// Self is this replica's advertised base URL (e.g.
	// "http://127.0.0.1:8091"). With static membership (Join empty) it
	// must appear in Peers.
	Self string
	// Peers statically seeds the member list with every replica's base
	// URL, including Self. A single-element list (just Self) is a valid
	// bootstrap seed node that others join.
	Peers []string
	// Join lists seed nodes to announce to at startup instead of (or in
	// addition to) a static peer list. The replica pulls the member
	// list from the first reachable seed and gossips its own arrival;
	// join is retried every probe round until a seed answers.
	Join []string
	// Secret authenticates peer endpoints. Empty disables auth (tests,
	// trusted localhost rings).
	Secret string
	// VirtualNodes per peer on the hash ring (<=0: 128).
	VirtualNodes int
	// LeaseTTL bounds how long a dead lease holder blocks takeover
	// (<=0: 15s).
	LeaseTTL time.Duration
	// ProbeInterval is the gossip-probe period (<=0: 2s); ProbeTimeout
	// bounds one probe request (<=0: 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// SuspectTimeout is how long a member stays suspect before being
	// declared dead and dropped from the ring (<=0: max(3s, 5×probe
	// interval)). Long enough for a refutation to circulate; short
	// enough that a dead replica's keys move promptly.
	SuspectTimeout time.Duration
	// IndirectProbes is how many relays are asked to probe a peer that
	// failed its direct probe before it is suspected (<=0: 2).
	IndirectProbes int
	// BreakerThreshold consecutive request failures open a peer's
	// circuit for BreakerCooldown (<=0: 3 failures, 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RequestTimeout bounds control-plane requests: lease, join, and
	// status calls (<=0: 5s). Artifact fills and stage steals are
	// compute-bound on the far side and use FillTimeout (<=0: 120s).
	RequestTimeout time.Duration
	FillTimeout    time.Duration
	// HTTPClient overrides the peer transport (tests). Nil builds one
	// with FillTimeout as overall timeout.
	HTTPClient *http.Client
	// WrapTransport, when set, wraps the peer transport — the chaos
	// harness injects its deterministic network-fault RoundTripper
	// here. Applied to both a provided HTTPClient and the default one.
	WrapTransport func(http.RoundTripper) http.RoundTripper
	// Now injects the clock for breakers, leases, and suspicion
	// timeouts. Nil uses time.Now.
	Now func() time.Time
	// LocalStage computes one (year, rep) trace stage in-process; it is
	// the compute behind both the dispatch fallback and peer-served
	// steals. Nil uses core.TraceReplicaTable directly. The serving
	// layer installs a stage-cache-aware implementation here so a steal
	// or fallback answered from cache costs a decode, not a generation —
	// the bytes are identical either way.
	LocalStage func(cfg core.Config, year, rep int) (trace.JobTable, error)
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = defaultVirtualNodes
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = defaultLeaseTTL
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.SuspectTimeout <= 0 {
		o.SuspectTimeout = 5 * o.ProbeInterval
		if o.SuspectTimeout < 3*time.Second {
			o.SuspectTimeout = 3 * time.Second
		}
	}
	if o.IndirectProbes <= 0 {
		o.IndirectProbes = 2
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.FillTimeout <= 0 {
		o.FillTimeout = 120 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.LocalStage == nil {
		o.LocalStage = core.TraceReplicaTable
	}
	return o
}

// Cluster is one replica's handle on the peer protocol: membership and
// gossip, ring routing under an epoch, lease acquisition, peer fills,
// stage stealing, and health tracking.
type Cluster struct {
	opts    Options
	self    string
	client  *peerClient
	leases  *LeaseTable
	members *Memberlist
	now     func() time.Time

	// ring and epoch are rebuilt together from the live member list on
	// every membership change; readers take the RLock for one routing
	// decision and never hold it across I/O.
	ringMu sync.RWMutex
	ring   *Ring
	epoch  uint64

	peersMu sync.RWMutex
	byName  map[string]*peerState

	selfInflight atomic.Int64

	joined bool // join protocol completed (true from birth when Join is empty)

	// rounds counts completed probe rounds; it drives the reconnection
	// probe's rotation through dead tombstones. Touched only by the
	// single prober goroutine.
	rounds uint64

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool

	peerFills         *obs.CounterVec // outcome: ok | error | integrity | not_authority
	leaseReqs         *obs.CounterVec // outcome: granted | denied | error
	steals            *obs.CounterVec // outcome: local | remote | fallback
	stealSeconds      *obs.Histogram
	takeovers         *obs.Counter
	peerHealthyG      *obs.GaugeVec   // peer
	breakerOpenG      *obs.GaugeVec   // peer
	probeFailures     *obs.CounterVec // peer
	healthTransitions *obs.CounterVec // peer, direction: up | down
	probePanics       *obs.Counter

	membersG      *obs.Gauge
	suspectsG     *obs.Gauge
	epochG        *obs.Gauge
	gossipSent    *obs.CounterVec // type: probe | probe_indirect | join | leave
	gossipRecv    *obs.CounterVec // type: probe | probe_indirect | join
	memberEvents  *obs.CounterVec // event: join | alive | suspect | dead | left | refute
	epochMismatch *obs.CounterVec // op: fill | lease | stage
}

// New validates the membership options, builds the initial ring, and
// registers the cluster metric families on reg. It does not start
// probing or joining — call Start once the local listener is up, so
// peers' first probes of a booting ring don't race its bind.
func New(opts Options, reg *obs.Registry) (*Cluster, error) {
	opts = opts.withDefaults()
	if opts.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	opts.Self = normalizePeer(opts.Self)
	seen := map[string]bool{}
	peers := make([]string, 0, len(opts.Peers))
	for _, p := range opts.Peers {
		p = normalizePeer(p)
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer URL")
		}
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return nil, fmt.Errorf("cluster: peer %q is not an http(s) base URL", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	joinSeeds := make([]string, 0, len(opts.Join))
	for _, j := range opts.Join {
		j = normalizePeer(j)
		if j == "" || j == opts.Self {
			continue
		}
		if !strings.HasPrefix(j, "http://") && !strings.HasPrefix(j, "https://") {
			return nil, fmt.Errorf("cluster: join seed %q is not an http(s) base URL", j)
		}
		joinSeeds = append(joinSeeds, j)
	}
	opts.Join = joinSeeds
	if len(joinSeeds) == 0 {
		// Static membership: the classic -peers contract. Self must be
		// listed; a single-element list is a seed node awaiting joins.
		if !seen[opts.Self] {
			return nil, fmt.Errorf("cluster: Self %q is not among the configured peers", opts.Self)
		}
	} else if !seen[opts.Self] {
		// Join mode: membership starts as self plus whatever the seeds
		// teach us.
		peers = append(peers, opts.Self)
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = newHTTPClient(opts.FillTimeout)
	}
	if opts.WrapTransport != nil {
		base := hc.Transport
		if base == nil {
			base = http.DefaultTransport
		}
		// Copy so a shared client (tests) is not mutated in place.
		wrapped := *hc
		wrapped.Transport = opts.WrapTransport(base)
		hc = &wrapped
	}
	c := &Cluster{
		opts:   opts,
		self:   opts.Self,
		client: &peerClient{hc: hc, secret: opts.Secret},
		now:    opts.Now,
		byName: map[string]*peerState{},
		joined: len(joinSeeds) == 0,
		stop:   make(chan struct{}),

		peerFills: reg.CounterVec("rcpt_cluster_peer_fills_total",
			"peer cache-fill attempts by outcome", "outcome"),
		leaseReqs: reg.CounterVec("rcpt_cluster_lease_requests_total",
			"compute-lease acquisition attempts by outcome", "outcome"),
		steals: reg.CounterVec("rcpt_cluster_stage_steals_total",
			"trace-stage dispatch decisions by outcome", "outcome"),
		stealSeconds: reg.Histogram("rcpt_cluster_stage_steal_seconds",
			"remote stage execution latency (successful steals)", obs.DefBuckets()),
		takeovers: reg.Counter("rcpt_cluster_lease_takeovers_total",
			"leases acquired from a non-owner authority after the owner was unreachable"),
		peerHealthyG: reg.GaugeVec("rcpt_cluster_peer_healthy",
			"1 while the peer is an alive member (not suspect, dead, or left)", "peer"),
		breakerOpenG: reg.GaugeVec("rcpt_cluster_peer_breaker_open",
			"1 while the peer's circuit breaker is open", "peer"),
		probeFailures: reg.CounterVec("rcpt_cluster_probe_failures_total",
			"failed direct probes per peer", "peer"),
		healthTransitions: reg.CounterVec("rcpt_cluster_health_transitions_total",
			"peer health flips observed by the prober", "peer", "direction"),
		probePanics: reg.Counter("rcpt_cluster_probe_panics_total",
			"recovered panics inside the gossip prober"),

		membersG: reg.Gauge("rcpt_cluster_members",
			"ring members (self plus alive and suspect peers)"),
		suspectsG: reg.Gauge("rcpt_cluster_suspects",
			"members currently suspected but not yet declared dead"),
		epochG: reg.Gauge("rcpt_cluster_epoch",
			"ring epoch (low 53 bits of the membership content hash; full value in /v1/peer/status)"),
		gossipSent: reg.CounterVec("rcpt_cluster_gossip_sent_total",
			"gossip messages sent, by type", "type"),
		gossipRecv: reg.CounterVec("rcpt_cluster_gossip_received_total",
			"gossip messages received, by type", "type"),
		memberEvents: reg.CounterVec("rcpt_cluster_membership_events_total",
			"membership state transitions observed locally, by event", "event"),
		epochMismatch: reg.CounterVec("rcpt_cluster_epoch_mismatch_total",
			"peer exchanges whose two sides held different ring epochs, by operation", "op"),
	}
	c.members = newMemberlist(opts.Self, peers, c.now, func(ev memberEvent, member string) {
		c.memberEvents.With(string(ev)).Inc()
	})
	initial := c.members.RingMembers()
	c.ring = NewRing(initial, opts.VirtualNodes)
	c.epoch = EpochOf(initial)
	c.leases = NewLeaseTable(opts.LeaseTTL, c.now)
	c.membershipChanged()
	return c, nil
}

// Start launches the gossip prober (which also drives the join
// protocol until a seed answers). Idempotent.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(1)
	go c.probeLoop()
}

// Close broadcasts a graceful leave, stops the prober, and waits for it
// to exit — at most one probe round — unless ctx expires first, in
// which case the prober is left to die on its own and ctx's error is
// returned. Idempotent.
func (c *Cluster) Close(ctx context.Context) error {
	if !c.started {
		return nil
	}
	select {
	case <-c.stop:
	default:
		c.Leave(ctx)
		close(c.stop)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			// wg.Wait cannot panic; the backstop is the package-wide rule
			// that no cluster goroutine may unwind the process.
			_ = recover()
		}()
		c.wg.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Self returns this replica's normalized base URL.
func (c *Cluster) Self() string { return c.self }

// Secret returns the shared peer secret (serve's auth middleware needs
// it to verify inbound peer requests).
func (c *Cluster) Secret() string { return c.opts.Secret }

// Leases exposes the local lease table: this replica grants leases for
// keys it is the authority of.
func (c *Cluster) Leases() *LeaseTable { return c.leases }

// Epoch returns the current ring epoch: the content hash of the live
// member list. Replicas with the same membership view report the same
// epoch without any coordination.
func (c *Cluster) Epoch() uint64 {
	c.ringMu.RLock()
	defer c.ringMu.RUnlock()
	return c.epoch
}

// EpochHex renders the epoch as fixed-width hex, the wire and status
// form.
func (c *Cluster) EpochHex() string {
	return fmt.Sprintf("%016x", c.Epoch())
}

// Owner returns the ring owner of key under the current epoch.
func (c *Cluster) Owner(key string) string {
	c.ringMu.RLock()
	defer c.ringMu.RUnlock()
	return c.ring.Owner(key)
}

// IsOwner reports whether this replica owns key.
func (c *Cluster) IsOwner(key string) bool { return c.Owner(key) == c.self }

// Sequence returns the takeover order for key (owner first) under the
// current epoch.
func (c *Cluster) Sequence(key string) []string {
	c.ringMu.RLock()
	defer c.ringMu.RUnlock()
	return c.ring.Sequence(key)
}

// Members returns the current ring membership (sorted): self plus every
// alive or suspect peer.
func (c *Cluster) Members() []string {
	c.ringMu.RLock()
	defer c.ringMu.RUnlock()
	return c.ring.Peers()
}

// MemberUpdates snapshots the full membership table — including dead
// and left tombstones — for /v1/peer/status.
func (c *Cluster) MemberUpdates() []MemberUpdate { return c.members.Snapshot() }

// membershipChanged rebuilds the ring and epoch from the live member
// list and refreshes the membership gauges. Called after any merge,
// suspicion, sweep, or firsthand contact that may have changed state;
// cheap when nothing ring-visible moved.
func (c *Cluster) membershipChanged() {
	want := c.members.RingMembers()
	c.ringMu.Lock()
	if !equalStrings(c.ring.Peers(), want) {
		c.ring = NewRing(want, c.opts.VirtualNodes)
		c.epoch = EpochOf(want)
	}
	epoch := c.epoch
	c.ringMu.Unlock()

	alive, suspect := c.members.Counts()
	c.membersG.Set(int64(1 + alive + suspect))
	c.suspectsG.Set(int64(suspect))
	c.epochG.Set(int64(epoch & epochGaugeMask))
	for _, name := range want {
		if name == c.self {
			continue
		}
		c.peerStateFor(name)
	}
	c.refreshHealthGauges()
}

// refreshHealthGauges reconciles the per-peer healthy gauge with the
// membership table (the prober also sets it inline on transitions; this
// covers changes learned via gossip rather than our own probes).
func (c *Cluster) refreshHealthGauges() {
	for _, u := range c.members.Snapshot() {
		if u.Name == c.self {
			continue
		}
		if u.State == StateAlive.String() {
			c.peerHealthyG.With(u.Name).Set(1)
		} else {
			c.peerHealthyG.With(u.Name).Set(0)
		}
	}
}

// peerStateFor returns (creating on first sight) the request-tracking
// state — breaker, inflight counter, last error — for a member.
func (c *Cluster) peerStateFor(name string) *peerState {
	c.peersMu.RLock()
	ps := c.byName[name]
	c.peersMu.RUnlock()
	if ps != nil {
		return ps
	}
	c.peersMu.Lock()
	defer c.peersMu.Unlock()
	if ps = c.byName[name]; ps == nil {
		ps = &peerState{name: name, b: breaker.New(c.opts.BreakerThreshold, c.opts.BreakerCooldown)}
		c.byName[name] = ps
		c.breakerOpenG.With(name).Set(0)
	}
	return ps
}

// lookupPeer returns a member's peerState without creating one.
func (c *Cluster) lookupPeer(name string) *peerState {
	c.peersMu.RLock()
	defer c.peersMu.RUnlock()
	return c.byName[name]
}

// healthyPeer reports whether peer (never self) is an alive member.
func (c *Cluster) healthyPeer(peer string) bool {
	st, ok := c.members.StateOf(peer)
	return ok && st == StateAlive
}

// Authority returns the current lease authority for key: the first
// member in the ring sequence that is self or alive (suspects keep
// their ring position but are skipped, so their keys are served without
// waiting out the suspicion). Every replica walks the same sequence
// with (eventually) the same membership view, so they converge on the
// same authority; transient disagreement during churn is safe because
// duplicate computes produce identical bytes.
func (c *Cluster) Authority(key string) string {
	for _, p := range c.Sequence(key) {
		if p == c.self || c.healthyPeer(p) {
			return p
		}
	}
	return c.self
}

// Quorum reports how many ring members (including self) are currently
// alive, and the total ring membership (alive + suspect + self).
func (c *Cluster) Quorum() (healthy, total int) {
	alive, suspect := c.members.Counts()
	return 1 + alive, 1 + alive + suspect
}

// PeerHealth snapshots every known remote member's state — including
// dead and left tombstones, which operators want to see — sorted by
// name.
func (c *Cluster) PeerHealth() []PeerHealth {
	snap := c.members.Snapshot()
	out := make([]PeerHealth, 0, len(snap))
	for _, u := range snap {
		if u.Name == c.self {
			continue
		}
		out = append(out, c.peerHealthFor(u))
	}
	return out
}

// AcquireLease obtains (or is denied) the compute lease on key,
// walking the takeover sequence: ask the owner first; if it is not
// alive or unreachable, ask the next alive member, and so on. Self
// grants locally. The final fallback — every candidate unreachable —
// grants locally: with the whole ring dark this replica must be able
// to serve alone, and a duplicate compute costs CPU, not correctness.
func (c *Cluster) AcquireLease(ctx context.Context, key string) (granted bool, holder string, err error) {
	epoch := c.EpochHex()
	for _, candidate := range c.Sequence(key) {
		if candidate == c.self {
			g, h, _ := c.leases.Acquire(key, c.self)
			c.countLease(g)
			if g && c.Owner(key) != c.self {
				c.takeovers.Inc()
			}
			return g, h, nil
		}
		p := c.lookupPeer(candidate)
		if p == nil || !c.healthyPeer(candidate) || !p.allow(c.now()) {
			continue
		}
		lctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
		lr, lerr := c.client.postLease(lctx, candidate, LeaseRequest{Key: key, Holder: c.self, Epoch: epoch})
		cancel()
		if lerr != nil {
			c.reportFailure(p, lerr)
			c.leaseReqs.With("error").Inc()
			continue // authority unreachable: next in sequence takes over
		}
		c.reportSuccess(p)
		if lr.Epoch != "" && lr.Epoch != epoch {
			// The grant straddled a membership change: advisory-only
			// waste (at worst two computes of identical bytes), metered
			// so churn cost is visible.
			c.epochMismatch.With("lease").Inc()
		}
		c.countLease(lr.Granted)
		if lr.Granted && c.Owner(key) != candidate {
			c.takeovers.Inc()
		}
		return lr.Granted, lr.Holder, nil
	}
	g, h, _ := c.leases.Acquire(key, c.self)
	c.countLease(g)
	return g, h, nil
}

func (c *Cluster) countLease(granted bool) {
	if granted {
		c.leaseReqs.With("granted").Inc()
	} else {
		c.leaseReqs.With("denied").Inc()
	}
}

// CheckLeaseEpoch meters a lease request whose sender held a different
// ring epoch than this (serving) replica. Called by the serve-side
// lease handler.
func (c *Cluster) CheckLeaseEpoch(reqEpoch string) {
	if reqEpoch != "" && reqEpoch != c.EpochHex() {
		c.epochMismatch.With("lease").Inc()
	}
}

// CheckStageEpoch meters a stage-steal request sent under a different
// ring epoch.
func (c *Cluster) CheckStageEpoch(reqEpoch string) {
	if reqEpoch != "" && reqEpoch != c.EpochHex() {
		c.epochMismatch.With("stage").Inc()
	}
}

// CheckFillEpoch meters an authority-fill request sent under a
// different ring epoch, and reports whether they differed.
func (c *Cluster) CheckFillEpoch(reqEpoch string) bool {
	if reqEpoch != "" && reqEpoch != c.EpochHex() {
		c.epochMismatch.With("fill").Inc()
		return true
	}
	return false
}

// ReleaseLease drops the lease on key, wherever it was granted.
// Best-effort: an unreachable authority's lease simply expires.
func (c *Cluster) ReleaseLease(ctx context.Context, key string) {
	authority := c.Authority(key)
	if authority == c.self {
		c.leases.Release(key, c.self)
		return
	}
	p := c.lookupPeer(authority)
	if p == nil || !c.healthyPeer(authority) {
		return
	}
	lctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	// TTL expiry is the backstop: a failed release costs at most one
	// LeaseTTL of blocked takeover, never correctness.
	if _, err := c.client.postLease(lctx, authority, LeaseRequest{Key: key, Holder: c.self, Release: true, Epoch: c.EpochHex()}); err != nil {
		c.reportFailure(p, err)
	}
}

// FetchArtifact pulls one rendered artifact from peer with breaker
// gating and integrity verification. cfgParam is the encoded config
// (EncodeConfigParam) so the peer can compute a run it has never seen.
// The request carries this replica's ring epoch; a *NotAuthorityError
// return means the responder's ring disagrees that it should compute —
// the caller re-resolves the authority and retries rather than treating
// the peer as failed. hint marks the fill as a hint probe (see
// HintHeader): the responder serves only bytes it already holds.
func (c *Cluster) FetchArtifact(ctx context.Context, peer, fp, artifact, format, cfgParam string, hint bool) (*Fill, error) {
	p := c.peerStateFor(peer)
	if !p.allow(c.now()) {
		c.peerFills.With("error").Inc()
		return nil, fmt.Errorf("cluster: circuit open for peer %s", peer)
	}
	fctx, cancel := context.WithTimeout(ctx, c.opts.FillTimeout)
	defer cancel()
	fill, err := c.client.fetchArtifact(fctx, peer, fp, artifact, format, cfgParam, c.EpochHex(), hint)
	if err != nil {
		var na *NotAuthorityError
		if asNotAuthority(err, &na) {
			// The peer answered coherently — it just disagrees about the
			// ring. Not a peer failure; count the handover and let the
			// caller re-resolve.
			c.reportSuccess(p)
			c.epochMismatch.With("fill").Inc()
			c.peerFills.With("not_authority").Inc()
			return nil, err
		}
		c.reportFailure(p, err)
		if isIntegrity(err) {
			c.peerFills.With("integrity").Inc()
		} else {
			c.peerFills.With("error").Inc()
		}
		return nil, err
	}
	c.reportSuccess(p)
	c.peerFills.With("ok").Inc()
	return fill, nil
}

// equalStrings reports whether two sorted string slices are equal.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// normalizePeer canonicalizes a peer base URL (no trailing slash).
func normalizePeer(p string) string {
	return strings.TrimRight(strings.TrimSpace(p), "/")
}

// NormalizePeer canonicalizes a peer base URL exactly the way the
// cluster names ring members, so components outside the package — the
// transport chaos injector keys link decisions by (src, dst) — line up
// with membership identities.
func NormalizePeer(p string) string { return normalizePeer(p) }
