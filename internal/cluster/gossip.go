package cluster

import (
	"context"
)

// The gossip wire protocol: three verbs layered on the existing
// authenticated peer endpoints, each carrying the sender's full
// membership snapshot as piggyback. At the ring sizes this system
// targets (a handful of replicas serving one paper's artifacts) full
// state on every message is cheaper than the classic SWIM update queue
// and converges in one round trip, so there is nothing to tune.
//
//	POST /v1/peer/probe           direct liveness probe + gossip exchange
//	POST /v1/peer/probe-indirect  "probe the target for me" relay
//	POST /v1/peer/join            seed-node bootstrap: announce + pull

// ProbeRequest is a direct probe: "I am alive at this incarnation, and
// here is everything I believe." The receiver merges, notes firsthand
// contact from the sender, and acks with its own view.
type ProbeRequest struct {
	From        string         `json:"from"`
	Incarnation uint64         `json:"incarnation"`
	Members     []MemberUpdate `json:"members,omitempty"`
}

// ProbeAck is the probe response: the receiver's identity, epoch, and
// full membership view.
type ProbeAck struct {
	From        string         `json:"from"`
	Incarnation uint64         `json:"incarnation"`
	Epoch       string         `json:"epoch"` // ring epoch, hex
	Members     []MemberUpdate `json:"members,omitempty"`
}

// IndirectProbeRequest asks a relay to probe Target on the sender's
// behalf — the SWIM trick that distinguishes "the target is down" from
// "my link to the target is down".
type IndirectProbeRequest struct {
	From        string         `json:"from"`
	Incarnation uint64         `json:"incarnation"`
	Target      string         `json:"target"`
	Members     []MemberUpdate `json:"members,omitempty"`
}

// IndirectProbeAck reports the relay's attempt: TargetOK is whether the
// relay reached the target directly just now.
type IndirectProbeAck struct {
	From     string         `json:"from"`
	TargetOK bool           `json:"target_ok"`
	Epoch    string         `json:"epoch"`
	Members  []MemberUpdate `json:"members,omitempty"`
}

// JoinRequest announces a new replica to a seed node.
type JoinRequest struct {
	From        string `json:"from"`
	Incarnation uint64 `json:"incarnation"`
}

// JoinResponse hands the joiner the seed's full membership view; the
// joiner merges it and starts probing, which disseminates its arrival
// to everyone else.
type JoinResponse struct {
	From    string         `json:"from"`
	Epoch   string         `json:"epoch"`
	Members []MemberUpdate `json:"members,omitempty"`
}

// probeBody builds this replica's outbound probe.
func (c *Cluster) probeBody() ProbeRequest {
	return ProbeRequest{
		From:        c.self,
		Incarnation: c.members.SelfIncarnation(),
		Members:     c.members.Snapshot(),
	}
}

// ackBody builds this replica's probe/gossip response.
func (c *Cluster) ackBody() ProbeAck {
	return ProbeAck{
		From:        c.self,
		Incarnation: c.members.SelfIncarnation(),
		Epoch:       c.EpochHex(),
		Members:     c.members.Snapshot(),
	}
}

// HandleProbe is the serve-side logic for POST /v1/peer/probe: record
// firsthand contact from the sender, merge its gossip, answer with our
// own. Pure state exchange — it can never fail.
func (c *Cluster) HandleProbe(req ProbeRequest) ProbeAck {
	c.gossipRecv.With("probe").Inc()
	first := c.members.NoteFirsthand(req.From, req.Incarnation)
	merged := c.members.Merge(req.Members)
	if first || merged {
		c.membershipChanged()
	}
	return c.ackBody()
}

// HandleIndirectProbe is the serve-side logic for POST
// /v1/peer/probe-indirect: merge the requester's gossip, then probe the
// target directly on its behalf within one probe timeout.
func (c *Cluster) HandleIndirectProbe(ctx context.Context, req IndirectProbeRequest) IndirectProbeAck {
	c.gossipRecv.With("probe_indirect").Inc()
	first := c.members.NoteFirsthand(req.From, req.Incarnation)
	merged := c.members.Merge(req.Members)
	ok := false
	if req.Target != "" && req.Target != c.self {
		pctx, cancel := context.WithTimeout(ctx, c.opts.ProbeTimeout)
		ack, err := c.client.probe(pctx, req.Target, c.probeBody())
		cancel()
		c.gossipSent.With("probe").Inc()
		if err == nil {
			ok = true
			if c.members.NoteFirsthand(req.Target, ack.Incarnation) {
				merged = true
			}
			if c.members.Merge(ack.Members) {
				merged = true
			}
		}
	}
	if first || merged {
		c.membershipChanged()
	}
	return IndirectProbeAck{
		From:     c.self,
		TargetOK: ok,
		Epoch:    c.EpochHex(),
		Members:  c.members.Snapshot(),
	}
}

// HandleJoin is the serve-side logic for POST /v1/peer/join: admit the
// joiner as a firsthand-alive member and hand it the full view. The
// joiner's first probe round spreads its arrival to the rest of the
// ring; nothing else is needed.
func (c *Cluster) HandleJoin(req JoinRequest) JoinResponse {
	c.gossipRecv.With("join").Inc()
	if c.members.NoteFirsthand(req.From, req.Incarnation) {
		c.membershipChanged()
	}
	return JoinResponse{
		From:    c.self,
		Epoch:   c.EpochHex(),
		Members: c.members.Snapshot(),
	}
}
