package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for lease and breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestLeaseContention is the cluster-wide singleflight property at the
// table level: N holders race for one key, exactly one wins.
func TestLeaseContention(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(10*time.Second, clk.Now)
	const racers = 32
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, _, _ := lt.Acquire("fp-1", fmt.Sprintf("replica-%d", i))
			if g {
				granted.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if granted.Load() != 1 {
		t.Fatalf("%d of %d racers were granted the lease, want exactly 1", granted.Load(), racers)
	}
}

// TestLeaseDenialNamesHolder: losers learn who won and a bounded wait.
func TestLeaseDenialNamesHolder(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(10*time.Second, clk.Now)
	if g, _, _ := lt.Acquire("fp", "a"); !g {
		t.Fatal("first acquire denied")
	}
	clk.Advance(3 * time.Second)
	g, holder, ttl := lt.Acquire("fp", "b")
	if g || holder != "a" {
		t.Fatalf("granted=%v holder=%q, want denied by a", g, holder)
	}
	if ttl != 7*time.Second {
		t.Fatalf("remaining ttl = %v, want 7s", ttl)
	}
}

// TestLeaseExpiryTakeover: a dead holder's lease expires, and the next
// asker takes over — the owner-death path.
func TestLeaseExpiryTakeover(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(10*time.Second, clk.Now)
	if g, _, _ := lt.Acquire("fp", "dead"); !g {
		t.Fatal("first acquire denied")
	}
	clk.Advance(10 * time.Second) // exactly at expiry: expired
	g, holder, _ := lt.Acquire("fp", "survivor")
	if !g || holder != "survivor" {
		t.Fatalf("takeover after expiry: granted=%v holder=%q", g, holder)
	}
}

// TestLeaseRenewal: the live holder re-acquiring extends its lease
// rather than being denied by itself.
func TestLeaseRenewal(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(10*time.Second, clk.Now)
	lt.Acquire("fp", "a")
	clk.Advance(8 * time.Second)
	if g, _, _ := lt.Acquire("fp", "a"); !g {
		t.Fatal("holder could not renew its own lease")
	}
	clk.Advance(8 * time.Second) // 16s after start, 8s after renewal
	if g, holder, _ := lt.Acquire("fp", "b"); g || holder != "a" {
		t.Fatalf("renewal did not extend the lease: granted=%v holder=%q", g, holder)
	}
}

// TestLeaseRelease: release by the holder frees the key immediately;
// release by anyone else is a no-op.
func TestLeaseRelease(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(10*time.Second, clk.Now)
	lt.Acquire("fp", "a")
	lt.Release("fp", "b") // not the holder
	if g, _, _ := lt.Acquire("fp", "c"); g {
		t.Fatal("non-holder release freed the lease")
	}
	lt.Release("fp", "a")
	if g, _, _ := lt.Acquire("fp", "c"); !g {
		t.Fatal("holder release did not free the lease")
	}
}

// TestLeaseAcquireSweep: the amortized sweep on every Nth Acquire drops
// expired keys even when nothing ever calls Len — an authority serving
// a churning key population cannot grow the table without bound.
func TestLeaseAcquireSweep(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(time.Second, clk.Now)
	for i := 0; i < 50; i++ {
		lt.Acquire(fmt.Sprintf("old-%d", i), "a")
	}
	clk.Advance(2 * time.Second) // every old-* lease is now expired
	// Reach the sweep cadence with fresh keys; the Nth Acquire sweeps
	// before inserting, so exactly the live keys remain.
	for i := 0; i < leaseSweepEvery-50; i++ {
		lt.Acquire(fmt.Sprintf("new-%d", i), "a")
	}
	lt.mu.Lock()
	n := len(lt.leases)
	lt.mu.Unlock()
	if want := leaseSweepEvery - 50; n != want {
		t.Fatalf("table holds %d entries after amortized sweep, want %d", n, want)
	}
}

// TestLeaseSweep: Len sweeps expired entries so churn cannot grow the
// table without bound.
func TestLeaseSweep(t *testing.T) {
	clk := newFakeClock()
	lt := NewLeaseTable(time.Second, clk.Now)
	for i := 0; i < 100; i++ {
		lt.Acquire(fmt.Sprintf("fp-%d", i), "a")
	}
	if n := lt.Len(); n != 100 {
		t.Fatalf("live leases = %d, want 100", n)
	}
	clk.Advance(2 * time.Second)
	if n := lt.Len(); n != 0 {
		t.Fatalf("after expiry, live leases = %d, want 0", n)
	}
}
