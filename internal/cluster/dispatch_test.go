package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/table"
	"repro/internal/trace"
)

// tinyCfg is a pipeline configuration small enough for many runs per
// test, with two trace years and two replicas each so the dispatcher
// has four stages to spread.
func tinyCfg() core.Config {
	return core.Config{
		Seed:       7,
		N2011:      20,
		N2024:      24,
		TraceYears: []int{2011, 2012},
		SimYear:    2011,
		Policy:     sched.EASYBackfill,
		TraceScale: 2,
		Workers:    4,
	}
}

// stagePeer is a correct fake peer: it executes stage requests exactly
// as a live replica's /v1/peer/stage handler does.
func stagePeer(t *testing.T, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/peer/stage", func(w http.ResponseWriter, r *http.Request) {
		if calls != nil {
			calls.Add(1)
		}
		var sr StageRequest
		if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tab, err := core.TraceReplicaTable(sr.Config, sr.Year, sr.Rep)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		h, err := tab.Hash()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var buf bytes.Buffer
		if err := table.EncodeStream[trace.Job](&buf, trace.JobCodec{}, tab); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set(TableHashHeader, strconv.FormatUint(h, 16))
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
	})
	return httptest.NewServer(mux)
}

// testCluster builds a two-member cluster: an unreachable self plus the
// given peer URL. Probing is not started; never-probed peers count as
// healthy, which is exactly the mid-steal-death scenario.
func testCluster(t *testing.T, peerURL string) *Cluster {
	t.Helper()
	self := "http://127.0.0.1:1"
	c, err := New(Options{
		Self:  self,
		Peers: []string{self, peerURL},
		Now:   time.Now,
	}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func jobRowsOf(t *testing.T, tab trace.JobTable) []trace.Job {
	t.Helper()
	rows, err := table.Rows[trace.Job](tab)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestTraceStageRemoteMatchesLocal: a stage stolen to a live peer
// returns a table byte-identical to local compute. Self is made busy
// first so the least-loaded choice actually picks the peer.
func TestTraceStageRemoteMatchesLocal(t *testing.T) {
	var calls atomic.Int64
	srv := stagePeer(t, &calls)
	defer srv.Close()
	c := testCluster(t, srv.URL)
	c.selfInflight.Add(1) // pretend a local stage is already running
	defer c.selfInflight.Add(-1)

	cfg := tinyCfg()
	got, err := c.TraceStage(context.Background(), cfg, 2012, 1)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("peer stage calls = %d, want 1", calls.Load())
	}
	want, err := core.TraceReplicaTable(cfg, 2012, 1)
	if err != nil {
		t.Fatal(err)
	}
	wr, gr := jobRowsOf(t, want), jobRowsOf(t, got)
	if len(wr) == 0 || len(wr) != len(gr) {
		t.Fatalf("row counts differ: local %d, remote %d", len(wr), len(gr))
	}
	for i := range wr {
		if wr[i] != gr[i] {
			t.Fatalf("row %d differs between local and remote compute", i)
		}
	}
}

// TestTraceStagePeerDeadFallsBack: a peer that is gone entirely
// (connection refused) costs latency, not bytes — the dispatcher
// recomputes locally and returns an identical table with no error.
func TestTraceStagePeerDeadFallsBack(t *testing.T) {
	srv := stagePeer(t, nil)
	url := srv.URL
	srv.Close() // dead before the first steal
	c := testCluster(t, url)
	c.selfInflight.Add(1)
	defer c.selfInflight.Add(-1)

	cfg := tinyCfg()
	got, err := c.TraceStage(context.Background(), cfg, 2011, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.TraceReplicaTable(cfg, 2011, 0)
	if err != nil {
		t.Fatal(err)
	}
	wh, _ := want.Hash()
	gh, _ := got.Hash()
	if wh != gh {
		t.Fatalf("fallback table hash %x differs from local %x", gh, wh)
	}
	if v := c.steals.With("fallback").Value(); v != 1 {
		t.Fatalf("fallback metric = %d, want 1", v)
	}
}

// TestTraceStageTruncatedBodyFallsBack: a peer dying mid-response
// leaves a short envelope; the integrity check converts that into a
// local recompute, never into wrong rows.
func TestTraceStageTruncatedBodyFallsBack(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/peer/stage", func(w http.ResponseWriter, r *http.Request) {
		var sr StageRequest
		if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tab, err := core.TraceReplicaTable(sr.Config, sr.Year, sr.Rep)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		h, _ := tab.Hash()
		var buf bytes.Buffer
		if err := table.EncodeStream[trace.Job](&buf, trace.JobCodec{}, tab); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set(TableHashHeader, strconv.FormatUint(h, 16))
		if _, err := w.Write(buf.Bytes()[:buf.Len()/2]); err != nil { // die mid-body
			return
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := testCluster(t, srv.URL)
	c.selfInflight.Add(1)
	defer c.selfInflight.Add(-1)

	cfg := tinyCfg()
	got, err := c.TraceStage(context.Background(), cfg, 2011, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.TraceReplicaTable(cfg, 2011, 1)
	wh, _ := want.Hash()
	gh, _ := got.Hash()
	if wh != gh {
		t.Fatalf("table after truncated steal differs: %x vs %x", gh, wh)
	}
}

// TestTraceStageHashMismatchRejected: a well-formed envelope whose
// declared content hash disagrees with the decoded table is damaged
// goods; the client must fall back rather than trust it.
func TestTraceStageHashMismatchRejected(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/peer/stage", func(w http.ResponseWriter, r *http.Request) {
		var sr StageRequest
		if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tab, err := core.TraceReplicaTable(sr.Config, sr.Year, sr.Rep)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		var buf bytes.Buffer
		if err := table.EncodeStream[trace.Job](&buf, trace.JobCodec{}, tab); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set(TableHashHeader, "deadbeef") // wrong on purpose
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := testCluster(t, srv.URL)
	c.selfInflight.Add(1)
	defer c.selfInflight.Add(-1)

	cfg := tinyCfg()
	if _, err := c.TraceStage(context.Background(), cfg, 2011, 0); err != nil {
		t.Fatal(err) // fallback must succeed silently
	}
	if v := c.peerFills.With("integrity").Value(); v != 0 {
		t.Fatalf("artifact integrity counter moved on a stage steal: %d", v)
	}
	if v := c.steals.With("fallback").Value(); v != 1 {
		t.Fatalf("fallback metric = %d, want 1", v)
	}
}

// TestRemoteStageErrorSurfaces: when the remote attempt fails AND the
// local recompute fails (here: a stage outside the config's graph),
// the error chain carries the typed RemoteStageError with peer, stage,
// and attempt attribution.
func TestRemoteStageErrorSurfaces(t *testing.T) {
	srv := stagePeer(t, nil)
	defer srv.Close()
	c := testCluster(t, srv.URL)
	c.selfInflight.Add(1)
	defer c.selfInflight.Add(-1)

	_, err := c.TraceStage(context.Background(), tinyCfg(), 1999, 0)
	if err == nil {
		t.Fatal("stage for an out-of-graph year succeeded")
	}
	var rse *RemoteStageError
	if !errors.As(err, &rse) {
		t.Fatalf("err = %v, want a *RemoteStageError in the chain", err)
	}
	if rse.Peer != normalizePeer(srv.URL) || rse.Stage != "trace-1999" || rse.Attempt != 1 {
		t.Fatalf("attribution = %+v", rse)
	}
}

// TestRemoteStageErrorThroughGraph: a dispatched stage failure keeps
// its cluster attribution when the parallel graph wraps it — callers
// unwrap *parallel.StageError (which stage, which attempt in the
// graph) and then *cluster.RemoteStageError (which peer) from the same
// chain. This is the attribution path serve's error mapper relies on.
func TestRemoteStageErrorThroughGraph(t *testing.T) {
	srv := stagePeer(t, nil)
	defer srv.Close()
	c := testCluster(t, srv.URL)
	c.selfInflight.Add(1)
	defer c.selfInflight.Add(-1)

	g := parallel.NewGraph()
	g.Add("trace-1999", func() error {
		_, err := c.TraceStage(context.Background(), tinyCfg(), 1999, 0)
		return err
	})
	err := g.Run(2)
	if err == nil {
		t.Fatal("graph run with a doomed stage succeeded")
	}
	var se *parallel.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a *parallel.StageError in the chain", err)
	}
	if se.Stage != "trace-1999" || se.Panicked {
		t.Fatalf("graph attribution = %+v", se)
	}
	var rse *RemoteStageError
	if !errors.As(err, &rse) {
		t.Fatalf("err = %v, want a *RemoteStageError through the StageError", err)
	}
	if rse.Peer != normalizePeer(srv.URL) {
		t.Fatalf("peer attribution lost through the graph frame: %+v", rse)
	}
}

// TestClusterRunEquivalence is the end-to-end distribution guarantee:
// a full pipeline run whose trace stages are dispatched through the
// cluster (stealing to a live peer under real stage concurrency)
// serializes byte-identically to a plain in-process run.
func TestClusterRunEquivalence(t *testing.T) {
	var calls atomic.Int64
	srv := stagePeer(t, &calls)
	defer srv.Close()
	c := testCluster(t, srv.URL)

	cfg := tinyCfg()
	plain, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	distributed, err := core.RunWithOptions(context.Background(), cfg, core.RunOptions{TraceStage: c.TraceStage})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := trace.WriteAccountingTable(&a, plain.Jobs); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAccountingTable(&b, distributed.Jobs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("distributed run serialized different accounting bytes than the plain run")
	}
	if plain.Sim.Metrics != distributed.Sim.Metrics {
		t.Fatal("distributed run changed simulation metrics")
	}
	total := c.steals.With("local").Value() + c.steals.With("remote").Value() + c.steals.With("fallback").Value()
	if want := uint64(len(cfg.TraceYears) * cfg.TraceScale); total != want {
		t.Fatalf("dispatch decisions = %d, want %d", total, want)
	}
}

// TestClusterRunEquivalenceUnderPeerDeath: same guarantee with the
// peer SIGKILLed (server closed) before the run — every steal fails
// over to local compute and the bytes still match.
func TestClusterRunEquivalenceUnderPeerDeath(t *testing.T) {
	srv := stagePeer(t, nil)
	url := srv.URL
	srv.Close()
	c := testCluster(t, url)

	cfg := tinyCfg()
	plain, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	distributed, err := core.RunWithOptions(context.Background(), cfg, core.RunOptions{TraceStage: c.TraceStage})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := trace.WriteAccountingTable(&a, plain.Jobs); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAccountingTable(&b, distributed.Jobs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("peer death changed artifact bytes (it may only cost latency)")
	}
}
