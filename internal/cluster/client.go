package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/table"
	"repro/internal/trace"
)

// The peer protocol's client half. Three verbs, all under /v1/peer/ and
// all authenticated with the shared secret header:
//
//	GET  /v1/peer/artifact/{fp}/{artifact}?format=&config=   cache fill
//	POST /v1/peer/lease                                      compute lease
//	POST /v1/peer/stage                                      stage steal
//
// Every byte-carrying response is integrity-checked on this side: an
// artifact body must hash to its own ETag (the determinism contract
// makes the ETag a content address, so the check needs no extra
// protocol), and a stage response is a checksummed "rcpt-col/1"
// envelope whose decoded table must match the peer's declared content
// hash. A peer that sends damaged bytes is indistinguishable from a
// peer that sent none — callers fall back, and corruption can never
// reach a client.

// SecretHeader carries the shared cluster secret on peer requests.
const SecretHeader = "X-Rcpt-Peer-Secret"

// TableHashHeader carries the content hash (table.Table.Hash, hex) of a
// stage response, computed by the peer before encoding.
const TableHashHeader = "X-Rcpt-Table-Hash"

// ConfigParam is the query parameter carrying the base64url-encoded
// JSON config on peer artifact requests, so an owner can compute a run
// it has never seen. (A fingerprint alone names the bytes but cannot
// reconstruct the configuration that produces them.)
const ConfigParam = "config"

// peerClient issues peer-protocol requests.
type peerClient struct {
	hc     *http.Client
	secret string
}

// Fill is a successfully fetched, integrity-verified artifact body.
type Fill struct {
	Body        []byte
	ETag        string
	ContentType string
}

// LeaseRequest / LeaseResponse are the lease endpoint's JSON bodies.
// Release true drops the holder's lease instead of acquiring one.
type LeaseRequest struct {
	Key     string `json:"key"`
	Holder  string `json:"holder"`
	Release bool   `json:"release,omitempty"`
}

type LeaseResponse struct {
	Granted bool   `json:"granted"`
	Holder  string `json:"holder"`
	TTLMs   int64  `json:"ttl_ms"`
}

// StageRequest is the stage-steal endpoint's JSON body.
type StageRequest struct {
	Config core.Config `json:"config"`
	Year   int         `json:"year"`
	Rep    int         `json:"rep"`
}

// EncodeConfigParam serializes cfg for the artifact request's config
// query parameter.
func EncodeConfigParam(cfg core.Config) (string, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("cluster: encoding config: %w", err)
	}
	return base64.RawURLEncoding.EncodeToString(raw), nil
}

// DecodeConfigParam reverses EncodeConfigParam (used by the serve-side
// peer handler).
func DecodeConfigParam(s string) (core.Config, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return core.Config{}, fmt.Errorf("cluster: config parameter: %w", err)
	}
	var cfg core.Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return core.Config{}, fmt.Errorf("cluster: config parameter: %w", err)
	}
	return cfg, nil
}

// fetchArtifact GETs one rendered artifact from peer and verifies the
// body against its ETag: the ETag is the quoted sha256 of the bytes, so
// recomputing it client-side proves the transfer intact end to end.
func (cl *peerClient) fetchArtifact(ctx context.Context, peer, fp, artifact, format, cfgParam string) (*Fill, error) {
	u := fmt.Sprintf("%s/v1/peer/artifact/%s/%s?format=%s&%s=%s",
		peer, url.PathEscape(fp), url.PathEscape(artifact), url.QueryEscape(format), ConfigParam, url.QueryEscape(cfgParam))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, peerErr(peer, resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading artifact from %s: %w", peer, err)
	}
	etag := resp.Header.Get("ETag")
	sum := sha256.Sum256(body)
	if want := `"` + hex.EncodeToString(sum[:]) + `"`; etag != want {
		return nil, &table.IntegrityError{Reason: fmt.Sprintf("artifact body from %s does not hash to its ETag", peer)}
	}
	return &Fill{Body: body, ETag: etag, ContentType: resp.Header.Get("Content-Type")}, nil
}

// postLease asks authority for (or releases) the compute lease on
// lr.Key.
func (cl *peerClient) postLease(ctx context.Context, authority string, lr LeaseRequest) (*LeaseResponse, error) {
	body, err := json.Marshal(lr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, authority+"/v1/peer/lease", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, peerErr(authority, resp)
	}
	var lresp LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lresp); err != nil {
		return nil, fmt.Errorf("cluster: lease response from %s: %w", authority, err)
	}
	return &lresp, nil
}

// postStage asks peer to execute one (year, rep) trace stage and
// returns the decoded, doubly verified table: the stream envelope
// checksums the wire bytes, and the decoded table's content hash must
// equal the one the peer computed before encoding.
func (cl *peerClient) postStage(ctx context.Context, peer string, cfg core.Config, year, rep int) (trace.JobTable, error) {
	body, err := json.Marshal(StageRequest{Config: cfg, Year: year, Rep: rep})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/peer/stage", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, peerErr(peer, resp)
	}
	tab, err := table.DecodeStream[trace.Job](resp.Body, trace.JobCodec{})
	if err != nil {
		return nil, err
	}
	declared := resp.Header.Get(TableHashHeader)
	if declared == "" {
		return nil, &table.IntegrityError{Reason: fmt.Sprintf("stage response from %s carries no content hash", peer)}
	}
	want, err := strconv.ParseUint(declared, 16, 64)
	if err != nil {
		return nil, &table.IntegrityError{Reason: fmt.Sprintf("stage response from %s: bad content hash %q", peer, declared)}
	}
	got, err := tab.Hash()
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, &table.IntegrityError{Reason: fmt.Sprintf("stage table from %s hashes to %x, peer declared %x", peer, got, want)}
	}
	return tab, nil
}

// status fetches a peer's /v1/peer/status JSON (raw; the caller shapes
// it for display).
func (cl *peerClient) status(ctx context.Context, peer string) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/peer/status", nil)
	if err != nil {
		return nil, err
	}
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, peerErr(peer, resp)
	}
	return io.ReadAll(resp.Body)
}

func (cl *peerClient) auth(req *http.Request) {
	if cl.secret != "" {
		req.Header.Set(SecretHeader, cl.secret)
	}
}

// peerErr shapes a non-200 peer response, keeping a bounded prefix of
// the body for diagnostics.
func peerErr(peer string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return &PeerError{Peer: peer, Status: resp.StatusCode, Body: string(bytes.TrimSpace(b))}
}

// drainClose drains and closes a response body so the transport can
// reuse the connection; close errors on a fully read body carry no
// information worth propagating.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

// newHTTPClient builds the default peer transport: modest timeouts and
// connection reuse across probe rounds and steals.
func newHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}
