package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/table"
	"repro/internal/trace"
)

// The peer protocol's client half. Seven verbs, all under /v1/peer/
// and all authenticated with the shared secret header — three on the
// data plane:
//
//	GET  /v1/peer/artifact/{fp}/{artifact}?format=&config=   cache fill
//	POST /v1/peer/lease                                      compute lease
//	POST /v1/peer/stage                                      stage steal
//
// and four on the membership plane:
//
//	POST /v1/peer/probe           direct liveness probe + gossip
//	POST /v1/peer/probe-indirect  probe a third peer on my behalf
//	POST /v1/peer/join            announce a new replica to the ring
//	GET  /v1/peer/status          operator view: members, epoch, quorum
//
// Every probe, ack, and join response piggybacks the sender's full
// membership view, so rumor needs no channel of its own; data-plane
// requests carry the requester's ring epoch so a fill or grant that
// straddles a membership change is detected, not trusted.
//
// Every byte-carrying response is integrity-checked on this side: an
// artifact body must hash to its own ETag (the determinism contract
// makes the ETag a content address, so the check needs no extra
// protocol), and a stage response is a checksummed "rcpt-col/1"
// envelope whose decoded table must match the peer's declared content
// hash. A peer that sends damaged bytes is indistinguishable from a
// peer that sent none — callers fall back, and corruption can never
// reach a client.

// SecretHeader carries the shared cluster secret on peer requests.
const SecretHeader = "X-Rcpt-Peer-Secret"

// TableHashHeader carries the content hash (table.Table.Hash, hex) of a
// stage response, computed by the peer before encoding.
const TableHashHeader = "X-Rcpt-Table-Hash"

// EpochHeader carries the requester's ring epoch (hex) on authority
// fills, and the responder's on the reply — so a fill that straddles a
// membership change is visible to both sides. Epoch disagreement alone
// never refuses bytes (they are content-addressed); it is metered, and
// a cold non-authority responder uses it to redirect the requester.
const EpochHeader = "X-Rcpt-Ring-Epoch"

// HintHeader marks an artifact fill as a *hint probe*: the requester
// believes it is the fingerprint's authority after a handover and is
// asking peers whether any of them already holds the run. A responder
// to a hinted fill serves only what it has — cached bytes or a
// retained run — and never computes, never re-hints. That asymmetry is
// the loop-breaker: two replicas that each believe they are the
// authority (a ring-view skew mid-handover) can probe each other
// without the probes cascading into computes or recursing.
const HintHeader = "X-Rcpt-Fill-Hint"

// ConfigParam is the query parameter carrying the base64url-encoded
// JSON config on peer artifact requests, so an owner can compute a run
// it has never seen. (A fingerprint alone names the bytes but cannot
// reconstruct the configuration that produces them.)
const ConfigParam = "config"

// peerClient issues peer-protocol requests.
type peerClient struct {
	hc     *http.Client
	secret string
}

// Fill is a successfully fetched, integrity-verified artifact body.
type Fill struct {
	Body        []byte
	ETag        string
	ContentType string
}

// LeaseRequest / LeaseResponse are the lease endpoint's JSON bodies.
// Release true drops the holder's lease instead of acquiring one.
// Epoch (hex, optional) is each side's ring epoch at send time: a
// mismatch marks a grant that straddled a membership change — advisory
// waste worth metering, never a correctness problem.
type LeaseRequest struct {
	Key     string `json:"key"`
	Holder  string `json:"holder"`
	Release bool   `json:"release,omitempty"`
	Epoch   string `json:"epoch,omitempty"`
}

type LeaseResponse struct {
	Granted bool   `json:"granted"`
	Holder  string `json:"holder"`
	TTLMs   int64  `json:"ttl_ms"`
	Epoch   string `json:"epoch,omitempty"`
}

// StageRequest is the stage-steal endpoint's JSON body. Epoch carries
// the thief's ring epoch for the same observability as leases.
type StageRequest struct {
	Config core.Config `json:"config"`
	Year   int         `json:"year"`
	Rep    int         `json:"rep"`
	Epoch  string      `json:"epoch,omitempty"`
}

// EncodeConfigParam serializes cfg for the artifact request's config
// query parameter.
func EncodeConfigParam(cfg core.Config) (string, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("cluster: encoding config: %w", err)
	}
	return base64.RawURLEncoding.EncodeToString(raw), nil
}

// DecodeConfigParam reverses EncodeConfigParam (used by the serve-side
// peer handler).
func DecodeConfigParam(s string) (core.Config, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return core.Config{}, fmt.Errorf("cluster: config parameter: %w", err)
	}
	var cfg core.Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return core.Config{}, fmt.Errorf("cluster: config parameter: %w", err)
	}
	return cfg, nil
}

// fetchArtifact GETs one rendered artifact from peer and verifies the
// body against its ETag: the ETag is the quoted sha256 of the bytes, so
// recomputing it client-side proves the transfer intact end to end.
// epochHex rides along so the responder can detect a fill that
// straddled a ring change; a 409 comes back as *NotAuthorityError with
// the responder's view attached, and the caller re-resolves.
func (cl *peerClient) fetchArtifact(ctx context.Context, peer, fp, artifact, format, cfgParam, epochHex string, hint bool) (*Fill, error) {
	u := fmt.Sprintf("%s/v1/peer/artifact/%s/%s?format=%s&%s=%s",
		peer, url.PathEscape(fp), url.PathEscape(artifact), url.QueryEscape(format), ConfigParam, url.QueryEscape(cfgParam))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if epochHex != "" {
		req.Header.Set(EpochHeader, epochHex)
	}
	if hint {
		req.Header.Set(HintHeader, "1")
	}
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode == http.StatusConflict {
		var na struct {
			Authority string `json:"authority"`
			Epoch     string `json:"epoch"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&na)
		return nil, &NotAuthorityError{Peer: peer, Authority: na.Authority, Epoch: na.Epoch}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, peerErr(peer, resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading artifact from %s: %w", peer, err)
	}
	etag := resp.Header.Get("ETag")
	sum := sha256.Sum256(body)
	if want := `"` + hex.EncodeToString(sum[:]) + `"`; etag != want {
		return nil, &table.IntegrityError{Reason: fmt.Sprintf("artifact body from %s does not hash to its ETag", peer)}
	}
	return &Fill{Body: body, ETag: etag, ContentType: resp.Header.Get("Content-Type")}, nil
}

// postLease asks authority for (or releases) the compute lease on
// lr.Key.
func (cl *peerClient) postLease(ctx context.Context, authority string, lr LeaseRequest) (*LeaseResponse, error) {
	body, err := json.Marshal(lr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, authority+"/v1/peer/lease", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, peerErr(authority, resp)
	}
	var lresp LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lresp); err != nil {
		return nil, fmt.Errorf("cluster: lease response from %s: %w", authority, err)
	}
	return &lresp, nil
}

// postStage asks peer to execute one (year, rep) trace stage and
// returns the decoded, doubly verified table: the stream envelope
// checksums the wire bytes, and the decoded table's content hash must
// equal the one the peer computed before encoding.
func (cl *peerClient) postStage(ctx context.Context, peer string, sr StageRequest) (trace.JobTable, error) {
	body, err := json.Marshal(sr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/peer/stage", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, peerErr(peer, resp)
	}
	tab, err := table.DecodeStream[trace.Job](resp.Body, trace.JobCodec{})
	if err != nil {
		return nil, err
	}
	declared := resp.Header.Get(TableHashHeader)
	if declared == "" {
		return nil, &table.IntegrityError{Reason: fmt.Sprintf("stage response from %s carries no content hash", peer)}
	}
	want, err := strconv.ParseUint(declared, 16, 64)
	if err != nil {
		return nil, &table.IntegrityError{Reason: fmt.Sprintf("stage response from %s: bad content hash %q", peer, declared)}
	}
	got, err := tab.Hash()
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, &table.IntegrityError{Reason: fmt.Sprintf("stage table from %s hashes to %x, peer declared %x", peer, got, want)}
	}
	return tab, nil
}

// postJSON POSTs body to peer+path and decodes the 200 response into
// out — the shared shape of every gossip verb.
func (cl *peerClient) postJSON(ctx context.Context, peer, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return peerErr(peer, resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: response from %s%s: %w", peer, path, err)
	}
	return nil
}

// probe sends a direct gossip probe.
func (cl *peerClient) probe(ctx context.Context, peer string, pr ProbeRequest) (*ProbeAck, error) {
	var ack ProbeAck
	if err := cl.postJSON(ctx, peer, "/v1/peer/probe", pr, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// indirectProbe asks relay to probe a target on our behalf.
func (cl *peerClient) indirectProbe(ctx context.Context, relay string, pr IndirectProbeRequest) (*IndirectProbeAck, error) {
	var ack IndirectProbeAck
	if err := cl.postJSON(ctx, relay, "/v1/peer/probe-indirect", pr, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// join announces this replica to a seed node and pulls the member list.
func (cl *peerClient) join(ctx context.Context, seed string, jr JoinRequest) (*JoinResponse, error) {
	var resp JoinResponse
	if err := cl.postJSON(ctx, seed, "/v1/peer/join", jr, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// status fetches a peer's /v1/peer/status JSON (raw; the caller shapes
// it for display).
func (cl *peerClient) status(ctx context.Context, peer string) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/peer/status", nil)
	if err != nil {
		return nil, err
	}
	cl.auth(req)
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, peerErr(peer, resp)
	}
	return io.ReadAll(resp.Body)
}

func (cl *peerClient) auth(req *http.Request) {
	if cl.secret != "" {
		req.Header.Set(SecretHeader, cl.secret)
	}
}

// peerErr shapes a non-200 peer response, keeping a bounded prefix of
// the body for diagnostics.
func peerErr(peer string, resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return &PeerError{Peer: peer, Status: resp.StatusCode, Body: string(bytes.TrimSpace(b))}
}

// drainClose drains and closes a response body so the transport can
// reuse the connection; close errors on a fully read body carry no
// information worth propagating.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

// newHTTPClient builds the default peer transport: modest timeouts and
// connection reuse across probe rounds and steals.
func newHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}
