package cluster

import (
	"fmt"
	"testing"
)

func ringPeers(n int) []string {
	ps := make([]string, n)
	for i := range ps {
		ps[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return ps
}

func keyset(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		// Fingerprint-shaped keys: what the ring routes in production.
		ks[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return ks
}

// TestRingDistribution pins the vnode count's job: across 5 peers,
// every peer owns within ±20% of its fair share of a large key set.
func TestRingDistribution(t *testing.T) {
	peers := ringPeers(5)
	r := NewRing(peers, 0)
	keys := keyset(20000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(peers))
	for _, p := range peers {
		share := float64(counts[p])
		if share < 0.8*fair || share > 1.2*fair {
			t.Errorf("peer %s owns %d keys, outside ±20%% of fair share %.0f", p, counts[p], fair)
		}
	}
}

// TestRingAgreementAcrossReplicas: two rings built from the same
// membership in different orders route every key identically — the
// property the whole protocol rests on, since replicas never exchange
// routing tables.
func TestRingAgreementAcrossReplicas(t *testing.T) {
	peers := ringPeers(5)
	shuffled := []string{peers[3], peers[0], peers[4], peers[2], peers[1]}
	a, b := NewRing(peers, 64), NewRing(shuffled, 64)
	for _, k := range keyset(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owners disagree (%s vs %s)", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingMinimalMovementOnAdd: growing 5→6 peers moves only keys that
// land on the new peer — consistent hashing's defining bound — and
// roughly 1/6 of them.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	peers := ringPeers(6)
	before := NewRing(peers[:5], 0)
	after := NewRing(peers, 0)
	keys := keyset(20000)
	moved := 0
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was != is {
			moved++
			if is != peers[5] {
				t.Fatalf("key %s moved %s→%s, not to the new peer", k, was, is)
			}
		}
	}
	expect := float64(len(keys)) / 6
	if f := float64(moved); f < 0.5*expect || f > 1.5*expect {
		t.Errorf("add moved %d keys, expected about %.0f", moved, expect)
	}
}

// TestRingMinimalMovementOnRemove: dropping a peer reassigns only its
// own keys; every other key keeps its owner.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	peers := ringPeers(5)
	before := NewRing(peers, 0)
	after := NewRing(peers[:4], 0)
	for _, k := range keyset(20000) {
		was := before.Owner(k)
		if was == peers[4] {
			continue // orphaned keys must move somewhere
		}
		if is := after.Owner(k); is != was {
			t.Fatalf("key %s owned by surviving peer %s moved to %s", k, was, is)
		}
	}
}

// TestRingSequence: the takeover order starts at the owner, visits
// every peer exactly once, and its tail is what the next-healthy
// authority walk relies on.
func TestRingSequence(t *testing.T) {
	peers := ringPeers(5)
	r := NewRing(peers, 0)
	for _, k := range keyset(200) {
		seq := r.Sequence(k)
		if len(seq) != len(peers) {
			t.Fatalf("key %s: sequence has %d entries, want %d", k, len(seq), len(peers))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("key %s: sequence starts at %s, owner is %s", k, seq[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, p := range seq {
			if seen[p] {
				t.Fatalf("key %s: peer %s appears twice in sequence", k, p)
			}
			seen[p] = true
		}
	}
}

// TestRingEmpty: a ring with no members routes nowhere rather than
// panicking (defensive; New rejects this configuration).
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if o := r.Owner("x"); o != "" {
		t.Fatalf("empty ring returned owner %q", o)
	}
	if s := r.Sequence("x"); s != nil {
		t.Fatalf("empty ring returned sequence %v", s)
	}
}
