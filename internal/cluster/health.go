package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/rng"
)

// Per-peer failure handling, SWIM-style. A background prober drives the
// gossip protocol: each round it probes every ring member directly,
// falls back to indirect probes through K relays when the direct probe
// fails, and downgrades unreachable members alive → suspect → dead on
// the membership list (membership.go), which in turn moves their keys
// on the ring. Every member also carries its own circuit breaker (the
// shared internal/breaker machine, the same one guarding
// per-fingerprint runs in serve) so a flapping replica is cut off after
// repeated request failures instead of adding its timeout to every
// render. Membership gates routing — lease authority and steal targets
// only consider alive members — while the breaker gates individual
// requests in between probe rounds.

// peerState is the request-tracking state for one remote member. The
// mutex guards the breaker and the last error; inflight is atomic so
// the dispatcher's least-loaded choice never takes the lock. Liveness
// lives on the Memberlist, not here.
type peerState struct {
	name string // base URL

	inflight atomic.Int64 // outstanding steal requests from this replica

	mu      sync.Mutex
	b       *breaker.Breaker
	lastErr string
}

// PeerHealth is the externally visible snapshot of one peer, reported
// by /v1/peer/status and the cluster-aware readyz detail.
type PeerHealth struct {
	Peer        string `json:"peer"`
	Healthy     bool   `json:"healthy"` // state == alive
	State       string `json:"state"`   // alive | suspect | dead | left
	Incarnation uint64 `json:"incarnation"`
	Breaker     string `json:"breaker"` // closed | open | half_open
	Inflight    int64  `json:"inflight_steals"`
	LastErr     string `json:"last_error,omitempty"`
}

// allow consults the breaker before a request to this peer.
func (p *peerState) allow(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, _, ok := p.b.Allow(now)
	return ok
}

// noteErr records the most recent request error for status reporting.
func (p *peerState) noteErr(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastErr = err.Error()
}

// peerHealthFor renders one member's PeerHealth from its membership
// record plus (when we have talked to it) its request-tracking state.
func (c *Cluster) peerHealthFor(u MemberUpdate) PeerHealth {
	ph := PeerHealth{
		Peer:        u.Name,
		Healthy:     u.State == StateAlive.String(),
		State:       u.State,
		Incarnation: u.Incarnation,
		Breaker:     breaker.Closed.String(),
	}
	if p := c.lookupPeer(u.Name); p != nil {
		p.mu.Lock()
		ph.Breaker = p.b.State().String()
		ph.LastErr = p.lastErr
		p.mu.Unlock()
		ph.Inflight = p.inflight.Load()
	}
	return ph
}

// reportSuccess feeds a successful request into the breaker.
func (c *Cluster) reportSuccess(p *peerState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.b.Success() {
		c.breakerOpenG.With(p.name).Set(0)
	}
}

// reportFailure feeds a failed request into the breaker.
func (c *Cluster) reportFailure(p *peerState, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastErr = err.Error()
	if p.b.Failure(c.now()) {
		c.breakerOpenG.With(p.name).Set(1)
	}
}

// probeLoop drives gossip rounds at the configured interval until
// Close. It runs in its own goroutine; the deferred recover is the
// daemon-survival backstop required of every goroutine in this layer.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			// A prober panic must not kill the process. Members keep
			// their last-known state; requests still go through
			// per-request breakers, so the cluster degrades instead of
			// crashing.
			c.probePanics.Inc()
		}
	}()
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	c.probeRound()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeRound()
		}
	}
}

// probeRound runs one gossip round: retry the join protocol if no seed
// has answered yet, probe every remote ring member concurrently (each
// goroutine phase-shifted by its deterministic per-peer jitter), then
// sweep suspicion timeouts. Rounds never overlap — a hung peer costs
// one timeout per round, not a goroutine per tick.
func (c *Cluster) probeRound() {
	if !c.joined {
		c.tryJoin()
	}
	var wg sync.WaitGroup
	for _, name := range c.members.RingMembers() {
		if name == c.self {
			continue
		}
		wg.Add(1)
		name := name
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					c.probePanics.Inc()
				}
			}()
			if !c.jitterWait(name) {
				return // shutting down
			}
			c.probeMember(name)
		}()
	}
	// Reconnection probe: a dead member is off the ring, so nothing on
	// the request path contacts it again — without this, a healed
	// partition would stay split forever (both sides hold each other's
	// tombstones, and gossiped liveness cannot un-bury a tombstone; only
	// firsthand contact can). One tombstone per round, rotating in
	// sorted order, gets a direct probe; success resurrects it past its
	// tombstone incarnation and the reunion gossips outward. Tombstone
	// GC bounds the horizon: a partition outliving the GC window needs
	// an explicit rejoin (-join), the same as a cold start.
	if dead := c.members.DeadMembers(); len(dead) > 0 {
		name := dead[int(c.rounds%uint64(len(dead)))]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					c.probePanics.Inc()
				}
			}()
			c.reconnectProbe(name)
		}()
	}
	c.rounds++
	wg.Wait()
	if c.members.SweepSuspects(c.opts.SuspectTimeout) {
		c.membershipChanged()
	}
}

// reconnectProbe direct-probes a dead tombstone. Failure is the
// expected steady state and changes nothing; success is first contact
// after a heal and revives the member.
func (c *Cluster) reconnectProbe(name string) {
	ps := c.peerStateFor(name)
	prevState, _ := c.members.StateOf(name)
	pctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	ack, err := c.client.probe(pctx, name, c.probeBody())
	cancel()
	c.gossipSent.With("probe").Inc()
	if err != nil {
		return
	}
	c.reportSuccess(ps)
	c.absorbContact(name, ack.Incarnation, ack.Members, prevState)
}

// jitterWait sleeps this replica's deterministic phase offset for peer
// before probing it, so a fleet started in lockstep does not converge
// its probes into synchronized storms. The offset is a pure function of
// (self, peer) through the seeded rng — under the chaos harness, probe
// timing is reproducible run to run. Returns false if the cluster shut
// down mid-wait.
func (c *Cluster) jitterWait(peer string) bool {
	frac := rng.NewFromString("probe-jitter|" + c.self + "|" + peer).Float64()
	d := time.Duration(frac * float64(c.opts.ProbeInterval) / 2)
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-c.stop:
		return false
	case <-timer.C:
		return true
	}
}

// probeMember runs the SWIM sequence for one member: direct probe;
// on failure, indirect probes through up to IndirectProbes alive
// relays; if nothing reaches it, mark it suspect. Gossip is exchanged
// on every successful hop.
func (c *Cluster) probeMember(name string) {
	ps := c.peerStateFor(name)
	prevState, _ := c.members.StateOf(name)

	pctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	ack, err := c.client.probe(pctx, name, c.probeBody())
	cancel()
	c.gossipSent.With("probe").Inc()
	if err == nil {
		c.reportSuccess(ps)
		c.absorbContact(name, ack.Incarnation, ack.Members, prevState)
		return
	}
	c.probeFailures.With(name).Inc()
	ps.noteErr(err)
	c.reportFailure(ps, err)

	// Indirect probes: maybe our link to the member is down, not the
	// member. Relays are the first K alive members (sorted order —
	// deterministic, and with ring-scale N the "first K" are as good as
	// random K).
	for _, relay := range c.relaysFor(name, c.opts.IndirectProbes) {
		ictx, icancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout+c.opts.RequestTimeout)
		iack, ierr := c.client.indirectProbe(ictx, relay, IndirectProbeRequest{
			From:        c.self,
			Incarnation: c.members.SelfIncarnation(),
			Target:      name,
			Members:     c.members.Snapshot(),
		})
		icancel()
		c.gossipSent.With("probe_indirect").Inc()
		if ierr != nil {
			continue
		}
		changed := c.members.Merge(iack.Members)
		if iack.TargetOK {
			// The relay reached it just now: firsthand-by-proxy. Keep the
			// member alive at its current incarnation.
			if c.members.NoteFirsthand(name, 0) {
				changed = true
			}
			if changed {
				c.membershipChanged()
			}
			if prevState != StateAlive {
				c.healthTransitions.With(name, "up").Inc()
			}
			c.peerHealthyG.With(name).Set(1)
			return
		}
		if changed {
			c.membershipChanged()
		}
	}

	// Direct and indirect probes all failed: suspect. The member's keys
	// keep their ring position but the authority walk skips it; if it
	// refutes (or any probe reaches it) before SuspectTimeout it comes
	// back, otherwise the sweep declares it dead and the ring moves.
	if c.members.MarkSuspect(name) {
		c.healthTransitions.With(name, "down").Inc()
		c.membershipChanged()
	}
	c.peerHealthyG.With(name).Set(0)
}

// absorbContact records a successful firsthand exchange with a member
// and merges its piggybacked gossip.
func (c *Cluster) absorbContact(name string, inc uint64, updates []MemberUpdate, prevState MemberState) {
	first := c.members.NoteFirsthand(name, inc)
	merged := c.members.Merge(updates)
	if first || merged {
		c.membershipChanged()
	}
	if prevState != StateAlive {
		c.healthTransitions.With(name, "up").Inc()
	}
	c.peerHealthyG.With(name).Set(1)
}

// relaysFor returns up to k alive members, excluding self and target —
// the relay set for indirect probes and the audience for a leave
// broadcast.
func (c *Cluster) relaysFor(target string, k int) []string {
	out := make([]string, 0, k)
	for _, u := range c.members.Snapshot() {
		if len(out) == k {
			break
		}
		if u.Name == c.self || u.Name == target || u.State != StateAlive.String() {
			continue
		}
		out = append(out, u.Name)
	}
	return out
}

// tryJoin announces this replica to the configured seeds, stopping at
// the first that answers. Called from the probe loop every round until
// it succeeds, so a replica started before its seed converges as soon
// as the seed comes up.
func (c *Cluster) tryJoin() {
	for _, seed := range c.opts.Join {
		jctx, cancel := context.WithTimeout(context.Background(), c.opts.RequestTimeout)
		resp, err := c.client.join(jctx, seed, JoinRequest{From: c.self, Incarnation: c.members.SelfIncarnation()})
		cancel()
		c.gossipSent.With("join").Inc()
		if err != nil {
			continue
		}
		first := c.members.NoteFirsthand(seed, 0)
		merged := c.members.Merge(resp.Members)
		if first || merged {
			c.membershipChanged()
		}
		c.joined = true
		return
	}
}

// Leave broadcasts a graceful departure: self marked left at a freshly
// bumped incarnation (so the announcement outranks any alive record in
// flight), sent best-effort to up to three alive members who gossip it
// onward. A lost leave costs the survivors one suspicion cycle — the
// same path as a crash — never bytes.
func (c *Cluster) Leave(ctx context.Context) {
	inc := c.members.BumpSelf()
	snap := c.members.Snapshot()
	for i := range snap {
		if snap[i].Name == c.self {
			snap[i].State = StateLeft.String()
			snap[i].Incarnation = inc
		}
	}
	targets := c.relaysFor("", 3)
	var wg sync.WaitGroup
	for _, name := range targets {
		wg.Add(1)
		name := name
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					c.probePanics.Inc()
				}
			}()
			lctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
			defer cancel()
			_, _ = c.client.probe(lctx, name, ProbeRequest{From: c.self, Incarnation: inc, Members: snap})
			c.gossipSent.With("leave").Inc()
		}()
	}
	wg.Wait()
}
