package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
)

// Per-peer failure handling: a background prober keeps a liveness bit
// per peer, and every peer carries its own circuit breaker (the shared
// internal/breaker machine, the same one guarding per-fingerprint runs
// in serve) so a flapping replica is cut off after repeated request
// failures instead of adding its timeout to every render. Health gates
// routing — lease authority and steal targets only consider healthy
// peers — while the breaker gates individual requests in between
// probes.

// peerState is everything the cluster tracks about one remote peer. The
// mutex guards the breaker and probe results; inflight is atomic so the
// dispatcher's least-loaded choice never takes the lock.
type peerState struct {
	name string // base URL

	inflight atomic.Int64 // outstanding steal requests from this replica

	mu      sync.Mutex
	b       *breaker.Breaker
	probed  bool // at least one probe completed
	healthy bool
	lastErr string
}

// PeerHealth is the externally visible snapshot of one peer, reported
// by /v1/peer/status and the cluster-aware readyz detail.
type PeerHealth struct {
	Peer     string `json:"peer"`
	Healthy  bool   `json:"healthy"`
	Breaker  string `json:"breaker"` // closed | open | half_open
	Inflight int64  `json:"inflight_steals"`
	LastErr  string `json:"last_error,omitempty"`
}

// healthy reports whether the peer passed its most recent probe. A
// never-probed peer is optimistically healthy so a cluster is usable
// the instant it starts, before the first probe round lands.
func (p *peerState) healthyNow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.probed || p.healthy
}

// allow consults the breaker before a request to this peer.
func (p *peerState) allow(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, _, ok := p.b.Allow(now)
	return ok
}

// snapshot renders the PeerHealth view.
func (p *peerState) snapshot() PeerHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := "closed"
	switch p.b.State() {
	case breaker.Open:
		st = "open"
	case breaker.HalfOpen:
		st = "half_open"
	}
	return PeerHealth{
		Peer:     p.name,
		Healthy:  !p.probed || p.healthy,
		Breaker:  st,
		Inflight: p.inflight.Load(),
		LastErr:  p.lastErr,
	}
}

// reportSuccess feeds a successful request into the breaker.
func (c *Cluster) reportSuccess(p *peerState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.b.Success() {
		c.breakerOpenG.With(p.name).Set(0)
	}
}

// reportFailure feeds a failed request into the breaker.
func (c *Cluster) reportFailure(p *peerState, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastErr = err.Error()
	if p.b.Failure(c.now()) {
		c.breakerOpenG.With(p.name).Set(1)
	}
}

// probeLoop probes every peer at the configured interval until Close.
// It runs in its own goroutine; the deferred recover is the
// daemon-survival backstop required of every goroutine in this layer.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			// A prober panic must not kill the process. Peers keep their
			// last-known health; requests still go through per-request
			// breakers, so the cluster degrades instead of crashing.
			c.probePanics.Inc()
		}
	}()
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	c.probeAll()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll probes all peers concurrently and waits for the round to
// finish — rounds never overlap, so a hung peer costs one timeout per
// round, not a goroutine per tick.
func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, p := range c.remotes {
		wg.Add(1)
		p := p
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					c.probePanics.Inc()
				}
			}()
			c.probeOne(p)
		}()
	}
	wg.Wait()
}

// probeOne hits the peer's health endpoint and records the outcome.
func (c *Cluster) probeOne(p *peerState) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	err := c.client.probe(ctx, p.name)

	p.mu.Lock()
	p.probed = true
	wasHealthy := p.healthy
	p.healthy = err == nil
	if err != nil {
		p.lastErr = err.Error()
	} else {
		p.lastErr = ""
	}
	p.mu.Unlock()

	if err == nil {
		c.peerHealthyG.With(p.name).Set(1)
		if !wasHealthy {
			c.healthTransitions.With(p.name, "up").Inc()
		}
	} else {
		c.peerHealthyG.With(p.name).Set(0)
		c.probeFailures.With(p.name).Inc()
		if wasHealthy {
			c.healthTransitions.With(p.name, "down").Inc()
		}
	}
}

// probe issues the health request (GET <peer>/healthz).
func (cl *peerClient) probe(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: status %d", peer, resp.StatusCode)
	}
	return nil
}
