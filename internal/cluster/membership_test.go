package cluster

import (
	"fmt"
	"testing"
	"time"
)

func newTestMemberlist(initial ...string) (*Memberlist, *fakeClock) {
	clk := newFakeClock()
	return newMemberlist("http://self", initial, clk.Now, nil), clk
}

func mustState(t *testing.T, m *Memberlist, name string, want MemberState) {
	t.Helper()
	got, ok := m.StateOf(name)
	if !ok || got != want {
		t.Fatalf("state of %s = %v (known=%v), want %v", name, got, ok, want)
	}
}

// TestMergePrecedence pins the SWIM order: higher incarnation wins, at
// equal incarnation the more pessimistic state wins, and dead/left are
// sticky against gossiped liveness even at higher incarnations.
func TestMergePrecedence(t *testing.T) {
	cases := []struct {
		name            string
		first, second   MemberUpdate
		want            MemberState
		wantIncarnation uint64
	}{
		{"higher incarnation wins",
			MemberUpdate{Name: "http://b", State: "suspect", Incarnation: 1},
			MemberUpdate{Name: "http://b", State: "alive", Incarnation: 2},
			StateAlive, 2},
		{"lower incarnation loses",
			MemberUpdate{Name: "http://b", State: "alive", Incarnation: 3},
			MemberUpdate{Name: "http://b", State: "suspect", Incarnation: 2},
			StateAlive, 3},
		{"equal incarnation: suspect beats alive",
			MemberUpdate{Name: "http://b", State: "alive", Incarnation: 2},
			MemberUpdate{Name: "http://b", State: "suspect", Incarnation: 2},
			StateSuspect, 2},
		{"equal incarnation: alive does not clear suspect",
			MemberUpdate{Name: "http://b", State: "suspect", Incarnation: 2},
			MemberUpdate{Name: "http://b", State: "alive", Incarnation: 2},
			StateSuspect, 2},
		{"equal incarnation: dead beats suspect",
			MemberUpdate{Name: "http://b", State: "suspect", Incarnation: 2},
			MemberUpdate{Name: "http://b", State: "dead", Incarnation: 2},
			StateDead, 2},
		{"gossiped alive cannot un-bury dead, even at higher incarnation",
			MemberUpdate{Name: "http://b", State: "dead", Incarnation: 2},
			MemberUpdate{Name: "http://b", State: "alive", Incarnation: 5},
			StateDead, 2},
		{"gossiped suspect cannot un-bury left",
			MemberUpdate{Name: "http://b", State: "left", Incarnation: 2},
			MemberUpdate{Name: "http://b", State: "suspect", Incarnation: 9},
			StateLeft, 2},
		{"dead at higher incarnation buries alive",
			MemberUpdate{Name: "http://b", State: "alive", Incarnation: 2},
			MemberUpdate{Name: "http://b", State: "dead", Incarnation: 3},
			StateDead, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, _ := newTestMemberlist()
			m.Merge([]MemberUpdate{tc.first})
			m.Merge([]MemberUpdate{tc.second})
			mustState(t, m, "http://b", tc.want)
			for _, u := range m.Snapshot() {
				if u.Name == "http://b" && u.Incarnation != tc.wantIncarnation {
					t.Fatalf("incarnation = %d, want %d", u.Incarnation, tc.wantIncarnation)
				}
			}
		})
	}
}

// TestMergeOrderIndependence: the merge relation is a join-semilattice,
// so folding the same updates in any order converges to the same view —
// the property that lets replicas gossip without coordination.
func TestMergeOrderIndependence(t *testing.T) {
	updates := []MemberUpdate{
		{Name: "http://b", State: "alive", Incarnation: 1},
		{Name: "http://b", State: "suspect", Incarnation: 1},
		{Name: "http://b", State: "alive", Incarnation: 2},
		{Name: "http://c", State: "dead", Incarnation: 4},
		{Name: "http://c", State: "alive", Incarnation: 3},
		{Name: "http://d", State: "left", Incarnation: 0},
		{Name: "http://e", State: "suspect", Incarnation: 7},
	}
	// Forward order, reverse order, and one-at-a-time interleaved.
	a, _ := newTestMemberlist()
	a.Merge(updates)
	b, _ := newTestMemberlist()
	for i := len(updates) - 1; i >= 0; i-- {
		b.Merge(updates[i : i+1])
	}
	c, _ := newTestMemberlist()
	c.Merge(updates)
	c.Merge(updates) // idempotence
	sa, sb, sc := a.Snapshot(), b.Snapshot(), c.Snapshot()
	if fmt.Sprint(sa) != fmt.Sprint(sb) {
		t.Fatalf("order-dependent merge:\nforward: %v\nreverse: %v", sa, sb)
	}
	if fmt.Sprint(sa) != fmt.Sprint(sc) {
		t.Fatalf("non-idempotent merge:\nonce: %v\ntwice: %v", sa, sc)
	}
}

// TestRefutation: gossip claiming self is suspect or dead is refuted by
// outbidding — self's incarnation jumps past the rumor's, so the
// refutation outranks it everywhere it spreads.
func TestRefutation(t *testing.T) {
	m, _ := newTestMemberlist("http://b")
	if inc := m.SelfIncarnation(); inc != 0 {
		t.Fatalf("initial self incarnation = %d, want 0", inc)
	}
	m.Merge([]MemberUpdate{{Name: "http://self", State: "suspect", Incarnation: 0}})
	if inc := m.SelfIncarnation(); inc != 1 {
		t.Fatalf("after suspect rumor at 0: self incarnation = %d, want 1", inc)
	}
	m.Merge([]MemberUpdate{{Name: "http://self", State: "dead", Incarnation: 4}})
	if inc := m.SelfIncarnation(); inc != 5 {
		t.Fatalf("after death rumor at 4: self incarnation = %d, want 5", inc)
	}
	// A stale rumor below the current incarnation changes nothing.
	m.Merge([]MemberUpdate{{Name: "http://self", State: "suspect", Incarnation: 2}})
	if inc := m.SelfIncarnation(); inc != 5 {
		t.Fatalf("stale rumor moved self incarnation to %d", inc)
	}
	// Alive gossip about self at a higher incarnation (our own refutation
	// echoed back after a restart) is adopted.
	m.Merge([]MemberUpdate{{Name: "http://self", State: "alive", Incarnation: 9}})
	if inc := m.SelfIncarnation(); inc != 9 {
		t.Fatalf("echoed refutation not adopted: self incarnation = %d, want 9", inc)
	}
	// Self is never demoted in its own list.
	mustState(t, m, "http://self", StateAlive)
}

// TestFirsthandRevival: direct contact outranks any rumor, including a
// tombstone — the restarted-replica path. The revived incarnation is
// bumped past the tombstone's so the resurrection wins the gossip race.
func TestFirsthandRevival(t *testing.T) {
	m, _ := newTestMemberlist()
	m.Merge([]MemberUpdate{{Name: "http://b", State: "dead", Incarnation: 7}})
	mustState(t, m, "http://b", StateDead)
	// The replica restarted: its incarnation reset to 0, but it spoke to
	// us directly.
	if !m.NoteFirsthand("http://b", 0) {
		t.Fatal("firsthand contact did not change a dead member")
	}
	mustState(t, m, "http://b", StateAlive)
	for _, u := range m.Snapshot() {
		if u.Name == "http://b" && u.Incarnation <= 7 {
			t.Fatalf("revived incarnation %d does not outrank tombstone at 7", u.Incarnation)
		}
	}
	// Suspect members are cleared by firsthand contact too.
	m.Merge([]MemberUpdate{{Name: "http://c", State: "alive", Incarnation: 0}})
	m.MarkSuspect("http://c")
	mustState(t, m, "http://c", StateSuspect)
	m.NoteFirsthand("http://c", 0)
	mustState(t, m, "http://c", StateAlive)
	// An alive member heard from again at the same incarnation: no-op.
	if m.NoteFirsthand("http://c", 0) {
		t.Fatal("steady-state firsthand contact reported a change")
	}
}

// TestSuspectLifecycle: a suspicion left unrefuted past the timeout
// becomes dead and leaves the ring; a tombstone is GC'd much later.
func TestSuspectLifecycle(t *testing.T) {
	m, clk := newTestMemberlist("http://b", "http://c")
	m.MarkSuspect("http://b")
	// Suspects stay on the ring (no remap on a transient probe loss).
	if ring := m.RingMembers(); len(ring) != 3 {
		t.Fatalf("ring = %v, want all three members while suspect", ring)
	}
	clk.Advance(500 * time.Millisecond)
	if m.SweepSuspects(time.Second) {
		t.Fatal("sweep before timeout changed membership")
	}
	clk.Advance(time.Second)
	if !m.SweepSuspects(time.Second) {
		t.Fatal("sweep after timeout did not promote suspect to dead")
	}
	mustState(t, m, "http://b", StateDead)
	if ring := m.RingMembers(); len(ring) != 2 {
		t.Fatalf("ring = %v, want dead member dropped", ring)
	}
	// The tombstone outlives gossip of that incarnation, then is GC'd.
	clk.Advance(17 * time.Second)
	m.SweepSuspects(time.Second)
	if _, known := m.StateOf("http://b"); known {
		t.Fatal("tombstone never garbage-collected")
	}
}

// TestEpochConvergence: the epoch is a content hash of the sorted
// membership, so replicas that agree on members agree on the epoch with
// no coordination — and any membership change moves it.
func TestEpochConvergence(t *testing.T) {
	a, _ := newTestMemberlist("http://b", "http://c")
	b := newMemberlist("http://b", []string{"http://self", "http://c"}, newFakeClock().Now, nil)
	ea, eb := EpochOf(a.RingMembers()), EpochOf(b.RingMembers())
	if ea != eb {
		t.Fatalf("same membership, different epochs: %x vs %x", ea, eb)
	}
	a.MarkSuspect("http://c")
	if got := EpochOf(a.RingMembers()); got != ea {
		t.Fatal("suspicion alone moved the epoch (suspects stay on the ring)")
	}
	a.SweepSuspects(0) // immediate: suspect -> dead
	after := EpochOf(a.RingMembers())
	if after == ea {
		t.Fatal("losing a member did not move the epoch")
	}
	// The other replica converges to the same epoch by gossip.
	b.Merge(a.Snapshot())
	if got := EpochOf(b.RingMembers()); got != after {
		t.Fatalf("converged membership, different epochs: %x vs %x", got, after)
	}
}
