package cluster

import (
	"sync"
	"time"
)

// Cluster-wide singleflight, step two: when the owner of a fingerprint
// is unreachable, replicas race to compute it themselves — the lease
// table is what keeps that race down to one winner. A lease is
// permission to execute a run, granted by the key's current authority
// (the first healthy peer in the ring sequence) and expiring after a
// TTL so a holder that dies mid-compute merely delays the run instead
// of wedging it. Leases are advisory for correctness — two replicas
// computing the same fingerprint produce identical bytes, so a split
// grant during an authority handover wastes CPU, never correctness —
// which is why a simple in-memory table with TTL expiry is enough and
// no consensus protocol is needed.

// defaultLeaseTTL bounds how long a crashed holder can block a rerun.
// It should comfortably exceed a typical pipeline run on served
// configurations (sub-second for cached-size configs) but stay short
// enough that takeover is prompt.
const defaultLeaseTTL = 15 * time.Second

// leaseSweepEvery is the amortized expiry sweep period: every Nth
// Acquire walks the table and drops expired entries, so an authority
// that never reports stats (Len is only called on the status path)
// still cannot accumulate abandoned keys without bound.
const leaseSweepEvery = 64

// LeaseTable grants per-key compute leases with TTL expiry. The clock
// is injected: pipeline-adjacent packages never read ambient time, and
// the expiry tests need to move the clock by hand.
type LeaseTable struct {
	ttl time.Duration
	now func() time.Time

	mu     sync.Mutex
	ops    uint64 // Acquire calls since construction (sweep cadence)
	leases map[string]leaseEntry
}

type leaseEntry struct {
	holder  string
	expires time.Time
}

// NewLeaseTable builds a lease table. ttl<=0 uses the default; now is
// required (the Cluster passes its injected clock).
func NewLeaseTable(ttl time.Duration, now func() time.Time) *LeaseTable {
	if ttl <= 0 {
		ttl = defaultLeaseTTL
	}
	return &LeaseTable{ttl: ttl, now: now, leases: map[string]leaseEntry{}}
}

// Acquire asks for the compute lease on key. Exactly one holder owns a
// key at a time: the first caller (or any caller after expiry) is
// granted; a repeat call by the current holder renews; everyone else is
// denied and told who holds it and for how much longer at most.
func (l *LeaseTable) Acquire(key, holder string) (granted bool, current string, ttl time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.ops++
	if l.ops%leaseSweepEvery == 0 {
		l.sweepLocked(now)
	}
	e, ok := l.leases[key]
	if ok && now.Before(e.expires) && e.holder != holder {
		return false, e.holder, e.expires.Sub(now)
	}
	l.leases[key] = leaseEntry{holder: holder, expires: now.Add(l.ttl)}
	return true, holder, l.ttl
}

// Release drops key's lease if holder still owns it; releasing someone
// else's lease (a stale holder coming back after expiry and takeover)
// is a no-op.
func (l *LeaseTable) Release(key, holder string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.leases[key]; ok && e.holder == holder {
		delete(l.leases, key)
	}
}

// Len reports the number of live (unexpired) leases; expired entries
// are swept here too, so the stats path always reports live state.
func (l *LeaseTable) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweepLocked(l.now())
	return len(l.leases)
}

// sweepLocked drops every expired entry. Caller holds l.mu.
func (l *LeaseTable) sweepLocked(now time.Time) {
	for k, e := range l.leases {
		if !now.Before(e.expires) {
			delete(l.leases, k)
		}
	}
}
