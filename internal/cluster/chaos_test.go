//go:build chaos

package cluster

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// gossipExchange simulates one successful probe between two live
// replicas, exactly as absorbContact does on the wire: each side notes
// firsthand contact with the other (which outranks any rumor, including
// a tombstone) and then merges the other's full membership piggyback.
func gossipExchange(a, b *Memberlist, aName, bName string) {
	b.NoteFirsthand(aName, a.SelfIncarnation())
	b.Merge(a.Snapshot())
	a.NoteFirsthand(bName, b.SelfIncarnation())
	a.Merge(b.Snapshot())
}

// TestChaosMembershipConvergence is the protocol-level convergence
// fuzz: N memberlists are driven through seeded random suspicion,
// death sweeps, rumor injection, and partial gossip — producing wildly
// divergent views with conflicting tombstones — and then live all-pairs
// probe rounds (gossip plus the firsthand contact a real probe implies,
// the same signal the prober's reconnection path supplies for dead
// members) must drive every replica to the identical membership view
// and ring epoch. Gossip alone cannot un-bury a tombstone by design,
// so this pins that firsthand contact is a sufficient repair signal no
// matter what divergence the fuzz manufactured.
func TestChaosMembershipConvergence(t *testing.T) {
	const n = 5
	const fuzzSteps = 400
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://m%d", i)
	}
	lists := make([]*Memberlist, n)
	for i := range lists {
		clk := newFakeClock()
		lists[i] = newMemberlist(names[i], names, clk.Now, nil)
	}

	r := rng.New(0x5EED_2026_08_08)
	for step := 0; step < fuzzSteps; step++ {
		i := r.Intn(n)
		j := r.Intn(n - 1)
		if j >= i {
			j++ // distinct partner
		}
		switch {
		case r.Bool(0.40):
			// A probe round that happened to succeed between i and j.
			gossipExchange(lists[i], lists[j], names[i], names[j])
		case r.Bool(0.45):
			// i's probe of j failed (timeout, partition): suspicion.
			lists[i].MarkSuspect(names[j])
		case r.Bool(0.55):
			// i's suspect timers all fired: suspects become tombstones.
			lists[i].SweepSuspects(0)
		default:
			// A stale rumor about j lands on i — old gossip redelivered.
			state := []string{"alive", "suspect", "dead"}[r.Intn(3)]
			lists[i].Merge([]MemberUpdate{{
				Name:        names[j],
				State:       state,
				Incarnation: uint64(r.Intn(4)),
			}})
		}
	}

	// Convergence phase: every replica is live and reachable, so every
	// ordered pair completes a probe per round (the prober guarantees
	// this — ring members directly, tombstoned members via the rotating
	// reconnection probe). Views must stop changing and agree.
	converged := func() bool {
		want := fmt.Sprint(lists[0].Snapshot())
		for _, m := range lists[1:] {
			if fmt.Sprint(m.Snapshot()) != want {
				return false
			}
		}
		return true
	}
	rounds := 0
	for ; rounds < 10 && !converged(); rounds++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				gossipExchange(lists[i], lists[j], names[i], names[j])
			}
		}
	}
	if !converged() {
		for i, m := range lists {
			t.Logf("replica %d view: %v", i, m.Snapshot())
		}
		t.Fatalf("views still divergent after %d all-pairs probe rounds", rounds)
	}

	// Identical views imply identical rings imply identical epochs —
	// and with everyone reachable, everyone is back on the ring.
	epoch := EpochOf(lists[0].RingMembers())
	for i, m := range lists {
		if got := EpochOf(m.RingMembers()); got != epoch {
			t.Fatalf("replica %d epoch %x != replica 0 epoch %x", i, got, epoch)
		}
		if ring := m.RingMembers(); len(ring) != n {
			t.Fatalf("replica %d ring = %v, want all %d members revived", i, ring, n)
		}
	}
}

// TestChaosSplitBrainTombstoneRepair pins the exact heal sequence the
// serve-level partition suite depends on: two sides that have swept
// each other dead cannot be reunited by gossip (tombstones are sticky
// against rumored liveness), and one firsthand contact per (observer,
// tombstoned member) pair — the reconnection probe — repairs it.
func TestChaosSplitBrainTombstoneRepair(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	mk := func(self string) *Memberlist {
		return newMemberlist(self, names, newFakeClock().Now, nil)
	}
	a, b, c := mk(names[0]), mk(names[1]), mk(names[2])

	// Partition {a} | {b, c}: each side sweeps the other dead.
	a.MarkSuspect(names[1])
	a.MarkSuspect(names[2])
	a.SweepSuspects(0)
	for _, m := range []*Memberlist{b, c} {
		m.MarkSuspect(names[0])
		m.SweepSuspects(0)
	}
	gossipExchange(b, c, names[1], names[2]) // the majority side stays in sync
	if got := EpochOf(a.RingMembers()); got == EpochOf(b.RingMembers()) {
		t.Fatalf("split sides share epoch %x", got)
	}

	// Pure gossip across the healed link changes nothing: both sides
	// hold tombstones, and a tombstone outranks any gossiped liveness.
	a.Merge(b.Snapshot())
	mustState(t, a, names[1], StateDead)
	if len(a.RingMembers()) != 1 {
		t.Fatalf("gossip alone resurrected a tombstone: ring %v", a.RingMembers())
	}

	// Firsthand contact — a's reconnection probe reaching b, then c —
	// revives each tombstone past its incarnation and the ack piggyback
	// carries a's refutation of its own death back to the majority side.
	gossipExchange(a, b, names[0], names[1])
	gossipExchange(a, c, names[0], names[2])
	gossipExchange(b, c, names[1], names[2])
	for who, m := range map[string]*Memberlist{"a": a, "b": b, "c": c} {
		if ring := m.RingMembers(); len(ring) != 3 {
			t.Fatalf("%s ring = %v after firsthand repair, want all three", who, ring)
		}
	}
	ea, eb, ec := EpochOf(a.RingMembers()), EpochOf(b.RingMembers()), EpochOf(c.RingMembers())
	if ea != eb || eb != ec {
		t.Fatalf("healed epochs diverge: a=%x b=%x c=%x", ea, eb, ec)
	}
}
