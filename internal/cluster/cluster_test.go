package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestNewValidation(t *testing.T) {
	reg := obs.NewRegistry()
	cases := []Options{
		{}, // no self
		{Self: "http://a", Peers: []string{"http://b", "http://c"}}, // self not a member
		{Self: "http://a", Peers: []string{"http://a", "http://a"}}, // duplicate
		{Self: "http://a", Peers: []string{"http://a", "ftp://b"}},  // not http
		{Self: "http://a", Peers: []string{"http://a", ""}},         // empty
		{Self: "http://a", Join: []string{"ftp://b"}},               // bad join seed
	}
	for i, o := range cases {
		if _, err := New(o, reg); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	c, err := New(Options{Self: "http://a/", Peers: []string{"http://a", "http://b"}}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "http://a" {
		t.Fatalf("self not normalized: %q", c.Self())
	}
	// A single-element peer list is a valid bootstrap seed awaiting joins.
	seed, err := New(Options{Self: "http://a", Peers: []string{"http://a"}}, obs.NewRegistry())
	if err != nil {
		t.Fatalf("single-member seed rejected: %v", err)
	}
	if got := seed.Members(); len(got) != 1 || got[0] != "http://a" {
		t.Fatalf("seed members = %v, want [http://a]", got)
	}
	// Join mode: membership starts as a ring of one, seeds pending.
	j, err := New(Options{Self: "http://c", Join: []string{"http://a", "http://c"}}, obs.NewRegistry())
	if err != nil {
		t.Fatalf("join mode rejected: %v", err)
	}
	if got := j.Members(); len(got) != 1 || got[0] != "http://c" {
		t.Fatalf("joiner members = %v, want [http://c]", got)
	}
}

// leasePeer is a fake authority: /healthz plus a lease endpoint backed
// by a real LeaseTable, the same wiring the serve handler uses.
func leasePeer(t *testing.T, clk *fakeClock) *httptest.Server {
	t.Helper()
	lt := NewLeaseTable(10*time.Second, clk.Now)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/peer/lease", func(w http.ResponseWriter, r *http.Request) {
		var lr LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&lr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if lr.Release {
			lt.Release(lr.Key, lr.Holder)
			if err := json.NewEncoder(w).Encode(LeaseResponse{Holder: lr.Holder}); err != nil {
				return
			}
			return
		}
		g, holder, ttl := lt.Acquire(lr.Key, lr.Holder)
		if err := json.NewEncoder(w).Encode(LeaseResponse{Granted: g, Holder: holder, TTLMs: ttl.Milliseconds()}); err != nil {
			return
		}
	})
	return httptest.NewServer(mux)
}

// keyOwnedBy finds a key whose ring owner is the wanted peer.
func keyOwnedBy(t *testing.T, c *Cluster, peer string) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		k := keyset(i + 1)[i]
		if c.Owner(k) == peer {
			return k
		}
	}
	t.Fatalf("no key owned by %s in 10k tries", peer)
	return ""
}

// TestAcquireLeaseRemoteAuthority: when the key's owner is a live
// peer, the lease round-trips through its endpoint — one grant, then
// denial naming the first holder.
func TestAcquireLeaseRemoteAuthority(t *testing.T) {
	clk := newFakeClock()
	srv := leasePeer(t, clk)
	defer srv.Close()
	// One membership, two replicas' views of it: a and b are distinct
	// selves in the same three-member ring, so they agree on who owns
	// every key.
	members := []string{"http://127.0.0.1:1", "http://127.0.0.1:2", srv.URL}
	a, err := New(Options{Self: members[0], Peers: members, Now: time.Now}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Self: members[1], Peers: members, Now: time.Now}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, a, normalizePeer(srv.URL))
	g, holder, err := a.AcquireLease(context.Background(), key)
	if err != nil || !g {
		t.Fatalf("first acquire: granted=%v err=%v", g, err)
	}
	if holder != a.Self() {
		t.Fatalf("holder = %q, want %q", holder, a.Self())
	}
	g, holder, err = b.AcquireLease(context.Background(), key)
	if err != nil || g {
		t.Fatalf("second acquire: granted=%v err=%v", g, err)
	}
	if holder != a.Self() {
		t.Fatalf("denial names holder %q, want %q", holder, a.Self())
	}
	// Release, then the second replica wins.
	a.ReleaseLease(context.Background(), key)
	if g, _, _ := b.AcquireLease(context.Background(), key); !g {
		t.Fatal("acquire after release denied")
	}
}

// TestAcquireLeaseOwnerDeadTakeover: with the owner unreachable, the
// walk falls through to the next candidate in the ring sequence —
// here self — and the takeover is granted locally and counted.
func TestAcquireLeaseOwnerDeadTakeover(t *testing.T) {
	clk := newFakeClock()
	srv := leasePeer(t, clk)
	url := srv.URL
	srv.Close()
	c := testCluster(t, url)
	key := keyOwnedBy(t, c, normalizePeer(url))
	g, holder, err := c.AcquireLease(context.Background(), key)
	if err != nil || !g {
		t.Fatalf("takeover acquire: granted=%v err=%v", g, err)
	}
	if holder != c.Self() {
		t.Fatalf("holder = %q, want self", holder)
	}
	if v := c.takeovers.Value(); v != 1 {
		t.Fatalf("takeover counter = %d, want 1", v)
	}
}

// TestProberFlipsHealth: the gossip prober marks a peer suspect when
// its probe endpoint fails and alive again when it recovers, feeding
// the authority walk and the steal target filter. With only two
// members there are no relays, so a failed direct probe suspects
// immediately.
func TestProberFlipsHealth(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	mux := http.NewServeMux()
	var peerURL string
	mux.HandleFunc("POST /v1/peer/probe", func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(ProbeAck{From: peerURL, Incarnation: 1})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	peerURL = srv.URL

	self := "http://127.0.0.1:1"
	c, err := New(Options{
		Self:          self,
		Peers:         []string{self, srv.URL},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		Now:           time.Now,
	}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer func() { _ = c.Close(context.Background()) }()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if hs := c.PeerHealth(); len(hs) == 1 && hs[0].Healthy == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("peer never became %s", what)
	}
	waitFor(true, "healthy")
	if h, total := c.Quorum(); h != 2 || total != 2 {
		t.Fatalf("quorum = %d/%d, want 2/2", h, total)
	}
	healthy.Store(false)
	waitFor(false, "suspect")
	if st, _ := c.members.StateOf(normalizePeer(srv.URL)); st != StateSuspect {
		t.Fatalf("peer state = %v, want suspect", st)
	}
	if h, total := c.Quorum(); h != 1 || total != 2 {
		t.Fatalf("quorum after peer suspect = %d/%d, want 1/2", h, total)
	}
	// A suspect keeps its ring position (no key remapping on a blip)
	// but must not be the authority for its keys.
	key := keyOwnedBy(t, c, normalizePeer(srv.URL))
	if auth := c.Authority(key); auth != c.Self() {
		t.Fatalf("authority for suspect owner's key = %q, want self", auth)
	}
	healthy.Store(true)
	waitFor(true, "healthy again")
	if st, _ := c.members.StateOf(normalizePeer(srv.URL)); st != StateAlive {
		t.Fatalf("peer state after recovery = %v, want alive", st)
	}
}
