package cluster

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// Work-stealing stage dispatch. The replica executing a pipeline run
// installs TraceStage as core.RunOptions.TraceStage, so every
// per-(year, replica) trace stage becomes a dispatch decision: run it
// here, or ship (cfg, year, rep) to the least-loaded healthy peer and
// stream the resulting table back. The stage graph itself is untouched
// — repTables slots and the fixed year/replica/shard merge order make
// reassembly deterministic no matter which mix of local and remote
// executions filled them — and every remote fault degrades to local
// recompute, so distribution can only ever change latency, not bytes.

// TraceStage computes one (year, rep) trace stage, remotely when a
// peer has spare capacity, locally otherwise. It satisfies
// core.RunOptions.TraceStage.
func (c *Cluster) TraceStage(ctx context.Context, cfg core.Config, year, rep int) (trace.JobTable, error) {
	target := c.stealTarget()
	if target == nil {
		return c.localStage(cfg, year, rep)
	}
	stage := core.TraceStageName(year, rep)
	target.inflight.Add(1)
	start := c.now()
	tab, err := c.remoteStage(ctx, target.name, cfg, year, rep)
	target.inflight.Add(-1)
	if err == nil {
		c.reportSuccess(target)
		c.steals.With("remote").Inc()
		c.stealSeconds.Observe(c.now().Sub(start).Seconds())
		return tab, nil
	}
	// Degraded path: the steal failed (transport, auth, integrity, or a
	// peer-side error). Note the failure on the peer's breaker and
	// recompute locally — identical bytes, only later.
	c.reportFailure(target, err)
	c.steals.With("fallback").Inc()
	rerr := &RemoteStageError{Peer: target.name, Stage: stage, Attempt: 1, Err: err}
	tab, lerr := c.localStage(cfg, year, rep)
	if lerr != nil {
		return nil, fmt.Errorf("local recompute failed: %w; after remote failure: %w", lerr, rerr)
	}
	return tab, nil
}

// localStage computes the stage in-process, tracking self load so the
// target choice sees local work too.
func (c *Cluster) localStage(cfg core.Config, year, rep int) (trace.JobTable, error) {
	c.selfInflight.Add(1)
	defer c.selfInflight.Add(-1)
	c.steals.With("local").Inc()
	return c.opts.LocalStage(cfg, year, rep)
}

// remoteStage ships one stage to peer. Execution knobs are stripped
// from the wire config: worker counts, batch sizes, and spill paths
// are local concerns (artifact bytes are invariant to them, pinned by
// the shard/batch equivalence tests), and a requester's spill
// directory is meaningless on another machine. The thief's ring epoch
// rides along so a steal that straddles a membership change is visible
// on the serving side's mismatch counter.
func (c *Cluster) remoteStage(ctx context.Context, peer string, cfg core.Config, year, rep int) (trace.JobTable, error) {
	wire := cfg
	wire.Workers = 0
	wire.Table = core.TableConfig{}
	sctx, cancel := context.WithTimeout(ctx, c.opts.FillTimeout)
	defer cancel()
	return c.client.postStage(sctx, peer, StageRequest{Config: wire, Year: year, Rep: rep, Epoch: c.EpochHex()})
}

// stealTarget picks where the next stage should run: the candidate
// with the fewest outstanding stages among self and every alive,
// breaker-admitted member. Nil means "run it locally" — either self is
// least loaded or no peer is usable. Ties prefer self (no network is
// always cheaper than some network). The member walk is the live ring
// view, so a replica that joined five seconds ago is already a steal
// candidate and a suspect is already excluded.
func (c *Cluster) stealTarget() *peerState {
	var best *peerState
	bestLoad := c.selfInflight.Load()
	for _, name := range c.Members() {
		if name == c.self || !c.healthyPeer(name) {
			continue
		}
		p := c.peerStateFor(name)
		if !p.allow(c.now()) {
			continue
		}
		if load := p.inflight.Load(); load < bestLoad {
			best, bestLoad = p, load
		}
	}
	return best
}
