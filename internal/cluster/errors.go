package cluster

import (
	"errors"
	"fmt"

	"repro/internal/table"
)

// RemoteStageError records a failed attempt to execute a pipeline stage
// on a peer. It wraps the transport/decode cause and carries enough
// attribution — which peer, which stage, which attempt — for the
// serving layer's error envelope to say *where* distribution failed.
// It flows through the ordinary error chain: when a steal's local
// fallback also fails, the stage fails with a *parallel.StageError
// whose chain contains this, so errors.As pulls the peer attribution
// out of the same typed path every local stage error takes.
type RemoteStageError struct {
	Peer    string // base URL of the peer that failed
	Stage   string // pipeline stage name, e.g. "trace-2024-rep3"
	Attempt int    // 1-based attempt number against this peer
	Err     error
}

func (e *RemoteStageError) Error() string {
	return fmt.Sprintf("cluster: stage %s on peer %s (attempt %d): %v", e.Stage, e.Peer, e.Attempt, e.Err)
}

func (e *RemoteStageError) Unwrap() error { return e.Err }

// NotAuthorityError is a peer's 409 answer to an authority fill: "I
// don't hold these bytes and, by my ring, I shouldn't compute them."
// It carries the responder's view — who it believes the authority is
// and its ring epoch — so a requester whose fill straddled a membership
// change can retry against the new authority instead of treating the
// refusal as a peer failure.
type NotAuthorityError struct {
	Peer      string // who refused
	Authority string // who the responder believes owns the key ("" if unknown)
	Epoch     string // responder's ring epoch, hex
}

func (e *NotAuthorityError) Error() string {
	return fmt.Sprintf("cluster: peer %s is not the authority (it names %q, epoch %s)", e.Peer, e.Authority, e.Epoch)
}

// PeerError is a non-2xx response from a peer endpoint, preserving the
// status code so callers can distinguish "peer is up but refused"
// (auth, validation) from transport failures.
type PeerError struct {
	Peer   string
	Status int
	Body   string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s returned %d: %s", e.Peer, e.Status, e.Body)
}

// isIntegrity reports whether err is a table integrity failure (as
// opposed to a transport or peer error) — metered separately because a
// checksum mismatch on intact transport points at a bug, not weather.
func isIntegrity(err error) bool {
	var ie *table.IntegrityError
	return errors.As(err, &ie)
}

// asNotAuthority extracts a *NotAuthorityError from err's chain.
func asNotAuthority(err error, out **NotAuthorityError) bool {
	return errors.As(err, out)
}
