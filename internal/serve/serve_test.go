package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyConfig is a fast real pipeline configuration: small cohorts and
// two early trace years (the later campus models are far heavier; two
// years rather than one so year-series figures still have a line to
// draw).
func tinyConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.N2011, cfg.N2024 = 30, 40
	cfg.TraceYears = []int{2011, 2012}
	cfg.SimYear = 2011
	cfg.PanelN = 0
	cfg.NoiseRate = 0
	cfg.Workers = 1
	return cfg
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.BaseConfig.N2011 == 0 && opts.BaseConfig.N2024 == 0 && len(opts.BaseConfig.TraceYears) == 0 {
		opts.BaseConfig = tinyConfig()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// fakeArtifacts is the minimal Artifacts a run summary can be built
// from, for tests that stub out the pipeline.
func fakeArtifacts() *core.Artifacts {
	return &core.Artifacts{Sim: &sched.Result{}}
}

func get(t *testing.T, h http.Handler, path string, header ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./internal/serve -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("body differs from %s:\ngot:  %s\nwant: %s", path, got, want)
	}
}

// ---- probes, index, experiments ----

func TestProbes(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	if w := get(t, h, "/healthz"); w.Code != 200 || w.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q", w.Code, w.Body.String())
	}
	if w := get(t, h, "/readyz"); w.Code != 200 || w.Body.String() != "ready\n" {
		t.Errorf("readyz = %d %q", w.Code, w.Body.String())
	}
	if w := get(t, h, "/"); w.Code != 200 || !strings.Contains(w.Body.String(), "/v1/tables/{id}") {
		t.Errorf("index = %d %q", w.Code, w.Body.String())
	}
	if w := get(t, h, "/nosuch"); w.Code != 404 {
		t.Errorf("unknown path = %d, want 404", w.Code)
	}
}

func TestExperimentsGolden(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	w := get(t, h, "/v1/experiments")
	if w.Code != 200 {
		t.Fatalf("experiments = %d: %s", w.Code, w.Body)
	}
	checkGolden(t, "experiments.golden.json", w.Body.Bytes())
}

// ---- tables and figures ----

func TestTableGoldenAndETag(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()

	w := get(t, h, "/v1/tables/T5?format=json")
	if w.Code != 200 {
		t.Fatalf("T5 = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	etag := w.Header().Get("ETag")
	if want := etagFor(w.Body.Bytes()); etag != want {
		t.Errorf("ETag = %q, want content hash %q", etag, want)
	}
	checkGolden(t, "table_t5.golden.json", w.Body.Bytes())

	// Second request: served from cache, byte-identical, same ETag.
	hits := s.cache.hits.Value()
	w2 := get(t, h, "/v1/tables/T5?format=json")
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("repeated render not byte-identical")
	}
	if w2.Header().Get("ETag") != etag {
		t.Error("repeated render changed the ETag")
	}
	if got := s.cache.hits.Value(); got != hits+1 {
		t.Errorf("cache hits = %d, want %d", got, hits+1)
	}

	// Conditional request round-trip: If-None-Match answers 304 with no
	// body.
	w3 := get(t, h, "/v1/tables/T5?format=json", "If-None-Match", etag)
	if w3.Code != http.StatusNotModified {
		t.Fatalf("conditional GET = %d, want 304", w3.Code)
	}
	if w3.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", w3.Body.Len())
	}
	if w4 := get(t, h, "/v1/tables/T5?format=json", "If-None-Match", `"stale"`); w4.Code != 200 {
		t.Errorf("stale-tag GET = %d, want 200", w4.Code)
	}
}

func TestTableFormatsAndErrors(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	for format, want := range map[string]string{
		"txt": "text/plain; charset=utf-8",
		"csv": "text/csv; charset=utf-8",
		"md":  "text/markdown; charset=utf-8",
	} {
		w := get(t, h, "/v1/tables/T5?format="+format)
		if w.Code != 200 || w.Body.Len() == 0 {
			t.Errorf("format %s: code %d, %d bytes", format, w.Code, w.Body.Len())
		}
		if ct := w.Header().Get("Content-Type"); ct != want {
			t.Errorf("format %s: Content-Type %q, want %q", format, ct, want)
		}
	}
	if w := get(t, h, "/v1/tables/T5?format=xml"); w.Code != 400 {
		t.Errorf("unknown format = %d, want 400", w.Code)
	}
	if w := get(t, h, "/v1/tables/T99"); w.Code != 404 {
		t.Errorf("unknown table = %d, want 404", w.Code)
	}
	if w := get(t, h, "/v1/tables/F1"); w.Code != 400 {
		t.Errorf("figure via tables = %d, want 400", w.Code)
	}
	if w := get(t, h, "/v1/tables/T5?run=deadbeef"); w.Code != 404 {
		t.Errorf("unknown run fingerprint = %d, want 404", w.Code)
	}
}

func TestFigure(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	w := get(t, h, "/v1/figures/F1")
	if w.Code != 200 {
		t.Fatalf("F1 = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(w.Body.String(), "<svg") {
		t.Error("figure body is not SVG")
	}
	if w2 := get(t, h, "/v1/figures/T5"); w2.Code != 400 {
		t.Errorf("table via figures = %d, want 400", w2.Code)
	}
}

// ---- POST /v1/run ----

// TestRunCachedDeterministic is the acceptance test: two requests for
// the same (config, seed) return byte-identical bodies with matching
// ETags, the pipeline executes exactly once, and the second response
// comes from the cache (hit counter increments).
func TestRunCachedDeterministic(t *testing.T) {
	var runs atomic.Int64
	s := newTestServer(t, Options{RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
		runs.Add(1)
		return core.RunSequential(cfg)
	}})
	h := s.Handler()
	body := `{"seed": 7, "n2011": 25}`

	w1 := post(t, h, "/v1/run", body)
	if w1.Code != 200 {
		t.Fatalf("run 1 = %d: %s", w1.Code, w1.Body)
	}
	hits := s.cache.hits.Value()
	w2 := post(t, h, "/v1/run", body)
	if w2.Code != 200 {
		t.Fatalf("run 2 = %d: %s", w2.Code, w2.Body)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("identical (config, seed) produced different bodies")
	}
	e1, e2 := w1.Header().Get("ETag"), w2.Header().Get("ETag")
	if e1 == "" || e1 != e2 {
		t.Errorf("ETags differ: %q vs %q", e1, e2)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("pipeline executed %d times, want exactly 1", got)
	}
	if got := s.cache.hits.Value(); got != hits+1 {
		t.Errorf("cache hits = %d, want %d (second response served from cache)", got, hits+1)
	}

	// The summary exposes the fingerprint; tables of that run resolve.
	var sum struct{ Fingerprint string }
	if err := json.Unmarshal(w1.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if w := get(t, h, "/v1/tables/T1?run="+sum.Fingerprint); w.Code != 200 {
		t.Errorf("table against run fingerprint = %d: %s", w.Code, w.Body)
	}
}

// TestRunSingleflight: N concurrent identical runs collapse onto one
// pipeline execution.
func TestRunSingleflight(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	s := newTestServer(t, Options{RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
		runs.Add(1)
		<-release
		return fakeArtifacts(), nil
	}})
	h := s.Handler()

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, h, "/v1/run", `{"seed": 99}`)
			codes[i], bodies[i] = w.Code, w.Body.Bytes()
		}(i)
	}
	// Let the flights pile up on the one execution, then release it.
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d = %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs", i)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("pipeline executed %d times for %d concurrent identical runs, want 1", got, n)
	}
	if got := s.runner.collapsed.Value(); got == 0 {
		t.Error("collapsed counter = 0, want > 0")
	}
}

func TestRunBadRequests(t *testing.T) {
	s := newTestServer(t, Options{MaxCohort: 100, RunFunc: func(context.Context, core.Config) (*core.Artifacts, error) {
		t.Error("pipeline executed for an invalid request")
		return fakeArtifacts(), nil
	}})
	h := s.Handler()
	cases := map[string]string{
		"malformed JSON":   `{"seed": `,
		"unknown field":    `{"sneed": 7}`,
		"unknown policy":   `{"policy": "lifo"}`,
		"cohort cap":       `{"n2024": 101}`,
		"panel cap":        `{"panelN": 101}`,
		"no trace years":   `{"traceYears": []}`,
		"sim year missing": `{"traceYears": [2011, 2012], "simYear": 2024}`,
	}
	for name, body := range cases {
		if w := post(t, h, "/v1/run", body); w.Code != 400 {
			t.Errorf("%s: code %d, want 400 (%s)", name, w.Code, w.Body)
		}
	}
}

// TestRunErrorNotCached: a failed run reports 500 and the next attempt
// re-executes.
func TestRunErrorNotCached(t *testing.T) {
	var runs atomic.Int64
	s := newTestServer(t, Options{RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
		if runs.Add(1) == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return fakeArtifacts(), nil
	}})
	h := s.Handler()
	if w := post(t, h, "/v1/run", `{"seed": 5}`); w.Code != 500 {
		t.Fatalf("failing run = %d, want 500", w.Code)
	}
	if w := post(t, h, "/v1/run", `{"seed": 5}`); w.Code != 200 {
		t.Fatalf("retry = %d, want 200 (failure must not be cached)", w.Code)
	}
	if got := s.runner.errorsTotal.Value(); got != 1 {
		t.Errorf("pipeline errors = %d, want 1", got)
	}
}

// ---- admission control ----

// TestAdmissionQueueFull: with one slot occupied and the queue full,
// the next run is rejected 429 with a Retry-After hint.
func TestAdmissionQueueFull(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s := newTestServer(t, Options{
		RunLimit: 1, RunQueue: 1, QueueTimeout: 5 * time.Second,
		RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
			started <- struct{}{}
			<-release
			return fakeArtifacts(), nil
		},
	})
	h := s.Handler()
	defer close(release)

	done := make(chan int, 2)
	go func() { done <- post(t, h, "/v1/run", `{"seed": 1}`).Code }()
	<-started // slot holder is inside the pipeline
	go func() { done <- post(t, h, "/v1/run", `{"seed": 2}`).Code }()
	// Wait until the second request occupies the queue slot.
	for s.runGate.waiting() == 0 {
		time.Sleep(time.Millisecond)
	}

	w := post(t, h, "/v1/run", `{"seed": 3}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("third run = %d, want 429: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.rejected.With("run", "queue_full").Value(); got != 1 {
		t.Errorf("queue_full rejections = %d, want 1", got)
	}
}

// TestAdmissionTimeout: a queued request whose wait exceeds QueueTimeout
// is rejected 503.
func TestAdmissionTimeout(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := newTestServer(t, Options{
		RunLimit: 1, RunQueue: 4, QueueTimeout: 30 * time.Millisecond,
		RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
			started <- struct{}{}
			<-release
			return fakeArtifacts(), nil
		},
	})
	h := s.Handler()
	defer close(release)

	go post(t, h, "/v1/run", `{"seed": 1}`)
	<-started
	w := post(t, h, "/v1/run", `{"seed": 2}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out run = %d, want 503: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := s.rejected.With("run", "timeout").Value(); got != 1 {
		t.Errorf("timeout rejections = %d, want 1", got)
	}
}

// ---- responses ----

func TestResponsesValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	// One structurally valid but rule-breaking response (off-instrument
	// choice, required questions unanswered) and one malformed line.
	bad := `{"id":"r1","cohort":2024,"weight":1,"answers":{"field":{"kind":"single","choice":"astrology"}}}` + "\n"
	w := post(t, h, "/v1/responses", bad)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid batch = %d, want 422: %s", w.Code, w.Body)
	}
	var rep struct {
		Received, Valid, Invalid int
		Results                  []struct {
			ID     string
			Valid  bool
			Errors []struct{ Question, Reason string }
		}
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Received != 1 || rep.Valid != 0 || rep.Invalid != 1 {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.Results) != 1 || rep.Results[0].Valid || len(rep.Results[0].Errors) == 0 {
		t.Errorf("results = %+v", rep.Results)
	}
	if got := s.validated.With("invalid").Value(); got != 1 {
		t.Errorf("invalid verdicts metric = %d, want 1", got)
	}
	if w := post(t, h, "/v1/responses", `{"id": `); w.Code != 400 {
		t.Errorf("malformed NDJSON = %d, want 400", w.Code)
	}
	if w := post(t, h, "/v1/responses", ""); w.Code != 200 {
		t.Errorf("empty batch = %d, want 200", w.Code)
	}
}

// ---- stats ----

func TestStatsEndpoints(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()

	w := get(t, h, "/v1/stats/chisquare?rows=2&cols=2&counts=30,45,82,20")
	if w.Code != 200 {
		t.Fatalf("chisquare = %d: %s", w.Code, w.Body)
	}
	var chi struct {
		Test string
		Stat float64
		DF   int
		P    float64
	}
	if err := json.Unmarshal(w.Body.Bytes(), &chi); err != nil {
		t.Fatal(err)
	}
	if chi.Test != "pearson" || chi.DF != 1 || chi.Stat <= 0 || chi.P <= 0 || chi.P >= 0.05 {
		t.Errorf("chisquare = %+v", chi)
	}

	w = get(t, h, "/v1/stats/ci?successes=42&n=100")
	var ci struct{ Share, Lo, Hi, Level float64 }
	if err := json.Unmarshal(w.Body.Bytes(), &ci); err != nil {
		t.Fatal(err)
	}
	if w.Code != 200 || ci.Share != 0.42 || !(ci.Lo < 0.42 && 0.42 < ci.Hi) || ci.Level != 0.95 {
		t.Errorf("ci = %d %+v", w.Code, ci)
	}

	w = get(t, h, "/v1/stats/oddsratio?a=10&b=20&c=30&d=40")
	var or struct{ OddsRatio, Lo, Hi float64 }
	if err := json.Unmarshal(w.Body.Bytes(), &or); err != nil {
		t.Fatal(err)
	}
	if w.Code != 200 || or.OddsRatio <= 0 || !(or.Lo < or.OddsRatio && or.OddsRatio < or.Hi) {
		t.Errorf("oddsratio = %d %+v", w.Code, or)
	}

	for _, path := range []string{
		"/v1/stats/chisquare?rows=2&cols=2&counts=1,2,3", // wrong count
		"/v1/stats/chisquare?rows=2&cols=2&counts=1,2,3,x",
		"/v1/stats/chisquare?rows=2&cols=2&counts=1,2,3,4&test=anova",
		"/v1/stats/ci?successes=42", // n missing
		"/v1/stats/oddsratio?a=1&b=2&c=3",
	} {
		if w := get(t, h, path); w.Code != 400 {
			t.Errorf("%s = %d, want 400", path, w.Code)
		}
	}
}

// ---- metrics ----

func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	get(t, h, "/healthz")
	w := get(t, h, "/metrics")
	if w.Code != 200 {
		t.Fatalf("metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := w.Body.String()
	for _, line := range []string{
		"# TYPE rcpt_http_requests_total counter",
		`rcpt_http_requests_total{route="GET /healthz",code="200"} 1`,
		"# TYPE rcpt_http_request_seconds histogram",
		"# TYPE rcpt_cache_hits_total counter",
		"rcpt_http_in_flight 1", // the /metrics request itself
	} {
		if !strings.Contains(body, line) {
			t.Errorf("metrics output missing %q", line)
		}
	}
}

// ---- draining and graceful shutdown ----

// TestDrainingRejects: once Shutdown has been initiated, readiness and
// gated routes answer 503 while liveness stays 200.
func TestDrainingRejects(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if w := get(t, h, "/healthz"); w.Code != 200 {
		t.Errorf("healthz while draining = %d, want 200", w.Code)
	}
	if w := get(t, h, "/readyz"); w.Code != 503 {
		t.Errorf("readyz while draining = %d, want 503", w.Code)
	}
	w := get(t, h, "/v1/experiments")
	if w.Code != 503 {
		t.Errorf("gated route while draining = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("draining rejection without Retry-After")
	}
}

// TestGracefulDrain drives a real listener: a slow in-flight request
// survives Shutdown and completes 200, and both Serve and Shutdown
// return nil.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := newTestServer(t, Options{RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
		started <- struct{}{}
		<-release
		return fakeArtifacts(), nil
	}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	type result struct {
		code int
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/run", "application/json",
			strings.NewReader(`{"seed": 1}`))
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		reqDone <- result{code: resp.StatusCode, err: resp.Body.Close()}
	}()
	<-started // request is in flight inside the pipeline

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin draining
	close(release)

	res := <-reqDone
	if res.err != nil || res.code != 200 {
		t.Errorf("in-flight request = %d, %v; want 200, nil", res.code, res.err)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown = %v, want nil", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve = %v, want nil after clean shutdown", err)
	}
}

// TestConcurrentRenders hammers cached and uncached render paths from
// many goroutines against real artifacts; under -race this is the
// serving layer's end-to-end race test.
func TestConcurrentRenders(t *testing.T) {
	s := newTestServer(t, Options{})
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	paths := []string{
		"/v1/tables/T1", "/v1/tables/T2?format=csv", "/v1/tables/T5?format=md",
		"/v1/figures/F1", "/v1/experiments", "/metrics",
		"/v1/stats/ci?successes=10&n=50",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p := paths[(g+i)%len(paths)]
				if w := get(t, h, p); w.Code != 200 {
					t.Errorf("%s = %d", p, w.Code)
				}
			}
		}(g)
	}
	wg.Wait()
}
