package serve

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/table"
	"repro/internal/trace"
)

// The serve side of the peer protocol (see internal/cluster for the
// client half and the package doc). Three data-plane endpoints plus a
// status probe, all secret-authenticated, all bypassing the client
// admission gates: replicas coordinating a run must not be rejected by
// the capacity limits that protect the cluster from clients. Each has
// its own bound instead — the artifact endpoint joins the runner's
// singleflight, the stage endpoint is capped by peerStageGate, and the
// lease endpoint is a map operation.

// peerAuth rejects peer requests that do not carry the shared cluster
// secret. Comparison is constant-time; an empty configured secret
// disables the check (trusted localhost rings, tests).
func (s *Server) peerAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if secret := s.cluster.Secret(); secret != "" {
			got := r.Header.Get(cluster.SecretHeader)
			if subtle.ConstantTimeCompare([]byte(got), []byte(secret)) != 1 {
				s.writeError(w, http.StatusUnauthorized, "missing or invalid peer secret")
				return
			}
		}
		h(w, r)
	}
}

// handlePeerArtifact serves GET /v1/peer/artifact/{fp}/{artifact}: a
// peer cache fill. The request carries the full config (base64url JSON)
// because a fingerprint names artifact bytes but cannot reconstruct the
// configuration that produces them — so this replica can compute a run
// it has never seen. The declared fingerprint must match the config's
// own: a mismatch means the requester and this replica would disagree
// about what the bytes are called, which is never recoverable.
func (s *Server) handlePeerArtifact(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	id := r.PathValue("artifact")
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	encoded := r.URL.Query().Get(cluster.ConfigParam)
	if encoded == "" {
		s.writeError(w, http.StatusBadRequest, "missing config parameter")
		return
	}
	cfg, err := cluster.DecodeConfigParam(encoded)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := cfg.Validate(); err != nil {
		s.writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
		return
	}
	if got := cfg.Fingerprint(); got != fp {
		s.writeJSON(w, http.StatusUnprocessableEntity, apiError{
			Error: fmt.Sprintf("config fingerprints to %s, path says %s", got, fp)})
		return
	}
	s.cluster.CheckFillEpoch(r.Header.Get(cluster.EpochHeader))
	key := cacheKey{fingerprint: fp, artifact: id, format: format}
	if e, hit := s.cacheGet(key); hit {
		s.writeCached(w, r, e)
		return
	}
	// A cache miss means serving this fill would compute the run. Bytes
	// this replica already holds (a retained or in-flight run) are served
	// to anyone — content addressing makes them interchangeable — but a
	// *fresh* compute is the authority's job.
	//
	// A hint probe (see cluster.HintHeader) never computes: the
	// requester is an authority that cold-started after a handover and
	// is only asking who already has the run. Answering 404 here is the
	// signal to try the next peer — computing would defeat the probe's
	// purpose and re-hinting would recurse.
	hinted := r.Header.Get(cluster.HintHeader) != ""
	if hinted && !s.runner.knows(fp) {
		s.writeError(w, http.StatusNotFound, "no retained run for this fingerprint")
		return
	}
	// If this replica's ring says someone else is the authority, the
	// requester resolved against a stale ring (a membership change
	// straddled the fill): answer 409 naming who this replica believes
	// the authority is, so the requester re-resolves instead of fanning
	// duplicate computes across a handover.
	if auth := s.cluster.Authority(fp); !hinted && auth != s.cluster.Self() && !s.runner.knows(fp) {
		s.writeJSON(w, http.StatusConflict, peerRedirect{
			Error:     "not the authority for this fingerprint",
			Authority: auth,
			Epoch:     s.cluster.EpochHex(),
		})
		return
	}
	ctx, cancel := s.runContext(r)
	defer cancel()
	// The symmetric cold-start: this replica agrees it is the authority
	// but has never computed the run — a non-hinted fill arriving here
	// would recompute bytes some peer may still hold. Probe the ring
	// first; only when nobody has them is the compute genuinely fresh.
	if !hinted && !s.runner.knows(fp) {
		if e, ok := s.hintFill(ctx, key); ok {
			s.writeCached(w, r, e)
			return
		}
	}
	arts, err := s.runner.artifacts(ctx, fp, cfg)
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	e, err := renderArtifact(arts, id, format)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err.Error())
		return
	}
	s.cachePut(key, e)
	s.writeCached(w, r, e)
}

// handlePeerLease serves POST /v1/peer/lease: this replica acting as
// the lease authority for keys it owns (or has taken over). Grant,
// denial-naming-the-holder, renewal, and release are all one lease
// table operation; correctness never depends on the answer — a
// duplicate compute produces identical bytes — so no persistence or
// consensus is needed behind it.
func (s *Server) handlePeerLease(w http.ResponseWriter, r *http.Request) {
	var lr cluster.LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&lr); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad lease request: "+err.Error())
		return
	}
	if lr.Key == "" || lr.Holder == "" {
		s.writeError(w, http.StatusBadRequest, "lease request needs key and holder")
		return
	}
	s.cluster.CheckLeaseEpoch(lr.Epoch)
	lt := s.cluster.Leases()
	if lr.Release {
		lt.Release(lr.Key, lr.Holder)
		s.writeJSON(w, http.StatusOK, cluster.LeaseResponse{Holder: lr.Holder, Epoch: s.cluster.EpochHex()})
		return
	}
	granted, holder, ttl := lt.Acquire(lr.Key, lr.Holder)
	s.writeJSON(w, http.StatusOK, cluster.LeaseResponse{
		Granted: granted, Holder: holder, TTLMs: ttl.Milliseconds(), Epoch: s.cluster.EpochHex()})
}

// handlePeerStage serves POST /v1/peer/stage: execute one stolen
// (year, replica) trace stage and stream the table back in the
// checksummed columnar envelope, with the content hash declared in a
// header so the thief can verify the decode end to end. Admission is
// non-blocking: at PeerStageLimit concurrent stages the answer is an
// immediate 503 — the thief computes locally, which is always cheaper
// than both sides waiting on a queue.
func (s *Server) handlePeerStage(w http.ResponseWriter, r *http.Request) {
	select {
	case s.peerStageGate <- struct{}{}:
		defer func() { <-s.peerStageGate }()
	default:
		s.retryLater(w, http.StatusServiceUnavailable, "stage capacity exhausted")
		return
	}
	var req cluster.StageRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad stage request: "+err.Error())
		return
	}
	// Stage steals are epoch-advisory: a steal that straddled a
	// membership change still produces the right bytes (the table hash
	// proves it), so a mismatch is metered, never refused.
	s.cluster.CheckStageEpoch(req.Epoch)
	// The wire config arrives with execution knobs stripped (they are
	// local concerns, invariant to the artifact bytes); apply this
	// replica's own.
	cfg := req.Config
	cfg.Workers = s.baseCfg.Workers
	cfg.Table = s.baseCfg.Table
	// Cache-aware compute: a stage this replica (or a run it executed)
	// already produced is served from the stage cache — the key covers
	// only fingerprint-relevant fields, so the stripped execution knobs
	// cannot fork it.
	tab, err := s.localTraceStage(cfg, req.Year, req.Rep)
	if err != nil {
		s.writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
		return
	}
	hash, err := tab.Hash()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var buf bytes.Buffer
	if err := table.EncodeStream(&buf, trace.JobCodec{}, tab); err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set(cluster.TableHashHeader, strconv.FormatUint(hash, 16))
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.writeErrors.Inc()
	}
}

// peerRedirect is the 409 body a non-authority replica answers a fill
// with: who it believes the authority is, under which ring epoch.
type peerRedirect struct {
	Error     string `json:"error"`
	Authority string `json:"authority"`
	Epoch     string `json:"epoch"`
}

// handlePeerProbe serves POST /v1/peer/probe: the direct SWIM probe.
// The ack carries this replica's full membership view, which is how
// gossip disseminates — every probe in either direction merges states.
func (s *Server) handlePeerProbe(w http.ResponseWriter, r *http.Request) {
	var req cluster.ProbeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<18)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad probe request: "+err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, s.cluster.HandleProbe(req))
}

// handlePeerProbeIndirect serves POST /v1/peer/probe-indirect: probe a
// third member on the requester's behalf, so one severed link does not
// read as a dead peer.
func (s *Server) handlePeerProbeIndirect(w http.ResponseWriter, r *http.Request) {
	var req cluster.IndirectProbeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<18)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad indirect probe request: "+err.Error())
		return
	}
	if req.Target == "" {
		s.writeError(w, http.StatusBadRequest, "indirect probe needs a target")
		return
	}
	s.writeJSON(w, http.StatusOK, s.cluster.HandleIndirectProbe(r.Context(), req))
}

// handlePeerJoin serves POST /v1/peer/join: a joining replica announces
// itself to any seed and receives the full membership snapshot. From
// there gossip keeps it current; the seed is only a bootstrap.
func (s *Server) handlePeerJoin(w http.ResponseWriter, r *http.Request) {
	var req cluster.JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad join request: "+err.Error())
		return
	}
	if req.From == "" {
		s.writeError(w, http.StatusBadRequest, "join needs a from identity")
		return
	}
	s.writeJSON(w, http.StatusOK, s.cluster.HandleJoin(req))
}

// peerStatusBody is the GET /v1/peer/status response: this replica's
// view of the ring, for operators and for peers' dashboards.
type peerStatusBody struct {
	Self          string                 `json:"self"`
	Epoch         string                 `json:"epoch"`
	Members       []string               `json:"members"`
	MembersDetail []cluster.MemberUpdate `json:"membersDetail"`
	QuorumHealthy int                    `json:"quorumHealthy"`
	QuorumTotal   int                    `json:"quorumTotal"`
	Leases        int                    `json:"leases"`
	Peers         []cluster.PeerHealth   `json:"peers"`
}

func (s *Server) handlePeerStatus(w http.ResponseWriter, r *http.Request) {
	healthy, total := s.cluster.Quorum()
	s.writeJSON(w, http.StatusOK, peerStatusBody{
		Self:          s.cluster.Self(),
		Epoch:         s.cluster.EpochHex(),
		Members:       s.cluster.Members(),
		MembersDetail: s.cluster.MemberUpdates(),
		QuorumHealthy: healthy,
		QuorumTotal:   total,
		Leases:        s.cluster.Leases().Len(),
		Peers:         s.cluster.PeerHealth(),
	})
}

// clusterRender produces one base-config rendered artifact under the
// cluster-wide singleflight protocol. The ring concentrates each
// fingerprint's compute on one replica — the owner while it lives, the
// takeover authority (next healthy peer in ring order) after it dies:
//
//  1. authority is a peer: fill from it. It computes on demand, so the
//     fill blocks until the bytes exist — concurrent fills from every
//     replica collapse onto its one execution, and a replica asking
//     after the fact gets the cached bytes without anyone recomputing.
//     A 409 redirect means the rings disagree (a membership change
//     straddled the fill): re-resolve against the responder's named
//     authority and retry, bounded, instead of computing a duplicate.
//  2. authority is self, or the fill failed: race for the compute
//     lease. The winner computes; a loser fills from whoever holds it.
//  3. every peer path failed: compute locally. The determinism contract
//     makes this safe — a duplicate compute costs CPU, never bytes —
//     so faults degrade latency and cache efficiency only.
func (s *Server) clusterRender(ctx context.Context, key cacheKey) (cacheEntry, error) {
	fp := key.fingerprint
	// Up to two authority handovers are followed; past that the rings
	// are churning faster than fills resolve, and the lease race below
	// (then local compute) is the bounded-latency way out.
	auth := s.cluster.Authority(fp)
	for hop := 0; hop < 3 && auth != s.cluster.Self(); hop++ {
		e, err := s.peerFill(ctx, auth, key)
		if err == nil {
			return e, nil
		}
		var na *cluster.NotAuthorityError
		if !errors.As(err, &na) || na.Authority == "" || na.Authority == auth {
			break
		}
		auth = na.Authority
	}
	if auth == s.cluster.Self() && !s.runner.knows(fp) {
		// Authority cold-start: probe the ring for a peer that already
		// holds the bytes before racing for the compute lease.
		if e, ok := s.hintFill(ctx, key); ok {
			return e, nil
		}
	}
	granted, holder, _ := s.cluster.AcquireLease(ctx, fp)
	if granted {
		// Release promptly so a holder crash is the only case that costs
		// a TTL of blocked takeover; the release must not be lost to the
		// request's own cancellation.
		defer s.cluster.ReleaseLease(context.Background(), fp)
		return s.localRender(ctx, key)
	}
	if holder != "" && holder != s.cluster.Self() {
		if e, err := s.peerFill(ctx, holder, key); err == nil {
			return e, nil
		}
	}
	return s.localRender(ctx, key)
}

// peerFill fetches one rendered artifact from peer (integrity-checked
// against its ETag by the cluster client) and installs it in the local
// cache — same bytes, same ETag, as if rendered here.
func (s *Server) peerFill(ctx context.Context, peer string, key cacheKey) (cacheEntry, error) {
	fill, err := s.cluster.FetchArtifact(ctx, peer, key.fingerprint, key.artifact, key.format, s.baseCfgParam, false)
	if err != nil {
		return cacheEntry{}, err
	}
	e := cacheEntry{body: fill.Body, etag: fill.ETag, contentType: fill.ContentType}
	s.cachePut(key, e)
	return e, nil
}

// hintFill handles the authority's cold-start after a handover: this
// replica owns key's fingerprint but has never computed its run — it
// joined the ring, or a heal or death moved the keyspace. Before
// paying for a compute, walk the ring sequence (the takeover order,
// which leads with whoever held the authority before the handover)
// asking each peer whether it already holds the bytes or the run. The
// asks are hint-marked, so a peer answers only from what it has —
// never computes, never re-hints — which keeps the walk loop-free and
// means its total cost is bounded by ring size, not by pipeline runs.
func (s *Server) hintFill(ctx context.Context, key cacheKey) (cacheEntry, bool) {
	for _, peer := range s.cluster.Sequence(key.fingerprint) {
		if peer == s.cluster.Self() {
			continue
		}
		fill, err := s.cluster.FetchArtifact(ctx, peer, key.fingerprint, key.artifact, key.format, s.baseCfgParam, true)
		if err != nil {
			continue
		}
		e := cacheEntry{body: fill.Body, etag: fill.ETag, contentType: fill.ContentType}
		s.cachePut(key, e)
		return e, true
	}
	return cacheEntry{}, false
}

// localRender runs (or joins) the pipeline here and renders the
// requested artifact.
func (s *Server) localRender(ctx context.Context, key cacheKey) (cacheEntry, error) {
	arts, err := s.runner.artifacts(ctx, key.fingerprint, s.baseCfg)
	if err != nil {
		return cacheEntry{}, err
	}
	e, err := renderArtifact(arts, key.artifact, key.format)
	if err != nil {
		return cacheEntry{}, err
	}
	s.cachePut(key, e)
	return e, nil
}
