package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// diskStore spills completed rendered artifacts to a directory so a
// crashed or restarted daemon warm-starts its cache instead of
// recomputing every run. The determinism contract makes this safe: a
// cacheKey identifies exactly one byte sequence, so a spilled entry can
// be trusted forever — the only failure mode is corruption (torn write,
// bit rot), which the embedded checksum catches on load.
//
// Writes are crash-safe: the envelope is written to a temp file in the
// same directory, fsynced, closed, and atomically renamed into place,
// so a kill at any instant leaves either the old state or the new state
// — never a half-written entry under a valid name.
type diskStore struct {
	dir string

	spill     *obs.CounterVec // outcome: ok | error
	warmstart *obs.CounterVec // outcome: restored | corrupt
	diskHits  *obs.Counter
}

// spillEnvelope is the on-disk JSON form of one cache entry.
type spillEnvelope struct {
	V           int    `json:"v"`
	Fingerprint string `json:"fingerprint"`
	Artifact    string `json:"artifact"`
	Format      string `json:"format"`
	ContentType string `json:"contentType"`
	SHA256      string `json:"sha256"`
	Body        []byte `json:"body"` // base64 via encoding/json
}

const spillVersion = 1

// newDiskStore opens (creating if needed) the spill directory.
func newDiskStore(dir string, spill, warmstart *obs.CounterVec, diskHits *obs.Counter) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	return &diskStore{dir: dir, spill: spill, warmstart: warmstart, diskHits: diskHits}, nil
}

// path maps a cache key onto a stable filename: the hex SHA-256 of the
// key triple. Content-addressed naming means concurrent spills of the
// same key converge on the same file with identical bytes.
func (d *diskStore) path(key cacheKey) string {
	sum := sha256.Sum256([]byte(key.fingerprint + "\x00" + key.artifact + "\x00" + key.format))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// save spills one entry, atomically and durably (temp + fsync + rename
// + best-effort directory fsync). Spill failures are counted, never
// fatal: the cache keeps working from memory.
func (d *diskStore) save(key cacheKey, e cacheEntry) {
	if err := d.trySave(key, e); err != nil {
		d.spill.With("error").Inc()
		return
	}
	d.spill.With("ok").Inc()
}

func (d *diskStore) trySave(key cacheKey, e cacheEntry) error {
	sum := sha256.Sum256(e.body)
	env := spillEnvelope{
		V:           spillVersion,
		Fingerprint: key.fingerprint,
		Artifact:    key.artifact,
		Format:      key.format,
		ContentType: e.contentType,
		SHA256:      hex.EncodeToString(sum[:]),
		Body:        e.body,
	}
	blob, err := json.Marshal(env)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, ".spill-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Any failure below must not leave the temp file behind; the write
	// error is the one worth reporting, so the cleanup Close is a
	// deliberate discard.
	fail := func(err error) error {
		_ = tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, d.path(key)); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Durability of the rename itself: fsync the directory. Best-effort
	// — some filesystems refuse directory fsync, and the entry is still
	// atomic without it.
	if dirF, err := os.Open(d.dir); err == nil {
		_ = dirF.Sync()
		_ = dirF.Close()
	}
	return nil
}

// load reads one entry back by key, checksum-validated. A corrupt file
// is removed and reported absent.
func (d *diskStore) load(key cacheKey) (cacheEntry, bool) {
	e, _, ok := d.read(d.path(key))
	if !ok {
		return cacheEntry{}, false
	}
	d.diskHits.Inc()
	return e, true
}

// read parses and validates one spill file. Corrupt or mismatched files
// are deleted so they cannot be retried forever.
func (d *diskStore) read(path string) (cacheEntry, cacheKey, bool) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return cacheEntry{}, cacheKey{}, false
	}
	var env spillEnvelope
	if err := json.Unmarshal(blob, &env); err != nil || env.V != spillVersion {
		os.Remove(path)
		return cacheEntry{}, cacheKey{}, false
	}
	sum := sha256.Sum256(env.Body)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		os.Remove(path)
		return cacheEntry{}, cacheKey{}, false
	}
	key := cacheKey{fingerprint: env.Fingerprint, artifact: env.Artifact, format: env.Format}
	entry := cacheEntry{body: env.Body, etag: etagFor(env.Body), contentType: env.ContentType}
	return entry, key, true
}

// loadAll streams every valid spilled entry into fn (warm start),
// counting restored and corrupt files. Leftover temp files from a crash
// mid-spill are swept.
func (d *diskStore) loadAll(fn func(key cacheKey, e cacheEntry)) (restored, corrupt int) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0
	}
	// Sort explicitly rather than relying on ReadDir's ordering, so
	// warm-start order (and therefore any LRU ordering it induces) is
	// deterministic by construction, not by library contract.
	names := make([]string, 0, len(entries))
	for _, de := range entries {
		if !de.IsDir() {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.HasPrefix(name, ".spill-") {
			os.Remove(filepath.Join(d.dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		entry, key, ok := d.read(filepath.Join(d.dir, name))
		if !ok {
			corrupt++
			d.warmstart.With("corrupt").Inc()
			continue
		}
		restored++
		d.warmstart.With("restored").Inc()
		fn(key, entry)
	}
	return restored, corrupt
}
