package serve

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// runner executes pipeline runs exactly once per distinct configuration
// fingerprint: a singleflight layer collapses concurrent identical
// requests onto one execution, and a small LRU keeps recently completed
// Artifacts so every table/figure of the same run renders without
// recomputing. Correctness under concurrency leans on the determinism
// contract — a fingerprint identifies one artifact set, so whichever
// request computes it, every waiter can share the result.
type runner struct {
	run        func(cfg core.Config) (*core.Artifacts, error)
	maxEntries int

	mu      sync.Mutex
	flights map[string]*flight
	ll      *list.List // front = most recently used; values are *runItem
	items   map[string]*list.Element

	runsTotal    *obs.Counter
	runSeconds   *obs.Histogram
	collapsed    *obs.Counter
	runCacheHits *obs.Counter
	evictions    *obs.Counter
	errorsTotal  *obs.Counter
}

// flight is one in-progress pipeline execution that late arrivals wait
// on instead of re-running.
type flight struct {
	done chan struct{}
	arts *core.Artifacts
	err  error
}

// runItem is one retained run.
type runItem struct {
	fingerprint string
	cfg         core.Config
	arts        *core.Artifacts
}

// newRunner builds the runner. runFn executes one pipeline run; the
// server injects core.RunObserved wired to the stage-timing histogram
// (tests inject counting stubs).
func newRunner(runFn func(core.Config) (*core.Artifacts, error), maxEntries int, reg *obs.Registry) *runner {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &runner{
		run:          runFn,
		maxEntries:   maxEntries,
		flights:      map[string]*flight{},
		ll:           list.New(),
		items:        map[string]*list.Element{},
		runsTotal:    reg.Counter("rcpt_pipeline_runs_total", "pipeline executions started"),
		runSeconds:   reg.Histogram("rcpt_pipeline_run_seconds", "end-to-end pipeline run latency", obs.DefBuckets()),
		collapsed:    reg.Counter("rcpt_pipeline_collapsed_total", "requests collapsed onto an in-flight identical run"),
		runCacheHits: reg.Counter("rcpt_run_cache_hits_total", "completed-run (Artifacts) cache hits"),
		evictions:    reg.Counter("rcpt_run_cache_evictions_total", "completed runs evicted from the Artifacts cache"),
		errorsTotal:  reg.Counter("rcpt_pipeline_errors_total", "pipeline executions that failed"),
	}
}

// artifacts returns the completed run for cfg, executing the pipeline
// at most once per fingerprint no matter how many callers arrive
// concurrently. Failed runs are not cached: the next request retries.
func (r *runner) artifacts(fingerprint string, cfg core.Config) (*core.Artifacts, error) {
	r.mu.Lock()
	if el, ok := r.items[fingerprint]; ok {
		r.ll.MoveToFront(el)
		arts := el.Value.(*runItem).arts
		r.runCacheHits.Inc()
		r.mu.Unlock()
		return arts, nil
	}
	if f, ok := r.flights[fingerprint]; ok {
		r.collapsed.Inc()
		r.mu.Unlock()
		<-f.done
		return f.arts, f.err
	}
	f := &flight{done: make(chan struct{})}
	r.flights[fingerprint] = f
	r.runsTotal.Inc()
	r.mu.Unlock()

	start := time.Now()
	f.arts, f.err = r.run(cfg)
	r.runSeconds.Observe(time.Since(start).Seconds())

	r.mu.Lock()
	delete(r.flights, fingerprint)
	if f.err == nil {
		el := r.ll.PushFront(&runItem{fingerprint: fingerprint, cfg: cfg, arts: f.arts})
		r.items[fingerprint] = el
		for r.ll.Len() > r.maxEntries {
			tail := r.ll.Back()
			item := tail.Value.(*runItem)
			r.ll.Remove(tail)
			delete(r.items, item.fingerprint)
			r.evictions.Inc()
		}
	} else {
		r.errorsTotal.Inc()
	}
	r.mu.Unlock()
	close(f.done)
	return f.arts, f.err
}

// lookup returns a retained run by fingerprint without executing
// anything — the `?run=` parameter path. It reports false when the run
// was never executed here or has been evicted.
func (r *runner) lookup(fingerprint string) (*core.Artifacts, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.items[fingerprint]
	if !ok {
		return nil, false
	}
	r.ll.MoveToFront(el)
	return el.Value.(*runItem).arts, true
}
