package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/obs"
)

// runner executes pipeline runs exactly once per distinct configuration
// fingerprint: a singleflight layer collapses concurrent identical
// requests onto one execution, and a small LRU keeps recently completed
// Artifacts so every table/figure of the same run renders without
// recomputing. Correctness under concurrency leans on the determinism
// contract — a fingerprint identifies one artifact set, so whichever
// request computes it, every waiter can share the result.
//
// Resilience contract: each flight runs in its own goroutine under its
// own context, so one waiter's deadline cannot kill a run other waiters
// still want — only when the *last* waiter departs is the flight
// cancelled. Run panics are recovered (the pipeline already converts
// stage panics into typed errors; this is the backstop for everything
// else) so a crashing run can never take the daemon down, and a
// per-fingerprint circuit breaker fast-fails configurations that keep
// failing instead of letting them monopolize run slots.
type runner struct {
	run        func(ctx context.Context, cfg core.Config) (*core.Artifacts, error)
	maxEntries int

	breakerThreshold int
	breakerCooldown  time.Duration
	now              func() time.Time // injectable clock (breaker tests)

	mu       sync.Mutex
	flights  map[string]*flight
	ll       *list.List // front = most recently used; values are *runItem
	items    map[string]*list.Element
	breakers map[string]*breaker.Breaker

	runsTotal    *obs.Counter
	runSeconds   *obs.Histogram
	collapsed    *obs.Counter
	runCacheHits *obs.Counter
	evictions    *obs.Counter
	errorsTotal  *obs.Counter

	cancellations      *obs.CounterVec // reason: deadline | disconnect
	breakerTransitions *obs.CounterVec // state: open | half_open | closed
	breakerOpenG       *obs.Gauge
}

// flight is one in-progress pipeline execution that late arrivals wait
// on instead of re-running. It owns its context: waiters are
// refcounted, and the last one to walk away cancels the run.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	arts    *core.Artifacts
	err     error
}

// runItem is one retained run.
type runItem struct {
	fingerprint string
	cfg         core.Config
	arts        *core.Artifacts
}

// newRunner builds the runner. runFn executes one pipeline run; the
// server injects core.RunWithOptions wired to the stage-timing
// histogram and resilience counters (tests inject counting stubs).
func newRunner(runFn func(ctx context.Context, cfg core.Config) (*core.Artifacts, error), maxEntries, breakerThreshold int, breakerCooldown time.Duration, reg *obs.Registry) *runner {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &runner{
		run:              runFn,
		maxEntries:       maxEntries,
		breakerThreshold: breakerThreshold,
		breakerCooldown:  breakerCooldown,
		now:              time.Now,
		flights:          map[string]*flight{},
		ll:               list.New(),
		items:            map[string]*list.Element{},
		breakers:         map[string]*breaker.Breaker{},
		runsTotal:        reg.Counter("rcpt_pipeline_runs_total", "pipeline executions started"),
		runSeconds:       reg.Histogram("rcpt_pipeline_run_seconds", "end-to-end pipeline run latency", obs.DefBuckets()),
		collapsed:        reg.Counter("rcpt_pipeline_collapsed_total", "requests collapsed onto an in-flight identical run"),
		runCacheHits:     reg.Counter("rcpt_run_cache_hits_total", "completed-run (Artifacts) cache hits"),
		evictions:        reg.Counter("rcpt_run_cache_evictions_total", "completed runs evicted from the Artifacts cache"),
		errorsTotal:      reg.Counter("rcpt_pipeline_errors_total", "pipeline executions that failed"),
		cancellations: reg.CounterVec("rcpt_run_cancellations_total",
			"run requests abandoned before completion, by reason", "reason"),
		breakerTransitions: reg.CounterVec("rcpt_breaker_transitions_total",
			"circuit-breaker state transitions", "state"),
		breakerOpenG: reg.Gauge("rcpt_breaker_open_circuits",
			"configuration fingerprints currently held open by the circuit breaker"),
	}
}

// artifacts returns the completed run for cfg, executing the pipeline
// at most once per fingerprint no matter how many callers arrive
// concurrently. Failed runs are not cached (the next request retries,
// subject to the circuit breaker); cancelled waits leave the flight
// running for the remaining waiters.
func (r *runner) artifacts(ctx context.Context, fingerprint string, cfg core.Config) (*core.Artifacts, error) {
	r.mu.Lock()
	if el, ok := r.items[fingerprint]; ok {
		r.ll.MoveToFront(el)
		arts := el.Value.(*runItem).arts
		r.runCacheHits.Inc()
		r.mu.Unlock()
		return arts, nil
	}
	if f, ok := r.flights[fingerprint]; ok {
		f.waiters++
		r.collapsed.Inc()
		r.mu.Unlock()
		return r.wait(ctx, fingerprint, cfg, f)
	}
	if err := r.breakerAllow(fingerprint); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	// New flight: its context is the flight's own, not the first
	// caller's — the run outlives any individual waiter until none are
	// left.
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	r.flights[fingerprint] = f
	r.runsTotal.Inc()
	r.mu.Unlock()

	go func() {
		defer func() {
			if p := recover(); p != nil {
				// The pipeline recovers its own stage panics; this is the
				// backstop for panics outside the graph (config handling,
				// test stubs) so the daemon never dies for a bad run.
				r.finish(fingerprint, f, nil, fmt.Errorf("serve: run panicked: %v", p))
			}
		}()
		start := time.Now()
		arts, err := r.run(fctx, cfg)
		r.runSeconds.Observe(time.Since(start).Seconds())
		r.finish(fingerprint, f, arts, err)
	}()
	return r.wait(ctx, fingerprint, cfg, f)
}

// wait blocks until the flight completes or the caller's context dies.
// A departing waiter decrements the refcount; the last one out cancels
// the flight so an abandoned run tears down promptly.
func (r *runner) wait(ctx context.Context, fingerprint string, cfg core.Config, f *flight) (*core.Artifacts, error) {
	select {
	case <-f.done:
		if f.err != nil && ctx.Err() == nil &&
			(errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
			// The flight died of a cancellation that was not ours: this
			// caller raced joining a flight whose last previous waiter had
			// already walked away and cancelled it. Its abandonment is not
			// our failure — start (or join) a fresh flight.
			return r.artifacts(ctx, fingerprint, cfg)
		}
		return f.arts, f.err
	case <-ctx.Done():
		r.mu.Lock()
		f.waiters--
		if f.waiters <= 0 {
			f.cancel()
		}
		r.mu.Unlock()
		reason := "disconnect"
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			reason = "deadline"
		}
		r.cancellations.With(reason).Inc()
		return nil, ctx.Err()
	}
}

// finish publishes a flight's outcome: LRU insert and breaker bookkeeping
// under the lock, then the done broadcast. Ordering matters — by the
// time any waiter wakes, the cache and breaker already reflect the run.
func (r *runner) finish(fingerprint string, f *flight, arts *core.Artifacts, err error) {
	r.mu.Lock()
	delete(r.flights, fingerprint)
	f.arts, f.err = arts, err
	if err == nil {
		el := r.ll.PushFront(&runItem{fingerprint: fingerprint, cfg: f.cfgOf(arts), arts: arts})
		r.items[fingerprint] = el
		for r.ll.Len() > r.maxEntries {
			tail := r.ll.Back()
			item := tail.Value.(*runItem)
			r.ll.Remove(tail)
			delete(r.items, item.fingerprint)
			r.evictions.Inc()
		}
		r.breakerSuccess(fingerprint)
	} else {
		r.errorsTotal.Inc()
		// A cancelled run says nothing about the configuration's health;
		// only real failures feed the breaker.
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			r.breakerFailure(fingerprint)
		}
	}
	r.mu.Unlock()
	f.cancel()
	close(f.done)
}

// cfgOf recovers the config for the runItem record. Artifacts carry
// their Config; a nil artifact set never reaches here (err==nil path).
func (f *flight) cfgOf(arts *core.Artifacts) core.Config {
	if arts != nil {
		return arts.Config
	}
	return core.Config{}
}

// knows reports whether this replica already holds fp's run — retained
// in the Artifacts cache or currently in flight — without starting
// anything. The peer-fill handler uses it to decide whether serving a
// fill would cost a fresh compute (authority's job) or just bytes it
// already has (anyone's job).
func (r *runner) knows(fingerprint string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.items[fingerprint]; ok {
		return true
	}
	_, ok := r.flights[fingerprint]
	return ok
}

// lookup returns a retained run by fingerprint without executing
// anything — the `?run=` parameter path. It reports false when the run
// was never executed here or has been evicted.
func (r *runner) lookup(fingerprint string) (*core.Artifacts, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.items[fingerprint]
	if !ok {
		return nil, false
	}
	r.ll.MoveToFront(el)
	return el.Value.(*runItem).arts, true
}
