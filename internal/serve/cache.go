package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/obs"
)

// cacheKey addresses one rendered artifact: which run produced it
// (Config.Fingerprint), which artifact, and in which format. Because
// rendering is deterministic, a key identifies exactly one byte
// sequence — the property that makes the cache safe under concurrency
// and lets ETags be derived from content hashes.
type cacheKey struct {
	fingerprint string // core.Config.Fingerprint of the producing run
	artifact    string // experiment ID ("T5", "F2") or pseudo-artifact ("run")
	format      string // "json", "txt", "csv", "md", "svg"
}

// cacheEntry is one cached rendered body with its content-derived ETag.
type cacheEntry struct {
	body        []byte
	etag        string // strong ETag, quoted: `"<sha256-hex>"`
	contentType string
}

// etagFor returns the strong ETag for a body: the quoted SHA-256 of its
// bytes. Deterministic rendering means re-rendering the same artifact
// always reproduces the same tag, even across processes and restarts.
func etagFor(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

// artifactCache is a byte-size-bounded LRU over rendered artifacts.
// Entries larger than the bound are served but not retained.
type artifactCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *cacheItem
	items    map[cacheKey]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bytesG    *obs.Gauge
	entriesG  *obs.Gauge
}

type cacheItem struct {
	key   cacheKey
	entry cacheEntry
}

func newArtifactCache(maxBytes int64, reg *obs.Registry) *artifactCache {
	return &artifactCache{
		maxBytes:  maxBytes,
		ll:        list.New(),
		items:     map[cacheKey]*list.Element{},
		hits:      reg.Counter("rcpt_cache_hits_total", "rendered-artifact cache hits"),
		misses:    reg.Counter("rcpt_cache_misses_total", "rendered-artifact cache misses"),
		evictions: reg.Counter("rcpt_cache_evictions_total", "rendered artifacts evicted by the byte bound"),
		bytesG:    reg.Gauge("rcpt_cache_bytes", "bytes of rendered artifacts held"),
		entriesG:  reg.Gauge("rcpt_cache_entries", "rendered artifacts held"),
	}
}

// get returns the cached entry and whether it was present, updating
// recency and the hit/miss counters.
func (c *artifactCache) get(key cacheKey) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return cacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheItem).entry, true
}

// put inserts (or refreshes) an entry and evicts from the LRU tail
// until the byte bound holds. Oversized bodies are not retained.
func (c *artifactCache) put(key cacheKey, e cacheEntry) {
	size := int64(len(e.body))
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Identical by construction (deterministic render of the same
		// key); just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheItem{key: key, entry: e})
	c.items[key] = el
	c.bytes += size
	for c.bytes > c.maxBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		item := tail.Value.(*cacheItem)
		c.ll.Remove(tail)
		delete(c.items, item.key)
		c.bytes -= int64(len(item.entry.body))
		c.evictions.Inc()
	}
	c.bytesG.Set(c.bytes)
	c.entriesG.Set(int64(c.ll.Len()))
}

// len returns the number of cached entries (tests only).
func (c *artifactCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
