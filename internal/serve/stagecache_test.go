package serve

import (
	"bytes"
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// metricValue extracts one un-labeled counter/gauge sample from the
// /metrics exposition (0 if the family is absent).
func metricValue(t *testing.T, h http.Handler, name string) float64 {
	t.Helper()
	body := get(t, h, "/metrics").Body.String()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, rest, err)
			}
			return v
		}
	}
	return 0
}

// TestStageCacheIncrementalRun is the serving-layer acceptance test for
// the Merkle stage cache: a second POST /v1/run differing only in the
// scheduling policy — a late-DAG parameter — reuses every stage the
// change does not reach (exactly one miss) and still produces bodies
// and ETags byte-identical to a server that caches nothing.
func TestStageCacheIncrementalRun(t *testing.T) {
	plain := newTestServer(t, Options{})
	cached := newTestServer(t, Options{StageCache: true})

	h := cached.Handler()
	runBoth := func(body string) {
		t.Helper()
		wp := post(t, plain.Handler(), "/v1/run", body)
		wc := post(t, h, "/v1/run", body)
		if wp.Code != 200 || wc.Code != 200 {
			t.Fatalf("run %s = %d / %d: %s %s", body, wp.Code, wc.Code, wp.Body, wc.Body)
		}
		if !bytes.Equal(wp.Body.Bytes(), wc.Body.Bytes()) {
			t.Fatalf("run %s: stage-cached body differs from uncached", body)
		}
		if ep, ec := wp.Header().Get("ETag"), wc.Header().Get("ETag"); ep == "" || ep != ec {
			t.Fatalf("run %s: ETags differ: %q vs %q", body, ep, ec)
		}
	}

	runBoth(`{"seed": 11}`)
	stagesCold := metricValue(t, h, "rcpt_stagecache_stores_total")
	if hits := metricValue(t, h, "rcpt_stagecache_hits_total"); hits != 0 || stagesCold == 0 {
		t.Fatalf("cold run: hits %v (want 0), stores %v (want > 0)", hits, stagesCold)
	}

	runBoth(`{"seed": 11, "policy": "fcfs"}`)
	hits := metricValue(t, h, "rcpt_stagecache_hits_total")
	misses := metricValue(t, h, "rcpt_stagecache_misses_total") - stagesCold
	if hits != stagesCold-1 || misses != 1 {
		t.Fatalf("policy change: hit %v of %v cached stages, recomputed %v, want %v hits and exactly 1 recompute",
			hits, stagesCold, misses, stagesCold-1)
	}
}

// TestStageCacheMetricsGated pins the metrics contract: the
// rcpt_stagecache_* families exist exactly when the feature is enabled,
// so a standalone daemon's exposition is unchanged.
func TestStageCacheMetricsGated(t *testing.T) {
	off := get(t, newTestServer(t, Options{}).Handler(), "/metrics").Body.String()
	if strings.Contains(off, "rcpt_stagecache_") {
		t.Fatal("stage-cache metric families registered while the feature is disabled")
	}
	on := get(t, newTestServer(t, Options{StageCache: true}).Handler(), "/metrics").Body.String()
	for _, name := range []string{
		"rcpt_stagecache_hits_total", "rcpt_stagecache_misses_total",
		"rcpt_stagecache_stores_total", "rcpt_stagecache_corrupt_total",
		"rcpt_stagecache_entries", "rcpt_stagecache_bytes",
	} {
		if !strings.Contains(on, name) {
			t.Fatalf("metric %s missing with the stage cache enabled", name)
		}
	}
}

// TestLocalTraceStageServedFromCache pins the peer-serving seam: after
// a pipeline run has populated the stage cache, localTraceStage — the
// compute behind both /v1/peer/stage and the dispatch fallback — must
// answer from the cache with the exact bytes the run stored, and a
// stage-cache-less server must compute the identical table.
func TestLocalTraceStageServedFromCache(t *testing.T) {
	s := newTestServer(t, Options{StageCache: true})
	h := s.Handler()
	if w := post(t, h, "/v1/run", `{"seed": 31}`); w.Code != 200 {
		t.Fatalf("run = %d: %s", w.Code, w.Body)
	}

	cfg := s.baseCfg
	cfg.Seed = 31
	hitsBefore := metricValue(t, h, "rcpt_stagecache_hits_total")
	tab, err := s.localTraceStage(cfg, cfg.TraceYears[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if hits := metricValue(t, h, "rcpt_stagecache_hits_total"); hits != hitsBefore+1 {
		t.Fatalf("stage steal did not hit the cache (hits %v -> %v)", hitsBefore, hits)
	}
	hash, err := tab.Hash()
	if err != nil {
		t.Fatal(err)
	}

	plain := newTestServer(t, Options{})
	want, err := plain.localTraceStage(cfg, cfg.TraceYears[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	wantHash, err := want.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hash != wantHash {
		t.Fatalf("cache-served stage hash %x != computed %x", hash, wantHash)
	}
}

// TestStageCacheDirWarmStart: a restarted daemon pointing at the same
// -stage-cache-dir verifies the persisted stage entries at boot and
// serves its first run almost entirely from them.
func TestStageCacheDirWarmStart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{StageCacheDir: dir})
	if w := post(t, s1.Handler(), "/v1/run", `{"seed": 23}`); w.Code != 200 {
		t.Fatalf("run = %d: %s", w.Code, w.Body)
	}
	etag1 := post(t, s1.Handler(), "/v1/run", `{"seed": 23}`).Header().Get("ETag")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Options{StageCacheDir: dir})
	h := s2.Handler()
	if restored := metricValue(t, h, `rcpt_stagecache_warmstart_total{outcome="restored"}`); restored == 0 {
		t.Fatal("restart restored no persisted stage entries")
	}
	if corrupt := metricValue(t, h, `rcpt_stagecache_warmstart_total{outcome="corrupt"}`); corrupt != 0 {
		t.Fatalf("restart found %v corrupt stage entries", corrupt)
	}
	w := post(t, h, "/v1/run", `{"seed": 23}`)
	if w.Code != 200 {
		t.Fatalf("post-restart run = %d: %s", w.Code, w.Body)
	}
	if etag2 := w.Header().Get("ETag"); etag2 != etag1 {
		t.Fatalf("post-restart ETag %q differs from pre-restart %q", etag2, etag1)
	}
	if hits := metricValue(t, h, "rcpt_stagecache_hits_total"); hits == 0 {
		t.Fatal("post-restart run hit no persisted stages")
	}
	if misses := metricValue(t, h, "rcpt_stagecache_misses_total"); misses != 0 {
		t.Fatalf("post-restart run missed %v stages, want 0", misses)
	}
}
