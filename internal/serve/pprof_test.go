package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestDefaultServerDoesNotServePprof pins the security posture: the
// public handler must never expose /debug/pprof, which is only
// available via the separate PprofMux on the operator's -pprof
// listener.
func TestDefaultServerDoesNotServePprof(t *testing.T) {
	s := newTestServer(t, Options{})
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/heap",
		"/debug/pprof/profile",
		"/debug/pprof/cmdline",
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusNotFound {
			t.Fatalf("public handler served %s with status %d", path, w.Code)
		}
	}
}

func TestPprofMuxServesProfiles(t *testing.T) {
	mux := PprofMux()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/heap", // routed through Index's profile lookup
		"/debug/pprof/symbol",
		"/debug/pprof/cmdline",
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("pprof mux returned %d for %s", w.Code, path)
		}
		if w.Body.Len() == 0 {
			t.Fatalf("pprof mux returned empty body for %s", path)
		}
	}
	// Anything outside /debug/pprof stays unrouted even on the private
	// mux — it serves profiles and nothing else.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("pprof mux served /healthz with %d", w.Code)
	}
}
