package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// The /v1/stats/* endpoints expose the study's statistical machinery
// for ad-hoc use: paste counts from any source, get the same tests the
// tables are built from. Inputs arrive as query parameters, outputs as
// JSON. Everything is pure computation — no admission beyond the render
// gate, nothing cached (the work is microseconds).

// queryFloat parses a required float parameter.
func queryFloat(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// queryFloatDefault parses an optional float parameter.
func queryFloatDefault(r *http.Request, name string, def float64) (float64, error) {
	if r.URL.Query().Get(name) == "" {
		return def, nil
	}
	return queryFloat(r, name)
}

// chiSquareResponse is the wire form of a contingency test.
type chiSquareResponse struct {
	Test    string  `json:"test"` // "pearson" or "g"
	Rows    int     `json:"rows"`
	Cols    int     `json:"cols"`
	Stat    float64 `json:"stat"`
	DF      int     `json:"df"`
	P       float64 `json:"p"`
	CramerV float64 `json:"cramerV"`
}

// handleChiSquare: GET /v1/stats/chisquare?rows=2&cols=2&counts=10,20,30,40[&test=g]
func (s *Server) handleChiSquare(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	rows, err1 := strconv.Atoi(q.Get("rows"))
	cols, err2 := strconv.Atoi(q.Get("cols"))
	if err1 != nil || err2 != nil {
		s.writeError(w, http.StatusBadRequest, "rows and cols must be integers")
		return
	}
	parts := strings.Split(q.Get("counts"), ",")
	counts := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "counts must be a comma-separated list of numbers")
			return
		}
		counts = append(counts, v)
	}
	tab, err := stats.FromCounts(rows, cols, counts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	test := q.Get("test")
	var res stats.ChiSquareResult
	switch test {
	case "", "pearson":
		test = "pearson"
		res, err = tab.ChiSquare()
	case "g":
		res, err = tab.GTest()
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown test %q (pearson, g)", test))
		return
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, chiSquareResponse{
		Test: test, Rows: rows, Cols: cols,
		Stat: res.Stat, DF: res.DF, P: res.P, CramerV: res.CramerV,
	})
}

// ciResponse is the wire form of a proportion confidence interval.
type ciResponse struct {
	Method    string  `json:"method"`
	Successes float64 `json:"successes"`
	N         float64 `json:"n"`
	Level     float64 `json:"level"`
	Share     float64 `json:"share"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
}

// handleCI: GET /v1/stats/ci?successes=42&n=100[&level=0.95]
func (s *Server) handleCI(w http.ResponseWriter, r *http.Request) {
	successes, err := queryFloat(r, "successes")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	n, err := queryFloat(r, "n")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	level, err := queryFloatDefault(r, "level", 0.95)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	iv, err := stats.WilsonInterval(successes, n, level)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, ciResponse{
		Method: "wilson", Successes: successes, N: n, Level: level,
		Share: successes / n, Lo: iv.Lo, Hi: iv.Hi,
	})
}

// oddsRatioResponse is the wire form of a 2×2 association summary.
type oddsRatioResponse struct {
	Table     [4]float64 `json:"table"` // [a b c d]
	OddsRatio float64    `json:"oddsRatio"`
	Lo        float64    `json:"lo"`
	Hi        float64    `json:"hi"`
	FisherP   *float64   `json:"fisherP,omitempty"` // integer counts only
	Phi       *float64   `json:"phi,omitempty"`
}

// handleOddsRatio: GET /v1/stats/oddsratio?a=10&b=20&c=30&d=40
func (s *Server) handleOddsRatio(w http.ResponseWriter, r *http.Request) {
	var cells [4]float64
	for i, name := range []string{"a", "b", "c", "d"} {
		v, err := queryFloat(r, name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		cells[i] = v
	}
	tab := stats.Table2x2{A: cells[0], B: cells[1], C: cells[2], D: cells[3]}
	or, lo, hi, err := tab.OddsRatio()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := oddsRatioResponse{Table: cells, OddsRatio: or, Lo: lo, Hi: hi}
	// Fisher and phi are best-effort extras: Fisher needs integer
	// counts, phi non-degenerate margins. Their absence is not an error.
	if p, err := tab.FisherExact(); err == nil {
		out.FisherP = &p
	}
	if phi, err := tab.Phi(); err == nil {
		out.Phi = &phi
	}
	s.writeJSON(w, http.StatusOK, out)
}
