//go:build chaos

package serve

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
)

// netWeather is deterministic background transport noise: enough to
// build each replica's injector (so partitions can be scripted on it)
// plus dup/delay weather that the peer protocol must shrug off. Drops
// are left out here — the scripted partitions below are the drops, on
// cue instead of by coin flip.
func netWeather() fault.Spec {
	return fault.Spec{
		Seed:         20260808,
		NetDupProb:   0.05,
		NetDelayProb: 0.10,
		NetDelay:     time.Millisecond,
	}
}

// chaosRing boots n replicas with net weather and a suspect timeout
// tuned for the test: short enough that a scripted partition kills
// membership promptly, long enough that probe jitter cannot.
func chaosRing(t *testing.T, n int, secret string, suspectAfter time.Duration) []*replica {
	t.Helper()
	return startReplicasWith(t, n, secret, func(i int, o *Options) {
		o.Chaos = netWeather()
		o.Cluster.SuspectTimeout = suspectAfter
	})
}

// waitFor polls cond until it holds or the deadline passes — membership
// convergence is eventually-consistent by design, so tests wait for the
// state, never for a duration.
func waitFor(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchOK renders path on r and returns (etag, body), failing on any
// non-200.
func fetchOK(t *testing.T, r *replica, path string) (string, string) {
	t.Helper()
	code, hdr, body := httpGet(t, r.url, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s on %s: status %d: %s", path, r.url, code, body)
	}
	return hdr.Get("ETag"), string(body)
}

func totalRuns(reps []*replica) uint64 {
	var total uint64
	for _, r := range reps {
		total += runsOn(r)
	}
	return total
}

func sameEpoch(reps []*replica, members int) bool {
	want := reps[0].srv.cluster.EpochHex()
	for _, r := range reps {
		if len(r.srv.cluster.Members()) != members || r.srv.cluster.EpochHex() != want {
			return false
		}
		if h, total := r.srv.cluster.Quorum(); h != total {
			return false
		}
	}
	return true
}

// TestChaosSplitBrainHealsByteIdentical is the partition suite's
// headline: sever one replica from the other two, let both sides
// declare each other dead and hand the ring over under new epochs,
// render the same artifact on both sides — each side computes once,
// independently, and the determinism contract makes the duplicate
// compute byte-identical. Heal the link: the reconnection probe
// re-establishes firsthand contact, both sides converge back to the
// original three-member epoch, and no further compute ever happens.
// The split cost one redundant run — latency and watts, never bytes.
func TestChaosSplitBrainHealsByteIdentical(t *testing.T) {
	reps := chaosRing(t, 3, "", 400*time.Millisecond)
	a, b, c := reps[0], reps[1], reps[2]
	epoch0 := a.srv.cluster.EpochHex()

	groups := [][]string{{a.url}, {b.url, c.url}}
	for _, r := range reps {
		r.srv.netChaos.SetPartition(groups...)
	}
	waitFor(t, "both sides to sweep the other dead", func() bool {
		return len(a.srv.cluster.Members()) == 1 &&
			len(b.srv.cluster.Members()) == 2 &&
			len(c.srv.cluster.Members()) == 2
	})
	if a.srv.cluster.EpochHex() == b.srv.cluster.EpochHex() {
		t.Fatal("split sides agree on a ring epoch — handover never happened")
	}

	// Render on both sides of the split. Each side has a full ring of
	// its own view and must serve — partition tolerance means degraded
	// membership, not refusal.
	etagA, bodyA := fetchOK(t, a, "/v1/tables/T1")
	etagB, bodyB := fetchOK(t, b, "/v1/tables/T1")
	if etagA == "" || etagA != etagB || bodyA != bodyB {
		t.Fatalf("split-brain renders diverged: etags %q vs %q", etagA, etagB)
	}
	if n := totalRuns(reps); n != 2 {
		t.Fatalf("runs across the split = %d, want exactly 2 (one per side)", n)
	}

	for _, r := range reps {
		r.srv.netChaos.Heal()
	}
	waitFor(t, "post-heal convergence to one three-member epoch", func() bool {
		return sameEpoch(reps, 3)
	})
	if got := a.srv.cluster.EpochHex(); got != epoch0 {
		t.Fatalf("healed epoch %s != original %s", got, epoch0)
	}

	// Post-heal renders everywhere: identical bytes, and the merged
	// ring's authority already holds the run, so the total never grows.
	for _, r := range reps {
		etag, body := fetchOK(t, r, "/v1/tables/T1")
		if etag != etagA || body != bodyA {
			t.Fatalf("post-heal render on %s diverged from split-era bytes", r.url)
		}
	}
	if n := totalRuns(reps); n != 2 {
		t.Fatalf("post-heal renders grew runs to %d, want still 2", n)
	}
}

// joinReplica boots one more replica that discovers the ring through
// the join protocol — it knows only the seed's URL, not the membership.
func joinReplica(t *testing.T, seed string, secret string) *replica {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	self := "http://" + l.Addr().String()
	s := newTestServer(t, Options{
		Chaos: netWeather(),
		Cluster: &cluster.Options{
			Self:           self,
			Join:           []string{seed},
			Secret:         secret,
			ProbeInterval:  50 * time.Millisecond,
			ProbeTimeout:   500 * time.Millisecond,
			SuspectTimeout: 400 * time.Millisecond,
			LeaseTTL:       2 * time.Second,
		},
	})
	r := &replica{srv: s, url: self, l: l}
	go func() { _ = r.srv.Serve(l) }()
	t.Cleanup(func() { r.kill() })
	return r
}

// TestChaosJoinServesWithoutRecompute: a replica joins a ring that has
// already computed a run. The ring hands some keyspace to the joiner
// under a new epoch; rendering on the joiner must fill from a peer
// that holds the bytes — the hinted fill covers the case where the
// joiner itself became the authority — and never trigger a second
// pipeline compute. The joiner then serves authenticated peer fills
// for the bytes it absorbed, as a full citizen of the ring.
func TestChaosJoinServesWithoutRecompute(t *testing.T) {
	reps := chaosRing(t, 3, "s3cret", 400*time.Millisecond)

	// Traffic before the join: exactly one compute, identical bytes.
	etag0, body0 := fetchOK(t, reps[0], "/v1/tables/T1")
	for _, r := range reps[1:] {
		etag, body := fetchOK(t, r, "/v1/tables/T1")
		if etag != etag0 || body != body0 {
			t.Fatalf("pre-join renders diverged on %s", r.url)
		}
	}
	if n := totalRuns(reps); n != 1 {
		t.Fatalf("pre-join runs = %d, want 1", n)
	}

	d := joinReplica(t, reps[0].url, "s3cret")
	all := append(append([]*replica{}, reps...), d)
	waitFor(t, "four-member convergence after join", func() bool {
		return sameEpoch(all, 4)
	})

	// The joiner serves the artifact with the ring's bytes. Whether the
	// handover made it the fingerprint's authority (hinted fill from
	// the pre-handover authority) or not (plain authority fill), the
	// run count must not move.
	etagD, bodyD := fetchOK(t, d, "/v1/tables/T1")
	if etagD != etag0 || bodyD != body0 {
		t.Fatalf("joiner render diverged: etag %q vs %q", etagD, etag0)
	}
	if n := totalRuns(all); n != 1 {
		t.Fatalf("join caused a recompute: runs = %d, want still 1", n)
	}

	// And the joiner answers authenticated peer fills for those bytes.
	req, err := http.NewRequest(http.MethodGet,
		d.url+"/v1/peer/artifact/"+d.srv.baseFP+"/T1?format=json&"+
			cluster.ConfigParam+"="+d.srv.baseCfgParam, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.SecretHeader, "s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer fill from joiner = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != etag0 {
		t.Fatalf("joiner peer fill etag %q != ring etag %q", got, etag0)
	}

	// A full citizen also serves stolen trace stages: the dispatcher on
	// any ring member may now pick the joiner as a steal target.
	sr, err := json.Marshal(cluster.StageRequest{
		Config: d.srv.baseCfg, Year: 2011, Rep: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	sreq, err := http.NewRequest(http.MethodPost,
		d.url+"/v1/peer/stage", bytes.NewReader(sr))
	if err != nil {
		t.Fatal(err)
	}
	sreq.Header.Set(cluster.SecretHeader, "s3cret")
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stage steal from joiner = %d, want 200", sresp.StatusCode)
	}
	if sresp.Header.Get(cluster.TableHashHeader) == "" {
		t.Fatal("stage response from joiner missing table hash")
	}
}

// TestChaosFlappingPeerNeverRecomputes: a replica that flaps — cut off
// and reconnected repeatedly, each outage shorter than the suspect
// timeout — must cost the ring nothing. Suspicion rises and is refuted
// by firsthand contact before it matures to death, so the epoch never
// moves, no keyspace is handed over, and fresh artifacts from the
// already-computed run render everywhere without a second compute.
func TestChaosFlappingPeerNeverRecomputes(t *testing.T) {
	reps := chaosRing(t, 3, "", 2*time.Second)
	epoch0 := reps[0].srv.cluster.EpochHex()

	fetchOK(t, reps[0], "/v1/tables/T1")
	if n := totalRuns(reps); n != 1 {
		t.Fatalf("initial runs = %d, want 1", n)
	}

	// Flap a replica that is not the run's authority, so the bytes'
	// home is never in doubt — the property under test is that the
	// membership layer ignores sub-timeout noise entirely.
	owner := reps[0].srv.cluster.Owner(reps[0].srv.baseFP)
	var flapper *replica
	var rest []string
	for _, r := range reps {
		if r.url != owner && flapper == nil {
			flapper = r
		} else {
			rest = append(rest, r.url)
		}
	}
	for cycle := 0; cycle < 4; cycle++ {
		for _, r := range reps {
			r.srv.netChaos.SetPartition([]string{flapper.url}, rest)
		}
		time.Sleep(300 * time.Millisecond) // well under the 2s suspect timeout
		for _, r := range reps {
			r.srv.netChaos.Heal()
		}
		time.Sleep(150 * time.Millisecond) // a few probe rounds to refute
	}
	waitFor(t, "suspicions to clear after flapping", func() bool {
		return sameEpoch(reps, 3)
	})
	for _, r := range reps {
		if got := r.srv.cluster.EpochHex(); got != epoch0 {
			t.Fatalf("flapping moved the epoch on %s: %s != %s", r.url, got, epoch0)
		}
	}

	// A fresh artifact from the same run, requested everywhere: the
	// authority re-renders from its cached run; nobody recomputes.
	_, figure0 := fetchOK(t, reps[0], "/v1/figures/F1")
	for _, r := range reps[1:] {
		if _, body := fetchOK(t, r, "/v1/figures/F1"); body != figure0 {
			t.Fatalf("post-flap figure diverged on %s", r.url)
		}
	}
	if n := totalRuns(reps); n != 1 {
		t.Fatalf("flapping peer caused recompute: runs = %d, want still 1", n)
	}

	// The membership surface is observable: gauges for members,
	// suspects, and epoch, and counters for gossip traffic.
	_, _, metrics := httpGet(t, reps[0].url, "/metrics")
	for _, name := range []string{
		"rcpt_cluster_members",
		"rcpt_cluster_suspects",
		"rcpt_cluster_epoch",
		"rcpt_cluster_gossip_sent_total",
		"rcpt_cluster_gossip_received_total",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("metric %s missing from /metrics", name)
		}
	}
}
