package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/survey"
)

// apiError is the JSON error envelope every non-2xx body uses. Stage is
// set when the failure is attributable to one pipeline stage (a typed
// parallel.StageError), and Peer when that stage failed on a remote
// replica (a cluster.RemoteStageError in the chain), so clients and
// dashboards see *where* a run died without parsing the message.
type apiError struct {
	Error string `json:"error"`
	Stage string `json:"stage,omitempty"`
	Peer  string `json:"peer,omitempty"`
}

// writeJSON encodes v with a fixed field order (struct-driven), sending
// status first. Encoder failures after the header are counted as write
// errors; they cannot be turned into a different status anymore.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.writeErrors.Inc()
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, apiError{Error: msg})
}

// writeRunError maps a pipeline-execution failure onto the HTTP
// surface: breaker-open and cancellations are capacity conditions
// (503), a run that outlived its budget is 504, and a genuine stage
// failure is a 500 carrying the stage name.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	var coe circuitOpenError
	switch {
	case errors.As(err, &coe):
		secs := int((coe.retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		s.writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		s.writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "pipeline run exceeded its time budget"})
	case errors.Is(err, context.Canceled):
		s.writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "pipeline run cancelled"})
	default:
		var se *parallel.StageError
		if errors.As(err, &se) {
			ae := apiError{Error: err.Error(), Stage: se.Stage}
			var rse *cluster.RemoteStageError
			if errors.As(err, &rse) {
				ae.Peer = rse.Peer
			}
			s.writeJSON(w, http.StatusInternalServerError, ae)
			return
		}
		s.writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

// failRender handles a render request whose pipeline run failed:
// degrade to the last good body for the same artifact+format if one
// exists (stale-while-error, marked via X-Rcpt-Stale so clients can
// tell), otherwise surface the typed error.
func (s *Server) failRender(w http.ResponseWriter, r *http.Request, artifact, format string, err error) {
	if se, ok := s.lookupStale(artifact, format); ok {
		s.staleServed.Inc()
		w.Header().Set("X-Rcpt-Stale", "error")
		w.Header().Set("X-Rcpt-Stale-Fingerprint", se.fingerprint)
		s.writeCached(w, r, se.entry)
		return
	}
	s.writeRunError(w, err)
}

// writeCached serves a rendered artifact with its content-derived ETag,
// honoring If-None-Match (strong comparison; `*` matches anything).
func (s *Server) writeCached(w http.ResponseWriter, r *http.Request, e cacheEntry) {
	w.Header().Set("ETag", e.etag)
	w.Header().Set("Cache-Control", "public, max-age=0, must-revalidate")
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, e.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", e.contentType)
	if _, err := w.Write(e.body); err != nil {
		s.writeErrors.Inc()
	}
}

// etagMatches implements the If-None-Match comparison for strong,
// quoted tags: a comma-separated candidate list or `*`.
func etagMatches(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag {
			return true
		}
	}
	return false
}

// ---- probes, metrics, index ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := io.WriteString(w, "ok\n"); err != nil {
		s.writeErrors.Inc()
	}
}

// readyzBody is the cluster-mode /readyz detail: whether this replica
// considers itself ready, plus the peer view a load balancer or
// operator needs to see *why*.
type readyzBody struct {
	Ready         bool                 `json:"ready"`
	Degraded      bool                 `json:"degraded"`
	Epoch         string               `json:"epoch"`
	QuorumHealthy int                  `json:"quorumHealthy"`
	QuorumTotal   int                  `json:"quorumTotal"`
	Peers         []cluster.PeerHealth `json:"peers"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.retryLater(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.cluster == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := io.WriteString(w, "ready\n"); err != nil {
			s.writeErrors.Inc()
		}
		return
	}
	// Cluster mode: a replica with dead peers can still serve everything
	// by itself (local compute is always a correct fallback), so peer
	// loss is degraded capacity, reported in the body — not unreadiness.
	// Strict mode inverts that for deployments where a load balancer
	// should drop minority-partition replicas: losing quorum turns the
	// same body into a 503.
	healthy, total := s.cluster.Quorum()
	body := readyzBody{
		Ready:         true,
		Degraded:      healthy < total,
		Epoch:         s.cluster.EpochHex(),
		QuorumHealthy: healthy,
		QuorumTotal:   total,
		Peers:         s.cluster.PeerHealth(),
	}
	if s.opts.ReadyzQuorumStrict && 2*healthy <= total {
		body.Ready = false
		s.writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.writeErrors.Inc()
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	const index = `rcpt-serve — Revisiting Computation for Research, as a service

GET  /v1/experiments        experiment registry (IDs, titles, kinds)
GET  /v1/tables/{id}        table as JSON (?format=txt|csv|md), e.g. /v1/tables/T5
GET  /v1/figures/{id}       figure as SVG, e.g. /v1/figures/F3
POST /v1/run                parameterized pipeline run keyed by (config, seed)
GET  /v1/tables/{id}?run=F  render against a completed run's fingerprint
POST /v1/responses          validate NDJSON survey responses against the instrument
GET  /v1/stats/chisquare    ?rows=&cols=&counts=a,b,... (&test=g)
GET  /v1/stats/ci           ?successes=&n=(&level=0.95)
GET  /v1/stats/oddsratio    ?a=&b=&c=&d=
GET  /metrics               Prometheus exposition
GET  /healthz, /readyz      liveness / readiness
`
	if _, err := io.WriteString(w, index); err != nil {
		s.writeErrors.Inc()
	}
}

// ---- experiments, tables, figures ----

// experimentInfo is one registry entry on the wire.
type experimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Kind  string `json:"kind"`
	Path  string `json:"path"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []experimentInfo
	for _, e := range core.Registry() {
		path := "/v1/tables/" + e.ID
		if e.Kind == core.KindFigure {
			path = "/v1/figures/" + e.ID
		}
		out = append(out, experimentInfo{ID: e.ID, Title: e.Title, Kind: string(e.Kind), Path: path})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// tableFormats maps ?format= values to renderers and content types.
var tableFormats = map[string]struct {
	contentType string
	render      func(t *report.Table, w io.Writer) error
}{
	"json": {"application/json", (*report.Table).WriteJSON},
	"txt":  {"text/plain; charset=utf-8", (*report.Table).WriteASCII},
	"csv":  {"text/csv; charset=utf-8", (*report.Table).WriteCSV},
	"md":   {"text/markdown; charset=utf-8", (*report.Table).WriteMarkdown},
}

// renderArtifact renders one experiment (table or figure) from a
// completed run into a cache entry — the one rendering path shared by
// client requests, cluster fills of never-seen runs, and lease-winner
// computes, so every replica producing a given (fingerprint, artifact,
// format) produces the same bytes and therefore the same ETag.
func renderArtifact(arts *core.Artifacts, id, format string) (cacheEntry, error) {
	exp, err := core.Lookup(id)
	if err != nil {
		return cacheEntry{}, err
	}
	var buf bytes.Buffer
	var contentType string
	switch exp.Kind {
	case core.KindFigure:
		if format != "svg" {
			return cacheEntry{}, fmt.Errorf("figure %s renders only as svg, not %q", id, format)
		}
		if err := exp.Figure(arts, &buf); err != nil {
			return cacheEntry{}, err
		}
		contentType = "image/svg+xml"
	default:
		ff, ok := tableFormats[format]
		if !ok {
			return cacheEntry{}, fmt.Errorf("unknown format %q (json, txt, csv, md)", format)
		}
		tab, err := exp.Table(arts)
		if err != nil {
			return cacheEntry{}, err
		}
		if err := ff.render(tab, &buf); err != nil {
			return cacheEntry{}, err
		}
		contentType = ff.contentType
	}
	return cacheEntry{body: buf.Bytes(), etag: etagFor(buf.Bytes()), contentType: contentType}, nil
}

// resolveRun picks the artifacts a render request refers to: the base
// run by default, or a previously executed run via ?run=<fingerprint>.
// The returned closure executes (or joins) the run under ctx — the
// request's deadline and disconnect propagate into the pipeline.
func (s *Server) resolveRun(w http.ResponseWriter, r *http.Request) (fp string, arts func(ctx context.Context) (*core.Artifacts, error), ok bool) {
	if ref := r.URL.Query().Get("run"); ref != "" {
		if a, found := s.runner.lookup(ref); found {
			return ref, func(context.Context) (*core.Artifacts, error) { return a, nil }, true
		}
		s.writeError(w, http.StatusNotFound,
			"unknown or evicted run fingerprint; POST /v1/run to (re)execute it")
		return "", nil, false
	}
	return s.baseFP, func(ctx context.Context) (*core.Artifacts, error) {
		return s.runner.artifacts(ctx, s.baseFP, s.baseCfg)
	}, true
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if _, ok := tableFormats[format]; !ok {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (json, txt, csv, md)", format))
		return
	}
	exp, err := core.Lookup(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if exp.Kind != core.KindTable {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("%s is a figure; GET /v1/figures/%s", id, id))
		return
	}
	fp, artsFn, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	key := cacheKey{fingerprint: fp, artifact: id, format: format}
	if e, hit := s.cacheGet(key); hit {
		s.writeCached(w, r, e)
		return
	}
	ctx, cancel := s.runContext(r)
	defer cancel()
	if s.cluster != nil && fp == s.baseFP {
		e, err := s.clusterRender(ctx, key)
		if err != nil {
			s.failRender(w, r, id, format, err)
			return
		}
		s.writeCached(w, r, e)
		return
	}
	arts, err := artsFn(ctx)
	if err != nil {
		s.failRender(w, r, id, format, err)
		return
	}
	e, err := renderArtifact(arts, id, format)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.cachePut(key, e)
	s.writeCached(w, r, e)
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	exp, err := core.Lookup(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if exp.Kind != core.KindFigure {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("%s is a table; GET /v1/tables/%s", id, id))
		return
	}
	fp, artsFn, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	key := cacheKey{fingerprint: fp, artifact: id, format: "svg"}
	if e, hit := s.cacheGet(key); hit {
		s.writeCached(w, r, e)
		return
	}
	ctx, cancel := s.runContext(r)
	defer cancel()
	if s.cluster != nil && fp == s.baseFP {
		e, err := s.clusterRender(ctx, key)
		if err != nil {
			s.failRender(w, r, id, "svg", err)
			return
		}
		s.writeCached(w, r, e)
		return
	}
	arts, err := artsFn(ctx)
	if err != nil {
		s.failRender(w, r, id, "svg", err)
		return
	}
	e, err := renderArtifact(arts, id, "svg")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.cachePut(key, e)
	s.writeCached(w, r, e)
}

// ---- POST /v1/run ----

// runRequest is the body of POST /v1/run. Pointer fields distinguish
// "omitted, use the server default" from explicit zero values.
type runRequest struct {
	Seed       *uint64  `json:"seed"`
	N2011      *int     `json:"n2011"`
	N2024      *int     `json:"n2024"`
	TraceYears []int    `json:"traceYears"`
	SimYear    *int     `json:"simYear"`
	Policy     *string  `json:"policy"` // "fcfs" | "easy" | "conservative"
	Rake       *bool    `json:"rake"`
	PanelN     *int     `json:"panelN"`
	NoiseRate  *float64 `json:"noiseRate"`
}

// runSummary is the response body: the resolved config, its
// fingerprint (the cache/ETag key), cohort outcomes, and headline
// scheduler metrics, plus the artifact paths to render against the run.
type runSummary struct {
	Fingerprint string       `json:"fingerprint"`
	Config      configEcho   `json:"config"`
	Cohorts     cohortsEcho  `json:"cohorts"`
	Jobs        int          `json:"jobs"`
	Scheduler   schedSummary `json:"scheduler"`
	TablesPath  string       `json:"tablesPath"`
	FiguresPath string       `json:"figuresPath"`
}

type configEcho struct {
	Seed       uint64  `json:"seed"`
	N2011      int     `json:"n2011"`
	N2024      int     `json:"n2024"`
	TraceYears []int   `json:"traceYears"`
	SimYear    int     `json:"simYear"`
	Policy     string  `json:"policy"`
	Rake       bool    `json:"rake"`
	PanelN     int     `json:"panelN"`
	NoiseRate  float64 `json:"noiseRate"`
}

type cohortsEcho struct {
	Kept2011       int     `json:"kept2011"`
	Kept2024       int     `json:"kept2024"`
	EffectiveN2011 float64 `json:"effectiveN2011"`
	EffectiveN2024 float64 `json:"effectiveN2024"`
}

type schedSummary struct {
	Policy     string  `json:"policy"`
	MeanWait   float64 `json:"meanWaitSeconds"`
	P95Wait    float64 `json:"p95WaitSeconds"`
	AvgCPUUtil float64 `json:"avgCpuUtil"`
	Fairness   float64 `json:"userFairness"`
}

// parsePolicy maps the wire names onto sched policies.
func parsePolicy(name string) (sched.Policy, error) {
	switch strings.ToLower(name) {
	case "fcfs":
		return sched.FCFS, nil
	case "easy":
		return sched.EASYBackfill, nil
	case "conservative":
		return sched.ConservativeBackfill, nil
	}
	return 0, fmt.Errorf("unknown policy %q (fcfs, easy, conservative)", name)
}

func policyName(p sched.Policy) string {
	switch p {
	case sched.FCFS:
		return "fcfs"
	case sched.ConservativeBackfill:
		return "conservative"
	default:
		return "easy"
	}
}

// buildRunConfig resolves a runRequest against the base config and
// enforces the work-admission caps.
func (s *Server) buildRunConfig(req runRequest) (core.Config, error) {
	cfg := s.baseCfg
	cfg.TraceYears = append([]int(nil), s.baseCfg.TraceYears...)
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	if req.N2011 != nil {
		cfg.N2011 = *req.N2011
	}
	if req.N2024 != nil {
		cfg.N2024 = *req.N2024
	}
	if req.TraceYears != nil {
		cfg.TraceYears = append([]int(nil), req.TraceYears...)
		// A single-year request implies simulating that year unless the
		// caller pins one explicitly.
		if req.SimYear == nil && len(req.TraceYears) == 1 {
			cfg.SimYear = req.TraceYears[0]
		}
	}
	if req.SimYear != nil {
		cfg.SimYear = *req.SimYear
	}
	if req.Policy != nil {
		p, err := parsePolicy(*req.Policy)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Policy = p
	}
	if req.Rake != nil {
		cfg.Rake = *req.Rake
	}
	if req.PanelN != nil {
		cfg.PanelN = *req.PanelN
	}
	if req.NoiseRate != nil {
		cfg.NoiseRate = *req.NoiseRate
	}
	if cfg.N2011 > s.opts.MaxCohort || cfg.N2024 > s.opts.MaxCohort {
		return core.Config{}, fmt.Errorf("cohort size exceeds the server cap of %d", s.opts.MaxCohort)
	}
	if cfg.PanelN > s.opts.MaxCohort {
		return core.Config{}, fmt.Errorf("panel size exceeds the server cap of %d", s.opts.MaxCohort)
	}
	if len(cfg.TraceYears) > s.opts.MaxTraceYears {
		return core.Config{}, fmt.Errorf("trace years exceed the server cap of %d", s.opts.MaxTraceYears)
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && err != io.EOF {
		s.writeError(w, http.StatusBadRequest, "bad run request: "+err.Error())
		return
	}
	cfg, err := s.buildRunConfig(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	fp := cfg.Fingerprint()
	key := cacheKey{fingerprint: fp, artifact: "run", format: "json"}
	if e, hit := s.cacheGet(key); hit {
		s.writeCached(w, r, e)
		return
	}
	ctx, cancel := s.runContext(r)
	defer cancel()
	arts, err := s.runner.artifacts(ctx, fp, cfg)
	if err != nil {
		// No stale degradation here: POST /v1/run callers need the truth
		// about their configuration, typed and attributed.
		s.writeRunError(w, err)
		return
	}
	sum := runSummary{
		Fingerprint: fp,
		Config: configEcho{
			Seed: cfg.Seed, N2011: cfg.N2011, N2024: cfg.N2024,
			TraceYears: cfg.TraceYears, SimYear: cfg.SimYear,
			Policy: policyName(cfg.Policy), Rake: cfg.Rake,
			PanelN: cfg.PanelN, NoiseRate: cfg.NoiseRate,
		},
		Cohorts: cohortsEcho{
			Kept2011: len(arts.Cohort2011), Kept2024: len(arts.Cohort2024),
			EffectiveN2011: arts.Rake2011.EffectiveN, EffectiveN2024: arts.Rake2024.EffectiveN,
		},
		Jobs: arts.JobCount(),
		Scheduler: schedSummary{
			Policy:     arts.Sim.Metrics.Policy.String(),
			MeanWait:   arts.Sim.Metrics.MeanWait,
			P95Wait:    arts.Sim.Metrics.P95Wait,
			AvgCPUUtil: arts.Sim.Metrics.AvgCPUUtil,
			Fairness:   arts.Sim.Metrics.UserFairness,
		},
		TablesPath:  "/v1/tables/{id}?run=" + fp,
		FiguresPath: "/v1/figures/{id}?run=" + fp,
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(sum); err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	e := cacheEntry{body: buf.Bytes(), etag: etagFor(buf.Bytes()), contentType: "application/json"}
	s.cachePut(key, e)
	s.writeCached(w, r, e)
}

// ---- POST /v1/responses ----

// validationVerdict is one response's outcome.
type validationVerdict struct {
	ID     string           `json:"id"`
	Valid  bool             `json:"valid"`
	Errors []validationItem `json:"errors,omitempty"`
}

type validationItem struct {
	Question string `json:"question"`
	Reason   string `json:"reason"`
}

// validationReport summarizes a POST /v1/responses batch.
type validationReport struct {
	Received int                 `json:"received"`
	Valid    int                 `json:"valid"`
	Invalid  int                 `json:"invalid"`
	Results  []validationVerdict `json:"results"`
}

func (s *Server) handleResponses(w http.ResponseWriter, r *http.Request) {
	ins := survey.Canonical()
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	responses, err := ins.DecodeJSON(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rep := validationReport{Received: len(responses), Results: []validationVerdict{}}
	for _, resp := range responses {
		v := validationVerdict{ID: resp.ID, Valid: true}
		for _, e := range ins.Validate(resp) {
			v.Valid = false
			v.Errors = append(v.Errors, validationItem{Question: e.QuestionID, Reason: e.Reason})
		}
		if v.Valid {
			rep.Valid++
			s.validated.With("valid").Inc()
		} else {
			rep.Invalid++
			s.validated.With("invalid").Inc()
		}
		rep.Results = append(rep.Results, v)
	}
	status := http.StatusOK
	if rep.Invalid > 0 {
		// The batch was processed, but not everything passed; 422 lets
		// scripted clients branch without parsing the body.
		status = http.StatusUnprocessableEntity
	}
	s.writeJSON(w, status, rep)
}
