//go:build chaos

package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestChaosServerServesIdenticalBytes runs the daemon with deterministic
// fault injection (panics, errors, latency) plus stage retries, and
// asserts the chaos-ridden server renders byte-identical artifacts to a
// clean one — the serving layer preserves the determinism contract even
// while the pipeline underneath it is failing and being retried.
func TestChaosServerServesIdenticalBytes(t *testing.T) {
	clean := newTestServer(t, Options{})
	chaotic := newTestServer(t, Options{
		StageRetries: 7,
		Chaos: fault.Spec{
			Seed:      4242,
			PanicProb: 0.10,
			ErrorProb: 0.10,
			// Keep latency small: every injected delay is real wall-clock.
			LatencyProb: 0.15,
			Latency:     time.Millisecond,
		},
	})

	for _, path := range []string{
		"/v1/tables/T5?format=json",
		"/v1/tables/T2?format=csv",
		"/v1/figures/F3",
	} {
		want := get(t, clean.Handler(), path)
		got := get(t, chaotic.Handler(), path)
		if want.Code != 200 || got.Code != 200 {
			t.Fatalf("%s: clean=%d chaotic=%d: %s", path, want.Code, got.Code, got.Body)
		}
		if got.Header().Get("ETag") != want.Header().Get("ETag") {
			t.Errorf("%s: ETag diverged under injected faults: %q vs %q",
				path, got.Header().Get("ETag"), want.Header().Get("ETag"))
		}
		if got.Body.String() != want.Body.String() {
			t.Errorf("%s: body diverged under injected faults", path)
		}
		if got.Header().Get("X-Rcpt-Stale") != "" {
			t.Errorf("%s: chaotic server degraded to stale instead of retrying through", path)
		}
	}

	// The faults really fired: retries and recovered panics are visible
	// on the metrics surface, and the daemon is still healthy.
	metrics := get(t, chaotic.Handler(), "/metrics").Body.String()
	if !strings.Contains(metrics, "rcpt_stage_retries_total") {
		t.Error("no stage retries recorded — injection did not engage")
	}
	if w := get(t, chaotic.Handler(), "/healthz"); w.Code != 200 {
		t.Errorf("daemon unhealthy after chaos run: %d", w.Code)
	}
}
