package serve

import (
	"net/http"
	"net/http/pprof"
)

// PprofMux returns a mux serving the standard net/http/pprof endpoints
// under /debug/pprof/. It is deliberately separate from the Server's
// public mux: profiling exposes heap contents and symbol names, so
// rcpt-serve only binds it on the operator-chosen -pprof address (off
// by default) and never on the public listener. The handlers are
// registered explicitly rather than via the pprof package's
// DefaultServeMux side effects, so importing this package cannot leak
// the endpoints onto any other mux.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
