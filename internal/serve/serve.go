// Package serve exposes the study apparatus as a long-running HTTP
// service: tables and figures rendered on demand from cached pipeline
// runs, parameterized runs keyed by (config, seed), survey-response
// validation, and on-demand statistics — with a content-addressed
// artifact cache, per-class admission control, and built-in Prometheus
// observability underneath.
//
// The layer leans on the repo's determinism contract: a
// core.Config.Fingerprint identifies exactly one artifact set, so cache
// keys are safe under concurrency, concurrent identical runs collapse
// onto one execution, and ETags are content hashes that hold across
// processes and restarts.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stagecache"
	"repro/internal/trace"
)

// Options configures a Server. The zero value is usable: every field
// has a production default.
type Options struct {
	// BaseConfig is the study configuration behind the GET table/figure
	// endpoints (and the default for POST /v1/run fields the caller
	// omits). Zero means core.DefaultConfig.
	BaseConfig core.Config
	// CacheBytes bounds the rendered-artifact cache (default 64 MiB).
	CacheBytes int64
	// RunCacheEntries bounds how many completed runs (Artifacts) are
	// retained for re-rendering (default 4 — Artifacts are large).
	RunCacheEntries int
	// MaxCohort caps the per-cohort size a POST /v1/run may request
	// (default 20000), and MaxTraceYears the trace-year count (default
	// 16): admission control for work, not just connections.
	MaxCohort     int
	MaxTraceYears int
	// Render/Run admission: concurrent-request limits and bounded queue
	// depths per class. Defaults: 32/64 for renders, 2/8 for runs.
	RenderLimit, RenderQueue int
	RunLimit, RunQueue       int
	// QueueTimeout bounds how long an admitted-to-queue request waits
	// for a slot (default 10s).
	QueueTimeout time.Duration
	// RetryAfter is the hint returned with 429/503 (default 1s).
	RetryAfter time.Duration
	// RunTimeout caps the wall-clock of one pipeline execution triggered
	// by a request (0 = no cap beyond the client's own disconnect). The
	// flight is shared: the timeout applies to the run, and a request
	// joining a nearly-expired run still gets whatever its own deadline
	// allows.
	RunTimeout time.Duration
	// CacheDir enables crash-safe cache persistence: completed rendered
	// artifacts are atomically spilled here and checksum-validated back
	// into the cache on boot. Empty disables persistence.
	CacheDir string
	// StageCache enables the Merkle stage cache (internal/stagecache):
	// pipeline stage outputs are stored content-addressed, so a run that
	// differs from a previous one in a late-DAG parameter recomputes
	// only the stages the change actually reaches and restores the rest
	// byte-identically. StageCacheDir adds crash-safe disk persistence
	// for stage entries (setting it implies StageCache); empty keeps the
	// cache memory-only.
	StageCache    bool
	StageCacheDir string
	// StageCacheEntries / StageCacheBytes bound the stage cache's
	// in-memory tier (defaults: 256 entries, 256 MiB).
	StageCacheEntries int
	StageCacheBytes   int64
	// BreakerThreshold is how many consecutive failed runs of one
	// fingerprint trip its circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker fast-fails before
	// admitting a trial run (default 30s).
	BreakerCooldown time.Duration
	// StageRetries is how many times a failed retryable pipeline stage
	// is re-attempted (default 0 = fail fast). Retries re-derive their
	// rng streams, so artifacts stay byte-identical.
	StageRetries int
	// Chaos injects deterministic faults into pipeline stages (dev/test
	// only; see internal/fault). The zero Spec disables injection.
	Chaos fault.Spec
	// RunFunc overrides pipeline execution (tests). nil means
	// core.RunWithOptions feeding the stage-timing histogram and
	// resilience counters.
	RunFunc func(ctx context.Context, cfg core.Config) (*core.Artifacts, error)

	// Cluster enables multi-replica serving (see internal/cluster): peer
	// cache fills, cluster-wide singleflight via compute leases, and
	// work-stealing stage dispatch. Nil serves standalone — zero cluster
	// code on any request path and no cluster metric families.
	Cluster *cluster.Options
	// ReadyzQuorumStrict makes /readyz return 503 when a majority of the
	// cluster (counting self) is unreachable. Default false: readyz
	// degrades to 200 with a JSON detail body — each replica can still
	// serve everything by itself, so losing peers is degraded capacity,
	// not unreadiness. Set it when a load balancer should drop
	// minority-partition replicas instead.
	ReadyzQuorumStrict bool
	// PeerStageLimit caps concurrent stolen-stage executions on behalf
	// of peers (default 4). At the limit, /v1/peer/stage answers 503
	// immediately — the thief computes locally rather than queueing.
	PeerStageLimit int
}

func (o Options) withDefaults() Options {
	if o.BaseConfig.N2011 == 0 && o.BaseConfig.N2024 == 0 && len(o.BaseConfig.TraceYears) == 0 {
		o.BaseConfig = core.DefaultConfig()
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 64 << 20
	}
	if o.RunCacheEntries <= 0 {
		o.RunCacheEntries = 4
	}
	if o.MaxCohort <= 0 {
		o.MaxCohort = 20000
	}
	if o.MaxTraceYears <= 0 {
		o.MaxTraceYears = 16
	}
	if o.RenderLimit <= 0 {
		o.RenderLimit = 32
	}
	if o.RenderQueue <= 0 {
		o.RenderQueue = 64
	}
	if o.RunLimit <= 0 {
		o.RunLimit = 2
	}
	if o.RunQueue <= 0 {
		o.RunQueue = 8
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 10 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.PeerStageLimit <= 0 {
		o.PeerStageLimit = 4
	}
	return o
}

// Server is the rcpt serving layer. Create with New, expose with
// Handler or Serve, stop with Shutdown (graceful drain).
type Server struct {
	opts    Options
	baseCfg core.Config
	baseFP  string

	mux    *http.ServeMux
	reg    *obs.Registry
	cache  *artifactCache
	runner *runner
	disk   *diskStore // nil when CacheDir is unset
	// stageCache is the Merkle stage store when Options.StageCache (or
	// StageCacheDir) enabled it; nil otherwise — runs then execute every
	// stage.
	stageCache *stagecache.Cache

	// cluster is non-nil when Options.Cluster enabled multi-replica
	// serving; peerStageGate bounds concurrent stolen-stage work, and
	// baseCfgParam is the base config pre-encoded for peer artifact
	// requests (computed once — it never changes).
	cluster       *cluster.Cluster
	peerStageGate chan struct{}
	baseCfgParam  string
	// netChaos is the transport fault injector when Chaos has net faults
	// and cluster mode is on (nil otherwise). The chaos suite scripts
	// partitions through it.
	netChaos *fault.NetInjector

	// stale holds the last good rendered body per (artifact, format),
	// regardless of fingerprint, for stale-while-error degradation: when
	// a run fails, render endpoints can serve the previous good body
	// (marked via X-Rcpt-Stale) instead of a bare 5xx.
	staleMu sync.Mutex
	stale   map[[2]string]staleEntry

	renderGate *gate
	runGate    *gate
	draining   atomic.Bool

	httpSrv *http.Server

	// request metrics
	requests    *obs.CounterVec
	latency     *obs.HistogramVec
	inFlight    *obs.Gauge
	writeErrors *obs.Counter
	rejected    *obs.CounterVec
	validated   *obs.CounterVec

	// resilience metrics
	stageRetries *obs.CounterVec
	stagePanics  *obs.CounterVec
	staleServed  *obs.Counter
}

// staleEntry is one last-good rendered body plus the run it came from.
type staleEntry struct {
	entry       cacheEntry
	fingerprint string
}

// New builds a Server. It validates the base configuration but does not
// run the pipeline; the first request (or a caller invoking Warm) pays
// that cost.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.BaseConfig.Validate(); err != nil {
		return nil, fmt.Errorf("serve: base config: %w", err)
	}
	if err := opts.Chaos.Validate(); err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		opts:    opts,
		baseCfg: opts.BaseConfig,
		baseFP:  opts.BaseConfig.Fingerprint(),
		mux:     http.NewServeMux(),
		reg:     reg,
		cache:   newArtifactCache(opts.CacheBytes, reg),
		stale:   map[[2]string]staleEntry{},
		requests: reg.CounterVec("rcpt_http_requests_total",
			"HTTP requests by route and status code", "route", "code"),
		latency: reg.HistogramVec("rcpt_http_request_seconds",
			"HTTP request latency by route", obs.DefBuckets(), "route"),
		inFlight:    reg.Gauge("rcpt_http_in_flight", "requests currently being served"),
		writeErrors: reg.Counter("rcpt_http_write_errors_total", "response writes that failed mid-flight"),
		rejected: reg.CounterVec("rcpt_admission_rejected_total",
			"requests rejected by admission control", "class", "reason"),
		validated: reg.CounterVec("rcpt_responses_validated_total",
			"survey responses validated by verdict", "verdict"),
		stageRetries: reg.CounterVec("rcpt_stage_retries_total",
			"pipeline stage attempts retried after a failure", "stage"),
		stagePanics: reg.CounterVec("rcpt_stage_panics_recovered_total",
			"pipeline stage panics recovered into typed errors", "stage"),
		staleServed: reg.Counter("rcpt_stale_served_total",
			"responses served from the last good body after a run failure"),
	}
	queueDepth := reg.GaugeVec("rcpt_admission_queue_depth", "requests waiting for an admission slot", "class")
	s.renderGate = newGate("render", opts.RenderLimit, opts.RenderQueue, opts.QueueTimeout,
		queueDepth.With("render"), func(reason string) { s.rejected.With("render", reason).Inc() })
	s.runGate = newGate("run", opts.RunLimit, opts.RunQueue, opts.QueueTimeout,
		queueDepth.With("run"), func(reason string) { s.rejected.With("run", reason).Inc() })

	// The stage cache registers its metric families only when enabled, so
	// a standalone daemon's /metrics exposition is unchanged.
	if opts.StageCache || opts.StageCacheDir != "" {
		sm := &stagecache.Metrics{
			Hits: reg.Counter("rcpt_stagecache_hits_total",
				"pipeline stages restored from the stage cache"),
			Misses: reg.Counter("rcpt_stagecache_misses_total",
				"stage-cache lookups that fell through to compute"),
			Stores: reg.Counter("rcpt_stagecache_stores_total",
				"freshly computed stage outputs stored in the stage cache"),
			Evictions: reg.Counter("rcpt_stagecache_evictions_total",
				"stage entries evicted from the in-memory tier"),
			DiskHits: reg.Counter("rcpt_stagecache_disk_hits_total",
				"stage-cache hits served by disk read-through"),
			Corrupt: reg.Counter("rcpt_stagecache_corrupt_total",
				"persisted stage entries rejected by checksum verification"),
			DiskErrors: reg.Counter("rcpt_stagecache_disk_errors_total",
				"stage-cache disk writes that failed (entry stays memory-only)"),
			Entries: reg.Gauge("rcpt_stagecache_entries", "stage entries resident in memory"),
			Bytes:   reg.Gauge("rcpt_stagecache_bytes", "payload bytes resident in memory"),
		}
		scache, err := stagecache.New(stagecache.Options{
			MaxEntries: opts.StageCacheEntries,
			MaxBytes:   opts.StageCacheBytes,
			Dir:        opts.StageCacheDir,
			Metrics:    sm,
		})
		if err != nil {
			return nil, err
		}
		s.stageCache = scache
		if opts.StageCacheDir != "" {
			// Warm start: verify every persisted stage entry so a restarted
			// daemon's first run reuses its pre-crash stage work.
			stageWarm := reg.CounterVec("rcpt_stagecache_warmstart_total",
				"persisted stage entries examined at boot, by outcome", "outcome")
			restored, corrupt := scache.Warm()
			stageWarm.With("restored").Add(uint64(restored))
			stageWarm.With("corrupt").Add(uint64(corrupt))
		}
	}

	if opts.Cluster != nil {
		clOpts := *opts.Cluster
		// Peer-served steals and dispatch fallbacks go through the same
		// cache-aware local compute the stage graph uses.
		clOpts.LocalStage = s.localTraceStage
		if opts.Chaos.NetEnabled() {
			// Transport chaos rides the peer client via WrapTransport, so
			// injected weather hits exactly the traffic the cluster sends —
			// fills, leases, steals, gossip — and nothing else.
			inj, err := fault.NewNet(opts.Chaos, cluster.NormalizePeer(clOpts.Self))
			if err != nil {
				return nil, err
			}
			s.netChaos = inj
			clOpts.WrapTransport = inj.RoundTripper
		}
		cl, err := cluster.New(clOpts, reg)
		if err != nil {
			return nil, err
		}
		s.cluster = cl
		s.peerStageGate = make(chan struct{}, opts.PeerStageLimit)
		s.baseCfgParam, err = cluster.EncodeConfigParam(opts.BaseConfig)
		if err != nil {
			return nil, err
		}
	}

	runFn := opts.RunFunc
	stageSeconds := reg.HistogramVec("rcpt_pipeline_stage_seconds",
		"pipeline stage wall-clock timings", obs.DefBuckets(), "stage")
	if runFn == nil {
		runOpts := core.RunOptions{
			Observer: func(stage string, seconds float64) {
				stageSeconds.With(stage).Observe(seconds)
			},
			Events: func(ev parallel.Event) {
				switch ev.Kind {
				case parallel.EventRetry:
					s.stageRetries.With(ev.Stage).Inc()
				case parallel.EventPanic:
					s.stagePanics.With(ev.Stage).Inc()
				}
			},
		}
		if opts.StageRetries > 0 {
			runOpts.Retry = parallel.RetryPolicy{
				MaxAttempts: opts.StageRetries + 1,
				BaseDelay:   50 * time.Millisecond,
				MaxDelay:    2 * time.Second,
			}
		}
		if opts.Chaos.Enabled() {
			injector, err := fault.New(opts.Chaos)
			if err != nil {
				return nil, err
			}
			runOpts.Middleware = injector.Middleware()
		}
		if s.cluster != nil {
			// Every pipeline run this replica executes dispatches its
			// trace stages through the cluster's work-stealing seam.
			runOpts.TraceStage = s.cluster.TraceStage
		}
		if s.stageCache != nil {
			runOpts.StageCache = s.stageCache
		}
		runFn = func(ctx context.Context, cfg core.Config) (*core.Artifacts, error) {
			return core.RunWithOptions(ctx, cfg, runOpts)
		}
	}
	s.runner = newRunner(runFn, opts.RunCacheEntries, opts.BreakerThreshold, opts.BreakerCooldown, reg)

	warmstart := reg.CounterVec("rcpt_cache_warmstart_total",
		"spilled cache entries examined at boot, by outcome", "outcome")
	spill := reg.CounterVec("rcpt_cache_spill_total",
		"rendered artifacts spilled to disk, by outcome", "outcome")
	diskHits := reg.Counter("rcpt_cache_disk_hits_total",
		"rendered-artifact reads served from the disk spill")
	if opts.CacheDir != "" {
		disk, err := newDiskStore(opts.CacheDir, spill, warmstart, diskHits)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		// Warm start: every checksum-valid spilled body goes straight
		// into the in-memory cache (and the stale store), so a restarted
		// daemon serves its pre-crash artifacts — same bytes, same ETags
		// — without re-running anything.
		disk.loadAll(func(key cacheKey, e cacheEntry) {
			s.cache.put(key, e)
			s.recordStale(key, e)
		})
	}
	s.routes()
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if s.cluster != nil {
		// Probing may begin before peers are listening; the first failed
		// round just marks them down until they come up.
		s.cluster.Start()
	}
	return s, nil
}

// routes wires every endpoint through the instrumentation and admission
// middleware. Route labels are the patterns themselves, so metric
// cardinality is fixed no matter what IDs clients request.
func (s *Server) routes() {
	handle := func(pattern string, g *gate, h http.HandlerFunc) {
		s.mux.Handle(pattern, s.instrument(pattern, g, h))
	}
	// Probes and metrics bypass admission: they must answer even when
	// the service is saturated.
	handle("GET /healthz", nil, s.handleHealthz)
	handle("GET /readyz", nil, s.handleReadyz)
	handle("GET /metrics", nil, s.handleMetrics)
	handle("GET /{$}", nil, s.handleIndex)

	handle("GET /v1/experiments", s.renderGate, s.handleExperiments)
	handle("GET /v1/tables/{id}", s.renderGate, s.handleTable)
	handle("GET /v1/figures/{id}", s.renderGate, s.handleFigure)
	handle("POST /v1/responses", s.renderGate, s.handleResponses)
	handle("GET /v1/stats/chisquare", s.renderGate, s.handleChiSquare)
	handle("GET /v1/stats/ci", s.renderGate, s.handleCI)
	handle("GET /v1/stats/oddsratio", s.renderGate, s.handleOddsRatio)

	handle("POST /v1/run", s.runGate, s.handleRun)

	// Peer protocol (cluster mode only): secret-authenticated, and
	// deliberately outside the client admission gates — replica
	// coordination must not be starved by client load. Each endpoint
	// carries its own bound (see cluster.go).
	if s.cluster != nil {
		handle("GET /v1/peer/artifact/{fp}/{artifact}", nil, s.peerAuth(s.handlePeerArtifact))
		handle("POST /v1/peer/lease", nil, s.peerAuth(s.handlePeerLease))
		handle("POST /v1/peer/stage", nil, s.peerAuth(s.handlePeerStage))
		handle("POST /v1/peer/probe", nil, s.peerAuth(s.handlePeerProbe))
		handle("POST /v1/peer/probe-indirect", nil, s.peerAuth(s.handlePeerProbeIndirect))
		handle("POST /v1/peer/join", nil, s.peerAuth(s.handlePeerJoin))
		handle("GET /v1/peer/status", nil, s.peerAuth(s.handlePeerStatus))
	}
}

// Handler returns the root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry (for tests and for callers
// registering their own gauges).
func (s *Server) Registry() *obs.Registry { return s.reg }

// BaseFingerprint returns the fingerprint of the base configuration.
func (s *Server) BaseFingerprint() string { return s.baseFP }

// Warm runs the base configuration's pipeline so the first request does
// not pay it. Optional; safe to call concurrently with serving.
func (s *Server) Warm() error {
	_, err := s.runner.artifacts(context.Background(), s.baseFP, s.baseCfg)
	return err
}

// localTraceStage computes one (year, rep) trace stage in-process,
// consulting the stage cache first when it is enabled. It backs the
// cluster's LocalStage seam, so both a steal served to a peer and a
// dispatch fallback reuse cached stage bytes instead of regenerating —
// identical bytes either way, per the cache's failure contract.
func (s *Server) localTraceStage(cfg core.Config, year, rep int) (trace.JobTable, error) {
	if s.stageCache == nil {
		return core.TraceReplicaTable(cfg, year, rep)
	}
	key := core.TraceStageKey(cfg, year, rep)
	if payload, ok := s.stageCache.Load(key); ok {
		if tab, err := core.DecodeTraceStagePayload(payload); err == nil {
			return tab, nil
		}
		// Valid checksum, undecodable structure: codec skew. Drop the
		// entry and recompute.
		s.stageCache.Delete(key)
	}
	tab, err := core.TraceReplicaTable(cfg, year, rep)
	if err != nil {
		return nil, err
	}
	if payload, err := core.EncodeTraceStagePayload(tab); err == nil {
		s.stageCache.Store(key, payload)
	}
	return tab, nil
}

// cacheGet reads a rendered artifact: memory first, then the disk spill
// (read-through — an entry evicted from memory but still on disk is
// promoted back).
func (s *Server) cacheGet(key cacheKey) (cacheEntry, bool) {
	if e, ok := s.cache.get(key); ok {
		return e, true
	}
	if s.disk != nil {
		if e, ok := s.disk.load(key); ok {
			s.cache.put(key, e)
			s.recordStale(key, e)
			return e, true
		}
	}
	return cacheEntry{}, false
}

// cachePut stores a freshly rendered artifact everywhere it belongs:
// the in-memory LRU, the stale-while-error store, and (when persistence
// is on) the crash-safe disk spill.
func (s *Server) cachePut(key cacheKey, e cacheEntry) {
	s.cache.put(key, e)
	s.recordStale(key, e)
	if s.disk != nil {
		s.disk.save(key, e)
	}
}

// recordStale remembers e as the last good body for its (artifact,
// format), whatever run produced it.
func (s *Server) recordStale(key cacheKey, e cacheEntry) {
	s.staleMu.Lock()
	s.stale[[2]string{key.artifact, key.format}] = staleEntry{entry: e, fingerprint: key.fingerprint}
	s.staleMu.Unlock()
}

// lookupStale returns the last good body for (artifact, format), if any.
func (s *Server) lookupStale(artifact, format string) (staleEntry, bool) {
	s.staleMu.Lock()
	defer s.staleMu.Unlock()
	se, ok := s.stale[[2]string{artifact, format}]
	return se, ok
}

// runContext derives the context a pipeline execution runs under: the
// request's own (client disconnect) plus the configured per-run
// timeout. The returned cancel must be called when the wait ends.
func (s *Server) runContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RunTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RunTimeout)
	}
	return context.WithCancel(r.Context())
}

// Serve accepts connections on l until Shutdown. It returns nil after a
// clean Shutdown (http.ErrServerClosed is not an error for callers).
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains gracefully: readiness flips to 503 (so load
// balancers stop sending), new connections stop being accepted, and
// in-flight requests run to completion or ctx expiry. The error from
// the underlying http.Server.Shutdown — e.g. listeners that failed to
// close — is propagated, never dropped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var clusterErr error
	if s.cluster != nil {
		clusterErr = s.cluster.Close(ctx)
	}
	return errors.Join(clusterErr, s.httpSrv.Shutdown(ctx))
}

// statusWriter captures the response code and write failures.
type statusWriter struct {
	http.ResponseWriter
	code     int
	failed   bool
	anyWrite bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.anyWrite {
		w.code = code
		w.anyWrite = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.anyWrite {
		w.code = http.StatusOK
		w.anyWrite = true
	}
	n, err := w.ResponseWriter.Write(b)
	if err != nil {
		w.failed = true
	}
	return n, err
}

// instrument wraps a handler with metrics and (when g != nil) admission
// control and drain refusal.
func (s *Server) instrument(route string, g *gate, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.inFlight.Inc()
		defer func() {
			s.inFlight.Dec()
			s.latency.With(route).Observe(time.Since(start).Seconds())
			s.requests.With(route, strconv.Itoa(sw.code)).Inc()
			if sw.failed {
				s.writeErrors.Inc()
			}
		}()
		if g != nil {
			if s.draining.Load() {
				s.rejected.With(g.class, "draining").Inc()
				s.retryLater(sw, http.StatusServiceUnavailable, "server is draining")
				return
			}
			release, err := g.acquire(r.Context())
			if err != nil {
				switch {
				case errors.Is(err, errQueueFull):
					s.retryLater(sw, http.StatusTooManyRequests, "admission queue full")
				case errors.Is(err, errQueueTimeout):
					s.retryLater(sw, http.StatusServiceUnavailable, "timed out waiting for capacity")
				default: // client went away
					s.retryLater(sw, http.StatusServiceUnavailable, "request canceled while queued")
				}
				return
			}
			defer release()
		}
		h(sw, r)
	})
}

// retryLater writes an error with a Retry-After hint.
func (s *Server) retryLater(w http.ResponseWriter, status int, msg string) {
	secs := int(s.opts.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeError(w, status, msg)
}
