package serve

import (
	"fmt"
	"time"
)

// breakerState is the classic three-state circuit-breaker lifecycle.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker tracks one fingerprint's failure streak. A configuration
// whose pipeline keeps failing (e.g. a pathological parameter set that
// panics a stage every time) trips its breaker after threshold
// consecutive failures; while open, requests for that fingerprint
// fast-fail with 503 + Retry-After instead of burning a run slot. After
// the cooldown one trial run is let through (half-open): success closes
// the circuit, failure re-opens it for another cooldown.
//
// Breakers are per-fingerprint so one bad configuration cannot poison
// service for every other config. All state is guarded by the runner's
// mutex; cancellations never count as failures (a client hanging up
// says nothing about the config's health).
type breaker struct {
	state     breakerState
	fails     int       // consecutive failures while closed
	openUntil time.Time // when an open circuit allows its trial run
}

// circuitOpenError is returned (not thrown) for fingerprints whose
// breaker is open; the handlers map it to 503 with a Retry-After hint.
type circuitOpenError struct {
	retryAfter time.Duration
}

func (e circuitOpenError) Error() string {
	return fmt.Sprintf("serve: circuit open for this configuration after repeated failures; retry in %s", e.retryAfter.Round(time.Millisecond))
}

// breakerAllow decides whether a new flight for fp may start. Caller
// holds r.mu.
func (r *runner) breakerAllow(fp string) error {
	b, ok := r.breakers[fp]
	if !ok || b.state == breakerClosed || b.state == breakerHalfOpen {
		return nil
	}
	now := r.now()
	if now.Before(b.openUntil) {
		return circuitOpenError{retryAfter: b.openUntil.Sub(now)}
	}
	// Cooldown over: admit one trial run.
	b.state = breakerHalfOpen
	r.breakerTransitions.With("half_open").Inc()
	return nil
}

// breakerSuccess records a successful run for fp. Caller holds r.mu.
func (r *runner) breakerSuccess(fp string) {
	b, ok := r.breakers[fp]
	if !ok {
		return
	}
	if b.state != breakerClosed {
		r.breakerTransitions.With("closed").Inc()
		r.breakerOpenG.Dec()
	}
	delete(r.breakers, fp)
}

// breakerFailure records a failed run for fp. Caller holds r.mu.
func (r *runner) breakerFailure(fp string) {
	b, ok := r.breakers[fp]
	if !ok {
		b = &breaker{}
		r.breakers[fp] = b
	}
	switch b.state {
	case breakerHalfOpen:
		// The trial failed: straight back to open for another cooldown.
		b.state = breakerOpen
		b.openUntil = r.now().Add(r.breakerCooldown)
		r.breakerTransitions.With("open").Inc()
	case breakerClosed:
		b.fails++
		if b.fails >= r.breakerThreshold {
			b.state = breakerOpen
			b.openUntil = r.now().Add(r.breakerCooldown)
			b.fails = 0
			r.breakerTransitions.With("open").Inc()
			r.breakerOpenG.Inc()
		}
	}
}
