package serve

import (
	"fmt"
	"time"

	"repro/internal/breaker"
)

// The per-fingerprint circuit breaker: a configuration whose pipeline
// keeps failing (e.g. a pathological parameter set that panics a stage
// every time) trips its breaker after threshold consecutive failures;
// while open, requests for that fingerprint fast-fail with 503 +
// Retry-After instead of burning a run slot. After the cooldown one
// trial run is let through (half-open): success closes the circuit,
// failure re-opens it for another cooldown.
//
// The state machine itself lives in internal/breaker (shared with the
// cluster layer's per-peer breakers); this file is the runner glue —
// breakers are per-fingerprint so one bad configuration cannot poison
// service for every other config, all state is guarded by the runner's
// mutex, and cancellations never count as failures (a client hanging up
// says nothing about the config's health).

// circuitOpenError is returned (not thrown) for fingerprints whose
// breaker is open; the handlers map it to 503 with a Retry-After hint.
type circuitOpenError struct {
	retryAfter time.Duration
}

func (e circuitOpenError) Error() string {
	return fmt.Sprintf("serve: circuit open for this configuration after repeated failures; retry in %s", e.retryAfter.Round(time.Millisecond))
}

// breakerAllow decides whether a new flight for fp may start. Caller
// holds r.mu.
func (r *runner) breakerAllow(fp string) error {
	b, ok := r.breakers[fp]
	if !ok {
		return nil
	}
	wait, halfOpened, allowed := b.Allow(r.now())
	if halfOpened {
		r.breakerTransitions.With("half_open").Inc()
	}
	if !allowed {
		return circuitOpenError{retryAfter: wait}
	}
	return nil
}

// breakerSuccess records a successful run for fp. Caller holds r.mu.
func (r *runner) breakerSuccess(fp string) {
	b, ok := r.breakers[fp]
	if !ok {
		return
	}
	if wasOpen := b.State() != breaker.Closed; wasOpen {
		r.breakerTransitions.With("closed").Inc()
		r.breakerOpenG.Dec()
	}
	delete(r.breakers, fp)
}

// breakerFailure records a failed run for fp. Caller holds r.mu.
func (r *runner) breakerFailure(fp string) {
	b, ok := r.breakers[fp]
	if !ok {
		b = breaker.New(r.breakerThreshold, r.breakerCooldown)
		r.breakers[fp] = b
	}
	wasHalfOpen := b.State() == breaker.HalfOpen
	if b.Failure(r.now()) {
		r.breakerTransitions.With("open").Inc()
		if !wasHalfOpen {
			// A failed half-open trial keeps the circuit in the open
			// gauge; only a fresh closed→open trip adds to it.
			r.breakerOpenG.Inc()
		}
	}
}
