package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// Admission errors, mapped to HTTP statuses by the middleware: a full
// queue is the client's signal to back off (429), a queue-wait timeout
// or a draining server is a capacity condition (503). Both carry
// Retry-After.
var (
	errQueueFull    = errors.New("serve: admission queue full")
	errQueueTimeout = errors.New("serve: timed out waiting for a slot")
)

// gate is one admission class: at most limit requests in service, at
// most queue requests waiting, and no wait longer than timeout. The
// zero value is not usable; construct with newGate.
//
// Admission is per class, not per connection: cheap cached renders and
// expensive pipeline runs get separate gates so a burst of runs cannot
// starve table reads.
type gate struct {
	class   string
	slots   chan struct{}
	timeout time.Duration

	mu       sync.Mutex
	queued   int
	queueMax int

	depth    *obs.Gauge
	rejected func(reason string) // increments the rejection counter
}

func newGate(class string, limit, queue int, timeout time.Duration, depth *obs.Gauge, rejected func(reason string)) *gate {
	if limit <= 0 {
		limit = 1
	}
	if queue < 0 {
		queue = 0
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	return &gate{
		class:    class,
		slots:    make(chan struct{}, limit),
		timeout:  timeout,
		queueMax: queue,
		depth:    depth,
		rejected: rejected,
	}
}

// acquire admits the caller or fails fast. On success the returned
// release function must be called exactly once.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	// Fast path: free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		return g.release, nil
	default:
	}
	// Queue, bounded. The bound is checked under the lock so the queue
	// can never overshoot; the wait itself happens outside it.
	g.mu.Lock()
	if g.queued >= g.queueMax {
		g.mu.Unlock()
		g.rejected("queue_full")
		return nil, errQueueFull
	}
	g.queued++
	g.mu.Unlock()
	g.depth.Inc()
	defer func() {
		g.depth.Dec()
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
	}()

	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.release, nil
	case <-timer.C:
		g.rejected("timeout")
		return nil, errQueueTimeout
	case <-ctx.Done():
		g.rejected("canceled")
		return nil, ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }

// waiting reports the current queue depth (tests and introspection).
func (g *gate) waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}
