package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// replica is one in-process rcpt-serve instance on a real listener.
type replica struct {
	srv *Server
	url string
	l   net.Listener
}

// startReplicas boots n replicas sharing one membership set on
// loopback listeners. Ports are reserved by net.Listen before any
// Server is built, so every replica's Options can name the full ring.
func startReplicas(t *testing.T, n int, secret string) []*replica {
	return startReplicasWith(t, n, secret, nil)
}

// startReplicasWith is startReplicas with a per-replica Options hook
// (chaos specs, suspect timeouts) applied before each Server is built.
func startReplicasWith(t *testing.T, n int, secret string, mutate func(i int, o *Options)) []*replica {
	t.Helper()
	listeners := make([]net.Listener, n)
	members := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		members[i] = "http://" + l.Addr().String()
	}
	reps := make([]*replica, n)
	for i := range reps {
		opts := Options{
			Cluster: &cluster.Options{
				Self:          members[i],
				Peers:         members,
				Secret:        secret,
				ProbeInterval: 50 * time.Millisecond,
				ProbeTimeout:  500 * time.Millisecond,
				LeaseTTL:      2 * time.Second,
			},
		}
		if mutate != nil {
			mutate(i, &opts)
		}
		s := newTestServer(t, opts)
		reps[i] = &replica{srv: s, url: members[i], l: listeners[i]}
		go func(r *replica) { _ = r.srv.Serve(r.l) }(reps[i])
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.srv.httpSrv.Close()
			_ = r.srv.cluster.Close(context.Background())
		}
	})
	// Wait for every replica to see the full ring healthy, so the first
	// request's routing decisions are deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for _, r := range reps {
		for {
			if h, total := r.srv.cluster.Quorum(); h == total {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("replicas never converged on a healthy ring")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return reps
}

// httpGet fetches path from a replica over real HTTP.
func httpGet(t *testing.T, base, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", base, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s%s: %v", base, path, err)
	}
	return resp.StatusCode, resp.Header, body
}

// kill simulates a replica dying without any drain: connections are
// torn down mid-flight and its prober stops.
func (r *replica) kill() {
	r.srv.httpSrv.Close()
	_ = r.srv.cluster.Close(context.Background())
}

// runsOn returns how many pipeline executions a replica performed.
func runsOn(r *replica) uint64 { return r.srv.runner.runsTotal.Value() }

// TestClusterThreeReplicasOneCompute is the protocol's headline
// property on a live 3-replica ring: a render hitting every replica
// produces byte-identical responses (same ETag everywhere), and
// exactly one replica — the fingerprint's ring owner — executed the
// pipeline. The other two were peer cache fills.
func TestClusterThreeReplicasOneCompute(t *testing.T) {
	reps := startReplicas(t, 3, "s3cret")
	type res struct {
		code int
		etag string
		body string
	}
	results := make([]res, len(reps))
	var wg sync.WaitGroup
	for i, r := range reps {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			code, hdr, body := httpGet(t, r.url, "/v1/tables/T1")
			results[i] = res{code: code, etag: hdr.Get("ETag"), body: string(body)}
		}(i, r)
	}
	wg.Wait()
	for i, got := range results {
		if got.code != http.StatusOK {
			t.Fatalf("replica %d: status %d: %s", i, got.code, got.body)
		}
		if got.etag == "" || got.etag != results[0].etag {
			t.Fatalf("replica %d: etag %q != replica 0 etag %q", i, got.etag, results[0].etag)
		}
		if got.body != results[0].body {
			t.Fatalf("replica %d: body differs from replica 0", i)
		}
	}
	var total uint64
	var ownerRuns uint64
	owner := reps[0].srv.cluster.Owner(reps[0].srv.baseFP)
	for _, r := range reps {
		n := runsOn(r)
		total += n
		if r.url == owner {
			ownerRuns = n
		}
	}
	if total != 1 {
		t.Fatalf("pipeline ran %d times across the ring, want exactly 1", total)
	}
	if ownerRuns != 1 {
		t.Fatalf("the one run did not land on the ring owner %s", owner)
	}
}

// TestClusterOwnerDeathByteIdentical kills the fingerprint's owner
// before any request, then hits both survivors: the owner fill fails,
// the survivors race for the compute lease, exactly one executes, and
// both responses are byte-identical — faults cost latency, never
// bytes.
func TestClusterOwnerDeathByteIdentical(t *testing.T) {
	reps := startReplicas(t, 3, "")
	owner := reps[0].srv.cluster.Owner(reps[0].srv.baseFP)
	var dead *replica
	var survivors []*replica
	for _, r := range reps {
		if r.url == owner {
			dead = r
		} else {
			survivors = append(survivors, r)
		}
	}
	dead.kill()
	// Wait until both survivors' probers have marked the owner down, so
	// the lease walk skips it instead of timing out against it.
	deadline := time.Now().Add(5 * time.Second)
	for _, r := range survivors {
		for r.srv.cluster.Authority(r.srv.baseFP) == owner {
			if time.Now().After(deadline) {
				t.Fatal("survivors never demoted the dead owner")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	type res struct {
		code int
		etag string
		body string
	}
	results := make([]res, len(survivors))
	var wg sync.WaitGroup
	for i, r := range survivors {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			code, hdr, body := httpGet(t, r.url, "/v1/tables/T1?format=csv")
			results[i] = res{code: code, etag: hdr.Get("ETag"), body: string(body)}
		}(i, r)
	}
	wg.Wait()
	for i, got := range results {
		if got.code != http.StatusOK {
			t.Fatalf("survivor %d: status %d: %s", i, got.code, got.body)
		}
	}
	if results[0].etag != results[1].etag || results[0].body != results[1].body {
		t.Fatalf("survivors disagree: etags %q vs %q", results[0].etag, results[1].etag)
	}
	if total := runsOn(survivors[0]) + runsOn(survivors[1]); total != 1 {
		t.Fatalf("survivors ran the pipeline %d times, want exactly 1", total)
	}
	// Later, sequential requests for fresh artifacts must not recompute
	// anywhere either: the takeover authority holds the run, and the
	// other survivor fills from it instead of re-racing for the lease.
	bodies := make([]string, len(survivors))
	for i, r := range survivors {
		code, _, body := httpGet(t, r.url, "/v1/figures/F1")
		if code != http.StatusOK {
			t.Fatalf("survivor %d figure: status %d: %s", i, code, body)
		}
		bodies[i] = string(body)
	}
	if bodies[0] != bodies[1] {
		t.Fatal("sequential survivor renders diverged")
	}
	if total := runsOn(survivors[0]) + runsOn(survivors[1]); total != 1 {
		t.Fatalf("sequential renders grew total runs to %d, want still 1", total)
	}
}

// TestPeerAuth: with a secret configured, peer endpoints reject
// requests without it and accept requests carrying it.
func TestPeerAuth(t *testing.T) {
	reps := startReplicas(t, 2, "hunter2")
	code, _, _ := httpGet(t, reps[0].url, "/v1/peer/status")
	if code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated peer status = %d, want 401", code)
	}
	req, err := http.NewRequest(http.MethodGet, reps[0].url+"/v1/peer/status", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.SecretHeader, "hunter2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated peer status = %d, want 200", resp.StatusCode)
	}
	var st peerStatusBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.Self != reps[0].url || st.QuorumTotal != 2 {
		t.Fatalf("status = %+v", st)
	}
}

// TestReadyzClusterModes: peer loss degrades /readyz to a detailed 200
// by default (each replica can serve alone), and to a 503 in strict
// quorum mode (drop minority-partition replicas at the balancer).
func TestReadyzClusterModes(t *testing.T) {
	for _, strict := range []bool{false, true} {
		t.Run(fmt.Sprintf("strict=%v", strict), func(t *testing.T) {
			// Self plus one dead peer: quorum 1/2 once probed.
			s := newTestServer(t, Options{
				ReadyzQuorumStrict: strict,
				Cluster: &cluster.Options{
					Self:          "http://127.0.0.1:9",
					Peers:         []string{"http://127.0.0.1:9", "http://127.0.0.1:10"},
					ProbeInterval: 20 * time.Millisecond,
					ProbeTimeout:  200 * time.Millisecond,
				},
			})
			defer func() { _ = s.cluster.Close(context.Background()) }()
			deadline := time.Now().Add(5 * time.Second)
			for {
				if h, _ := s.cluster.Quorum(); h == 1 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("dead peer never probed down")
				}
				time.Sleep(10 * time.Millisecond)
			}
			w := get(t, s.Handler(), "/readyz")
			want := http.StatusOK
			if strict {
				want = http.StatusServiceUnavailable
			}
			if w.Code != want {
				t.Fatalf("readyz = %d, want %d: %s", w.Code, want, w.Body)
			}
			var body readyzBody
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("readyz body: %v", err)
			}
			if !body.Degraded || body.QuorumHealthy != 1 || body.QuorumTotal != 2 {
				t.Fatalf("readyz detail = %+v", body)
			}
			if body.Ready == strict {
				t.Fatalf("ready = %v with strict=%v", body.Ready, strict)
			}
		})
	}
}
