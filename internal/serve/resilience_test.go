package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
)

// blockingRun returns a RunFunc stub that signals entry on started and
// then blocks until its context dies or release closes.
func blockingRun(started chan<- struct{}, release <-chan struct{}) func(context.Context, core.Config) (*core.Artifacts, error) {
	return func(ctx context.Context, cfg core.Config) (*core.Artifacts, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return fakeArtifacts(), nil
		}
	}
}

// ---- cancellation ----

// TestRunDeadlineReturns504: a run exceeding the server's RunTimeout is
// cancelled (the pipeline sees its context die) and reported 504, with
// the cancellation counted by reason.
func TestRunDeadlineReturns504(t *testing.T) {
	started := make(chan struct{}, 1)
	s := newTestServer(t, Options{
		RunTimeout: 20 * time.Millisecond,
		RunFunc:    blockingRun(started, nil),
	})
	w := post(t, s.Handler(), "/v1/run", `{"seed": 1}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out run = %d, want 504: %s", w.Code, w.Body)
	}
	if got := s.runner.cancellations.With("deadline").Value(); got != 1 {
		t.Errorf("deadline cancellations = %d, want 1", got)
	}
}

// TestClientDisconnectCancelsRun: when the only client goes away, the
// flight's context is cancelled — the pipeline tears down promptly
// instead of running to completion for nobody.
func TestClientDisconnectCancelsRun(t *testing.T) {
	started := make(chan struct{}, 1)
	runCtxDone := make(chan struct{})
	s := newTestServer(t, Options{
		RunFunc: func(ctx context.Context, cfg core.Config) (*core.Artifacts, error) {
			started <- struct{}{}
			<-ctx.Done()
			close(runCtxDone)
			return nil, ctx.Err()
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(`{"seed": 1}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	reqDone := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(w, req)
		close(reqDone)
	}()
	<-started
	cancel() // client hangs up
	select {
	case <-runCtxDone:
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline context was not cancelled after client disconnect")
	}
	<-reqDone
	if got := s.runner.cancellations.With("disconnect").Value(); got != 1 {
		t.Errorf("disconnect cancellations = %d, want 1", got)
	}
}

// TestFlightSurvivesDepartingWaiter: two requests share one flight; the
// first one's deadline expires, the second still gets the result — a
// waiter's cancellation must not kill a shared run.
func TestFlightSurvivesDepartingWaiter(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, Options{RunFunc: blockingRun(started, release)})

	shortCtx, cancelShort := context.WithCancel(context.Background())
	firstDone := make(chan error, 1)
	go func() {
		_, err := s.runner.artifacts(shortCtx, "fp-x", tinyConfig())
		firstDone <- err
	}()
	<-started

	secondDone := make(chan error, 1)
	go func() {
		_, err := s.runner.artifacts(context.Background(), "fp-x", tinyConfig())
		secondDone <- err
	}()
	// Wait for the second caller to join the flight.
	for s.runner.collapsed.Value() == 0 {
		time.Sleep(time.Millisecond)
	}

	cancelShort()
	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("first waiter err=%v", err)
	}
	close(release)
	if err := <-secondDone; err != nil {
		t.Fatalf("second waiter err=%v — the shared flight was killed by the departing waiter", err)
	}
}

// ---- panic isolation at the serve boundary ----

// TestRunPanicIsolated: a panicking run yields a 500 and the daemon
// keeps serving.
func TestRunPanicIsolated(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, Options{RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
		if calls.Add(1) == 1 {
			panic("run blew up")
		}
		return fakeArtifacts(), nil
	}})
	h := s.Handler()
	if w := post(t, h, "/v1/run", `{"seed": 1}`); w.Code != 500 || !strings.Contains(w.Body.String(), "run blew up") {
		t.Fatalf("panicking run = %d: %s", w.Code, w.Body)
	}
	if w := post(t, h, "/v1/run", `{"seed": 1}`); w.Code != 200 {
		t.Fatalf("daemon did not survive the panic: %d: %s", w.Code, w.Body)
	}
}

// TestStageErrorCarriesStageInBody: a typed stage failure surfaces the
// stage name as a structured field of the error envelope.
func TestStageErrorCarriesStageInBody(t *testing.T) {
	s := newTestServer(t, Options{RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
		return nil, fmt.Errorf("core wrapper: %w", &parallel.StageError{
			Stage: "trace-2011", Attempt: 2, Err: errors.New("synthetic")})
	}})
	w := post(t, s.Handler(), "/v1/run", `{"seed": 1}`)
	if w.Code != 500 {
		t.Fatalf("stage failure = %d: %s", w.Code, w.Body)
	}
	var body struct{ Error, Stage string }
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Stage != "trace-2011" || !strings.Contains(body.Error, "trace-2011") {
		t.Fatalf("error envelope = %+v", body)
	}
}

// ---- circuit breaker ----

// TestCircuitBreaker walks the full lifecycle on a fake clock: trip
// after threshold consecutive failures, fast-fail while open (without
// consuming runs), admit a half-open trial after the cooldown, re-open
// on trial failure, close on trial success.
func TestCircuitBreaker(t *testing.T) {
	var calls atomic.Int64
	var failing atomic.Bool
	failing.Store(true)
	s := newTestServer(t, Options{
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Second,
		RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
			calls.Add(1)
			if failing.Load() {
				return nil, errors.New("config keeps crashing")
			}
			return fakeArtifacts(), nil
		},
	})
	now := time.Unix(1_700_000_000, 0)
	s.runner.now = func() time.Time { return now }
	h := s.Handler()

	for i := 0; i < 2; i++ {
		if w := post(t, h, "/v1/run", `{"seed": 9}`); w.Code != 500 {
			t.Fatalf("failure %d = %d: %s", i, w.Code, w.Body)
		}
	}
	// Breaker open: fast-fail 503 with Retry-After, no run consumed.
	w := post(t, h, "/v1/run", `{"seed": 9}`)
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "circuit open") {
		t.Fatalf("open-circuit request = %d: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("open-circuit 503 without Retry-After")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("open circuit still consumed a run: calls=%d", got)
	}
	// A different configuration is unaffected (breakers are per
	// fingerprint). It fails too, but it *runs*.
	if w := post(t, h, "/v1/run", `{"seed": 10}`); w.Code != 500 {
		t.Fatalf("other config = %d, want its own 500", w.Code)
	}
	if calls.Load() != 3 {
		t.Fatal("other fingerprint did not run")
	}

	// Cooldown passes; the trial run is admitted and fails → re-open.
	now = now.Add(31 * time.Second)
	if w := post(t, h, "/v1/run", `{"seed": 9}`); w.Code != 500 {
		t.Fatalf("half-open trial = %d: %s", w.Code, w.Body)
	}
	if w := post(t, h, "/v1/run", `{"seed": 9}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("after failed trial = %d, want 503", w.Code)
	}

	// Second cooldown; the config is healthy now → trial succeeds,
	// circuit closes, subsequent runs flow.
	failing.Store(false)
	now = now.Add(31 * time.Second)
	if w := post(t, h, "/v1/run", `{"seed": 9}`); w.Code != 200 {
		t.Fatalf("healthy trial = %d: %s", w.Code, w.Body)
	}
	if got := s.runner.breakerOpenG.Value(); got != 0 {
		t.Errorf("open-circuits gauge = %d after close, want 0", got)
	}
	for _, tr := range []struct {
		state string
		want  uint64
	}{{"open", 2}, {"half_open", 2}, {"closed", 1}} {
		if got := s.runner.breakerTransitions.With(tr.state).Value(); got != tr.want {
			t.Errorf("transitions{%s} = %d, want %d", tr.state, got, tr.want)
		}
	}
	// Cancellations never feed the breaker.
	if got := s.runner.breakers; len(got) != 1 { // only seed=10's breaker remains
		t.Errorf("breakers left = %d, want 1", len(got))
	}
}

// TestCancellationDoesNotTripBreaker: repeated client disconnects must
// not open the circuit — they say nothing about the config's health.
func TestCancellationDoesNotTripBreaker(t *testing.T) {
	started := make(chan struct{}, 8)
	s := newTestServer(t, Options{
		BreakerThreshold: 2,
		RunTimeout:       10 * time.Millisecond,
		RunFunc:          blockingRun(started, nil),
	})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if w := post(t, h, "/v1/run", `{"seed": 4}`); w.Code != http.StatusGatewayTimeout {
			t.Fatalf("attempt %d = %d, want 504", i, w.Code)
		}
	}
	if len(s.runner.breakers) != 0 {
		t.Error("cancellations tripped the breaker")
	}
}

// ---- admission edge cases ----

// TestQueuedDeadlineReleasesSlot: a request whose own deadline expires
// while queued gets 503, and the queue slot it held is released — the
// gate must not leak capacity to dead waiters.
func TestQueuedDeadlineReleasesSlot(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, Options{
		RunLimit: 1, RunQueue: 1, QueueTimeout: 10 * time.Second,
		RunFunc: blockingRun(started, release),
	})
	h := s.Handler()

	holderDone := make(chan int, 1)
	go func() { holderDone <- post(t, h, "/v1/run", `{"seed": 1}`).Code }()
	<-started // slot occupied

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(`{"seed": 2}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued-expired request = %d, want 503: %s", w.Code, w.Body)
	}
	if got := s.rejected.With("run", "canceled").Value(); got != 1 {
		t.Errorf("canceled rejections = %d, want 1", got)
	}
	if got := s.runGate.waiting(); got != 0 {
		t.Fatalf("queue depth = %d after expiry, want 0 (slot leaked)", got)
	}

	// Prove the queue slot is reusable: a fresh request queues, the
	// holder finishes, and the queued request is admitted and completes.
	close(release)
	if code := <-holderDone; code != 200 {
		t.Fatalf("holder = %d", code)
	}
	if w := post(t, h, "/v1/run", `{"seed": 3}`); w.Code != 200 {
		t.Fatalf("post-expiry request = %d, want 200", w.Code)
	}
}

// TestDrainRacesInFlightRun: SIGTERM-style drain beginning while a
// POST /v1/run is inside the pipeline — the in-flight run completes
// 200, new runs are refused 503, and Serve/Shutdown both return nil.
func TestDrainRacesInFlightRun(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, Options{RunFunc: blockingRun(started, release)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(`{"seed": 1}`))
		if err != nil {
			inflight <- -1
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-started

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	// Drain flag flips synchronously at the top of Shutdown; wait for it
	// to be visible, then race a new run against the drain.
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	if w := post(t, s.Handler(), "/v1/run", `{"seed": 2}`); w.Code != http.StatusServiceUnavailable {
		t.Errorf("new run during drain = %d, want 503", w.Code)
	}

	close(release)
	if code := <-inflight; code != 200 {
		t.Errorf("in-flight run during drain = %d, want 200", code)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown = %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve = %v", err)
	}
}

// ---- stale-while-error ----

// TestStaleWhileError: after a good render, a later identical request
// whose run now fails (cache cleared, pipeline broken) degrades to the
// last good body — same bytes, same ETag, marked via X-Rcpt-Stale —
// instead of a bare 500.
func TestStaleWhileError(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, Options{RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
		if calls.Add(1) == 1 {
			return core.RunSequential(cfg)
		}
		return nil, errors.New("pipeline is on fire")
	}})
	h := s.Handler()

	w1 := get(t, h, "/v1/tables/T5?format=json")
	if w1.Code != 200 {
		t.Fatalf("first render = %d: %s", w1.Code, w1.Body)
	}
	etag := w1.Header().Get("ETag")

	// Force the full failure path: drop the rendered-body cache and the
	// completed-run LRU so the next request must re-execute the (now
	// broken) pipeline.
	s.cache.mu.Lock()
	s.cache.ll.Init()
	s.cache.items = map[cacheKey]*list.Element{}
	s.cache.bytes = 0
	s.cache.mu.Unlock()
	s.runner.mu.Lock()
	s.runner.ll.Init()
	s.runner.items = map[string]*list.Element{}
	s.runner.mu.Unlock()

	w2 := get(t, h, "/v1/tables/T5?format=json")
	if w2.Code != 200 {
		t.Fatalf("stale render = %d, want 200 degradation: %s", w2.Code, w2.Body)
	}
	if w2.Header().Get("X-Rcpt-Stale") != "error" {
		t.Error("stale response not marked with X-Rcpt-Stale: error")
	}
	if w2.Header().Get("ETag") != etag || !strings.Contains(w2.Body.String(), w1.Body.String()[:20]) {
		t.Error("stale response is not the last good body")
	}
	if got := s.staleServed.Value(); got != 1 {
		t.Errorf("stale served counter = %d, want 1", got)
	}

	// POST /v1/run never degrades: callers get the typed truth.
	if w := post(t, h, "/v1/run", `{"seed": 77}`); w.Code != 500 {
		t.Errorf("run with broken pipeline = %d, want 500", w.Code)
	}
}

// ---- crash-safe cache persistence ----

// TestWarmStartServesSameETag: a server spills its rendered bodies;
// a second server over the same directory — with a pipeline that can
// only fail — serves the same table with the identical ETag purely from
// the warm-started cache. This is the in-process version of the CI
// kill-and-restart smoke.
func TestWarmStartServesSameETag(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{CacheDir: dir})
	w1 := get(t, s1.Handler(), "/v1/tables/T5?format=json")
	if w1.Code != 200 {
		t.Fatalf("first server render = %d: %s", w1.Code, w1.Body)
	}
	etag := w1.Header().Get("ETag")
	if got := s1.disk.spill.With("ok").Value(); got == 0 {
		t.Fatal("nothing spilled to disk")
	}

	s2 := newTestServer(t, Options{
		CacheDir: dir,
		RunFunc: func(context.Context, core.Config) (*core.Artifacts, error) {
			t.Error("restarted server re-ran the pipeline despite a warm cache")
			return nil, errors.New("must not run")
		},
	})
	if got := s2.disk.warmstart.With("restored").Value(); got == 0 {
		t.Fatal("no entries restored at warm start")
	}
	w2 := get(t, s2.Handler(), "/v1/tables/T5?format=json")
	if w2.Code != 200 {
		t.Fatalf("warm-started render = %d: %s", w2.Code, w2.Body)
	}
	if w2.Header().Get("ETag") != etag {
		t.Fatalf("ETag changed across restart: %q vs %q", w2.Header().Get("ETag"), etag)
	}
	if !strings.Contains(w1.Body.String(), w2.Body.String()) {
		t.Fatal("bodies differ across restart")
	}
}

// TestWarmStartRejectsCorruptSpill: a truncated/garbled spill file is
// detected by its checksum, counted, removed, and never served.
func TestWarmStartRejectsCorruptSpill(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{CacheDir: dir})
	if w := get(t, s1.Handler(), "/v1/tables/T5?format=json"); w.Code != 200 {
		t.Fatalf("render = %d", w.Code)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files: %v", err)
	}
	// Flip bytes inside the body payload of one envelope.
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(blob), `"body":"`, `"body":"QUFB`, 1)
	if corrupted == string(blob) {
		t.Fatal("could not corrupt envelope")
	}
	if err := os.WriteFile(files[0], []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Options{CacheDir: dir})
	if got := s2.disk.warmstart.With("corrupt").Value(); got != 1 {
		t.Errorf("corrupt warm-start count = %d, want 1", got)
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Error("corrupt spill file was not removed")
	}
}

// TestSpillSurvivesAbruptStop: simulate a crash by leaving a temp file
// behind; the next boot sweeps it and still restores the good entries.
func TestSpillSurvivesAbruptStop(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{CacheDir: dir})
	if w := get(t, s1.Handler(), "/v1/tables/T5?format=json"); w.Code != 200 {
		t.Fatalf("render = %d", w.Code)
	}
	// A torn mid-spill temp file, as a kill -9 would leave it.
	if err := os.WriteFile(filepath.Join(dir, ".spill-torn"), []byte(`{"v":1,"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, Options{CacheDir: dir})
	if got := s2.disk.warmstart.With("restored").Value(); got == 0 {
		t.Fatal("good entries not restored next to torn temp file")
	}
	if _, err := os.Stat(filepath.Join(dir, ".spill-torn")); !os.IsNotExist(err) {
		t.Error("torn temp file not swept at boot")
	}
}

// TestDiskReadThrough: an entry evicted from memory but present on disk
// is served from the spill (and counted) without re-rendering.
func TestDiskReadThrough(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	s := newTestServer(t, Options{
		CacheDir: dir,
		RunFunc: func(_ context.Context, cfg core.Config) (*core.Artifacts, error) {
			calls.Add(1)
			return core.RunSequential(cfg)
		},
	})
	h := s.Handler()
	w1 := get(t, h, "/v1/tables/T5?format=json")
	if w1.Code != 200 {
		t.Fatalf("render = %d", w1.Code)
	}
	// Evict from memory only.
	s.cache.mu.Lock()
	s.cache.ll.Init()
	s.cache.items = map[cacheKey]*list.Element{}
	s.cache.bytes = 0
	s.cache.mu.Unlock()

	w2 := get(t, h, "/v1/tables/T5?format=json")
	if w2.Code != 200 || w2.Header().Get("ETag") != w1.Header().Get("ETag") {
		t.Fatalf("read-through = %d, etag %q vs %q", w2.Code, w2.Header().Get("ETag"), w1.Header().Get("ETag"))
	}
	if got := s.disk.diskHits.Value(); got != 1 {
		t.Errorf("disk hits = %d, want 1", got)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("pipeline ran %d times, want 1 (disk should have served)", got)
	}
}

// ---- metrics ----

// TestMetricsGoldenExposition pins the full /metrics exposition of a
// fresh server: every registered family (including the new resilience
// counters) in deterministic order. Vec families with no series yet are
// skipped by the writer; unlabeled families appear at zero. Regenerate
// with `go test ./internal/serve -run Golden -update`.
func TestMetricsGoldenExposition(t *testing.T) {
	s := newTestServer(t, Options{RunFunc: func(context.Context, core.Config) (*core.Artifacts, error) {
		return fakeArtifacts(), nil
	}})
	w := get(t, s.Handler(), "/metrics")
	if w.Code != 200 {
		t.Fatalf("metrics = %d", w.Code)
	}
	checkGolden(t, "metrics_fresh.golden.txt", w.Body.Bytes())
}
