package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

func testCache(maxBytes int64) *artifactCache {
	return newArtifactCache(maxBytes, obs.NewRegistry())
}

func entryOf(body string) cacheEntry {
	return cacheEntry{body: []byte(body), etag: etagFor([]byte(body)), contentType: "text/plain"}
}

func key(id string) cacheKey {
	return cacheKey{fingerprint: "fp", artifact: id, format: "txt"}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := testCache(1 << 20)
	if _, hit := c.get(key("T1")); hit {
		t.Fatal("hit on empty cache")
	}
	c.put(key("T1"), entryOf("hello"))
	e, hit := c.get(key("T1"))
	if !hit || string(e.body) != "hello" {
		t.Fatalf("get = %q, %v; want hello, true", e.body, hit)
	}
	if got := c.hits.Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := c.misses.Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
}

// TestCacheLRUEviction: the byte bound evicts from the cold tail, and a
// get refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	c := testCache(30) // room for three 10-byte bodies
	body := "0123456789"
	c.put(key("a"), entryOf(body))
	c.put(key("b"), entryOf(body))
	c.put(key("c"), entryOf(body))
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	// Touch "a" so "b" is now the LRU tail.
	if _, hit := c.get(key("a")); !hit {
		t.Fatal("expected a cached")
	}
	c.put(key("d"), entryOf(body))
	if _, hit := c.get(key("b")); hit {
		t.Error("b survived eviction; want it dropped as LRU tail")
	}
	for _, id := range []string{"a", "c", "d"} {
		if _, hit := c.get(key(id)); !hit {
			t.Errorf("%s evicted; want retained", id)
		}
	}
	if got := c.evictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

// TestCacheOversizedNotRetained: a body larger than the whole bound is
// served but never stored (it would evict everything for one entry).
func TestCacheOversizedNotRetained(t *testing.T) {
	c := testCache(8)
	c.put(key("big"), entryOf("way more than eight bytes"))
	if c.len() != 0 {
		t.Fatalf("oversized body retained; len = %d", c.len())
	}
}

// TestCacheConcurrent hammers get/put from many goroutines; run under
// -race this is the cache's data-race test.
func TestCacheConcurrent(t *testing.T) {
	c := testCache(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("T%d", i%20))
				if _, hit := c.get(k); !hit {
					c.put(k, entryOf(fmt.Sprintf("body-%d", i%20)))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.len() == 0 {
		t.Fatal("cache empty after concurrent fill")
	}
}

func TestETagFormat(t *testing.T) {
	e := etagFor([]byte("x"))
	if len(e) != 66 || e[0] != '"' || e[len(e)-1] != '"' {
		t.Fatalf("etag %q: want quoted 64-hex", e)
	}
	if e != etagFor([]byte("x")) {
		t.Fatal("etag not deterministic")
	}
	if e == etagFor([]byte("y")) {
		t.Fatal("distinct bodies share an etag")
	}
}

func TestETagMatches(t *testing.T) {
	tag := `"abc"`
	cases := []struct {
		header string
		want   bool
	}{
		{`"abc"`, true},
		{`*`, true},
		{`"zzz", "abc"`, true},
		{`W/"abc"`, true}, // weak tag, same bytes: treat as match for 304
		{`"zzz"`, false},
		{``, false},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, tag); got != c.want {
			t.Errorf("etagMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
