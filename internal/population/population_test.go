package population

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/survey"
)

func TestModelsValidate(t *testing.T) {
	if err := Model2011().Validate(); err != nil {
		t.Fatalf("2011 model: %v", err)
	}
	if err := Model2024().Validate(); err != nil {
		t.Fatalf("2024 model: %v", err)
	}
}

func TestValidateCatchesBrokenModels(t *testing.T) {
	m := Model2024()
	m.FieldShare["physics"] += 0.5 // margins no longer sum to 1
	if err := m.Validate(); err == nil {
		t.Fatal("broken field share accepted")
	}
	m = Model2024()
	delete(m.LangBase, "python")
	if err := m.Validate(); err == nil {
		t.Fatal("missing language accepted")
	}
	m = Model2024()
	m.PracticeBase["version control"] = 1.5
	if err := m.Validate(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	m = Model2024()
	m.BaseResponseRate = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero response rate accepted")
	}
	m = Model2024()
	m.Year = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero year accepted")
	}
}

func TestGenerateRespondentsValid(t *testing.T) {
	g, err := NewGenerator(Model2024())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := g.GenerateRespondents(rng.New(1), 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 300 {
		t.Fatalf("got %d respondents", len(rs))
	}
	ins := g.Instrument()
	for _, r := range rs {
		if errs := ins.Validate(r); len(errs) != 0 {
			t.Fatalf("invalid respondent %s: %v", r.ID, errs)
		}
		if r.Cohort != 2024 {
			t.Fatalf("cohort %d", r.Cohort)
		}
		if len(r.Choices(survey.QLanguages)) == 0 {
			t.Fatalf("respondent %s has no languages", r.ID)
		}
		if len(r.Choices(survey.QParallelism)) == 0 {
			t.Fatalf("respondent %s has no parallelism answer", r.ID)
		}
	}
}

func TestGenerate2011HasNoModernTools(t *testing.T) {
	g, _ := NewGenerator(Model2011())
	rs, err := g.GenerateRespondents(rng.New(2), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Has(survey.QModernTools) {
			t.Fatal("2011 respondent answered a 2024-only question")
		}
		if r.Selected(survey.QLanguages, "julia") || r.Selected(survey.QLanguages, "rust") {
			t.Fatal("2011 respondent uses a language that did not exist")
		}
	}
}

func TestSerialOnlyExclusive(t *testing.T) {
	for _, m := range []*Model{Model2011(), Model2024()} {
		g, _ := NewGenerator(m)
		rs, err := g.GenerateRespondents(rng.New(3), 300)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			par := r.Choices(survey.QParallelism)
			if contains(par, "serial only") && len(par) > 1 {
				t.Fatalf("%d respondent both serial-only and parallel: %v", m.Year, par)
			}
		}
	}
}

func TestCIImpliesVCS(t *testing.T) {
	g, _ := NewGenerator(Model2024())
	rs, err := g.GenerateRespondents(rng.New(4), 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Selected(survey.QPractices, "continuous integration") &&
			!r.Selected(survey.QPractices, "version control") {
			t.Fatal("CI without version control generated")
		}
	}
}

func TestClusterHoursSkipLogic(t *testing.T) {
	g, _ := NewGenerator(Model2024())
	rs, _ := g.GenerateRespondents(rng.New(5), 400)
	for _, r := range rs {
		never := r.Choice(survey.QClusterUse) == "never"
		if never && r.Has(survey.QClusterHours) {
			t.Fatal("never-user answered cluster hours")
		}
		if !never && !r.Has(survey.QClusterHours) {
			t.Fatal("cluster user skipped cluster hours")
		}
	}
}

func TestCohortShapeDifferences(t *testing.T) {
	ins := survey.Canonical()
	g11, _ := NewGenerator(Model2011())
	g24, _ := NewGenerator(Model2024())
	r11, err := g11.GenerateRespondents(rng.New(6), 600)
	if err != nil {
		t.Fatal(err)
	}
	r24, err := g24.GenerateRespondents(rng.New(7), 600)
	if err != nil {
		t.Fatal(err)
	}
	share := func(rs []*survey.Response, qid, opt string) float64 {
		tab, err := ins.Tabulate(qid, rs)
		if err != nil {
			t.Fatal(err)
		}
		return tab.Share(opt)
	}
	// The headline shape claims must hold in the synthetic cohorts.
	if p11, p24 := share(r11, survey.QLanguages, "python"), share(r24, survey.QLanguages, "python"); p24 <= p11+0.2 {
		t.Fatalf("python share 2011=%.2f 2024=%.2f — no rise", p11, p24)
	}
	if m11, m24 := share(r11, survey.QLanguages, "matlab"), share(r24, survey.QLanguages, "matlab"); m24 >= m11 {
		t.Fatalf("matlab share 2011=%.2f 2024=%.2f — no decline", m11, m24)
	}
	if g11s, g24s := share(r11, survey.QParallelism, "gpu"), share(r24, survey.QParallelism, "gpu"); g24s <= g11s+0.2 {
		t.Fatalf("gpu share 2011=%.2f 2024=%.2f — no surge", g11s, g24s)
	}
	if v11, v24 := share(r11, survey.QPractices, "version control"), share(r24, survey.QPractices, "version control"); v24 <= v11+0.25 {
		t.Fatalf("vcs share 2011=%.2f 2024=%.2f — no adoption growth", v11, v24)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g, _ := NewGenerator(Model2024())
	a, err := g.GenerateRespondents(rng.New(8), 50)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.GenerateRespondents(rng.New(8), 50)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Choice(survey.QField) != b[i].Choice(survey.QField) ||
			a[i].Text(survey.QBottleneck) != b[i].Text(survey.QBottleneck) {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGenerateParallelMatchesWorkerCounts(t *testing.T) {
	g, _ := NewGenerator(Model2024())
	a, err := g.GenerateParallel(99, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.GenerateParallel(99, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("sizes %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("IDs diverge at %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
		if a[i].Choice(survey.QField) != b[i].Choice(survey.QField) ||
			a[i].Rating(survey.QTraining) != b[i].Rating(survey.QTraining) {
			t.Fatalf("respondent %d differs across worker counts", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	g, _ := NewGenerator(Model2024())
	if _, err := g.GenerateRespondents(rng.New(1), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := g.GenerateParallel(1, -5, 2); err == nil {
		t.Fatal("negative n accepted")
	}
	bad := Model2024()
	bad.BaseResponseRate = 2
	if _, err := NewGenerator(bad); err == nil {
		t.Fatal("invalid model accepted by NewGenerator")
	}
}

func TestResponseBiasSkewsSample(t *testing.T) {
	// CS is over-represented among respondents relative to the frame.
	m := Model2024()
	g, _ := NewGenerator(m)
	rs, err := g.GenerateRespondents(rng.New(10), 3000)
	if err != nil {
		t.Fatal(err)
	}
	csCount := 0
	for _, r := range rs {
		if r.Choice(survey.QField) == "computer science" {
			csCount++
		}
	}
	csShare := float64(csCount) / float64(len(rs))
	if csShare <= m.FieldShare["computer science"] {
		t.Fatalf("cs respondent share %.3f not above frame share %.3f — bias not simulated",
			csShare, m.FieldShare["computer science"])
	}
}

func TestMostLikely(t *testing.T) {
	if got := mostLikely(map[string]float64{"a": 0.1, "b": 0.9, "c": 0.5}); got != "b" {
		t.Fatalf("mostLikely=%q", got)
	}
}
