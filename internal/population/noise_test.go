package population

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/survey"
)

func TestInjectNoiseGroundTruth(t *testing.T) {
	g, err := NewGenerator(Model2024())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := g.GenerateRespondents(rng.New(3), 400)
	if err != nil {
		t.Fatal(err)
	}
	noisy, injections, err := InjectNoise(rng.New(4), rs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(injections) < 30 || len(injections) > 50 {
		t.Fatalf("%d injections for rate 0.1 over 400", len(injections))
	}
	if len(noisy) < len(rs) {
		t.Fatal("noisy set shrank")
	}
}

// End-to-end: every hard corruption the injector plants must be caught
// by the canonical screening rules — the cleaning stage's recall on its
// own threat model is 100%.
func TestScreeningCatchesInjectedNoise(t *testing.T) {
	g, err := NewGenerator(Model2024())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := g.GenerateRespondents(rng.New(5), 600)
	if err != nil {
		t.Fatal(err)
	}
	noisy, injections, err := InjectNoise(rng.New(6), rs, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	ins := g.Instrument()
	qr := survey.Screen(ins, noisy, survey.CanonicalRules())

	flaggedBy := map[string]map[string]bool{} // response -> rules hit
	for _, f := range qr.Flags {
		if flaggedBy[f.ResponseID] == nil {
			flaggedBy[f.ResponseID] = map[string]bool{}
		}
		flaggedBy[f.ResponseID][f.Rule] = true
	}
	for _, inj := range injections {
		rules := flaggedBy[inj.ResponseID]
		if !rules[string(inj.Kind)] {
			t.Fatalf("injection %v not caught; flags for it: %v", inj, rules)
		}
	}

	// Precision on the clean majority: few false hard flags. Soft flags
	// on clean responses are acceptable (the generator legitimately
	// creates mild gpu-share inconsistencies).
	injected := map[string]bool{}
	for _, inj := range injections {
		injected[inj.ResponseID] = true
	}
	falseHard := 0
	for id := range qr.HardIDs {
		if !injected[id] {
			falseHard++
		}
	}
	if falseHard > len(rs)/50 {
		t.Fatalf("%d clean responses hard-flagged", falseHard)
	}

	// The cleaned set drops all hard-flagged respondents.
	kept := survey.DropHard(noisy, qr)
	for _, r := range kept {
		if qr.HardIDs[r.ID] {
			t.Fatal("hard-flagged response survived cleaning")
		}
	}
}

func TestInjectNoiseErrors(t *testing.T) {
	g, _ := NewGenerator(Model2024())
	rs, _ := g.GenerateRespondents(rng.New(7), 20)
	if _, _, err := InjectNoise(rng.New(1), rs, 0); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, _, err := InjectNoise(rng.New(1), rs, 0.9); err == nil {
		t.Fatal("rate 0.9 accepted")
	}
	if _, _, err := InjectNoise(rng.New(1), nil, 0.1); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestInjectNoiseDeterministic(t *testing.T) {
	g, _ := NewGenerator(Model2024())
	rs1, _ := g.GenerateRespondents(rng.New(8), 100)
	rs2, _ := g.GenerateRespondents(rng.New(8), 100)
	_, i1, err := InjectNoise(rng.New(9), rs1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	_, i2, _ := InjectNoise(rng.New(9), rs2, 0.2)
	if len(i1) != len(i2) {
		t.Fatal("injection counts differ")
	}
	for i := range i1 {
		if i1[i] != i2[i] {
			t.Fatalf("injection %d differs", i)
		}
	}
}
