package population

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/survey"
)

// Generator produces synthetic respondents for one cohort model.
type Generator struct {
	model      *Model
	instrument *survey.Instrument
	fieldCat   *rng.Categorical
	careerCat  *rng.Categorical
	clusterCat *rng.Categorical
}

// NewGenerator validates the model and prepares samplers.
func NewGenerator(m *Model) (*Generator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	fieldCat, err := rng.NewCategorical(m.FieldShare)
	if err != nil {
		return nil, fmt.Errorf("population: field sampler: %w", err)
	}
	careerCat, err := rng.NewCategorical(m.CareerShare)
	if err != nil {
		return nil, fmt.Errorf("population: career sampler: %w", err)
	}
	clusterCat, err := rng.NewCategorical(m.ClusterUse)
	if err != nil {
		return nil, fmt.Errorf("population: cluster sampler: %w", err)
	}
	return &Generator{
		model:      m,
		instrument: survey.Canonical(),
		fieldCat:   fieldCat,
		careerCat:  careerCat,
		clusterCat: clusterCat,
	}, nil
}

// Instrument returns the canonical instrument the generator fills in.
func (g *Generator) Instrument() *survey.Instrument { return g.instrument }

// Model returns the cohort model.
func (g *Generator) Model() *Model { return g.model }

// GenerateRespondents draws until n completed responses have been
// collected, simulating nonresponse: each sampled population member
// responds with probability BaseResponseRate × field bias × career bias
// (clamped to [0.02, 1]). The skipped members are what the weighting
// stage corrects for. Generation is deterministic in r.
func (g *Generator) GenerateRespondents(r *rng.RNG, n int) ([]*survey.Response, error) {
	if n <= 0 {
		return nil, fmt.Errorf("population: need n > 0 respondents, got %d", n)
	}
	out := make([]*survey.Response, 0, n)
	attempts := 0
	maxAttempts := n * 1000 // nonresponse cannot stall generation forever
	for len(out) < n {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("population: gave up after %d attempts for %d respondents", attempts, n)
		}
		field := g.fieldCat.Draw(r)
		career := g.careerCat.Draw(r)
		p := g.model.BaseResponseRate * g.model.FieldResponseBias[field] * g.model.CareerResponseBias[career]
		if !r.Bool(clampProb(p, 0.02, 1)) {
			continue
		}
		id := fmt.Sprintf("%d-%06d", g.model.Year, len(out))
		resp := g.generateOne(r, id, field, career)
		if errs := g.instrument.Validate(resp); len(errs) > 0 {
			return nil, fmt.Errorf("population: generated invalid response: %v", errs[0])
		}
		out = append(out, resp)
	}
	return out, nil
}

// genChunkSize is the fixed chunk width for parallel generation. Chunk
// boundaries must not depend on the worker count, or different machines
// would generate different cohorts from the same seed.
const genChunkSize = 64

// GenerateParallel produces exactly n respondents fanned out over
// fixed-size chunks executed by up to workers goroutines. Each chunk
// derives a named RNG stream from seed, so output is identical for
// every worker count.
func (g *Generator) GenerateParallel(seed uint64, n, workers int) ([]*survey.Response, error) {
	if n <= 0 {
		return nil, fmt.Errorf("population: need n > 0 respondents, got %d", n)
	}
	root := rng.New(seed)
	nchunks := (n + genChunkSize - 1) / genChunkSize
	partials, err := parallel.Map(workers, parallel.Chunks(n, nchunks), func(_ int, c parallel.Chunk) ([]*survey.Response, error) {
		cr := root.SplitNamed(fmt.Sprintf("%s/chunk-%d", g.instrument.Name, c.Index))
		rs, err := g.GenerateRespondents(cr, c.Hi-c.Lo)
		if err != nil {
			return nil, err
		}
		// Re-key IDs to global positions so chunked output matches a
		// single-stream labeling convention.
		for i, resp := range rs {
			resp.ID = fmt.Sprintf("%d-%06d", g.model.Year, c.Lo+i)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	return parallel.Fold(partials, make([]*survey.Response, 0, n),
		func(acc []*survey.Response, part []*survey.Response) []*survey.Response {
			return append(acc, part...)
		}), nil
}

// generateOne fills every instrument answer for one respondent.
func (g *Generator) generateOne(r *rng.RNG, id, field, career string) *survey.Response {
	m := g.model
	resp := survey.NewResponse(id, m.Year)
	resp.SetChoice(survey.QField, field)
	resp.SetChoice(survey.QCareer, career)

	years := yearsCodingFor(r, career)
	resp.SetValue(survey.QYearsCoding, years)
	resp.SetValue(survey.QTeamSize, float64(1+r.Poisson(2.2)))

	// Latent engineering propensity: CS and engineering skew positive,
	// and more years coding nudges it up.
	eng := r.Norm()
	switch field {
	case "computer science":
		eng += 0.8
	case "engineering", "physics", "astronomy":
		eng += 0.3
	}
	eng += (years - 8) / 25

	// Languages: base + field boost; guarantee at least one language by
	// falling back to the cohort's most likely one.
	langs := g.drawMulti(r, survey.Languages, m.LangBase, m.FieldLangBoost[field], 0)
	if len(langs) == 0 {
		langs = []string{mostLikely(m.LangBase)}
	}
	resp.SetChoices(survey.QLanguages, langs)

	// Parallelism: "serial only" is exclusive of the rest.
	par := g.drawMulti(r, survey.ParallelismModes, m.ParallelismBase, nil, eng*0.3)
	par = reconcileSerial(par, m.ParallelismBase["serial only"], r)
	resp.SetChoices(survey.QParallelism, par)

	usesGPU := contains(par, "gpu")
	usesCluster := contains(par, "cluster batch jobs") || contains(par, "mpi / multi-node")

	// Engineering practices shift with the latent propensity, with an
	// implication constraint: CI requires version control.
	practices := g.drawMulti(r, survey.EngineeringPractices, m.PracticeBase, nil, eng*m.EngSlope)
	if contains(practices, "continuous integration") && !contains(practices, "version control") {
		practices = append(practices, "version control")
	}
	resp.SetChoices(survey.QPractices, practices)

	// Cluster usage frequency, biased up when the parallelism answers
	// imply cluster work.
	use := g.clusterCat.Draw(r)
	if usesCluster && (use == "never" || use == "a few times a year") && r.Bool(0.7) {
		use = []string{"monthly", "weekly", "daily"}[r.Intn(3)]
	}
	resp.SetChoice(survey.QClusterUse, use)
	if use != "never" {
		resp.SetValue(survey.QClusterHours, clusterHoursFor(r, use))
	}

	// GPU share correlates with GPU parallelism selection.
	gpuShare := 0.0
	if usesGPU {
		gpuShare = clampProb(m.GPUAffinity+r.NormMeanStd(0.15, 0.15), 0.01, 1)
	} else if r.Bool(0.1) {
		gpuShare = clampProb(r.NormMeanStd(0.05, 0.05), 0, 0.3)
	}
	resp.SetValue(survey.QGPUShare, float64(int(gpuShare*100)))

	// Modern tools only exist on the 2024 instrument.
	if m.ToolBase != nil {
		tools := g.drawMulti(r, survey.ModernTools, m.ToolBase, nil, eng*0.4)
		resp.SetChoices(survey.QModernTools, tools)
	}

	resp.SetText(survey.QBottleneck, drawBottleneck(r, usesGPU || usesCluster, eng))

	// Training Likert: correlated with the same latent propensity.
	training := 1 + int(clampProb(logistic(eng+m.TrainingShift)*4+r.NormMeanStd(0, 0.7), 0, 4))
	if training > 5 {
		training = 5
	}
	resp.SetRating(survey.QTraining, training)
	return resp
}

// drawMulti selects options independently with per-option probability
// logistic(logit(base+boost) + shift).
func (g *Generator) drawMulti(r *rng.RNG, options []string, base map[string]float64, boost map[string]float64, shift float64) []string {
	var out []string
	for _, opt := range options {
		p := base[opt]
		if p <= 0 {
			// Structurally unavailable option (e.g. Julia in 2011):
			// no field boost or latent shift can resurrect it.
			continue
		}
		if boost != nil {
			p = clampProb(p+boost[opt], 0.001, 0.99)
		}
		p = logistic(logit(p) + shift)
		if r.Bool(p) {
			out = append(out, opt)
		}
	}
	return out
}

// reconcileSerial enforces that "serial only" excludes other modes: if
// both were drawn, keep whichever side the base rate favors.
func reconcileSerial(par []string, serialBase float64, r *rng.RNG) []string {
	hasSerial := contains(par, "serial only")
	others := make([]string, 0, len(par))
	for _, p := range par {
		if p != "serial only" {
			others = append(others, p)
		}
	}
	switch {
	case hasSerial && len(others) > 0:
		if r.Bool(serialBase) {
			return []string{"serial only"}
		}
		return others
	case !hasSerial && len(others) == 0:
		return []string{"serial only"}
	case hasSerial:
		return []string{"serial only"}
	default:
		return others
	}
}

// yearsCodingFor draws experience consistent with career stage.
func yearsCodingFor(r *rng.RNG, career string) float64 {
	var mu, sigma float64
	switch career {
	case "undergraduate":
		mu, sigma = 2, 1
	case "graduate student":
		mu, sigma = 5, 2
	case "postdoc":
		mu, sigma = 9, 3
	case "research staff":
		mu, sigma = 12, 5
	default: // faculty
		mu, sigma = 18, 7
	}
	y := r.NormMeanStd(mu, sigma)
	if y < 0 {
		y = 0
	}
	if y > 60 {
		y = 60
	}
	return float64(int(y*10)) / 10
}

// clusterHoursFor draws weekly cluster hours consistent with usage
// frequency (lognormal, heavier for daily users).
func clusterHoursFor(r *rng.RNG, use string) float64 {
	var mu float64
	switch use {
	case "a few times a year":
		mu = 0.5
	case "monthly":
		mu = 1.5
	case "weekly":
		mu = 3.0
	default: // daily
		mu = 4.5
	}
	h := r.LogNormal(mu, 0.8)
	if h > 100000 {
		h = 100000
	}
	return float64(int(h*10)) / 10
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func mostLikely(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best, bestP := keys[0], m[keys[0]]
	for _, k := range keys[1:] {
		if m[k] > bestP {
			best, bestP = k, m[k]
		}
	}
	return best
}
