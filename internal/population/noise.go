package population

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/survey"
)

// Noise injection: real survey exports contain fraudulent, careless,
// and unit-confused responses. InjectNoise corrupts a fraction of a
// clean cohort in the ways the quality screen is built to catch, so the
// cleaning stage can be exercised end-to-end (and its false-negative
// rate measured, since injection records what it did).

// NoiseKind labels an injected corruption.
type NoiseKind string

// Injected corruption kinds, matching survey.CanonicalRules.
const (
	NoiseDuplicate  NoiseKind = "duplicate-id"
	NoiseSpeeder    NoiseKind = "everything-everywhere"
	NoiseExperience NoiseKind = "experience-career"
	NoiseGPUUnit    NoiseKind = "gpu-consistency"
	NoiseHoursUnit  NoiseKind = "hours-outlier"
)

// Injection records one corruption for ground-truth comparison.
type Injection struct {
	ResponseID string
	Kind       NoiseKind
}

// InjectNoise corrupts approximately rate × len(responses) responses in
// place (duplicates append), returning the ground-truth injection list.
// Deterministic in r. rate must be in (0, 0.5].
func InjectNoise(r *rng.RNG, responses []*survey.Response, rate float64) ([]*survey.Response, []Injection, error) {
	if rate <= 0 || rate > 0.5 {
		return nil, nil, fmt.Errorf("population: noise rate %g out of (0, 0.5]", rate)
	}
	if len(responses) == 0 {
		return nil, nil, fmt.Errorf("population: no responses to corrupt")
	}
	out := append([]*survey.Response(nil), responses...)
	var injections []Injection
	n := int(float64(len(responses))*rate + 0.5)
	if n < 1 {
		n = 1
	}
	victims := rng.Sample(r, responses, n)
	for _, v := range victims {
		kind := []NoiseKind{NoiseDuplicate, NoiseSpeeder, NoiseExperience, NoiseGPUUnit, NoiseHoursUnit}[r.Intn(5)]
		switch kind {
		case NoiseDuplicate:
			// A resubmission: same ID, same answers.
			dup := survey.NewResponse(v.ID, v.Cohort)
			for qid, ans := range v.Answers {
				dup.Answers[qid] = ans
			}
			out = append(out, dup)
		case NoiseSpeeder:
			// Straight-liner: ticks every box on the big multi-selects.
			v.SetChoices(survey.QLanguages, survey.Languages)
			v.SetChoices(survey.QParallelism, survey.ParallelismModes)
			v.SetChoices(survey.QPractices, survey.EngineeringPractices)
		case NoiseExperience:
			// Implausible experience for an early-career stage.
			v.SetChoice(survey.QCareer, "undergraduate")
			v.SetValue(survey.QYearsCoding, 35)
		case NoiseGPUUnit:
			// Claims near-total GPU use with no GPU/cluster modes.
			v.SetChoices(survey.QParallelism, []string{"serial only"})
			v.SetValue(survey.QGPUShare, 90)
		case NoiseHoursUnit:
			// Minutes-as-hours unit error on cluster consumption.
			if v.Choice(survey.QClusterUse) == "never" {
				v.SetChoice(survey.QClusterUse, "weekly")
			}
			v.SetValue(survey.QClusterHours, 30000)
		}
		injections = append(injections, Injection{ResponseID: v.ID, Kind: kind})
	}
	return out, injections, nil
}
