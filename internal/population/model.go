// Package population implements the synthetic-respondent substitute for
// the study's IRB-protected survey data. A Model describes one cohort's
// behavioral parameters: the institutional frame (who exists), the
// response propensities (who answers — deliberately biased so the
// weighting stage has real work to do), and practice-adoption
// probabilities conditioned on field, career stage, and a latent
// "engineering propensity" that induces realistic correlations between
// practices (a respondent who uses CI almost certainly uses version
// control).
//
// The marginal rates in Model2011 and Model2024 are set to
// published-consensus values for the two eras; they are parameters, not
// code, so a real dataset (or different assumptions) can be swapped in
// without touching the pipeline.
package population

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/survey"
)

// Model is one cohort's generative description.
type Model struct {
	Year int

	// FieldShare and CareerShare define the institutional frame: the
	// true composition of the researcher population. These are also the
	// raking targets.
	FieldShare  map[string]float64
	CareerShare map[string]float64

	// FieldResponseBias and CareerResponseBias multiply the base response
	// propensity; values > 1 over-represent the group among respondents.
	FieldResponseBias  map[string]float64
	CareerResponseBias map[string]float64
	BaseResponseRate   float64

	// LangBase maps language -> base selection probability; FieldLangBoost
	// adds a per-field additive shift (clamped into [0.01, 0.99]).
	LangBase       map[string]float64
	FieldLangBoost map[string]map[string]float64

	// ParallelismBase, PracticeBase, ToolBase are analogous multi-select
	// probabilities. EngSlope scales how strongly the latent engineering
	// propensity shifts practice adoption (log-odds units per std dev).
	ParallelismBase map[string]float64
	PracticeBase    map[string]float64
	ToolBase        map[string]float64 // nil for cohorts without the item
	EngSlope        float64

	// ClusterUse maps frequency option -> probability.
	ClusterUse map[string]float64

	// GPUAffinity is the probability-scale boost that selecting "gpu"
	// parallelism adds to the numeric GPU-share answer.
	GPUAffinity float64

	// TrainingShift moves the formal-training Likert in latent (log-odds)
	// units: training opportunities (carpentries, RSE groups, online
	// courses) expanded between the waves.
	TrainingShift float64
}

// Validate checks that the model's tables cover the canonical instrument
// vocabulary and that all probabilities are in range.
func (m *Model) Validate() error {
	if m.Year <= 0 {
		return fmt.Errorf("population: model year %d", m.Year)
	}
	if err := checkShare("FieldShare", m.FieldShare, survey.Fields); err != nil {
		return err
	}
	if err := checkShare("CareerShare", m.CareerShare, survey.CareerStages); err != nil {
		return err
	}
	if err := checkProbs("LangBase", m.LangBase, survey.Languages); err != nil {
		return err
	}
	if err := checkProbs("ParallelismBase", m.ParallelismBase, survey.ParallelismModes); err != nil {
		return err
	}
	if err := checkProbs("PracticeBase", m.PracticeBase, survey.EngineeringPractices); err != nil {
		return err
	}
	if m.ToolBase != nil {
		if err := checkProbs("ToolBase", m.ToolBase, survey.ModernTools); err != nil {
			return err
		}
	}
	if err := checkShare("ClusterUse", m.ClusterUse, survey.ClusterUseOptions); err != nil {
		return err
	}
	if m.BaseResponseRate <= 0 || m.BaseResponseRate > 1 {
		return fmt.Errorf("population: base response rate %g out of (0,1]", m.BaseResponseRate)
	}
	return nil
}

func checkShare(name string, m map[string]float64, keys []string) error {
	if len(m) == 0 {
		return fmt.Errorf("population: %s is empty", name)
	}
	sum := 0.0
	for _, k := range keys {
		v, ok := m[k]
		if !ok {
			return fmt.Errorf("population: %s missing %q", name, k)
		}
		if v < 0 {
			return fmt.Errorf("population: %s[%q] = %g negative", name, k, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("population: %s sums to %g, want 1", name, sum)
	}
	return nil
}

func checkProbs(name string, m map[string]float64, keys []string) error {
	if len(m) == 0 {
		return fmt.Errorf("population: %s is empty", name)
	}
	for _, k := range keys {
		v, ok := m[k]
		if !ok {
			return fmt.Errorf("population: %s missing %q", name, k)
		}
		if v < 0 || v > 1 {
			return fmt.Errorf("population: %s[%q] = %g out of [0,1]", name, k, v)
		}
	}
	return nil
}

// Model2011 returns the 2011-cohort parameters: MATLAB/C-era languages,
// little GPU, minority version control.
func Model2011() *Model {
	return &Model{
		Year:       2011,
		FieldShare: defaultFieldShare(),
		CareerShare: map[string]float64{
			"undergraduate":    0.08,
			"graduate student": 0.42,
			"postdoc":          0.18,
			"research staff":   0.12,
			"faculty":          0.20,
		},
		FieldResponseBias: map[string]float64{
			"computer science": 1.6, "physics": 1.3, "engineering": 1.2,
			"astronomy": 1.2, "chemistry": 1.0, "biology": 0.9,
			"earth science": 1.0, "economics": 0.7, "mathematics": 0.9,
			"neuroscience": 0.9, "political science": 0.5, "sociology": 0.5,
		},
		CareerResponseBias: map[string]float64{
			"undergraduate": 0.6, "graduate student": 1.4, "postdoc": 1.2,
			"research staff": 1.0, "faculty": 0.6,
		},
		BaseResponseRate: 0.35,
		LangBase: map[string]float64{
			"python": 0.30, "c": 0.35, "c++": 0.30, "fortran": 0.25,
			"r": 0.20, "matlab": 0.45, "julia": 0.0, "java": 0.15,
			"shell": 0.25, "javascript": 0.04, "go": 0.0, "rust": 0.0,
			"perl": 0.15, "mathematica": 0.10, "sas/stata": 0.08,
		},
		FieldLangBoost: defaultFieldLangBoost(),
		ParallelismBase: map[string]float64{
			"serial only": 0.40, "multicore (threads/OpenMP)": 0.35,
			"mpi / multi-node": 0.20, "gpu": 0.05,
			"cluster batch jobs": 0.30, "cloud": 0.03,
			"distributed frameworks (spark/dask)": 0.01,
		},
		PracticeBase: map[string]float64{
			"version control": 0.35, "automated testing": 0.15,
			"continuous integration": 0.03, "code review": 0.10,
			"written documentation": 0.30, "packaging/releases": 0.08,
			"issue tracking": 0.10, "code sharing on publication": 0.15,
		},
		ToolBase: nil, // item did not exist in 2011
		EngSlope: 0.9,
		ClusterUse: map[string]float64{
			"never": 0.45, "a few times a year": 0.20, "monthly": 0.12,
			"weekly": 0.13, "daily": 0.10,
		},
		GPUAffinity:   0.25,
		TrainingShift: -0.35,
	}
}

// Model2024 returns the 2024-cohort parameters: Python-dominant, heavy
// GPU and cluster use, near-universal version control, AI tooling.
func Model2024() *Model {
	return &Model{
		Year:       2024,
		FieldShare: defaultFieldShare(),
		CareerShare: map[string]float64{
			"undergraduate":    0.10,
			"graduate student": 0.40,
			"postdoc":          0.17,
			"research staff":   0.15,
			"faculty":          0.18,
		},
		FieldResponseBias: map[string]float64{
			"computer science": 1.5, "physics": 1.2, "engineering": 1.2,
			"astronomy": 1.1, "chemistry": 1.0, "biology": 1.0,
			"earth science": 1.0, "economics": 0.8, "mathematics": 0.9,
			"neuroscience": 1.1, "political science": 0.6, "sociology": 0.6,
		},
		CareerResponseBias: map[string]float64{
			"undergraduate": 0.7, "graduate student": 1.3, "postdoc": 1.2,
			"research staff": 1.1, "faculty": 0.6,
		},
		BaseResponseRate: 0.30,
		LangBase: map[string]float64{
			"python": 0.82, "c": 0.22, "c++": 0.30, "fortran": 0.12,
			"r": 0.30, "matlab": 0.20, "julia": 0.12, "java": 0.10,
			"shell": 0.40, "javascript": 0.12, "go": 0.06, "rust": 0.05,
			"perl": 0.03, "mathematica": 0.05, "sas/stata": 0.06,
		},
		FieldLangBoost: defaultFieldLangBoost(),
		ParallelismBase: map[string]float64{
			"serial only": 0.15, "multicore (threads/OpenMP)": 0.55,
			"mpi / multi-node": 0.25, "gpu": 0.45,
			"cluster batch jobs": 0.55, "cloud": 0.25,
			"distributed frameworks (spark/dask)": 0.15,
		},
		PracticeBase: map[string]float64{
			"version control": 0.85, "automated testing": 0.35,
			"continuous integration": 0.25, "code review": 0.30,
			"written documentation": 0.45, "packaging/releases": 0.20,
			"issue tracking": 0.35, "code sharing on publication": 0.50,
		},
		ToolBase: map[string]float64{
			"ai code assistants": 0.45, "containers (docker/apptainer)": 0.35,
			"workflow managers (snakemake/nextflow)": 0.25,
			"jupyter/notebooks":                      0.70,
			"package managers (conda/spack)":         0.65,
			"cloud notebooks (colab)":                0.25,
		},
		EngSlope: 0.9,
		ClusterUse: map[string]float64{
			"never": 0.25, "a few times a year": 0.15, "monthly": 0.15,
			"weekly": 0.25, "daily": 0.20,
		},
		GPUAffinity:   0.45,
		TrainingShift: 0.35,
	}
}

func defaultFieldShare() map[string]float64 {
	return map[string]float64{
		"astronomy":         0.05,
		"biology":           0.14,
		"chemistry":         0.10,
		"computer science":  0.10,
		"earth science":     0.07,
		"economics":         0.07,
		"engineering":       0.16,
		"mathematics":       0.06,
		"neuroscience":      0.08,
		"physics":           0.09,
		"political science": 0.04,
		"sociology":         0.04,
	}
}

// defaultFieldLangBoost encodes the stable field→language affinities:
// Fortran in the physical sciences, R in the life and social sciences,
// MATLAB in engineering, Python in CS.
func defaultFieldLangBoost() map[string]map[string]float64 {
	return map[string]map[string]float64{
		"physics":           {"fortran": 0.20, "c++": 0.10, "python": 0.05},
		"astronomy":         {"fortran": 0.15, "python": 0.10, "c": 0.05},
		"earth science":     {"fortran": 0.25, "matlab": 0.05},
		"chemistry":         {"fortran": 0.10, "c++": 0.05},
		"biology":           {"r": 0.30, "perl": 0.05, "python": 0.05},
		"neuroscience":      {"matlab": 0.25, "python": 0.05, "r": 0.10},
		"economics":         {"sas/stata": 0.35, "r": 0.25, "matlab": 0.10},
		"political science": {"r": 0.35, "sas/stata": 0.25},
		"sociology":         {"r": 0.30, "sas/stata": 0.30},
		"computer science":  {"python": 0.10, "c++": 0.15, "java": 0.10, "go": 0.05, "rust": 0.05},
		"engineering":       {"matlab": 0.25, "c++": 0.10, "fortran": 0.05},
		"mathematics":       {"mathematica": 0.20, "matlab": 0.10, "julia": 0.05},
	}
}

// logit and logistic convert between probability and log-odds space so
// latent shifts compose additively.
func logit(p float64) float64 {
	if p < 1e-6 {
		p = 1e-6
	}
	if p > 1-1e-6 {
		p = 1 - 1e-6
	}
	return math.Log(p / (1 - p))
}

func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// clampProb keeps adjusted probabilities strictly inside [lo, hi].
func clampProb(p, lo, hi float64) float64 {
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// bottleneckPhrases is the free-text bank for QBottleneck, keyed by the
// dominant constraint the respondent's profile implies. The textcode
// taxonomy maps these back to categories, closing the loop for R-T6.
var bottleneckPhrases = map[string][]string{
	"compute": {
		"not enough compute time on the cluster",
		"queue wait times for big jobs are too long",
		"we are limited by available GPU hours",
		"simulations take weeks even on the cluster",
	},
	"software": {
		"legacy code is hard to maintain and extend",
		"our codebase has no tests so changes are risky",
		"dependency and environment problems eat my time",
		"porting the model to new machines keeps breaking",
	},
	"people": {
		"nobody in the group has formal software training",
		"the one person who understood the code graduated",
		"hiring research software engineers is hard",
		"too little time to learn better tools",
	},
	"data": {
		"moving and storing large datasets is the bottleneck",
		"data cleaning takes most of the project time",
		"I/O dominates our pipeline runtime",
		"sharing data with collaborators is painful",
	},
}

// drawBottleneck picks a phrase consistent with the respondent profile.
func drawBottleneck(r *rng.RNG, heavyCompute bool, eng float64) string {
	var key string
	u := r.Float64()
	switch {
	case heavyCompute && u < 0.55:
		key = "compute"
	case eng < -0.5 && u < 0.6:
		key = "software"
	case u < 0.25:
		key = "people"
	case u < 0.55:
		key = "data"
	default:
		key = "software"
	}
	phrases := bottleneckPhrases[key]
	return phrases[r.Intn(len(phrases))]
}
