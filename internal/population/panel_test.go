package population

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/survey"
)

func panelFixture(t *testing.T, n int, seed uint64) (*PanelGenerator, []PanelMember) {
	t.Helper()
	pg, err := NewPanelGenerator(Model2011(), Model2024(), PanelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	panel, err := pg.Generate(rng.New(seed), n)
	if err != nil {
		t.Fatal(err)
	}
	return pg, panel
}

func TestPanelGenerateValid(t *testing.T) {
	pg, panel := panelFixture(t, 200, 1)
	ins := pg.Instrument()
	if len(panel) != 200 {
		t.Fatalf("%d members", len(panel))
	}
	for _, m := range panel {
		if errs := ins.Validate(m.Wave1); len(errs) > 0 {
			t.Fatalf("wave1 invalid: %v", errs)
		}
		if errs := ins.Validate(m.Wave2); len(errs) > 0 {
			t.Fatalf("wave2 invalid: %v", errs)
		}
		if m.Wave1.Cohort != 2011 || m.Wave2.Cohort != 2024 {
			t.Fatalf("cohorts %d/%d", m.Wave1.Cohort, m.Wave2.Cohort)
		}
		// Same field both waves (people rarely change field; model holds
		// it fixed).
		if m.Wave1.Choice(survey.QField) != m.Wave2.Choice(survey.QField) {
			t.Fatal("field changed between waves")
		}
		// Experience advances by the 13-year gap (capped).
		y1 := m.Wave1.Value(survey.QYearsCoding)
		y2 := m.Wave2.Value(survey.QYearsCoding)
		if y2 < y1 {
			t.Fatalf("experience went backwards: %g -> %g", y1, y2)
		}
	}
}

func TestPanelCareerAdvances(t *testing.T) {
	_, panel := panelFixture(t, 500, 2)
	rank := map[string]int{
		"undergraduate": 0, "graduate student": 1, "postdoc": 2,
		"research staff": 2, "faculty": 3,
	}
	advanced, regressed := 0, 0
	for _, m := range panel {
		r1 := rank[m.Wave1.Choice(survey.QCareer)]
		r2 := rank[m.Wave2.Choice(survey.QCareer)]
		if r2 > r1 {
			advanced++
		}
		if r2 < r1 {
			regressed++
		}
	}
	if regressed > 0 {
		t.Fatalf("%d careers regressed", regressed)
	}
	if advanced == 0 {
		t.Fatal("no careers advanced in 500 members")
	}
}

func TestPanelPersistenceRaisesRetention(t *testing.T) {
	// With persistence, wave-1 language holders keep their languages
	// more often than fresh 2024 respondents would select them.
	_, panel := panelFixture(t, 800, 3)
	kept, had := 0, 0
	for _, m := range panel {
		for _, lang := range m.Wave1.Choices(survey.QLanguages) {
			if lang == "matlab" {
				had++
				if m.Wave2.Selected(survey.QLanguages, "matlab") {
					kept++
				}
			}
		}
	}
	if had < 50 {
		t.Fatalf("fixture too small: only %d matlab holders", had)
	}
	keepRate := float64(kept) / float64(had)
	base := Model2024().LangBase["matlab"]
	if keepRate <= base {
		t.Fatalf("matlab retention %.2f not above 2024 base rate %.2f", keepRate, base)
	}
}

func TestPanelNoResurrectedLanguages(t *testing.T) {
	// Persistence must not carry a language into wave 2 that has zero
	// base in the 2024 model (none exist today, but guard the rule by
	// constructing one).
	m24 := Model2024()
	m24.LangBase["perl"] = 0
	pg, err := NewPanelGenerator(Model2011(), m24, PanelOptions{Persistence: 1})
	if err != nil {
		t.Fatal(err)
	}
	panel, err := pg.Generate(rng.New(4), 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range panel {
		if m.Wave2.Selected(survey.QLanguages, "perl") {
			t.Fatal("zero-base language persisted into wave 2")
		}
	}
}

func TestPanelDeterministic(t *testing.T) {
	_, a := panelFixture(t, 50, 9)
	_, b := panelFixture(t, 50, 9)
	for i := range a {
		if a[i].PersonID != b[i].PersonID ||
			a[i].Wave2.Rating(survey.QTraining) != b[i].Wave2.Rating(survey.QTraining) {
			t.Fatalf("panel not deterministic at %d", i)
		}
	}
}

func TestPanelErrors(t *testing.T) {
	if _, err := NewPanelGenerator(Model2011(), Model2024(), PanelOptions{Persistence: 2}); err == nil {
		t.Fatal("persistence > 1 accepted")
	}
	if _, err := NewPanelGenerator(Model2011(), Model2024(), PanelOptions{CareerAdvance: -1}); err == nil {
		t.Fatal("negative career advance accepted")
	}
	pg, _ := NewPanelGenerator(Model2011(), Model2024(), PanelOptions{})
	if _, err := pg.Generate(rng.New(1), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	bad := Model2024()
	bad.BaseResponseRate = -1
	if _, err := NewPanelGenerator(Model2011(), bad, PanelOptions{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestWaveProjections(t *testing.T) {
	_, panel := panelFixture(t, 10, 5)
	w1 := Wave1Responses(panel)
	w2 := Wave2Responses(panel)
	if len(w1) != 10 || len(w2) != 10 {
		t.Fatal("projection lengths")
	}
	if w1[3] != panel[3].Wave1 || w2[7] != panel[7].Wave2 {
		t.Fatal("projection identity")
	}
}
