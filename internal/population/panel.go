package population

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/survey"
)

// Panel support: a subset of respondents observed in both waves, the
// basis for within-person transition analysis ("who abandoned MATLAB
// for Python") that repeated cross-sections cannot answer. The panel
// generator draws a person once, fills their 2011 response from the
// 2011 model, then produces their 2024 response by mixing persistence
// (people keep their stack) with drift toward the 2024 marginals
// (people adopt what the field adopts).

// PanelMember is one person observed in both waves.
type PanelMember struct {
	PersonID string
	Wave1    *survey.Response // 2011
	Wave2    *survey.Response // 2024
}

// PanelOptions tunes the persistence model.
type PanelOptions struct {
	// Persistence is the probability a wave-1 selection is kept in wave 2
	// before drift is applied (default 0.6).
	Persistence float64
	// CareerAdvance is the probability a career stage advances one step
	// between waves (students graduate, postdocs become faculty;
	// default 0.8).
	CareerAdvance float64
}

func (o *PanelOptions) defaults() {
	if o.Persistence == 0 {
		o.Persistence = 0.6
	}
	if o.CareerAdvance == 0 {
		o.CareerAdvance = 0.8
	}
}

// PanelGenerator couples the two cohort models.
type PanelGenerator struct {
	g11, g24 *Generator
	opt      PanelOptions
}

// NewPanelGenerator validates both models and the options.
func NewPanelGenerator(m2011, m2024 *Model, opt PanelOptions) (*PanelGenerator, error) {
	opt.defaults()
	if opt.Persistence < 0 || opt.Persistence > 1 {
		return nil, fmt.Errorf("population: persistence %g out of [0,1]", opt.Persistence)
	}
	if opt.CareerAdvance < 0 || opt.CareerAdvance > 1 {
		return nil, fmt.Errorf("population: career advance %g out of [0,1]", opt.CareerAdvance)
	}
	g11, err := NewGenerator(m2011)
	if err != nil {
		return nil, err
	}
	g24, err := NewGenerator(m2024)
	if err != nil {
		return nil, err
	}
	return &PanelGenerator{g11: g11, g24: g24, opt: opt}, nil
}

// Instrument returns the shared instrument.
func (pg *PanelGenerator) Instrument() *survey.Instrument { return pg.g11.Instrument() }

// Generate produces n panel members deterministically in r. Every
// response validates against the canonical instrument.
func (pg *PanelGenerator) Generate(r *rng.RNG, n int) ([]PanelMember, error) {
	if n <= 0 {
		return nil, fmt.Errorf("population: panel needs n > 0, got %d", n)
	}
	ins := pg.Instrument()
	out := make([]PanelMember, 0, n)
	for i := 0; i < n; i++ {
		pid := fmt.Sprintf("p-%05d", i)
		field := pg.g11.fieldCat.Draw(r)
		career := pg.g11.careerCat.Draw(r)
		w1 := pg.g11.generateOne(r, pid+"/2011", field, career)

		career2 := advanceCareer(r, career, pg.opt.CareerAdvance)
		w2 := pg.g24.generateOne(r, pid+"/2024", field, career2)
		pg.applyPersistence(r, w1, w2)

		for _, resp := range []*survey.Response{w1, w2} {
			if errs := ins.Validate(resp); len(errs) > 0 {
				return nil, fmt.Errorf("population: panel member %s invalid: %v", pid, errs[0])
			}
		}
		out = append(out, PanelMember{PersonID: pid, Wave1: w1, Wave2: w2})
	}
	return out, nil
}

// applyPersistence blends wave-1 multi-select answers into wave 2: each
// wave-1 selection is re-added to wave 2 with probability Persistence
// (people rarely drop a language entirely), and years of experience
// advances by the inter-wave gap.
func (pg *PanelGenerator) applyPersistence(r *rng.RNG, w1, w2 *survey.Response) {
	for _, qid := range []string{survey.QLanguages, survey.QPractices} {
		merged := append([]string(nil), w2.Choices(qid)...)
		for _, c := range w1.Choices(qid) {
			if !contains(merged, c) && r.Bool(pg.opt.Persistence) {
				// Only persist options still on the wave-2 menu with
				// nonzero base rate (perl persists; nothing resurrects).
				if base, ok := pg.g24.model.LangBase[c]; qid == survey.QLanguages && (!ok || base <= 0) {
					continue
				}
				merged = append(merged, c)
			}
		}
		w2.SetChoices(qid, merged)
	}
	gap := float64(pg.g24.model.Year - pg.g11.model.Year)
	years := w1.Value(survey.QYearsCoding) + gap
	if years > 60 {
		years = 60
	}
	w2.SetValue(survey.QYearsCoding, years)
}

// advanceCareer moves a career stage forward with probability p.
func advanceCareer(r *rng.RNG, career string, p float64) string {
	if !r.Bool(p) {
		return career
	}
	switch career {
	case "undergraduate":
		return "graduate student"
	case "graduate student":
		return "postdoc"
	case "postdoc":
		return "faculty"
	default:
		return career
	}
}

// Wave1Responses and Wave2Responses project a panel onto plain response
// slices for the standard cross-sectional machinery.
func Wave1Responses(panel []PanelMember) []*survey.Response {
	out := make([]*survey.Response, len(panel))
	for i, m := range panel {
		out[i] = m.Wave1
	}
	return out
}

// Wave2Responses returns the second-wave responses of a panel.
func Wave2Responses(panel []PanelMember) []*survey.Response {
	out := make([]*survey.Response, len(panel))
	for i, m := range panel {
		out[i] = m.Wave2
	}
	return out
}
