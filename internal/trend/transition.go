package trend

import (
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/survey"
)

// Panel transition analysis: within-person change between waves, the
// analysis only a longitudinal panel supports. All functions take
// paired response slices (wave1[i] and wave2[i] are the same person).

// Retention is one option's within-person dynamics between waves.
type Retention struct {
	Option string
	// Keep = P(selected in wave 2 | selected in wave 1).
	Keep float64
	// Adopt = P(selected in wave 2 | not selected in wave 1).
	Adopt float64
	// KeepCI and AdoptCI are Wilson 95% intervals on the raw counts.
	KeepCI, AdoptCI stats.Interval
	HadN, NotN      int // wave-1 holders / non-holders
}

// Retentions computes keep and adopt rates for every option of a
// multi-choice question over a panel.
func Retentions(ins *survey.Instrument, qid string, wave1, wave2 []*survey.Response) ([]Retention, error) {
	if len(wave1) == 0 || len(wave1) != len(wave2) {
		return nil, fmt.Errorf("trend: panel waves must be equal-length and non-empty (%d vs %d)", len(wave1), len(wave2))
	}
	q, ok := ins.Question(qid)
	if !ok {
		return nil, fmt.Errorf("trend: unknown question %q", qid)
	}
	if q.Kind != survey.MultiChoice {
		return nil, fmt.Errorf("trend: retentions need a multi-choice question, %q is %s", qid, q.Kind)
	}
	out := make([]Retention, 0, len(q.Options))
	for _, opt := range q.Options {
		var keptYes, hadN, adoptYes, notN int
		for i := range wave1 {
			had := wave1[i].Selected(qid, opt)
			has := wave2[i].Selected(qid, opt)
			if had {
				hadN++
				if has {
					keptYes++
				}
			} else {
				notN++
				if has {
					adoptYes++
				}
			}
		}
		ret := Retention{Option: opt, HadN: hadN, NotN: notN}
		if hadN > 0 {
			ret.Keep = float64(keptYes) / float64(hadN)
			ci, err := stats.WilsonInterval(float64(keptYes), float64(hadN), 0.95)
			if err != nil {
				return nil, err
			}
			ret.KeepCI = ci
		}
		if notN > 0 {
			ret.Adopt = float64(adoptYes) / float64(notN)
			ci, err := stats.WilsonInterval(float64(adoptYes), float64(notN), 0.95)
			if err != nil {
				return nil, err
			}
			ret.AdoptCI = ci
		}
		out = append(out, ret)
	}
	return out, nil
}

// TransitionMatrix returns M[i][j] = P(person selects options[j] in
// wave 2 | selected options[i] in wave 1), the conditional co-usage
// heatmap of figure F11. Rows with no wave-1 holders are zero.
func TransitionMatrix(ins *survey.Instrument, qid string, options []string, wave1, wave2 []*survey.Response) ([][]float64, error) {
	if len(wave1) == 0 || len(wave1) != len(wave2) {
		return nil, errors.New("trend: panel waves must be equal-length and non-empty")
	}
	q, ok := ins.Question(qid)
	if !ok {
		return nil, fmt.Errorf("trend: unknown question %q", qid)
	}
	if q.Kind != survey.MultiChoice {
		return nil, fmt.Errorf("trend: transition matrix needs multi-choice, %q is %s", qid, q.Kind)
	}
	for _, o := range options {
		found := false
		for _, qo := range q.Options {
			if qo == o {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("trend: option %q not on question %q", o, qid)
		}
	}
	n := len(options)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		holders := 0
		for p := range wave1 {
			if !wave1[p].Selected(qid, options[i]) {
				continue
			}
			holders++
			for j := range options {
				if wave2[p].Selected(qid, options[j]) {
					m[i][j]++
				}
			}
		}
		if holders > 0 {
			for j := range m[i] {
				m[i][j] /= float64(holders)
			}
		}
	}
	return m, nil
}

// NetSwitchers counts people who dropped `from` and picked up `to`
// between waves (the "MATLAB→Python switcher" headline number) and the
// reverse flow.
func NetSwitchers(qid, from, to string, wave1, wave2 []*survey.Response) (fromTo, toFrom int, err error) {
	if len(wave1) == 0 || len(wave1) != len(wave2) {
		return 0, 0, errors.New("trend: panel waves must be equal-length and non-empty")
	}
	for i := range wave1 {
		hadFrom := wave1[i].Selected(qid, from)
		hadTo := wave1[i].Selected(qid, to)
		hasFrom := wave2[i].Selected(qid, from)
		hasTo := wave2[i].Selected(qid, to)
		if hadFrom && !hasFrom && !hadTo && hasTo {
			fromTo++
		}
		if hadTo && !hasTo && !hadFrom && hasFrom {
			toFrom++
		}
	}
	return fromTo, toFrom, nil
}
