// Package trend implements the cohort-comparison engine: per-option
// adoption deltas between survey waves with weighted shares,
// effective-sample-size-adjusted tests, effect sizes, and FDR control;
// plus the survey-vs-telemetry concordance computation. It is the layer
// that turns two piles of responses into the rows of tables R-T3/T4/T6/T7.
package trend

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/modlog"
	"repro/internal/stats"
	"repro/internal/survey"
	"repro/internal/weighting"
)

// Delta is one option's cross-cohort comparison row.
type Delta struct {
	Option     string
	ShareA     float64 // earlier cohort (e.g. 2011)
	ShareB     float64 // later cohort (e.g. 2024)
	CIA        stats.Interval
	CIB        stats.Interval
	Diff       float64 // ShareB - ShareA
	OddsRatio  float64 // B:A odds, Haldane-corrected
	ORLo, ORHi float64
	CohenH     float64
	Z          float64
	P          float64 // raw two-proportion p
	Q          float64 // BH-adjusted across the option set
}

// weightedAdoption returns the weighted share selecting option and the
// Kish effective sample size of the answering base.
func weightedAdoption(ins *survey.Instrument, qid, option string, rs []*survey.Response) (share, effN float64, err error) {
	q, ok := ins.Question(qid)
	if !ok {
		return 0, 0, fmt.Errorf("trend: unknown question %q", qid)
	}
	if q.Kind != survey.SingleChoice && q.Kind != survey.MultiChoice {
		return 0, 0, fmt.Errorf("trend: question %q is %s, need a choice question", qid, q.Kind)
	}
	var sumW, sumW2, hit float64
	for _, r := range rs {
		if !r.Has(qid) {
			continue
		}
		w := r.Weight
		sumW += w
		sumW2 += w * w
		selected := false
		if q.Kind == survey.SingleChoice {
			selected = r.Choice(qid) == option
		} else {
			selected = r.Selected(qid, option)
		}
		if selected {
			hit += w
		}
	}
	if sumW == 0 {
		return 0, 0, fmt.Errorf("trend: no answers to %q", qid)
	}
	return hit / sumW, sumW * sumW / sumW2, nil
}

// CompareCohorts computes a Delta for each option of a choice question
// between cohorts A (earlier) and B (later), with Wilson intervals at
// the effective sample size and Benjamini–Hochberg adjustment across
// the options. Options absent from the question are an error.
func CompareCohorts(ins *survey.Instrument, qid string, options []string, cohortA, cohortB []*survey.Response) ([]Delta, error) {
	if len(cohortA) == 0 || len(cohortB) == 0 {
		return nil, errors.New("trend: both cohorts need responses")
	}
	q, ok := ins.Question(qid)
	if !ok {
		return nil, fmt.Errorf("trend: unknown question %q", qid)
	}
	if len(options) == 0 {
		options = q.Options
	}
	for _, o := range options {
		found := false
		for _, qo := range q.Options {
			if qo == o {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("trend: option %q not on question %q", o, qid)
		}
	}
	deltas := make([]Delta, 0, len(options))
	ps := make([]float64, 0, len(options))
	for _, opt := range options {
		sa, na, err := weightedAdoption(ins, qid, opt, cohortA)
		if err != nil {
			return nil, err
		}
		sb, nb, err := weightedAdoption(ins, qid, opt, cohortB)
		if err != nil {
			return nil, err
		}
		cia, err := stats.WilsonInterval(sa*na, na, 0.95)
		if err != nil {
			return nil, err
		}
		cib, err := stats.WilsonInterval(sb*nb, nb, 0.95)
		if err != nil {
			return nil, err
		}
		z, p, err := stats.TwoProportionZ(sb*nb, nb, sa*na, na)
		if err != nil {
			return nil, err
		}
		or, orLo, orHi, err := stats.Table2x2{
			A: sb * nb, B: (1 - sb) * nb,
			C: sa * na, D: (1 - sa) * na,
		}.OddsRatio()
		if err != nil {
			return nil, err
		}
		h, err := stats.CohenH(sb, sa)
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, Delta{
			Option: opt, ShareA: sa, ShareB: sb, CIA: cia, CIB: cib,
			Diff: sb - sa, OddsRatio: or, ORLo: orLo, ORHi: orHi,
			CohenH: h, Z: z, P: p,
		})
		ps = append(ps, p)
	}
	qs, err := stats.BHAdjust(ps)
	if err != nil {
		return nil, err
	}
	for i := range deltas {
		deltas[i].Q = qs[i]
	}
	// Largest absolute change first: the order trend tables print in.
	sort.SliceStable(deltas, func(a, b int) bool {
		da, db := abs(deltas[a].Diff), abs(deltas[b].Diff)
		if da != db {
			return da > db
		}
		return deltas[a].Option < deltas[b].Option
	})
	return deltas, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FieldBreakdown is the per-field adoption of one option within a single
// cohort (table R-T6's row unit), with FDR-corrected per-field tests
// against the cohort-wide rate.
type FieldBreakdown struct {
	Field string
	Share float64
	EffN  float64
	CI    stats.Interval
	P     float64 // vs cohort-wide share (two-proportion)
	Q     float64
}

// ByField breaks one option's adoption down by research field within a
// cohort, testing each field against the complement of the cohort.
func ByField(ins *survey.Instrument, qid, option string, rs []*survey.Response) ([]FieldBreakdown, error) {
	if len(rs) == 0 {
		return nil, errors.New("trend: no responses")
	}
	byField := map[string][]*survey.Response{}
	for _, r := range rs {
		f := r.Choice(survey.QField)
		if f == "" {
			return nil, fmt.Errorf("trend: response %q has no field", r.ID)
		}
		byField[f] = append(byField[f], r)
	}
	fields := make([]string, 0, len(byField))
	for f := range byField {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	out := make([]FieldBreakdown, 0, len(fields))
	ps := make([]float64, 0, len(fields))
	for _, f := range fields {
		inField := byField[f]
		var rest []*survey.Response
		for _, other := range fields {
			if other != f {
				rest = append(rest, byField[other]...)
			}
		}
		s, n, err := weightedAdoption(ins, qid, option, inField)
		if err != nil {
			return nil, err
		}
		ci, err := stats.WilsonInterval(s*n, n, 0.95)
		if err != nil {
			return nil, err
		}
		fb := FieldBreakdown{Field: f, Share: s, EffN: n, CI: ci, P: 1}
		if len(rest) > 0 {
			sr, nr, err := weightedAdoption(ins, qid, option, rest)
			if err != nil {
				return nil, err
			}
			_, p, err := stats.TwoProportionZ(s*n, n, sr*nr, nr)
			if err != nil {
				return nil, err
			}
			fb.P = p
		}
		out = append(out, fb)
		ps = append(ps, fb.P)
	}
	qs, err := stats.BHAdjust(ps)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i].Q = qs[i]
	}
	return out, nil
}

// Concordance is one row of the survey-vs-telemetry comparison: the
// same construct measured two ways.
type Concordance struct {
	Construct      string
	SurveyShare    float64
	TelemetryShare float64
	Gap            float64 // survey - telemetry
	SameDirection  bool    // do both sources agree on the cross-cohort trend?
}

// LanguageConcordance compares self-reported language usage with
// module-load telemetry for the languages both sources can see, and
// checks whether the 2011→2024 direction of change agrees.
// surveyModules maps survey language options to module names.
func LanguageConcordance(ins *survey.Instrument,
	cohortA, cohortB []*survey.Response,
	telemetryA, telemetryB modlog.YearShares,
	surveyModules map[string]string) ([]Concordance, error) {
	if len(surveyModules) == 0 {
		return nil, errors.New("trend: no language/module mapping")
	}
	langs := make([]string, 0, len(surveyModules))
	for l := range surveyModules {
		langs = append(langs, l)
	}
	sort.Strings(langs)
	out := make([]Concordance, 0, len(langs))
	for _, lang := range langs {
		mod := surveyModules[lang]
		sa, _, err := weightedAdoption(ins, survey.QLanguages, lang, cohortA)
		if err != nil {
			return nil, err
		}
		sb, _, err := weightedAdoption(ins, survey.QLanguages, lang, cohortB)
		if err != nil {
			return nil, err
		}
		ta := telemetryA.Shares[mod]
		tb := telemetryB.Shares[mod]
		out = append(out, Concordance{
			Construct:      lang,
			SurveyShare:    sb,
			TelemetryShare: tb,
			Gap:            sb - tb,
			SameDirection:  sign(sb-sa) == sign(tb-ta),
		})
	}
	return out, nil
}

// DefaultLanguageModuleMap maps survey language options onto module
// names visible in modlog telemetry.
func DefaultLanguageModuleMap() map[string]string {
	return map[string]string{
		"python":  "python",
		"r":       "r",
		"matlab":  "matlab",
		"julia":   "julia",
		"fortran": "fortran",
	}
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// CoAdoption computes the phi coefficient between selecting optA and
// optB on (possibly different) multi-choice questions within one cohort
// — the cell value of the practice co-adoption heatmap (R-F6).
// Fractional weighted counts are fine for phi (unlike Fisher).
func CoAdoption(ins *survey.Instrument, qidA, optA, qidB, optB string, rs []*survey.Response) (float64, error) {
	var t stats.Table2x2
	answered := 0
	for _, r := range rs {
		if !r.Has(qidA) || !r.Has(qidB) {
			continue
		}
		answered++
		w := r.Weight
		a := selectedOn(ins, r, qidA, optA)
		b := selectedOn(ins, r, qidB, optB)
		switch {
		case a && b:
			t.A += w
		case a && !b:
			t.B += w
		case !a && b:
			t.C += w
		default:
			t.D += w
		}
	}
	if answered == 0 {
		return 0, fmt.Errorf("trend: nobody answered both %q and %q", qidA, qidB)
	}
	return t.Phi()
}

func selectedOn(ins *survey.Instrument, r *survey.Response, qid, opt string) bool {
	q, _ := ins.Question(qid)
	if q.Kind == survey.SingleChoice {
		return r.Choice(qid) == opt
	}
	return r.Selected(qid, opt)
}

// HeatmapLabel shortens "continuous integration" → "ci"-style labels for
// the co-adoption figure axes.
func HeatmapLabel(option string) string {
	if i := strings.IndexAny(option, " (/"); i > 0 {
		return option[:i]
	}
	return option
}

// EffectiveBases reports the Kish effective N per cohort for a question,
// the footnote every weighted table needs.
func EffectiveBases(ins *survey.Instrument, qid string, cohorts ...[]*survey.Response) ([]float64, error) {
	out := make([]float64, 0, len(cohorts))
	for _, rs := range cohorts {
		answered := make([]*survey.Response, 0, len(rs))
		for _, r := range rs {
			if r.Has(qid) {
				answered = append(answered, r)
			}
		}
		n, err := weighting.KishEffectiveN(answered)
		if err != nil {
			return nil, fmt.Errorf("trend: effective base for %q: %w", qid, err)
		}
		out = append(out, n)
	}
	return out, nil
}
