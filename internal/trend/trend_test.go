package trend

import (
	"math"
	"testing"

	"repro/internal/modlog"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/survey"
)

func cohorts(t *testing.T) (ins *survey.Instrument, r11, r24 []*survey.Response) {
	t.Helper()
	g11, err := population.NewGenerator(population.Model2011())
	if err != nil {
		t.Fatal(err)
	}
	g24, err := population.NewGenerator(population.Model2024())
	if err != nil {
		t.Fatal(err)
	}
	r11, err = g11.GenerateRespondents(rng.New(21), 500)
	if err != nil {
		t.Fatal(err)
	}
	r24, err = g24.GenerateRespondents(rng.New(22), 800)
	if err != nil {
		t.Fatal(err)
	}
	return g11.Instrument(), r11, r24
}

func TestCompareCohortsLanguages(t *testing.T) {
	ins, r11, r24 := cohorts(t)
	deltas, err := CompareCohorts(ins, survey.QLanguages, nil, r11, r24)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != len(survey.Languages) {
		t.Fatalf("%d deltas", len(deltas))
	}
	byOpt := map[string]Delta{}
	for _, d := range deltas {
		byOpt[d.Option] = d
		if d.P < 0 || d.P > 1 || d.Q < d.P-1e-12 {
			t.Fatalf("bad p/q in %+v", d)
		}
		if d.CIA.Lo > d.ShareA || d.CIA.Hi < d.ShareA {
			t.Fatalf("CI does not bracket share: %+v", d)
		}
		if math.Abs(d.Diff-(d.ShareB-d.ShareA)) > 1e-12 {
			t.Fatalf("diff inconsistent: %+v", d)
		}
	}
	py := byOpt["python"]
	if py.Diff <= 0.2 || py.Q > 0.01 {
		t.Fatalf("python rise not detected: %+v", py)
	}
	if py.OddsRatio <= 1 || py.ORLo <= 1 {
		t.Fatalf("python OR should exceed 1: %+v", py)
	}
	if py.CohenH <= 0 {
		t.Fatalf("python Cohen's h: %+v", py)
	}
	ml := byOpt["matlab"]
	if ml.Diff >= 0 {
		t.Fatalf("matlab should decline: %+v", ml)
	}
	// Sorted by |diff| descending.
	for i := 1; i < len(deltas); i++ {
		if math.Abs(deltas[i].Diff) > math.Abs(deltas[i-1].Diff)+1e-12 {
			t.Fatal("deltas not sorted by |diff|")
		}
	}
}

func TestCompareCohortsErrors(t *testing.T) {
	ins, r11, r24 := cohorts(t)
	if _, err := CompareCohorts(ins, survey.QLanguages, nil, nil, r24); err == nil {
		t.Fatal("empty cohort accepted")
	}
	if _, err := CompareCohorts(ins, "nope", nil, r11, r24); err == nil {
		t.Fatal("unknown question accepted")
	}
	if _, err := CompareCohorts(ins, survey.QLanguages, []string{"cobol"}, r11, r24); err == nil {
		t.Fatal("unknown option accepted")
	}
	if _, err := CompareCohorts(ins, survey.QYearsCoding, nil, r11, r24); err == nil {
		t.Fatal("numeric question accepted")
	}
}

func TestCompareCohortsSingleChoice(t *testing.T) {
	ins, r11, r24 := cohorts(t)
	deltas, err := CompareCohorts(ins, survey.QClusterUse, []string{"daily", "never"}, r11, r24)
	if err != nil {
		t.Fatal(err)
	}
	byOpt := map[string]Delta{}
	for _, d := range deltas {
		byOpt[d.Option] = d
	}
	if byOpt["daily"].Diff <= 0 {
		t.Fatalf("daily cluster use should rise: %+v", byOpt["daily"])
	}
	if byOpt["never"].Diff >= 0 {
		t.Fatalf("never should fall: %+v", byOpt["never"])
	}
}

func TestByField(t *testing.T) {
	ins, _, r24 := cohorts(t)
	rows, err := ByField(ins, survey.QPractices, "version control", r24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("only %d fields", len(rows))
	}
	var cs, soc FieldBreakdown
	for _, fb := range rows {
		if fb.Share < 0 || fb.Share > 1 || fb.Q < fb.P-1e-12 {
			t.Fatalf("bad row %+v", fb)
		}
		if fb.Field == "computer science" {
			cs = fb
		}
		if fb.Field == "sociology" {
			soc = fb
		}
	}
	if cs.Field == "" {
		t.Fatal("no CS row")
	}
	// CS carries a strong positive latent shift; its VCS adoption must be
	// high in absolute terms. (Point comparisons against tiny fields like
	// sociology are sampling noise, so assert the base-size effect
	// instead: the small field's interval is wider.)
	if cs.Share < 0.8 {
		t.Fatalf("cs vcs share %.2f implausibly low", cs.Share)
	}
	if soc.Field != "" && soc.CI.Width() <= cs.CI.Width() {
		t.Fatalf("sociology CI width %.3f not wider than cs %.3f despite tiny base",
			soc.CI.Width(), cs.CI.Width())
	}
	if _, err := ByField(ins, survey.QPractices, "version control", nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestLanguageConcordance(t *testing.T) {
	ins, r11, r24 := cohorts(t)
	r := rng.New(30)
	evA, err := modlog.CampusModulesModel(2011).Generate(r.SplitNamed("2011"))
	if err != nil {
		t.Fatal(err)
	}
	evB, err := modlog.CampusModulesModel(2024).Generate(r.SplitNamed("2024"))
	if err != nil {
		t.Fatal(err)
	}
	aggA := modlog.AggregateByYear(evA)[0]
	aggB := modlog.AggregateByYear(evB)[0]
	rows, err := LanguageConcordance(ins, r11, r24, aggA, aggB, DefaultLanguageModuleMap())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	agree := 0
	for _, c := range rows {
		if c.SurveyShare < 0 || c.SurveyShare > 1 || c.TelemetryShare < 0 || c.TelemetryShare > 1 {
			t.Fatalf("bad row %+v", c)
		}
		if math.Abs(c.Gap-(c.SurveyShare-c.TelemetryShare)) > 1e-12 {
			t.Fatalf("gap inconsistent %+v", c)
		}
		if c.SameDirection {
			agree++
		}
	}
	// Both sources were built from the same era trends: python, matlab,
	// fortran, julia must agree on direction (≥4 of 5).
	if agree < 4 {
		t.Fatalf("only %d/5 constructs agree on direction: %+v", agree, rows)
	}
	if _, err := LanguageConcordance(ins, r11, r24, aggA, aggB, nil); err == nil {
		t.Fatal("empty mapping accepted")
	}
}

func TestCoAdoption(t *testing.T) {
	ins, _, r24 := cohorts(t)
	// CI and VCS are structurally linked by the generator: phi > 0.
	phi, err := CoAdoption(ins, survey.QPractices, "continuous integration",
		survey.QPractices, "version control", r24)
	if err != nil {
		t.Fatal(err)
	}
	if phi <= 0 {
		t.Fatalf("ci/vcs phi = %g, want positive", phi)
	}
	// Across questions: gpu parallelism vs ai assistants both load on
	// the same latent, expect non-negative.
	phi2, err := CoAdoption(ins, survey.QParallelism, "gpu",
		survey.QModernTools, "ai code assistants", r24)
	if err != nil {
		t.Fatal(err)
	}
	if phi2 < -0.3 {
		t.Fatalf("implausibly negative cross-question phi %g", phi2)
	}
	if _, err := CoAdoption(ins, survey.QModernTools, "x", survey.QPractices, "y", nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestHeatmapLabel(t *testing.T) {
	cases := map[string]string{
		"version control":               "version",
		"continuous integration":        "continuous",
		"containers (docker/apptainer)": "containers",
		"gpu":                           "gpu",
		"mpi / multi-node":              "mpi",
	}
	for in, want := range cases {
		if got := HeatmapLabel(in); got != want {
			t.Fatalf("HeatmapLabel(%q)=%q want %q", in, got, want)
		}
	}
}

func TestEffectiveBases(t *testing.T) {
	ins, r11, r24 := cohorts(t)
	ns, err := EffectiveBases(ins, survey.QLanguages, r11, r24)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[0] != 500 || ns[1] != 800 {
		t.Fatalf("unweighted effective bases %v", ns)
	}
	// After perturbing weights, effective N drops.
	r24[0].Weight = 50
	ns, _ = EffectiveBases(ins, survey.QLanguages, r24)
	if ns[0] >= 800 {
		t.Fatalf("weighted effective base %g not below raw", ns[0])
	}
	r24[0].Weight = 1
}
