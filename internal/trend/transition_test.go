package trend

import (
	"testing"

	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/survey"
)

func panelWaves(t *testing.T) (*survey.Instrument, []*survey.Response, []*survey.Response) {
	t.Helper()
	pg, err := population.NewPanelGenerator(population.Model2011(), population.Model2024(), population.PanelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	panel, err := pg.Generate(rng.New(11), 600)
	if err != nil {
		t.Fatal(err)
	}
	return pg.Instrument(), population.Wave1Responses(panel), population.Wave2Responses(panel)
}

func TestRetentions(t *testing.T) {
	ins, w1, w2 := panelWaves(t)
	rets, err := Retentions(ins, survey.QLanguages, w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	byOpt := map[string]Retention{}
	for _, r := range rets {
		byOpt[r.Option] = r
		if r.Keep < 0 || r.Keep > 1 || r.Adopt < 0 || r.Adopt > 1 {
			t.Fatalf("rates out of range: %+v", r)
		}
		if r.HadN+r.NotN != len(w1) {
			t.Fatalf("counts don't partition the panel: %+v", r)
		}
	}
	// Python: adoption among 2011 non-users must be high (the era shift),
	// and retention among users near-total.
	py := byOpt["python"]
	if py.Adopt < 0.5 {
		t.Fatalf("python adoption %.2f too low", py.Adopt)
	}
	if py.Keep < py.Adopt {
		t.Fatalf("python retention %.2f below adoption %.2f", py.Keep, py.Adopt)
	}
	// Matlab: retention well below python's (people drop it), adoption low.
	ml := byOpt["matlab"]
	if ml.Adopt > 0.5 {
		t.Fatalf("matlab adoption %.2f implausibly high", ml.Adopt)
	}
	if ml.Keep <= ml.Adopt {
		t.Fatalf("matlab keep %.2f should still beat adoption %.2f (stickiness)", ml.Keep, ml.Adopt)
	}
}

func TestRetentionsErrors(t *testing.T) {
	ins, w1, w2 := panelWaves(t)
	if _, err := Retentions(ins, survey.QLanguages, w1[:5], w2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Retentions(ins, survey.QLanguages, nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Retentions(ins, survey.QField, w1, w2); err == nil {
		t.Fatal("single-choice accepted")
	}
	if _, err := Retentions(ins, "nope", w1, w2); err == nil {
		t.Fatal("unknown question accepted")
	}
}

func TestTransitionMatrix(t *testing.T) {
	ins, w1, w2 := panelWaves(t)
	opts := []string{"python", "matlab", "fortran", "r"}
	m, err := TransitionMatrix(ins, survey.QLanguages, opts, w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 || len(m[0]) != 4 {
		t.Fatal("matrix shape")
	}
	for i := range m {
		for j := range m[i] {
			if m[i][j] < 0 || m[i][j] > 1 {
				t.Fatalf("cell (%d,%d)=%g", i, j, m[i][j])
			}
		}
	}
	// Row "matlab": P(python in w2 | matlab in w1) must exceed
	// P(fortran in w2 | matlab in w1) — switchers go to python.
	if m[1][0] <= m[1][2] {
		t.Fatalf("matlab holders: python %.2f not above fortran %.2f", m[1][0], m[1][2])
	}
	if _, err := TransitionMatrix(ins, survey.QLanguages, []string{"cobol"}, w1, w2); err == nil {
		t.Fatal("unknown option accepted")
	}
	if _, err := TransitionMatrix(ins, survey.QLanguages, opts, w1, nil); err == nil {
		t.Fatal("mismatched waves accepted")
	}
}

func TestNetSwitchers(t *testing.T) {
	_, w1, w2 := panelWaves(t)
	ml2py, py2ml, err := NetSwitchers(survey.QLanguages, "matlab", "python", w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	if ml2py <= py2ml {
		t.Fatalf("matlab->python %d not above python->matlab %d", ml2py, py2ml)
	}
	if _, _, err := NetSwitchers(survey.QLanguages, "a", "b", w1, nil); err == nil {
		t.Fatal("mismatched waves accepted")
	}
}

func TestTransitionMatrixHandMade(t *testing.T) {
	ins, err := survey.NewInstrument("tm", []survey.Question{
		{ID: "l", Kind: survey.MultiChoice, Options: []string{"a", "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, w1opts, _ []string) *survey.Response {
		r := survey.NewResponse(id, 2011)
		r.SetChoices("l", w1opts)
		return r
	}
	// Two people: p1 had {a}, now has {b}; p2 had {a}, still has {a}.
	w1 := []*survey.Response{mk("1", []string{"a"}, nil), mk("2", []string{"a"}, nil)}
	p1b := survey.NewResponse("1b", 2024)
	p1b.SetChoices("l", []string{"b"})
	p2b := survey.NewResponse("2b", 2024)
	p2b.SetChoices("l", []string{"a"})
	w2 := []*survey.Response{p1b, p2b}
	m, err := TransitionMatrix(ins, "l", []string{"a", "b"}, w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 0.5 || m[0][1] != 0.5 {
		t.Fatalf("row a: %v", m[0])
	}
	// Nobody held b in wave 1: zero row.
	if m[1][0] != 0 || m[1][1] != 0 {
		t.Fatalf("row b: %v", m[1])
	}
	ab, ba, err := NetSwitchers("l", "a", "b", w1, w2)
	if err != nil || ab != 1 || ba != 0 {
		t.Fatalf("switchers %d/%d err=%v", ab, ba, err)
	}
}
