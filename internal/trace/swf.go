package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Standard Workload Format (SWF) support. SWF is the interchange format
// of the Parallel Workloads Archive: one job per line, 18 whitespace-
// separated integer fields, ';' comment lines, -1 for missing values.
// ExportSWF lets traces generated here drive external scheduler
// simulators; ImportSWF lets archive traces drive ours. The SWF schema
// carries less information than Job (no account, language, or GPUs), so
// the mapping is documented field-by-field below and the loss is made
// explicit in ImportSWF's synthesized fields.
//
// Field mapping (1-based SWF field -> Job):
//
//	 1 job number        <- ID
//	 2 submit time       <- Submit
//	 4 run time          <- Elapsed
//	 5 allocated procs   <- Cores()
//	 9 requested time    <- Limit
//	11 status            <- State (1 completed, 0 failed/timeout, 5 cancelled)
//	12 user id           <- numeric suffix of User
//	16 partition number  <- 1 cpu, 2 gpu, 3 other
//
// Remaining fields are -1 on export.

// ExportSWF writes jobs in SWF. Times are emitted relative to the trace
// epoch, matching this package's convention.
func ExportSWF(w io.Writer, jobs []Job) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "; SWF export from rcpt trace (partition 1=cpu 2=gpu)"); err != nil {
		return err
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		status := 1
		switch j.State {
		case StateFailed, StateTimeout:
			status = 0
		case StateCancelled:
			status = 5
		}
		part := 3
		switch j.Partition {
		case "cpu":
			part = 1
		case "gpu":
			part = 2
		}
		uid := userNumber(j.User)
		_, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 %d %d -1 -1 -1 %d -1 -1\n",
			j.ID, j.Submit, j.Elapsed, j.Cores(), j.Cores(), j.Limit, status, uid, part)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// userNumber extracts the numeric suffix of a user name ("u0042" → 42),
// or -1 when there is none.
func userNumber(user string) int {
	i := len(user)
	for i > 0 && user[i-1] >= '0' && user[i-1] <= '9' {
		i--
	}
	if i == len(user) {
		return -1
	}
	n, err := strconv.Atoi(user[i:])
	if err != nil {
		return -1
	}
	return n
}

// ImportSWF parses an SWF stream into jobs. Fields SWF does not carry
// are synthesized: Account "swf", Language "unknown", Year as given,
// CoresPer 1 (SWF reports flat processor counts), GPUs from the
// partition number only when gpuPartition matches (0 disables). Records
// with non-positive runtime or processors are skipped (archive traces
// use them for aborted submissions); malformed lines are errors.
func ImportSWF(r io.Reader, year int, gpuPartition int) ([]Job, error) {
	if year <= 0 {
		return nil, fmt.Errorf("trace: ImportSWF year %d", year)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var jobs []Job
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 18 {
			return nil, fmt.Errorf("trace: swf line %d: %d fields, want 18", line, len(fields))
		}
		get := func(idx int) (int64, error) {
			v, err := strconv.ParseInt(fields[idx-1], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("trace: swf line %d field %d: %w", line, idx, err)
			}
			return v, nil
		}
		id, err := get(1)
		if err != nil {
			return nil, err
		}
		submit, err := get(2)
		if err != nil {
			return nil, err
		}
		runtime, err := get(4)
		if err != nil {
			return nil, err
		}
		procs, err := get(5)
		if err != nil {
			return nil, err
		}
		if procs <= 0 {
			procs, err = get(8) // fall back to requested processors
			if err != nil {
				return nil, err
			}
		}
		reqTime, err := get(9)
		if err != nil {
			return nil, err
		}
		status, err := get(11)
		if err != nil {
			return nil, err
		}
		uid, err := get(12)
		if err != nil {
			return nil, err
		}
		part, err := get(16)
		if err != nil {
			return nil, err
		}
		if runtime <= 0 || procs <= 0 || submit < 0 {
			continue // aborted or placeholder record
		}
		if reqTime < runtime {
			reqTime = runtime // archives contain under-requests; clamp
		}
		state := StateCompleted
		switch status {
		case 0:
			state = StateFailed
		case 5:
			state = StateCancelled
		}
		user := "swf-unknown"
		if uid >= 0 {
			user = fmt.Sprintf("u%04d", uid)
		}
		partition := "cpu"
		gpus := 0
		if gpuPartition > 0 && part == int64(gpuPartition) {
			partition = "gpu"
			gpus = 1 // SWF has no GPU counts; assume one per job
		}
		j := Job{
			ID:        uint64(id),
			User:      user,
			Account:   "swf",
			Partition: partition,
			Year:      year,
			Submit:    submit,
			Nodes:     int(procs),
			CoresPer:  1,
			GPUs:      gpus,
			Limit:     reqTime,
			Elapsed:   runtime,
			State:     state,
			Language:  "unknown",
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: swf line %d: %w", line, err)
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: swf read: %w", err)
	}
	if line == 0 {
		return nil, errors.New("trace: empty swf input")
	}
	return jobs, nil
}
