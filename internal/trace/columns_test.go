package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/table"
)

func genYear(t *testing.T, year int) []Job {
	t.Helper()
	m := CampusModel(year)
	jobs, err := m.Generate(rng.New(42).SplitNamed("trace-test"), uint64(year)*10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestGenerateStreamMatchesGenerate(t *testing.T) {
	m := CampusModel(2024)
	want, err := m.Generate(rng.New(7).SplitNamed("g"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	var got []Job
	maxPending := 0
	pendingProbe := 0
	err = m.GenerateStream(rng.New(7).SplitNamed("g"), 1000, func(j Job) error {
		got = append(got, j)
		pendingProbe = len(want) - len(got)
		if pendingProbe > maxPending {
			maxPending = pendingProbe
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("GenerateStream output differs from Generate")
	}
}

func TestJobColumnsRoundTrip(t *testing.T) {
	jobs := genYear(t, 2024)
	for _, bs := range []int{64, 1000, len(jobs) + 1} {
		tab, err := table.FromSlice[Job](JobCodec{}, table.Options{BatchSize: bs}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := table.Rows[Job](tab)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, jobs) {
			t.Fatalf("BatchSize=%d: jobs differ after columnar round trip", bs)
		}
	}
}

func TestJobColumnsSpillRoundTrip(t *testing.T) {
	jobs := genYear(t, 2011)
	tab, err := table.FromSlice[Job](JobCodec{}, table.Options{
		BatchSize: 512, SpillDir: t.TempDir(), Resident: 2,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := table.Rows[Job](tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, jobs) {
		t.Fatal("jobs differ after spill round trip")
	}
}

func TestSummarizeTableMatchesSlice(t *testing.T) {
	jobs := append(genYear(t, 2011), genYear(t, 2024)...)
	want := SummarizeByYear(jobs)
	tab, err := table.FromSlice[Job](JobCodec{}, table.Options{BatchSize: 777}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SummarizeTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-exact, including the float sums: same accumulation order.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SummarizeTable differs from SummarizeByYear:\n got %+v\nwant %+v", got, want)
	}
}

func TestUserUsageTableMatchesSlice(t *testing.T) {
	jobs := genYear(t, 2024)
	want := UserUsage(jobs)
	tab, err := table.FromSlice[Job](JobCodec{}, table.Options{BatchSize: 300}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UserUsageTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("UserUsageTable differs from UserUsage")
	}
}

func TestWriteAccountingTableBytes(t *testing.T) {
	jobs := genYear(t, 2024)
	var want bytes.Buffer
	if err := WriteAccounting(&want, jobs); err != nil {
		t.Fatal(err)
	}
	tab, err := table.FromSlice[Job](JobCodec{}, table.Options{BatchSize: 129}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteAccountingTable(&got, tab); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("WriteAccountingTable bytes differ from WriteAccounting")
	}
}

func TestJobHashDistinguishesFields(t *testing.T) {
	j := genYear(t, 2024)[0]
	base := JobCodec{}.HashRow(j)
	mut := j
	mut.Elapsed++
	if (JobCodec{}).HashRow(mut) == base {
		t.Fatal("hash ignored Elapsed")
	}
	mut = j
	mut.User += "x"
	if (JobCodec{}).HashRow(mut) == base {
		t.Fatal("hash ignored User")
	}
}
