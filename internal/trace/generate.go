package trace

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// JobClass describes one mode of the workload mixture.
type JobClass struct {
	Name       string
	Weight     float64 // mixture weight (relative)
	Partition  string
	NodesMin   int
	NodesMax   int // inclusive; widths drawn Zipf-ish within the range
	CoresPer   int
	GPUsPer    int     // GPUs per node
	RuntimeMu  float64 // lognormal location of runtime seconds
	RuntimeSig float64
	LimitSlack float64 // requested limit = elapsed * (1 + slack * U)
	// ArrayMax, when > 1, makes this class emit job arrays: one draw
	// becomes 1..ArrayMax near-identical tasks submitted together (the
	// parameter-sweep pattern that dominates research workloads).
	ArrayMax int
}

// WorkloadModel parameterizes one year of synthetic accounting data.
type WorkloadModel struct {
	Year       int
	Users      int     // distinct users, Zipf activity
	JobsPerDay float64 // Poisson arrival intensity
	Days       int
	Classes    []JobClass
	// FieldShare distributes accounts across research fields.
	FieldShare map[string]float64
	// LangShare distributes the dominant toolchain per job (for the
	// telemetry concordance table).
	LangShare map[string]float64
	// FailRate and TimeoutRate are terminal-state probabilities.
	FailRate    float64
	TimeoutRate float64
}

// Validate checks the model.
func (m *WorkloadModel) Validate() error {
	if m.Year <= 0 {
		return fmt.Errorf("trace: workload year %d", m.Year)
	}
	if m.Users <= 0 || m.JobsPerDay <= 0 || m.Days <= 0 {
		return fmt.Errorf("trace: workload needs users, jobs/day and days > 0")
	}
	if len(m.Classes) == 0 {
		return fmt.Errorf("trace: workload has no job classes")
	}
	for _, c := range m.Classes {
		if c.Weight < 0 || c.NodesMin <= 0 || c.NodesMax < c.NodesMin || c.CoresPer <= 0 || c.GPUsPer < 0 {
			return fmt.Errorf("trace: job class %q invalid", c.Name)
		}
	}
	if len(m.FieldShare) == 0 || len(m.LangShare) == 0 {
		return fmt.Errorf("trace: workload needs field and language shares")
	}
	if m.FailRate < 0 || m.TimeoutRate < 0 || m.FailRate+m.TimeoutRate > 1 {
		return fmt.Errorf("trace: invalid failure rates %g/%g", m.FailRate, m.TimeoutRate)
	}
	return nil
}

// Generate produces one year's jobs, sorted by submit time, with IDs
// starting at firstID. Deterministic in r.
func (m *WorkloadModel) Generate(r *rng.RNG, firstID uint64) ([]Job, error) {
	var jobs []Job
	if err := m.GenerateStream(r, firstID, func(j Job) error {
		jobs = append(jobs, j)
		return nil
	}); err != nil {
		return nil, err
	}
	return jobs, nil
}

// GenerateStream produces exactly the jobs Generate would, in the same
// (Submit, ID) order, but emits them incrementally while holding only a
// rolling ~2-day pending buffer instead of the whole year. This is what
// bounds generation memory on 100×–1000× runs.
//
// Correctness of the incremental flush: every job generated on or after
// day d has Submit >= d*86400 (the diurnal draw stays within the day
// and array siblings only push submit forward), so once day d begins,
// pending jobs with Submit < d*86400 are final and can be emitted in
// (Submit, ID) order — the same total order the batch path sorts by.
// RNG consumption is the draw order of the day loop, identical in both
// paths, so the two are byte-equivalent (pinned by tests).
func (m *WorkloadModel) GenerateStream(r *rng.RNG, firstID uint64, emit func(Job) error) error {
	if err := m.Validate(); err != nil {
		return err
	}
	weights := make([]float64, len(m.Classes))
	for i, c := range m.Classes {
		weights[i] = c.Weight
	}
	classAlias, err := rng.NewAlias(weights)
	if err != nil {
		return fmt.Errorf("trace: class mixture: %w", err)
	}
	fieldCat, err := rng.NewCategorical(m.FieldShare)
	if err != nil {
		return fmt.Errorf("trace: field share: %w", err)
	}
	langCat, err := rng.NewCategorical(m.LangShare)
	if err != nil {
		return fmt.Errorf("trace: language share: %w", err)
	}
	userZipf := rng.NewZipf(m.Users, 1.2) // few users dominate, as in real logs

	var pending []Job
	sortPending := func() {
		sort.Slice(pending, func(a, b int) bool {
			if pending[a].Submit != pending[b].Submit {
				return pending[a].Submit < pending[b].Submit
			}
			return pending[a].ID < pending[b].ID
		})
	}
	// flushBefore emits pending jobs with Submit < cutoff in (Submit,
	// ID) order and keeps the rest buffered.
	flushBefore := func(cutoff int64) error {
		sortPending()
		n := sort.Search(len(pending), func(i int) bool { return pending[i].Submit >= cutoff })
		for _, j := range pending[:n] {
			if err := emit(j); err != nil {
				return err
			}
		}
		pending = append(pending[:0], pending[n:]...)
		return nil
	}
	id := firstID
	const day = 86400
	for d := 0; d < m.Days; d++ {
		if err := flushBefore(int64(d * day)); err != nil {
			return err
		}
		// Weekly and diurnal structure: weekends run at under half the
		// weekday rate, and submissions concentrate in working hours —
		// the shape every campus accounting log shows.
		dayFactor := 1.0
		if d%7 >= 5 {
			dayFactor = 0.45
		}
		n := r.Poisson(m.JobsPerDay * dayFactor)
		for k := 0; k < n; k++ {
			c := m.Classes[classAlias.Draw(r)]
			nodes := c.NodesMin
			if c.NodesMax > c.NodesMin {
				// Heavy-tailed width within the class range: most jobs
				// near the minimum, occasional wide ones.
				span := c.NodesMax - c.NodesMin + 1
				z := rng.NewZipf(span, 1.5)
				nodes = c.NodesMin + z.Rank(r)
			}
			elapsed := int64(r.LogNormal(c.RuntimeMu, c.RuntimeSig))
			if elapsed < 30 {
				elapsed = 30
			}
			const maxElapsed = 7 * day
			if elapsed > maxElapsed {
				elapsed = maxElapsed
			}
			limit := elapsed + int64(float64(elapsed)*c.LimitSlack*r.Float64()) + 60
			state := StateCompleted
			switch u := r.Float64(); {
			case u < m.FailRate:
				state = StateFailed
				elapsed = int64(float64(elapsed) * r.Float64()) // died early
				if elapsed < 1 {
					elapsed = 1
				}
			case u < m.FailRate+m.TimeoutRate:
				state = StateTimeout
				elapsed = limit // ran into the wall
			}
			j := Job{
				ID:        id,
				User:      fmt.Sprintf("u%04d", userZipf.Rank(r)),
				Account:   fieldCat.Draw(r),
				Partition: c.Partition,
				Year:      m.Year,
				Submit:    int64(d*day) + diurnalSecond(r),
				Nodes:     nodes,
				CoresPer:  c.CoresPer,
				GPUs:      c.GPUsPer * nodes,
				Limit:     limit,
				Elapsed:   elapsed,
				State:     state,
				Language:  langCat.Draw(r),
			}
			if err := j.Validate(); err != nil {
				return fmt.Errorf("trace: generated invalid job: %w", err)
			}
			pending = append(pending, j)
			id++
			// Job arrays: emit sibling tasks from the same user with
			// the same shape, seconds apart, with per-task runtime
			// jitter — the parameter-sweep burst pattern.
			if c.ArrayMax > 1 && r.Bool(0.3) {
				tasks := 1 + r.Intn(c.ArrayMax)
				for t := 0; t < tasks; t++ {
					sib := j
					sib.ID = id
					sib.Submit = j.Submit + int64(t) + 1
					el := int64(float64(j.Elapsed) * r.Range(0.8, 1.2))
					if el < 1 {
						el = 1
					}
					if el > sib.Limit {
						el = sib.Limit
					}
					sib.Elapsed = el
					if sib.State == StateTimeout {
						sib.Elapsed = sib.Limit
					}
					if err := sib.Validate(); err != nil {
						return fmt.Errorf("trace: generated invalid array task: %w", err)
					}
					pending = append(pending, sib)
					id++
				}
			}
		}
	}
	sortPending()
	for _, j := range pending {
		if err := emit(j); err != nil {
			return err
		}
	}
	return nil
}

// hourWeights is the within-day submission intensity profile (sums to
// 1): quiet overnight, ramping through the morning, peaking early
// afternoon.
var hourWeights = [24]float64{
	0.010, 0.008, 0.007, 0.006, 0.006, 0.008, // 00-05
	0.012, 0.020, 0.040, 0.060, 0.070, 0.075, // 06-11
	0.072, 0.075, 0.078, 0.075, 0.070, 0.060, // 12-17
	0.050, 0.040, 0.032, 0.028, 0.022, 0.016, // 18-23
}

// hourAlias is the cumulative sampler over hourWeights, built once.
var hourAlias = func() *rng.Alias {
	ws := make([]float64, 24)
	copy(ws, hourWeights[:])
	return rng.MustAlias(ws)
}()

// diurnalSecond draws a second-of-day following the diurnal profile.
func diurnalSecond(r *rng.RNG) int64 {
	h := hourAlias.Draw(r)
	return int64(h*3600 + r.Intn(3600))
}

// CampusModel returns the per-year workload model for the synthetic
// campus cluster. gpuGrowth maps the calendar year onto the GPU class
// weight and language mix, reproducing the telemetry-side adoption
// trends (R-F1/F2) without hard-coding any output numbers.
func CampusModel(year int) *WorkloadModel {
	// Interpolation knob: 0 at 2011, 1 at 2024.
	t := float64(year-2011) / 13
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	lerp := func(a, b float64) float64 { return a + (b-a)*t }
	return &WorkloadModel{
		Year:       year,
		Users:      400,
		JobsPerDay: lerp(120, 420),
		Days:       30, // one representative month per year
		Classes: []JobClass{
			{Name: "serial", Weight: lerp(45, 25), Partition: "cpu",
				NodesMin: 1, NodesMax: 1, CoresPer: 1,
				RuntimeMu: 7.5, RuntimeSig: 1.4, LimitSlack: 2.0,
				ArrayMax: 10},
			{Name: "smp", Weight: lerp(25, 28), Partition: "cpu",
				NodesMin: 1, NodesMax: 1, CoresPer: 16,
				RuntimeMu: 8.6, RuntimeSig: 1.2, LimitSlack: 1.5},
			{Name: "mpi-small", Weight: lerp(18, 16), Partition: "cpu",
				NodesMin: 2, NodesMax: 8, CoresPer: 32,
				RuntimeMu: 9.2, RuntimeSig: 1.1, LimitSlack: 1.2},
			{Name: "mpi-wide", Weight: lerp(8, 6), Partition: "cpu",
				NodesMin: 16, NodesMax: 128, CoresPer: 32,
				RuntimeMu: 9.8, RuntimeSig: 1.0, LimitSlack: 1.0},
			{Name: "gpu-single", Weight: lerp(3, 15), Partition: "gpu",
				NodesMin: 1, NodesMax: 1, CoresPer: 8, GPUsPer: 1,
				RuntimeMu: 9.0, RuntimeSig: 1.3, LimitSlack: 1.5,
				ArrayMax: 6},
			{Name: "gpu-train", Weight: lerp(1, 10), Partition: "gpu",
				NodesMin: 1, NodesMax: 8, CoresPer: 16, GPUsPer: 4,
				RuntimeMu: 10.2, RuntimeSig: 1.0, LimitSlack: 0.8},
		},
		FieldShare: map[string]float64{
			"astronomy": 0.06, "biology": 0.12, "chemistry": 0.14,
			"computer science": lerp(0.08, 0.16), "earth science": 0.10,
			"economics": 0.03, "engineering": 0.18, "mathematics": 0.03,
			"neuroscience":      lerp(0.04, 0.08),
			"physics":           lerp(0.26, 0.14),
			"political science": 0.02, "sociology": 0.02,
			"other": lerp(0.04-0.00, 0.00),
		},
		LangShare: map[string]float64{
			"python":  lerp(0.18, 0.62),
			"c":       lerp(0.16, 0.06),
			"c++":     lerp(0.16, 0.12),
			"fortran": lerp(0.30, 0.08),
			"matlab":  lerp(0.14, 0.05),
			"r":       lerp(0.05, 0.05),
			"julia":   lerp(0.00, 0.02),
			"other":   lerp(0.01, 0.00),
		},
		FailRate:    0.06,
		TimeoutRate: 0.04,
	}
}
