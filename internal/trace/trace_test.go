package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func validJob() Job {
	return Job{
		ID: 1, User: "u1", Account: "physics", Partition: "cpu",
		Year: 2024, Submit: 100, Nodes: 2, CoresPer: 16, GPUs: 0,
		Limit: 3600, Elapsed: 1800, State: StateCompleted, Language: "python",
	}
}

func TestJobDerivedQuantities(t *testing.T) {
	j := validJob()
	if j.Cores() != 32 {
		t.Fatalf("cores=%d", j.Cores())
	}
	if j.CPUHours() != 16 {
		t.Fatalf("cpu-hours=%g", j.CPUHours())
	}
	j.GPUs = 4
	j.Elapsed = 3600
	if j.GPUHours() != 4 {
		t.Fatalf("gpu-hours=%g", j.GPUHours())
	}
}

func TestJobValidate(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Job){
		func(j *Job) { j.User = "" },
		func(j *Job) { j.Account = "" },
		func(j *Job) { j.Partition = "" },
		func(j *Job) { j.Nodes = 0 },
		func(j *Job) { j.CoresPer = -1 },
		func(j *Job) { j.GPUs = -2 },
		func(j *Job) { j.Submit = -5 },
		func(j *Job) { j.Limit = 0 },
		func(j *Job) { j.Elapsed = -1 },
		func(j *Job) { j.Elapsed = j.Limit + 1 },
		func(j *Job) { j.State = "RUNNING" },
	}
	for i, mut := range mutations {
		j := validJob()
		mut(&j)
		if err := j.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestAccountingRoundTrip(t *testing.T) {
	jobs := []Job{validJob()}
	j2 := validJob()
	j2.ID = 2
	j2.GPUs = 8
	j2.State = StateTimeout
	j2.Elapsed = j2.Limit
	j2.Language = "fortran"
	jobs = append(jobs, j2)

	var buf bytes.Buffer
	if err := WriteAccounting(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAccounting(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d jobs", len(got))
	}
	for i := range jobs {
		if got[i] != jobs[i] {
			t.Fatalf("job %d: %+v != %+v", i, got[i], jobs[i])
		}
	}
}

func TestWriteAccountingRejectsInvalid(t *testing.T) {
	bad := validJob()
	bad.Nodes = 0
	var buf bytes.Buffer
	if err := WriteAccounting(&buf, []Job{bad}); err == nil {
		t.Fatal("invalid job written")
	}
	sep := validJob()
	sep.User = "a|b"
	if err := WriteAccounting(&buf, []Job{sep}); err == nil {
		t.Fatal("separator in field written")
	}
}

func TestParseAccountingFailureInjection(t *testing.T) {
	header := accountingHeader + "\n"
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"too few fields", header + "1|u|a\n"},
		{"bad id", header + "x|u|a|cpu|2024|0|1|1|0|100|50|COMPLETED|python\n"},
		{"bad year", header + "1|u|a|cpu|twenty|0|1|1|0|100|50|COMPLETED|python\n"},
		{"bad nodes", header + "1|u|a|cpu|2024|0|zero|1|0|100|50|COMPLETED|python\n"},
		{"bad cores", header + "1|u|a|cpu|2024|0|1|x|0|100|50|COMPLETED|python\n"},
		{"bad gpus", header + "1|u|a|cpu|2024|0|1|1|g|100|50|COMPLETED|python\n"},
		{"bad submit", header + "1|u|a|cpu|2024|ten|1|1|0|100|50|COMPLETED|python\n"},
		{"bad state", header + "1|u|a|cpu|2024|0|1|1|0|100|50|WAT|python\n"},
		{"elapsed > limit", header + "1|u|a|cpu|2024|0|1|1|0|100|500|COMPLETED|python\n"},
	}
	for _, c := range cases {
		if _, err := ParseAccounting(strings.NewReader(c.input)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	// Blank lines are tolerated.
	ok := header + "\n1|u|a|cpu|2024|0|1|1|0|100|50|COMPLETED|python\n\n"
	jobs, err := ParseAccounting(strings.NewReader(ok))
	if err != nil || len(jobs) != 1 {
		t.Fatalf("blank-line input: %v %d", err, len(jobs))
	}
}

func TestWorkloadValidate(t *testing.T) {
	m := CampusModel(2024)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := CampusModel(2024)
	bad.Classes = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no classes accepted")
	}
	bad = CampusModel(2024)
	bad.FailRate = 0.9
	bad.TimeoutRate = 0.2
	if err := bad.Validate(); err == nil {
		t.Fatal("rates > 1 accepted")
	}
	bad = CampusModel(2024)
	bad.Users = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero users accepted")
	}
	bad = CampusModel(2024)
	bad.Classes[0].NodesMax = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestGenerateWorkload(t *testing.T) {
	m := CampusModel(2024)
	jobs, err := m.Generate(rng.New(3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 5000 {
		t.Fatalf("only %d jobs for a 30-day month at ~420/day", len(jobs))
	}
	prev := int64(-1)
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Submit < prev {
			t.Fatal("jobs not sorted by submit time")
		}
		prev = j.Submit
		if j.Year != 2024 {
			t.Fatalf("year %d", j.Year)
		}
	}
	if jobs[0].ID < 1000 {
		t.Fatalf("first ID %d", jobs[0].ID)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := CampusModel(2018)
	a, err := m.Generate(rng.New(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Generate(rng.New(7), 0)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestGPUAdoptionGrowsAcrossYears(t *testing.T) {
	r := rng.New(11)
	shareFor := func(year int) float64 {
		jobs, err := CampusModel(year).Generate(r.SplitNamed(fmt2(year)), 0)
		if err != nil {
			t.Fatal(err)
		}
		gpu := 0
		for _, j := range jobs {
			if j.GPUs > 0 {
				gpu++
			}
		}
		return float64(gpu) / float64(len(jobs))
	}
	s2011 := shareFor(2011)
	s2017 := shareFor(2017)
	s2024 := shareFor(2024)
	if !(s2011 < s2017 && s2017 < s2024) {
		t.Fatalf("gpu job share not rising: 2011=%.3f 2017=%.3f 2024=%.3f", s2011, s2017, s2024)
	}
	if s2024 < 0.15 {
		t.Fatalf("2024 gpu share %.3f too low", s2024)
	}
}

func fmt2(y int) string { return "year-" + string(rune('a'+y-2011)) }

func TestSummarizeByYear(t *testing.T) {
	r := rng.New(13)
	var jobs []Job
	for _, y := range []int{2011, 2024} {
		js, err := CampusModel(y).Generate(r.SplitNamed(fmt2(y)), uint64(y)*1000000)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, js...)
	}
	sums := SummarizeByYear(jobs)
	if len(sums) != 2 || sums[0].Year != 2011 || sums[1].Year != 2024 {
		t.Fatalf("summaries %+v", sums)
	}
	for _, s := range sums {
		if s.Jobs <= 0 || s.CPUHours <= 0 {
			t.Fatalf("degenerate summary %+v", s)
		}
		if s.MedianCores > s.MeanCores {
			t.Fatalf("year %d: median %g above mean %g — width tail missing",
				s.Year, s.MedianCores, s.MeanCores)
		}
		if s.P99Cores < s.MedianCores {
			t.Fatalf("year %d: p99 below median", s.Year)
		}
	}
	if sums[1].GPUHours <= sums[0].GPUHours {
		t.Fatal("gpu-hours did not grow 2011→2024")
	}
	if sums[1].GPUJobShare <= sums[0].GPUJobShare {
		t.Fatal("gpu job share did not grow")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := SummarizeByYear(nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestQuantileSortedLocal(t *testing.T) {
	if quantileSorted(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if quantileSorted([]float64{7}, 0.9) != 7 {
		t.Fatal("single quantile")
	}
	if got := quantileSorted([]float64{1, 2, 3, 4}, 1.0); got != 4 {
		t.Fatalf("q=1 gave %g", got)
	}
}

// Property: accounting round-trip is the identity on valid jobs.
func TestQuickAccountingRoundTrip(t *testing.T) {
	f := func(id uint64, nodes, cores, gpus uint8, submit, elapsed uint16, lang uint8) bool {
		j := Job{
			ID: id, User: "u", Account: "bio", Partition: "gpu",
			Year: 2020, Submit: int64(submit),
			Nodes: int(nodes%64) + 1, CoresPer: int(cores%64) + 1,
			GPUs:  int(gpus % 8),
			Limit: int64(elapsed) + 100, Elapsed: int64(elapsed),
			State:    StateCompleted,
			Language: []string{"python", "c", "fortran"}[lang%3],
		}
		var buf bytes.Buffer
		if err := WriteAccounting(&buf, []Job{j}); err != nil {
			return false
		}
		got, err := ParseAccounting(&buf)
		return err == nil && len(got) == 1 && got[0] == j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiurnalAndWeeklyStructure(t *testing.T) {
	jobs, err := CampusModel(2024).Generate(rng.New(77), 0)
	if err != nil {
		t.Fatal(err)
	}
	var workHours, nightHours int // 09-17 vs 00-08
	var weekday, weekend int
	for _, j := range jobs {
		second := j.Submit % 86400
		hour := second / 3600
		switch {
		case hour >= 9 && hour < 17:
			workHours++
		case hour < 8:
			nightHours++
		}
		if (j.Submit/86400)%7 >= 5 {
			weekend++
		} else {
			weekday++
		}
	}
	if workHours < nightHours*3 {
		t.Fatalf("no diurnal structure: work %d vs night %d", workHours, nightHours)
	}
	// Weekdays: 22 of 30 days at full rate; weekends 8 days at 0.45.
	// Per-day weekday rate must dominate per-day weekend rate.
	perWeekday := float64(weekday) / 22
	perWeekend := float64(weekend) / 8
	if perWeekday < perWeekend*1.5 {
		t.Fatalf("no weekly structure: %f vs %f per day", perWeekday, perWeekend)
	}
}

func TestUserUsage(t *testing.T) {
	j1 := validJob() // 32 cores, 1800s => 16 cpu-hours
	j2 := validJob()
	j2.ID = 2
	j2.User = "u2"
	j3 := validJob()
	j3.ID = 3 // same user as j1
	usage := UserUsage([]Job{j1, j2, j3})
	if len(usage) != 2 || usage["u1"] != 32 || usage["u2"] != 16 {
		t.Fatalf("usage %v", usage)
	}
	if got := UserUsage(nil); len(got) != 0 {
		t.Fatalf("empty usage %v", got)
	}
}

func TestUsageIsConcentrated(t *testing.T) {
	// The Zipf user-activity model must make usage heavy-tailed: the top
	// 10% of users take well over a third of core-hours.
	jobs, err := CampusModel(2024).Generate(rng.New(31), 0)
	if err != nil {
		t.Fatal(err)
	}
	usage := UserUsage(jobs)
	vals := make([]float64, 0, len(usage))
	for _, v := range usage {
		vals = append(vals, v)
	}
	if len(vals) < 100 {
		t.Fatalf("only %d users", len(vals))
	}
	sum, top := 0.0, 0.0
	sorted := append([]float64(nil), vals...)
	sortFloat64s(sorted)
	for _, v := range sorted {
		sum += v
	}
	k := len(sorted) / 10
	for _, v := range sorted[len(sorted)-k:] {
		top += v
	}
	if top/sum < 0.35 {
		t.Fatalf("top-decile share %.2f not concentrated", top/sum)
	}
}

func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestJobArraysEmitted(t *testing.T) {
	jobs, err := CampusModel(2024).Generate(rng.New(41), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Array siblings: same user, 1-core serial shape, submitted seconds
	// apart with consecutive IDs. Count runs of >= 4 consecutive-ID
	// same-user serial jobs.
	byID := make(map[uint64]Job, len(jobs))
	var maxID uint64
	for _, j := range jobs {
		byID[j.ID] = j
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	bursts := 0
	run := 1
	for id := uint64(1); id <= maxID; id++ {
		cur, ok1 := byID[id]
		prev, ok2 := byID[id-1]
		if ok1 && ok2 && cur.User == prev.User && cur.Cores() == 1 && prev.Cores() == 1 &&
			cur.Submit-prev.Submit <= 2 && cur.Submit >= prev.Submit {
			run++
			if run == 4 {
				bursts++
			}
		} else {
			run = 1
		}
	}
	if bursts < 20 {
		t.Fatalf("only %d array bursts detected", bursts)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
