// Package trace models cluster accounting data: job records, a
// Slurm-sacct-style text encoding with a strict parser, and a synthetic
// workload generator whose per-year job mix follows the cohort model
// (GPU share rising, widths heavy-tailed). It substitutes for the
// Princeton Research Computing accounting logs the paper analyzed; the
// downstream analysis (tables R-T5, figures R-F2/F3/F7 and the
// scheduler simulation) consumes only the Job type, so a real sacct
// export can be dropped in via ParseAccounting.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// JobState is the terminal state of a job in the accounting log.
type JobState string

// Job states mirroring the sacct vocabulary the parser accepts.
const (
	StateCompleted JobState = "COMPLETED"
	StateFailed    JobState = "FAILED"
	StateTimeout   JobState = "TIMEOUT"
	StateCancelled JobState = "CANCELLED"
)

func validState(s JobState) bool {
	switch s {
	case StateCompleted, StateFailed, StateTimeout, StateCancelled:
		return true
	}
	return false
}

// Job is one accounting record. Times are in seconds relative to the
// trace epoch (the simulator and generators agree on this convention).
type Job struct {
	ID        uint64
	User      string
	Account   string // research field the allocation belongs to
	Partition string // "cpu", "gpu", or "bigmem"
	Year      int    // calendar year of submission
	Submit    int64  // seconds since trace epoch
	Nodes     int
	CoresPer  int   // cores per node
	GPUs      int   // total GPUs
	Limit     int64 // requested walltime, seconds
	Elapsed   int64 // actual runtime, seconds
	State     JobState
	Language  string // dominant toolchain, for survey/telemetry concordance
}

// Cores returns total cores (nodes × cores per node).
func (j Job) Cores() int { return j.Nodes * j.CoresPer }

// CPUHours returns core-hours consumed.
func (j Job) CPUHours() float64 { return float64(j.Cores()) * float64(j.Elapsed) / 3600 }

// GPUHours returns GPU-hours consumed.
func (j Job) GPUHours() float64 { return float64(j.GPUs) * float64(j.Elapsed) / 3600 }

// Validate checks internal consistency.
func (j Job) Validate() error {
	switch {
	case j.User == "":
		return fmt.Errorf("trace: job %d has no user", j.ID)
	case j.Account == "":
		return fmt.Errorf("trace: job %d has no account", j.ID)
	case j.Partition == "":
		return fmt.Errorf("trace: job %d has no partition", j.ID)
	case j.Nodes <= 0:
		return fmt.Errorf("trace: job %d has %d nodes", j.ID, j.Nodes)
	case j.CoresPer <= 0:
		return fmt.Errorf("trace: job %d has %d cores/node", j.ID, j.CoresPer)
	case j.GPUs < 0:
		return fmt.Errorf("trace: job %d has %d gpus", j.ID, j.GPUs)
	case j.Submit < 0:
		return fmt.Errorf("trace: job %d submitted at %d", j.ID, j.Submit)
	case j.Limit <= 0:
		return fmt.Errorf("trace: job %d has limit %d", j.ID, j.Limit)
	case j.Elapsed < 0 || j.Elapsed > j.Limit:
		return fmt.Errorf("trace: job %d elapsed %d outside [0, limit %d]", j.ID, j.Elapsed, j.Limit)
	case !validState(j.State):
		return fmt.Errorf("trace: job %d has unknown state %q", j.ID, j.State)
	}
	return nil
}

// accountingHeader is the first line of the text format.
const accountingHeader = "JobID|User|Account|Partition|Year|Submit|NNodes|CoresPerNode|NGPUs|Timelimit|Elapsed|State|Language"

// WriteAccounting streams jobs in the pipe-separated accounting format.
func WriteAccounting(w io.Writer, jobs []Job) error {
	aw, err := newAccountingWriter(w)
	if err != nil {
		return err
	}
	for _, j := range jobs {
		if err := aw.writeJob(j); err != nil {
			return err
		}
	}
	return aw.flush()
}

// accountingWriter is the row-at-a-time core of WriteAccounting, shared
// with the table-streaming variant so both emit identical bytes.
type accountingWriter struct {
	bw *bufio.Writer
}

func newAccountingWriter(w io.Writer) (*accountingWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, accountingHeader); err != nil {
		return nil, err
	}
	return &accountingWriter{bw: bw}, nil
}

func (aw *accountingWriter) writeJob(j Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if strings.Contains(j.User, "|") || strings.Contains(j.Account, "|") || strings.Contains(j.Language, "|") {
		return fmt.Errorf("trace: job %d has a field containing the separator", j.ID)
	}
	_, err := fmt.Fprintf(aw.bw, "%d|%s|%s|%s|%d|%d|%d|%d|%d|%d|%d|%s|%s\n",
		j.ID, j.User, j.Account, j.Partition, j.Year, j.Submit,
		j.Nodes, j.CoresPer, j.GPUs, j.Limit, j.Elapsed, j.State, j.Language)
	return err
}

func (aw *accountingWriter) flush() error { return aw.bw.Flush() }

// ParseAccounting reads the accounting format, validating each record.
// Errors carry the 1-based line number.
func ParseAccounting(r io.Reader) ([]Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	var jobs []Job
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if line == 1 {
			if text != accountingHeader {
				return nil, fmt.Errorf("trace: line 1: bad header %q", text)
			}
			continue
		}
		if text == "" {
			continue
		}
		fields := strings.Split(text, "|")
		if len(fields) != 13 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 13", line, len(fields))
		}
		var j Job
		var err error
		if j.ID, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: job id: %w", line, err)
		}
		j.User, j.Account, j.Partition = fields[1], fields[2], fields[3]
		ints := []struct {
			dst  *int64
			name string
			idx  int
		}{
			{&j.Submit, "submit", 5},
			{&j.Limit, "timelimit", 9},
			{&j.Elapsed, "elapsed", 10},
		}
		if y, err := strconv.Atoi(fields[4]); err != nil {
			return nil, fmt.Errorf("trace: line %d: year: %w", line, err)
		} else {
			j.Year = y
		}
		for _, f := range ints {
			v, err := strconv.ParseInt(fields[f.idx], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %s: %w", line, f.name, err)
			}
			*f.dst = v
		}
		if j.Nodes, err = strconv.Atoi(fields[6]); err != nil {
			return nil, fmt.Errorf("trace: line %d: nodes: %w", line, err)
		}
		if j.CoresPer, err = strconv.Atoi(fields[7]); err != nil {
			return nil, fmt.Errorf("trace: line %d: cores: %w", line, err)
		}
		if j.GPUs, err = strconv.Atoi(fields[8]); err != nil {
			return nil, fmt.Errorf("trace: line %d: gpus: %w", line, err)
		}
		j.State = JobState(fields[11])
		j.Language = fields[12]
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if line == 0 {
		return nil, errors.New("trace: empty input")
	}
	return jobs, nil
}

// YearSummary aggregates one calendar year of accounting data, the row
// type of table R-T5.
type YearSummary struct {
	Year        int
	Jobs        int
	CPUHours    float64
	GPUHours    float64
	GPUJobShare float64 // fraction of jobs requesting any GPU
	MedianCores float64
	MeanCores   float64
	P99Cores    float64
	FailedShare float64
}

// SummarizeByYear groups jobs by year and computes per-year summaries,
// sorted by year ascending.
func SummarizeByYear(jobs []Job) []YearSummary {
	byYear := map[int][]Job{}
	for _, j := range jobs {
		byYear[j.Year] = append(byYear[j.Year], j)
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearSummary, 0, len(years))
	for _, y := range years {
		js := byYear[y]
		s := YearSummary{Year: y, Jobs: len(js)}
		cores := make([]float64, len(js))
		gpuJobs, failed := 0, 0
		for i, j := range js {
			s.CPUHours += j.CPUHours()
			s.GPUHours += j.GPUHours()
			cores[i] = float64(j.Cores())
			if j.GPUs > 0 {
				gpuJobs++
			}
			if j.State == StateFailed || j.State == StateTimeout {
				failed++
			}
		}
		sort.Float64s(cores)
		s.MedianCores = quantileSorted(cores, 0.5)
		s.P99Cores = quantileSorted(cores, 0.99)
		sum := 0.0
		for _, c := range cores {
			sum += c
		}
		s.MeanCores = sum / float64(len(cores))
		s.GPUJobShare = float64(gpuJobs) / float64(len(js))
		s.FailedShare = float64(failed) / float64(len(js))
		out = append(out, s)
	}
	return out
}

// quantileSorted is a local type-7 quantile on sorted data (duplicated
// from stats to keep trace dependency-light; covered by tests).
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(h)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// UserUsage aggregates core-hours (CPU + GPU-weighted) per user over a
// job set, the input to the usage-concentration analysis.
func UserUsage(jobs []Job) map[string]float64 {
	out := map[string]float64{}
	for _, j := range jobs {
		out[j.User] += j.CPUHours() + j.GPUHours()
	}
	return out
}
