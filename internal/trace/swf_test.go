package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestSWFExportImportRoundTrip(t *testing.T) {
	jobs, err := CampusModel(2020).Generate(rng.New(3), 100)
	if err != nil {
		t.Fatal(err)
	}
	jobs = jobs[:500]
	var buf bytes.Buffer
	if err := ExportSWF(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ImportSWF(&buf, 2020, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(got), len(jobs))
	}
	for i, g := range got {
		orig := jobs[i]
		if g.ID != orig.ID || g.Submit != orig.Submit || g.Elapsed != orig.Elapsed {
			t.Fatalf("job %d: core fields lost: %+v vs %+v", i, g, orig)
		}
		// SWF carries flat processor counts: total cores preserved.
		if g.Cores() != orig.Cores() {
			t.Fatalf("job %d: cores %d vs %d", i, g.Cores(), orig.Cores())
		}
		if (g.Partition == "gpu") != (orig.Partition == "gpu") {
			t.Fatalf("job %d: partition lost", i)
		}
		if g.Limit < g.Elapsed {
			t.Fatalf("job %d: limit below runtime", i)
		}
		// Documented loss: account and language are synthesized.
		if g.Account != "swf" || g.Language != "unknown" {
			t.Fatalf("job %d: synthesized fields wrong: %+v", i, g)
		}
	}
}

func TestSWFStatusMapping(t *testing.T) {
	j := validJob()
	j.State = StateFailed
	j.Elapsed = 100
	var buf bytes.Buffer
	if err := ExportSWF(&buf, []Job{j}); err != nil {
		t.Fatal(err)
	}
	got, err := ImportSWF(&buf, 2024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].State != StateFailed {
		t.Fatalf("state %q", got[0].State)
	}
	// Timeout degrades to failed (SWF has no timeout status).
	j.State = StateTimeout
	j.Elapsed = j.Limit
	buf.Reset()
	_ = ExportSWF(&buf, []Job{j})
	got, _ = ImportSWF(&buf, 2024, 0)
	if got[0].State != StateFailed {
		t.Fatalf("timeout mapped to %q", got[0].State)
	}
}

func TestImportSWFHandlesArchiveQuirks(t *testing.T) {
	input := `; comment header
; more comments
1 0 -1 100 4 -1 -1 4 200 -1 1 7 -1 -1 -1 1 -1 -1
2 50 -1 -1 4 -1 -1 4 200 -1 1 7 -1 -1 -1 1 -1 -1
3 60 -1 100 -1 -1 -1 8 200 -1 1 7 -1 -1 -1 1 -1 -1
4 70 -1 300 2 -1 -1 2 100 -1 1 -1 -1 -1 -1 1 -1 -1
`
	jobs, err := ImportSWF(strings.NewReader(input), 2015, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 has runtime -1 → skipped. Job 3 falls back to requested
	// procs. Job 4 has limit < runtime → clamped, and uid -1 → synthetic
	// user.
	if len(jobs) != 3 {
		t.Fatalf("%d jobs", len(jobs))
	}
	if jobs[1].Cores() != 8 {
		t.Fatalf("requested-procs fallback: %d", jobs[1].Cores())
	}
	if jobs[2].Limit != 300 {
		t.Fatalf("limit clamp: %d", jobs[2].Limit)
	}
	if jobs[2].User != "swf-unknown" {
		t.Fatalf("user %q", jobs[2].User)
	}
	if jobs[0].User != "u0007" {
		t.Fatalf("user %q", jobs[0].User)
	}
}

func TestImportSWFErrors(t *testing.T) {
	cases := []string{
		"",        // empty
		"1 2 3\n", // too few fields
		"x 0 -1 100 4 -1 -1 4 200 -1 1 7 -1 -1 -1 1 -1 -1\n", // bad int
	}
	for i, c := range cases {
		if _, err := ImportSWF(strings.NewReader(c), 2015, 0); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, err := ImportSWF(strings.NewReader("; x\n"), 0, 0); err == nil {
		t.Fatal("year 0 accepted")
	}
}

func TestImportedSWFSchedulable(t *testing.T) {
	// Imported archive jobs must drive the simulator directly.
	input := "; archive\n" +
		"1 0 -1 600 16 -1 -1 16 700 -1 1 1 -1 -1 -1 1 -1 -1\n" +
		"2 10 -1 600 16 -1 -1 16 700 -1 1 2 -1 -1 -1 1 -1 -1\n"
	jobs, err := ImportSWF(strings.NewReader(input), 2015, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUserNumber(t *testing.T) {
	cases := map[string]int{"u0042": 42, "alice": -1, "x9": 9, "": -1, "123": 123}
	for in, want := range cases {
		if got := userNumber(in); got != want {
			t.Fatalf("userNumber(%q)=%d want %d", in, got, want)
		}
	}
}
