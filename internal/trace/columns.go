package trace

import (
	"io"
	"sort"

	"repro/internal/table"
)

// JobColumns is the struct-of-arrays batch form of []Job: one column
// per field, with the low-cardinality strings (user, account,
// partition, state, language) dictionary-encoded and the monotone
// columns (ID, Submit) delta-encoded on the wire. A 10k-row batch
// carries five small dictionaries instead of 50k string headers.
type JobColumns struct {
	ids       []uint64
	users     []uint32
	accounts  []uint32
	parts     []uint32
	years     []int32
	submits   []int64
	nodes     []int32
	coresPer  []int32
	gpus      []int32
	limits    []int64
	elapseds  []int64
	states    []uint32
	languages []uint32

	userDict Dict
	acctDict Dict
	partDict Dict
	stateDict Dict
	langDict Dict
}

// Dict aliases table.Dict so trace callers don't import table for it.
type Dict = table.Dict

// Append implements table.Columns.
func (c *JobColumns) Append(j Job) {
	c.ids = append(c.ids, j.ID)
	c.users = append(c.users, c.userDict.Code(j.User))
	c.accounts = append(c.accounts, c.acctDict.Code(j.Account))
	c.parts = append(c.parts, c.partDict.Code(j.Partition))
	c.years = append(c.years, int32(j.Year))
	c.submits = append(c.submits, j.Submit)
	c.nodes = append(c.nodes, int32(j.Nodes))
	c.coresPer = append(c.coresPer, int32(j.CoresPer))
	c.gpus = append(c.gpus, int32(j.GPUs))
	c.limits = append(c.limits, j.Limit)
	c.elapseds = append(c.elapseds, j.Elapsed)
	c.states = append(c.states, c.stateDict.Code(string(j.State)))
	c.languages = append(c.languages, c.langDict.Code(j.Language))
}

// Len implements table.Columns.
func (c *JobColumns) Len() int { return len(c.ids) }

// Row implements table.Columns.
func (c *JobColumns) Row(i int) Job {
	return Job{
		ID:        c.ids[i],
		User:      c.userDict.Value(c.users[i]),
		Account:   c.acctDict.Value(c.accounts[i]),
		Partition: c.partDict.Value(c.parts[i]),
		Year:      int(c.years[i]),
		Submit:    c.submits[i],
		Nodes:     int(c.nodes[i]),
		CoresPer:  int(c.coresPer[i]),
		GPUs:      int(c.gpus[i]),
		Limit:     c.limits[i],
		Elapsed:   c.elapseds[i],
		State:     JobState(c.stateDict.Value(c.states[i])),
		Language:  c.langDict.Value(c.languages[i]),
	}
}

// Reset implements table.Columns.
func (c *JobColumns) Reset() {
	c.ids = c.ids[:0]
	c.users, c.accounts, c.parts = c.users[:0], c.accounts[:0], c.parts[:0]
	c.years, c.submits = c.years[:0], c.submits[:0]
	c.nodes, c.coresPer, c.gpus = c.nodes[:0], c.coresPer[:0], c.gpus[:0]
	c.limits, c.elapseds = c.limits[:0], c.elapseds[:0]
	c.states, c.languages = c.states[:0], c.languages[:0]
	c.userDict.Reset()
	c.acctDict.Reset()
	c.partDict.Reset()
	c.stateDict.Reset()
	c.langDict.Reset()
}

// EncodeTo implements table.Columns. IDs and submit times are stored as
// deltas (both are non-decreasing within a generated batch; the signed
// encoding also covers out-of-order inputs).
func (c *JobColumns) EncodeTo(w *table.Writer) error {
	for _, d := range []*Dict{&c.userDict, &c.acctDict, &c.partDict, &c.stateDict, &c.langDict} {
		d.EncodeTo(w)
	}
	w.Uvarint(uint64(len(c.ids)))
	prevID, prevSub := int64(0), int64(0)
	for i := range c.ids {
		w.Varint(int64(c.ids[i]) - prevID)
		prevID = int64(c.ids[i])
		w.Varint(c.submits[i] - prevSub)
		prevSub = c.submits[i]
		w.Uvarint(uint64(c.users[i]))
		w.Uvarint(uint64(c.accounts[i]))
		w.Uvarint(uint64(c.parts[i]))
		w.Varint(int64(c.years[i]))
		w.Uvarint(uint64(c.nodes[i]))
		w.Uvarint(uint64(c.coresPer[i]))
		w.Uvarint(uint64(c.gpus[i]))
		w.Varint(c.limits[i])
		w.Varint(c.elapseds[i])
		w.Uvarint(uint64(c.states[i]))
		w.Uvarint(uint64(c.languages[i]))
	}
	return w.Err()
}

// DecodeFrom implements table.Columns.
func (c *JobColumns) DecodeFrom(r *table.Reader) error {
	c.Reset()
	for _, d := range []*Dict{&c.userDict, &c.acctDict, &c.partDict, &c.stateDict, &c.langDict} {
		d.DecodeFrom(r)
	}
	n := r.Uvarint()
	prevID, prevSub := int64(0), int64(0)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		prevID += r.Varint()
		c.ids = append(c.ids, uint64(prevID))
		prevSub += r.Varint()
		c.submits = append(c.submits, prevSub)
		c.users = append(c.users, uint32(r.Uvarint()))
		c.accounts = append(c.accounts, uint32(r.Uvarint()))
		c.parts = append(c.parts, uint32(r.Uvarint()))
		c.years = append(c.years, int32(r.Varint()))
		c.nodes = append(c.nodes, int32(r.Uvarint()))
		c.coresPer = append(c.coresPer, int32(r.Uvarint()))
		c.gpus = append(c.gpus, int32(r.Uvarint()))
		c.limits = append(c.limits, r.Varint())
		c.elapseds = append(c.elapseds, r.Varint())
		c.states = append(c.states, uint32(r.Uvarint()))
		c.languages = append(c.languages, uint32(r.Uvarint()))
	}
	return r.Err()
}

// MemBytes implements table.Columns.
func (c *JobColumns) MemBytes() int {
	n := len(c.ids)
	fixed := n * (8 + 4*7 + 8*3) // per-row column bytes
	dicts := c.userDict.MemBytes() + c.acctDict.MemBytes() + c.partDict.MemBytes() +
		c.stateDict.MemBytes() + c.langDict.MemBytes()
	return fixed + dicts
}

// JobCodec binds Job to its columnar form and content hash.
type JobCodec struct{}

// NewColumns implements table.Codec.
func (JobCodec) NewColumns() table.Columns[Job] { return &JobColumns{} }

// HashRow implements table.Codec: every field that reaches an artifact
// is mixed in.
func (JobCodec) HashRow(j Job) uint64 {
	h := table.HashInit()
	h = table.HashUint64(h, j.ID)
	h = table.HashString(h, j.User)
	h = table.HashString(h, j.Account)
	h = table.HashString(h, j.Partition)
	h = table.HashInt64(h, int64(j.Year))
	h = table.HashInt64(h, j.Submit)
	h = table.HashInt64(h, int64(j.Nodes))
	h = table.HashInt64(h, int64(j.CoresPer))
	h = table.HashInt64(h, int64(j.GPUs))
	h = table.HashInt64(h, j.Limit)
	h = table.HashInt64(h, j.Elapsed)
	h = table.HashString(h, string(j.State))
	h = table.HashString(h, j.Language)
	return h
}

// JobTable is the streaming form of a job trace.
type JobTable = table.Table[Job]

// WriteAccountingTable streams a job table in the accounting format,
// byte-identical to WriteAccounting over the same rows — one row in
// flight, never a materialized []Job.
func WriteAccountingTable(w io.Writer, t JobTable) error {
	aw, err := newAccountingWriter(w)
	if err != nil {
		return err
	}
	var werr error
	err = table.Each(t, func(j Job) bool {
		werr = aw.writeJob(j)
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	if err != nil {
		return err
	}
	return aw.flush()
}

// SummarizeTable is the streaming equivalent of SummarizeByYear: one
// sequential scan, per-year accumulators updated in row order so the
// float sums are bit-identical to the slice version (which also folds
// in per-year encounter order). Cores are still collected per year for
// the quantiles — collect-then-sort is order-free — at 8 bytes/job
// instead of the ~130 bytes/job a materialized []Job costs.
func SummarizeTable(t JobTable) ([]YearSummary, error) {
	type acc struct {
		s       YearSummary
		cores   []float64
		gpuJobs int
		failed  int
	}
	byYear := map[int]*acc{}
	err := table.Each(t, func(j Job) bool {
		a := byYear[j.Year]
		if a == nil {
			a = &acc{s: YearSummary{Year: j.Year}}
			byYear[j.Year] = a
		}
		a.s.Jobs++
		a.s.CPUHours += j.CPUHours()
		a.s.GPUHours += j.GPUHours()
		a.cores = append(a.cores, float64(j.Cores()))
		if j.GPUs > 0 {
			a.gpuJobs++
		}
		if j.State == StateFailed || j.State == StateTimeout {
			a.failed++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	years := make([]int, 0, len(byYear))
	for y := range byYear {
		years = append(years, y)
	}
	sort.Ints(years)
	out := make([]YearSummary, 0, len(years))
	for _, y := range years {
		a := byYear[y]
		sort.Float64s(a.cores)
		a.s.MedianCores = quantileSorted(a.cores, 0.5)
		a.s.P99Cores = quantileSorted(a.cores, 0.99)
		sum := 0.0
		for _, c := range a.cores {
			sum += c
		}
		a.s.MeanCores = sum / float64(len(a.cores))
		a.s.GPUJobShare = float64(a.gpuJobs) / float64(a.s.Jobs)
		a.s.FailedShare = float64(a.failed) / float64(a.s.Jobs)
		out = append(out, a.s)
	}
	return out, nil
}

// UserUsageTable is the streaming equivalent of UserUsage: per-user
// float sums accumulated in row order (order-sensitive — single scan).
func UserUsageTable(t JobTable) (map[string]float64, error) {
	out := map[string]float64{}
	err := table.Each(t, func(j Job) bool {
		out[j.User] += j.CPUHours() + j.GPUHours()
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
