// Package textcode implements the open-response coding pipeline: a
// tokenizer and normalizer, a keyword taxonomy that maps free text to
// analysis categories (with longest-phrase-first matching), TF-IDF
// scoring for "what terms characterize this category", and term
// co-occurrence counts. This is the machinery that turns the survey's
// "what limits your computational research?" answers into the coded
// categories of table R-T6.
package textcode

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize lowercases text and splits it into word tokens, treating any
// non-letter/digit rune as a separator except intra-word '-', '/', '+'
// and '.' (so "snakemake/nextflow", "c++" and "4.2" survive). Tokens are
// trimmed of leading/trailing connector punctuation.
func Tokenize(text string) []string {
	text = strings.ToLower(text)
	isWordRune := func(r rune) bool {
		return unicode.IsLetter(r) || unicode.IsDigit(r) ||
			r == '-' || r == '/' || r == '+' || r == '.'
	}
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := strings.Trim(b.String(), "-/.")
		if tok != "" {
			tokens = append(tokens, tok)
		}
		b.Reset()
	}
	for _, r := range text {
		if isWordRune(r) {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords is the small English stopword list used by TF-IDF; taxonomy
// matching does not filter stopwords (phrases may contain them).
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true,
	"have": true, "i": true, "in": true, "is": true, "it": true, "its": true,
	"my": true, "of": true, "on": true, "or": true, "our": true, "so": true,
	"that": true, "the": true, "their": true, "this": true, "to": true,
	"too": true, "was": true, "we": true, "with": true, "you": true,
	"most": true, "even": true, "keeps": true, "takes": true, "eat": true,
}

// IsStopword reports whether tok is on the stopword list.
func IsStopword(tok string) bool { return stopwords[tok] }

// Taxonomy maps categories to trigger phrases. Matching is done on the
// token stream: a phrase matches when its tokens appear contiguously.
// Longer phrases are tried first so "queue wait" beats "wait".
type Taxonomy struct {
	categories []string
	// phrases sorted by descending token length, each entry is
	// (tokenized phrase, category index).
	phrases []taxPhrase
}

type taxPhrase struct {
	tokens []string
	cat    int
}

// NewTaxonomy builds a taxonomy from category -> phrases. Every category
// needs at least one phrase; phrases must tokenize to at least one token
// and be unique across categories.
func NewTaxonomy(def map[string][]string) (*Taxonomy, error) {
	if len(def) == 0 {
		return nil, errors.New("textcode: empty taxonomy")
	}
	cats := make([]string, 0, len(def))
	for c := range def {
		if c == "" {
			return nil, errors.New("textcode: empty category name")
		}
		cats = append(cats, c)
	}
	sort.Strings(cats)
	t := &Taxonomy{categories: cats}
	seen := map[string]string{}
	for ci, c := range cats {
		phrases := def[c]
		if len(phrases) == 0 {
			return nil, fmt.Errorf("textcode: category %q has no phrases", c)
		}
		for _, p := range phrases {
			toks := Tokenize(p)
			if len(toks) == 0 {
				return nil, fmt.Errorf("textcode: category %q phrase %q tokenizes to nothing", c, p)
			}
			key := strings.Join(toks, " ")
			if prev, dup := seen[key]; dup {
				return nil, fmt.Errorf("textcode: phrase %q in both %q and %q", p, prev, c)
			}
			seen[key] = c
			t.phrases = append(t.phrases, taxPhrase{tokens: toks, cat: ci})
		}
	}
	sort.SliceStable(t.phrases, func(a, b int) bool {
		return len(t.phrases[a].tokens) > len(t.phrases[b].tokens)
	})
	return t, nil
}

// Categories returns the sorted category names.
func (t *Taxonomy) Categories() []string { return t.categories }

// Code returns the set of categories whose phrases match the text, in
// sorted order. A text can code to multiple categories; no match returns
// nil.
func (t *Taxonomy) Code(text string) []string {
	toks := Tokenize(text)
	if len(toks) == 0 {
		return nil
	}
	matched := map[int]bool{}
	for _, p := range t.phrases {
		if matched[p.cat] {
			continue
		}
		if containsPhrase(toks, p.tokens) {
			matched[p.cat] = true
		}
	}
	if len(matched) == 0 {
		return nil
	}
	out := make([]string, 0, len(matched))
	for ci := range matched {
		out = append(out, t.categories[ci])
	}
	sort.Strings(out)
	return out
}

// CodeAll codes every text and returns per-category counts plus the
// number of texts that matched nothing (the "other" bucket every coding
// exercise must report).
func (t *Taxonomy) CodeAll(texts []string) (counts map[string]int, uncoded int) {
	counts = make(map[string]int, len(t.categories))
	for _, c := range t.categories {
		counts[c] = 0
	}
	for _, txt := range texts {
		cats := t.Code(txt)
		if len(cats) == 0 {
			uncoded++
			continue
		}
		for _, c := range cats {
			counts[c]++
		}
	}
	return counts, uncoded
}

func containsPhrase(toks, phrase []string) bool {
	if len(phrase) > len(toks) {
		return false
	}
outer:
	for i := 0; i+len(phrase) <= len(toks); i++ {
		for j, p := range phrase {
			if toks[i+j] != p {
				continue outer
			}
		}
		return true
	}
	return false
}

// BottleneckTaxonomy is the coding frame for the QBottleneck free-text
// item, aligned with the population generator's phrase bank.
func BottleneckTaxonomy() *Taxonomy {
	t, err := NewTaxonomy(map[string][]string{
		"compute capacity": {
			"compute time", "queue wait", "gpu hours", "cluster", "simulations take",
		},
		"software engineering": {
			"legacy code", "no tests", "dependency", "environment problems",
			"porting", "codebase",
		},
		"people and training": {
			"software training", "graduated", "hiring", "learn better tools",
			"research software engineers",
		},
		"data management": {
			"datasets", "data cleaning", "i/o", "sharing data", "storing",
		},
	})
	if err != nil {
		panic("textcode: bottleneck taxonomy invalid: " + err.Error())
	}
	return t
}

// Corpus accumulates documents for TF-IDF and co-occurrence analysis.
type Corpus struct {
	docs [][]string
	df   map[string]int
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus { return &Corpus{df: map[string]int{}} }

// Add tokenizes and stores one document, dropping stopwords.
func (c *Corpus) Add(text string) {
	toks := Tokenize(text)
	kept := make([]string, 0, len(toks))
	seen := map[string]bool{}
	for _, tok := range toks {
		if IsStopword(tok) {
			continue
		}
		kept = append(kept, tok)
		if !seen[tok] {
			seen[tok] = true
			c.df[tok]++
		}
	}
	c.docs = append(c.docs, kept)
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.docs) }

// TermScore is a term with its aggregate TF-IDF weight.
type TermScore struct {
	Term  string
	Score float64
}

// TopTerms returns the k highest TF-IDF terms across the corpus
// (smoothed idf = ln(1 + N/df)), ties broken alphabetically.
func (c *Corpus) TopTerms(k int) []TermScore {
	if k <= 0 || len(c.docs) == 0 {
		return nil
	}
	n := float64(len(c.docs))
	agg := map[string]float64{}
	for _, doc := range c.docs {
		if len(doc) == 0 {
			continue
		}
		tf := map[string]float64{}
		for _, tok := range doc {
			tf[tok]++
		}
		for tok, f := range tf {
			idf := math.Log(1 + n/float64(c.df[tok]))
			agg[tok] += (f / float64(len(doc))) * idf
		}
	}
	out := make([]TermScore, 0, len(agg))
	for term, s := range agg {
		out = append(out, TermScore{Term: term, Score: s})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Term < out[b].Term
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// Cooccurrence returns how many documents contain both a and b.
func (c *Corpus) Cooccurrence(a, b string) int {
	count := 0
	for _, doc := range c.docs {
		hasA, hasB := false, false
		for _, tok := range doc {
			if tok == a {
				hasA = true
			}
			if tok == b {
				hasB = true
			}
		}
		if hasA && hasB {
			count++
		}
	}
	return count
}
