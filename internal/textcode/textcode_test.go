package textcode

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/survey"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"Hello, World!", "hello world"},
		{"C++ and c-code", "c++ and c-code"},
		{"snakemake/nextflow rocks", "snakemake/nextflow rocks"},
		{"version 4.2 (beta)", "version 4.2 beta"},
		{"trailing-dash- -leading", "trailing-dash leading"},
		{"", ""},
		{"...", ""},
		{"I/O dominates", "i/o dominates"},
	}
	for _, c := range cases {
		got := strings.Join(Tokenize(c.in), " ")
		if got != c.want {
			t.Fatalf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTaxonomyValidation(t *testing.T) {
	if _, err := NewTaxonomy(nil); err == nil {
		t.Fatal("empty taxonomy accepted")
	}
	if _, err := NewTaxonomy(map[string][]string{"": {"x"}}); err == nil {
		t.Fatal("empty category accepted")
	}
	if _, err := NewTaxonomy(map[string][]string{"a": {}}); err == nil {
		t.Fatal("phrase-less category accepted")
	}
	if _, err := NewTaxonomy(map[string][]string{"a": {"!!!"}}); err == nil {
		t.Fatal("untokenizable phrase accepted")
	}
	if _, err := NewTaxonomy(map[string][]string{"a": {"same phrase"}, "b": {"same phrase"}}); err == nil {
		t.Fatal("duplicate phrase accepted")
	}
}

func TestTaxonomyCode(t *testing.T) {
	tax, err := NewTaxonomy(map[string][]string{
		"hardware": {"gpu", "queue wait"},
		"people":   {"training"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tax.Code("We need more GPU time"); len(got) != 1 || got[0] != "hardware" {
		t.Fatalf("got %v", got)
	}
	if got := tax.Code("the queue wait is long and we lack training"); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got := tax.Code("nothing relevant here"); got != nil {
		t.Fatalf("got %v", got)
	}
	if got := tax.Code(""); got != nil {
		t.Fatalf("got %v", got)
	}
	// Phrase must be contiguous: "queue ... wait" apart does not match.
	if got := tax.Code("the queue makes us wait"); got != nil {
		t.Fatalf("non-contiguous phrase matched: %v", got)
	}
}

func TestCodeAll(t *testing.T) {
	tax, _ := NewTaxonomy(map[string][]string{
		"x": {"alpha"},
		"y": {"beta"},
	})
	counts, uncoded := tax.CodeAll([]string{"alpha beta", "alpha", "gamma", ""})
	if counts["x"] != 2 || counts["y"] != 1 || uncoded != 2 {
		t.Fatalf("counts=%v uncoded=%d", counts, uncoded)
	}
}

func TestBottleneckTaxonomyCoversGeneratorPhrases(t *testing.T) {
	// Every phrase the population generator can emit must code to at
	// least one category — the loop the study depends on.
	tax := BottleneckTaxonomy()
	g, err := population.NewGenerator(population.Model2024())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := g.GenerateRespondents(rng.New(5), 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		text := r.Text(survey.QBottleneck)
		if text == "" {
			t.Fatalf("respondent %s has no bottleneck text", r.ID)
		}
		if cats := tax.Code(text); len(cats) == 0 {
			t.Fatalf("uncodable generator phrase: %q", text)
		}
	}
}

func TestCorpusTopTerms(t *testing.T) {
	c := NewCorpus()
	c.Add("the gpu cluster is slow")
	c.Add("the gpu queue is slow")
	c.Add("data cleaning is slow")
	if c.Len() != 3 {
		t.Fatalf("len=%d", c.Len())
	}
	top := c.TopTerms(3)
	if len(top) != 3 {
		t.Fatalf("top=%v", top)
	}
	// "slow" appears in all docs (low idf); "gpu" in 2; unique terms get
	// highest idf. Scores must be positive and sorted descending.
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatalf("not sorted: %v", top)
		}
	}
	for _, ts := range top {
		if ts.Score <= 0 {
			t.Fatalf("nonpositive score: %v", ts)
		}
		if IsStopword(ts.Term) {
			t.Fatalf("stopword %q survived", ts.Term)
		}
	}
	if got := c.TopTerms(0); got != nil {
		t.Fatal("k=0 should be nil")
	}
	if got := NewCorpus().TopTerms(5); got != nil {
		t.Fatal("empty corpus should be nil")
	}
	// k beyond vocabulary size returns the whole vocabulary.
	if got := c.TopTerms(10000); len(got) == 0 || len(got) > 20 {
		t.Fatalf("huge k gave %d terms", len(got))
	}
}

func TestCooccurrence(t *testing.T) {
	c := NewCorpus()
	c.Add("gpu cluster slow")
	c.Add("gpu fast")
	c.Add("cluster busy")
	if got := c.Cooccurrence("gpu", "cluster"); got != 1 {
		t.Fatalf("cooc=%d", got)
	}
	if got := c.Cooccurrence("gpu", "nonexistent"); got != 0 {
		t.Fatalf("cooc=%d", got)
	}
}

// Property: tokenization output contains no separators or uppercase and
// coding never panics on arbitrary input.
func TestQuickTokenizeClean(t *testing.T) {
	tax := BottleneckTaxonomy()
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" || strings.ToLower(tok) != tok {
				return false
			}
			if strings.ContainsAny(tok, " \t\n,!?") {
				return false
			}
		}
		_ = tax.Code(s) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
