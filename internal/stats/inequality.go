package stats

import (
	"fmt"
	"sort"
)

// Inequality measures for resource-concentration analysis ("the top 10%
// of users consume most of the core-hours").

// Gini returns the Gini coefficient of non-negative values: 0 for
// perfect equality, approaching 1 as one observation takes everything.
// Uses the sorted-rank formula G = (2 Σ i·x_i)/(n Σ x_i) − (n+1)/n.
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return 0, fmt.Errorf("stats: Gini needs non-negative values, got %g", sorted[0])
	}
	n := float64(len(sorted))
	var sum, weighted float64
	for i, x := range sorted {
		sum += x
		weighted += float64(i+1) * x
	}
	if sum == 0 {
		return 0, nil // everyone has nothing: perfectly equal
	}
	return 2*weighted/(n*sum) - (n+1)/n, nil
}

// Lorenz returns the Lorenz curve of non-negative values as matched
// population-share and value-share points (both starting at 0 and
// ending at 1), suitable for plotting.
func Lorenz(xs []float64) (popShare, valueShare []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return nil, nil, fmt.Errorf("stats: Lorenz needs non-negative values, got %g", sorted[0])
	}
	total := 0.0
	for _, x := range sorted {
		total += x
	}
	n := float64(len(sorted))
	popShare = make([]float64, len(sorted)+1)
	valueShare = make([]float64, len(sorted)+1)
	cum := 0.0
	for i, x := range sorted {
		cum += x
		popShare[i+1] = float64(i+1) / n
		if total > 0 {
			valueShare[i+1] = cum / total
		} else {
			valueShare[i+1] = popShare[i+1] // degenerate: equality line
		}
	}
	return popShare, valueShare, nil
}

// TopShare returns the fraction of the total held by the top q fraction
// of observations (e.g. q=0.1 for "the top 10%").
func TopShare(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("stats: TopShare q=%g out of (0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if sorted[0] < 0 {
		return 0, fmt.Errorf("stats: TopShare needs non-negative values")
	}
	total := 0.0
	for _, x := range sorted {
		total += x
	}
	if total == 0 {
		return 0, nil
	}
	k := int(float64(len(sorted))*q + 0.5)
	if k < 1 {
		k = 1
	}
	top := 0.0
	for _, x := range sorted[len(sorted)-k:] {
		top += x
	}
	return top / total, nil
}

// WeightedQuantile returns the q-th quantile of values under weights
// (non-negative, not all zero): the smallest x whose cumulative weight
// share reaches q.
func WeightedQuantile(xs, ws []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, fmt.Errorf("stats: %d values but %d weights", len(xs), len(ws))
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	type pair struct{ x, w float64 }
	ps := make([]pair, len(xs))
	total := 0.0
	for i := range xs {
		if ws[i] < 0 {
			return 0, fmt.Errorf("stats: negative weight %g at index %d", ws[i], i)
		}
		ps[i] = pair{xs[i], ws[i]}
		total += ws[i]
	}
	if total == 0 {
		return 0, fmt.Errorf("stats: weights sum to zero")
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].x < ps[b].x })
	target := q * total
	cum := 0.0
	for _, p := range ps {
		cum += p.w
		if cum >= target-1e-12 {
			return p.x, nil
		}
	}
	return ps[len(ps)-1].x, nil
}
