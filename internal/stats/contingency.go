package stats

import (
	"errors"
	"fmt"
	"math"
)

// Contingency is an r×c table of observed counts, the core object for
// "did practice X differ between cohorts / fields" questions.
type Contingency struct {
	Rows, Cols int
	counts     []float64 // row-major; float64 so weighted counts work
}

// NewContingency allocates an r×c table of zeros.
func NewContingency(rows, cols int) (*Contingency, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("stats: contingency needs >= 2x2, got %dx%d", rows, cols)
	}
	return &Contingency{Rows: rows, Cols: cols, counts: make([]float64, rows*cols)}, nil
}

// FromCounts builds a table from row-major integer counts.
func FromCounts(rows, cols int, counts []float64) (*Contingency, error) {
	t, err := NewContingency(rows, cols)
	if err != nil {
		return nil, err
	}
	if len(counts) != rows*cols {
		return nil, fmt.Errorf("stats: %d counts for %dx%d table", len(counts), rows, cols)
	}
	for i, c := range counts {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("stats: invalid count %g at index %d", c, i)
		}
	}
	copy(t.counts, counts)
	return t, nil
}

// Add increments cell (r, c) by w (typically 1, or a survey weight).
func (t *Contingency) Add(r, c int, w float64) error {
	if r < 0 || r >= t.Rows || c < 0 || c >= t.Cols {
		return fmt.Errorf("stats: cell (%d,%d) out of %dx%d table", r, c, t.Rows, t.Cols)
	}
	if w < 0 {
		return fmt.Errorf("stats: negative increment %g", w)
	}
	t.counts[r*t.Cols+c] += w
	return nil
}

// At returns the count in cell (r, c).
func (t *Contingency) At(r, c int) float64 { return t.counts[r*t.Cols+c] }

// RowSum returns the marginal total of row r.
func (t *Contingency) RowSum(r int) float64 {
	s := 0.0
	for c := 0; c < t.Cols; c++ {
		s += t.At(r, c)
	}
	return s
}

// ColSum returns the marginal total of column c.
func (t *Contingency) ColSum(c int) float64 {
	s := 0.0
	for r := 0; r < t.Rows; r++ {
		s += t.At(r, c)
	}
	return s
}

// Total returns the grand total.
func (t *Contingency) Total() float64 {
	s := 0.0
	for _, v := range t.counts {
		s += v
	}
	return s
}

// ChiSquareResult carries the test statistic, degrees of freedom,
// p-value, and Cramér's V effect size.
type ChiSquareResult struct {
	Stat    float64
	DF      int
	P       float64
	CramerV float64
}

// ChiSquare runs Pearson's chi-square test of independence. It returns
// an error when any expected cell count is zero (a degenerate margin).
func (t *Contingency) ChiSquare() (ChiSquareResult, error) {
	n := t.Total()
	if n == 0 {
		return ChiSquareResult{}, errors.New("stats: chi-square on empty table")
	}
	stat := 0.0
	for r := 0; r < t.Rows; r++ {
		rs := t.RowSum(r)
		for c := 0; c < t.Cols; c++ {
			cs := t.ColSum(c)
			exp := rs * cs / n
			if exp == 0 {
				return ChiSquareResult{}, fmt.Errorf("stats: zero expected count in cell (%d,%d)", r, c)
			}
			d := t.At(r, c) - exp
			stat += d * d / exp
		}
	}
	df := (t.Rows - 1) * (t.Cols - 1)
	k := t.Rows
	if t.Cols < k {
		k = t.Cols
	}
	v := math.Sqrt(stat / (n * float64(k-1)))
	return ChiSquareResult{Stat: stat, DF: df, P: ChiSquareSF(stat, df), CramerV: v}, nil
}

// GTest runs the likelihood-ratio G-test of independence, which behaves
// better than Pearson for sparse-but-nonzero tables.
func (t *Contingency) GTest() (ChiSquareResult, error) {
	n := t.Total()
	if n == 0 {
		return ChiSquareResult{}, errors.New("stats: G-test on empty table")
	}
	g := 0.0
	for r := 0; r < t.Rows; r++ {
		rs := t.RowSum(r)
		for c := 0; c < t.Cols; c++ {
			cs := t.ColSum(c)
			exp := rs * cs / n
			if exp == 0 {
				return ChiSquareResult{}, fmt.Errorf("stats: zero expected count in cell (%d,%d)", r, c)
			}
			obs := t.At(r, c)
			if obs > 0 {
				g += obs * math.Log(obs/exp)
			}
		}
	}
	g *= 2
	df := (t.Rows - 1) * (t.Cols - 1)
	k := t.Rows
	if t.Cols < k {
		k = t.Cols
	}
	v := math.Sqrt(g / (n * float64(k-1)))
	return ChiSquareResult{Stat: g, DF: df, P: ChiSquareSF(g, df), CramerV: v}, nil
}

// Table2x2 is a 2×2 count table with the exact and effect-size methods
// that only make sense there.
type Table2x2 struct {
	A, B, C, D float64 // [A B; C D], rows = group, cols = outcome
}

// FisherExact returns the two-sided Fisher exact p-value via the
// hypergeometric distribution, summing probabilities of all tables with
// the same margins that are no more likely than the observed one.
// Counts must be non-negative integers (fractional weighted counts are
// rejected: exact tests are defined on integer counts).
func (t Table2x2) FisherExact() (float64, error) {
	a, b, c, d := t.A, t.B, t.C, t.D
	for _, v := range []float64{a, b, c, d} {
		if v < 0 || v != math.Trunc(v) {
			return 0, fmt.Errorf("stats: Fisher exact needs non-negative integer counts, got %v", t)
		}
	}
	ai, bi, ci, di := int(a), int(b), int(c), int(d)
	r1 := ai + bi
	r2 := ci + di
	c1 := ai + ci
	n := r1 + r2
	if n == 0 {
		return 0, errors.New("stats: Fisher exact on empty table")
	}
	logP := func(x int) float64 {
		// P(X = x) for hypergeometric with margins r1, r2, c1.
		return lnFactorial(r1) + lnFactorial(r2) + lnFactorial(c1) + lnFactorial(n-c1) -
			lnFactorial(n) - lnFactorial(x) - lnFactorial(r1-x) - lnFactorial(c1-x) - lnFactorial(r2-c1+x)
	}
	lo := 0
	if c1-r2 > lo {
		lo = c1 - r2
	}
	hi := r1
	if c1 < hi {
		hi = c1
	}
	obs := logP(ai)
	const slack = 1e-7 // tolerate float noise when comparing likelihoods
	p := 0.0
	for x := lo; x <= hi; x++ {
		lp := logP(x)
		if lp <= obs+slack {
			p += math.Exp(lp)
		}
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// OddsRatio returns the sample odds ratio (A*D)/(B*C) with the
// Haldane–Anscombe 0.5 correction applied when any cell is zero, plus a
// 95% log-normal confidence interval.
func (t Table2x2) OddsRatio() (or, lo, hi float64, err error) {
	a, b, c, d := t.A, t.B, t.C, t.D
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return 0, 0, 0, fmt.Errorf("stats: negative cell in %v", t)
	}
	if a+b == 0 || c+d == 0 {
		return 0, 0, 0, errors.New("stats: odds ratio with an empty row")
	}
	if a == 0 || b == 0 || c == 0 || d == 0 {
		a, b, c, d = a+0.5, b+0.5, c+0.5, d+0.5
	}
	or = (a * d) / (b * c)
	se := math.Sqrt(1/a + 1/b + 1/c + 1/d)
	z := 1.959963984540054 // qnorm(0.975)
	lo = math.Exp(math.Log(or) - z*se)
	hi = math.Exp(math.Log(or) + z*se)
	return or, lo, hi, nil
}

// Phi returns the phi coefficient (Pearson correlation of two binary
// variables) for the 2×2 table; NaN-free: returns an error when a margin
// is zero.
func (t Table2x2) Phi() (float64, error) {
	a, b, c, d := t.A, t.B, t.C, t.D
	den := (a + b) * (c + d) * (a + c) * (b + d)
	if den == 0 {
		return 0, errors.New("stats: phi undefined with a zero margin")
	}
	return (a*d - b*c) / math.Sqrt(den), nil
}

// TwoProportionZ tests H0: p1 == p2 given successes/trials for two
// groups, returning the z statistic and two-sided p-value.
func TwoProportionZ(succ1, n1, succ2, n2 float64) (z, p float64, err error) {
	if n1 <= 0 || n2 <= 0 {
		return 0, 0, fmt.Errorf("stats: two-proportion z needs positive trials, got %g and %g", n1, n2)
	}
	if succ1 < 0 || succ1 > n1 || succ2 < 0 || succ2 > n2 {
		return 0, 0, fmt.Errorf("stats: successes out of range")
	}
	p1 := succ1 / n1
	p2 := succ2 / n2
	pool := (succ1 + succ2) / (n1 + n2)
	se := math.Sqrt(pool * (1 - pool) * (1/n1 + 1/n2))
	if se == 0 {
		// Both groups all-success or all-failure: no evidence of difference.
		return 0, 1, nil
	}
	z = (p1 - p2) / se
	p = 2 * (1 - NormalCDF(math.Abs(z)))
	return z, p, nil
}
