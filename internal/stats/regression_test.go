package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Fatalf("r2=%g", fit.R2)
	}
	if fit.PSlope > 1e-9 {
		t.Fatalf("exact fit p=%g", fit.PSlope)
	}
	if !almostEq(fit.Predict(10), 21, 1e-12) {
		t.Fatalf("predict %g", fit.Predict(10))
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	r := rng.New(41)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 5 + 0.3*xs[i] + r.NormMeanStd(0, 2)
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.3) > 0.02 {
		t.Fatalf("slope %g", fit.Slope)
	}
	if fit.PSlope > 1e-6 {
		t.Fatalf("strong trend p=%g", fit.PSlope)
	}
	if fit.R2 < 0.8 {
		t.Fatalf("r2=%g", fit.R2)
	}
	if fit.SlopeSE <= 0 {
		t.Fatalf("se=%g", fit.SlopeSE)
	}
}

func TestLinearRegressionNull(t *testing.T) {
	r := rng.New(42)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = r.NormMeanStd(3, 1)
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PSlope < 0.01 {
		t.Fatalf("null trend rejected with p=%g", fit.PSlope)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := LinearRegression([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Fatal("zero x variance accepted")
	}
	if _, err := LinearRegression([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := rng.New(43)
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = r.Norm()
		ys[i] = r.Norm()
	}
	res, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("same distribution rejected: %+v", res)
	}
	if res.D < 0 || res.D > 1 {
		t.Fatalf("d=%g", res.D)
	}
}

func TestKSDifferentDistribution(t *testing.T) {
	r := rng.New(44)
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = r.Norm()
		ys[i] = r.Norm() + 1
	}
	res, err := KolmogorovSmirnov(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("1-sigma shift not detected: %+v", res)
	}
	if _, err := KolmogorovSmirnov(nil, ys); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	res, err := KolmogorovSmirnov(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 || res.P < 0.999 {
		t.Fatalf("identical samples: %+v", res)
	}
}

func TestKruskalWallisDetectsShift(t *testing.T) {
	r := rng.New(45)
	g1 := make([]float64, 80)
	g2 := make([]float64, 80)
	g3 := make([]float64, 80)
	for i := range g1 {
		g1[i] = r.Norm()
		g2[i] = r.Norm()
		g3[i] = r.Norm() + 1.5
	}
	res, err := KruskalWallis(g1, g2, g3)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 2 {
		t.Fatalf("df=%d", res.DF)
	}
	if res.P > 1e-6 {
		t.Fatalf("clear shift not detected: %+v", res)
	}
}

func TestKruskalWallisNull(t *testing.T) {
	r := rng.New(46)
	g1 := make([]float64, 60)
	g2 := make([]float64, 60)
	for i := range g1 {
		g1[i] = r.Float64()
		g2[i] = r.Float64()
	}
	res, err := KruskalWallis(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("null rejected: %+v", res)
	}
}

func TestKruskalWallisDegenerate(t *testing.T) {
	res, err := KruskalWallis([]float64{3, 3}, []float64{3, 3, 3})
	if err != nil || res.P != 1 {
		t.Fatalf("all ties: %+v err=%v", res, err)
	}
	if _, err := KruskalWallis([]float64{1, 2}); err == nil {
		t.Fatal("one group accepted")
	}
	if _, err := KruskalWallis([]float64{1}, nil); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestKendallTau(t *testing.T) {
	tau, err := KendallTau([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})
	if err != nil || !almostEq(tau, 1, 1e-12) {
		t.Fatalf("tau=%g err=%v", tau, err)
	}
	tau, _ = KendallTau([]float64{1, 2, 3, 4}, []float64{8, 6, 4, 2})
	if !almostEq(tau, -1, 1e-12) {
		t.Fatalf("tau=%g", tau)
	}
	// With ties, |tau| < 1 but sign holds.
	tau, _ = KendallTau([]float64{1, 2, 2, 4}, []float64{1, 3, 3, 4})
	if tau <= 0 || tau > 1 {
		t.Fatalf("tied tau=%g", tau)
	}
	if _, err := KendallTau([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
	if _, err := KendallTau([]float64{1}, []float64{2}); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestSortFloatsMatchesStdlib(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(200) + 1
		a := make([]float64, n)
		for i := range a {
			a[i] = r.NormMeanStd(0, 100)
		}
		b := make([]float64, n)
		copy(b, a)
		sortFloats(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: sortFloats diverges at %d", trial, i)
			}
		}
	}
}

// Property: R2 in [0,1] and p in [0,1] on random data with varying x.
func TestQuickRegressionValid(t *testing.T) {
	r := rng.New(48)
	f := func(seed uint16) bool {
		n := int(seed%50) + 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + r.Float64()
			ys[i] = r.NormMeanStd(0, 5)
		}
		fit, err := LinearRegression(xs, ys)
		if err != nil {
			return false
		}
		return fit.R2 >= -1e-9 && fit.R2 <= 1+1e-9 && fit.PSlope >= 0 && fit.PSlope <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
