package stats

import (
	"errors"
	"fmt"
	"math"
)

// LinearFit is an ordinary-least-squares simple linear regression
// y = Intercept + Slope*x with standard inference, used for "is this
// practice trending" questions over yearly series.
type LinearFit struct {
	Slope, Intercept float64
	SlopeSE          float64
	R2               float64
	N                int
	// TSlope and PSlope test H0: slope = 0 (two-sided, Student t with
	// n-2 df).
	TSlope, PSlope float64
}

// LinearRegression fits OLS on paired samples. Requires n >= 3 and
// nonzero x variance.
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: regression length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 3 {
		return LinearFit{}, fmt.Errorf("stats: regression needs >= 3 points, got %d", n)
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: regression undefined for zero x variance")
	}
	fit := LinearFit{N: n}
	fit.Slope = sxy / sxx
	fit.Intercept = my - fit.Slope*mx
	// Residual sum of squares.
	rss := 0.0
	for i := range xs {
		r := ys[i] - fit.Intercept - fit.Slope*xs[i]
		rss += r * r
	}
	if syy > 0 {
		fit.R2 = 1 - rss/syy
	} else {
		fit.R2 = 1 // y constant and perfectly fit by the constant model
	}
	df := float64(n - 2)
	sigma2 := rss / df
	fit.SlopeSE = math.Sqrt(sigma2 / sxx)
	if fit.SlopeSE > 0 {
		fit.TSlope = fit.Slope / fit.SlopeSE
		fit.PSlope = 2 * StudentTSF(math.Abs(fit.TSlope), df)
	} else {
		fit.PSlope = 0 // exact fit with nonzero slope
		if fit.Slope == 0 {
			fit.PSlope = 1
		}
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// KSResult reports the two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	D float64 // max |F1 - F2|
	P float64 // asymptotic two-sided p
}

// KolmogorovSmirnov runs the two-sample KS test with the asymptotic
// Kolmogorov distribution p-value (accurate for n1, n2 >= ~25; fine for
// the trace-scale samples it is used on).
func KolmogorovSmirnov(xs, ys []float64) (KSResult, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return KSResult{}, ErrEmpty
	}
	a, _, err := ECDF(xs)
	if err != nil {
		return KSResult{}, err
	}
	b, _, err := ECDF(ys)
	if err != nil {
		return KSResult{}, err
	}
	n1, n2 := float64(len(a)), float64(len(b))
	d := 0.0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		var v float64
		if a[i] <= b[j] {
			v = a[i]
		} else {
			v = b[j]
		}
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/n1 - float64(j)/n2)
		if diff > d {
			d = diff
		}
	}
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksProb(lambda)}, nil
}

// ksProb is the Kolmogorov distribution tail sum Q(λ).
func ksProb(lambda float64) float64 {
	if lambda < 1e-6 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		sign = -sign
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// KWResult reports the Kruskal–Wallis rank test across k groups.
type KWResult struct {
	H  float64
	DF int
	P  float64
}

// KruskalWallis tests whether k >= 2 samples come from the same
// distribution, with tie correction. Each group needs at least one
// observation.
func KruskalWallis(groups ...[]float64) (KWResult, error) {
	if len(groups) < 2 {
		return KWResult{}, fmt.Errorf("stats: Kruskal-Wallis needs >= 2 groups, got %d", len(groups))
	}
	total := 0
	for gi, g := range groups {
		if len(g) == 0 {
			return KWResult{}, fmt.Errorf("stats: Kruskal-Wallis group %d is empty", gi)
		}
		total += len(g)
	}
	all := make([]float64, 0, total)
	for _, g := range groups {
		all = append(all, g...)
	}
	ranks := Ranks(all)
	n := float64(total)
	h := 0.0
	off := 0
	for _, g := range groups {
		rsum := 0.0
		for i := range g {
			rsum += ranks[off+i]
		}
		off += len(g)
		h += rsum * rsum / float64(len(g))
	}
	h = 12/(n*(n+1))*h - 3*(n+1)
	// Tie correction.
	tieTerm := 0.0
	sorted := make([]float64, len(all))
	copy(sorted, all)
	sortFloats(sorted)
	i := 0
	for i < len(sorted) {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		tieTerm += t*t*t - t
		i = j + 1
	}
	c := 1 - tieTerm/(n*n*n-n)
	if c <= 0 {
		// All values identical: no evidence against the null.
		return KWResult{H: 0, DF: len(groups) - 1, P: 1}, nil
	}
	h /= c
	df := len(groups) - 1
	return KWResult{H: h, DF: df, P: ChiSquareSF(h, df)}, nil
}

func sortFloats(xs []float64) {
	// Local insertion-free wrapper around sort to keep imports tidy.
	quickSort(xs, 0, len(xs)-1)
}

func quickSort(xs []float64, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return
		}
		p := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSort(xs, lo, j)
			lo = i
		} else {
			quickSort(xs, i, hi)
			hi = j
		}
	}
}

// KendallTau returns Kendall's tau-b rank correlation with tie
// handling, an O(n^2) implementation adequate for the yearly series it
// is applied to.
func KendallTau(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: kendall length mismatch %d vs %d", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return 0, fmt.Errorf("stats: kendall needs >= 2 pairs, got %d", n)
	}
	var concordant, discordant, tieX, tieY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// double tie contributes to neither denominator term
			case dx == 0:
				tieX++
			case dy == 0:
				tieY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	den := math.Sqrt((concordant + discordant + tieX) * (concordant + discordant + tieY))
	if den == 0 {
		return 0, errors.New("stats: kendall undefined for constant input")
	}
	return (concordant - discordant) / den, nil
}
