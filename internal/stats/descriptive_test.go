package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("mean=%g err=%v", m, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestWeightedMean(t *testing.T) {
	m, err := WeightedMean([]float64{1, 10}, []float64{3, 1})
	if err != nil || !almostEq(m, 3.25, 1e-12) {
		t.Fatalf("weighted mean=%g err=%v", m, err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Fatal("zero-sum weights accepted")
	}
	if _, err := WeightedMean([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestVarianceStd(t *testing.T) {
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almostEq(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance=%g err=%v", v, err)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Fatal("variance of single value accepted")
	}
	sd, _ := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev=%g", sd)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil || !almostEq(g, 4, 1e-9) {
		t.Fatalf("geomean=%g err=%v", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("geomean accepted zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil || !almostEq(got, tc.want, 1e-12) {
			t.Fatalf("q=%g got %g want %g err=%v", tc.q, got, tc.want, err)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("quantile accepted q>1")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("quantile of empty accepted")
	}
	// Input must not be modified.
	in := []float64{3, 1, 2}
	_, _ = Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || s.Min != 1 || s.Max != 10 || !almostEq(s.Mean, 5.5, 1e-12) {
		t.Fatalf("bad summary %+v", s)
	}
	if !almostEq(s.P50, 5.5, 1e-12) {
		t.Fatalf("median %g", s.P50)
	}
	if s.P25 > s.P50 || s.P50 > s.P75 || s.P75 > s.P90 || s.P90 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{-1, 0, 0.5, 1, 2.5, 5, 10}, 0, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Fatalf("total=%d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Fatalf("bin0=%d", h.Counts[0])
	}
	if !almostEq(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("bin center %g", h.BinCenter(0))
	}
	if _, err := NewHistogram(nil, 5, 5, 3); err == nil {
		t.Fatal("degenerate domain accepted")
	}
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
}

func TestECDF(t *testing.T) {
	pts, probs, err := ECDF([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0] != 1 || pts[2] != 3 {
		t.Fatalf("points %v", pts)
	}
	if !almostEq(probs[2], 1, 1e-12) || !almostEq(probs[0], 1.0/3, 1e-12) {
		t.Fatalf("probs %v", probs)
	}
	if _, _, err := ECDF(nil); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
}

func TestPearson(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Fatalf("r=%g err=%v", r, err)
	}
	r, _ = Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
	if !almostEq(r, -1, 1e-12) {
		t.Fatalf("r=%g", r)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // monotone, nonlinear
	r, err := Spearman(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Fatalf("spearman=%g err=%v", r, err)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks %v want %v", got, want)
		}
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, err1 := Quantile(xs, q1)
		v2, err2 := Quantile(xs, q2)
		if err1 != nil || err2 != nil {
			return false
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return v1 <= v2 && v1 >= sorted[0] && v2 <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies between min and max.
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && math.Abs(v) < 1e15 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m, err := Mean(xs)
		if err != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
