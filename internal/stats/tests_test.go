package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMannWhitneyShifted(t *testing.T) {
	r := rng.New(11)
	xs := make([]float64, 80)
	ys := make([]float64, 80)
	for i := range xs {
		xs[i] = r.NormMeanStd(0, 1)
		ys[i] = r.NormMeanStd(1.2, 1)
	}
	res, err := MannWhitneyU(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.001 {
		t.Fatalf("clear shift but p=%g", res.P)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	r := rng.New(12)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = r.NormMeanStd(5, 2)
		ys[i] = r.NormMeanStd(5, 2)
	}
	res, err := MannWhitneyU(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("identical distributions but p=%g", res.P)
	}
}

func TestMannWhitneyAllTies(t *testing.T) {
	res, err := MannWhitneyU([]float64{3, 3, 3}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.Z != 0 {
		t.Fatalf("all-ties should be p=1, got %+v", res)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1}); err != ErrEmpty {
		t.Fatal("empty sample accepted")
	}
}

func TestMannWhitneyUStatistic(t *testing.T) {
	// Hand-computed: xs={1,2}, ys={3,4}: all ys > xs, U1 = 0.
	res, err := MannWhitneyU([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Fatalf("U=%g want 0", res.U)
	}
	res, _ = MannWhitneyU([]float64{3, 4}, []float64{1, 2})
	if res.U != 4 {
		t.Fatalf("U=%g want 4", res.U)
	}
}

func TestPermutationTestDetectsShift(t *testing.T) {
	r := rng.New(13)
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = r.NormMeanStd(0, 1)
		ys[i] = r.NormMeanStd(2, 1)
	}
	mean := func(v []float64) float64 { m, _ := Mean(v); return m }
	p, err := PermutationTest(r, xs, ys, mean, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Fatalf("2-sigma shift but p=%g", p)
	}
}

func TestPermutationTestNull(t *testing.T) {
	r := rng.New(14)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	mean := func(v []float64) float64 { m, _ := Mean(v); return m }
	p, err := PermutationTest(r, xs, ys, mean, 500)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Fatalf("null case rejected with p=%g", p)
	}
	if _, err := PermutationTest(r, nil, ys, mean, 500); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := PermutationTest(r, xs, ys, mean, 1); err == nil {
		t.Fatal("1 round accepted")
	}
}

func TestBHAdjustKnown(t *testing.T) {
	// Verified against R: p.adjust(c(0.01,0.04,0.03,0.005), method="BH")
	// = 0.02 0.04 0.04 0.02
	ps := []float64{0.01, 0.04, 0.03, 0.005}
	adj, err := BHAdjust(ps)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.02, 0.04, 0.04, 0.02}
	for i := range want {
		if !almostEq(adj[i], want[i], 1e-12) {
			t.Fatalf("BH adj %v want %v", adj, want)
		}
	}
}

func TestBHAdjustProperties(t *testing.T) {
	if _, err := BHAdjust(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := BHAdjust([]float64{0.5, 1.2}); err == nil {
		t.Fatal("p>1 accepted")
	}
	if _, err := BHAdjust([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestHolmAdjustKnown(t *testing.T) {
	// R: p.adjust(c(0.01, 0.04, 0.03, 0.005), method="holm")
	// = 0.03 0.06 0.06 0.02
	adj, err := HolmAdjust([]float64{0.01, 0.04, 0.03, 0.005})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.03, 0.06, 0.06, 0.02}
	for i := range want {
		if !almostEq(adj[i], want[i], 1e-12) {
			t.Fatalf("Holm adj %v want %v", adj, want)
		}
	}
}

func TestCohenH(t *testing.T) {
	h, err := CohenH(0.5, 0.5)
	if err != nil || h != 0 {
		t.Fatalf("h=%g err=%v", h, err)
	}
	h, _ = CohenH(0.8, 0.2)
	if h <= 0 {
		t.Fatalf("h=%g should be positive", h)
	}
	h2, _ := CohenH(0.2, 0.8)
	if !almostEq(h, -h2, 1e-12) {
		t.Fatal("Cohen's h not antisymmetric")
	}
	if _, err := CohenH(1.2, 0.5); err == nil {
		t.Fatal("p>1 accepted")
	}
}

// Property: BH-adjusted p-values are >= raw, <= 1, and preserve order of
// the sorted sequence (monotone step-up).
func TestQuickBHMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ps := make([]float64, len(raw))
		for i, v := range raw {
			ps[i] = float64(v) / 65535
		}
		adj, err := BHAdjust(ps)
		if err != nil {
			return false
		}
		for i := range ps {
			if adj[i] < ps[i]-1e-12 || adj[i] > 1+1e-12 {
				return false
			}
		}
		// Sorted raw ps must map to sorted adjusted ps.
		type pair struct{ p, q float64 }
		pairs := make([]pair, len(ps))
		for i := range ps {
			pairs[i] = pair{ps[i], adj[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].p < pairs[b].p })
		for i := 1; i < len(pairs); i++ {
			if pairs[i].q < pairs[i-1].q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
