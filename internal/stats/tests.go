package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// MannWhitneyResult reports the U statistic (for the first sample), the
// normal-approximation z with tie correction, and the two-sided p-value.
type MannWhitneyResult struct {
	U float64
	Z float64
	P float64
}

// MannWhitneyU runs the two-sided Mann–Whitney U (Wilcoxon rank-sum)
// test with the normal approximation and tie correction. Both samples
// need at least one observation; the approximation is flagged as exact
// enough for n1+n2 >= 20, which every rcpt use site satisfies.
func MannWhitneyU(xs, ys []float64) (MannWhitneyResult, error) {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, ErrEmpty
	}
	all := make([]float64, 0, n1+n2)
	all = append(all, xs...)
	all = append(all, ys...)
	ranks := Ranks(all)
	r1 := 0.0
	for i := 0; i < n1; i++ {
		r1 += ranks[i]
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	n := float64(n1 + n2)
	mu := float64(n1) * float64(n2) / 2
	// Tie correction to the variance.
	tieTerm := 0.0
	sorted := make([]float64, len(all))
	copy(sorted, all)
	sort.Float64s(sorted)
	i := 0
	for i < len(sorted) {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		tieTerm += t*t*t - t
		i = j + 1
	}
	sigma2 := float64(n1) * float64(n2) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations identical: no evidence of difference.
		return MannWhitneyResult{U: u1, Z: 0, P: 1}, nil
	}
	// Continuity correction.
	z := (u1 - mu)
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(sigma2)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u1, Z: z, P: p}, nil
}

// PermutationTest estimates the two-sided p-value for a difference in an
// arbitrary statistic between two samples by label permutation. The
// returned p includes the +1 correction so it is never exactly zero.
func PermutationTest(r *rng.RNG, xs, ys []float64, stat func([]float64) float64, rounds int) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrEmpty
	}
	if rounds < 10 {
		return 0, fmt.Errorf("stats: permutation test needs >= 10 rounds, got %d", rounds)
	}
	obs := math.Abs(stat(ys) - stat(xs))
	pool := make([]float64, 0, len(xs)+len(ys))
	pool = append(pool, xs...)
	pool = append(pool, ys...)
	extreme := 0
	for i := 0; i < rounds; i++ {
		rng.Shuffle(r, pool)
		d := math.Abs(stat(pool[len(xs):]) - stat(pool[:len(xs)]))
		if d >= obs-1e-12 {
			extreme++
		}
	}
	return (float64(extreme) + 1) / (float64(rounds) + 1), nil
}

// BHAdjust applies the Benjamini–Hochberg step-up procedure, returning
// adjusted p-values (q-values) in the same order as the input. Inputs
// must lie in [0, 1].
func BHAdjust(ps []float64) ([]float64, error) {
	n := len(ps)
	if n == 0 {
		return nil, ErrEmpty
	}
	for i, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: p-value %g at index %d out of [0,1]", p, i)
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ps[idx[a]] < ps[idx[b]] })
	adj := make([]float64, n)
	minSoFar := 1.0
	for rank := n - 1; rank >= 0; rank-- {
		i := idx[rank]
		q := ps[i] * float64(n) / float64(rank+1)
		if q < minSoFar {
			minSoFar = q
		}
		adj[i] = minSoFar
	}
	return adj, nil
}

// HolmAdjust applies the Holm–Bonferroni step-down correction, a
// conservative alternative used in the robustness ablation.
func HolmAdjust(ps []float64) ([]float64, error) {
	n := len(ps)
	if n == 0 {
		return nil, ErrEmpty
	}
	for i, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: p-value %g at index %d out of [0,1]", p, i)
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ps[idx[a]] < ps[idx[b]] })
	adj := make([]float64, n)
	maxSoFar := 0.0
	for rank := 0; rank < n; rank++ {
		i := idx[rank]
		q := ps[i] * float64(n-rank)
		if q > 1 {
			q = 1
		}
		if q < maxSoFar {
			q = maxSoFar
		}
		maxSoFar = q
		adj[i] = q
	}
	return adj, nil
}

// CohenH returns Cohen's h effect size for the difference between two
// proportions (arcsine-transformed), the conventional effect size for
// adoption-rate deltas.
func CohenH(p1, p2 float64) (float64, error) {
	if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
		return 0, fmt.Errorf("stats: Cohen's h needs proportions in [0,1], got %g, %g", p1, p2)
	}
	return 2*math.Asin(math.Sqrt(p1)) - 2*math.Asin(math.Sqrt(p2)), nil
}
