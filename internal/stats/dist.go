package stats

import (
	"fmt"
	"math"
)

// This file implements the distribution functions needed to turn test
// statistics into p-values: the standard normal CDF and the chi-square
// (upper-tail) CDF via the regularized incomplete gamma function. The
// implementations follow the classic Numerical-Recipes-style series and
// continued-fraction expansions, accurate to ~1e-10 over the ranges the
// study pipeline uses.

// NormalCDF returns P(Z <= z) for a standard normal Z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z such that NormalCDF(z) = p, via the
// Acklam rational approximation refined by one Halley step. Panics if
// p is outside (0, 1).
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: NormalQuantile p=%g out of (0,1)", p))
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// gammaP returns the regularized lower incomplete gamma P(a, x).
func gammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic(fmt.Sprintf("stats: gammaP(a=%g, x=%g) out of domain", a, x))
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) by its series representation (x < a+1).
func gammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < itmax; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) = 1-P(a,x) by continued fraction (x >= a+1).
func gammaCF(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareSF returns the upper-tail probability P(X >= x) for a
// chi-square distribution with df degrees of freedom.
func ChiSquareSF(x float64, df int) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: ChiSquareSF df=%d", df))
	}
	if x <= 0 {
		return 1
	}
	return 1 - gammaP(float64(df)/2, x/2)
}

// StudentTSF returns the upper-tail probability P(T >= t) for Student's t
// with df degrees of freedom, via the regularized incomplete beta
// function.
func StudentTSF(t float64, df float64) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: StudentTSF df=%g", df))
	}
	x := df / (df + t*t)
	p := 0.5 * incBeta(df/2, 0.5, x)
	if t < 0 {
		return 1 - p
	}
	return p
}

// incBeta returns the regularized incomplete beta function I_x(a, b).
func incBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	bt := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betaCF(a, b, x) / a
	}
	return 1 - bt*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for incBeta (Lentz's method).
func betaCF(a, b, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= itmax; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// lnFactorial returns ln(n!) via Lgamma.
func lnFactorial(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("stats: lnFactorial(%d)", n))
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}
