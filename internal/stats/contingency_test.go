package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestContingencyBasics(t *testing.T) {
	tab, err := NewContingency(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := tab.Add(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if tab.At(0, 0) != 5 || tab.At(1, 2) != 3 {
		t.Fatal("cells wrong")
	}
	if tab.RowSum(0) != 5 || tab.ColSum(2) != 3 || tab.Total() != 8 {
		t.Fatal("margins wrong")
	}
	if err := tab.Add(5, 0, 1); err == nil {
		t.Fatal("out-of-range add accepted")
	}
	if err := tab.Add(0, 0, -1); err == nil {
		t.Fatal("negative add accepted")
	}
	if _, err := NewContingency(1, 2); err == nil {
		t.Fatal("1x2 table accepted")
	}
}

func TestFromCounts(t *testing.T) {
	if _, err := FromCounts(2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong count length accepted")
	}
	if _, err := FromCounts(2, 2, []float64{1, 2, 3, -4}); err == nil {
		t.Fatal("negative count accepted")
	}
	tab, err := FromCounts(2, 2, []float64{10, 20, 30, 40})
	if err != nil || tab.At(1, 0) != 30 {
		t.Fatalf("FromCounts: %v", err)
	}
}

func TestChiSquareKnown(t *testing.T) {
	// Hand-computed: rows [10,20],[30,40]; expected cells 12,18,28,42;
	// X2 = 4/12+4/18+4/28+4/42 = 0.7936507..., df = 1, p ~ 0.3730.
	tab, _ := FromCounts(2, 2, []float64{10, 20, 30, 40})
	res, err := tab.ChiSquare()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Stat, 0.7936507936507936, 1e-10) {
		t.Fatalf("chi2=%g", res.Stat)
	}
	if res.DF != 1 {
		t.Fatalf("df=%d", res.DF)
	}
	if !almostEq(res.P, 0.3730, 2e-4) {
		t.Fatalf("p=%g", res.P)
	}
	if res.CramerV < 0 || res.CramerV > 1 {
		t.Fatalf("V=%g", res.CramerV)
	}
}

func TestChiSquareIndependentIsZero(t *testing.T) {
	// Perfectly proportional table: statistic must be ~0, p ~1.
	tab, _ := FromCounts(2, 2, []float64{10, 20, 20, 40})
	res, err := tab.ChiSquare()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Stat, 0, 1e-9) || res.P < 0.999 {
		t.Fatalf("stat=%g p=%g", res.Stat, res.P)
	}
}

func TestChiSquareDegenerateMargin(t *testing.T) {
	tab, _ := FromCounts(2, 2, []float64{0, 0, 5, 5})
	if _, err := tab.ChiSquare(); err == nil {
		t.Fatal("zero row margin accepted")
	}
	empty, _ := NewContingency(2, 2)
	if _, err := empty.ChiSquare(); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestGTestCloseToChiSquare(t *testing.T) {
	tab, _ := FromCounts(2, 2, []float64{100, 150, 120, 180})
	chi, err1 := tab.ChiSquare()
	g, err2 := tab.GTest()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// For large balanced tables G and X2 agree closely.
	if math.Abs(chi.Stat-g.Stat) > 0.5 {
		t.Fatalf("chi2=%g g=%g diverge", chi.Stat, g.Stat)
	}
}

func TestFisherExactKnown(t *testing.T) {
	// R: fisher.test(matrix(c(3,1,1,3),2,2)) p = 0.4857143 (tea-tasting).
	p, err := Table2x2{A: 3, B: 1, C: 1, D: 3}.FisherExact()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, 0.4857142857, 1e-8) {
		t.Fatalf("fisher p=%.10f", p)
	}
	// R: fisher.test(matrix(c(1,9,11,3),2,2)) p = 0.002759456.
	p, err = Table2x2{A: 1, B: 9, C: 11, D: 3}.FisherExact()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, 0.002759456, 1e-7) {
		t.Fatalf("fisher p=%.10f", p)
	}
}

func TestFisherExactRejectsFractional(t *testing.T) {
	if _, err := (Table2x2{A: 1.5, B: 2, C: 3, D: 4}).FisherExact(); err == nil {
		t.Fatal("fractional counts accepted")
	}
	if _, err := (Table2x2{}).FisherExact(); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestOddsRatio(t *testing.T) {
	or, lo, hi, err := Table2x2{A: 20, B: 80, C: 10, D: 90}.OddsRatio()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(or, 2.25, 1e-9) {
		t.Fatalf("or=%g", or)
	}
	if lo >= or || hi <= or {
		t.Fatalf("interval [%g,%g] does not bracket %g", lo, hi, or)
	}
	// Zero cell gets the Haldane correction, not a crash.
	or, _, _, err = Table2x2{A: 0, B: 10, C: 5, D: 5}.OddsRatio()
	if err != nil || or <= 0 {
		t.Fatalf("corrected or=%g err=%v", or, err)
	}
	if _, _, _, err := (Table2x2{A: 0, B: 0, C: 1, D: 1}).OddsRatio(); err == nil {
		t.Fatal("empty row accepted")
	}
}

func TestPhi(t *testing.T) {
	// Perfect association.
	phi, err := Table2x2{A: 10, B: 0, C: 0, D: 10}.Phi()
	if err != nil || !almostEq(phi, 1, 1e-12) {
		t.Fatalf("phi=%g err=%v", phi, err)
	}
	phi, _ = Table2x2{A: 0, B: 10, C: 10, D: 0}.Phi()
	if !almostEq(phi, -1, 1e-12) {
		t.Fatalf("phi=%g", phi)
	}
	if _, err := (Table2x2{A: 0, B: 0, C: 5, D: 5}).Phi(); err == nil {
		t.Fatal("zero margin accepted")
	}
}

func TestTwoProportionZ(t *testing.T) {
	z, p, err := TwoProportionZ(50, 100, 50, 100)
	if err != nil || z != 0 || !almostEq(p, 1, 1e-12) {
		t.Fatalf("z=%g p=%g err=%v", z, p, err)
	}
	z, p, err = TwoProportionZ(80, 100, 40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if z <= 0 || p >= 0.001 {
		t.Fatalf("z=%g p=%g for a 40-point gap", z, p)
	}
	if _, _, err := TwoProportionZ(5, 0, 1, 10); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, _, err := TwoProportionZ(15, 10, 1, 10); err == nil {
		t.Fatal("successes > trials accepted")
	}
	// Degenerate: everyone succeeded in both groups.
	_, p, err = TwoProportionZ(10, 10, 20, 20)
	if err != nil || p != 1 {
		t.Fatalf("degenerate case p=%g err=%v", p, err)
	}
}

// Property: chi-square statistic is non-negative and p in [0,1] on any
// table with positive margins.
func TestQuickChiSquareValid(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		tab, _ := FromCounts(2, 2, []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1})
		res, err := tab.ChiSquare()
		if err != nil {
			return false
		}
		return res.Stat >= 0 && res.P >= 0 && res.P <= 1 && res.CramerV >= 0 && res.CramerV <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fisher exact p is within [0,1] and symmetric under
// simultaneous row and column swap.
func TestQuickFisherSymmetry(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		t1 := Table2x2{A: float64(a), B: float64(b), C: float64(c), D: float64(d)}
		if t1.A+t1.B+t1.C+t1.D == 0 {
			return true
		}
		t2 := Table2x2{A: t1.D, B: t1.C, C: t1.B, D: t1.A}
		p1, err1 := t1.FisherExact()
		p2, err2 := t2.FisherExact()
		if err1 != nil || err2 != nil {
			return false
		}
		return p1 >= 0 && p1 <= 1 && almostEq(p1, p2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
