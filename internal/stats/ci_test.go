package stats

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestWilsonIntervalKnown(t *testing.T) {
	// R binom::binom.wilson(25, 100): lower 0.1754521, upper 0.3430446.
	iv, err := WilsonInterval(25, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(iv.Point, 0.25, 1e-12) {
		t.Fatalf("point=%g", iv.Point)
	}
	if !almostEq(iv.Lo, 0.1754521, 1e-5) || !almostEq(iv.Hi, 0.3430446, 1e-5) {
		t.Fatalf("interval [%g,%g]", iv.Lo, iv.Hi)
	}
}

func TestWilsonEdges(t *testing.T) {
	// Zero successes: interval starts at 0 but has positive width.
	iv, err := WilsonInterval(0, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0 || iv.Hi <= 0 {
		t.Fatalf("zero-success interval [%g,%g]", iv.Lo, iv.Hi)
	}
	// All successes: ends at 1.
	iv, _ = WilsonInterval(50, 50, 0.95)
	if iv.Hi != 1 || iv.Lo >= 1 {
		t.Fatalf("all-success interval [%g,%g]", iv.Lo, iv.Hi)
	}
	if _, err := WilsonInterval(5, 0, 0.95); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := WilsonInterval(5, 4, 0.95); err == nil {
		t.Fatal("successes>n accepted")
	}
	if _, err := WilsonInterval(1, 10, 1.5); err == nil {
		t.Fatal("level>1 accepted")
	}
}

func TestBootstrapCIMean(t *testing.T) {
	r := rng.New(42)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormMeanStd(10, 2)
	}
	mean := func(v []float64) float64 { m, _ := Mean(v); return m }
	iv, err := BootstrapCI(r, xs, mean, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(iv.Point) {
		t.Fatalf("interval [%g,%g] excludes its own point %g", iv.Lo, iv.Hi, iv.Point)
	}
	if !iv.Contains(10) {
		t.Fatalf("interval [%g,%g] misses true mean 10 (possible but ~5%%; deterministic seed should pass)", iv.Lo, iv.Hi)
	}
	if iv.Width() <= 0 || iv.Width() > 1 {
		t.Fatalf("width %g implausible for n=500 sd=2", iv.Width())
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	r := rng.New(1)
	mean := func(v []float64) float64 { m, _ := Mean(v); return m }
	if _, err := BootstrapCI(r, nil, mean, 100, 0.95); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := BootstrapCI(r, []float64{1}, mean, 5, 0.95); err == nil {
		t.Fatal("too few resamples accepted")
	}
	if _, err := BootstrapCI(r, []float64{1}, mean, 100, 0); err == nil {
		t.Fatal("level 0 accepted")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 7, 6, 10}
	med := func(v []float64) float64 { m, _ := Median(v); return m }
	iv1, _ := BootstrapCI(rng.New(7), xs, med, 500, 0.9)
	iv2, _ := BootstrapCI(rng.New(7), xs, med, 500, 0.9)
	if iv1 != iv2 {
		t.Fatalf("bootstrap not deterministic: %+v vs %+v", iv1, iv2)
	}
}

func TestBootstrapDiffCI(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 300)
	ys := make([]float64, 300)
	for i := range xs {
		xs[i] = r.NormMeanStd(5, 1)
		ys[i] = r.NormMeanStd(7, 1)
	}
	mean := func(v []float64) float64 { m, _ := Mean(v); return m }
	iv, err := BootstrapDiffCI(r, xs, ys, mean, 800, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// The percentile interval brackets the *sample* diff; the true diff 2
	// may fall just outside on an unlucky draw, so assert the robust
	// properties: it brackets its point, sits near 2, and excludes 0.
	if !iv.Contains(iv.Point) {
		t.Fatalf("interval [%g,%g] excludes its point %g", iv.Lo, iv.Hi, iv.Point)
	}
	if iv.Lo < 1 || iv.Hi > 3 {
		t.Fatalf("diff interval [%g,%g] implausibly far from true diff 2", iv.Lo, iv.Hi)
	}
	if iv.Lo <= 0 {
		t.Fatalf("clear difference but interval [%g,%g] includes 0", iv.Lo, iv.Hi)
	}
	if _, err := BootstrapDiffCI(r, nil, ys, mean, 100, 0.95); err == nil {
		t.Fatal("empty first sample accepted")
	}
}

func TestMeanCI(t *testing.T) {
	iv, err := MeanCI([]float64{4.5, 5.1, 4.9, 5.3, 4.8, 5.0, 5.2, 4.7}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(iv.Point) || iv.Width() <= 0 {
		t.Fatalf("bad interval %+v", iv)
	}
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Fatal("single observation accepted")
	}
}

func TestTQuantileAgainstKnown(t *testing.T) {
	// R: qt(0.975, 10) = 2.228139.
	got := tQuantile(0.975, 10)
	if !almostEq(got, 2.228139, 1e-5) {
		t.Fatalf("t quantile %g", got)
	}
	if tQuantile(0.5, 10) != 0 {
		t.Fatal("median of t is not 0")
	}
}

// Property: Wilson interval always brackets the point estimate and stays
// inside [0,1].
func TestQuickWilson(t *testing.T) {
	f := func(s, n uint16) bool {
		trials := float64(n%1000) + 1
		succ := float64(s) * trials / 65535
		iv, err := WilsonInterval(succ, trials, 0.95)
		if err != nil {
			return false
		}
		return iv.Lo >= 0 && iv.Hi <= 1 && iv.Lo <= iv.Point+1e-12 && iv.Hi >= iv.Point-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Empirical coverage check: Wilson 95% intervals should cover the true p
// close to 95% of the time.
func TestWilsonCoverage(t *testing.T) {
	r := rng.New(31)
	trueP := 0.3
	n := 200
	covered := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		succ := 0
		for i := 0; i < n; i++ {
			if r.Bool(trueP) {
				succ++
			}
		}
		iv, err := WilsonInterval(float64(succ), float64(n), 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(trueP) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Fatalf("coverage %.3f outside [0.92, 0.98]", rate)
	}
}
