package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGiniKnownValues(t *testing.T) {
	// Perfect equality.
	g, err := Gini([]float64{5, 5, 5, 5})
	if err != nil || !almostEq(g, 0, 1e-12) {
		t.Fatalf("equal gini=%g err=%v", g, err)
	}
	// One holder of everything among n=4: G = (n-1)/n = 0.75.
	g, _ = Gini([]float64{0, 0, 0, 10})
	if !almostEq(g, 0.75, 1e-12) {
		t.Fatalf("extreme gini=%g", g)
	}
	// Hand value: {1,2,3,4}: G = (2*(1+4+9+16))/(4*10) - 5/4 = 0.25.
	g, _ = Gini([]float64{1, 2, 3, 4})
	if !almostEq(g, 0.25, 1e-12) {
		t.Fatalf("gini=%g", g)
	}
	if _, err := Gini(nil); err != ErrEmpty {
		t.Fatal("empty accepted")
	}
	if _, err := Gini([]float64{1, -1}); err == nil {
		t.Fatal("negative accepted")
	}
	g, _ = Gini([]float64{0, 0})
	if g != 0 {
		t.Fatalf("all-zero gini=%g", g)
	}
}

func TestLorenzCurve(t *testing.T) {
	pop, val, err := Lorenz([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	wantPop := []float64{0, 0.5, 1}
	wantVal := []float64{0, 0.25, 1}
	for i := range wantPop {
		if !almostEq(pop[i], wantPop[i], 1e-12) || !almostEq(val[i], wantVal[i], 1e-12) {
			t.Fatalf("lorenz pop=%v val=%v", pop, val)
		}
	}
	// Lorenz curve lies below the equality line.
	for i := range pop {
		if val[i] > pop[i]+1e-12 {
			t.Fatalf("lorenz above diagonal at %d", i)
		}
	}
	if _, _, err := Lorenz(nil); err != ErrEmpty {
		t.Fatal("empty accepted")
	}
}

func TestTopShare(t *testing.T) {
	xs := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 91}
	s, err := TopShare(xs, 0.1)
	if err != nil || !almostEq(s, 0.91, 1e-12) {
		t.Fatalf("top share %g err=%v", s, err)
	}
	s, _ = TopShare(xs, 1)
	if !almostEq(s, 1, 1e-12) {
		t.Fatalf("full share %g", s)
	}
	if _, err := TopShare(xs, 0); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := TopShare(xs, 1.5); err == nil {
		t.Fatal("q>1 accepted")
	}
	s, _ = TopShare([]float64{0, 0}, 0.5)
	if s != 0 {
		t.Fatalf("zero-total share %g", s)
	}
}

func TestWeightedQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ws := []float64{1, 1, 1, 1}
	// Equal weights: weighted median is the first x reaching half the mass.
	m, err := WeightedQuantile(xs, ws, 0.5)
	if err != nil || m != 2 {
		t.Fatalf("median %g err=%v", m, err)
	}
	// Heavy weight on 4 pulls the median up.
	m, _ = WeightedQuantile(xs, []float64{1, 1, 1, 10}, 0.5)
	if m != 4 {
		t.Fatalf("weighted median %g", m)
	}
	if _, err := WeightedQuantile(xs, ws[:2], 0.5); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := WeightedQuantile(xs, []float64{1, 1, 1, -1}, 0.5); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := WeightedQuantile(xs, []float64{0, 0, 0, 0}, 0.5); err == nil {
		t.Fatal("zero weights accepted")
	}
	if _, err := WeightedQuantile(xs, ws, 2); err == nil {
		t.Fatal("q>1 accepted")
	}
}

// Property: Gini in [0,1); TopShare(q) >= q for non-negative data;
// weighted quantile equals unweighted type-lower quantile under equal
// weights.
func TestQuickInequality(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint16) bool {
		n := int(seed%50) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.LogNormal(1, 1)
		}
		g, err := Gini(xs)
		if err != nil || g < -1e-12 || g >= 1 {
			return false
		}
		ts, err := TopShare(xs, 0.2)
		if err != nil || ts < 0.2-1e-9 || ts > 1+1e-12 {
			return false
		}
		pop, val, err := Lorenz(xs)
		if err != nil {
			return false
		}
		for i := range pop {
			if val[i] > pop[i]+1e-9 {
				return false
			}
			if i > 0 && (val[i] < val[i-1]-1e-12 || pop[i] < pop[i-1]-1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGiniLogNormalPlausible(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.LogNormal(0, 1)
	}
	g, err := Gini(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Lognormal(σ=1) has Gini = 2Φ(σ/√2) − 1 ≈ 0.5205.
	want := 2*NormalCDF(1/math.Sqrt2) - 1
	if math.Abs(g-want) > 0.03 {
		t.Fatalf("lognormal gini %g want %g", g, want)
	}
}
