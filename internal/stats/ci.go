package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Interval is a confidence interval with its point estimate.
type Interval struct {
	Point, Lo, Hi float64
	Level         float64 // e.g. 0.95
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion: the standard interval for survey adoption rates, which
// behaves sensibly at 0% and 100% where the Wald interval collapses.
func WilsonInterval(successes, n float64, level float64) (Interval, error) {
	if n <= 0 {
		return Interval{}, fmt.Errorf("stats: Wilson interval needs n > 0, got %g", n)
	}
	if successes < 0 || successes > n {
		return Interval{}, fmt.Errorf("stats: successes %g out of [0, %g]", successes, n)
	}
	if !(level > 0 && level < 1) {
		return Interval{}, fmt.Errorf("stats: confidence level %g out of (0,1)", level)
	}
	p := successes / n
	z := NormalQuantile(1 - (1-level)/2)
	z2 := z * z
	den := 1 + z2/n
	center := (p + z2/(2*n)) / den
	half := z / den * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Point: p, Lo: lo, Hi: hi, Level: level}, nil
}

// BootstrapCI computes a percentile bootstrap confidence interval for an
// arbitrary statistic of a sample. resamples controls precision (1000 is
// typical); the RNG makes the interval reproducible.
func BootstrapCI(r *rng.RNG, xs []float64, stat func([]float64) float64, resamples int, level float64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: bootstrap needs >= 10 resamples, got %d", resamples)
	}
	if !(level > 0 && level < 1) {
		return Interval{}, fmt.Errorf("stats: confidence level %g out of (0,1)", level)
	}
	point := stat(xs)
	ests := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for b := 0; b < resamples; b++ {
		for i := range buf {
			buf[i] = xs[r.Intn(len(xs))]
		}
		ests[b] = stat(buf)
	}
	sort.Float64s(ests)
	alpha := (1 - level) / 2
	lo := quantileSorted(ests, alpha)
	hi := quantileSorted(ests, 1-alpha)
	return Interval{Point: point, Lo: lo, Hi: hi, Level: level}, nil
}

// BootstrapDiffCI bootstraps the difference stat(ys) - stat(xs) between
// two independent samples, the building block for cohort deltas on
// non-proportion metrics (e.g. median job width 2024 - 2011).
func BootstrapDiffCI(r *rng.RNG, xs, ys []float64, stat func([]float64) float64, resamples int, level float64) (Interval, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return Interval{}, ErrEmpty
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: bootstrap needs >= 10 resamples, got %d", resamples)
	}
	if !(level > 0 && level < 1) {
		return Interval{}, fmt.Errorf("stats: confidence level %g out of (0,1)", level)
	}
	point := stat(ys) - stat(xs)
	ests := make([]float64, resamples)
	bx := make([]float64, len(xs))
	by := make([]float64, len(ys))
	for b := 0; b < resamples; b++ {
		for i := range bx {
			bx[i] = xs[r.Intn(len(xs))]
		}
		for i := range by {
			by[i] = ys[r.Intn(len(ys))]
		}
		ests[b] = stat(by) - stat(bx)
	}
	sort.Float64s(ests)
	alpha := (1 - level) / 2
	return Interval{
		Point: point,
		Lo:    quantileSorted(ests, alpha),
		Hi:    quantileSorted(ests, 1-alpha),
		Level: level,
	}, nil
}

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// MeanCI returns the t-based confidence interval for the mean.
func MeanCI(xs []float64, level float64) (Interval, error) {
	if len(xs) < 2 {
		return Interval{}, errors.New("stats: mean CI needs >= 2 observations")
	}
	if !(level > 0 && level < 1) {
		return Interval{}, fmt.Errorf("stats: confidence level %g out of (0,1)", level)
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	n := float64(len(xs))
	se := sd / math.Sqrt(n)
	// Invert StudentTSF by bisection for the critical value.
	t := tQuantile(1-(1-level)/2, n-1)
	return Interval{Point: m, Lo: m - t*se, Hi: m + t*se, Level: level}, nil
}

// tQuantile returns the p-quantile of Student's t with df degrees of
// freedom by bisection on the CDF.
func tQuantile(p, df float64) float64 {
	if p == 0.5 {
		return 0
	}
	cdf := func(t float64) float64 {
		if t >= 0 {
			return 1 - StudentTSF(t, df)
		}
		return StudentTSF(-t, df)
	}
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
