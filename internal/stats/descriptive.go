// Package stats implements the statistical machinery the rcpt study
// pipeline needs: descriptive statistics, contingency-table tests,
// confidence intervals, rank tests, effect sizes, and multiple-comparison
// correction. Everything is implemented from scratch on the standard
// library so results are reproducible with no external dependencies.
//
// Conventions: functions that cannot produce a meaningful answer for
// their input (empty data, zero variance where variance is required)
// return an error rather than NaN, except where NaN is the established
// statistical convention and is documented.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation needs at least one observation.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean. It returns ErrEmpty for no data.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// WeightedMean returns sum(w*x)/sum(w). Weights must be non-negative and
// not all zero, and len(ws) must equal len(xs).
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, fmt.Errorf("stats: %d values but %d weights", len(xs), len(ws))
	}
	num, den := 0.0, 0.0
	for i, x := range xs {
		w := ws[i]
		if w < 0 {
			return 0, fmt.Errorf("stats: negative weight %g at index %d", w, i)
		}
		num += w * x
		den += w
	}
	if den == 0 {
		return 0, errors.New("stats: weights sum to zero")
	}
	return num / den, nil
}

// Variance returns the unbiased (n-1) sample variance. Needs n >= 2.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: variance needs >= 2 observations, got %d", len(xs))
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean needs positive values; xs[%d]=%g", i, x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted computes the type-7 quantile of pre-sorted data.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Summary holds the five-number summary plus mean, stddev and count,
// the standard descriptive block every table footnote needs.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P25, P50, P75 float64
	P90, P95, P99 float64
	Sum           float64
}

// Summarize computes a Summary. Std is 0 when n < 2.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s := Summary{
		N:   len(xs),
		Min: sorted[0],
		Max: sorted[len(sorted)-1],
		P25: quantileSorted(sorted, 0.25),
		P50: quantileSorted(sorted, 0.50),
		P75: quantileSorted(sorted, 0.75),
		P90: quantileSorted(sorted, 0.90),
		P95: quantileSorted(sorted, 0.95),
		P99: quantileSorted(sorted, 0.99),
	}
	for _, x := range xs {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N >= 2 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s, nil
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64 // closed-open domain [Lo, Hi)
	Counts []int   // one per bin
	Under  int     // observations below Lo
	Over   int     // observations at or above Hi
}

// NewHistogram bins xs into nbins equal-width bins on [lo, hi).
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs nbins > 0, got %d", nbins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram needs hi > lo, got [%g,%g)", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			b := int((x - lo) / width)
			if b >= nbins { // float edge case at the top boundary
				b = nbins - 1
			}
			h.Counts[b]++
		}
	}
	return h, nil
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// ECDF returns the empirical CDF of xs evaluated at the sorted sample
// points: xs sorted ascending paired with cumulative probabilities
// (i+1)/n. Used directly by the CDF figures.
func ECDF(xs []float64) (points []float64, probs []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	points = make([]float64, len(xs))
	copy(points, xs)
	sort.Float64s(points)
	probs = make([]float64, len(points))
	n := float64(len(points))
	for i := range probs {
		probs[i] = float64(i+1) / n
	}
	return points, probs, nil
}

// Pearson returns the Pearson product-moment correlation of paired
// samples. Requires n >= 2 and nonzero variance in both.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: pearson length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: pearson needs >= 2 pairs, got %d", len(xs))
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: pearson undefined for zero-variance input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation (Pearson on midranks).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: spearman length mismatch %d vs %d", len(xs), len(ys))
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns midranks (average rank for ties), 1-based, matching the
// order of xs.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank for the tie group spanning positions i..j
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
