package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnown(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-2.5758293035489004, 0.005},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEq(got, c.want, 1e-9) {
			t.Fatalf("NormalCDF(%g)=%.10f want %.10f", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almostEq(got, p, 1e-8) {
			t.Fatalf("roundtrip p=%g gave %g", p, got)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NormalQuantile(%g) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestChiSquareSFKnown(t *testing.T) {
	// Reference values from R: pchisq(x, df, lower.tail=FALSE).
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841458820694124, 1, 0.05},
		{5.991464547107979, 2, 0.05},
		{16.918977604620448, 9, 0.05},
		{2.705543454095404, 1, 0.10},
		{0, 3, 1},
	}
	for _, c := range cases {
		if got := ChiSquareSF(c.x, c.df); !almostEq(got, c.want, 1e-8) {
			t.Fatalf("ChiSquareSF(%g,%d)=%.10f want %g", c.x, c.df, got, c.want)
		}
	}
}

func TestStudentTSFKnown(t *testing.T) {
	// R: pt(q, df, lower.tail=FALSE).
	cases := []struct{ q, df, want float64 }{
		{2.2281388519649385, 10, 0.025},
		{1.8124611228107335, 10, 0.05},
		{0, 5, 0.5},
		{-2.2281388519649385, 10, 0.975},
	}
	for _, c := range cases {
		if got := StudentTSF(c.q, c.df); !almostEq(got, c.want, 1e-7) {
			t.Fatalf("StudentTSF(%g,%g)=%.10f want %g", c.q, c.df, got, c.want)
		}
	}
}

func TestIncBetaBounds(t *testing.T) {
	if incBeta(2, 3, 0) != 0 || incBeta(2, 3, 1) != 1 {
		t.Fatal("incBeta boundary values wrong")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		l := incBeta(2.5, 4, x)
		r := 1 - incBeta(4, 2.5, 1-x)
		if !almostEq(l, r, 1e-10) {
			t.Fatalf("incBeta symmetry broken at x=%g: %g vs %g", x, l, r)
		}
	}
}

func TestLnFactorial(t *testing.T) {
	if lnFactorial(0) != 0 {
		t.Fatal("ln(0!) != 0")
	}
	if !almostEq(lnFactorial(5), math.Log(120), 1e-12) {
		t.Fatal("ln(5!) wrong")
	}
}

// Property: ChiSquareSF is a valid survival function — in [0,1] and
// non-increasing in x.
func TestQuickChiSquareSFMonotone(t *testing.T) {
	f := func(a, b float64, dfRaw uint8) bool {
		df := int(dfRaw%20) + 1
		x1 := math.Abs(a)
		x2 := math.Abs(b)
		if math.IsNaN(x1) || math.IsNaN(x2) || x1 > 1e6 || x2 > 1e6 {
			return true
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		s1 := ChiSquareSF(x1, df)
		s2 := ChiSquareSF(x2, df)
		return s1 >= -1e-12 && s1 <= 1+1e-12 && s2 <= s1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: NormalCDF is monotone and bounded.
func TestQuickNormalCDF(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		ca, cb := NormalCDF(a), NormalCDF(b)
		return ca >= 0 && cb <= 1 && ca <= cb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
