package survey

import (
	"sort"

	"repro/internal/table"
)

// ResponseColumns is the struct-of-arrays batch form of survey
// responses. The fixed fields are plain columns; the per-question
// answers flatten into shared answer columns with per-row offsets, with
// question IDs and choice strings dictionary-encoded (a cohort shares a
// small instrument vocabulary). Answers are stored sorted by question
// ID so the encoding — and the row hash — is canonical even though
// Response holds them in a map.
//
// Rows are stored and returned by value; Row materializes a fresh
// Response with its own Answers map, so batch storage can never alias
// the mutable *Response views the weighting code adjusts in place.
type ResponseColumns struct {
	ids     []string
	cohorts []int32
	weights []float64

	ansOff []int32 // per row: start index into the answer columns; len = rows+1

	ansQID     []uint32
	ansChoice  []uint32
	ansChOff   []int32 // per answer: start into ansChoices; len = answers+1
	ansChoices []uint32
	ansRating  []int32
	ansValue   []float64
	ansText    []string

	qidDict table.Dict
	strDict table.Dict
}

func (c *ResponseColumns) init() {
	if c.ansOff == nil {
		c.ansOff = append(c.ansOff, 0)
	}
	if c.ansChOff == nil {
		c.ansChOff = append(c.ansChOff, 0)
	}
}

// sortedQIDs returns the response's question IDs in sorted order.
func sortedQIDs(r Response) []string {
	qids := make([]string, 0, len(r.Answers))
	for id := range r.Answers {
		qids = append(qids, id)
	}
	sort.Strings(qids)
	return qids
}

// Append implements table.Columns.
func (c *ResponseColumns) Append(r Response) {
	c.init()
	c.ids = append(c.ids, r.ID)
	c.cohorts = append(c.cohorts, int32(r.Cohort))
	c.weights = append(c.weights, r.Weight)
	for _, qid := range sortedQIDs(r) {
		a := r.Answers[qid]
		c.ansQID = append(c.ansQID, c.qidDict.Code(qid))
		c.ansChoice = append(c.ansChoice, c.strDict.Code(a.Choice))
		for _, ch := range a.Choices {
			c.ansChoices = append(c.ansChoices, c.strDict.Code(ch))
		}
		c.ansChOff = append(c.ansChOff, int32(len(c.ansChoices)))
		c.ansRating = append(c.ansRating, int32(a.Rating))
		c.ansValue = append(c.ansValue, a.Value)
		c.ansText = append(c.ansText, a.Text)
	}
	c.ansOff = append(c.ansOff, int32(len(c.ansQID)))
}

// Len implements table.Columns.
func (c *ResponseColumns) Len() int { return len(c.ids) }

// Row implements table.Columns.
func (c *ResponseColumns) Row(i int) Response {
	r := Response{
		ID:      c.ids[i],
		Cohort:  int(c.cohorts[i]),
		Weight:  c.weights[i],
		Answers: map[string]Answer{},
	}
	for ai := c.ansOff[i]; ai < c.ansOff[i+1]; ai++ {
		a := Answer{
			Choice: c.strDict.Value(c.ansChoice[ai]),
			Rating: int(c.ansRating[ai]),
			Value:  c.ansValue[ai],
			Text:   c.ansText[ai],
		}
		if lo, hi := c.ansChOff[ai], c.ansChOff[ai+1]; hi > lo {
			a.Choices = make([]string, 0, hi-lo)
			for ci := lo; ci < hi; ci++ {
				a.Choices = append(a.Choices, c.strDict.Value(c.ansChoices[ci]))
			}
		}
		r.Answers[c.qidDict.Value(c.ansQID[ai])] = a
	}
	return r
}

// Reset implements table.Columns.
func (c *ResponseColumns) Reset() {
	c.ids, c.cohorts, c.weights = c.ids[:0], c.cohorts[:0], c.weights[:0]
	c.ansOff, c.ansChOff = c.ansOff[:0], c.ansChOff[:0]
	c.ansQID, c.ansChoice, c.ansChoices = c.ansQID[:0], c.ansChoice[:0], c.ansChoices[:0]
	c.ansRating, c.ansValue, c.ansText = c.ansRating[:0], c.ansValue[:0], c.ansText[:0]
	c.qidDict.Reset()
	c.strDict.Reset()
	c.init()
}

// EncodeTo implements table.Columns.
func (c *ResponseColumns) EncodeTo(w *table.Writer) error {
	c.init()
	c.qidDict.EncodeTo(w)
	c.strDict.EncodeTo(w)
	w.Uvarint(uint64(len(c.ids)))
	for i := range c.ids {
		w.String(c.ids[i])
		w.Varint(int64(c.cohorts[i]))
		w.Float64(c.weights[i])
		w.Uvarint(uint64(c.ansOff[i+1] - c.ansOff[i]))
	}
	w.Uvarint(uint64(len(c.ansQID)))
	for ai := range c.ansQID {
		w.Uvarint(uint64(c.ansQID[ai]))
		w.Uvarint(uint64(c.ansChoice[ai]))
		w.Uvarint(uint64(c.ansChOff[ai+1] - c.ansChOff[ai]))
		w.Varint(int64(c.ansRating[ai]))
		w.Float64(c.ansValue[ai])
		w.String(c.ansText[ai])
	}
	for _, ch := range c.ansChoices {
		w.Uvarint(uint64(ch))
	}
	return w.Err()
}

// DecodeFrom implements table.Columns.
func (c *ResponseColumns) DecodeFrom(r *table.Reader) error {
	c.Reset()
	c.qidDict.DecodeFrom(r)
	c.strDict.DecodeFrom(r)
	rows := r.Uvarint()
	total := int32(0)
	for i := uint64(0); i < rows && r.Err() == nil; i++ {
		c.ids = append(c.ids, r.String())
		c.cohorts = append(c.cohorts, int32(r.Varint()))
		c.weights = append(c.weights, r.Float64())
		total += int32(r.Uvarint())
		c.ansOff = append(c.ansOff, total)
	}
	answers := r.Uvarint()
	chTotal := int32(0)
	for ai := uint64(0); ai < answers && r.Err() == nil; ai++ {
		c.ansQID = append(c.ansQID, uint32(r.Uvarint()))
		c.ansChoice = append(c.ansChoice, uint32(r.Uvarint()))
		chTotal += int32(r.Uvarint())
		c.ansChOff = append(c.ansChOff, chTotal)
		c.ansRating = append(c.ansRating, int32(r.Varint()))
		c.ansValue = append(c.ansValue, r.Float64())
		c.ansText = append(c.ansText, r.String())
	}
	for ci := int32(0); ci < chTotal && r.Err() == nil; ci++ {
		c.ansChoices = append(c.ansChoices, uint32(r.Uvarint()))
	}
	return r.Err()
}

// MemBytes implements table.Columns.
func (c *ResponseColumns) MemBytes() int {
	n := 0
	for _, s := range c.ids {
		n += len(s) + 16
	}
	for _, s := range c.ansText {
		n += len(s) + 16
	}
	n += len(c.cohorts)*4 + len(c.weights)*8 + len(c.ansOff)*4
	n += len(c.ansQID)*4 + len(c.ansChoice)*4 + len(c.ansChOff)*4
	n += len(c.ansChoices)*4 + len(c.ansRating)*4 + len(c.ansValue)*8
	return n + c.qidDict.MemBytes() + c.strDict.MemBytes()
}

// ResponseCodec binds Response (by value) to its columnar form.
type ResponseCodec struct{}

// NewColumns implements table.Codec.
func (ResponseCodec) NewColumns() table.Columns[Response] { return &ResponseColumns{} }

// HashRow implements table.Codec, hashing answers in sorted question
// order so the hash is independent of map iteration.
func (ResponseCodec) HashRow(r Response) uint64 {
	h := table.HashInit()
	h = table.HashString(h, r.ID)
	h = table.HashInt64(h, int64(r.Cohort))
	h = table.HashFloat64(h, r.Weight)
	for _, qid := range sortedQIDs(r) {
		a := r.Answers[qid]
		h = table.HashString(h, qid)
		h = table.HashString(h, a.Choice)
		h = table.HashUint64(h, uint64(len(a.Choices)))
		for _, ch := range a.Choices {
			h = table.HashString(h, ch)
		}
		h = table.HashInt64(h, int64(a.Rating))
		h = table.HashFloat64(h, a.Value)
		h = table.HashString(h, a.Text)
	}
	return h
}

// ResponseTable is the streaming form of a cohort.
type ResponseTable = table.Table[Response]

// MaterializeResponses builds the mutable []*Response view analysis
// code works with (weighting adjusts Weight in place). One shared view
// per cohort: callers hold the result, not the table, when they need
// pointer identity.
func MaterializeResponses(t ResponseTable) ([]*Response, error) {
	out := make([]*Response, 0, t.Len(table.Exact))
	err := table.Each(t, func(r Response) bool {
		rc := r
		out = append(out, &rc)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
