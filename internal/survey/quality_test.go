package survey

import (
	"strings"
	"testing"
)

func cleanCanonicalResponse(id string) *Response {
	r := NewResponse(id, 2024)
	r.SetChoice(QField, "physics")
	r.SetChoice(QCareer, "postdoc")
	r.SetValue(QYearsCoding, 8)
	r.SetChoices(QLanguages, []string{"python", "c"})
	r.SetChoices(QParallelism, []string{"gpu", "cluster batch jobs"})
	r.SetChoices(QPractices, []string{"version control"})
	r.SetChoice(QClusterUse, "weekly")
	r.SetValue(QClusterHours, 20)
	r.SetValue(QGPUShare, 40)
	r.SetRating(QTraining, 3)
	return r
}

func TestScreenCleanResponsePasses(t *testing.T) {
	ins := Canonical()
	r := cleanCanonicalResponse("ok-1")
	if errs := ins.Validate(r); len(errs) != 0 {
		t.Fatalf("fixture invalid: %v", errs)
	}
	qr := Screen(ins, []*Response{r}, CanonicalRules())
	if len(qr.Flags) != 0 {
		t.Fatalf("clean response flagged: %v", qr.Flags)
	}
	if qr.CleanShare() != 1 {
		t.Fatalf("clean share %g", qr.CleanShare())
	}
}

func TestScreenDuplicateIDs(t *testing.T) {
	ins := Canonical()
	a := cleanCanonicalResponse("dup")
	b := cleanCanonicalResponse("dup")
	qr := Screen(ins, []*Response{a, b}, nil)
	if len(qr.Flags) != 2 {
		t.Fatalf("flags %v", qr.Flags)
	}
	if !qr.HardIDs["dup"] {
		t.Fatal("duplicate not hard-flagged")
	}
	kept := DropHard([]*Response{a, b}, qr)
	if len(kept) != 0 {
		t.Fatalf("%d duplicates survived", len(kept))
	}
}

func TestExperienceCareerRule(t *testing.T) {
	ins := Canonical()
	r := cleanCanonicalResponse("kid")
	r.SetChoice(QCareer, "undergraduate")
	r.SetValue(QYearsCoding, 30)
	qr := Screen(ins, []*Response{r}, CanonicalRules())
	found := false
	for _, f := range qr.Flags {
		if f.Rule == "experience-career" && f.Severity == Hard {
			found = true
			if !strings.Contains(f.Detail, "undergraduate") {
				t.Fatalf("detail %q", f.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("implausible experience not flagged: %v", qr.Flags)
	}
	// Faculty with 30 years is plausible: no flag.
	ok := cleanCanonicalResponse("prof")
	ok.SetChoice(QCareer, "faculty")
	ok.SetValue(QYearsCoding, 30)
	qr = Screen(ins, []*Response{ok}, CanonicalRules())
	if len(qr.Flags) != 0 {
		t.Fatalf("faculty flagged: %v", qr.Flags)
	}
}

func TestGPUConsistencyRule(t *testing.T) {
	ins := Canonical()
	r := cleanCanonicalResponse("gpu-liar")
	r.SetChoices(QParallelism, []string{"serial only"})
	r.SetValue(QGPUShare, 90)
	qr := Screen(ins, []*Response{r}, CanonicalRules())
	found := false
	for _, f := range qr.Flags {
		if f.Rule == "gpu-consistency" {
			found = true
			if f.Severity != Soft {
				t.Fatal("gpu-consistency should be soft")
			}
		}
	}
	if !found {
		t.Fatalf("gpu inconsistency not flagged: %v", qr.Flags)
	}
	// Soft flags do not remove the response.
	if len(DropHard([]*Response{r}, qr)) != 1 {
		t.Fatal("soft flag dropped the response")
	}
}

func TestHoursOutlierRule(t *testing.T) {
	ins := Canonical()
	r := cleanCanonicalResponse("unit-error")
	r.SetValue(QClusterHours, 30000)
	qr := Screen(ins, []*Response{r}, CanonicalRules())
	found := false
	for _, f := range qr.Flags {
		if f.Rule == "hours-outlier" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hours outlier not flagged: %v", qr.Flags)
	}
}

func TestStraightLinerRule(t *testing.T) {
	ins := Canonical()
	r := cleanCanonicalResponse("speeder")
	r.SetChoices(QLanguages, Languages)
	r.SetChoices(QParallelism, ParallelismModes)
	r.SetChoices(QPractices, EngineeringPractices)
	qr := Screen(ins, []*Response{r}, CanonicalRules())
	if !qr.HardIDs["speeder"] {
		t.Fatalf("straight-liner not hard-flagged: %v", qr.Flags)
	}
	// One full multi-select alone is fine (a polyglot exists).
	poly := cleanCanonicalResponse("polyglot")
	poly.SetChoices(QLanguages, Languages)
	qr = Screen(ins, []*Response{poly}, CanonicalRules())
	for _, f := range qr.Flags {
		if f.Rule == "everything-everywhere" {
			t.Fatal("single full multi-select flagged")
		}
	}
}

func TestFlagsDeterministicOrder(t *testing.T) {
	ins := Canonical()
	a := cleanCanonicalResponse("b-resp")
	a.SetValue(QClusterHours, 30000)
	b := cleanCanonicalResponse("a-resp")
	b.SetValue(QClusterHours, 30000)
	qr := Screen(ins, []*Response{a, b}, CanonicalRules())
	if len(qr.Flags) != 2 || qr.Flags[0].ResponseID != "a-resp" {
		t.Fatalf("flags unsorted: %v", qr.Flags)
	}
}

func TestSeverityString(t *testing.T) {
	if Soft.String() != "soft" || Hard.String() != "hard" {
		t.Fatal("severity strings")
	}
}

func TestCleanShareEmpty(t *testing.T) {
	if (QualityReport{}).CleanShare() != 0 {
		t.Fatal("empty clean share")
	}
}
