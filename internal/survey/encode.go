package survey

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// jsonAnswer is the wire form of an Answer tagged with its kind so the
// decoder can rebuild the payload without consulting the instrument.
type jsonAnswer struct {
	Kind    string   `json:"kind"`
	Choice  string   `json:"choice,omitempty"`
	Choices []string `json:"choices,omitempty"`
	Rating  int      `json:"rating,omitempty"`
	Value   float64  `json:"value,omitempty"`
	Text    string   `json:"text,omitempty"`
}

// jsonResponse is the wire form of a Response.
type jsonResponse struct {
	ID      string                `json:"id"`
	Cohort  int                   `json:"cohort"`
	Weight  float64               `json:"weight"`
	Answers map[string]jsonAnswer `json:"answers"`
}

// WriteJSON streams responses as newline-delimited JSON, one response
// per line — the standard interchange format for survey exports.
func (ins *Instrument) WriteJSON(w io.Writer, responses []*Response) error {
	enc := json.NewEncoder(w)
	for _, r := range responses {
		jr := jsonResponse{ID: r.ID, Cohort: r.Cohort, Weight: r.Weight, Answers: map[string]jsonAnswer{}}
		for id, a := range r.Answers {
			q, ok := ins.Question(id)
			if !ok {
				return fmt.Errorf("survey: response %q answers unknown question %q", r.ID, id)
			}
			ja := jsonAnswer{Kind: q.Kind.String()}
			switch q.Kind {
			case SingleChoice:
				ja.Choice = a.Choice
			case MultiChoice:
				ja.Choices = a.Choices
			case Likert:
				ja.Rating = a.Rating
			case Numeric:
				ja.Value = a.Value
			case FreeText:
				ja.Text = a.Text
			}
			jr.Answers[id] = ja
		}
		if err := enc.Encode(jr); err != nil {
			return fmt.Errorf("survey: encoding response %q: %w", r.ID, err)
		}
	}
	return nil
}

// DecodeJSON parses newline-delimited JSON responses without
// validating them against the instrument's answer rules; it fails only
// on malformed JSON, answers to unknown questions, or kind mismatches
// (payloads that cannot be represented at all). Callers that need
// per-response validation verdicts — the serving layer's POST
// /v1/responses endpoint — decode first and run Validate per response;
// ReadJSON composes the two for the fail-fast ingestion path.
func (ins *Instrument) DecodeJSON(r io.Reader) ([]*Response, error) {
	dec := json.NewDecoder(r)
	var out []*Response
	line := 0
	for dec.More() {
		line++
		var jr jsonResponse
		if err := dec.Decode(&jr); err != nil {
			return nil, fmt.Errorf("survey: line %d: %w", line, err)
		}
		resp := &Response{ID: jr.ID, Cohort: jr.Cohort, Weight: jr.Weight, Answers: map[string]Answer{}}
		for id, ja := range jr.Answers {
			q, ok := ins.Question(id)
			if !ok {
				return nil, fmt.Errorf("survey: line %d: unknown question %q", line, id)
			}
			if ja.Kind != q.Kind.String() {
				return nil, fmt.Errorf("survey: line %d: question %q kind %q, instrument says %q",
					line, id, ja.Kind, q.Kind)
			}
			switch q.Kind {
			case SingleChoice:
				resp.SetChoice(id, ja.Choice)
			case MultiChoice:
				resp.SetChoices(id, ja.Choices)
			case Likert:
				resp.SetRating(id, ja.Rating)
			case Numeric:
				resp.SetValue(id, ja.Value)
			case FreeText:
				resp.SetText(id, ja.Text)
			}
		}
		out = append(out, resp)
	}
	return out, nil
}

// ReadJSON parses newline-delimited JSON responses and validates each
// against the instrument. It fails on the first malformed line or
// invalid response, reporting the line number.
func (ins *Instrument) ReadJSON(r io.Reader) ([]*Response, error) {
	out, err := ins.DecodeJSON(r)
	if err != nil {
		return nil, err
	}
	for i, resp := range out {
		if errs := ins.Validate(resp); len(errs) > 0 {
			return nil, fmt.Errorf("survey: line %d: %v", i+1, errs[0])
		}
	}
	return out, nil
}

// WriteCSV writes responses as a flat CSV: id, cohort, weight, then one
// column per question. Multi-choice cells are "|"-separated; the writer
// rejects options containing the separator rather than corrupting data.
func (ins *Instrument) WriteCSV(w io.Writer, responses []*Response) error {
	cols := append([]string{"id", "cohort", "weight"}, ins.IDs()...)
	if err := writeCSVRow(w, cols); err != nil {
		return err
	}
	for _, r := range responses {
		row := []string{r.ID, strconv.Itoa(r.Cohort), strconv.FormatFloat(r.Weight, 'g', -1, 64)}
		for _, q := range ins.Questions {
			a, ok := r.Answers[q.ID]
			if !ok {
				row = append(row, "")
				continue
			}
			switch q.Kind {
			case SingleChoice:
				row = append(row, a.Choice)
			case MultiChoice:
				for _, c := range a.Choices {
					if strings.Contains(c, "|") {
						return fmt.Errorf("survey: option %q contains the multi-choice separator", c)
					}
				}
				row = append(row, strings.Join(a.Choices, "|"))
			case Likert:
				row = append(row, strconv.Itoa(a.Rating))
			case Numeric:
				row = append(row, strconv.FormatFloat(a.Value, 'g', -1, 64))
			case FreeText:
				row = append(row, a.Text)
			}
		}
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

// writeCSVRow writes one RFC-4180 row, quoting fields that need it.
func writeCSVRow(w io.Writer, fields []string) error {
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(f, ",\"\n\r") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(f, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(f)
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Tabulation summarizes one choice question over a response set:
// weighted counts per option plus the weighted base (number of
// respondents asked and answering).
type Tabulation struct {
	QuestionID string
	Counts     map[string]float64
	Base       float64
	RawBase    int
}

// Share returns the weighted proportion selecting option (0 if the base
// is empty).
func (t Tabulation) Share(option string) float64 {
	if t.Base == 0 {
		return 0
	}
	return t.Counts[option] / t.Base
}

// Options returns option labels sorted by descending weighted count,
// ties broken alphabetically — the order tables print in.
func (t Tabulation) Options() []string {
	opts := make([]string, 0, len(t.Counts))
	for o := range t.Counts {
		opts = append(opts, o)
	}
	sort.Slice(opts, func(a, b int) bool {
		ca, cb := t.Counts[opts[a]], t.Counts[opts[b]]
		if ca != cb {
			return ca > cb
		}
		return opts[a] < opts[b]
	})
	return opts
}

// Tabulate computes the weighted option counts for a single- or
// multi-choice question over responses. Unanswered respondents are
// excluded from the base; for multi-choice the base is respondents, not
// selections, so shares are "% of respondents selecting X".
func (ins *Instrument) Tabulate(qid string, responses []*Response) (Tabulation, error) {
	q, ok := ins.Question(qid)
	if !ok {
		return Tabulation{}, fmt.Errorf("survey: unknown question %q", qid)
	}
	if q.Kind != SingleChoice && q.Kind != MultiChoice {
		return Tabulation{}, fmt.Errorf("survey: Tabulate needs a choice question, %q is %s", qid, q.Kind)
	}
	t := Tabulation{QuestionID: qid, Counts: map[string]float64{}}
	for _, o := range q.Options {
		t.Counts[o] = 0
	}
	for _, r := range responses {
		a, answered := r.Answers[qid]
		if !answered {
			continue
		}
		w := r.Weight
		t.Base += w
		t.RawBase++
		switch q.Kind {
		case SingleChoice:
			t.Counts[a.Choice] += w
		case MultiChoice:
			for _, c := range a.Choices {
				t.Counts[c] += w
			}
		}
	}
	return t, nil
}

// NumericValues extracts the answered values of a numeric question,
// paired with their weights.
func (ins *Instrument) NumericValues(qid string, responses []*Response) (values, weights []float64, err error) {
	q, ok := ins.Question(qid)
	if !ok {
		return nil, nil, fmt.Errorf("survey: unknown question %q", qid)
	}
	if q.Kind != Numeric && q.Kind != Likert {
		return nil, nil, fmt.Errorf("survey: NumericValues needs numeric or Likert, %q is %s", qid, q.Kind)
	}
	for _, r := range responses {
		a, answered := r.Answers[qid]
		if !answered {
			continue
		}
		v := a.Value
		if q.Kind == Likert {
			v = float64(a.Rating)
		}
		values = append(values, v)
		weights = append(weights, r.Weight)
	}
	return values, weights, nil
}

// ReadCSV parses the flat CSV format written by WriteCSV back into
// validated responses — the ingestion path for spreadsheet-shaped form
// exports. Header order may differ from the instrument; unknown columns
// are an error, as is any invalid answer.
func (ins *Instrument) ReadCSV(r io.Reader) ([]*Response, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("survey: csv header: %w", err)
	}
	if len(header) < 4 || header[0] != "id" || header[1] != "cohort" || header[2] != "weight" {
		return nil, fmt.Errorf("survey: csv header must start with id,cohort,weight; got %v", header[:min(len(header), 3)])
	}
	colQ := make([]Question, len(header))
	for i, name := range header[3:] {
		q, ok := ins.Question(name)
		if !ok {
			return nil, fmt.Errorf("survey: csv column %q is not an instrument question", name)
		}
		colQ[i+3] = q
	}
	var out []*Response
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("survey: csv line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("survey: csv line %d: %d fields, want %d", line, len(rec), len(header))
		}
		cohort, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("survey: csv line %d: cohort: %w", line, err)
		}
		weight, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("survey: csv line %d: weight: %w", line, err)
		}
		resp := NewResponse(rec[0], cohort)
		resp.Weight = weight
		for i := 3; i < len(rec); i++ {
			cell := rec[i]
			if cell == "" {
				continue
			}
			q := colQ[i]
			switch q.Kind {
			case SingleChoice:
				resp.SetChoice(q.ID, cell)
			case MultiChoice:
				resp.SetChoices(q.ID, strings.Split(cell, "|"))
			case Likert:
				v, err := strconv.Atoi(cell)
				if err != nil {
					return nil, fmt.Errorf("survey: csv line %d: %s: %w", line, q.ID, err)
				}
				resp.SetRating(q.ID, v)
			case Numeric:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("survey: csv line %d: %s: %w", line, q.ID, err)
				}
				resp.SetValue(q.ID, v)
			case FreeText:
				resp.SetText(q.ID, cell)
			}
		}
		if errs := ins.Validate(resp); len(errs) > 0 {
			return nil, fmt.Errorf("survey: csv line %d: %v", line, errs[0])
		}
		out = append(out, resp)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
