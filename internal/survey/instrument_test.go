package survey

import (
	"strings"
	"testing"
)

func testInstrument(t *testing.T) *Instrument {
	t.Helper()
	ins, err := NewInstrument("test", []Question{
		{ID: "color", Text: "Favorite color?", Kind: SingleChoice,
			Options: []string{"red", "blue", "green"}, Required: true},
		{ID: "pets", Text: "Pets?", Kind: MultiChoice,
			Options: []string{"cat", "dog", "fish"}},
		{ID: "happy", Text: "Happiness", Kind: Likert, Scale: 5, Required: true},
		{ID: "age", Text: "Age", Kind: Numeric, Min: 0, Max: 120},
		{ID: "notes", Text: "Notes", Kind: FreeText},
		{ID: "dog_name", Text: "Dog's name?", Kind: FreeText,
			AskIf: func(r *Response) bool { return r.Selected("pets", "dog") }},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestNewInstrumentRejectsBadDefinitions(t *testing.T) {
	cases := []struct {
		name string
		qs   []Question
	}{
		{"empty name handled separately", nil},
		{"dup id", []Question{
			{ID: "a", Kind: FreeText}, {ID: "a", Kind: FreeText}}},
		{"empty id", []Question{{ID: "", Kind: FreeText}}},
		{"reserved char", []Question{{ID: "a,b", Kind: FreeText}}},
		{"one option", []Question{{ID: "a", Kind: SingleChoice, Options: []string{"x"}}}},
		{"dup option", []Question{{ID: "a", Kind: SingleChoice, Options: []string{"x", "x"}}}},
		{"empty option", []Question{{ID: "a", Kind: MultiChoice, Options: []string{"x", ""}}}},
		{"likert scale 1", []Question{{ID: "a", Kind: Likert, Scale: 1}}},
		{"numeric bounds", []Question{{ID: "a", Kind: Numeric, Min: 5, Max: 5}}},
		{"unknown kind", []Question{{ID: "a", Kind: QuestionKind(99)}}},
	}
	for _, c := range cases {
		if _, err := NewInstrument("x", c.qs); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	if _, err := NewInstrument("", []Question{{ID: "a", Kind: FreeText}}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestQuestionLookup(t *testing.T) {
	ins := testInstrument(t)
	q, ok := ins.Question("happy")
	if !ok || q.Kind != Likert {
		t.Fatalf("lookup failed: %v %v", q, ok)
	}
	if _, ok := ins.Question("nope"); ok {
		t.Fatal("found nonexistent question")
	}
	ids := ins.IDs()
	if len(ids) != 6 || ids[0] != "color" {
		t.Fatalf("ids=%v", ids)
	}
}

func TestValidateHappyPath(t *testing.T) {
	ins := testInstrument(t)
	r := NewResponse("r1", 2024)
	r.SetChoice("color", "red")
	r.SetChoices("pets", []string{"dog", "cat"})
	r.SetRating("happy", 4)
	r.SetValue("age", 33)
	r.SetText("dog_name", "Rex")
	if errs := ins.Validate(r); len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
}

func TestValidateCatchesEverything(t *testing.T) {
	ins := testInstrument(t)
	r := NewResponse("r2", 2024)
	r.Weight = -1
	r.SetChoice("color", "purple")           // not an option
	r.SetChoices("pets", []string{"dragon"}) // not an option
	r.SetRating("happy", 9)                  // out of scale
	r.SetValue("age", 500)                   // out of range
	r.SetText("dog_name", "Rex")             // skipped (no dog selected)
	r.SetText("ghost", "boo")                // unknown question
	errs := ins.Validate(r)
	reasons := map[string]bool{}
	for _, e := range errs {
		reasons[e.QuestionID+":"+e.Reason] = true
	}
	wantSubstrings := []string{
		`color:choice "purple" not among options`,
		`pets:choice "dragon" not among options`,
		"happy:rating 9 outside 1..5",
		"age:value 500 outside [0,120]",
		"dog_name:answered a skipped question",
		"ghost:answer to unknown question",
		":negative weight -1",
	}
	for _, w := range wantSubstrings {
		if !reasons[w] {
			t.Fatalf("missing validation error %q in %v", w, errs)
		}
	}
}

func TestValidateRequiredUnanswered(t *testing.T) {
	ins := testInstrument(t)
	r := NewResponse("r3", 2011)
	errs := ins.Validate(r)
	found := false
	for _, e := range errs {
		if e.QuestionID == "color" && strings.Contains(e.Reason, "required") {
			found = true
		}
	}
	if !found {
		t.Fatalf("required-unanswered not reported: %v", errs)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	e := ValidationError{ResponseID: "r", QuestionID: "q", Reason: "bad"}
	if !strings.Contains(e.Error(), "r") || !strings.Contains(e.Error(), "q") {
		t.Fatalf("error message %q", e.Error())
	}
}

func TestSetChoicesDedupSort(t *testing.T) {
	r := NewResponse("x", 2024)
	r.SetChoices("pets", []string{"dog", "cat", "dog"})
	got := r.Choices("pets")
	if len(got) != 2 || got[0] != "cat" || got[1] != "dog" {
		t.Fatalf("choices=%v", got)
	}
	if !r.Selected("pets", "dog") || r.Selected("pets", "fish") {
		t.Fatal("Selected wrong")
	}
}

func TestResponseAccessorsUnanswered(t *testing.T) {
	r := NewResponse("x", 2024)
	if r.Has("q") || r.Choice("q") != "" || r.Choices("q") != nil ||
		r.Rating("q") != 0 || r.Value("q") != 0 || r.Text("q") != "" {
		t.Fatal("unanswered accessors should be zero values")
	}
}

func TestCodebookMentionsEverything(t *testing.T) {
	ins := testInstrument(t)
	cb := ins.Codebook()
	for _, want := range []string{"color", "red | blue | green", "scale: 1..5", "range: [0, 120]", "conditional", "required"} {
		if !strings.Contains(cb, want) {
			t.Fatalf("codebook missing %q:\n%s", want, cb)
		}
	}
}

func TestCanonicalInstrument(t *testing.T) {
	ins := Canonical()
	if len(ins.Questions) != 13 {
		t.Fatalf("canonical has %d questions", len(ins.Questions))
	}
	// Skip logic: cluster hours only asked of cluster users.
	r := NewResponse("r", 2024)
	r.SetChoice(QClusterUse, "never")
	r.SetValue(QClusterHours, 5)
	errs := ins.Validate(r)
	found := false
	for _, e := range errs {
		if e.QuestionID == QClusterHours && strings.Contains(e.Reason, "skipped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skip logic not enforced: %v", errs)
	}
	// Option vocabularies stay in sync with the exported slices.
	q, _ := ins.Question(QLanguages)
	if len(q.Options) != len(Languages) {
		t.Fatal("language options out of sync")
	}
}

func TestQuestionKindString(t *testing.T) {
	if SingleChoice.String() != "single" || QuestionKind(42).String() == "" {
		t.Fatal("kind strings wrong")
	}
}
