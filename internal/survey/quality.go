package survey

import (
	"fmt"
	"sort"
)

// Data-quality screening: the cleaning pass between raw form export and
// analysis. Each rule flags suspicious responses; flagged respondents
// are reported, not silently dropped — the study decides the policy
// (the rcpt pipeline excludes hard failures and footnotes soft ones).

// Severity grades a quality flag.
type Severity int

// Severity levels.
const (
	// Soft flags warrant a footnote but keep the response.
	Soft Severity = iota
	// Hard flags indicate an unusable or fraudulent response.
	Hard
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Hard {
		return "hard"
	}
	return "soft"
}

// Flag is one quality finding on one response.
type Flag struct {
	ResponseID string
	Rule       string
	Severity   Severity
	Detail     string
}

// Rule inspects one response (with access to the instrument) and
// returns zero or more flags.
type Rule struct {
	Name     string
	Severity Severity
	Check    func(ins *Instrument, r *Response) (bool, string)
}

// QualityReport aggregates a screening run.
type QualityReport struct {
	Flags     []Flag
	HardIDs   map[string]bool // responses with >= 1 hard flag
	Responses int
}

// CleanShare returns the fraction of responses with no flags at all.
func (qr QualityReport) CleanShare() float64 {
	if qr.Responses == 0 {
		return 0
	}
	flagged := map[string]bool{}
	for _, f := range qr.Flags {
		flagged[f.ResponseID] = true
	}
	return 1 - float64(len(flagged))/float64(qr.Responses)
}

// Screen runs rules plus the built-in duplicate-ID check over the
// responses. Flags are ordered by response ID then rule name for
// deterministic output.
func Screen(ins *Instrument, responses []*Response, rules []Rule) QualityReport {
	qr := QualityReport{HardIDs: map[string]bool{}, Responses: len(responses)}
	seen := map[string]int{}
	for _, r := range responses {
		seen[r.ID]++
	}
	for _, r := range responses {
		if seen[r.ID] > 1 {
			qr.Flags = append(qr.Flags, Flag{
				ResponseID: r.ID, Rule: "duplicate-id", Severity: Hard,
				Detail: fmt.Sprintf("id appears %d times", seen[r.ID]),
			})
			qr.HardIDs[r.ID] = true
		}
		for _, rule := range rules {
			hit, detail := rule.Check(ins, r)
			if !hit {
				continue
			}
			qr.Flags = append(qr.Flags, Flag{
				ResponseID: r.ID, Rule: rule.Name, Severity: rule.Severity, Detail: detail,
			})
			if rule.Severity == Hard {
				qr.HardIDs[r.ID] = true
			}
		}
	}
	sort.Slice(qr.Flags, func(a, b int) bool {
		if qr.Flags[a].ResponseID != qr.Flags[b].ResponseID {
			return qr.Flags[a].ResponseID < qr.Flags[b].ResponseID
		}
		return qr.Flags[a].Rule < qr.Flags[b].Rule
	})
	return qr
}

// DropHard returns the responses with no hard flags, preserving order.
func DropHard(responses []*Response, qr QualityReport) []*Response {
	out := make([]*Response, 0, len(responses))
	for _, r := range responses {
		if !qr.HardIDs[r.ID] {
			out = append(out, r)
		}
	}
	return out
}

// CanonicalRules returns the rcpt instrument's screening rules:
//
//   - experience-career: years coding wildly inconsistent with career
//     stage (an undergraduate reporting 30 years) — hard.
//   - gpu-consistency: GPU share above 50% with no GPU/parallelism
//     answer implying GPU access — soft (laptop GPUs exist).
//   - hours-outlier: weekly cluster hours above 5000 (more than a
//     300-node-day every week, likely a unit error) — soft.
//   - everything-everywhere: selected every option on two or more
//     multi-selects (straight-lining) — hard.
func CanonicalRules() []Rule {
	return []Rule{
		{
			Name: "experience-career", Severity: Hard,
			Check: func(ins *Instrument, r *Response) (bool, string) {
				if !r.Has(QYearsCoding) || !r.Has(QCareer) {
					return false, ""
				}
				years := r.Value(QYearsCoding)
				maxPlausible := map[string]float64{
					"undergraduate":    12,
					"graduate student": 20,
					"postdoc":          25,
				}
				if limit, ok := maxPlausible[r.Choice(QCareer)]; ok && years > limit {
					return true, fmt.Sprintf("%s reporting %.0f years of research software experience", r.Choice(QCareer), years)
				}
				return false, ""
			},
		},
		{
			Name: "gpu-consistency", Severity: Soft,
			Check: func(ins *Instrument, r *Response) (bool, string) {
				if !r.Has(QGPUShare) {
					return false, ""
				}
				share := r.Value(QGPUShare)
				if share <= 50 {
					return false, ""
				}
				if r.Selected(QParallelism, "gpu") || r.Selected(QParallelism, "cluster batch jobs") {
					return false, ""
				}
				return true, fmt.Sprintf("gpu share %.0f%% without gpu or cluster usage", share)
			},
		},
		{
			Name: "hours-outlier", Severity: Soft,
			Check: func(ins *Instrument, r *Response) (bool, string) {
				if !r.Has(QClusterHours) {
					return false, ""
				}
				if h := r.Value(QClusterHours); h > 5000 {
					return true, fmt.Sprintf("%.0f cluster hours per week", h)
				}
				return false, ""
			},
		},
		{
			Name: "everything-everywhere", Severity: Hard,
			Check: func(ins *Instrument, r *Response) (bool, string) {
				full := 0
				for _, qid := range []string{QLanguages, QParallelism, QPractices} {
					q, ok := ins.Question(qid)
					if !ok || !r.Has(qid) {
						continue
					}
					if len(r.Choices(qid)) == len(q.Options) {
						full++
					}
				}
				if full >= 2 {
					return true, fmt.Sprintf("selected every option on %d multi-selects", full)
				}
				return false, ""
			},
		},
	}
}
