package survey

import (
	"math"
	"testing"
)

func crossTabFixture(t *testing.T) (*Instrument, []*Response) {
	t.Helper()
	ins, err := NewInstrument("ct", []Question{
		{ID: "field", Kind: SingleChoice, Options: []string{"physics", "biology", "unused"}},
		{ID: "use", Kind: SingleChoice, Options: []string{"yes", "no"}},
		{ID: "happy", Kind: Likert, Scale: 5},
		{ID: "langs", Kind: MultiChoice, Options: []string{"python", "c", "r"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, f, u string, rating int, w float64) *Response {
		r := NewResponse(id, 2024)
		r.Weight = w
		r.SetChoice("field", f)
		r.SetChoice("use", u)
		r.SetRating("happy", rating)
		return r
	}
	rs := []*Response{
		mk("1", "physics", "yes", 5, 1),
		mk("2", "physics", "yes", 4, 2),
		mk("3", "physics", "no", 2, 1),
		mk("4", "biology", "no", 3, 1),
		mk("5", "biology", "yes", 1, 1),
	}
	return ins, rs
}

func TestCrossTabulate(t *testing.T) {
	ins, rs := crossTabFixture(t)
	ct, err := ins.CrossTabulate("field", "use", rs)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Base != 6 || ct.RawBase != 5 {
		t.Fatalf("base %g raw %d", ct.Base, ct.RawBase)
	}
	if ct.At("physics", "yes") != 3 || ct.At("physics", "no") != 1 {
		t.Fatalf("cells wrong: %g %g", ct.At("physics", "yes"), ct.At("physics", "no"))
	}
	if got := ct.RowShare("physics", "yes"); got != 0.75 {
		t.Fatalf("row share %g", got)
	}
	if got := ct.RowShare("unused", "yes"); got != 0 {
		t.Fatalf("empty row share %g", got)
	}
}

func TestCrossTabFlattenDropsEmpty(t *testing.T) {
	ins, rs := crossTabFixture(t)
	ct, _ := ins.CrossTabulate("field", "use", rs)
	rows, cols, counts := ct.Flatten()
	if len(rows) != 2 || len(cols) != 2 {
		t.Fatalf("rows %v cols %v", rows, cols)
	}
	for _, r := range rows {
		if r == "unused" {
			t.Fatal("empty row kept")
		}
	}
	if len(counts) != 4 {
		t.Fatalf("counts %v", counts)
	}
	// Row-major: physics yes, physics no, biology yes, biology no.
	if counts[0] != 3 || counts[1] != 1 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestCrossTabErrors(t *testing.T) {
	ins, rs := crossTabFixture(t)
	if _, err := ins.CrossTabulate("nope", "use", rs); err == nil {
		t.Fatal("unknown row question accepted")
	}
	if _, err := ins.CrossTabulate("field", "nope", rs); err == nil {
		t.Fatal("unknown col question accepted")
	}
	if _, err := ins.CrossTabulate("field", "happy", rs); err == nil {
		t.Fatal("likert column accepted")
	}
}

func TestSummarizeLikert(t *testing.T) {
	ins, rs := crossTabFixture(t)
	s, err := ins.SummarizeLikert("happy", rs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Base != 6 || s.RawBase != 5 || s.Scale != 5 {
		t.Fatalf("summary %+v", s)
	}
	// Weighted mean: (5*1 + 4*2 + 2*1 + 3*1 + 1*1)/6 = 19/6.
	if math.Abs(s.Mean-19.0/6.0) > 1e-12 {
		t.Fatalf("mean %g", s.Mean)
	}
	// Top box (ratings 4,5): weights 2+1 = 3 of 6.
	if s.TopBox != 0.5 {
		t.Fatalf("topbox %g", s.TopBox)
	}
	if _, err := ins.SummarizeLikert("field", rs); err == nil {
		t.Fatal("non-likert accepted")
	}
	if _, err := ins.SummarizeLikert("nope", rs); err == nil {
		t.Fatal("unknown accepted")
	}
	// Invalid stored rating is caught.
	bad := NewResponse("x", 2024)
	bad.SetRating("happy", 9)
	if _, err := ins.SummarizeLikert("happy", []*Response{bad}); err == nil {
		t.Fatal("invalid rating accepted")
	}
	// Empty responses: zero-valued summary, no crash.
	empty, err := ins.SummarizeLikert("happy", nil)
	if err != nil || empty.Mean != 0 || empty.TopBox != 0 {
		t.Fatalf("empty summary %+v err=%v", empty, err)
	}
}

func TestCompletionRates(t *testing.T) {
	ins := testInstrument(t)
	full := NewResponse("full", 2024)
	full.SetChoice("color", "red")
	full.SetChoices("pets", []string{"dog"})
	full.SetRating("happy", 3)
	full.SetValue("age", 30)
	full.SetText("notes", "hi")
	full.SetText("dog_name", "Rex")
	partial := NewResponse("partial", 2024)
	partial.SetChoice("color", "blue")
	partial.SetRating("happy", 2)
	// partial has no dog -> dog_name not asked.
	rates := ins.CompletionRates([]*Response{full, partial})
	byID := map[string]CompletionRate{}
	for _, cr := range rates {
		byID[cr.QuestionID] = cr
	}
	if byID["color"].Rate != 1 || byID["color"].Asked != 2 {
		t.Fatalf("color %+v", byID["color"])
	}
	if byID["age"].Rate != 0.5 {
		t.Fatalf("age %+v", byID["age"])
	}
	if byID["dog_name"].Asked != 1 || byID["dog_name"].Rate != 1 {
		t.Fatalf("dog_name %+v (skip logic should exclude partial)", byID["dog_name"])
	}
	if got := ins.CompletionRates(nil); len(got) != len(ins.Questions) {
		t.Fatal("empty responses should still list questions")
	}
}

func TestOptionUniverse(t *testing.T) {
	a := NewResponse("a", 2024)
	a.SetChoices("langs", []string{"python", "c"})
	b := NewResponse("b", 2024)
	b.SetChoices("langs", []string{"r"})
	got := OptionUniverse("langs", []*Response{a, b})
	want := []string{"c", "python", "r"}
	if len(got) != 3 {
		t.Fatalf("universe %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("universe %v", got)
		}
	}
	if got := OptionUniverse("langs", nil); len(got) != 0 {
		t.Fatalf("empty universe %v", got)
	}
}
