// Package survey models the study's survey instrument: typed questions,
// skip logic, a codebook, responses, and validation. It is the data
// contract between the synthetic population generator (or, for a real
// deployment, a web form export) and the analysis pipeline — analysis
// code never sees raw strings, only validated Response values.
package survey

import (
	"fmt"
	"sort"
	"strings"
)

// QuestionKind enumerates the supported question types.
type QuestionKind int

const (
	// SingleChoice selects exactly one option.
	SingleChoice QuestionKind = iota
	// MultiChoice selects zero or more options.
	MultiChoice
	// Likert is an ordinal 1..Scale rating.
	Likert
	// Numeric is a bounded numeric answer (e.g. years of experience).
	Numeric
	// FreeText is an open response, later coded by textcode.
	FreeText
)

// String implements fmt.Stringer for diagnostics.
func (k QuestionKind) String() string {
	switch k {
	case SingleChoice:
		return "single"
	case MultiChoice:
		return "multi"
	case Likert:
		return "likert"
	case Numeric:
		return "numeric"
	case FreeText:
		return "text"
	default:
		return fmt.Sprintf("QuestionKind(%d)", int(k))
	}
}

// Question is one item on the instrument.
type Question struct {
	ID      string // stable key, e.g. "languages"
	Text    string // prompt shown to the respondent
	Kind    QuestionKind
	Options []string // for SingleChoice/MultiChoice
	Scale   int      // for Likert: number of points (e.g. 5)
	Min     float64  // for Numeric
	Max     float64  // for Numeric
	// AskIf, when non-nil, gates the question: it is asked only when the
	// predicate over earlier answers returns true (skip logic).
	AskIf func(resp *Response) bool
	// Required questions must be answered when asked.
	Required bool
}

// Instrument is an ordered questionnaire with unique question IDs.
type Instrument struct {
	Name      string
	Questions []Question
	index     map[string]int
}

// NewInstrument validates and indexes a questionnaire. Rules: IDs are
// non-empty and unique; choice questions have >= 2 unique options;
// Likert scales are >= 2 points; numeric bounds are ordered.
func NewInstrument(name string, qs []Question) (*Instrument, error) {
	if name == "" {
		return nil, fmt.Errorf("survey: instrument needs a name")
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("survey: instrument %q has no questions", name)
	}
	idx := make(map[string]int, len(qs))
	for i, q := range qs {
		if q.ID == "" {
			return nil, fmt.Errorf("survey: question %d has empty ID", i)
		}
		if strings.ContainsAny(q.ID, ",;\n") {
			return nil, fmt.Errorf("survey: question ID %q contains reserved characters", q.ID)
		}
		if _, dup := idx[q.ID]; dup {
			return nil, fmt.Errorf("survey: duplicate question ID %q", q.ID)
		}
		switch q.Kind {
		case SingleChoice, MultiChoice:
			if len(q.Options) < 2 {
				return nil, fmt.Errorf("survey: question %q needs >= 2 options", q.ID)
			}
			seen := map[string]bool{}
			for _, o := range q.Options {
				if o == "" {
					return nil, fmt.Errorf("survey: question %q has an empty option", q.ID)
				}
				if seen[o] {
					return nil, fmt.Errorf("survey: question %q repeats option %q", q.ID, o)
				}
				seen[o] = true
			}
		case Likert:
			if q.Scale < 2 {
				return nil, fmt.Errorf("survey: Likert question %q needs scale >= 2, got %d", q.ID, q.Scale)
			}
		case Numeric:
			if !(q.Max > q.Min) {
				return nil, fmt.Errorf("survey: numeric question %q needs Max > Min", q.ID)
			}
		case FreeText:
			// no extra constraints
		default:
			return nil, fmt.Errorf("survey: question %q has unknown kind %d", q.ID, q.Kind)
		}
		idx[q.ID] = i
	}
	return &Instrument{Name: name, Questions: qs, index: idx}, nil
}

// Question returns the question with the given ID.
func (ins *Instrument) Question(id string) (Question, bool) {
	i, ok := ins.index[id]
	if !ok {
		return Question{}, false
	}
	return ins.Questions[i], true
}

// IDs returns the question IDs in instrument order.
func (ins *Instrument) IDs() []string {
	out := make([]string, len(ins.Questions))
	for i, q := range ins.Questions {
		out[i] = q.ID
	}
	return out
}

// Codebook renders a human-readable description of the instrument, the
// artifact survey papers publish as an appendix.
func (ins *Instrument) Codebook() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Codebook: %s (%d questions)\n", ins.Name, len(ins.Questions))
	for i, q := range ins.Questions {
		fmt.Fprintf(&b, "%2d. [%s] %s (%s", i+1, q.ID, q.Text, q.Kind)
		if q.Required {
			b.WriteString(", required")
		}
		if q.AskIf != nil {
			b.WriteString(", conditional")
		}
		b.WriteString(")\n")
		switch q.Kind {
		case SingleChoice, MultiChoice:
			fmt.Fprintf(&b, "      options: %s\n", strings.Join(q.Options, " | "))
		case Likert:
			fmt.Fprintf(&b, "      scale: 1..%d\n", q.Scale)
		case Numeric:
			fmt.Fprintf(&b, "      range: [%g, %g]\n", q.Min, q.Max)
		}
	}
	return b.String()
}

// Answer is one validated answer; exactly one payload field is
// meaningful depending on the question kind.
type Answer struct {
	Choice  string   // SingleChoice
	Choices []string // MultiChoice (sorted, deduplicated)
	Rating  int      // Likert
	Value   float64  // Numeric
	Text    string   // FreeText
}

// Response is one respondent's record: metadata plus answers by
// question ID. Missing IDs mean the question was skipped or unanswered.
type Response struct {
	ID      string
	Cohort  int // survey year, e.g. 2011 or 2024
	Weight  float64
	Answers map[string]Answer
}

// NewResponse creates an empty response with weight 1.
func NewResponse(id string, cohort int) *Response {
	return &Response{ID: id, Cohort: cohort, Weight: 1, Answers: map[string]Answer{}}
}

// Has reports whether question id was answered.
func (r *Response) Has(id string) bool {
	_, ok := r.Answers[id]
	return ok
}

// Choice returns the single-choice answer for id ("" if unanswered).
func (r *Response) Choice(id string) string { return r.Answers[id].Choice }

// Choices returns the multi-choice answers for id (nil if unanswered).
func (r *Response) Choices(id string) []string { return r.Answers[id].Choices }

// Selected reports whether option is among the multi-choice answers
// for question id.
func (r *Response) Selected(id, option string) bool {
	for _, c := range r.Answers[id].Choices {
		if c == option {
			return true
		}
	}
	return false
}

// Rating returns the Likert rating (0 if unanswered).
func (r *Response) Rating(id string) int { return r.Answers[id].Rating }

// Value returns the numeric answer (0 if unanswered — use Has to
// distinguish).
func (r *Response) Value(id string) float64 { return r.Answers[id].Value }

// Text returns the free-text answer.
func (r *Response) Text(id string) string { return r.Answers[id].Text }

// SetChoice records a single-choice answer.
func (r *Response) SetChoice(id, choice string) { r.Answers[id] = Answer{Choice: choice} }

// SetChoices records a multi-choice answer; the slice is copied, sorted
// and deduplicated so equality and hashing are stable.
func (r *Response) SetChoices(id string, choices []string) {
	cp := make([]string, 0, len(choices))
	seen := map[string]bool{}
	for _, c := range choices {
		if !seen[c] {
			seen[c] = true
			cp = append(cp, c)
		}
	}
	sort.Strings(cp)
	r.Answers[id] = Answer{Choices: cp}
}

// SetRating records a Likert answer.
func (r *Response) SetRating(id string, rating int) { r.Answers[id] = Answer{Rating: rating} }

// SetValue records a numeric answer.
func (r *Response) SetValue(id string, v float64) { r.Answers[id] = Answer{Value: v} }

// SetText records a free-text answer.
func (r *Response) SetText(id, text string) { r.Answers[id] = Answer{Text: text} }

// ValidationError describes one validation failure.
type ValidationError struct {
	ResponseID string
	QuestionID string
	Reason     string
}

func (e ValidationError) Error() string {
	return fmt.Sprintf("survey: response %q question %q: %s", e.ResponseID, e.QuestionID, e.Reason)
}

// Validate checks a response against the instrument: required questions
// answered when asked, answers legal for their kind, no answers to
// unknown or skipped questions. It returns all failures, not just the
// first.
func (ins *Instrument) Validate(r *Response) []ValidationError {
	var errs []ValidationError
	add := func(qid, reason string) {
		errs = append(errs, ValidationError{ResponseID: r.ID, QuestionID: qid, Reason: reason})
	}
	if r.Weight < 0 {
		add("", fmt.Sprintf("negative weight %g", r.Weight))
	}
	known := map[string]bool{}
	for _, q := range ins.Questions {
		known[q.ID] = true
		asked := q.AskIf == nil || q.AskIf(r)
		ans, answered := r.Answers[q.ID]
		if !asked {
			if answered {
				add(q.ID, "answered a skipped question")
			}
			continue
		}
		if !answered {
			if q.Required {
				add(q.ID, "required question unanswered")
			}
			continue
		}
		switch q.Kind {
		case SingleChoice:
			if !containsString(q.Options, ans.Choice) {
				add(q.ID, fmt.Sprintf("choice %q not among options", ans.Choice))
			}
		case MultiChoice:
			for _, c := range ans.Choices {
				if !containsString(q.Options, c) {
					add(q.ID, fmt.Sprintf("choice %q not among options", c))
				}
			}
		case Likert:
			if ans.Rating < 1 || ans.Rating > q.Scale {
				add(q.ID, fmt.Sprintf("rating %d outside 1..%d", ans.Rating, q.Scale))
			}
		case Numeric:
			if ans.Value < q.Min || ans.Value > q.Max {
				add(q.ID, fmt.Sprintf("value %g outside [%g,%g]", ans.Value, q.Min, q.Max))
			}
		}
	}
	for id := range r.Answers {
		if !known[id] {
			add(id, "answer to unknown question")
		}
	}
	sort.Slice(errs, func(a, b int) bool {
		if errs[a].QuestionID != errs[b].QuestionID {
			return errs[a].QuestionID < errs[b].QuestionID
		}
		return errs[a].Reason < errs[b].Reason
	})
	return errs
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
