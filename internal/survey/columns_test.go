package survey

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/table"
)

func colTestResponses(n int) []Response {
	out := make([]Response, n)
	for i := range out {
		r := Response{
			ID:      fmt.Sprintf("r%05d", i),
			Cohort:  2011 + 13*(i%2),
			Weight:  1 + float64(i)*0.01,
			Answers: map[string]Answer{},
		}
		r.Answers["role"] = Answer{Choice: []string{"faculty", "postdoc", "grad"}[i%3]}
		r.Answers["languages"] = Answer{Choices: []string{"python", "c++"}[:1+i%2]}
		r.Answers["satisfaction"] = Answer{Rating: 1 + i%5}
		r.Answers["years_hpc"] = Answer{Value: float64(i % 20)}
		if i%4 == 0 {
			r.Answers["pain_point"] = Answer{Text: fmt.Sprintf("queue waits %d", i)}
		}
		if i%7 == 0 {
			delete(r.Answers, "satisfaction") // skip logic leaves gaps
		}
		out[i] = r
	}
	return out
}

func TestResponseColumnsRoundTrip(t *testing.T) {
	rs := colTestResponses(500)
	for _, bs := range []int{32, 128, 600} {
		tab, err := table.FromSlice[Response](ResponseCodec{}, table.Options{BatchSize: bs}, rs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := table.Rows[Response](tab)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rs) {
			t.Fatalf("BatchSize=%d: responses differ after columnar round trip", bs)
		}
	}
}

func TestResponseColumnsSpillRoundTrip(t *testing.T) {
	rs := colTestResponses(1000)
	tab, err := table.FromSlice[Response](ResponseCodec{}, table.Options{
		BatchSize: 100, SpillDir: t.TempDir(), Resident: 2,
	}, rs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := table.Rows[Response](tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatal("responses differ after spill round trip")
	}
}

func TestResponseHashCanonicalOverMapOrder(t *testing.T) {
	rs := colTestResponses(20)
	r := rs[0]
	// Rebuild the answers map in a different insertion order; the hash
	// must not change (map iteration order is not part of the content).
	reb := Response{ID: r.ID, Cohort: r.Cohort, Weight: r.Weight, Answers: map[string]Answer{}}
	qids := sortedQIDs(r)
	for i := len(qids) - 1; i >= 0; i-- {
		reb.Answers[qids[i]] = r.Answers[qids[i]]
	}
	if (ResponseCodec{}).HashRow(r) != (ResponseCodec{}).HashRow(reb) {
		t.Fatal("hash depends on map insertion order")
	}
	mut := rs[1]
	mut.Weight += 1e-12
	if (ResponseCodec{}).HashRow(rs[1]) == (ResponseCodec{}).HashRow(mut) {
		t.Fatal("hash ignored a weight perturbation")
	}
}

func TestMaterializeResponsesIsolation(t *testing.T) {
	rs := colTestResponses(50)
	tab, err := table.FromSlice[Response](ResponseCodec{}, table.Options{BatchSize: 16}, rs)
	if err != nil {
		t.Fatal(err)
	}
	view, err := MaterializeResponses(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(view) != len(rs) {
		t.Fatalf("materialized %d responses, want %d", len(view), len(rs))
	}
	// Mutating the view (as raking does) must not leak into the table.
	view[0].Weight = 99
	again, err := table.Rows[Response](tab)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Weight == 99 {
		t.Fatal("view mutation leaked into table storage")
	}
}
