package survey

import (
	"fmt"
	"sort"
)

// CrossTab is a weighted two-way table of single-choice answers: rows
// from one question, columns from another, with margins. It feeds both
// chi-square tests (via Flatten) and conditional-share tables.
type CrossTab struct {
	RowQ, ColQ string
	RowCats    []string
	ColCats    []string
	cells      map[[2]string]float64
	Base       float64
	RawBase    int
}

// CrossTabulate builds the weighted cross-tabulation of two
// single-choice questions over respondents answering both.
func (ins *Instrument) CrossTabulate(rowQ, colQ string, responses []*Response) (*CrossTab, error) {
	rq, ok := ins.Question(rowQ)
	if !ok {
		return nil, fmt.Errorf("survey: unknown question %q", rowQ)
	}
	cq, ok := ins.Question(colQ)
	if !ok {
		return nil, fmt.Errorf("survey: unknown question %q", colQ)
	}
	if rq.Kind != SingleChoice || cq.Kind != SingleChoice {
		return nil, fmt.Errorf("survey: cross-tab needs single-choice questions, got %s and %s", rq.Kind, cq.Kind)
	}
	ct := &CrossTab{
		RowQ: rowQ, ColQ: colQ,
		RowCats: append([]string(nil), rq.Options...),
		ColCats: append([]string(nil), cq.Options...),
		cells:   map[[2]string]float64{},
	}
	for _, r := range responses {
		rv, cv := r.Choice(rowQ), r.Choice(colQ)
		if rv == "" || cv == "" {
			continue
		}
		ct.cells[[2]string{rv, cv}] += r.Weight
		ct.Base += r.Weight
		ct.RawBase++
	}
	return ct, nil
}

// At returns the weighted count in cell (row, col).
func (ct *CrossTab) At(row, col string) float64 { return ct.cells[[2]string{row, col}] }

// RowShare returns P(col | row): the weighted share of row-category
// respondents giving the column answer. Zero when the row is empty.
func (ct *CrossTab) RowShare(row, col string) float64 {
	total := 0.0
	for _, c := range ct.ColCats {
		total += ct.At(row, c)
	}
	if total == 0 {
		return 0
	}
	return ct.At(row, col) / total
}

// Flatten returns row-major counts for the stats package's contingency
// tests, dropping empty rows and columns (which would otherwise make
// expected counts degenerate). The kept category labels are returned
// alongside.
func (ct *CrossTab) Flatten() (rows, cols []string, counts []float64) {
	for _, r := range ct.RowCats {
		total := 0.0
		for _, c := range ct.ColCats {
			total += ct.At(r, c)
		}
		if total > 0 {
			rows = append(rows, r)
		}
	}
	for _, c := range ct.ColCats {
		total := 0.0
		for _, r := range ct.RowCats {
			total += ct.At(r, c)
		}
		if total > 0 {
			cols = append(cols, c)
		}
	}
	counts = make([]float64, 0, len(rows)*len(cols))
	for _, r := range rows {
		for _, c := range cols {
			counts = append(counts, ct.At(r, c))
		}
	}
	return rows, cols, counts
}

// LikertSummary describes a Likert question's weighted distribution.
type LikertSummary struct {
	QuestionID string
	Scale      int
	Counts     []float64 // weighted count per point, index 0 = rating 1
	Base       float64
	RawBase    int
	Mean       float64
	// TopBox is the weighted share at the highest two points, the usual
	// headline for "received substantial training".
	TopBox float64
}

// SummarizeLikert computes the weighted distribution of a Likert item.
func (ins *Instrument) SummarizeLikert(qid string, responses []*Response) (LikertSummary, error) {
	q, ok := ins.Question(qid)
	if !ok {
		return LikertSummary{}, fmt.Errorf("survey: unknown question %q", qid)
	}
	if q.Kind != Likert {
		return LikertSummary{}, fmt.Errorf("survey: %q is %s, need Likert", qid, q.Kind)
	}
	s := LikertSummary{QuestionID: qid, Scale: q.Scale, Counts: make([]float64, q.Scale)}
	weightedSum := 0.0
	for _, r := range responses {
		a, answered := r.Answers[qid]
		if !answered {
			continue
		}
		if a.Rating < 1 || a.Rating > q.Scale {
			return LikertSummary{}, fmt.Errorf("survey: response %q has invalid rating %d", r.ID, a.Rating)
		}
		s.Counts[a.Rating-1] += r.Weight
		s.Base += r.Weight
		s.RawBase++
		weightedSum += float64(a.Rating) * r.Weight
	}
	if s.Base > 0 {
		s.Mean = weightedSum / s.Base
		s.TopBox = (s.Counts[q.Scale-1] + s.Counts[q.Scale-2]) / s.Base
	}
	return s, nil
}

// CompletionRates reports, for each question, the fraction of
// respondents who answered it among those it applied to — the
// item-nonresponse diagnostic every survey methods section includes.
// Results are in instrument order.
type CompletionRate struct {
	QuestionID string
	Asked      int
	Answered   int
	Rate       float64
}

// CompletionRates computes per-question completion over responses.
func (ins *Instrument) CompletionRates(responses []*Response) []CompletionRate {
	out := make([]CompletionRate, 0, len(ins.Questions))
	for _, q := range ins.Questions {
		cr := CompletionRate{QuestionID: q.ID}
		for _, r := range responses {
			if q.AskIf != nil && !q.AskIf(r) {
				continue
			}
			cr.Asked++
			if r.Has(q.ID) {
				cr.Answered++
			}
		}
		if cr.Asked > 0 {
			cr.Rate = float64(cr.Answered) / float64(cr.Asked)
		}
		out = append(out, cr)
	}
	return out
}

// OptionUniverse returns every option ever selected for a multi-choice
// question across responses, sorted — a data-quality check that catches
// vocabulary drift between waves.
func OptionUniverse(qid string, responses []*Response) []string {
	seen := map[string]bool{}
	for _, r := range responses {
		for _, c := range r.Choices(qid) {
			seen[c] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
