package survey

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleResponses(t *testing.T, ins *Instrument) []*Response {
	t.Helper()
	r1 := NewResponse("a", 2011)
	r1.Weight = 1.5
	r1.SetChoice("color", "red")
	r1.SetChoices("pets", []string{"cat"})
	r1.SetRating("happy", 3)
	r1.SetValue("age", 40.5)
	r1.SetText("notes", "hello, \"world\"\nnewline")
	r2 := NewResponse("b", 2024)
	r2.SetChoice("color", "blue")
	r2.SetChoices("pets", []string{"dog", "fish"})
	r2.SetRating("happy", 5)
	r2.SetText("dog_name", "Rex")
	for _, r := range []*Response{r1, r2} {
		if errs := ins.Validate(r); len(errs) != 0 {
			t.Fatalf("fixture invalid: %v", errs)
		}
	}
	return []*Response{r1, r2}
}

func TestJSONRoundTrip(t *testing.T) {
	ins := testInstrument(t)
	in := sampleResponses(t, ins)
	var buf bytes.Buffer
	if err := ins.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ins.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d responses", len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.ID != b.ID || a.Cohort != b.Cohort || a.Weight != b.Weight {
			t.Fatalf("metadata mismatch: %+v vs %+v", a, b)
		}
		if len(a.Answers) != len(b.Answers) {
			t.Fatalf("answer count mismatch for %s", a.ID)
		}
		for id, av := range a.Answers {
			bv, ok := b.Answers[id]
			if !ok {
				t.Fatalf("answer %s lost", id)
			}
			if av.Choice != bv.Choice || av.Rating != bv.Rating ||
				av.Value != bv.Value || av.Text != bv.Text ||
				strings.Join(av.Choices, "|") != strings.Join(bv.Choices, "|") {
				t.Fatalf("answer %s mismatch: %+v vs %+v", id, av, bv)
			}
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	ins := testInstrument(t)
	if _, err := ins.ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Unknown question.
	if _, err := ins.ReadJSON(strings.NewReader(
		`{"id":"x","cohort":2024,"weight":1,"answers":{"ghost":{"kind":"text","text":"boo"}}}`)); err == nil {
		t.Fatal("unknown question accepted")
	}
	// Kind mismatch.
	if _, err := ins.ReadJSON(strings.NewReader(
		`{"id":"x","cohort":2024,"weight":1,"answers":{"color":{"kind":"text","text":"red"}}}`)); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	// Valid JSON but invalid answer (fails validation).
	if _, err := ins.ReadJSON(strings.NewReader(
		`{"id":"x","cohort":2024,"weight":1,"answers":{"color":{"kind":"single","choice":"mauve"},"happy":{"kind":"likert","rating":3}}}`)); err == nil {
		t.Fatal("invalid choice accepted")
	}
}

// TestDecodeJSONSkipsValidation: DecodeJSON accepts representable but
// rule-breaking answers (the serving layer validates per response), yet
// still rejects payloads that cannot be represented at all.
func TestDecodeJSONSkipsValidation(t *testing.T) {
	ins := testInstrument(t)
	// Invalid choice decodes fine; Validate then reports it.
	out, err := ins.DecodeJSON(strings.NewReader(
		`{"id":"x","cohort":2024,"weight":1,"answers":{"color":{"kind":"single","choice":"mauve"},"happy":{"kind":"likert","rating":3}}}`))
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("decoded %d responses, want 1", len(out))
	}
	if errs := ins.Validate(out[0]); len(errs) == 0 {
		t.Fatal("Validate passed an invalid choice")
	}
	// Unknown questions and kind mismatches still fail at decode time.
	if _, err := ins.DecodeJSON(strings.NewReader(
		`{"id":"x","cohort":2024,"weight":1,"answers":{"ghost":{"kind":"text","text":"boo"}}}`)); err == nil {
		t.Fatal("unknown question decoded")
	}
	if _, err := ins.DecodeJSON(strings.NewReader(
		`{"id":"x","cohort":2024,"weight":1,"answers":{"color":{"kind":"text","text":"red"}}}`)); err == nil {
		t.Fatal("kind mismatch decoded")
	}
}

func TestWriteJSONUnknownQuestion(t *testing.T) {
	ins := testInstrument(t)
	r := NewResponse("x", 2024)
	r.SetText("ghost", "boo")
	var buf bytes.Buffer
	if err := ins.WriteJSON(&buf, []*Response{r}); err == nil {
		t.Fatal("unknown question written")
	}
}

func TestWriteCSV(t *testing.T) {
	ins := testInstrument(t)
	in := sampleResponses(t, ins)
	var buf bytes.Buffer
	if err := ins.WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("csv:\n%s", buf.String())
	}
	if !strings.HasPrefix(lines[0], "id,cohort,weight,color,pets,") {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.Contains(buf.String(), "dog|fish") {
		t.Fatalf("multi-choice join missing:\n%s", buf.String())
	}
	// Quoting: the embedded quote/newline field must be escaped.
	if !strings.Contains(buf.String(), `"hello, ""world""`) {
		t.Fatalf("quoting failed:\n%s", buf.String())
	}
}

func TestWriteCSVRejectsSeparatorInOption(t *testing.T) {
	ins, err := NewInstrument("x", []Question{
		{ID: "q", Kind: MultiChoice, Options: []string{"a|b", "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewResponse("r", 2024)
	r.SetChoices("q", []string{"a|b"})
	var buf bytes.Buffer
	if err := ins.WriteCSV(&buf, []*Response{r}); err == nil {
		t.Fatal("separator-containing option written")
	}
}

func TestTabulateSingle(t *testing.T) {
	ins := testInstrument(t)
	rs := sampleResponses(t, ins)
	tab, err := ins.Tabulate("color", rs)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Base != 2.5 || tab.RawBase != 2 {
		t.Fatalf("base=%g raw=%d", tab.Base, tab.RawBase)
	}
	if !almostEqual(tab.Share("red"), 1.5/2.5) || !almostEqual(tab.Share("blue"), 1/2.5) {
		t.Fatalf("shares: red=%g blue=%g", tab.Share("red"), tab.Share("blue"))
	}
	if tab.Share("green") != 0 {
		t.Fatal("green share should be 0")
	}
}

func TestTabulateMultiBaseIsRespondents(t *testing.T) {
	ins := testInstrument(t)
	rs := sampleResponses(t, ins)
	tab, err := ins.Tabulate("pets", rs)
	if err != nil {
		t.Fatal(err)
	}
	// r2 selected two pets but counts once in the base.
	if tab.Base != 2.5 {
		t.Fatalf("base=%g", tab.Base)
	}
	if tab.Counts["dog"] != 1 || tab.Counts["cat"] != 1.5 {
		t.Fatalf("counts=%v", tab.Counts)
	}
}

func TestTabulateOrdering(t *testing.T) {
	ins := testInstrument(t)
	rs := sampleResponses(t, ins)
	tab, _ := ins.Tabulate("color", rs)
	opts := tab.Options()
	if opts[0] != "red" { // highest weighted count
		t.Fatalf("options=%v", opts)
	}
	if len(opts) != 3 {
		t.Fatalf("options=%v", opts)
	}
}

func TestTabulateErrors(t *testing.T) {
	ins := testInstrument(t)
	if _, err := ins.Tabulate("nope", nil); err == nil {
		t.Fatal("unknown question accepted")
	}
	if _, err := ins.Tabulate("age", nil); err == nil {
		t.Fatal("numeric question accepted")
	}
	// Empty responses: zero base, zero shares, no crash.
	tab, err := ins.Tabulate("color", nil)
	if err != nil || tab.Share("red") != 0 {
		t.Fatalf("empty tabulation: %v %v", tab, err)
	}
}

func TestNumericValues(t *testing.T) {
	ins := testInstrument(t)
	rs := sampleResponses(t, ins)
	vals, ws, err := ins.NumericValues("age", rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != 40.5 || ws[0] != 1.5 {
		t.Fatalf("vals=%v ws=%v", vals, ws)
	}
	// Likert extraction.
	vals, _, err = ins.NumericValues("happy", rs)
	if err != nil || len(vals) != 2 {
		t.Fatalf("likert vals=%v err=%v", vals, err)
	}
	if _, _, err := ins.NumericValues("color", rs); err == nil {
		t.Fatal("choice question accepted")
	}
	if _, _, err := ins.NumericValues("nope", rs); err == nil {
		t.Fatal("unknown question accepted")
	}
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// Property: JSON round-trip preserves arbitrary valid numeric answers.
func TestQuickJSONNumericRoundTrip(t *testing.T) {
	ins := testInstrument(t)
	f := func(v float64, rating uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		age := math.Mod(math.Abs(v), 120)
		r := NewResponse("q", 2024)
		r.SetChoice("color", "green")
		r.SetRating("happy", int(rating%5)+1)
		r.SetValue("age", age)
		var buf bytes.Buffer
		if err := ins.WriteJSON(&buf, []*Response{r}); err != nil {
			return false
		}
		out, err := ins.ReadJSON(&buf)
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0].Value("age") == age && out[0].Rating("happy") == r.Rating("happy")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ins := testInstrument(t)
	in := sampleResponses(t, ins)
	var buf bytes.Buffer
	if err := ins.WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ins.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d responses", len(out))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.ID != b.ID || a.Cohort != b.Cohort || a.Weight != b.Weight {
			t.Fatalf("metadata mismatch: %+v vs %+v", a, b)
		}
		for id, av := range a.Answers {
			bv, ok := b.Answers[id]
			if !ok {
				t.Fatalf("answer %s lost for %s", id, a.ID)
			}
			if av.Choice != bv.Choice || av.Rating != bv.Rating ||
				av.Value != bv.Value || av.Text != bv.Text ||
				strings.Join(av.Choices, "|") != strings.Join(bv.Choices, "|") {
				t.Fatalf("answer %s mismatch: %+v vs %+v", id, av, bv)
			}
		}
	}
}

func TestReadCSVFailureInjection(t *testing.T) {
	ins := testInstrument(t)
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"bad header", "nope,cohort,weight\n"},
		{"unknown column", "id,cohort,weight,ghost\nx,2024,1,boo\n"},
		{"bad cohort", "id,cohort,weight,color\nx,twenty,1,red\n"},
		{"bad weight", "id,cohort,weight,color\nx,2024,heavy,red\n"},
		{"bad likert", "id,cohort,weight,happy\nx,2024,1,five\n"},
		{"bad numeric", "id,cohort,weight,age\nx,2024,1,old\n"},
		{"invalid choice", "id,cohort,weight,color,happy\nx,2024,1,mauve,3\n"},
	}
	for _, c := range cases {
		if _, err := ins.ReadCSV(strings.NewReader(c.input)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	// Valid minimal row (required answers present).
	ok := "id,cohort,weight,color,happy\nx,2024,1,red,3\n"
	rs, err := ins.ReadCSV(strings.NewReader(ok))
	if err != nil || len(rs) != 1 || rs[0].Choice("color") != "red" {
		t.Fatalf("valid row rejected: %v %v", rs, err)
	}
}
