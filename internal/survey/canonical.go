package survey

// This file defines the canonical rcpt instrument: the questionnaire the
// reconstructed study fields to both cohorts (with 2024-only items gated
// on cohort year by the analysis, not by skip logic, since cohort is
// response metadata). Option lists are exported so the population
// generator and the analysis tables share one vocabulary.

// Research fields (strata for weighting and per-field tables).
var Fields = []string{
	"astronomy",
	"biology",
	"chemistry",
	"computer science",
	"earth science",
	"economics",
	"engineering",
	"mathematics",
	"neuroscience",
	"physics",
	"political science",
	"sociology",
}

// CareerStages for the demographics table.
var CareerStages = []string{
	"undergraduate",
	"graduate student",
	"postdoc",
	"research staff",
	"faculty",
}

// Languages offered on the multi-select language question.
var Languages = []string{
	"python",
	"c",
	"c++",
	"fortran",
	"r",
	"matlab",
	"julia",
	"java",
	"shell",
	"javascript",
	"go",
	"rust",
	"perl",
	"mathematica",
	"sas/stata",
}

// ParallelismModes for the hardware/parallelism multi-select.
var ParallelismModes = []string{
	"serial only",
	"multicore (threads/OpenMP)",
	"mpi / multi-node",
	"gpu",
	"cluster batch jobs",
	"cloud",
	"distributed frameworks (spark/dask)",
}

// EngineeringPractices for the software-engineering multi-select.
var EngineeringPractices = []string{
	"version control",
	"automated testing",
	"continuous integration",
	"code review",
	"written documentation",
	"packaging/releases",
	"issue tracking",
	"code sharing on publication",
}

// ModernTools for the 2024-only tooling multi-select.
var ModernTools = []string{
	"ai code assistants",
	"containers (docker/apptainer)",
	"workflow managers (snakemake/nextflow)",
	"jupyter/notebooks",
	"package managers (conda/spack)",
	"cloud notebooks (colab)",
}

// Question IDs used throughout the pipeline; keep in sync with
// Canonical below.
const (
	QField        = "field"
	QCareer       = "career"
	QYearsCoding  = "years_coding"
	QTeamSize     = "team_size"
	QLanguages    = "languages"
	QParallelism  = "parallelism"
	QPractices    = "practices"
	QClusterUse   = "cluster_use"
	QClusterHours = "cluster_hours_week"
	QGPUShare     = "gpu_share"
	QModernTools  = "modern_tools"
	QBottleneck   = "bottleneck"
	QTraining     = "formal_training"
)

// ClusterUseOptions for the single-choice cluster usage frequency item.
var ClusterUseOptions = []string{
	"never",
	"a few times a year",
	"monthly",
	"weekly",
	"daily",
}

// Canonical returns the rcpt questionnaire. Construction cannot fail for
// this static definition, so errors panic (exercised by tests).
func Canonical() *Instrument {
	asksCluster := func(r *Response) bool {
		u := r.Choice(QClusterUse)
		return u != "" && u != "never"
	}
	qs := []Question{
		{ID: QField, Text: "What is your primary research field?",
			Kind: SingleChoice, Options: Fields, Required: true},
		{ID: QCareer, Text: "What is your career stage?",
			Kind: SingleChoice, Options: CareerStages, Required: true},
		{ID: QYearsCoding, Text: "For how many years have you written research software?",
			Kind: Numeric, Min: 0, Max: 60, Required: true},
		{ID: QTeamSize, Text: "How many people work on your main code base?",
			Kind: Numeric, Min: 1, Max: 1000},
		{ID: QLanguages, Text: "Which programming languages do you use for research? (select all)",
			Kind: MultiChoice, Options: Languages, Required: true},
		{ID: QParallelism, Text: "Which forms of parallel or large-scale computation do you use? (select all)",
			Kind: MultiChoice, Options: ParallelismModes, Required: true},
		{ID: QPractices, Text: "Which software-engineering practices does your group use? (select all)",
			Kind: MultiChoice, Options: EngineeringPractices, Required: true},
		{ID: QClusterUse, Text: "How often do you use a shared computing cluster?",
			Kind: SingleChoice, Options: ClusterUseOptions, Required: true},
		{ID: QClusterHours, Text: "Roughly how many hours of cluster compute do you consume per week?",
			Kind: Numeric, Min: 0, Max: 100000, AskIf: asksCluster},
		{ID: QGPUShare, Text: "What fraction of your compute uses GPUs? (percent)",
			Kind: Numeric, Min: 0, Max: 100},
		{ID: QModernTools, Text: "Which of these tools do you use? (select all; 2024 instrument only)",
			Kind: MultiChoice, Options: ModernTools},
		{ID: QBottleneck, Text: "In one sentence, what most limits your computational research?",
			Kind: FreeText},
		{ID: QTraining, Text: "Have you received formal software-development training? (1 none .. 5 extensive)",
			Kind: Likert, Scale: 5, Required: true},
	}
	ins, err := NewInstrument("rcpt-2024", qs)
	if err != nil {
		panic("survey: canonical instrument invalid: " + err.Error())
	}
	return ins
}
