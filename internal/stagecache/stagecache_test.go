package stagecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// key derives a deterministic hex key for tests.
func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestMemoryRoundTrip(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	if _, ok := c.Load(k); ok {
		t.Fatal("load before store hit")
	}
	c.Store(k, []byte("payload-a"))
	got, ok := c.Load(k)
	if !ok || string(got) != "payload-a" {
		t.Fatalf("load = %q, %v", got, ok)
	}
	c.Delete(k)
	if _, ok := c.Load(k); ok {
		t.Fatal("load after delete hit")
	}
}

func TestLRUBounds(t *testing.T) {
	c, err := New(Options{MaxEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Store(key(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Oldest two evicted, newest three resident.
	if _, ok := c.Load(key("k0")); ok {
		t.Fatal("k0 survived eviction")
	}
	if _, ok := c.Load(key("k4")); !ok {
		t.Fatal("k4 evicted")
	}
}

func TestByteBounds(t *testing.T) {
	c, err := New(Options{MaxEntries: 100, MaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	c.Store(key("a"), make([]byte, 40))
	c.Store(key("b"), make([]byte, 40))
	if c.Bytes() > 64 {
		t.Fatalf("Bytes = %d, want <= 64", c.Bytes())
	}
	if _, ok := c.Load(key("a")); ok {
		t.Fatal("a should have been evicted by the byte bound")
	}
	if _, ok := c.Load(key("b")); !ok {
		t.Fatal("b missing")
	}
}

func TestOversizePayloadSkipped(t *testing.T) {
	c, err := New(Options{MaxEntryBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Store(key("big"), make([]byte, 9))
	if _, ok := c.Load(key("big")); ok {
		t.Fatal("oversize payload was cached")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestDiskReadThroughAndRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key("persisted")
	c.Store(k, []byte("survives"))

	// A fresh cache over the same directory — a process restart — serves
	// the entry by disk read-through without any re-store.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	restored, corrupt := c2.Warm()
	if restored != 1 || corrupt != 0 {
		t.Fatalf("Warm = (%d, %d), want (1, 0)", restored, corrupt)
	}
	got, ok := c2.Load(k)
	if !ok || string(got) != "survives" {
		t.Fatalf("load after restart = %q, %v", got, ok)
	}
}

func TestWarmSweepsTempAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Store(key("good"), []byte("ok"))

	// A crashed mid-write temp file and a truncated entry.
	if err := os.WriteFile(filepath.Join(dir, stgTempPrefix+"123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := key("bad")
	if err := os.WriteFile(filepath.Join(dir, bad+stgSuffix), []byte(stgMagic+"trunc"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	restored, corrupt := c2.Warm()
	if restored != 1 || corrupt != 1 {
		t.Fatalf("Warm = (%d, %d), want (1, 1)", restored, corrupt)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), stgTempPrefix) {
			t.Fatalf("temp file %s survived warm sweep", de.Name())
		}
		if de.Name() == bad+stgSuffix {
			t.Fatal("corrupt entry survived warm sweep")
		}
	}
	if _, ok := c2.Load(bad); ok {
		t.Fatal("corrupt entry loaded")
	}
}

func TestCorruptEntryDeletedOnLoad(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key("flip")
	c.Store(k, []byte("content that will be damaged"))

	// Bit-flip the payload region on disk, then force a disk read by
	// using a fresh cache (empty memory tier).
	path := filepath.Join(dir, k+stgSuffix)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Load(k); ok {
		t.Fatal("bit-flipped entry loaded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("bit-flipped entry not deleted")
	}
}

func TestEnvelopeKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := key("a"), key("b")
	c.Store(ka, []byte("a-bytes"))
	// Copy a's entry under b's name: valid checksum, wrong identity.
	blob, err := os.ReadFile(filepath.Join(dir, ka+stgSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, kb+stgSuffix), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Load(kb); ok {
		t.Fatal("cross-copied entry served under the wrong key")
	}
}

func TestMetricsCounting(t *testing.T) {
	reg := obs.NewRegistry()
	m := &Metrics{
		Hits:    reg.Counter("t_hits", "t"),
		Misses:  reg.Counter("t_misses", "t"),
		Stores:  reg.Counter("t_stores", "t"),
		Entries: reg.Gauge("t_entries", "t"),
	}
	c, err := New(Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	k := key("m")
	c.Load(k)
	c.Store(k, []byte("x"))
	c.Load(k)
	if m.Misses.Value() != 1 || m.Hits.Value() != 1 || m.Stores.Value() != 1 {
		t.Fatalf("counters = hits %d misses %d stores %d", m.Hits.Value(), m.Misses.Value(), m.Stores.Value())
	}
	if m.Entries.Value() != 1 {
		t.Fatalf("entries gauge = %d", m.Entries.Value())
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	k := key("env")
	payload := bytes.Repeat([]byte{0xAB, 0, 0xCD}, 1000)
	blob := encodeEnvelope(k, payload)
	got, err := decodeEnvelope(blob, k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after envelope round trip")
	}
	// Every truncation must fail verification, never mis-decode.
	for cut := 0; cut < len(blob); cut += 97 {
		if _, err := decodeEnvelope(blob[:cut], k); err == nil {
			t.Fatalf("truncated envelope at %d decoded", cut)
		}
	}
}
