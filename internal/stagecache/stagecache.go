// Package stagecache is the content-addressed store behind the
// pipeline's Merkle stage cache. It knows nothing about stages: keys
// are opaque hex digests derived by internal/core (stage name ‖ version
// tag ‖ the config fields the stage actually reads ‖ sorted upstream
// keys — see core's key derivation), and values are the stage-output
// payloads core's per-stage codecs produce. Because a key commits to
// the whole upstream derivation, an entry can be trusted forever: there
// is no invalidation protocol, only derivation — a config change that
// affects a stage changes its key (and every key downstream), and
// everything unaffected keeps hitting.
//
// Storage is two-tier: a count+byte-bounded in-memory LRU in front of
// an optional on-disk spill in the crash-safe idiom the serving layer's
// artifact cache established (temp file + fsync + atomic rename), each
// entry a checksummed "rcpt-stg/1" envelope verified on every load.
// The failure contract matches the rest of the repo: a corrupt, torn,
// or truncated entry is deleted and reported as a miss — the stage
// recomputes, so faults cost latency, never bytes.
package stagecache

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Options configures a Cache. The zero value is usable: memory-only
// with production default bounds.
type Options struct {
	// MaxEntries bounds the number of payloads held in memory
	// (<=0: 256).
	MaxEntries int
	// MaxBytes bounds the total payload bytes held in memory
	// (<=0: 256 MiB).
	MaxBytes int64
	// MaxEntryBytes is the largest single payload worth caching
	// (<=0: 64 MiB). Larger stage outputs are cheaper to recompute
	// than to let one entry monopolize the cache, so Store skips them.
	MaxEntryBytes int64
	// Dir enables the disk tier: payloads are spilled here crash-safely
	// and read through on memory misses, so a restarted process warm
	// starts its stage reuse. Empty keeps the cache memory-only.
	Dir string
	// Metrics, when non-nil, receives hit/miss/store/eviction counts.
	// Nil disables instrumentation (library use, tests).
	Metrics *Metrics
}

// Metrics is the instrumentation surface a Cache feeds. All fields are
// optional; nil counters are skipped.
type Metrics struct {
	Hits       *obs.Counter // loads served (memory or disk)
	Misses     *obs.Counter // loads that found nothing usable
	Stores     *obs.Counter // payloads accepted into the cache
	Evictions  *obs.Counter // memory-LRU evictions (disk copies survive)
	DiskHits   *obs.Counter // loads that had to read the disk tier
	Corrupt    *obs.Counter // envelopes that failed verification (deleted)
	DiskErrors *obs.Counter // best-effort disk writes that failed
	Entries    *obs.Gauge   // payloads currently resident in memory
	Bytes      *obs.Gauge   // payload bytes currently resident in memory
}

// Cache is a content-addressed stage-output store. Safe for concurrent
// use.
type Cache struct {
	opts Options
	disk *diskTier // nil when Options.Dir is empty

	mu    sync.Mutex
	ll    *list.List // front = most recently used; values are *memEntry
	items map[string]*list.Element
	bytes int64
}

// memEntry is one resident payload.
type memEntry struct {
	key     string
	payload []byte
}

// New builds a Cache. When Options.Dir is set the directory is created;
// its existing contents become visible immediately through read-through
// loads (call Warm to validate and count them up front).
func New(opts Options) (*Cache, error) {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 256
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 256 << 20
	}
	if opts.MaxEntryBytes <= 0 {
		opts.MaxEntryBytes = 64 << 20
	}
	c := &Cache{
		opts:  opts,
		ll:    list.New(),
		items: map[string]*list.Element{},
	}
	if opts.Dir != "" {
		disk, err := newDiskTier(opts.Dir)
		if err != nil {
			return nil, err
		}
		c.disk = disk
	}
	return c, nil
}

// Load returns the payload stored under key, reading through to the
// disk tier on a memory miss (the disk copy is promoted). The returned
// slice is shared: callers must treat it as read-only, which every
// stage decoder does by construction. A corrupt disk entry is deleted
// and reported as a miss.
func (c *Cache) Load(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		payload := el.Value.(*memEntry).payload
		c.mu.Unlock()
		c.count(c.opts.Metrics.hits())
		return payload, true
	}
	c.mu.Unlock()
	if c.disk != nil {
		payload, status := c.disk.read(key)
		switch status {
		case diskOK:
			c.put(key, payload)
			c.count(c.opts.Metrics.diskHits())
			c.count(c.opts.Metrics.hits())
			return payload, true
		case diskCorrupt:
			c.count(c.opts.Metrics.corrupt())
		}
	}
	c.count(c.opts.Metrics.misses())
	return nil, false
}

// Store accepts a payload under key: into the memory LRU and, when the
// disk tier is on, spilled crash-safely. Oversized payloads (past
// MaxEntryBytes) are skipped entirely — recomputing them is cheaper
// than letting one entry evict everything else. Disk failures are
// counted, never fatal: the memory copy still serves this process.
func (c *Cache) Store(key string, payload []byte) {
	if key == "" || int64(len(payload)) > c.opts.MaxEntryBytes {
		return
	}
	c.put(key, payload)
	c.count(c.opts.Metrics.stores())
	if c.disk != nil {
		if err := c.disk.write(key, payload); err != nil {
			c.count(c.opts.Metrics.diskErrors())
		}
	}
}

// Delete removes key from both tiers. Core calls it when a payload
// decodes as structurally invalid despite a valid checksum (a codec
// skew), so the entry cannot be retried forever.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	c.mu.Unlock()
	c.gauges()
	if c.disk != nil {
		c.disk.remove(key)
	}
}

// Warm validates every entry in the disk tier up front: corrupt
// envelopes and leftover temp files from a crashed write are deleted,
// valid entries are counted as restorable (they load lazily through
// Load, so boot cost is one verification scan, not a full residency
// load). The scan order is explicitly sorted so warm-start counts and
// any order-dependent bookkeeping are deterministic across filesystems.
func (c *Cache) Warm() (restored, corrupt int) {
	if c.disk == nil {
		return 0, 0
	}
	restored, corrupt = c.disk.warm()
	for i := 0; i < corrupt; i++ {
		c.count(c.opts.Metrics.corrupt())
	}
	return restored, corrupt
}

// Len reports resident memory entries (tests and gauges).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports resident memory payload bytes (tests and gauges).
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// put inserts (or refreshes) a memory entry and evicts past bounds.
func (c *Cache) put(key string, payload []byte) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*memEntry)
		c.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&memEntry{key: key, payload: payload})
		c.bytes += int64(len(payload))
	}
	evicted := 0
	for (c.ll.Len() > c.opts.MaxEntries || c.bytes > c.opts.MaxBytes) && c.ll.Len() > 1 {
		c.removeLocked(c.ll.Back())
		evicted++
	}
	c.mu.Unlock()
	for i := 0; i < evicted; i++ {
		c.count(c.opts.Metrics.evictions())
	}
	c.gauges()
}

// removeLocked drops one element from the LRU. Caller holds mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*memEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.payload))
}

// count increments a counter when instrumentation is attached.
func (c *Cache) count(ctr *obs.Counter) {
	if ctr != nil {
		ctr.Inc()
	}
}

// gauges publishes residency after any mutation.
func (c *Cache) gauges() {
	m := c.opts.Metrics
	if m == nil {
		return
	}
	c.mu.Lock()
	entries, bytes := int64(c.ll.Len()), c.bytes
	c.mu.Unlock()
	if m.Entries != nil {
		m.Entries.Set(entries)
	}
	if m.Bytes != nil {
		m.Bytes.Set(bytes)
	}
}

// nil-safe metric accessors: a nil *Metrics yields nil counters, which
// count skips.

func (m *Metrics) hits() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Hits
}

func (m *Metrics) misses() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Misses
}

func (m *Metrics) stores() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Stores
}

func (m *Metrics) evictions() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Evictions
}

func (m *Metrics) diskHits() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.DiskHits
}

func (m *Metrics) corrupt() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Corrupt
}

func (m *Metrics) diskErrors() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.DiskErrors
}
