package stagecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Disk tier: one file per key, named <key>.stg, holding a checksummed
// "rcpt-stg/1" envelope. Writes follow the repo's crash-safe idiom
// (temp file in the same directory + fsync + atomic rename + best-
// effort directory fsync), so a kill at any instant leaves either no
// entry or a complete one — and a torn entry that somehow lands under a
// valid name still fails its checksum and is deleted on first read.

const (
	stgMagic      = "rcpt-stg/1\n"
	stgSuffix     = ".stg"
	stgTempPrefix = ".stg-"
	// stgMaxPayload rejects absurd length headers before allocating.
	stgMaxPayload = 1 << 31
)

// diskStatus classifies one disk read.
type diskStatus int

const (
	diskMiss    diskStatus = iota // no entry on disk
	diskOK                        // entry read and verified
	diskCorrupt                   // entry failed verification (deleted)
)

type diskTier struct {
	dir string
}

func newDiskTier(dir string) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stagecache: dir: %w", err)
	}
	return &diskTier{dir: dir}, nil
}

// validKey reports whether key is usable as a content-addressed
// filename: non-empty lowercase hex, the form core's SHA-256 derivation
// produces. Anything else never touches the filesystem.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (d *diskTier) path(key string) string {
	return filepath.Join(d.dir, key+stgSuffix)
}

// encodeEnvelope frames a payload: magic, key, payload length, SHA-256,
// payload. The embedded key lets warm scans verify an entry belongs to
// its filename (a renamed or cross-copied file is corruption, not a
// different stage's valid output).
func encodeEnvelope(key string, payload []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(stgMagic) + 2*binary.MaxVarintLen64 + len(key) + sha256.Size + len(payload))
	b.WriteString(stgMagic)
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(key)))])
	b.WriteString(key)
	b.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(payload)))])
	sum := sha256.Sum256(payload)
	b.Write(sum[:])
	b.Write(payload)
	return b.Bytes()
}

// decodeEnvelope parses and verifies one envelope, checking the framed
// key against wantKey. It returns the payload or an error describing
// the corruption.
func decodeEnvelope(blob []byte, wantKey string) ([]byte, error) {
	if len(blob) < len(stgMagic) || string(blob[:len(stgMagic)]) != stgMagic {
		return nil, fmt.Errorf("bad magic")
	}
	rest := blob[len(stgMagic):]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || keyLen > 128 || uint64(len(rest)-n) < keyLen {
		return nil, fmt.Errorf("bad key length")
	}
	rest = rest[n:]
	key := string(rest[:keyLen])
	rest = rest[keyLen:]
	if key != wantKey {
		return nil, fmt.Errorf("key mismatch")
	}
	payLen, n := binary.Uvarint(rest)
	if n <= 0 || payLen > stgMaxPayload {
		return nil, fmt.Errorf("bad payload length")
	}
	rest = rest[n:]
	if uint64(len(rest)) != sha256.Size+payLen {
		return nil, fmt.Errorf("truncated")
	}
	var want [sha256.Size]byte
	copy(want[:], rest[:sha256.Size])
	payload := rest[sha256.Size:]
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// read loads and verifies one entry. Corrupt files are deleted so they
// are never retried.
func (d *diskTier) read(key string) ([]byte, diskStatus) {
	if !validKey(key) {
		return nil, diskMiss
	}
	blob, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, diskMiss
	}
	payload, err := decodeEnvelope(blob, key)
	if err != nil {
		os.Remove(d.path(key))
		return nil, diskCorrupt
	}
	return payload, diskOK
}

// write spills one entry crash-safely.
func (d *diskTier) write(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("stagecache: invalid key %q", key)
	}
	blob := encodeEnvelope(key, payload)
	tmp, err := os.CreateTemp(d.dir, stgTempPrefix+"*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		// The write error is the one worth reporting; cleanup is
		// best-effort by design.
		_ = tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, d.path(key)); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Durability of the rename itself: fsync the directory. Best-effort
	// — some filesystems refuse directory fsync, and the entry is still
	// atomic without it.
	if dirF, err := os.Open(d.dir); err == nil {
		_ = dirF.Sync()
		_ = dirF.Close()
	}
	return nil
}

// remove deletes one entry (decode-skew invalidation).
func (d *diskTier) remove(key string) {
	if validKey(key) {
		os.Remove(d.path(key))
	}
}

// warm scans the tier: sweeps temp files left by crashed writes,
// verifies every entry end to end (checksum included), deletes corrupt
// ones, and counts what survives. Entries are visited in explicitly
// sorted name order — warm-start metrics must not depend on directory
// iteration order, so the sort is ours, not the filesystem's.
func (d *diskTier) warm() (restored, corrupt int) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, 0
	}
	names := make([]string, 0, len(entries))
	for _, de := range entries {
		if !de.IsDir() {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if strings.HasPrefix(name, stgTempPrefix) {
			os.Remove(filepath.Join(d.dir, name))
			continue
		}
		if !strings.HasSuffix(name, stgSuffix) {
			continue
		}
		key := strings.TrimSuffix(name, stgSuffix)
		if !validKey(key) {
			// Not a name any derivation produces: junk, not a cache entry.
			os.Remove(filepath.Join(d.dir, name))
			corrupt++
			continue
		}
		if _, status := d.read(key); status == diskOK {
			restored++
		} else {
			corrupt++
		}
	}
	return restored, corrupt
}
