package table

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	rows := testRows(500)
	src, err := FromSlice[testRow](testCodec{}, Options{BatchSize: 64}, rows)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeStream[testRow](&buf, testCodec{}, src); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStream[testRow](&buf, testCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len(Exact) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", got.Len(Exact), len(rows))
	}
	var out []testRow
	sc := got.Scanner(0, 1, 1)
	for sc.Scan() {
		out = append(out, sc.Row())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, rows) {
		t.Fatal("decoded rows differ from source")
	}
	// The content hash must survive the trip: storage layout (batches vs
	// one resident Columns) never reaches the hash.
	h1, err := src.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := got.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash changed across stream: %x vs %x", h1, h2)
	}
}

func TestStreamEncodingInvariantToStorage(t *testing.T) {
	rows := testRows(300)
	small, _ := FromSlice[testRow](testCodec{}, Options{BatchSize: 16}, rows)
	big, _ := FromSlice[testRow](testCodec{}, Options{BatchSize: 4096}, rows)
	var b1, b2 bytes.Buffer
	if err := EncodeStream[testRow](&b1, testCodec{}, small); err != nil {
		t.Fatal(err)
	}
	if err := EncodeStream[testRow](&b2, testCodec{}, big); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("stream bytes depend on batch size")
	}
}

func TestStreamDetectsCorruption(t *testing.T) {
	rows := testRows(100)
	src, _ := FromSlice[testRow](testCodec{}, Options{}, rows)
	var buf bytes.Buffer
	if err := EncodeStream[testRow](&buf, testCodec{}, src); err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), buf.Bytes()...)

	cases := map[string]func([]byte) []byte{
		"flipped payload byte": func(b []byte) []byte {
			b[len(b)-3] ^= 0xff
			return b
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bad magic": func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		},
		"empty": func([]byte) []byte { return nil },
	}
	for name, corrupt := range cases {
		body := corrupt(append([]byte(nil), pristine...))
		_, err := DecodeStream[testRow](bytes.NewReader(body), testCodec{})
		var ie *IntegrityError
		if !errors.As(err, &ie) {
			t.Errorf("%s: err = %v, want *IntegrityError", name, err)
		}
	}
}

func TestFromColumnsSharding(t *testing.T) {
	cols := (testCodec{}).NewColumns()
	rows := testRows(97)
	for _, r := range rows {
		cols.Append(r)
	}
	tab := FromColumns[testRow](testCodec{}, cols)
	// Scanning shard-by-shard in ascending order must reproduce the
	// whole table for any shard count.
	for _, total := range []int{1, 2, 3, 7, 97, 200} {
		var out []testRow
		for s := 0; s < total; s++ {
			sc := tab.Scanner(s, s+1, total)
			for sc.Scan() {
				out = append(out, sc.Row())
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(out, rows) {
			t.Fatalf("shard total %d: reassembled rows differ", total)
		}
	}
}
