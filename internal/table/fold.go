package table

import (
	"repro/internal/parallel"
)

// This file holds the consumer-side helpers: streaming iteration and
// shard-parallel aggregation with a fixed merge order.
//
// Determinism rules (enforced by convention + the shard-count
// equivalence test):
//
//   - Each and FoldSeq stream one scanner in row order — the only legal
//     shape for float accumulation, where re-association changes bits.
//   - ShardFold fans out over shard scanners and merges partials in
//     ascending shard index order. Legal only for order-free
//     aggregations: integer counts, set unions, histograms,
//     collect-then-sort. The merge order is fixed so even "mostly
//     order-free" merges (e.g. appending to a slice that is sorted
//     later with a non-total comparator) stay reproducible.

// Each streams every row of t in row order through fn; fn returning
// false stops early.
func Each[T any](t Table[T], fn func(T) bool) error {
	sc := t.Scanner(0, 1, 1)
	for sc.Scan() {
		if !fn(sc.Row()) {
			break
		}
	}
	return sc.Err()
}

// FoldSeq reduces t in strict row order — the required shape for
// float sums feeding artifacts.
func FoldSeq[T, A any](t Table[T], acc A, fold func(A, T) A) (A, error) {
	sc := t.Scanner(0, 1, 1)
	for sc.Scan() {
		acc = fold(acc, sc.Row())
	}
	if err := sc.Err(); err != nil {
		var zero A
		return zero, err
	}
	return acc, nil
}

// ShardFold reduces t over `shards` concurrent shard scanners, then
// merges the per-shard partials in ascending shard order. ORDER-FREE
// AGGREGATIONS ONLY — see the package comment; float folds must use
// FoldSeq instead.
func ShardFold[T, A any](t Table[T], shards int, newAcc func() A, fold func(A, T) A, merge func(A, A) A) (A, error) {
	if shards <= 0 {
		shards = 1
	}
	if n := t.Len(Approx); shards > n && n > 0 {
		shards = n
	}
	idx := make([]int, shards)
	for i := range idx {
		idx[i] = i
	}
	partials, err := parallel.Map(shards, idx, func(_ int, s int) (A, error) {
		acc := newAcc()
		sc := t.Scanner(s, s+1, shards)
		for sc.Scan() {
			acc = fold(acc, sc.Row())
		}
		if err := sc.Err(); err != nil {
			var zero A
			return zero, err
		}
		return acc, nil
	})
	if err != nil {
		var zero A
		return zero, err
	}
	out := partials[0]
	for _, p := range partials[1:] { // fixed ascending shard order
		out = merge(out, p)
	}
	return out, nil
}

// ShardCollect maps every row through fn over `shards` concurrent
// scanners and concatenates the per-shard slices in ascending shard
// order — so the result is in row order, same as a sequential scan.
func ShardCollect[T, R any](t Table[T], shards int, fn func(T) R) ([]R, error) {
	parts, err := ShardFoldParts(t, shards, func(acc []R, row T) []R {
		return append(acc, fn(row))
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]R, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// ShardFoldParts runs a per-shard fold and returns the partials in
// shard order, for callers that need a custom merge.
func ShardFoldParts[T, A any](t Table[T], shards int, fold func(A, T) A) ([]A, error) {
	if shards <= 0 {
		shards = 1
	}
	if n := t.Len(Approx); shards > n && n > 0 {
		shards = n
	}
	idx := make([]int, shards)
	for i := range idx {
		idx[i] = i
	}
	return parallel.Map(shards, idx, func(_ int, s int) (A, error) {
		var acc A
		sc := t.Scanner(s, s+1, shards)
		for sc.Scan() {
			acc = fold(acc, sc.Row())
		}
		if err := sc.Err(); err != nil {
			var zero A
			return zero, err
		}
		return acc, nil
	})
}

// Rows materializes every row of t into a slice — the bridge back to
// []T consumers (derived views, legacy call sites, tests).
func Rows[T any](t Table[T]) ([]T, error) {
	out := make([]T, 0, t.Len(Exact))
	err := Each(t, func(row T) bool {
		out = append(out, row)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MustRows is Rows for in-memory tables whose scan cannot fail (Slice,
// Concat of Slices); it panics on error rather than returning one.
func MustRows[T any](t Table[T]) []T {
	rows, err := Rows(t)
	if err != nil {
		panic("table: " + err.Error())
	}
	return rows
}
