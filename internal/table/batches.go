package table

import (
	"fmt"
	"sync"
)

// Options tunes execution of a Batches table. Every knob here is an
// execution detail: none may influence artifact bytes (the shard-count
// equivalence test pins this).
type Options struct {
	// BatchSize is rows per column batch (default 8192).
	BatchSize int
	// SpillDir, when set, lets batches spill to disk under the given
	// directory using the crash-safe checksum format in spill.go. Empty
	// means fully resident. The directory must be private to one table.
	// Deliberately explicit — pipeline code may not consult the
	// environment (rngpurity), so there is no os.TempDir fallback.
	SpillDir string
	// Resident caps in-memory batches while building and scanning once
	// SpillDir is set (default 4; minimum 2 so a scanner can hold the
	// current batch and prefetch the next).
	Resident int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 8192
	}
	if o.Resident < 2 {
		o.Resident = 4
	}
	return o
}

// batch is one column batch: resident (cols != nil), spilled (cols ==
// nil, on disk at spillPath), or both.
type batch[T any] struct {
	rows int
	cols Columns[T] // nil when evicted to disk
}

// Batches is a Table backed by a sequence of column batches. Built once
// through a Builder, then immutable and safe for concurrent scans.
//
// Memory model: with SpillDir unset all batches stay resident (still a
// large win over []T — columnar layout drops per-row string headers via
// dictionaries). With SpillDir set, at most Options.Resident batches
// are resident per table during the build, and scans materialize
// spilled batches on demand with one-batch lookahead prefetch,
// re-evicting behind the cursor. Peak memory is then O(BatchSize ×
// resident cap), independent of row count — the property the 100×/1000×
// trace runs rely on.
type Batches[T any] struct {
	codec Codec[T]
	opt   Options
	total int

	mu      sync.Mutex
	batches []batch[T]
	resident int // count of batches with cols != nil

	// rebuild recomputes rows [lo, hi) into a fresh Columns when a
	// spill file fails its integrity check. Deterministic generators
	// make this exact: recomputed rows are byte-identical, so a corrupt
	// spill can never change artifact bytes — only cost time.
	rebuild func(lo, hi int, into Columns[T]) error

	hashOnce sync.Once
	hash     uint64
	hashErr  error
}

// Builder accumulates rows into a Batches table. Not safe for
// concurrent use; call Finish exactly once.
type Builder[T any] struct {
	t   *Batches[T]
	cur Columns[T]
	err error
}

// NewBuilder returns a builder writing batches under the given options.
func NewBuilder[T any](codec Codec[T], opt Options) *Builder[T] {
	t := &Batches[T]{codec: codec, opt: opt.withDefaults()}
	return &Builder[T]{t: t, cur: codec.NewColumns()}
}

// Append adds one row. Errors from spilling are deferred to Finish so
// hot loops stay branch-light.
func (b *Builder[T]) Append(row T) {
	b.cur.Append(row)
	b.t.total++
	if b.cur.Len() >= b.t.opt.BatchSize {
		b.cut()
	}
}

// cut seals the current batch and starts a new one.
func (b *Builder[T]) cut() {
	if b.cur.Len() == 0 {
		return
	}
	b.t.batches = append(b.t.batches, batch[T]{rows: b.cur.Len(), cols: b.cur})
	b.t.resident++
	b.cur = b.t.codec.NewColumns()
	if b.t.opt.SpillDir != "" && b.t.resident > b.t.opt.Resident {
		// Evict the oldest still-resident batch: the build writes
		// forward, so older batches are the coldest.
		for bi := range b.t.batches {
			if b.t.batches[bi].cols != nil {
				if err := writeSpill(spillPath(b.t.opt.SpillDir, bi), b.t.batches[bi].cols); err != nil {
					if b.err == nil {
						b.err = err
					}
					return // keep resident; surface at Finish
				}
				b.t.batches[bi].cols = nil
				b.t.resident--
				break
			}
		}
	}
}

// Err reports the first deferred build error.
func (b *Builder[T]) Err() error { return b.err }

// Finish seals the table. The builder must not be reused.
func (b *Builder[T]) Finish() (*Batches[T], error) {
	b.cut()
	if b.err != nil {
		return nil, b.err
	}
	t := b.t
	b.t, b.cur = nil, nil
	return t, nil
}

// SetRebuild installs the deterministic recompute hook used when a
// spill file fails integrity checks. rebuild must append exactly rows
// [lo, hi) of the table, in order, into the supplied Columns.
func (t *Batches[T]) SetRebuild(rebuild func(lo, hi int, into Columns[T]) error) {
	t.rebuild = rebuild
}

// Len implements Table.
func (t *Batches[T]) Len(CountMode) int { return t.total }

// Hash implements Table: the row-order FNV-1a chain over
// Codec.HashRow, cached after the first call.
func (t *Batches[T]) Hash() (uint64, error) {
	t.hashOnce.Do(func() {
		t.hash, t.hashErr = HashRows[T](t, t.codec.HashRow)
	})
	return t.hash, t.hashErr
}

// Scanner implements Table.
func (t *Batches[T]) Scanner(start, limit, total int) Scanner[T] {
	lo, hi := ShardRange(start, limit, total, t.total)
	return t.rowScanner(lo, hi)
}

// batchStart returns the first global row index of batch bi.
func (t *Batches[T]) batchStart(bi int) int {
	// Batches are all full (BatchSize rows) except the last, so the
	// prefix sum is closed-form for bi < len; fall back to the generic
	// walk only if that invariant ever changes.
	if bi <= 0 {
		return 0
	}
	off := 0
	for i := 0; i < bi; i++ {
		off += t.batches[i].rows
	}
	return off
}

// materialize returns the resident Columns for batch bi, loading (and
// verifying) the spill file if needed, rebuilding on corruption.
// Callers on the scan path pass evictBehind >= 0 to re-evict already
// spilled batches before that index once over the residency cap.
func (t *Batches[T]) materialize(bi int) (Columns[T], error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.materializeLocked(bi)
}

func (t *Batches[T]) materializeLocked(bi int) (Columns[T], error) {
	b := &t.batches[bi]
	if b.cols != nil {
		return b.cols, nil
	}
	cols := t.codec.NewColumns()
	err := readSpill(spillPath(t.opt.SpillDir, bi), cols)
	if err != nil {
		if _, corrupt := err.(*corruptSpillError); !corrupt || t.rebuild == nil {
			return nil, err
		}
		// Corrupt spill: recompute deterministically and rewrite the
		// file. Rows come back identical, so bytes cannot change.
		lo := t.batchStart(bi)
		cols = t.codec.NewColumns()
		if rerr := t.rebuild(lo, lo+b.rows, cols); rerr != nil {
			return nil, fmt.Errorf("%v; rebuild failed: %w", err, rerr)
		}
		if cols.Len() != b.rows {
			return nil, fmt.Errorf("%v; rebuild returned %d rows, want %d", err, cols.Len(), b.rows)
		}
		if werr := writeSpill(spillPath(t.opt.SpillDir, bi), cols); werr != nil {
			return nil, fmt.Errorf("%v; rewrite failed: %w", err, werr)
		}
	}
	b.cols = cols
	t.resident++
	t.evictColdLocked(bi)
	return cols, nil
}

// evictColdLocked drops resident batches other than keep back to disk
// presence only (their spill files already exist) while over the cap.
func (t *Batches[T]) evictColdLocked(keep int) {
	if t.opt.SpillDir == "" {
		return
	}
	for bi := range t.batches {
		if t.resident <= t.opt.Resident {
			return
		}
		if bi == keep || t.batches[bi].cols == nil {
			continue
		}
		// Only drop batches that are safely on disk; batches never
		// spilled during the build stay resident.
		if !spillExists(t.opt.SpillDir, bi) {
			continue
		}
		t.batches[bi].cols = nil
		t.resident--
	}
}

func (t *Batches[T]) rowScanner(lo, hi int) Scanner[T] {
	return &batchScanner[T]{t: t, pos: lo, hi: hi, bi: -1}
}

// batchScanner iterates rows [pos, hi) across batches, materializing
// spilled batches on demand and prefetching the next one in the
// background while the caller consumes the current batch.
type batchScanner[T any] struct {
	t   *Batches[T]
	pos int // next global row to deliver
	hi  int
	bi  int        // current batch index, -1 before first Scan
	off int        // global row index of batches[bi][0]
	i   int        // index within current batch of the current row
	cur Columns[T]
	err error

	prefetchBi int                 // batch index the prefetch targets, 0 = none
	prefetchCh chan prefetched[T]
}

type prefetched[T any] struct {
	bi   int
	cols Columns[T]
	err  error
}

func (s *batchScanner[T]) Scan() bool {
	if s.err != nil || s.pos >= s.hi {
		return false
	}
	if s.bi >= 0 && s.pos-s.off < s.t.batches[s.bi].rows {
		// Fast path: next row is in the current batch.
		s.i = s.pos - s.off
		s.pos++
		return true
	}
	// Locate the batch containing s.pos.
	bi, off := s.bi, s.off
	if bi < 0 {
		bi, off = 0, 0
	}
	for bi < len(s.t.batches) && off+s.t.batches[bi].rows <= s.pos {
		off += s.t.batches[bi].rows
		bi++
	}
	if bi >= len(s.t.batches) {
		return false
	}
	cols, err := s.fetch(bi)
	if err != nil {
		s.err = err
		return false
	}
	s.bi, s.off, s.cur = bi, off, cols
	s.i = s.pos - off
	s.pos++
	// Kick off prefetch of the next batch if the scan will reach it.
	if next := bi + 1; next < len(s.t.batches) && off+s.t.batches[bi].rows < s.hi &&
		s.t.opt.SpillDir != "" && s.prefetchBi != next+1 {
		s.startPrefetch(next)
	}
	return true
}

// fetch returns batch bi's columns, consuming a matching prefetch
// result when one is in flight.
func (s *batchScanner[T]) fetch(bi int) (Columns[T], error) {
	if s.prefetchCh != nil {
		p := <-s.prefetchCh
		s.prefetchCh = nil
		s.prefetchBi = 0
		if p.bi == bi {
			if p.err != nil {
				return nil, p.err
			}
			return p.cols, nil
		}
		// Stale prefetch (shard boundary skipped a batch): discard.
	}
	return s.t.materialize(bi)
}

func (s *batchScanner[T]) startPrefetch(bi int) {
	ch := make(chan prefetched[T], 1) // buffered: goroutine never blocks
	s.prefetchCh = ch
	s.prefetchBi = bi + 1
	go func() {
		cols, err := s.t.materialize(bi)
		ch <- prefetched[T]{bi: bi, cols: cols, err: err}
	}()
}

func (s *batchScanner[T]) Row() T {
	var zero T
	if s.cur == nil {
		return zero
	}
	return s.cur.Row(s.i)
}

func (s *batchScanner[T]) Err() error { return s.err }

// MemBytes estimates current resident heap usage of the table.
func (t *Batches[T]) MemBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, b := range t.batches {
		if b.cols != nil {
			n += b.cols.MemBytes()
		}
	}
	return n
}

// Build materializes a table from a row-producing callback, the common
// construction path: emit is called once with an append function.
func Build[T any](codec Codec[T], opt Options, emit func(appendRow func(T)) error) (*Batches[T], error) {
	b := NewBuilder(codec, opt)
	if err := emit(b.Append); err != nil {
		return nil, err
	}
	return b.Finish()
}

// FromSlice builds a Batches table from rows.
func FromSlice[T any](codec Codec[T], opt Options, rows []T) (*Batches[T], error) {
	return Build(codec, opt, func(appendRow func(T)) error {
		for _, r := range rows {
			appendRow(r)
		}
		return nil
	})
}
