package table

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Columns is a struct-of-arrays buffer for rows of type T: one growable
// column per field rather than a slice of structs. A Columns value is
// the unit of batching, encoding, and spill. Implementations live next
// to their row types (trace.JobColumns, modlog.EventColumns,
// survey.ResponseColumns) so field layout stays with field knowledge.
//
// EncodeTo/DecodeFrom must round-trip exactly: Decode(Encode(c)) yields
// identical rows in identical order. The wire layout may exploit the
// batch (dictionaries, deltas), which is why content hashes are defined
// over rows, never over encoded batch payloads.
type Columns[T any] interface {
	Append(row T)
	Len() int
	Row(i int) T
	Reset()
	EncodeTo(w *Writer) error
	DecodeFrom(r *Reader) error
	// MemBytes estimates resident heap bytes, used by the residency
	// policy to decide when to spill. An estimate: never artifact-bearing.
	MemBytes() int
}

// Codec binds a row type to its columnar representation and content
// hash. HashRow must depend on every field that reaches an artifact.
type Codec[T any] interface {
	NewColumns() Columns[T]
	HashRow(row T) uint64
}

// Writer wraps an io.Writer with the varint-oriented primitives column
// encoders use. Errors are sticky; check Err once at the end.
type Writer struct {
	w       io.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

// Bytes writes raw bytes.
func (w *Writer) Bytes(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.Bytes(w.scratch[:n])
}

// Varint writes a signed (zig-zag) varint.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.scratch[:], v)
	w.Bytes(w.scratch[:n])
}

// Float64 writes a float bit pattern (fixed 8 bytes, little-endian), so
// floats round-trip bit-exactly including negative zero and NaN payloads.
func (w *Writer) Float64(f float64) {
	binary.LittleEndian.PutUint64(w.scratch[:8], math.Float64bits(f))
	w.Bytes(w.scratch[:8])
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = io.WriteString(w.w, s)
	}
}

// Reader is the decoding counterpart of Writer.
type Reader struct {
	r   io.ByteReader
	err error
}

// byteAndBlockReader is what Reader actually needs for string payloads.
type byteAndBlockReader interface {
	io.ByteReader
	io.Reader
}

// NewReader returns a Reader over r. r must also implement io.Reader
// (bufio.Reader and bytes.Reader both do).
func NewReader(r byteAndBlockReader) *Reader { return &Reader{r: r} }

// Err returns the first read error.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.fail(err)
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	r.fail(err)
	return v
}

// Float64 reads a fixed 8-byte float bit pattern.
func (r *Reader) Float64() float64 {
	var buf [8]byte
	r.full(buf[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > 1<<24 {
		r.fail(fmt.Errorf("table: string length %d exceeds sanity bound", n))
		return ""
	}
	buf := make([]byte, n)
	r.full(buf)
	return string(buf)
}

func (r *Reader) full(p []byte) {
	if r.err != nil {
		return
	}
	br, ok := r.r.(io.Reader)
	if !ok {
		r.fail(fmt.Errorf("table: reader lacks block reads"))
		return
	}
	_, err := io.ReadFull(br, p)
	r.fail(err)
}

// Dict interns the strings of one low-cardinality column (users,
// accounts, partitions, states, languages, modules): values are stored
// once, rows store uint32 codes. Codes are assigned in first-appearance
// order, so encoding is a pure function of the row stream.
type Dict struct {
	vals []string
	idx  map[string]uint32
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) uint32 {
	if c, ok := d.idx[s]; ok {
		return c
	}
	if d.idx == nil {
		d.idx = make(map[string]uint32)
	}
	c := uint32(len(d.vals))
	d.vals = append(d.vals, s)
	d.idx[s] = c
	return c
}

// Value returns the string for a code.
func (d *Dict) Value(c uint32) string { return d.vals[c] }

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.vals) }

// Reset clears the dictionary for batch reuse.
func (d *Dict) Reset() {
	d.vals = d.vals[:0]
	for k := range d.idx {
		delete(d.idx, k)
	}
}

// MemBytes estimates resident size.
func (d *Dict) MemBytes() int {
	n := 0
	for _, v := range d.vals {
		n += len(v) + 48 // string bytes + header + map entry overhead
	}
	return n
}

// EncodeTo writes the value table in code order.
func (d *Dict) EncodeTo(w *Writer) {
	w.Uvarint(uint64(len(d.vals)))
	for _, v := range d.vals {
		w.String(v)
	}
}

// DecodeFrom reads a value table written by EncodeTo.
func (d *Dict) DecodeFrom(r *Reader) {
	n := r.Uvarint()
	if r.Err() != nil {
		return
	}
	if n > 1<<22 {
		r.fail(fmt.Errorf("table: dict size %d exceeds sanity bound", n))
		return
	}
	d.Reset()
	for i := uint64(0); i < n; i++ {
		s := r.String()
		if r.Err() != nil {
			return
		}
		d.Code(s)
	}
}

// HashString folds a string into the FNV-1a row-hash convention. The
// length is mixed first so concatenations can't collide field-wise.
func HashString(h uint64, s string) uint64 {
	h = fnv1aMix(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv1aPrime
	}
	return h
}

// HashUint64 folds an integer into a row hash.
func HashUint64(h, v uint64) uint64 { return fnv1aMix(h, v) }

// HashInt64 folds a signed integer into a row hash.
func HashInt64(h uint64, v int64) uint64 { return fnv1aMix(h, uint64(v)) }

// HashFloat64 folds a float's bit pattern into a row hash.
func HashFloat64(h uint64, f float64) uint64 { return fnv1aMix(h, math.Float64bits(f)) }

// HashInit returns the FNV-1a seed for building row hashes.
func HashInit() uint64 { return fnv1aInit }
