package table

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testRow exercises every column primitive: integer, dict string, float.
type testRow struct {
	ID   uint64
	Name string
	Val  float64
}

type testColumns struct {
	ids   []uint64
	names []uint32
	vals  []float64
	dict  Dict
}

func (c *testColumns) Append(r testRow) {
	c.ids = append(c.ids, r.ID)
	c.names = append(c.names, c.dict.Code(r.Name))
	c.vals = append(c.vals, r.Val)
}

func (c *testColumns) Len() int { return len(c.ids) }

func (c *testColumns) Row(i int) testRow {
	return testRow{ID: c.ids[i], Name: c.dict.Value(c.names[i]), Val: c.vals[i]}
}

func (c *testColumns) Reset() {
	c.ids, c.names, c.vals = c.ids[:0], c.names[:0], c.vals[:0]
	c.dict.Reset()
}

func (c *testColumns) EncodeTo(w *Writer) error {
	c.dict.EncodeTo(w)
	w.Uvarint(uint64(len(c.ids)))
	for i := range c.ids {
		w.Uvarint(c.ids[i])
		w.Uvarint(uint64(c.names[i]))
		w.Float64(c.vals[i])
	}
	return w.Err()
}

func (c *testColumns) DecodeFrom(r *Reader) error {
	c.Reset()
	c.dict.DecodeFrom(r)
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		c.ids = append(c.ids, r.Uvarint())
		c.names = append(c.names, uint32(r.Uvarint()))
		c.vals = append(c.vals, r.Float64())
	}
	return r.Err()
}

func (c *testColumns) MemBytes() int {
	return len(c.ids)*8 + len(c.names)*4 + len(c.vals)*8 + c.dict.MemBytes()
}

type testCodec struct{}

func (testCodec) NewColumns() Columns[testRow] { return &testColumns{} }

func (testCodec) HashRow(r testRow) uint64 {
	h := HashInit()
	h = HashUint64(h, r.ID)
	h = HashString(h, r.Name)
	h = HashFloat64(h, r.Val)
	return h
}

func testRows(n int) []testRow {
	rows := make([]testRow, n)
	for i := range rows {
		rows[i] = testRow{
			ID:   uint64(i) * 7,
			Name: fmt.Sprintf("name-%d", i%13),
			Val:  float64(i) * 1.25,
		}
	}
	return rows
}

func TestShardRangePartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 8192} {
		for _, total := range []int{1, 2, 3, 7, 16} {
			prev := 0
			for s := 0; s < total; s++ {
				lo, hi := ShardRange(s, s+1, total, n)
				if lo != prev {
					t.Fatalf("n=%d total=%d shard %d: lo=%d, want %d (gap/overlap)", n, total, s, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d total=%d shard %d: hi %d < lo %d", n, total, s, hi, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d total=%d: shards cover %d rows", n, total, prev)
			}
		}
	}
}

func TestSliceScannerShards(t *testing.T) {
	rows := testRows(101)
	tab := NewSlice(rows, testCodec{}.HashRow)
	for _, shards := range []int{1, 2, 3, 7, 101, 200} {
		var got []testRow
		for s := 0; s < shards; s++ {
			sc := tab.Scanner(s, s+1, shards)
			for sc.Scan() {
				got = append(got, sc.Row())
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(got, rows) {
			t.Fatalf("shards=%d: sharded scan differs from rows", shards)
		}
	}
}

func TestBatchesRoundTrip(t *testing.T) {
	rows := testRows(1000)
	for _, bs := range []int{1, 7, 100, 1000, 5000} {
		tab, err := FromSlice[testRow](testCodec{}, Options{BatchSize: bs}, rows)
		if err != nil {
			t.Fatal(err)
		}
		if tab.Len(Exact) != len(rows) {
			t.Fatalf("BatchSize=%d: Len=%d, want %d", bs, tab.Len(Exact), len(rows))
		}
		got, err := Rows[testRow](tab)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rows) {
			t.Fatalf("BatchSize=%d: rows differ after round trip", bs)
		}
	}
}

func TestHashInvariantToBatchSizeAndStorage(t *testing.T) {
	rows := testRows(500)
	ref, err := NewSlice(rows, testCodec{}.HashRow).Hash()
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{3, 64, 500} {
		for _, spill := range []bool{false, true} {
			opt := Options{BatchSize: bs}
			if spill {
				opt.SpillDir = t.TempDir()
				opt.Resident = 2
			}
			tab, err := FromSlice[testRow](testCodec{}, opt, rows)
			if err != nil {
				t.Fatal(err)
			}
			h, err := tab.Hash()
			if err != nil {
				t.Fatal(err)
			}
			if h != ref {
				t.Fatalf("BatchSize=%d spill=%v: hash %x != slice hash %x", bs, spill, h, ref)
			}
		}
	}
	// Different content must hash differently.
	mut := append([]testRow(nil), rows...)
	mut[250].Val += 1e-9
	if h, _ := NewSlice(mut, testCodec{}.HashRow).Hash(); h == ref {
		t.Fatal("hash ignored a float perturbation")
	}
}

func TestBatchesSpillBoundedAndLossless(t *testing.T) {
	rows := testRows(10_000)
	dir := t.TempDir()
	tab, err := FromSlice[testRow](testCodec{}, Options{BatchSize: 256, SpillDir: dir, Resident: 2}, rows)
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := filepath.Glob(filepath.Join(dir, "batch-*.col"))
	if err != nil || len(spilled) == 0 {
		t.Fatalf("expected spill files, got %v (err %v)", spilled, err)
	}
	// Residency stays bounded while building; scanning must not blow it
	// back up (allow current + prefetch headroom).
	if got := tab.resident; got > 2 {
		t.Fatalf("resident after build = %d, want <= 2", got)
	}
	got, err := Rows[testRow](tab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatal("rows differ after spill round trip")
	}
	if got := tab.resident; got > 4 {
		t.Fatalf("resident after full scan = %d, want <= 4", got)
	}
	// Sharded scan across spilled batches, merged in shard order,
	// equals row order.
	for _, shards := range []int{3, 7} {
		var merged []testRow
		for s := 0; s < shards; s++ {
			sc := tab.Scanner(s, s+1, shards)
			for sc.Scan() {
				merged = append(merged, sc.Row())
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(merged, rows) {
			t.Fatalf("shards=%d over spilled table: merged scan differs", shards)
		}
	}
}

func TestConcat(t *testing.T) {
	a, b, c := testRows(37), testRows(1)[:0], testRows(64)
	for i := range c {
		c[i].ID += 1000
	}
	want := append(append(append([]testRow(nil), a...), b...), c...)
	batched, err := FromSlice[testRow](testCodec{}, Options{BatchSize: 10}, c)
	if err != nil {
		t.Fatal(err)
	}
	cat := Concat[testRow](
		NewSlice(a, testCodec{}.HashRow),
		NewSlice(b, testCodec{}.HashRow),
		batched,
	)
	if cat.Len(Exact) != len(want) {
		t.Fatalf("Len=%d, want %d", cat.Len(Exact), len(want))
	}
	got, err := Rows[testRow](cat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("concat rows differ from concatenated slices")
	}
	for _, shards := range []int{2, 5, 11} {
		var merged []testRow
		for s := 0; s < shards; s++ {
			sc := cat.Scanner(s, s+1, shards)
			for sc.Scan() {
				merged = append(merged, sc.Row())
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(merged, want) {
			t.Fatalf("shards=%d: concat sharded scan differs", shards)
		}
	}
	// Hash equals a flat table over the same rows? No — Concat chains
	// part hashes, so compare against an identically partitioned concat.
	cat2 := Concat[testRow](
		NewSlice(append([]testRow(nil), a...), testCodec{}.HashRow),
		NewSlice(nil, testCodec{}.HashRow),
		NewSlice(append([]testRow(nil), c...), testCodec{}.HashRow),
	)
	h1, err1 := cat.Hash()
	h2, err2 := cat2.Hash()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if h1 != h2 {
		t.Fatal("concat hash depends on part storage, not content")
	}
}

func TestShardFoldOrderFreeCount(t *testing.T) {
	rows := testRows(999)
	tab, err := FromSlice[testRow](testCodec{}, Options{BatchSize: 64}, rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 7} {
		counts, err := ShardFold[testRow](tab, shards,
			func() map[string]int { return map[string]int{} },
			func(m map[string]int, r testRow) map[string]int { m[r.Name]++; return m },
			func(a, b map[string]int) map[string]int {
				for k, v := range b {
					a[k] += v
				}
				return a
			})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, v := range counts {
			total += v
		}
		if total != len(rows) {
			t.Fatalf("shards=%d: counted %d rows, want %d", shards, total, len(rows))
		}
	}
}

func TestShardCollectPreservesRowOrder(t *testing.T) {
	rows := testRows(500)
	tab := NewSlice(rows, testCodec{}.HashRow)
	for _, shards := range []int{1, 4, 9} {
		ids, err := ShardCollect[testRow](tab, shards, func(r testRow) uint64 { return r.ID })
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(rows) {
			t.Fatalf("shards=%d: %d ids", shards, len(ids))
		}
		for i, id := range ids {
			if id != rows[i].ID {
				t.Fatalf("shards=%d: ids out of row order at %d", shards, i)
			}
		}
	}
}

func TestFoldSeqMatchesLoop(t *testing.T) {
	rows := testRows(777)
	tab, err := FromSlice[testRow](testCodec{}, Options{BatchSize: 50}, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, r := range rows {
		want += r.Val
	}
	got, err := FoldSeq(tab, 0.0, func(a float64, r testRow) float64 { return a + r.Val })
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("FoldSeq = %v, want %v (bit-exact)", got, want)
	}
}

func TestSpillFileCorruptionWithoutRebuildFails(t *testing.T) {
	dir := t.TempDir()
	rows := testRows(300)
	tab, err := FromSlice[testRow](testCodec{}, Options{BatchSize: 50, SpillDir: dir, Resident: 2}, rows)
	if err != nil {
		t.Fatal(err)
	}
	corruptOneSpill(t, dir)
	evictAll(tab)
	if _, err := Rows[testRow](tab); err == nil {
		t.Fatal("scan over corrupt spill succeeded without a rebuild hook")
	}
}

// corruptOneSpill flips a byte near the end of the first spill file.
func corruptOneSpill(t *testing.T, dir string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "batch-*.col"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files in %s (err %v)", dir, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// evictAll drops every batch that has a spill file, forcing re-reads.
func evictAll[T any](tab *Batches[T]) {
	tab.mu.Lock()
	defer tab.mu.Unlock()
	for bi := range tab.batches {
		if tab.batches[bi].cols != nil && spillExists(tab.opt.SpillDir, bi) {
			tab.batches[bi].cols = nil
			tab.resident--
		}
	}
}
