// Package table is the columnar streaming artifact layer: a read-only
// Table abstraction over typed rows with range-sharded scanners, modeled
// on grailbio/gql's Scanner(start, limit, total) / Len(Exact|Approx) /
// Hash() contract. Two implementations ship here — Slice (a thin view
// over an in-memory slice) and Batches (struct-of-arrays column batches
// with lazy materialization, background prefetch, and crash-safe
// spill-to-disk) — plus Concat, which composes tables without copying.
//
// The layer exists to make the determinism contract a scaling mechanism:
// artifact bytes are a pure function of the rows and their order, never
// of batch size, shard count, residency, or spill timing. Consumers
// therefore follow one invariant (DESIGN.md "Columnar artifact layer"):
//
//   - Order-free aggregation (integer counts, set union, histograms,
//     collect-then-sort) may fan out over shard scanners, merging
//     partials in ascending shard order.
//   - Order-sensitive reductions (float folds) must stream a single
//     scanner in row order: float addition is not associative, so any
//     shard- or batch-aligned re-association would make bytes depend on
//     an execution knob.
//
// Tables are safe for concurrent scans once built; builders are not.
package table

// CountMode controls the behavior of Table.Len.
type CountMode int

const (
	// Exact makes Len return the exact row count.
	Exact CountMode = iota
	// Approx lets Len return a fast approximation, used only to guide
	// sharding and prefetch policy — never to size an artifact.
	Approx
)

// Scanner iterates one shard of a table in row order. The zero-value
// pattern mirrors bufio.Scanner: Scan advances and reports whether a row
// is available, Row returns the current row, Err surfaces the first
// failure (a scan that hit an I/O or integrity error stops early).
type Scanner[T any] interface {
	Scan() bool
	Row() T
	Err() error
}

// Table is a read-only collection of rows. Scanner returns the shard
// [start, limit) out of total, where [0, total) covers the whole table:
// Scanner(0, 1, 1) scans everything, Scanner(2, 3, 3) the last third.
// Shard boundaries are deterministic row ranges (row i belongs to shard
// s iff s*n/total <= i < (s+1)*n/total), so a fixed-order merge of shard
// partials is reproducible for any shard count.
//
// REQUIRES: 0 <= start <= limit <= total, total >= 1.
//
// Hash is a content hash over the rows in row order — independent of
// batch size, shard count, and storage (memory vs spill). Two tables
// hash equal iff they hold identical rows in identical order.
type Table[T any] interface {
	Scanner(start, limit, total int) Scanner[T]
	Len(mode CountMode) int
	Hash() (uint64, error)
}

// ShardRange maps the shard [start, limit) of total onto concrete row
// indexes over n rows.
func ShardRange(start, limit, total, n int) (lo, hi int) {
	if total <= 0 || start < 0 || limit < start || limit > total {
		panic("table: invalid shard range")
	}
	return start * n / total, limit * n / total
}

// rowRanger is the internal seam composing tables in this package:
// scanning an exact row window, not a shard of the whole. All tables
// here implement it; Concat uses it to route a shard across parts.
type rowRanger[T any] interface {
	rowScanner(lo, hi int) Scanner[T]
}

// rowsIn returns a scanner over rows [lo, hi) of t, using the exact
// window when t supports it and a skip-scan otherwise.
func rowsIn[T any](t Table[T], lo, hi int) Scanner[T] {
	if rr, ok := t.(rowRanger[T]); ok {
		return rr.rowScanner(lo, hi)
	}
	return &skipScanner[T]{inner: t.Scanner(0, 1, 1), lo: lo, hi: hi}
}

// skipScanner adapts a whole-table scanner to a row window for foreign
// Table implementations.
type skipScanner[T any] struct {
	inner Scanner[T]
	lo    int
	hi    int
	pos   int
}

func (s *skipScanner[T]) Scan() bool {
	for s.pos < s.lo {
		if !s.inner.Scan() {
			return false
		}
		s.pos++
	}
	if s.pos >= s.hi {
		return false
	}
	if !s.inner.Scan() {
		return false
	}
	s.pos++
	return true
}

func (s *skipScanner[T]) Row() T     { return s.inner.Row() }
func (s *skipScanner[T]) Err() error { return s.inner.Err() }

// fnv1aInit and fnv1aMix implement the 64-bit FNV-1a chain used for
// row-order content hashes.
const (
	fnv1aInit  = 14695981039346656037
	fnv1aPrime = 1099511628211
)

func fnv1aMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnv1aPrime
		v >>= 8
	}
	return h
}

// HashRows chains hashRow over every row in order: the canonical
// content hash implementation shared by the Table types here.
func HashRows[T any](t Table[T], hashRow func(T) uint64) (uint64, error) {
	h := uint64(fnv1aInit)
	sc := t.Scanner(0, 1, 1)
	for sc.Scan() {
		h = fnv1aMix(h, hashRow(sc.Row()))
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return h, nil
}

// Slice is a Table over an in-memory slice. It is the bridge type:
// existing []T producers become tables without copying.
type Slice[T any] struct {
	rows    []T
	hashRow func(T) uint64
}

// NewSlice wraps rows (not copied; callers must not mutate) with the
// given per-row hash.
func NewSlice[T any](rows []T, hashRow func(T) uint64) *Slice[T] {
	return &Slice[T]{rows: rows, hashRow: hashRow}
}

// Len implements Table.
func (s *Slice[T]) Len(CountMode) int { return len(s.rows) }

// Hash implements Table.
func (s *Slice[T]) Hash() (uint64, error) { return HashRows[T](s, s.hashRow) }

// Scanner implements Table.
func (s *Slice[T]) Scanner(start, limit, total int) Scanner[T] {
	lo, hi := ShardRange(start, limit, total, len(s.rows))
	return s.rowScanner(lo, hi)
}

func (s *Slice[T]) rowScanner(lo, hi int) Scanner[T] {
	return &sliceScanner[T]{rows: s.rows[lo:hi], i: -1}
}

type sliceScanner[T any] struct {
	rows []T
	i    int
}

func (s *sliceScanner[T]) Scan() bool {
	if s.i+1 >= len(s.rows) {
		return false
	}
	s.i++
	return true
}

func (s *sliceScanner[T]) Row() T     { return s.rows[s.i] }
func (s *sliceScanner[T]) Err() error { return nil }

// Concat composes tables into one logical table — parts in the given
// order, no copying. It is how per-year (and per-replica) job tables
// become the whole-trace table: the merge is a fixed part order, so
// bytes cannot depend on which stage finished first.
func Concat[T any](parts ...Table[T]) Table[T] {
	c := &concatTable[T]{parts: parts, offs: make([]int, len(parts)+1)}
	for i, p := range parts {
		c.offs[i+1] = c.offs[i] + p.Len(Exact)
	}
	return c
}

type concatTable[T any] struct {
	parts []Table[T]
	offs  []int // offs[i] = first global row of part i; offs[len] = total
}

func (c *concatTable[T]) Len(CountMode) int { return c.offs[len(c.parts)] }

func (c *concatTable[T]) Hash() (uint64, error) {
	// Chain the part hashes in part order; identical parts in identical
	// order hash equal regardless of how rows are batched inside.
	h := uint64(fnv1aInit)
	for _, p := range c.parts {
		ph, err := p.Hash()
		if err != nil {
			return 0, err
		}
		h = fnv1aMix(h, ph)
	}
	return h, nil
}

func (c *concatTable[T]) Scanner(start, limit, total int) Scanner[T] {
	lo, hi := ShardRange(start, limit, total, c.Len(Exact))
	return c.rowScanner(lo, hi)
}

func (c *concatTable[T]) rowScanner(lo, hi int) Scanner[T] {
	return &concatScanner[T]{c: c, lo: lo, hi: hi, pos: lo, part: -1}
}

type concatScanner[T any] struct {
	c    *concatTable[T]
	lo   int
	hi   int
	pos  int
	part int
	cur  Scanner[T]
	err  error
}

func (s *concatScanner[T]) Scan() bool {
	if s.err != nil || s.pos >= s.hi {
		return false
	}
	for {
		if s.cur != nil && s.cur.Scan() {
			s.pos++
			return true
		}
		if s.cur != nil {
			if err := s.cur.Err(); err != nil {
				s.err = err
				return false
			}
		}
		// Advance to the part containing s.pos.
		s.part++
		for s.part < len(s.c.parts) && s.c.offs[s.part+1] <= s.pos {
			s.part++
		}
		if s.part >= len(s.c.parts) {
			return false
		}
		plo := s.pos - s.c.offs[s.part]
		phi := s.c.parts[s.part].Len(Exact)
		if end := s.hi - s.c.offs[s.part]; end < phi {
			phi = end
		}
		s.cur = rowsIn(s.c.parts[s.part], plo, phi)
	}
}

func (s *concatScanner[T]) Row() T {
	var zero T
	if s.cur == nil {
		return zero
	}
	return s.cur.Row()
}

func (s *concatScanner[T]) Err() error { return s.err }
