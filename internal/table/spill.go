package table

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
)

// Spill file format (version 1):
//
//	magic   "rcpt-col/1\n"
//	rows    uvarint — row count, cross-checked after decode
//	paylen  uvarint — payload byte length
//	sha256  32 bytes — checksum of the payload
//	payload Columns.EncodeTo bytes
//
// Files are written with the crash-safe discipline of the serve cache
// (PR 4): encode to a temp file in the same directory, fsync, close,
// atomically rename into place, then best-effort fsync the directory.
// A reader can therefore see either the complete old state or the
// complete new state — never a torn file under its final name. Torn
// temp files left by a crash are invisible (readers open only final
// names) and harmless.
//
// Integrity failures on read (bad magic, checksum mismatch, short file)
// are detected, reported, and — because every batch is recomputable
// from the deterministic generators — recoverable: Batches rebuilds the
// rows and rewrites the spill, with bytes unchanged by construction.

const spillMagic = "rcpt-col/1\n"

// corruptSpillError marks integrity failures so the rebuild path can
// distinguish "file damaged" from "disk broken".
type corruptSpillError struct {
	path   string
	reason string
}

func (e *corruptSpillError) Error() string {
	return fmt.Sprintf("table: corrupt spill %s: %s", e.path, e.reason)
}

// spillPath names batch bi under dir. Deterministic so warm restarts
// and rebuilds land on the same file.
func spillPath(dir string, bi int) string {
	return filepath.Join(dir, fmt.Sprintf("batch-%06d.col", bi))
}

// spillExists reports whether batch bi has a spill file under dir.
func spillExists(dir string, bi int) bool {
	_, err := os.Stat(spillPath(dir, bi))
	return err == nil
}

// writeSpill persists cols to path with the temp+fsync+rename protocol.
func writeSpill[T any](path string, cols Columns[T]) error {
	var payload bytes.Buffer
	ew := NewWriter(&payload)
	if err := cols.EncodeTo(ew); err != nil {
		return fmt.Errorf("table: encode spill: %w", err)
	}
	if err := ew.Err(); err != nil {
		return fmt.Errorf("table: encode spill: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("table: spill dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spill-*")
	if err != nil {
		return fmt.Errorf("table: spill temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename

	var head bytes.Buffer
	hw := NewWriter(&head)
	hw.Bytes([]byte(spillMagic))
	hw.Uvarint(uint64(cols.Len()))
	hw.Uvarint(uint64(payload.Len()))
	hw.Bytes(sum[:])
	if err := hw.Err(); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(head.Bytes()); err == nil {
		_, err = tmp.Write(payload.Bytes())
		if err == nil {
			err = tmp.Sync()
		}
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
		if err == nil {
			if d, derr := os.Open(filepath.Dir(path)); derr == nil {
				d.Sync() // best effort: rename durability
				d.Close()
			}
			return nil
		}
		return fmt.Errorf("table: write spill: %w", err)
	} else {
		tmp.Close()
		return fmt.Errorf("table: write spill: %w", err)
	}
}

// readSpill loads path into cols, verifying magic, length, checksum and
// row count. Integrity failures return a *corruptSpillError.
func readSpill[T any](path string, cols Columns[T]) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)

	magic := make([]byte, len(spillMagic))
	if _, err := readFullOrCorrupt(br, magic, path); err != nil {
		return err
	}
	if string(magic) != spillMagic {
		return &corruptSpillError{path: path, reason: "bad magic"}
	}
	hr := NewReader(br)
	rows := hr.Uvarint()
	paylen := hr.Uvarint()
	if err := hr.Err(); err != nil {
		return &corruptSpillError{path: path, reason: "truncated header"}
	}
	if paylen > 1<<31 {
		return &corruptSpillError{path: path, reason: "payload length out of range"}
	}
	var sum [sha256.Size]byte
	if _, err := readFullOrCorrupt(br, sum[:], path); err != nil {
		return err
	}
	payload := make([]byte, paylen)
	if _, err := readFullOrCorrupt(br, payload, path); err != nil {
		return err
	}
	if got := sha256.Sum256(payload); got != sum {
		return &corruptSpillError{path: path, reason: "checksum mismatch"}
	}
	pr := NewReader(bytes.NewReader(payload))
	if err := cols.DecodeFrom(pr); err != nil {
		return &corruptSpillError{path: path, reason: fmt.Sprintf("decode: %v", err)}
	}
	if err := pr.Err(); err != nil {
		return &corruptSpillError{path: path, reason: fmt.Sprintf("decode: %v", err)}
	}
	if cols.Len() != int(rows) {
		return &corruptSpillError{path: path, reason: fmt.Sprintf("row count %d, header says %d", cols.Len(), rows)}
	}
	return nil
}

// readFullOrCorrupt reads len(p) bytes, mapping short reads to
// corruption (a truncated file is a torn write, not an I/O fault).
func readFullOrCorrupt(br *bufio.Reader, p []byte, path string) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, &corruptSpillError{path: path, reason: "short read"}
		}
	}
	return n, nil
}
