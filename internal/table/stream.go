package table

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
)

// Stream transfer: the spill envelope ("rcpt-col/1" magic, row count,
// payload length, SHA-256, columnar payload) generalized from files to
// io.Writer/io.Reader, so a table can cross a process boundary with the
// same integrity guarantees a spill file has on disk. This is the wire
// format of the cluster layer's work-stealing stage responses: a peer
// encodes the (year, replica) table it computed, the requester decodes
// and checksum-verifies it, and a corrupted or truncated body surfaces
// as *IntegrityError — never as silently wrong rows.

// IntegrityError marks a stream whose envelope failed verification
// (bad magic, truncation, checksum or row-count mismatch). Callers use
// it to distinguish "peer sent damaged bytes — recompute locally" from
// plain transport errors.
type IntegrityError struct {
	Reason string
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("table: stream integrity: %s", e.Reason)
}

// EncodeStream writes every row of t to w as one checksummed column
// envelope. The payload is a single Columns batch regardless of how t
// stores its rows — encoding is a pure function of the row sequence, so
// two tables with identical rows encode identically whatever their
// batch size, shard count, or residency.
func EncodeStream[T any](w io.Writer, codec Codec[T], t Table[T]) error {
	cols := codec.NewColumns()
	sc := t.Scanner(0, 1, 1)
	for sc.Scan() {
		cols.Append(sc.Row())
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("table: encode stream scan: %w", err)
	}
	var payload bytes.Buffer
	ew := NewWriter(&payload)
	if err := cols.EncodeTo(ew); err != nil {
		return fmt.Errorf("table: encode stream: %w", err)
	}
	if err := ew.Err(); err != nil {
		return fmt.Errorf("table: encode stream: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	hw := NewWriter(w)
	hw.Bytes([]byte(spillMagic))
	hw.Uvarint(uint64(cols.Len()))
	hw.Uvarint(uint64(payload.Len()))
	hw.Bytes(sum[:])
	hw.Bytes(payload.Bytes())
	return hw.Err()
}

// DecodeStream reads one EncodeStream envelope from r, verifies it, and
// returns the decoded rows as a resident table. Integrity failures
// return *IntegrityError.
func DecodeStream[T any](r io.Reader, codec Codec[T]) (Table[T], error) {
	br := bufio.NewReaderSize(r, 64*1024)
	magic := make([]byte, len(spillMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, &IntegrityError{Reason: "short magic"}
	}
	if string(magic) != spillMagic {
		return nil, &IntegrityError{Reason: "bad magic"}
	}
	hr := NewReader(br)
	rows := hr.Uvarint()
	paylen := hr.Uvarint()
	if err := hr.Err(); err != nil {
		return nil, &IntegrityError{Reason: "truncated header"}
	}
	if paylen > 1<<31 {
		return nil, &IntegrityError{Reason: "payload length out of range"}
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, &IntegrityError{Reason: "short checksum"}
	}
	payload := make([]byte, paylen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, &IntegrityError{Reason: "short payload"}
	}
	if got := sha256.Sum256(payload); got != sum {
		return nil, &IntegrityError{Reason: "checksum mismatch"}
	}
	cols := codec.NewColumns()
	pr := NewReader(bytes.NewReader(payload))
	if err := cols.DecodeFrom(pr); err != nil {
		return nil, &IntegrityError{Reason: fmt.Sprintf("decode: %v", err)}
	}
	if err := pr.Err(); err != nil {
		return nil, &IntegrityError{Reason: fmt.Sprintf("decode: %v", err)}
	}
	if cols.Len() != int(rows) {
		return nil, &IntegrityError{Reason: fmt.Sprintf("row count %d, header says %d", cols.Len(), rows)}
	}
	return FromColumns(codec, cols), nil
}

// FromColumns wraps an already-materialized Columns as a read-only
// Table view — no copying. The caller must not mutate cols afterwards.
func FromColumns[T any](codec Codec[T], cols Columns[T]) Table[T] {
	return &columnsTable[T]{codec: codec, cols: cols}
}

type columnsTable[T any] struct {
	codec Codec[T]
	cols  Columns[T]
}

func (t *columnsTable[T]) Len(CountMode) int { return t.cols.Len() }

func (t *columnsTable[T]) Hash() (uint64, error) {
	return HashRows[T](t, t.codec.HashRow)
}

func (t *columnsTable[T]) Scanner(start, limit, total int) Scanner[T] {
	lo, hi := ShardRange(start, limit, total, t.cols.Len())
	return t.rowScanner(lo, hi)
}

func (t *columnsTable[T]) rowScanner(lo, hi int) Scanner[T] {
	return &columnsScanner[T]{cols: t.cols, i: lo - 1, hi: hi}
}

type columnsScanner[T any] struct {
	cols Columns[T]
	i    int
	hi   int
}

func (s *columnsScanner[T]) Scan() bool {
	if s.i+1 >= s.hi {
		return false
	}
	s.i++
	return true
}

func (s *columnsScanner[T]) Row() T     { return s.cols.Row(s.i) }
func (s *columnsScanner[T]) Err() error { return nil }
