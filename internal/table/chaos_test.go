//go:build chaos

package table

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// Chaos coverage for the spill path: damaged spill files must be
// detected by the checksum envelope and transparently recomputed via
// the deterministic rebuild hook — with the recovered rows (and hence
// all downstream artifact bytes) identical to the undamaged run.

func buildSpilled(t *testing.T, rows []testRow, dir string) *Batches[testRow] {
	t.Helper()
	tab, err := FromSlice[testRow](testCodec{}, Options{BatchSize: 64, SpillDir: dir, Resident: 2}, rows)
	if err != nil {
		t.Fatal(err)
	}
	tab.SetRebuild(func(lo, hi int, into Columns[testRow]) error {
		for _, r := range rows[lo:hi] {
			into.Append(r)
		}
		return nil
	})
	return tab
}

func TestChaosCorruptSpillRecomputed(t *testing.T) {
	rows := testRows(1000)
	dir := t.TempDir()
	tab := buildSpilled(t, rows, dir)
	want, err := Rows[testRow](tab)
	if err != nil {
		t.Fatal(err)
	}
	wantHash, err := tab.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Flip bytes in several spill files, covering payload, header and
	// checksum regions, plus one outright truncation.
	files, err := filepath.Glob(filepath.Join(dir, "batch-*.col"))
	if err != nil || len(files) < 3 {
		t.Fatalf("want >= 3 spill files, got %d (err %v)", len(files), err)
	}
	damage := []func(p string) error{
		func(p string) error { return flipByteAt(p, 5) },   // inside magic/header
		func(p string) error { return flipByteAt(p, -2) },  // inside payload tail
		func(p string) error { return truncateFile(p, 10) }, // torn write
	}
	for i, f := range files[:3] {
		if err := damage[i](f); err != nil {
			t.Fatal(err)
		}
	}
	evictAll(tab)

	got, err := Rows[testRow](tab)
	if err != nil {
		t.Fatalf("scan after corruption: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered rows differ from original — corruption changed bytes")
	}

	// Recovery rewrote the damaged files in place: they must now pass
	// integrity checks directly, and a fresh row-order hash over the
	// healed table must match the pre-corruption hash.
	for _, f := range files[:3] {
		cols := &testColumns{}
		if err := readSpill(f, Columns[testRow](cols)); err != nil {
			t.Fatalf("spill %s not healed: %v", f, err)
		}
	}
	evictAll(tab)
	h, err := HashRows[testRow](tab, testCodec{}.HashRow)
	if err != nil {
		t.Fatal(err)
	}
	if h != wantHash {
		t.Fatalf("hash changed after recovery: %x != %x", h, wantHash)
	}
}

func TestChaosCorruptSpillSharded(t *testing.T) {
	rows := testRows(2000)
	dir := t.TempDir()
	tab := buildSpilled(t, rows, dir)
	files, err := filepath.Glob(filepath.Join(dir, "batch-*.col"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files (err %v)", err)
	}
	for _, f := range files {
		if err := flipByteAt(f, -1); err != nil {
			t.Fatal(err)
		}
	}
	evictAll(tab)
	for _, shards := range []int{3, 7} {
		var merged []testRow
		for s := 0; s < shards; s++ {
			sc := tab.Scanner(s, s+1, shards)
			for sc.Scan() {
				merged = append(merged, sc.Row())
			}
			if err := sc.Err(); err != nil {
				t.Fatalf("shard %d/%d: %v", s, shards, err)
			}
		}
		if !reflect.DeepEqual(merged, rows) {
			t.Fatalf("shards=%d: recovered sharded scan differs", shards)
		}
		evictAll(tab)
	}
}

func flipByteAt(path string, off int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 {
		off = len(data) + off
	}
	if off < 0 || off >= len(data) {
		return fmt.Errorf("offset %d out of range for %s", off, path)
	}
	data[off] ^= 0xff
	return os.WriteFile(path, data, 0o644)
}

func truncateFile(path string, keep int64) error {
	return os.Truncate(path, keep)
}
