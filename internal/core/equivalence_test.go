package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
)

// equivConfig is deliberately small (two early trace years, modest
// cohorts) so three full pipeline runs stay cheap even under -race.
func equivConfig() Config {
	return Config{
		Seed:       99,
		N2011:      60,
		N2024:      80,
		TraceYears: []int{2011, 2013},
		SimYear:    2013,
		Policy:     sched.EASYBackfill,
		Rake:       true,
		PanelN:     50,
		NoiseRate:  0.05,
	}
}

// assertArtifactsEqual compares every analysis-bearing field of two
// runs. Any divergence means the determinism contract of the stage
// graph is broken.
func assertArtifactsEqual(t *testing.T, labelA, labelB string, x, y *Artifacts) {
	t.Helper()
	check := func(field string, a, b any) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s vs %s: %s differs", labelA, labelB, field)
		}
	}
	check("Cohort2011", x.Cohort2011, y.Cohort2011)
	check("Cohort2024", x.Cohort2024, y.Cohort2024)
	check("Rake2011", x.Rake2011, y.Rake2011)
	check("Rake2024", x.Rake2024, y.Rake2024)
	check("Jobs", x.Jobs, y.Jobs)
	check("JobsByYr", x.JobsByYr, y.JobsByYr)
	check("ModAgg", x.ModAgg, y.ModAgg)
	check("ModEventsSim", x.ModEventsSim, y.ModEventsSim)
	check("Quality2011", x.Quality2011, y.Quality2011)
	check("Quality2024", x.Quality2024, y.Quality2024)
	check("Panel", x.Panel, y.Panel)
	check("Sim", x.Sim, y.Sim)
	check("SimFCFS", x.SimFCFS, y.SimFCFS)
	check("SimConservative", x.SimConservative, y.SimConservative)

	// Byte-identity on the serialized forms, the strongest statement of
	// "same artifacts": identical accounting files and survey exports.
	var ja, jb bytes.Buffer
	if err := trace.WriteAccounting(&ja, x.Jobs); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAccounting(&jb, y.Jobs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("%s vs %s: serialized accounting differs", labelA, labelB)
	}
	var ca, cb bytes.Buffer
	if err := x.Instrument.WriteJSON(&ca, x.Cohort2024); err != nil {
		t.Fatal(err)
	}
	if err := y.Instrument.WriteJSON(&cb, y.Cohort2024); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatalf("%s vs %s: serialized 2024 cohort differs", labelA, labelB)
	}
}

// TestRunWorkerCountEquivalence guards the determinism contract of the
// stage graph: Workers=1 and Workers=8 must produce deeply-equal,
// byte-identical artifacts, and both must match the sequential
// reference execution of the same graph.
func TestRunWorkerCountEquivalence(t *testing.T) {
	cfg := equivConfig()
	cfg.Workers = 1
	one, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	eight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertArtifactsEqual(t, "workers=1", "workers=8", one, eight)
	assertArtifactsEqual(t, "workers=8", "sequential", eight, seq)
}
