package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/modlog"
	"repro/internal/sched"
	"repro/internal/table"
	"repro/internal/trace"
)

// equivConfig is deliberately small (two early trace years, modest
// cohorts) so three full pipeline runs stay cheap even under -race.
func equivConfig() Config {
	return Config{
		Seed:       99,
		N2011:      60,
		N2024:      80,
		TraceYears: []int{2011, 2013},
		SimYear:    2013,
		Policy:     sched.EASYBackfill,
		Rake:       true,
		PanelN:     50,
		NoiseRate:  0.05,
	}
}

// assertArtifactsEqual compares every analysis-bearing field of two
// runs. Any divergence means the determinism contract of the stage
// graph is broken.
func assertArtifactsEqual(t *testing.T, labelA, labelB string, x, y *Artifacts) {
	t.Helper()
	check := func(field string, a, b any) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s vs %s: %s differs", labelA, labelB, field)
		}
	}
	check("Cohort2011", x.Cohort2011, y.Cohort2011)
	check("Cohort2024", x.Cohort2024, y.Cohort2024)
	check("Rake2011", x.Rake2011, y.Rake2011)
	check("Rake2024", x.Rake2024, y.Rake2024)
	// Tables are compared by materialized rows and by content hash —
	// the storage (batch layout, spill state) is an execution detail that
	// legitimately differs between runs.
	check("Jobs", jobRows(t, x.Jobs), jobRows(t, y.Jobs))
	check("Jobs.Hash", tableHash(t, x.Jobs), tableHash(t, y.Jobs))
	if len(x.JobsByYr) != len(y.JobsByYr) {
		t.Fatalf("%s vs %s: JobsByYr year sets differ", labelA, labelB)
	}
	for year, xt := range x.JobsByYr {
		check(fmt.Sprintf("JobsByYr[%d]", year), jobRows(t, xt), jobRows(t, y.JobsByYr[year]))
	}
	check("ModAgg", x.ModAgg, y.ModAgg)
	check("ModEventsSim", eventRows(t, x.ModEventsSim), eventRows(t, y.ModEventsSim))
	check("CohortTab2011.Hash", tableHash(t, x.CohortTab2011), tableHash(t, y.CohortTab2011))
	check("CohortTab2024.Hash", tableHash(t, x.CohortTab2024), tableHash(t, y.CohortTab2024))
	check("Quality2011", x.Quality2011, y.Quality2011)
	check("Quality2024", x.Quality2024, y.Quality2024)
	check("Panel", x.Panel, y.Panel)
	check("Sim", x.Sim, y.Sim)
	check("SimFCFS", x.SimFCFS, y.SimFCFS)
	check("SimConservative", x.SimConservative, y.SimConservative)

	// Byte-identity on the serialized forms, the strongest statement of
	// "same artifacts": identical accounting files and survey exports.
	var ja, jb bytes.Buffer
	if err := trace.WriteAccountingTable(&ja, x.Jobs); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteAccountingTable(&jb, y.Jobs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("%s vs %s: serialized accounting differs", labelA, labelB)
	}
	var ca, cb bytes.Buffer
	if err := x.Instrument.WriteJSON(&ca, x.Cohort2024); err != nil {
		t.Fatal(err)
	}
	if err := y.Instrument.WriteJSON(&cb, y.Cohort2024); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatalf("%s vs %s: serialized 2024 cohort differs", labelA, labelB)
	}
}

// TestRunWorkerCountEquivalence guards the determinism contract of the
// stage graph: Workers=1 and Workers=8 must produce deeply-equal,
// byte-identical artifacts, and both must match the sequential
// reference execution of the same graph.
func TestRunWorkerCountEquivalence(t *testing.T) {
	cfg := equivConfig()
	cfg.Workers = 1
	one, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	eight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunSequential(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertArtifactsEqual(t, "workers=1", "workers=8", one, eight)
	assertArtifactsEqual(t, "workers=8", "sequential", eight, seq)
}

func jobRows(t *testing.T, tab trace.JobTable) []trace.Job {
	t.Helper()
	rows, err := table.Rows[trace.Job](tab)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func eventRows(t *testing.T, tab modlog.EventTable) []modlog.Event {
	t.Helper()
	rows, err := table.Rows[modlog.Event](tab)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func tableHash[T any](t *testing.T, tab table.Table[T]) uint64 {
	t.Helper()
	h, err := tab.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestRunShardBatchEquivalence pins the columnar-layer contract from
// DESIGN.md: batch size, shard fan-out, and spill configuration are
// execution knobs — artifacts (rows, hashes, serialized accounting
// bytes) are byte-identical across all of them, and the fingerprint
// does not encode them.
func TestRunShardBatchEquivalence(t *testing.T) {
	base, err := Run(equivConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []TableConfig{
		{BatchRows: 64, Shards: 1},
		{BatchRows: 512, Shards: 3},
		{BatchRows: 4096, Shards: 7},
		{BatchRows: 256, Shards: 5, SpillDir: t.TempDir(), Resident: 2},
	} {
		cfg := equivConfig()
		cfg.Table = tc
		if cfg.Fingerprint() != equivConfig().Fingerprint() {
			t.Fatalf("%+v: table knobs leaked into the fingerprint", tc)
		}
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		assertArtifactsEqual(t, "default", fmt.Sprintf("batch=%d/shards=%d/spill=%t", tc.BatchRows, tc.Shards, tc.SpillDir != ""), base, got)
	}
}

// TestTraceScaleReplicas exercises the scaled-trace path: replica 0 of
// each year is bit-identical to the unscaled trace, totals multiply by
// the scale, the concatenated feed stays in arrival order (the
// simulation would reject it otherwise), and the fingerprint changes —
// scaled artifacts must never share a cache slot with unscaled ones.
func TestTraceScaleReplicas(t *testing.T) {
	cfg := equivConfig()
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scaled := cfg
	scaled.TraceScale = 3
	if scaled.Fingerprint() == cfg.Fingerprint() {
		t.Fatal("trace scale did not change the fingerprint")
	}
	a, err := Run(scaled)
	if err != nil {
		t.Fatal(err)
	}
	for year, bt := range base.JobsByYr {
		want := jobRows(t, bt)
		got := jobRows(t, a.JobsByYr[year])
		// Each replica draws its own job count from its own rng stream,
		// so the total is ~3× the base, not exactly.
		if len(got) < 2*len(want) || len(got) > 4*len(want) {
			t.Fatalf("year %d: %d jobs at scale 3, base year has %d", year, len(got), len(want))
		}
		if !reflect.DeepEqual(got[:len(want)], want) {
			t.Fatalf("year %d: replica 0 differs from the unscaled trace", year)
		}
		ids := map[uint64]bool{}
		prev := got[0]
		for i, j := range got {
			if ids[j.ID] {
				t.Fatalf("year %d: duplicate job id %d", year, j.ID)
			}
			ids[j.ID] = true
			if i > 0 && (j.Submit < prev.Submit || (j.Submit == prev.Submit && j.ID <= prev.ID)) {
				t.Fatalf("year %d: scaled trace out of arrival order at row %d", year, i)
			}
			prev = j
		}
	}
	if a.Sim == nil || a.Sim.Metrics.Jobs != a.JobsByYr[scaled.SimYear].Len(table.Exact) {
		t.Fatal("simulation did not cover the scaled sim-year trace")
	}
}
