package core

// Second wave of experiments: the scheduler-policy comparison, the
// training Likert, module co-loads, fitted adoption curves, and the
// queue-depth timeline. Kept in a separate file so experiments.go stays
// the "paper core" and this stays the extensions index.

import (
	"fmt"
	"io"

	"repro/internal/growth"
	"repro/internal/modlog"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/survey"
)

// extensionExperiments are appended to the registry after the paper-core
// set.
func extensionExperiments() []Experiment {
	return []Experiment{
		{ID: "T8", Title: "Scheduler policy comparison", Kind: KindTable, Table: table8},
		{ID: "T9", Title: "Formal software training by cohort", Kind: KindTable, Table: table9},
		{ID: "T10", Title: "Module co-load affinities", Kind: KindTable, Table: table10},
		{ID: "F9", Title: "Fitted adoption curves with projection", Kind: KindFigure, Figure: figure9},
		{ID: "F10", Title: "Queue depth under FCFS vs backfill", Kind: KindFigure, Figure: figure10},
	}
}

func table8(a *Artifacts) (*report.Table, error) {
	t := report.NewTable(fmt.Sprintf("Table 8: Scheduler policies on the %d trace", a.Config.SimYear),
		"policy", "mean wait (h)", "median (h)", "p95 (h)", "slowdown", "fairness", "cpu util", "gpu util", "backfills")
	for _, res := range []*sched.Result{a.SimFCFS, a.SimConservative, a.Sim} {
		if res == nil {
			return nil, fmt.Errorf("core: table8: missing scheduler result")
		}
		m := res.Metrics
		if err := t.AddRow(m.Policy.String(),
			report.F(m.MeanWait/3600, 2), report.F(m.MedianWait/3600, 2),
			report.F(m.P95Wait/3600, 2), report.F(m.BoundedSlowdown, 1),
			report.F(m.UserFairness, 2),
			report.Pct(m.AvgCPUUtil), report.Pct(m.AvgGPUUtil),
			fmt.Sprintf("%d", m.BackfillStarts)); err != nil {
			return nil, err
		}
	}
	t.Footnote = "slowdown = geomean bounded slowdown (tau=10s); fairness = Jain index over per-user slowdown; the third row uses the study's configured policy with fairshare"
	return t, nil
}

func table9(a *Artifacts) (*report.Table, error) {
	s11, err := a.Instrument.SummarizeLikert(survey.QTraining, a.Cohort2011)
	if err != nil {
		return nil, err
	}
	s24, err := a.Instrument.SummarizeLikert(survey.QTraining, a.Cohort2024)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 9: Formal software-development training (1 none .. 5 extensive)",
		"cohort", "mean", "top-box (4-5)", "1", "2", "3", "4", "5")
	for _, s := range []struct {
		label string
		sum   survey.LikertSummary
	}{{"2011", s11}, {"2024", s24}} {
		row := []string{s.label, report.F(s.sum.Mean, 2), report.Pct(s.sum.TopBox)}
		for i := 0; i < 5; i++ {
			row = append(row, report.Pct(s.sum.Counts[i]/s.sum.Base))
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	// Mann-Whitney across cohorts on the raw ratings.
	v11, _, err := a.Instrument.NumericValues(survey.QTraining, a.Cohort2011)
	if err != nil {
		return nil, err
	}
	v24, _, err := a.Instrument.NumericValues(survey.QTraining, a.Cohort2024)
	if err != nil {
		return nil, err
	}
	mw, err := stats.MannWhitneyU(v11, v24)
	if err != nil {
		return nil, err
	}
	t.Footnote = fmt.Sprintf("Mann-Whitney U across cohorts: z=%.2f, p=%s", mw.Z, report.PValue(mw.P))
	return t, nil
}

func table10(a *Artifacts) (*report.Table, error) {
	pairs, err := a.CoLoadPairs()
	if err != nil {
		return nil, err
	}
	top := modlog.TopPairs(pairs, 10, 5)
	t := report.NewTable(fmt.Sprintf("Table 10: Module co-load affinities (%d)", a.Config.SimYear),
		"pair", "co-users", "jaccard", "lift")
	for _, p := range top {
		if err := t.AddRow(p.A+" + "+p.B, fmt.Sprintf("%d", p.UsersAB),
			report.F(p.Jaccard, 2), report.F(p.Lift, 2)); err != nil {
			return nil, err
		}
	}
	t.Footnote = "lift > 1: pair co-occurs more than independent adoption predicts; min 5 co-users"
	return t, nil
}

func figure9(a *Artifacts, w io.Writer) error {
	if len(a.ModAgg) < 4 {
		return fmt.Errorf("core: figure9 needs >= 4 telemetry years, have %d", len(a.ModAgg))
	}
	obsYears := make([]float64, len(a.ModAgg))
	for i, ys := range a.ModAgg {
		obsYears[i] = float64(ys.Year)
	}
	projectTo := obsYears[len(obsYears)-1] + 4
	// Fine grid for the fitted curves, extending past the data.
	var grid []float64
	for y := obsYears[0]; y <= projectTo; y += 0.5 {
		grid = append(grid, y)
	}
	var series []report.LineSeries
	for _, mod := range []string{"python", "matlab", "fortran", "cuda"} {
		_, shares := modlog.Series(a.ModAgg, mod)
		tr, err := growth.AnalyzeSeries(mod, obsYears, shares, projectTo)
		if err != nil {
			return err
		}
		ys := make([]float64, len(grid))
		for i, y := range grid {
			v := tr.Fit.Eval(y)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			ys[i] = v
		}
		series = append(series, report.LineSeries{
			Name: fmt.Sprintf("%s (%s, t0=%.0f)", mod, tr.Class, tr.Fit.T0),
			Ys:   ys,
		})
	}
	return report.LineChart(w,
		fmt.Sprintf("Figure 9: Logistic adoption fits, projected to %.0f", projectTo),
		grid, series, "year", "share of cluster users", true)
}

func figure10(a *Artifacts, w io.Writer) error {
	fc := a.SimFCFS.Samples
	ez := a.Sim.Samples
	n := len(fc)
	if len(ez) < n {
		n = len(ez)
	}
	if n < 2 {
		return fmt.Errorf("core: figure10: too few samples (%d)", n)
	}
	k := n/300 + 1
	var xs, qf, qe []float64
	for i := 0; i < n; i += k {
		xs = append(xs, float64(fc[i].Time)/86400)
		qf = append(qf, float64(fc[i].Queued))
		qe = append(qe, float64(ez[i].Queued))
	}
	return report.LineChart(w, "Figure 10: Queue depth over the simulated month",
		xs, []report.LineSeries{
			{Name: "fcfs", Ys: qf},
			{Name: a.Sim.Metrics.Policy.String(), Ys: qe},
		}, "day", "jobs queued", false)
}
