package core

// The Merkle stage cache: content-addressed reuse of individual stage
// outputs across runs. Every cacheable stage in the run DAG gets a key
//
//	SHA-256(stage name ‖ version tag ‖ config fields the stage reads
//	        ‖ sorted upstream stage keys)
//
// derived while buildGraph registers stages (registration order is
// topological, so upstream keys always exist by the time a dependent
// derives). The config-field subset is declared per stage below —
// narrower than Config.Fingerprint on purpose: TraceScale must
// invalidate trace stages but not cohort stages, Policy must invalidate
// only sim-policy, and execution knobs (Workers, Table) stay excluded
// exactly as the fingerprint contract demands. Upstream keys carry
// everything else: a change to any ancestor's inputs ripples down the
// Merkle chain, so there is no invalidation protocol at all — an entry
// under a key is valid forever.
//
// A stage wrapped by the cache loads its key first: on a hit it decodes
// the stored payload into the artifact slots the stage body would have
// written and skips the body entirely (for trace stages that includes
// the cluster steal hook — a hit never leaves the process); on a miss
// it runs the body, then encodes and stores. Skipping bodies is safe
// under the repo's rng discipline: streams are split off the root *by
// name inside each body* and SplitNamed never advances the parent, so
// an unexecuted stage leaves every other stage's draws untouched.
//
// Failure contract ("faults cost latency, never bytes"): the store
// checksums payloads and deletes what fails verification; a payload
// that decodes as structurally invalid despite a valid checksum (codec
// skew) is deleted and the stage recomputes; encode errors skip the
// store and the run proceeds on the freshly computed values.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// StageCache is the store the run DAG consults for stage outputs. Keys
// are opaque hex digests; payloads are opaque bytes (see stagecodec.go
// for what goes in them). internal/stagecache provides the production
// implementation; the interface keeps core free of the storage detail
// and lets tests substitute simple fakes.
//
// Load returns a payload previously Stored under key. Store is
// best-effort (a cache may bound, shed, or spill as it likes). Delete
// removes an entry core found undecodable so it is never retried.
// Implementations must be safe for concurrent use — stages load and
// store in parallel.
type StageCache interface {
	Load(key string) ([]byte, bool)
	Store(key string, payload []byte)
	Delete(key string)
}

// stageKeyVersion versions the key derivation itself: bumping it
// orphans every previously derived key at once.
const stageKeyVersion = "rcpt-stage/1"

// Per-stage-kind version tags. Bump a tag when the stage's
// implementation or payload encoding changes meaning, so stale entries
// miss instead of decoding into wrong values.
const (
	verCohort      = "cohort/1"
	verPanel       = "panel/1"
	verRake        = "rake/1"
	verCohortTable = "cohort-table/1"
	verTrace       = "trace/1"
	verModlog      = "modlog/1"
	verModAgg      = "modagg/1"
	verSimPolicy   = "sim-policy/1"
	verSimFCFS     = "sim-fcfs/1"
	verSimCons     = "sim-conservative/1"
)

// deriveStageKey computes one stage's content key. inputs is the
// stage's canonical config-field encoding ("k=v\n" lines, same style as
// Config.Fingerprint); upstream is the keys of its cacheable
// dependencies, order-insensitive (sorted here).
func deriveStageKey(name, version, inputs string, upstream []string) string {
	var b strings.Builder
	b.WriteString(stageKeyVersion)
	b.WriteByte('\n')
	b.WriteString("stage=")
	b.WriteString(name)
	b.WriteByte('\n')
	b.WriteString("version=")
	b.WriteString(version)
	b.WriteByte('\n')
	b.WriteString("inputs=")
	b.WriteString(inputs)
	b.WriteByte('\n')
	ups := append([]string(nil), upstream...)
	sort.Strings(ups)
	for _, u := range ups {
		b.WriteString("up=")
		b.WriteString(u)
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Per-stage config-field subsets. Each function encodes exactly the
// fields its stage kind reads — the invalidation matrix in DESIGN.md
// "Incremental recomputation" is the human-readable form of these.
// Float fields use %b for the same exact-bit-pattern reason as
// Config.Fingerprint.

// cohortInputs: a cohort stage reads the seed, its own cohort size, and
// the noise rate. The other cohort's size, trace config, policy, panel
// size — all irrelevant to its bytes.
func cohortInputs(cfg Config, n int) string {
	return fmt.Sprintf("seed=%d\nn=%d\nnoiserate=%b\n", cfg.Seed, n, cfg.NoiseRate)
}

// panelInputs: the panel reads the seed and its size.
func panelInputs(cfg Config) string {
	return fmt.Sprintf("seed=%d\npaneln=%d\n", cfg.Seed, cfg.PanelN)
}

// traceInputs: a (year, rep) trace stage reads only the seed — year and
// replica are in the stage name, and raising TraceScale adds stages
// without renaming existing ones, so a 10×-scale run reuses every
// replica a 5×-scale run already cached.
func traceInputs(cfg Config) string {
	return fmt.Sprintf("seed=%d\n", cfg.Seed)
}

// modlogInputs: a telemetry year reads only the seed (year in the name).
func modlogInputs(cfg Config) string {
	return fmt.Sprintf("seed=%d\n", cfg.Seed)
}

// simPolicyInputs: the policy simulation reads the policy; its trace
// inputs ride in through upstream keys. The FCFS and conservative
// baselines hardcode their policies, so their inputs are empty.
func simPolicyInputs(cfg Config) string {
	return fmt.Sprintf("policy=%d\n", int(cfg.Policy))
}

// stageCacher threads the cache through buildGraph: derive records
// keys as stages register, wrap turns a stage body into
// load-or-(compute-and-store). A nil *stageCacher (cache disabled) is
// valid and makes both no-ops, so buildGraph stays branch-free.
type stageCacher struct {
	cache StageCache
	keys  map[string]string
}

func newStageCacher(cache StageCache) *stageCacher {
	if cache == nil {
		return nil
	}
	return &stageCacher{cache: cache, keys: map[string]string{}}
}

// derive computes and records name's key. deps name upstream stages
// whose keys must already have been derived — buildGraph registers in
// topological order, so a miss is a wiring bug, not a runtime state.
func (sc *stageCacher) derive(name, version, inputs string, deps ...string) {
	if sc == nil {
		return
	}
	ups := make([]string, len(deps))
	for i, d := range deps {
		k, ok := sc.keys[d]
		if !ok {
			panic(fmt.Sprintf("core: stage %q derives from %q before its key exists", name, d))
		}
		ups[i] = k
	}
	sc.keys[name] = deriveStageKey(name, version, inputs, ups)
}

// wrap returns the cache-aware form of a stage body. enc snapshots the
// stage's freshly computed output (called at the end of a successful
// body, before any dependent stage can run — so for stages whose
// outputs are later mutated in place, like cohorts ahead of raking, the
// payload captures exactly the at-completion state); dec restores a
// stored payload into the same artifact slots.
func (sc *stageCacher) wrap(name string, body func() error, enc func() ([]byte, error), dec func([]byte) error) func() error {
	if sc == nil {
		return body
	}
	key, ok := sc.keys[name]
	if !ok {
		panic(fmt.Sprintf("core: stage %q wrapped before its key was derived", name))
	}
	return func() error {
		if payload, hit := sc.cache.Load(key); hit {
			if err := restorePayload(dec, payload); err == nil {
				return nil
			}
			// Valid checksum, invalid structure: codec skew or a damaged
			// store. Drop the entry and recompute — the cache may only
			// ever cost latency.
			sc.cache.Delete(key)
		}
		if err := body(); err != nil {
			return err
		}
		if payload, err := enc(); err == nil {
			sc.cache.Store(key, payload)
		}
		return nil
	}
}

// restorePayload applies a decoder under a panic guard: a payload
// malformed in a way the decoder's structural checks miss must degrade
// to a recompute, never take down the run.
func restorePayload(dec func([]byte) error, payload []byte) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: stage restore panicked: %v", p)
		}
	}()
	return dec(payload)
}

// TraceStageKey returns the stage-cache key of the (year, rep) trace
// stage of cfg — the same key buildGraph derives for that stage. The
// serving layer uses it so peer-served stage steals consult and fill
// the stage cache: a steal answered from cache costs a disk read, not a
// generation, and the bytes are identical either way.
func TraceStageKey(cfg Config, year, rep int) string {
	return deriveStageKey(traceStreamName(year, rep), verTrace, traceInputs(cfg), nil)
}

// EncodeTraceStagePayload frames one trace table as the stage-cache
// payload the trace stages store — exported with DecodeTraceStagePayload
// so the serving layer's peer-stage path shares the exact encoding.
func EncodeTraceStagePayload(tab trace.JobTable) ([]byte, error) {
	return encodeTablePayload(payloadJobs, trace.JobCodec{}, tab)
}

// DecodeTraceStagePayload reverses EncodeTraceStagePayload.
func DecodeTraceStagePayload(payload []byte) (trace.JobTable, error) {
	return decodeTablePayload(payloadJobs, trace.JobCodec{}, payload)
}
