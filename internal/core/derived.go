package core

// Lazily-memoized derivations over a completed run. The experiment
// registry renders 30+ tables and figures off one Artifacts value, and
// many of them need the same aggregates — weighted cross-tabs of a
// cohort question, per-year job summaries, per-user usage vectors, the
// sim-year co-load matrix. Computing those once and caching them keeps
// the render path O(outputs), not O(outputs × scans).
//
// All cached values are computed on first use, guarded by a sync.Once
// (or a mutex for keyed families), and safe for concurrent renderers.
// Callers must treat returned slices and maps as read-only; they are
// shared across every subsequent caller.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/modlog"
	"repro/internal/population"
	"repro/internal/survey"
	"repro/internal/table"
	"repro/internal/trace"
)

// derivations is the cache embedded in Artifacts. The zero value is
// ready to use, so Artifacts literals need no constructor.
type derivations struct {
	mu   sync.Mutex
	tabs map[tabKey]tabEntry

	jobSummariesOnce sync.Once
	jobSummaries     []trace.YearSummary
	jobSummariesErr  error

	usageMu sync.Mutex
	usage   map[int][]float64

	coLoadsOnce sync.Once
	coLoads     []modlog.PairAffinity
	coLoadsErr  error

	panelOnce     sync.Once
	panelW1       []*survey.Response
	panelW2       []*survey.Response
	panelWavesErr error
}

type tabKey struct {
	year int
	qid  string
}

type tabEntry struct {
	tab survey.Tabulation
	err error
}

// cohortFor maps a cohort year to its response set.
func (a *Artifacts) cohortFor(year int) ([]*survey.Response, error) {
	switch year {
	case 2011:
		return a.Cohort2011, nil
	case 2024:
		return a.Cohort2024, nil
	}
	return nil, fmt.Errorf("core: no cohort for year %d", year)
}

// Tabulation returns the weighted tabulation of qid over the given
// cohort year (2011 or 2024), computed once per (year, question) pair
// and shared by every render that needs it. The returned value must be
// treated as read-only.
func (a *Artifacts) Tabulation(year int, qid string) (survey.Tabulation, error) {
	key := tabKey{year: year, qid: qid}
	a.derived.mu.Lock()
	if e, ok := a.derived.tabs[key]; ok {
		a.derived.mu.Unlock()
		return e.tab, e.err
	}
	a.derived.mu.Unlock()

	// Compute outside the lock so slow tabulations don't serialize
	// unrelated questions; a duplicate race computes the same value.
	var e tabEntry
	rs, err := a.cohortFor(year)
	if err != nil {
		e.err = err
	} else {
		e.tab, e.err = a.Instrument.Tabulate(qid, rs)
	}
	a.derived.mu.Lock()
	if prev, ok := a.derived.tabs[key]; ok {
		e = prev // first writer wins, keep the cache stable
	} else {
		if a.derived.tabs == nil {
			a.derived.tabs = map[tabKey]tabEntry{}
		}
		a.derived.tabs[key] = e
	}
	a.derived.mu.Unlock()
	return e.tab, e.err
}

// JobSummaries returns the per-year workload summaries over the full
// multi-year trace, computed once by a single streaming scan of the
// job table. Read-only.
func (a *Artifacts) JobSummaries() ([]trace.YearSummary, error) {
	a.derived.jobSummariesOnce.Do(func() {
		a.derived.jobSummaries, a.derived.jobSummariesErr = trace.SummarizeTable(a.Jobs)
	})
	return a.derived.jobSummaries, a.derived.jobSummariesErr
}

// UserUsageFor returns the sorted per-user core-hour usage vector for
// one trace year, computed once per year. Read-only.
func (a *Artifacts) UserUsageFor(year int) ([]float64, error) {
	a.derived.usageMu.Lock()
	defer a.derived.usageMu.Unlock()
	if vals, ok := a.derived.usage[year]; ok {
		return vals, nil
	}
	jobs, ok := a.JobsByYr[year]
	if !ok {
		return nil, fmt.Errorf("core: no jobs for year %d", year)
	}
	usage, err := trace.UserUsageTable(jobs)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, 0, len(usage))
	for _, v := range usage {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	if a.derived.usage == nil {
		a.derived.usage = map[int][]float64{}
	}
	a.derived.usage[year] = vals
	return vals, nil
}

// CoLoadPairs returns the module co-load affinities for the sim year,
// computed once off the telemetry event table with a sharded set-union
// scan. Read-only.
func (a *Artifacts) CoLoadPairs() ([]modlog.PairAffinity, error) {
	a.derived.coLoadsOnce.Do(func() {
		if a.ModEventsSim == nil || a.ModEventsSim.Len(table.Exact) == 0 {
			a.derived.coLoadsErr = fmt.Errorf("core: no telemetry events for sim year %d", a.Config.SimYear)
			return
		}
		a.derived.coLoads, a.derived.coLoadsErr = modlog.CoLoadsTable(a.ModEventsSim, a.Config.SimYear, a.Config.tableShards())
	})
	return a.derived.coLoads, a.derived.coLoadsErr
}

// PanelWaves returns the panel members' wave-1 and wave-2 response
// views, built once. Read-only.
func (a *Artifacts) PanelWaves() (w1, w2 []*survey.Response, err error) {
	a.derived.panelOnce.Do(func() {
		if len(a.Panel) == 0 {
			a.derived.panelWavesErr = fmt.Errorf("core: panel experiments need Config.PanelN > 0")
			return
		}
		a.derived.panelW1 = population.Wave1Responses(a.Panel)
		a.derived.panelW2 = population.Wave2Responses(a.Panel)
	})
	return a.derived.panelW1, a.derived.panelW2, a.derived.panelWavesErr
}
