// Package core orchestrates the rcpt study pipeline: generate (or load)
// the two survey cohorts, rake them to the institutional frame, generate
// the multi-year cluster accounting and module-load telemetry, run the
// scheduler simulation, and expose everything as Artifacts that the
// experiment registry (experiments.go) turns into the paper's tables and
// figures.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/modlog"
	"repro/internal/parallel"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/survey"
	"repro/internal/trace"
	"repro/internal/weighting"
)

// Config parameterizes one full study run. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	Seed  uint64
	N2011 int // respondents in the 2011 cohort
	N2024 int // respondents in the 2024 cohort
	// TraceYears are the calendar years of synthetic accounting data
	// (each one representative month).
	TraceYears []int
	// SimYear is the trace year fed to the scheduler simulation.
	SimYear int
	Policy  sched.Policy
	// Rake enables post-stratification to the frame (on by default; the
	// ablation turns it off).
	Rake bool
	// PanelN is the longitudinal panel size (people observed in both
	// waves); 0 disables the panel experiments.
	PanelN int
	// NoiseRate injects synthetic data-quality problems (duplicates,
	// straight-liners, unit errors) into that fraction of each cohort
	// before screening; 0 disables injection. Screening itself always
	// runs, and hard-flagged responses are dropped before weighting.
	NoiseRate float64
	Workers   int // parallel generation fan-out; <=0 means GOMAXPROCS
}

// DefaultConfig returns the standard study configuration: cohort sizes
// echo the reconstructed study (200 in 2011, 600 in 2024), telemetry
// covers 2011–2024 every other year plus both endpoints.
func DefaultConfig() Config {
	return Config{
		Seed:       42,
		N2011:      200,
		N2024:      600,
		TraceYears: []int{2011, 2013, 2015, 2017, 2019, 2021, 2023, 2024},
		SimYear:    2024,
		Policy:     sched.EASYBackfill,
		Rake:       true,
		PanelN:     300,
		NoiseRate:  0.05,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N2011 <= 0 || c.N2024 <= 0 {
		return fmt.Errorf("core: cohort sizes must be positive, got %d and %d", c.N2011, c.N2024)
	}
	if len(c.TraceYears) == 0 {
		return errors.New("core: no trace years")
	}
	seen := map[int]bool{}
	simYearPresent := false
	for _, y := range c.TraceYears {
		if y < 2000 || y > 2100 {
			return fmt.Errorf("core: implausible trace year %d", y)
		}
		if seen[y] {
			return fmt.Errorf("core: duplicate trace year %d", y)
		}
		seen[y] = true
		if y == c.SimYear {
			simYearPresent = true
		}
	}
	if !simYearPresent {
		return fmt.Errorf("core: sim year %d not among trace years %v", c.SimYear, c.TraceYears)
	}
	if c.NoiseRate < 0 || c.NoiseRate > 0.5 {
		return fmt.Errorf("core: noise rate %g out of [0, 0.5]", c.NoiseRate)
	}
	return nil
}

// Artifacts is everything a study run produces; the experiment registry
// reads only from here, so a run is computed once and rendered many
// times.
type Artifacts struct {
	Config     Config
	Instrument *survey.Instrument

	Model2011, Model2024   *population.Model
	Cohort2011, Cohort2024 []*survey.Response
	Rake2011, Rake2024     weighting.Result

	Jobs     []trace.Job         // all years, sorted within year
	JobsByYr map[int][]trace.Job // same jobs keyed by year
	ModAgg   []modlog.YearShares // telemetry aggregated per year
	// ModEventsSim holds the raw telemetry events for the sim year,
	// kept for the co-load analysis (T10).
	ModEventsSim []modlog.Event
	// Quality2011 and Quality2024 report the data-quality screening run
	// on each cohort (after optional noise injection).
	Quality2011, Quality2024 survey.QualityReport
	// Panel holds the longitudinal members (nil when Config.PanelN == 0).
	Panel   []population.PanelMember
	Sim     *sched.Result // scheduler run on SimYear's jobs
	SimFCFS *sched.Result // FCFS baseline for the ablation
	// SimConservative is the conservative-backfill run for the policy
	// comparison table (T8).
	SimConservative *sched.Result

	// derived memoizes render-path aggregates (weighted tabulations,
	// per-year job summaries, co-load matrices) so the 30+ experiments
	// stop recomputing the same scans; see derived.go. It holds locks:
	// Artifacts must not be copied by value once in use.
	derived derivations
}

// Run executes the full pipeline as a concurrent stage graph (see
// buildGraph for the DAG). Deterministic in cfg.Seed for any worker
// count: every stage draws from an rng stream split by name before the
// graph starts, so scheduling order cannot perturb output. Run and
// RunSequential produce byte-identical artifacts.
func Run(cfg Config) (*Artifacts, error) {
	return RunWithOptions(context.Background(), cfg, RunOptions{})
}

// RunContext is Run with external cancellation: once ctx is done no new
// stage starts and ctx.Err() is returned (a stage error that happened
// first wins). In-flight stages are awaited before return — a cancelled
// run never strands goroutines.
func RunContext(ctx context.Context, cfg Config) (*Artifacts, error) {
	return RunWithOptions(ctx, cfg, RunOptions{})
}

// StageObserver receives per-stage wall-clock timings from a run. It is
// telemetry only (the serving layer feeds it into a metrics histogram)
// and may be called concurrently.
type StageObserver func(stage string, seconds float64)

// RunObserved is Run with a per-stage timing hook. The observer must
// not influence behaviour: artifacts stay byte-identical whether or not
// one is installed.
func RunObserved(cfg Config, obs StageObserver) (*Artifacts, error) {
	return RunWithOptions(context.Background(), cfg, RunOptions{Observer: obs})
}

// RunSequential executes the same stage graph one stage at a time, in a
// deterministic topological order. It is the reference implementation
// the staged/concurrent equivalence tests and benchmarks compare
// against; per-stage fan-out (cohort generation chunks) still honors
// cfg.Workers.
func RunSequential(cfg Config) (*Artifacts, error) {
	return RunWithOptions(context.Background(), cfg, RunOptions{sequential: true})
}

// RunOptions bundles the resilience and telemetry knobs of a run. The
// zero value reproduces plain Run. None of the options may influence
// artifact bytes: observers and events are telemetry, middleware is the
// fault-injection seam (a no-op in production), and retry re-executes
// idempotent stages whose rng streams are re-derived by name on every
// attempt.
type RunOptions struct {
	// Observer receives per-stage wall-clock timings.
	Observer StageObserver
	// Events receives resilience events (recovered panics, retries,
	// cancellation) from the stage graph.
	Events func(parallel.Event)
	// Middleware wraps every stage attempt; used by internal/fault to
	// inject deterministic failures at the attempt boundary.
	Middleware parallel.StageMiddleware
	// Retry re-attempts failed stages. Backoff jitter is drawn from the
	// run's own "retry" rng stream split by stage name, so delays — and
	// therefore artifacts — are deterministic for any worker count.
	Retry parallel.RetryPolicy

	sequential bool
}

// RunWithOptions executes the pipeline under ctx with the given
// resilience options. Artifacts are byte-identical to Run for any
// worker count and any retry/fault outcome that ends in success.
func RunWithOptions(ctx context.Context, cfg Config, opts RunOptions) (*Artifacts, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Artifacts{
		Config:     cfg,
		Instrument: survey.Canonical(),
		Model2011:  population.Model2011(),
		Model2024:  population.Model2024(),
		JobsByYr:   map[int][]trace.Job{},
	}
	g, err := buildGraph(cfg, a)
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		g.SetObserver(opts.Observer)
	}
	if opts.Events != nil {
		g.SetEventHook(opts.Events)
	}
	if opts.Middleware != nil {
		g.SetMiddleware(opts.Middleware)
	}
	if opts.Retry.MaxAttempts > 1 {
		// The jitter root is split from the same seed as the pipeline
		// root but under its own name, so retry timing shares the
		// determinism contract without touching any generation stream.
		g.SetRetry(opts.Retry, rng.New(cfg.Seed).SplitNamed("retry"))
	}
	stageWorkers := cfg.Workers
	if opts.sequential {
		stageWorkers = 1
	}
	if err := g.RunContext(ctx, stageWorkers); err != nil {
		return nil, err
	}
	return a, nil
}

// buildGraph wires the pipeline DAG:
//
//	cohort-2011 ──► rake-2011
//	cohort-2024 ──► rake-2024
//	panel
//	trace-<y> (per year) ──► jobs-merge
//	trace-<simyear> ──► sim-easy │ sim-fcfs │ sim-conservative
//	modlog-<y> (per year) ──► modlog-merge
//
// Every stage owns the artifact fields it writes; concurrent stages
// never share mutable state. Per the determinism convention in
// internal/parallel, every rng stream is split off the seed-derived
// root *by name* — and the derivation happens inside each stage body,
// at the top of every attempt. SplitNamed never advances the parent, so
// the bytes are identical to deriving up front, while a retried stage
// re-derives a fresh stream instead of resuming a half-consumed one:
// that is what makes every stage idempotent and therefore retryable.
func buildGraph(cfg Config, a *Artifacts) (*parallel.Graph, error) {
	root := rng.New(cfg.Seed)
	g := parallel.NewGraph()

	// 1. Survey cohorts: generate, optionally inject noise, screen, and
	// drop hard-flagged responses. One stage per cohort.
	g11, err := population.NewGenerator(a.Model2011)
	if err != nil {
		return nil, fmt.Errorf("core: 2011 generator: %w", err)
	}
	g24, err := population.NewGenerator(a.Model2024)
	if err != nil {
		return nil, fmt.Errorf("core: 2024 generator: %w", err)
	}
	cohortStage := func(gen *population.Generator, name string, n int, dst *[]*survey.Response, report *survey.QualityReport) func() error {
		return func() error {
			seed := root.SplitNamed("cohort-" + name).Uint64()
			noiseRng := root.SplitNamed("noise-" + name)
			rs, err := gen.GenerateParallel(seed, n, cfg.Workers)
			if err != nil {
				return fmt.Errorf("core: generating %s cohort: %w", name, err)
			}
			if cfg.NoiseRate > 0 {
				noisy, _, err := population.InjectNoise(noiseRng, rs, cfg.NoiseRate)
				if err != nil {
					return fmt.Errorf("core: injecting noise into %s: %w", name, err)
				}
				rs = noisy
			}
			*report = survey.Screen(a.Instrument, rs, survey.CanonicalRules())
			rs = survey.DropHard(rs, *report)
			if len(rs) == 0 {
				return fmt.Errorf("core: screening removed the entire %s cohort", name)
			}
			*dst = rs
			return nil
		}
	}
	g.AddRetryable("cohort-2011", cohortStage(g11, "2011", cfg.N2011, &a.Cohort2011, &a.Quality2011))
	g.AddRetryable("cohort-2024", cohortStage(g24, "2024", cfg.N2024, &a.Cohort2024, &a.Quality2024))

	// 1b. Longitudinal panel (optional), independent of the cohorts.
	if cfg.PanelN > 0 {
		g.AddRetryable("panel", func() error {
			panelRng := root.SplitNamed("panel")
			pg, err := population.NewPanelGenerator(a.Model2011, a.Model2024, population.PanelOptions{})
			if err != nil {
				return fmt.Errorf("core: panel generator: %w", err)
			}
			if a.Panel, err = pg.Generate(panelRng, cfg.PanelN); err != nil {
				return fmt.Errorf("core: generating panel: %w", err)
			}
			return nil
		})
	}

	// 2. Post-stratification, each cohort independently once it lands.
	// Margins are restricted to observed categories so a small cohort
	// that happens to miss a rare stratum still rakes (the standard
	// collapsed-stratum fallback).
	if cfg.Rake {
		rakeStage := func(name string, cohort *[]*survey.Response, model *population.Model, dst *weighting.Result) func() error {
			return func() error {
				margins := make([]weighting.Margin, 0, 2)
				for _, m := range weighting.FrameMargins(model.FieldShare, model.CareerShare) {
					rm, err := weighting.RestrictToObserved(m, *cohort)
					if err != nil {
						return fmt.Errorf("core: raking %s: %w", name, err)
					}
					margins = append(margins, rm)
				}
				res, err := weighting.Rake(*cohort, margins, weighting.Options{TrimRatio: 6})
				if err != nil {
					return fmt.Errorf("core: raking %s: %w", name, err)
				}
				*dst = res
				return nil
			}
		}
		g.AddRetryable("rake-2011", rakeStage("2011", &a.Cohort2011, a.Model2011, &a.Rake2011), "cohort-2011")
		g.AddRetryable("rake-2024", rakeStage("2024", &a.Cohort2024, a.Model2024, &a.Rake2024), "cohort-2024")
	}

	// 3+4. Cluster accounting traces and module-load telemetry, one
	// stage per year each, merged (and preallocated to the known totals)
	// once every year has landed.
	jobsPartials := make([][]trace.Job, len(cfg.TraceYears))
	modPartials := make([][]modlog.Event, len(cfg.TraceYears))
	traceStages := make([]string, len(cfg.TraceYears))
	modStages := make([]string, len(cfg.TraceYears))
	simStage := ""
	for i, year := range cfg.TraceYears {
		i, year := i, year
		traceStages[i] = fmt.Sprintf("trace-%d", year)
		modStages[i] = fmt.Sprintf("modlog-%d", year)
		if year == cfg.SimYear {
			simStage = traceStages[i]
		}
		g.AddRetryable(traceStages[i], func() error {
			traceRng := root.SplitNamed(fmt.Sprintf("trace-%d", year))
			jobs, err := trace.CampusModel(year).Generate(traceRng, uint64(year)*10_000_000)
			if err != nil {
				return fmt.Errorf("core: generating %d trace: %w", year, err)
			}
			jobsPartials[i] = jobs
			return nil
		})
		g.AddRetryable(modStages[i], func() error {
			modRng := root.SplitNamed(fmt.Sprintf("modlog-%d", year))
			events, err := modlog.CampusModulesModel(year).Generate(modRng)
			if err != nil {
				return fmt.Errorf("core: generating %d module log: %w", year, err)
			}
			modPartials[i] = events
			return nil
		})
	}
	g.AddRetryable("jobs-merge", func() error {
		total := 0
		for _, p := range jobsPartials {
			total += len(p)
		}
		a.Jobs = make([]trace.Job, 0, total)
		for i, year := range cfg.TraceYears {
			a.JobsByYr[year] = jobsPartials[i]
			a.Jobs = append(a.Jobs, jobsPartials[i]...)
		}
		return nil
	}, traceStages...)
	g.AddRetryable("modlog-merge", func() error {
		total := 0
		for _, p := range modPartials {
			total += len(p)
		}
		events := make([]modlog.Event, 0, total)
		for i, p := range modPartials {
			events = append(events, p...)
			if cfg.TraceYears[i] == cfg.SimYear {
				a.ModEventsSim = p
			}
		}
		a.ModAgg = modlog.AggregateByYear(events)
		return nil
	}, modStages...)

	// 5. Scheduler simulations on the sim year: the requested policy
	// plus the FCFS and conservative baselines, concurrently as soon as
	// the sim-year trace lands (they need only that year, not the
	// merge). The generator emits arrival order, so sched skips its
	// defensive copy+sort.
	cluster := sched.DefaultCampusCluster()
	simRun := func(dst **sched.Result, opt sched.Options, what string) func() error {
		return func() error {
			res, err := sched.Simulate(cluster, jobsPartials[simIndex(cfg)], opt)
			if err != nil {
				return fmt.Errorf("core: %s: %w", what, err)
			}
			*dst = res
			return nil
		}
	}
	g.AddRetryable("sim-policy", simRun(&a.Sim, sched.Options{Policy: cfg.Policy, Fairshare: true}, "scheduler simulation"), simStage)
	g.AddRetryable("sim-fcfs", simRun(&a.SimFCFS, sched.Options{Policy: sched.FCFS}, "FCFS baseline"), simStage)
	g.AddRetryable("sim-conservative", simRun(&a.SimConservative, sched.Options{Policy: sched.ConservativeBackfill}, "conservative baseline"), simStage)
	return g, nil
}

// simIndex returns the position of cfg.SimYear within cfg.TraceYears
// (guaranteed present by Validate).
func simIndex(cfg Config) int {
	for i, y := range cfg.TraceYears {
		if y == cfg.SimYear {
			return i
		}
	}
	panic(fmt.Sprintf("core: sim year %d not in trace years", cfg.SimYear))
}

// ModAggFor returns the telemetry aggregate for one year.
func (a *Artifacts) ModAggFor(year int) (modlog.YearShares, error) {
	for _, ys := range a.ModAgg {
		if ys.Year == year {
			return ys, nil
		}
	}
	return modlog.YearShares{}, fmt.Errorf("core: no telemetry for year %d", year)
}
