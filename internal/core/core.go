// Package core orchestrates the rcpt study pipeline: generate (or load)
// the two survey cohorts, rake them to the institutional frame, generate
// the multi-year cluster accounting and module-load telemetry, run the
// scheduler simulation, and expose everything as Artifacts that the
// experiment registry (experiments.go) turns into the paper's tables and
// figures.
package core

import (
	"errors"
	"fmt"

	"repro/internal/modlog"
	"repro/internal/parallel"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/survey"
	"repro/internal/trace"
	"repro/internal/weighting"
)

// Config parameterizes one full study run. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	Seed  uint64
	N2011 int // respondents in the 2011 cohort
	N2024 int // respondents in the 2024 cohort
	// TraceYears are the calendar years of synthetic accounting data
	// (each one representative month).
	TraceYears []int
	// SimYear is the trace year fed to the scheduler simulation.
	SimYear int
	Policy  sched.Policy
	// Rake enables post-stratification to the frame (on by default; the
	// ablation turns it off).
	Rake bool
	// PanelN is the longitudinal panel size (people observed in both
	// waves); 0 disables the panel experiments.
	PanelN int
	// NoiseRate injects synthetic data-quality problems (duplicates,
	// straight-liners, unit errors) into that fraction of each cohort
	// before screening; 0 disables injection. Screening itself always
	// runs, and hard-flagged responses are dropped before weighting.
	NoiseRate float64
	Workers   int // parallel generation fan-out; <=0 means GOMAXPROCS
}

// DefaultConfig returns the standard study configuration: cohort sizes
// echo the reconstructed study (200 in 2011, 600 in 2024), telemetry
// covers 2011–2024 every other year plus both endpoints.
func DefaultConfig() Config {
	return Config{
		Seed:       42,
		N2011:      200,
		N2024:      600,
		TraceYears: []int{2011, 2013, 2015, 2017, 2019, 2021, 2023, 2024},
		SimYear:    2024,
		Policy:     sched.EASYBackfill,
		Rake:       true,
		PanelN:     300,
		NoiseRate:  0.05,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N2011 <= 0 || c.N2024 <= 0 {
		return fmt.Errorf("core: cohort sizes must be positive, got %d and %d", c.N2011, c.N2024)
	}
	if len(c.TraceYears) == 0 {
		return errors.New("core: no trace years")
	}
	seen := map[int]bool{}
	simYearPresent := false
	for _, y := range c.TraceYears {
		if y < 2000 || y > 2100 {
			return fmt.Errorf("core: implausible trace year %d", y)
		}
		if seen[y] {
			return fmt.Errorf("core: duplicate trace year %d", y)
		}
		seen[y] = true
		if y == c.SimYear {
			simYearPresent = true
		}
	}
	if !simYearPresent {
		return fmt.Errorf("core: sim year %d not among trace years %v", c.SimYear, c.TraceYears)
	}
	if c.NoiseRate < 0 || c.NoiseRate > 0.5 {
		return fmt.Errorf("core: noise rate %g out of [0, 0.5]", c.NoiseRate)
	}
	return nil
}

// Artifacts is everything a study run produces; the experiment registry
// reads only from here, so a run is computed once and rendered many
// times.
type Artifacts struct {
	Config     Config
	Instrument *survey.Instrument

	Model2011, Model2024   *population.Model
	Cohort2011, Cohort2024 []*survey.Response
	Rake2011, Rake2024     weighting.Result

	Jobs     []trace.Job         // all years, sorted within year
	JobsByYr map[int][]trace.Job // same jobs keyed by year
	ModAgg   []modlog.YearShares // telemetry aggregated per year
	// ModEventsSim holds the raw telemetry events for the sim year,
	// kept for the co-load analysis (T10).
	ModEventsSim []modlog.Event
	// Quality2011 and Quality2024 report the data-quality screening run
	// on each cohort (after optional noise injection).
	Quality2011, Quality2024 survey.QualityReport
	// Panel holds the longitudinal members (nil when Config.PanelN == 0).
	Panel   []population.PanelMember
	Sim     *sched.Result // scheduler run on SimYear's jobs
	SimFCFS *sched.Result // FCFS baseline for the ablation
	// SimConservative is the conservative-backfill run for the policy
	// comparison table (T8).
	SimConservative *sched.Result
}

// Run executes the full pipeline. Deterministic in cfg.Seed for any
// worker count.
func Run(cfg Config) (*Artifacts, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Artifacts{
		Config:     cfg,
		Instrument: survey.Canonical(),
		Model2011:  population.Model2011(),
		Model2024:  population.Model2024(),
		JobsByYr:   map[int][]trace.Job{},
	}

	// 1. Survey cohorts.
	g11, err := population.NewGenerator(a.Model2011)
	if err != nil {
		return nil, fmt.Errorf("core: 2011 generator: %w", err)
	}
	g24, err := population.NewGenerator(a.Model2024)
	if err != nil {
		return nil, fmt.Errorf("core: 2024 generator: %w", err)
	}
	root := rng.New(cfg.Seed)
	if a.Cohort2011, err = g11.GenerateParallel(root.SplitNamed("cohort-2011").Uint64(), cfg.N2011, cfg.Workers); err != nil {
		return nil, fmt.Errorf("core: generating 2011 cohort: %w", err)
	}
	if a.Cohort2024, err = g24.GenerateParallel(root.SplitNamed("cohort-2024").Uint64(), cfg.N2024, cfg.Workers); err != nil {
		return nil, fmt.Errorf("core: generating 2024 cohort: %w", err)
	}

	// 1a. Data-quality stage: optional noise injection, then screening;
	// hard-flagged responses are dropped before any analysis.
	rules := survey.CanonicalRules()
	for _, c := range []struct {
		cohort *[]*survey.Response
		report *survey.QualityReport
		name   string
	}{
		{&a.Cohort2011, &a.Quality2011, "2011"},
		{&a.Cohort2024, &a.Quality2024, "2024"},
	} {
		if cfg.NoiseRate > 0 {
			noisy, _, err := population.InjectNoise(root.SplitNamed("noise-"+c.name), *c.cohort, cfg.NoiseRate)
			if err != nil {
				return nil, fmt.Errorf("core: injecting noise into %s: %w", c.name, err)
			}
			*c.cohort = noisy
		}
		*c.report = survey.Screen(a.Instrument, *c.cohort, rules)
		*c.cohort = survey.DropHard(*c.cohort, *c.report)
		if len(*c.cohort) == 0 {
			return nil, fmt.Errorf("core: screening removed the entire %s cohort", c.name)
		}
	}

	// 1b. Longitudinal panel (optional).
	if cfg.PanelN > 0 {
		pg, err := population.NewPanelGenerator(a.Model2011, a.Model2024, population.PanelOptions{})
		if err != nil {
			return nil, fmt.Errorf("core: panel generator: %w", err)
		}
		if a.Panel, err = pg.Generate(root.SplitNamed("panel"), cfg.PanelN); err != nil {
			return nil, fmt.Errorf("core: generating panel: %w", err)
		}
	}

	// 2. Post-stratification. Margins are restricted to observed
	// categories so a small cohort that happens to miss a rare stratum
	// still rakes (the standard collapsed-stratum fallback).
	if cfg.Rake {
		rake := func(rs []*survey.Response, model *population.Model, name string) (weighting.Result, error) {
			margins := make([]weighting.Margin, 0, 2)
			for _, m := range weighting.FrameMargins(model.FieldShare, model.CareerShare) {
				rm, err := weighting.RestrictToObserved(m, rs)
				if err != nil {
					return weighting.Result{}, fmt.Errorf("core: raking %s: %w", name, err)
				}
				margins = append(margins, rm)
			}
			res, err := weighting.Rake(rs, margins, weighting.Options{TrimRatio: 6})
			if err != nil {
				return weighting.Result{}, fmt.Errorf("core: raking %s: %w", name, err)
			}
			return res, nil
		}
		if a.Rake2011, err = rake(a.Cohort2011, a.Model2011, "2011"); err != nil {
			return nil, err
		}
		if a.Rake2024, err = rake(a.Cohort2024, a.Model2024, "2024"); err != nil {
			return nil, err
		}
	}

	// 3. Cluster accounting traces, one year per parallel task.
	jobsPartials, err := parallel.Map(cfg.Workers, cfg.TraceYears, func(_ int, year int) ([]trace.Job, error) {
		r := rng.New(cfg.Seed).SplitNamed(fmt.Sprintf("trace-%d", year))
		return trace.CampusModel(year).Generate(r, uint64(year)*10_000_000)
	})
	if err != nil {
		return nil, fmt.Errorf("core: generating traces: %w", err)
	}
	for i, year := range cfg.TraceYears {
		a.JobsByYr[year] = jobsPartials[i]
		a.Jobs = append(a.Jobs, jobsPartials[i]...)
	}

	// 4. Module-load telemetry.
	modPartials, err := parallel.Map(cfg.Workers, cfg.TraceYears, func(_ int, year int) ([]modlog.Event, error) {
		r := rng.New(cfg.Seed).SplitNamed(fmt.Sprintf("modlog-%d", year))
		return modlog.CampusModulesModel(year).Generate(r)
	})
	if err != nil {
		return nil, fmt.Errorf("core: generating module logs: %w", err)
	}
	var events []modlog.Event
	for i, p := range modPartials {
		events = append(events, p...)
		if cfg.TraceYears[i] == cfg.SimYear {
			a.ModEventsSim = p
		}
	}
	a.ModAgg = modlog.AggregateByYear(events)

	// 5. Scheduler simulation on the sim year, requested policy plus the
	// FCFS baseline for the ablation.
	cluster := sched.DefaultCampusCluster()
	if a.Sim, err = sched.Simulate(cluster, a.JobsByYr[cfg.SimYear], sched.Options{Policy: cfg.Policy, Fairshare: true}); err != nil {
		return nil, fmt.Errorf("core: scheduler simulation: %w", err)
	}
	if a.SimFCFS, err = sched.Simulate(cluster, a.JobsByYr[cfg.SimYear], sched.Options{Policy: sched.FCFS}); err != nil {
		return nil, fmt.Errorf("core: FCFS baseline: %w", err)
	}
	if a.SimConservative, err = sched.Simulate(cluster, a.JobsByYr[cfg.SimYear],
		sched.Options{Policy: sched.ConservativeBackfill}); err != nil {
		return nil, fmt.Errorf("core: conservative baseline: %w", err)
	}
	return a, nil
}

// ModAggFor returns the telemetry aggregate for one year.
func (a *Artifacts) ModAggFor(year int) (modlog.YearShares, error) {
	for _, ys := range a.ModAgg {
		if ys.Year == year {
			return ys, nil
		}
	}
	return modlog.YearShares{}, fmt.Errorf("core: no telemetry for year %d", year)
}
