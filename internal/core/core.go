// Package core orchestrates the rcpt study pipeline: generate (or load)
// the two survey cohorts, rake them to the institutional frame, generate
// the multi-year cluster accounting and module-load telemetry, run the
// scheduler simulation, and expose everything as Artifacts that the
// experiment registry (experiments.go) turns into the paper's tables and
// figures.
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/modlog"
	"repro/internal/parallel"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/survey"
	"repro/internal/table"
	"repro/internal/trace"
	"repro/internal/weighting"
)

// Config parameterizes one full study run. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	Seed  uint64
	N2011 int // respondents in the 2011 cohort
	N2024 int // respondents in the 2024 cohort
	// TraceYears are the calendar years of synthetic accounting data
	// (each one representative month).
	TraceYears []int
	// SimYear is the trace year fed to the scheduler simulation.
	SimYear int
	Policy  sched.Policy
	// Rake enables post-stratification to the frame (on by default; the
	// ablation turns it off).
	Rake bool
	// PanelN is the longitudinal panel size (people observed in both
	// waves); 0 disables the panel experiments.
	PanelN int
	// NoiseRate injects synthetic data-quality problems (duplicates,
	// straight-liners, unit errors) into that fraction of each cohort
	// before screening; 0 disables injection. Screening itself always
	// runs, and hard-flagged responses are dropped before weighting.
	NoiseRate float64
	Workers   int // parallel generation fan-out; <=0 means GOMAXPROCS

	// TraceScale multiplies the synthetic accounting volume: each trace
	// year is generated TraceScale times ("replicas"), each replica from
	// its own named rng stream with submit times strided by a full year
	// so replica r's jobs all land after replica r-1's. Replica 0 is
	// bit-identical to the unscaled trace, and 0 or 1 means unscaled —
	// which is why the fingerprint only encodes TraceScale when > 1.
	// Replicas are separate pipeline stages, so a 100× year generates
	// across workers, and separate column tables, so it streams under
	// the Table memory budget.
	TraceScale int

	// Table tunes the columnar artifact storage (internal/table). All
	// execution knobs: like Workers, they are excluded from the config
	// fingerprint because artifact bytes are invariant to them (pinned
	// by the shard/batch equivalence tests).
	Table TableConfig
}

// TableConfig is the columnar-storage tuning surface.
type TableConfig struct {
	// BatchRows is rows per column batch (<=0: 8192).
	BatchRows int
	// Shards is the scanner fan-out for order-free table aggregations
	// (<=0: Workers). Order-sensitive folds ignore it by design.
	Shards int
	// SpillDir, when set, bounds resident memory by spilling column
	// batches to checksummed files under this directory; the 100×–1000×
	// runs set it. Empty keeps batches resident. Explicit by contract:
	// pipeline code never consults the environment, so there is no
	// os.TempDir fallback.
	SpillDir string
	// Resident caps in-memory batches per table when spilling (<=0: 4).
	Resident int
}

// tableOptions maps the config onto a per-table options value; sub
// names one table's private spill directory.
func (c Config) tableOptions(sub string) table.Options {
	opt := table.Options{
		BatchSize: c.Table.BatchRows,
		Resident:  c.Table.Resident,
	}
	if c.Table.SpillDir != "" {
		// Scoped by fingerprint so concurrent runs of different configs
		// (e.g. under rcpt-serve) never share spill files.
		opt.SpillDir = filepath.Join(c.Table.SpillDir, c.Fingerprint()[:12], sub)
	}
	return opt
}

// tableShards resolves the shard fan-out for order-free aggregations.
func (c Config) tableShards() int {
	if c.Table.Shards > 0 {
		return c.Table.Shards
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return parallel.Workers()
}

// traceScale normalizes TraceScale (0 and 1 both mean unscaled).
func (c Config) traceScale() int {
	if c.TraceScale <= 1 {
		return 1
	}
	return c.TraceScale
}

// DefaultConfig returns the standard study configuration: cohort sizes
// echo the reconstructed study (200 in 2011, 600 in 2024), telemetry
// covers 2011–2024 every other year plus both endpoints.
func DefaultConfig() Config {
	return Config{
		Seed:       42,
		N2011:      200,
		N2024:      600,
		TraceYears: []int{2011, 2013, 2015, 2017, 2019, 2021, 2023, 2024},
		SimYear:    2024,
		Policy:     sched.EASYBackfill,
		Rake:       true,
		PanelN:     300,
		NoiseRate:  0.05,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N2011 <= 0 || c.N2024 <= 0 {
		return fmt.Errorf("core: cohort sizes must be positive, got %d and %d", c.N2011, c.N2024)
	}
	if len(c.TraceYears) == 0 {
		return errors.New("core: no trace years")
	}
	seen := map[int]bool{}
	simYearPresent := false
	for _, y := range c.TraceYears {
		if y < 2000 || y > 2100 {
			return fmt.Errorf("core: implausible trace year %d", y)
		}
		if seen[y] {
			return fmt.Errorf("core: duplicate trace year %d", y)
		}
		seen[y] = true
		if y == c.SimYear {
			simYearPresent = true
		}
	}
	if !simYearPresent {
		return fmt.Errorf("core: sim year %d not among trace years %v", c.SimYear, c.TraceYears)
	}
	if c.NoiseRate < 0 || c.NoiseRate > 0.5 {
		return fmt.Errorf("core: noise rate %g out of [0, 0.5]", c.NoiseRate)
	}
	if c.TraceScale < 0 || c.TraceScale > 100_000 {
		return fmt.Errorf("core: implausible trace scale %d", c.TraceScale)
	}
	return nil
}

// Artifacts is everything a study run produces; the experiment registry
// reads only from here, so a run is computed once and rendered many
// times.
type Artifacts struct {
	Config     Config
	Instrument *survey.Instrument

	Model2011, Model2024   *population.Model
	Cohort2011, Cohort2024 []*survey.Response
	Rake2011, Rake2024     weighting.Result
	// CohortTab2011 and CohortTab2024 are the cohorts' columnar storage,
	// built from the final (post-screening, post-raking) responses. The
	// []*survey.Response views above stay the mutable working set the
	// weighting code requires; the tables are the at-rest form — content
	// hashing, spill, and streamed export go through them.
	CohortTab2011, CohortTab2024 survey.ResponseTable

	// Jobs streams the whole multi-year accounting trace: the per-year
	// tables concatenated in TraceYears order (arrival order within each
	// year). With Config.Table.SpillDir set it never needs to be resident
	// at once.
	Jobs trace.JobTable
	// JobsByYr holds the same jobs keyed by year (each a concatenation
	// of that year's TraceScale replica tables, in replica order).
	JobsByYr map[int]trace.JobTable
	ModAgg   []modlog.YearShares // telemetry aggregated per year
	// ModEventsSim holds the sim year's telemetry events in columnar
	// form, kept for the co-load analysis (T10).
	ModEventsSim modlog.EventTable
	// Quality2011 and Quality2024 report the data-quality screening run
	// on each cohort (after optional noise injection).
	Quality2011, Quality2024 survey.QualityReport
	// Panel holds the longitudinal members (nil when Config.PanelN == 0).
	Panel   []population.PanelMember
	Sim     *sched.Result // scheduler run on SimYear's jobs
	SimFCFS *sched.Result // FCFS baseline for the ablation
	// SimConservative is the conservative-backfill run for the policy
	// comparison table (T8).
	SimConservative *sched.Result

	// derived memoizes render-path aggregates (weighted tabulations,
	// per-year job summaries, co-load matrices) so the 30+ experiments
	// stop recomputing the same scans; see derived.go. It holds locks:
	// Artifacts must not be copied by value once in use.
	derived derivations
}

// Run executes the full pipeline as a concurrent stage graph (see
// buildGraph for the DAG). Deterministic in cfg.Seed for any worker
// count: every stage draws from an rng stream split by name before the
// graph starts, so scheduling order cannot perturb output. Run and
// RunSequential produce byte-identical artifacts.
func Run(cfg Config) (*Artifacts, error) {
	return RunWithOptions(context.Background(), cfg, RunOptions{})
}

// RunContext is Run with external cancellation: once ctx is done no new
// stage starts and ctx.Err() is returned (a stage error that happened
// first wins). In-flight stages are awaited before return — a cancelled
// run never strands goroutines.
func RunContext(ctx context.Context, cfg Config) (*Artifacts, error) {
	return RunWithOptions(ctx, cfg, RunOptions{})
}

// StageObserver receives per-stage wall-clock timings from a run. It is
// telemetry only (the serving layer feeds it into a metrics histogram)
// and may be called concurrently.
type StageObserver func(stage string, seconds float64)

// RunObserved is Run with a per-stage timing hook. The observer must
// not influence behaviour: artifacts stay byte-identical whether or not
// one is installed.
func RunObserved(cfg Config, obs StageObserver) (*Artifacts, error) {
	return RunWithOptions(context.Background(), cfg, RunOptions{Observer: obs})
}

// RunSequential executes the same stage graph one stage at a time, in a
// deterministic topological order. It is the reference implementation
// the staged/concurrent equivalence tests and benchmarks compare
// against; per-stage fan-out (cohort generation chunks) still honors
// cfg.Workers.
func RunSequential(cfg Config) (*Artifacts, error) {
	return RunWithOptions(context.Background(), cfg, RunOptions{sequential: true})
}

// RunOptions bundles the resilience and telemetry knobs of a run. The
// zero value reproduces plain Run. None of the options may influence
// artifact bytes: observers and events are telemetry, middleware is the
// fault-injection seam (a no-op in production), and retry re-executes
// idempotent stages whose rng streams are re-derived by name on every
// attempt.
type RunOptions struct {
	// Observer receives per-stage wall-clock timings.
	Observer StageObserver
	// Events receives resilience events (recovered panics, retries,
	// cancellation) from the stage graph.
	Events func(parallel.Event)
	// Middleware wraps every stage attempt; used by internal/fault to
	// inject deterministic failures at the attempt boundary.
	Middleware parallel.StageMiddleware
	// Retry re-attempts failed stages. Backoff jitter is drawn from the
	// run's own "retry" rng stream split by stage name, so delays — and
	// therefore artifacts — are deterministic for any worker count.
	Retry parallel.RetryPolicy

	// TraceStage, when set, computes the (year, rep) trace stages instead
	// of the in-process generator. It is the distribution seam: the
	// cluster layer installs a dispatcher here that steals stage work to
	// peer replicas and falls back to local compute on any fault. The
	// contract is strict — the returned table must hold exactly the rows
	// TraceReplicaTable(cfg, year, rep) would produce (the checksummed
	// stream envelope enforces transfer integrity; the determinism
	// contract guarantees any compliant peer produces the same bytes), so
	// installing a hook can change where work runs but never what the
	// artifacts contain. A hook error fails the stage like any local
	// error: it surfaces as a *parallel.StageError for that stage.
	TraceStage func(ctx context.Context, cfg Config, year, rep int) (trace.JobTable, error)

	// StageCache, when set, lets stages reuse outputs across runs by
	// Merkle-derived content key (see stagecache.go): a stage whose key
	// hits decodes the stored payload instead of executing its body (for
	// trace stages that skips the TraceStage hook too), a miss computes
	// then stores. Like every other option it cannot influence artifact
	// bytes — a hit restores exactly the values the body would have
	// produced, and any cache fault (corruption, codec skew, store
	// failure) degrades to recomputation.
	StageCache StageCache

	sequential bool
}

// RunWithOptions executes the pipeline under ctx with the given
// resilience options. Artifacts are byte-identical to Run for any
// worker count and any retry/fault outcome that ends in success.
func RunWithOptions(ctx context.Context, cfg Config, opts RunOptions) (*Artifacts, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Artifacts{
		Config:     cfg,
		Instrument: survey.Canonical(),
		Model2011:  population.Model2011(),
		Model2024:  population.Model2024(),
		JobsByYr:   map[int]trace.JobTable{},
	}
	g, err := buildGraph(ctx, cfg, a, opts.TraceStage, newStageCacher(opts.StageCache))
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		g.SetObserver(opts.Observer)
	}
	if opts.Events != nil {
		g.SetEventHook(opts.Events)
	}
	if opts.Middleware != nil {
		g.SetMiddleware(opts.Middleware)
	}
	if opts.Retry.MaxAttempts > 1 {
		// The jitter root is split from the same seed as the pipeline
		// root but under its own name, so retry timing shares the
		// determinism contract without touching any generation stream.
		g.SetRetry(opts.Retry, rng.New(cfg.Seed).SplitNamed("retry"))
	}
	stageWorkers := cfg.Workers
	if opts.sequential {
		stageWorkers = 1
	}
	if err := g.RunContext(ctx, stageWorkers); err != nil {
		return nil, err
	}
	return a, nil
}

// buildGraph wires the pipeline DAG:
//
//	cohort-2011 ──► rake-2011 ──► cohort-table-2011
//	cohort-2024 ──► rake-2024 ──► cohort-table-2024
//	panel
//	trace-<y>[-rep<r>] (per year × replica) ──► jobs-merge
//	trace-<simyear>[-rep<r>] ──► sim-easy │ sim-fcfs │ sim-conservative
//	modlog-<y> (per year) ──► modlog-merge
//
// Every stage owns the artifact fields it writes; concurrent stages
// never share mutable state. Per the determinism convention in
// internal/parallel, every rng stream is split off the seed-derived
// root *by name* — and the derivation happens inside each stage body,
// at the top of every attempt. SplitNamed never advances the parent, so
// the bytes are identical to deriving up front, while a retried stage
// re-derives a fresh stream instead of resuming a half-consumed one:
// that is what makes every stage idempotent and therefore retryable.
//
// ctx reaches only the traceStage hook (remote dispatch needs a
// cancellation signal); every in-process stage ignores it — the graph
// runner already stops launching stages once ctx is done.
//
// sc threads the Merkle stage cache through (nil disables it): each
// cacheable stage derives its content key at registration — topological
// order guarantees upstream keys exist — and has its body wrapped into
// load-or-(compute-and-store). jobs-merge is deliberately uncached: it
// is pure wiring over tables the trace stages already provide.
func buildGraph(ctx context.Context, cfg Config, a *Artifacts, traceStage func(context.Context, Config, int, int) (trace.JobTable, error), sc *stageCacher) (*parallel.Graph, error) {
	root := rng.New(cfg.Seed)
	g := parallel.NewGraph()

	// 1. Survey cohorts: generate, optionally inject noise, screen, and
	// drop hard-flagged responses. One stage per cohort.
	g11, err := population.NewGenerator(a.Model2011)
	if err != nil {
		return nil, fmt.Errorf("core: 2011 generator: %w", err)
	}
	g24, err := population.NewGenerator(a.Model2024)
	if err != nil {
		return nil, fmt.Errorf("core: 2024 generator: %w", err)
	}
	cohortStage := func(gen *population.Generator, name string, n int, dst *[]*survey.Response, report *survey.QualityReport) func() error {
		return func() error {
			seed := root.SplitNamed("cohort-" + name).Uint64()
			noiseRng := root.SplitNamed("noise-" + name)
			rs, err := gen.GenerateParallel(seed, n, cfg.Workers)
			if err != nil {
				return fmt.Errorf("core: generating %s cohort: %w", name, err)
			}
			if cfg.NoiseRate > 0 {
				noisy, _, err := population.InjectNoise(noiseRng, rs, cfg.NoiseRate)
				if err != nil {
					return fmt.Errorf("core: injecting noise into %s: %w", name, err)
				}
				rs = noisy
			}
			*report = survey.Screen(a.Instrument, rs, survey.CanonicalRules())
			rs = survey.DropHard(rs, *report)
			if len(rs) == 0 {
				return fmt.Errorf("core: screening removed the entire %s cohort", name)
			}
			*dst = rs
			return nil
		}
	}
	// Cohort payloads snapshot the at-completion state: weights here are
	// pre-raking (the rake stage mutates them in place later, but enc
	// runs before any dependent can start), and the rake stage's own
	// payload restores the post-raking weights.
	cacheCohort := func(name string, dst *[]*survey.Response, report *survey.QualityReport, body func() error) func() error {
		return sc.wrap(name, body,
			func() ([]byte, error) { return encodeCohortPayload(*dst, *report) },
			func(payload []byte) error {
				rs, qr, err := decodeCohortPayload(payload)
				if err != nil {
					return err
				}
				*dst, *report = rs, qr
				return nil
			})
	}
	sc.derive("cohort-2011", verCohort, cohortInputs(cfg, cfg.N2011))
	sc.derive("cohort-2024", verCohort, cohortInputs(cfg, cfg.N2024))
	g.AddRetryable("cohort-2011", cacheCohort("cohort-2011", &a.Cohort2011, &a.Quality2011,
		cohortStage(g11, "2011", cfg.N2011, &a.Cohort2011, &a.Quality2011)))
	g.AddRetryable("cohort-2024", cacheCohort("cohort-2024", &a.Cohort2024, &a.Quality2024,
		cohortStage(g24, "2024", cfg.N2024, &a.Cohort2024, &a.Quality2024)))

	// 1b. Longitudinal panel (optional), independent of the cohorts.
	if cfg.PanelN > 0 {
		sc.derive("panel", verPanel, panelInputs(cfg))
		g.AddRetryable("panel", sc.wrap("panel", func() error {
			panelRng := root.SplitNamed("panel")
			pg, err := population.NewPanelGenerator(a.Model2011, a.Model2024, population.PanelOptions{})
			if err != nil {
				return fmt.Errorf("core: panel generator: %w", err)
			}
			if a.Panel, err = pg.Generate(panelRng, cfg.PanelN); err != nil {
				return fmt.Errorf("core: generating panel: %w", err)
			}
			return nil
		},
			func() ([]byte, error) { return encodePanelPayload(a.Panel) },
			func(payload []byte) error {
				members, err := decodePanelPayload(payload)
				if err != nil {
					return err
				}
				a.Panel = members
				return nil
			}))
	}

	// 2. Post-stratification, each cohort independently once it lands.
	// Margins are restricted to observed categories so a small cohort
	// that happens to miss a rare stratum still rakes (the standard
	// collapsed-stratum fallback).
	if cfg.Rake {
		rakeStage := func(name string, cohort *[]*survey.Response, model *population.Model, dst *weighting.Result) func() error {
			return func() error {
				margins := make([]weighting.Margin, 0, 2)
				for _, m := range weighting.FrameMargins(model.FieldShare, model.CareerShare) {
					rm, err := weighting.RestrictToObserved(m, *cohort)
					if err != nil {
						return fmt.Errorf("core: raking %s: %w", name, err)
					}
					margins = append(margins, rm)
				}
				res, err := weighting.Rake(*cohort, margins, weighting.Options{TrimRatio: 6})
				if err != nil {
					return fmt.Errorf("core: raking %s: %w", name, err)
				}
				*dst = res
				return nil
			}
		}
		// The rake payload carries the diagnostics plus the post-raking
		// weight per response, applied positionally on restore — sound
		// because the upstream cohort key pins the responses and their
		// order. A length mismatch means skew: recompute.
		cacheRake := func(name string, cohort *[]*survey.Response, dst *weighting.Result, body func() error) func() error {
			return sc.wrap(name, body,
				func() ([]byte, error) { return encodeRakePayload(*dst, *cohort) },
				func(payload []byte) error {
					res, weights, err := decodeRakePayload(payload)
					if err != nil {
						return err
					}
					if len(weights) != len(*cohort) {
						return fmt.Errorf("core: rake payload has %d weights for %d responses", len(weights), len(*cohort))
					}
					for i, wt := range weights {
						(*cohort)[i].Weight = wt
					}
					*dst = res
					return nil
				})
		}
		sc.derive("rake-2011", verRake, "", "cohort-2011")
		sc.derive("rake-2024", verRake, "", "cohort-2024")
		g.AddRetryable("rake-2011", cacheRake("rake-2011", &a.Cohort2011, &a.Rake2011,
			rakeStage("2011", &a.Cohort2011, a.Model2011, &a.Rake2011)), "cohort-2011")
		g.AddRetryable("rake-2024", cacheRake("rake-2024", &a.Cohort2024, &a.Rake2024,
			rakeStage("2024", &a.Cohort2024, a.Model2024, &a.Rake2024)), "cohort-2024")
	}

	// 2b. Columnar cohort storage, built from the final weighted
	// responses (after raking when enabled, so the tables carry the
	// weights every downstream consumer sees at rest).
	cohortTable := func(name string, src *[]*survey.Response, dst *survey.ResponseTable) func() error {
		return func() error {
			tab, err := table.Build[survey.Response](survey.ResponseCodec{}, cfg.tableOptions("cohort-"+name),
				func(appendRow func(survey.Response)) error {
					for _, r := range *src {
						appendRow(*r)
					}
					return nil
				})
			if err != nil {
				return fmt.Errorf("core: %s cohort table: %w", name, err)
			}
			*dst = tab
			return nil
		}
	}
	dep2011, dep2024 := "cohort-2011", "cohort-2024"
	if cfg.Rake {
		dep2011, dep2024 = "rake-2011", "rake-2024"
	}
	cacheCohortTable := func(name string, dst *survey.ResponseTable, body func() error) func() error {
		return sc.wrap(name, body,
			func() ([]byte, error) { return encodeTablePayload(payloadResponses, survey.ResponseCodec{}, *dst) },
			func(payload []byte) error {
				tab, err := decodeTablePayload(payloadResponses, survey.ResponseCodec{}, payload)
				if err != nil {
					return err
				}
				*dst = tab
				return nil
			})
	}
	sc.derive("cohort-table-2011", verCohortTable, "", dep2011)
	sc.derive("cohort-table-2024", verCohortTable, "", dep2024)
	g.AddRetryable("cohort-table-2011", cacheCohortTable("cohort-table-2011", &a.CohortTab2011,
		cohortTable("2011", &a.Cohort2011, &a.CohortTab2011)), dep2011)
	g.AddRetryable("cohort-table-2024", cacheCohortTable("cohort-table-2024", &a.CohortTab2024,
		cohortTable("2024", &a.Cohort2024, &a.CohortTab2024)), dep2024)

	// 3+4. Cluster accounting traces and module-load telemetry. Traces
	// run one stage per (year, replica): TraceScale replicas of a year
	// are separate stages — that is the per-shard parallelism beyond the
	// per-year split — each streaming its generator straight into its
	// own column table, so a replica's working set is O(BatchSize ×
	// Resident), never the whole year. Telemetry stays one stage per
	// year (its volume does not scale).
	scale := cfg.traceScale()
	repTables := make([][]trace.JobTable, len(cfg.TraceYears))
	modTables := make([]modlog.EventTable, len(cfg.TraceYears))
	traceStages := make([]string, 0, len(cfg.TraceYears)*scale)
	modStages := make([]string, len(cfg.TraceYears))
	var simStages []string
	for i, year := range cfg.TraceYears {
		i, year := i, year
		repTables[i] = make([]trace.JobTable, scale)
		for rep := 0; rep < scale; rep++ {
			rep := rep
			stage := traceStreamName(year, rep)
			traceStages = append(traceStages, stage)
			if year == cfg.SimYear {
				simStages = append(simStages, stage)
			}
			// newStream derives a fresh copy of this replica's stream on
			// every call (SplitNamed is pure and never advances root), so
			// the build and any later spill rebuild replay identical draws.
			newStream := func() *rng.RNG { return root.SplitNamed(stage) }
			// A trace stage's cache key excludes TraceScale by design:
			// scaling up adds stages without renaming existing ones, so
			// every replica a smaller scale cached keeps hitting. A cache
			// hit also skips the traceStage steal hook — the bytes already
			// exist locally, so no peer should compute them.
			sc.derive(stage, verTrace, traceInputs(cfg))
			g.AddRetryable(stage, sc.wrap(stage, func() error {
				var tab trace.JobTable
				var err error
				if traceStage != nil {
					tab, err = traceStage(ctx, cfg, year, rep)
				} else {
					tab, err = buildTraceReplica(cfg, newStream, year, rep)
				}
				if err != nil {
					return fmt.Errorf("core: generating %s: %w", stage, err)
				}
				repTables[i][rep] = tab
				return nil
			},
				func() ([]byte, error) { return EncodeTraceStagePayload(repTables[i][rep]) },
				func(payload []byte) error {
					tab, err := DecodeTraceStagePayload(payload)
					if err != nil {
						return err
					}
					repTables[i][rep] = tab
					return nil
				}))
		}
		modStages[i] = fmt.Sprintf("modlog-%d", year)
		sc.derive(modStages[i], verModlog, modlogInputs(cfg))
		g.AddRetryable(modStages[i], sc.wrap(modStages[i], func() error {
			stream := fmt.Sprintf("modlog-%d", year)
			events, err := modlog.CampusModulesModel(year).Generate(root.SplitNamed(stream))
			if err != nil {
				return fmt.Errorf("core: generating %d module log: %w", year, err)
			}
			tab, err := table.FromSlice[modlog.Event](modlog.EventCodec{}, cfg.tableOptions(stream), events)
			if err != nil {
				return fmt.Errorf("core: %d module log table: %w", year, err)
			}
			tab.SetRebuild(func(lo, hi int, into table.Columns[modlog.Event]) error {
				evs, err := modlog.CampusModulesModel(year).Generate(root.SplitNamed(stream))
				if err != nil {
					return err
				}
				for _, e := range evs[lo:hi] {
					into.Append(e)
				}
				return nil
			})
			modTables[i] = tab
			return nil
		},
			func() ([]byte, error) { return encodeTablePayload(payloadEvents, modlog.EventCodec{}, modTables[i]) },
			func(payload []byte) error {
				tab, err := decodeTablePayload(payloadEvents, modlog.EventCodec{}, payload)
				if err != nil {
					return err
				}
				modTables[i] = tab
				return nil
			}))
	}
	g.AddRetryable("jobs-merge", func() error {
		all := make([]trace.JobTable, len(cfg.TraceYears))
		for i, year := range cfg.TraceYears {
			all[i] = concatJobTables(repTables[i])
			a.JobsByYr[year] = all[i]
		}
		a.Jobs = table.Concat[trace.Job](all...)
		return nil
	}, traceStages...)
	// modlog-merge's key covers only the telemetry inputs (the upstream
	// modlog keys): the aggregate is SimYear-independent, so a SimYear
	// change keeps hitting. ModEventsSim is re-pointed from the live
	// per-year tables on both paths, which is why it is not in the
	// payload.
	sc.derive("modlog-merge", verModAgg, "", modStages...)
	g.AddRetryable("modlog-merge", sc.wrap("modlog-merge", func() error {
		agg, err := modlog.AggregateByYearTable(table.Concat[modlog.Event](modTables...), cfg.tableShards())
		if err != nil {
			return fmt.Errorf("core: aggregating module log: %w", err)
		}
		a.ModAgg = agg
		a.ModEventsSim = modTables[simIndex(cfg)]
		return nil
	},
		func() ([]byte, error) { return encodeModAggPayload(a.ModAgg) },
		func(payload []byte) error {
			agg, err := decodeModAggPayload(payload)
			if err != nil {
				return err
			}
			a.ModAgg = agg
			a.ModEventsSim = modTables[simIndex(cfg)]
			return nil
		}), modStages...)

	// 5. Scheduler simulations on the sim year: the requested policy
	// plus the FCFS and conservative baselines, concurrently as soon as
	// the sim-year replicas land (they need only that year, not the
	// merge). The generator emits arrival order and replica submit
	// windows are disjoint, so the concatenated feed streams straight
	// into the simulator — no materialization, no sort.
	cluster := sched.DefaultCampusCluster()
	simRun := func(dst **sched.Result, opt sched.Options, what string) func() error {
		return func() error {
			res, err := sched.SimulateTable(cluster, concatJobTables(repTables[simIndex(cfg)]), opt)
			if err != nil {
				return fmt.Errorf("core: %s: %w", what, err)
			}
			*dst = res
			return nil
		}
	}
	// Sim keys: the policy run reads cfg.Policy (the canonical late-DAG
	// knob — changing it invalidates exactly this one stage); the two
	// baselines hardcode theirs, distinguished by version tag. All three
	// inherit the sim-year trace keys upstream, so a seed or TraceScale
	// change invalidates them and a cohort-side change does not.
	cacheSim := func(name string, dst **sched.Result, body func() error) func() error {
		return sc.wrap(name, body,
			func() ([]byte, error) { return encodeSimPayload(*dst) },
			func(payload []byte) error {
				res, err := decodeSimPayload(payload)
				if err != nil {
					return err
				}
				*dst = res
				return nil
			})
	}
	sc.derive("sim-policy", verSimPolicy, simPolicyInputs(cfg), simStages...)
	sc.derive("sim-fcfs", verSimFCFS, "", simStages...)
	sc.derive("sim-conservative", verSimCons, "", simStages...)
	g.AddRetryable("sim-policy", cacheSim("sim-policy", &a.Sim,
		simRun(&a.Sim, sched.Options{Policy: cfg.Policy, Fairshare: true}, "scheduler simulation")), simStages...)
	g.AddRetryable("sim-fcfs", cacheSim("sim-fcfs", &a.SimFCFS,
		simRun(&a.SimFCFS, sched.Options{Policy: sched.FCFS}, "FCFS baseline")), simStages...)
	g.AddRetryable("sim-conservative", cacheSim("sim-conservative", &a.SimConservative,
		simRun(&a.SimConservative, sched.Options{Policy: sched.ConservativeBackfill}, "conservative baseline")), simStages...)
	return g, nil
}

// repStride is the submit-time offset between trace replicas: a full
// year in seconds, comfortably past the one-month horizon a single
// replica spans, so replica r's arrivals all land after replica r-1's
// and the concatenated table is in arrival order by construction.
const repStride = 366 * 86400

// TraceStageName returns the stage-graph name of the (year, rep) trace
// stage — the distribution layer uses it to attribute remote failures
// to the stage the scheduler knows.
func TraceStageName(year, rep int) string { return traceStreamName(year, rep) }

// traceStreamName names a (year, replica) trace stage and its rng
// stream. Replica 0 keeps the historical "trace-<year>" name so an
// unscaled run derives bit-identical streams to every release before
// TraceScale existed.
func traceStreamName(year, rep int) string {
	if rep == 0 {
		return fmt.Sprintf("trace-%d", year)
	}
	return fmt.Sprintf("trace-%d-rep%d", year, rep)
}

// traceFirstID is the job-ID base for a (year, replica) block. Replica
// 0 keeps the historical year*1e7 base; later replicas sit rep<<32
// above it. Year bases differ by multiples of 1e7 (max ~1e9 across the
// valid year range), far below the 2^32 replica stride, and a replica
// holds far fewer than 1e7 jobs — so blocks can never collide.
func traceFirstID(year, rep int) uint64 {
	return uint64(year)*10_000_000 + uint64(rep)<<32
}

// buildTraceReplica streams one (year, replica) trace generation into a
// column table and installs the deterministic rebuild hook used if a
// spill file is later found corrupt. newStream must derive a fresh copy
// of the replica's named rng stream on every call; the generator is the
// source of truth, so rebuilding rows [lo, hi) re-runs the stream from
// the top and recomputes byte-identical rows.
func buildTraceReplica(cfg Config, newStream func() *rng.RNG, year, rep int) (*table.Batches[trace.Job], error) {
	stream := traceStreamName(year, rep)
	offset := int64(rep) * repStride
	generate := func(emit func(trace.Job) error) error {
		return trace.CampusModel(year).GenerateStream(newStream(), traceFirstID(year, rep),
			func(j trace.Job) error {
				j.Submit += offset
				return emit(j)
			})
	}
	tab, err := table.Build[trace.Job](trace.JobCodec{}, cfg.tableOptions(stream),
		func(appendRow func(trace.Job)) error {
			return generate(func(j trace.Job) error {
				appendRow(j)
				return nil
			})
		})
	if err != nil {
		return nil, err
	}
	tab.SetRebuild(func(lo, hi int, into table.Columns[trace.Job]) error {
		i := 0
		err := generate(func(j trace.Job) error {
			if i >= hi {
				return errRebuildDone
			}
			if i >= lo {
				into.Append(j)
			}
			i++
			return nil
		})
		if err != nil && !errors.Is(err, errRebuildDone) {
			return err
		}
		return nil
	})
	return tab, nil
}

// errRebuildDone short-circuits a rebuild scan once the requested row
// window has been recomputed.
var errRebuildDone = errors.New("core: rebuild window complete")

// TraceReplicaTable computes one (year, rep) trace stage of cfg from
// scratch, standalone: the rng stream is re-derived by name from
// cfg.Seed exactly as the full pipeline derives it, so the result is
// bit-identical to the table the stage graph would build in place. This
// is the unit of distributed work-stealing — a peer that receives only
// (cfg, year, rep) can execute the stage and return bytes no different
// from local compute, which is what lets the cluster layer treat remote
// faults as a latency problem, never a correctness one.
func TraceReplicaTable(cfg Config, year, rep int) (trace.JobTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	found := false
	for _, y := range cfg.TraceYears {
		if y == year {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: year %d not among trace years %v", year, cfg.TraceYears)
	}
	if rep < 0 || rep >= cfg.traceScale() {
		return nil, fmt.Errorf("core: replica %d out of range [0, %d)", rep, cfg.traceScale())
	}
	root := rng.New(cfg.Seed)
	stage := traceStreamName(year, rep)
	newStream := func() *rng.RNG { return root.SplitNamed(stage) }
	return buildTraceReplica(cfg, newStream, year, rep)
}

// concatJobTables joins a year's replica tables in replica order (a
// no-op for the common single-replica case).
func concatJobTables(reps []trace.JobTable) trace.JobTable {
	if len(reps) == 1 {
		return reps[0]
	}
	return table.Concat[trace.Job](reps...)
}

// simIndex returns the position of cfg.SimYear within cfg.TraceYears
// (guaranteed present by Validate).
func simIndex(cfg Config) int {
	for i, y := range cfg.TraceYears {
		if y == cfg.SimYear {
			return i
		}
	}
	panic(fmt.Sprintf("core: sim year %d not in trace years", cfg.SimYear))
}

// JobCount returns the total number of accounting jobs across all trace
// years and replicas, without materializing any of them.
func (a *Artifacts) JobCount() int {
	if a.Jobs == nil {
		return 0
	}
	return a.Jobs.Len(table.Exact)
}

// ModAggFor returns the telemetry aggregate for one year.
func (a *Artifacts) ModAggFor(year int) (modlog.YearShares, error) {
	for _, ys := range a.ModAgg {
		if ys.Year == year {
			return ys, nil
		}
	}
	return modlog.YearShares{}, fmt.Errorf("core: no telemetry for year %d", year)
}
