package core

// Usage-concentration experiments: the Lorenz curve of per-user
// core-hours (F12) and the concentration summary by year (T15) — the
// "a small fraction of users consume most of the machine" claim every
// campus telemetry study makes.

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

func concentrationExperiments() []Experiment {
	return []Experiment{
		{ID: "T15", Title: "Usage concentration by year", Kind: KindTable, Table: table15},
		{ID: "F12", Title: "Lorenz curve of per-user core-hours", Kind: KindFigure, Figure: figure12},
	}
}

func table15(a *Artifacts) (*report.Table, error) {
	t := report.NewTable("Table 15: Core-hour concentration across users",
		"year", "users", "gini", "top 1%", "top 10%", "median user (h)")
	years := append([]int(nil), a.Config.TraceYears...)
	sort.Ints(years)
	for _, y := range years {
		vals, err := a.UserUsageFor(y)
		if err != nil {
			return nil, err
		}
		gini, err := stats.Gini(vals)
		if err != nil {
			return nil, err
		}
		top1, err := stats.TopShare(vals, 0.01)
		if err != nil {
			return nil, err
		}
		top10, err := stats.TopShare(vals, 0.10)
		if err != nil {
			return nil, err
		}
		med, err := stats.Median(vals)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(fmt.Sprintf("%d", y), fmt.Sprintf("%d", len(vals)),
			report.F(gini, 2), report.Pct(top1), report.Pct(top10),
			report.F(med, 0)); err != nil {
			return nil, err
		}
	}
	t.Footnote = "usage = cpu core-hours + gpu-hours per active user in the sampled month"
	return t, nil
}

func figure12(a *Artifacts, w io.Writer) error {
	var series []report.LineSeries
	var first []float64
	for _, y := range []int{2011, a.Config.SimYear} {
		vals, err := a.UserUsageFor(y)
		if err != nil {
			return err
		}
		pop, val, err := stats.Lorenz(vals)
		if err != nil {
			return err
		}
		// Thin to <=200 points and resample onto the first year's pop
		// grid so both series share x values.
		k := len(pop)/200 + 1
		var tp, tv []float64
		for i := 0; i < len(pop); i += k {
			tp = append(tp, pop[i])
			tv = append(tv, val[i])
		}
		tp = append(tp, 1)
		tv = append(tv, 1)
		if first == nil {
			first = tp
			series = append(series, report.LineSeries{Name: fmt.Sprintf("%d", y), Ys: tv})
			// Equality reference line on the same grid.
			eq := make([]float64, len(tp))
			copy(eq, tp)
			series = append(series, report.LineSeries{Name: "equality", Ys: eq})
		} else {
			// Interpolate this year's curve onto the first grid.
			resampled := make([]float64, len(first))
			for i, x := range first {
				resampled[i] = interp(tp, tv, x)
			}
			series = append(series, report.LineSeries{Name: fmt.Sprintf("%d", y), Ys: resampled})
		}
	}
	return report.LineChart(w, "Figure 12: Lorenz curve of per-user usage",
		first, series, "share of users", "share of core-hours", true)
}

// interp linearly interpolates y(x) over sorted xs.
func interp(xs, ys []float64, x float64) float64 {
	if x <= xs[0] {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			span := xs[i] - xs[i-1]
			if span == 0 {
				return ys[i]
			}
			frac := (x - xs[i-1]) / span
			return ys[i-1] + frac*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

// waitBoxExperiments adds the wait-distribution box plot (F13).
func waitBoxExperiments() []Experiment {
	return []Experiment{
		{ID: "F13", Title: "Wait-time distribution by policy", Kind: KindFigure, Figure: figure13},
	}
}

func figure13(a *Artifacts, w io.Writer) error {
	boxes := make([]report.BoxStats, 0, 3)
	for _, res := range []*struct {
		r *sched.Result
	}{{a.SimFCFS}, {a.SimConservative}, {a.Sim}} {
		if res.r == nil {
			return fmt.Errorf("core: figure13: missing scheduler result")
		}
		waits := make([]float64, len(res.r.Results))
		for i, jr := range res.r.Results {
			waits[i] = float64(jr.Wait) / 3600
		}
		sum, err := stats.Summarize(waits)
		if err != nil {
			return err
		}
		boxes = append(boxes, report.BoxStats{
			Label: res.r.Metrics.Policy.String(),
			Min:   sum.Min, Q1: sum.P25, Median: sum.P50, Q3: sum.P75, P95: sum.P95,
		})
	}
	return report.BoxPlot(w, "Figure 13: Queue-wait distribution by policy (hours)", boxes, "hours")
}
