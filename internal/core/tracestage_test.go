package core

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
	"repro/internal/table"
	"repro/internal/trace"
)

// TestTraceStageHookEquivalence pins the distribution seam's contract:
// a run whose trace stages are computed through the TraceStage hook —
// here standalone TraceReplicaTable plus a round trip through the
// checksummed stream envelope, i.e. exactly what a remote steal does —
// produces artifacts deeply equal and byte-identical to a plain run.
func TestTraceStageHookEquivalence(t *testing.T) {
	cfg := equivConfig()
	cfg.TraceScale = 2 // cover rep>0 stage names through the hook
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	hooked, err := RunWithOptions(context.Background(), cfg, RunOptions{
		TraceStage: func(_ context.Context, cfg Config, year, rep int) (trace.JobTable, error) {
			calls.Add(1)
			tab, err := TraceReplicaTable(cfg, year, rep)
			if err != nil {
				return nil, err
			}
			var wire bytes.Buffer
			if err := table.EncodeStream[trace.Job](&wire, trace.JobCodec{}, tab); err != nil {
				return nil, err
			}
			return table.DecodeStream[trace.Job](&wire, trace.JobCodec{})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(cfg.TraceYears) * cfg.TraceScale); calls.Load() != want {
		t.Fatalf("hook called %d times, want %d", calls.Load(), want)
	}
	assertArtifactsEqual(t, "in-process", "via hook+stream", base, hooked)
}

// TestTraceStageHookError: a hook failure is a stage failure — it
// surfaces as a *parallel.StageError naming the trace stage, the same
// typed path every local stage error takes.
func TestTraceStageHookError(t *testing.T) {
	cfg := equivConfig()
	boom := errors.New("peer melted")
	_, err := RunWithOptions(context.Background(), cfg, RunOptions{
		TraceStage: func(_ context.Context, cfg Config, year, rep int) (trace.JobTable, error) {
			if year == cfg.TraceYears[len(cfg.TraceYears)-1] {
				return nil, boom
			}
			return TraceReplicaTable(cfg, year, rep)
		},
	})
	var se *parallel.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *parallel.StageError", err)
	}
	if se.Stage != "trace-2013" {
		t.Fatalf("stage = %q, want trace-2013", se.Stage)
	}
	if !errors.Is(err, boom) {
		t.Fatal("hook error not preserved in the chain")
	}
}

// TestTraceReplicaTableValidation: the standalone stage entry point is
// the surface a peer endpoint exposes, so it must reject out-of-graph
// (year, rep) coordinates instead of fabricating streams for them.
func TestTraceReplicaTableValidation(t *testing.T) {
	cfg := equivConfig()
	if _, err := TraceReplicaTable(cfg, 1999, 0); err == nil {
		t.Fatal("accepted a year outside TraceYears")
	}
	if _, err := TraceReplicaTable(cfg, cfg.TraceYears[0], 1); err == nil {
		t.Fatal("accepted a replica beyond the trace scale")
	}
	if _, err := TraceReplicaTable(cfg, cfg.TraceYears[0], -1); err == nil {
		t.Fatal("accepted a negative replica")
	}
}
