package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/survey"
	"repro/internal/table"
	"repro/internal/trace"
)

func TestTabulationMatchesDirectAndCaches(t *testing.T) {
	a := artifacts(t)
	direct, err := a.Instrument.Tabulate(survey.QLanguages, a.Cohort2024)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := a.Tabulation(2024, survey.QLanguages)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, cached) {
		t.Fatal("cached tabulation differs from direct computation")
	}
	again, err := a.Tabulation(2024, survey.QLanguages)
	if err != nil {
		t.Fatal(err)
	}
	// Same underlying map, not a recomputation.
	if reflect.ValueOf(again.Counts).Pointer() != reflect.ValueOf(cached.Counts).Pointer() {
		t.Fatal("second lookup recomputed the tabulation")
	}
	if _, err := a.Tabulation(1999, survey.QLanguages); err == nil {
		t.Fatal("unknown cohort year accepted")
	}
	if _, err := a.Tabulation(2024, "no-such-question"); err == nil {
		t.Fatal("unknown question accepted")
	}
}

func TestJobSummariesCachedAndEquivalent(t *testing.T) {
	a := artifacts(t)
	rows, err := table.Rows[trace.Job](a.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := trace.SummarizeByYear(rows)
	got, err := a.JobSummaries()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("cached job summaries differ from direct computation")
	}
	again, err := a.JobSummaries()
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &again[0] {
		t.Fatal("second call recomputed the summaries")
	}
}

func TestUserUsageForCachedSortedAndChecked(t *testing.T) {
	a := artifacts(t)
	vals, err := a.UserUsageFor(a.Config.SimYear)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) == 0 {
		t.Fatal("no usage values")
	}
	for i := 1; i < len(vals); i++ {
		if vals[i-1] > vals[i] {
			t.Fatal("usage vector not sorted")
		}
	}
	again, err := a.UserUsageFor(a.Config.SimYear)
	if err != nil {
		t.Fatal(err)
	}
	if &vals[0] != &again[0] {
		t.Fatal("second call recomputed the usage vector")
	}
	if _, err := a.UserUsageFor(1999); err == nil {
		t.Fatal("missing year accepted")
	}
}

func TestCoLoadPairsAndPanelWavesCached(t *testing.T) {
	a := artifacts(t)
	pairs, err := a.CoLoadPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no co-load pairs")
	}
	again, _ := a.CoLoadPairs()
	if &pairs[0] != &again[0] {
		t.Fatal("second call recomputed co-loads")
	}
	w1, w2, err := a.PanelWaves()
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != len(a.Panel) || len(w2) != len(a.Panel) {
		t.Fatalf("wave sizes %d/%d for %d members", len(w1), len(w2), len(a.Panel))
	}
	var empty Artifacts
	if _, _, err := empty.PanelWaves(); err == nil {
		t.Fatal("missing panel accepted")
	}
}

// TestDerivationsConcurrentAccess hammers the cache from many
// goroutines; the race detector turns any unsynchronized access into a
// failure.
func TestDerivationsConcurrentAccess(t *testing.T) {
	a := artifacts(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, qid := range []string{survey.QLanguages, survey.QPractices, survey.QParallelism} {
				if _, err := a.Tabulation(2024, qid); err != nil {
					t.Error(err)
				}
			}
			if _, err := a.JobSummaries(); err != nil {
				t.Error(err)
			}
			if _, err := a.UserUsageFor(a.Config.SimYear); err != nil {
				t.Error(err)
			}
			if _, err := a.CoLoadPairs(); err != nil {
				t.Error(err)
			}
			if _, _, err := a.PanelWaves(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
