package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/table"
)

// smallConfig keeps integration tests fast: two trace years, small
// cohorts.
func smallConfig() Config {
	return Config{
		Seed:       7,
		N2011:      150,
		N2024:      300,
		TraceYears: []int{2011, 2015, 2019, 2024},
		SimYear:    2024,
		Policy:     sched.EASYBackfill,
		Rake:       true,
		PanelN:     150,
	}
}

// runOnce caches one pipeline run across the tests in this package.
var cached *Artifacts

func artifacts(t *testing.T) *Artifacts {
	t.Helper()
	if cached == nil {
		a, err := Run(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		cached = a
	}
	return cached
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{N2011: 10, N2024: 0, TraceYears: []int{2024}, SimYear: 2024},
		{N2011: 10, N2024: 10, TraceYears: nil, SimYear: 2024},
		{N2011: 10, N2024: 10, TraceYears: []int{2024, 2024}, SimYear: 2024},
		{N2011: 10, N2024: 10, TraceYears: []int{2023}, SimYear: 2024},
		{N2011: 10, N2024: 10, TraceYears: []int{1800}, SimYear: 1800},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestRunProducesCompleteArtifacts(t *testing.T) {
	a := artifacts(t)
	// smallConfig leaves NoiseRate at 0, so screening drops nothing.
	if len(a.Cohort2011) != 150 || len(a.Cohort2024) != 300 {
		t.Fatalf("cohorts %d/%d", len(a.Cohort2011), len(a.Cohort2024))
	}
	if !a.Rake2011.Converged || !a.Rake2024.Converged {
		t.Fatalf("raking did not converge: %+v %+v", a.Rake2011, a.Rake2024)
	}
	n2011 := a.JobsByYr[2011].Len(table.Exact)
	n2024 := a.JobsByYr[2024].Len(table.Exact)
	if n2011 == 0 || n2024 == 0 {
		t.Fatal("missing trace years")
	}
	if a.JobCount() <= n2011+n2024 {
		t.Fatal("job totals inconsistent")
	}
	if a.CohortTab2011 == nil || a.CohortTab2024.Len(table.Exact) != len(a.Cohort2024) {
		t.Fatal("cohort tables not built")
	}
	if len(a.ModAgg) != 4 {
		t.Fatalf("%d telemetry years", len(a.ModAgg))
	}
	if a.Sim == nil || a.SimFCFS == nil {
		t.Fatal("missing scheduler results")
	}
	if a.Sim.Metrics.MeanWait > a.SimFCFS.Metrics.MeanWait {
		t.Fatalf("backfill mean wait %.0f above FCFS %.0f",
			a.Sim.Metrics.MeanWait, a.SimFCFS.Metrics.MeanWait)
	}
	if _, err := a.ModAggFor(2024); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ModAggFor(1999); err == nil {
		t.Fatal("missing year accepted")
	}
}

// Worker-count determinism is covered comprehensively (deep equality
// over every artifact field plus serialized byte-identity) by
// TestRunWorkerCountEquivalence in equivalence_test.go.

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 29 {
		t.Fatalf("%d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		switch e.Kind {
		case KindTable:
			if e.Table == nil || e.Figure != nil {
				t.Fatalf("%s: table experiment miswired", e.ID)
			}
			if !strings.HasPrefix(e.Filename(), "table") {
				t.Fatalf("%s filename %s", e.ID, e.Filename())
			}
		case KindFigure:
			if e.Figure == nil || e.Table != nil {
				t.Fatalf("%s: figure experiment miswired", e.ID)
			}
			if !strings.HasPrefix(e.Filename(), "figure") {
				t.Fatalf("%s filename %s", e.ID, e.Filename())
			}
		default:
			t.Fatalf("%s: unknown kind %q", e.ID, e.Kind)
		}
	}
	if _, err := Lookup("T2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("T99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllTablesRender(t *testing.T) {
	a := artifacts(t)
	for _, e := range Registry() {
		if e.Kind != KindTable {
			continue
		}
		tab, err := e.Table(a)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", e.ID)
		}
		var buf bytes.Buffer
		if err := tab.WriteASCII(&buf); err != nil {
			t.Fatalf("%s ascii: %v", e.ID, err)
		}
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatalf("%s csv: %v", e.ID, err)
		}
		if err := tab.WriteMarkdown(&buf); err != nil {
			t.Fatalf("%s markdown: %v", e.ID, err)
		}
	}
}

func TestAllFiguresRender(t *testing.T) {
	a := artifacts(t)
	for _, e := range Registry() {
		if e.Kind != KindFigure {
			continue
		}
		var buf bytes.Buffer
		if err := e.Figure(a, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
			t.Fatalf("%s: not svg", e.ID)
		}
	}
}

// Shape assertions on the rendered evaluation: the headline claims from
// DESIGN.md must be visible in the artifacts themselves.
func TestShapeClaims(t *testing.T) {
	a := artifacts(t)
	// T2: python rises to dominance.
	tab2, err := table2(a)
	if err != nil {
		t.Fatal(err)
	}
	foundPython := false
	for _, row := range tab2.Rows {
		if row[0] == "python" {
			foundPython = true
			if !strings.HasPrefix(row[5], "+") {
				t.Fatalf("python delta not positive: %v", row)
			}
		}
	}
	if !foundPython {
		t.Fatal("no python row in table 2")
	}
	// T4: version control ends near-saturation in 2024.
	tab4, err := table4(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab4.Rows {
		if row[0] == "version control" {
			if !strings.HasPrefix(row[5], "+") {
				t.Fatalf("vcs delta not positive: %v", row)
			}
		}
	}
	// Ablation shape: backfill strictly increases started-early jobs.
	if a.Sim.Metrics.BackfillStarts == 0 {
		t.Fatal("no backfills on the 2024 trace")
	}
}

func TestNoiseScreeningInPipeline(t *testing.T) {
	cfg := smallConfig()
	cfg.N2011, cfg.N2024 = 80, 120
	cfg.PanelN = 0
	cfg.NoiseRate = 0.2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Quality2024.Flags) == 0 {
		t.Fatal("20% noise produced no flags")
	}
	// Hard-flagged respondents must be gone from the analysis cohorts.
	for _, r := range a.Cohort2024 {
		if a.Quality2024.HardIDs[r.ID] {
			t.Fatalf("hard-flagged %s survived into the cohort", r.ID)
		}
	}
	// Raking still converges on the cleaned cohort.
	if cfg.Rake && !a.Rake2024.Converged {
		t.Fatalf("raking failed on cleaned cohort: %+v", a.Rake2024)
	}
	// T12 renders with non-zero counts.
	tab, err := table12(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestConfigRejectsBadNoiseRate(t *testing.T) {
	cfg := smallConfig()
	cfg.NoiseRate = 0.9
	if err := cfg.Validate(); err == nil {
		t.Fatal("noise rate 0.9 accepted")
	}
	cfg.NoiseRate = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative noise rate accepted")
	}
}
