package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Fingerprint returns a content-addressed key for the artifacts this
// configuration produces: the SHA-256 of a canonical, versioned
// encoding of every artifact-affecting field. Two configs with equal
// fingerprints produce byte-identical artifacts, so the fingerprint is
// safe to use as a cache key and as the basis for HTTP ETags.
//
// Config.Workers and Config.Table are deliberately excluded: the
// determinism contract (DESIGN.md "Pipeline concurrency & determinism",
// enforced by TestRunWorkerCountEquivalence and the shard/batch
// equivalence tests) guarantees artifacts are byte-identical for any
// worker count, shard fan-out, batch size, or spill configuration, so
// runs differing only in execution knobs must share a cache slot.
// Config.TraceScale does change artifacts, but only when > 1; the
// unscaled encoding omits the field entirely so every fingerprint from
// before the field existed stays valid.
//
// The encoding is versioned ("rcpt-cfg/1") so a future field addition
// that changes artifacts can bump the prefix and invalidate every
// previously derived key at once.
func (c Config) Fingerprint() string {
	var b strings.Builder
	b.WriteString("rcpt-cfg/1\n")
	fmt.Fprintf(&b, "seed=%d\n", c.Seed)
	fmt.Fprintf(&b, "n2011=%d\n", c.N2011)
	fmt.Fprintf(&b, "n2024=%d\n", c.N2024)
	b.WriteString("traceyears=")
	for i, y := range c.TraceYears {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", y)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "simyear=%d\n", c.SimYear)
	fmt.Fprintf(&b, "policy=%d\n", int(c.Policy))
	fmt.Fprintf(&b, "rake=%t\n", c.Rake)
	fmt.Fprintf(&b, "paneln=%d\n", c.PanelN)
	// %b prints the exact bit pattern, so two floats hash equal iff they
	// are the same value (no decimal rounding ambiguity).
	fmt.Fprintf(&b, "noiserate=%b\n", c.NoiseRate)
	if c.TraceScale > 1 {
		fmt.Fprintf(&b, "tracescale=%d\n", c.TraceScale)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
