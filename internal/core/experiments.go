package core

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/modlog"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/survey"
	"repro/internal/table"
	"repro/internal/trace"
	"repro/internal/trend"
)

// Kind distinguishes tables from figures in the registry.
type Kind string

// Experiment kinds.
const (
	KindTable  Kind = "table"
	KindFigure Kind = "figure"
)

// Experiment is one reproducible table or figure. Exactly one of Table
// or Figure is set, matching Kind.
type Experiment struct {
	ID    string // e.g. "T2", "F3"
	Title string
	Kind  Kind
	// Table builds the table from a completed run.
	Table func(a *Artifacts) (*report.Table, error)
	// Figure renders SVG from a completed run.
	Figure func(a *Artifacts, w io.Writer) error
}

// Filename returns the artifact base name ("table2", "figure3").
func (e Experiment) Filename() string {
	if e.Kind == KindTable {
		return "table" + e.ID[1:]
	}
	return "figure" + e.ID[1:]
}

// Registry returns every experiment in presentation order. The IDs match
// DESIGN.md's reconstructed evaluation index.
func Registry() []Experiment {
	return append([]Experiment{
		{ID: "T1", Title: "Respondent demographics by field and career stage", Kind: KindTable, Table: table1},
		{ID: "T2", Title: "Programming-language usage by cohort", Kind: KindTable, Table: table2},
		{ID: "T3", Title: "Parallelism and hardware usage by cohort", Kind: KindTable, Table: table3},
		{ID: "T4", Title: "Software-engineering practice prevalence", Kind: KindTable, Table: table4},
		{ID: "T5", Title: "Cluster workload mix by year", Kind: KindTable, Table: table5},
		{ID: "T6", Title: "2024-only tooling by field heterogeneity", Kind: KindTable, Table: table6},
		{ID: "T7", Title: "Survey vs telemetry concordance", Kind: KindTable, Table: table7},
		{ID: "F1", Title: "Language adoption trend from module loads", Kind: KindFigure, Figure: figure1},
		{ID: "F2", Title: "GPU share of compute per year", Kind: KindFigure, Figure: figure2},
		{ID: "F3", Title: "Job-size CDF by cohort year", Kind: KindFigure, Figure: figure3},
		{ID: "F4", Title: "Queue wait vs job width", Kind: KindFigure, Figure: figure4},
		{ID: "F5", Title: "Cluster utilization timeline", Kind: KindFigure, Figure: figure5},
		{ID: "F6", Title: "Practice co-adoption heatmap", Kind: KindFigure, Figure: figure6},
		{ID: "F7", Title: "Core-hours by research field", Kind: KindFigure, Figure: figure7},
		{ID: "F8", Title: "Raking convergence", Kind: KindFigure, Figure: figure8},
	}, concatExperiments(extensionExperiments(), panelExperiments(), qualityExperiments(), textExperiments(), modelComparisonExperiments(), concentrationExperiments(), sweepExperiments(), waitBoxExperiments())...)
}

// concatExperiments flattens experiment groups.
func concatExperiments(groups ...[]Experiment) []Experiment {
	var out []Experiment
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// ---- tables ----

func table1(a *Artifacts) (*report.Table, error) {
	t := report.NewTable("Table 1: Respondent demographics (weighted shares)",
		"stratum", "category", "2011", "2024", "frame")
	for _, spec := range []struct {
		label, qid string
		cats       []string
		frame11    map[string]float64
	}{
		{"field", survey.QField, survey.Fields, a.Model2024.FieldShare},
		{"career", survey.QCareer, survey.CareerStages, a.Model2024.CareerShare},
	} {
		tab11, err := a.Tabulation(2011, spec.qid)
		if err != nil {
			return nil, err
		}
		tab24, err := a.Tabulation(2024, spec.qid)
		if err != nil {
			return nil, err
		}
		for _, cat := range spec.cats {
			if err := t.AddRow(spec.label, cat,
				report.Pct(tab11.Share(cat)), report.Pct(tab24.Share(cat)),
				report.Pct(spec.frame11[cat])); err != nil {
				return nil, err
			}
		}
	}
	t.Footnote = fmt.Sprintf("n=%d (2011), n=%d (2024); effective n after raking: %.0f, %.0f",
		len(a.Cohort2011), len(a.Cohort2024), a.Rake2011.EffectiveN, a.Rake2024.EffectiveN)
	return t, nil
}

func deltaTable(a *Artifacts, title, qid string, options []string) (*report.Table, error) {
	deltas, err := trend.CompareCohorts(a.Instrument, qid, options, a.Cohort2011, a.Cohort2024)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(title,
		"option", "2011", "95% CI", "2024", "95% CI", "delta", "OR", "q")
	for _, d := range deltas {
		if err := t.AddRow(d.Option,
			report.Pct(d.ShareA), report.CI(d.CIA.Lo, d.CIA.Hi),
			report.Pct(d.ShareB), report.CI(d.CIB.Lo, d.CIB.Hi),
			fmt.Sprintf("%+.1fpp", d.Diff*100),
			report.F(d.OddsRatio, 2), report.PValue(d.Q)); err != nil {
			return nil, err
		}
	}
	bases, err := trend.EffectiveBases(a.Instrument, qid, a.Cohort2011, a.Cohort2024)
	if err != nil {
		return nil, err
	}
	t.Footnote = fmt.Sprintf("weighted; effective bases %.0f / %.0f; q = BH-adjusted two-proportion p", bases[0], bases[1])
	return t, nil
}

func table2(a *Artifacts) (*report.Table, error) {
	return deltaTable(a, "Table 2: Programming-language usage by cohort", survey.QLanguages, nil)
}

func table3(a *Artifacts) (*report.Table, error) {
	t, err := deltaTable(a, "Table 3: Parallelism and hardware usage by cohort", survey.QParallelism, nil)
	if err != nil {
		return nil, err
	}
	// Append the cohort×mode chi-square as a footnote statistic.
	tab := buildCohortTable(a, survey.QParallelism)
	res, err := tab.ChiSquare()
	if err != nil {
		return nil, err
	}
	t.Footnote += fmt.Sprintf("; cohort x mode chi2=%.1f (df=%d, p=%s, V=%.2f)",
		res.Stat, res.DF, report.PValue(res.P), res.CramerV)
	return t, nil
}

// buildCohortTable counts option selections by cohort for a multi-choice
// question (unweighted raw counts, as chi-square requires).
func buildCohortTable(a *Artifacts, qid string) *stats.Contingency {
	q, _ := a.Instrument.Question(qid)
	tab, err := stats.NewContingency(2, len(q.Options))
	if err != nil {
		panic(err)
	}
	for ci, cohort := range [][]*survey.Response{a.Cohort2011, a.Cohort2024} {
		for _, r := range cohort {
			for oi, opt := range q.Options {
				if r.Selected(qid, opt) {
					if err := tab.Add(ci, oi, 1); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	return tab
}

func table4(a *Artifacts) (*report.Table, error) {
	return deltaTable(a, "Table 4: Software-engineering practice prevalence", survey.QPractices, nil)
}

func table5(a *Artifacts) (*report.Table, error) {
	sums, err := a.JobSummaries()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 5: Cluster workload mix by year",
		"year", "jobs", "cpu-hours", "gpu-hours", "gpu-job share", "median cores", "mean cores", "p99 cores", "failed")
	for _, s := range sums {
		if err := t.AddRow(fmt.Sprintf("%d", s.Year), fmt.Sprintf("%d", s.Jobs),
			report.F(s.CPUHours, 0), report.F(s.GPUHours, 0),
			report.Pct(s.GPUJobShare), report.F(s.MedianCores, 0),
			report.F(s.MeanCores, 1), report.F(s.P99Cores, 0),
			report.Pct(s.FailedShare)); err != nil {
			return nil, err
		}
	}
	t.Footnote = "one representative month per year, synthetic campus workload"
	return t, nil
}

func table6(a *Artifacts) (*report.Table, error) {
	t := report.NewTable("Table 6: 2024-only tooling, overall and by-field heterogeneity",
		"tool", "overall", "95% CI", "min field", "max field", "q(heterogeneity)")
	ps := make([]float64, 0, len(survey.ModernTools))
	type row struct {
		tool, ci   string
		overall    float64
		minF, maxF string
	}
	rows := make([]row, 0, len(survey.ModernTools))
	// One weighted tabulation serves every tool's overall share.
	overallTab, err := a.Tabulation(2024, survey.QModernTools)
	if err != nil {
		return nil, err
	}
	for _, tool := range survey.ModernTools {
		byField, err := trend.ByField(a.Instrument, survey.QModernTools, tool, a.Cohort2024)
		if err != nil {
			return nil, err
		}
		overall := overallTab.Share(tool)
		iv, err := stats.WilsonInterval(overall*float64(overallTab.RawBase), float64(overallTab.RawBase), 0.95)
		if err != nil {
			return nil, err
		}
		minF, maxF := byField[0], byField[0]
		for _, fb := range byField {
			if fb.Share < minF.Share {
				minF = fb
			}
			if fb.Share > maxF.Share {
				maxF = fb
			}
		}
		// Heterogeneity: chi-square of tool use across fields (raw counts).
		het, err := fieldHeterogeneity(a, survey.QModernTools, tool)
		if err != nil {
			return nil, err
		}
		ps = append(ps, het)
		rows = append(rows, row{
			tool: tool, overall: overall, ci: report.CI(iv.Lo, iv.Hi),
			minF: fmt.Sprintf("%s (%s)", minF.Field, report.Pct(minF.Share)),
			maxF: fmt.Sprintf("%s (%s)", maxF.Field, report.Pct(maxF.Share)),
		})
	}
	qs, err := stats.BHAdjust(ps)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if err := t.AddRow(r.tool, report.Pct(r.overall), r.ci, r.minF, r.maxF, report.PValue(qs[i])); err != nil {
			return nil, err
		}
	}
	t.Footnote = "2024 cohort only; heterogeneity = chi-square of adoption across fields, BH-adjusted"
	return t, nil
}

// fieldHeterogeneity returns the chi-square p for option adoption
// varying across fields.
func fieldHeterogeneity(a *Artifacts, qid, option string) (float64, error) {
	counts := map[string][2]float64{} // field -> [selected, not]
	for _, r := range a.Cohort2024 {
		if !r.Has(qid) {
			continue
		}
		f := r.Choice(survey.QField)
		c := counts[f]
		if r.Selected(qid, option) {
			c[0]++
		} else {
			c[1]++
		}
		counts[f] = c
	}
	fields := make([]string, 0, len(counts))
	for f := range counts {
		if c := counts[f]; c[0]+c[1] > 0 {
			fields = append(fields, f)
		}
	}
	sort.Strings(fields)
	if len(fields) < 2 {
		return 1, nil
	}
	flat := make([]float64, 0, len(fields)*2)
	for _, f := range fields {
		flat = append(flat, counts[f][0], counts[f][1])
	}
	tab, err := stats.FromCounts(len(fields), 2, flat)
	if err != nil {
		return 0, err
	}
	res, err := tab.GTest() // sparse-tolerant
	if err != nil {
		return 0, err
	}
	return res.P, nil
}

func table7(a *Artifacts) (*report.Table, error) {
	aggA, err := a.ModAggFor(2011)
	if err != nil {
		return nil, err
	}
	aggB, err := a.ModAggFor(a.Config.SimYear)
	if err != nil {
		return nil, err
	}
	rows, err := trend.LanguageConcordance(a.Instrument, a.Cohort2011, a.Cohort2024,
		aggA, aggB, trend.DefaultLanguageModuleMap())
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 7: Survey vs telemetry concordance (2024)",
		"language", "survey share", "telemetry share", "gap", "trend agrees")
	for _, c := range rows {
		agree := "yes"
		if !c.SameDirection {
			agree = "no"
		}
		if err := t.AddRow(c.Construct, report.Pct(c.SurveyShare),
			report.Pct(c.TelemetryShare), fmt.Sprintf("%+.1fpp", c.Gap*100), agree); err != nil {
			return nil, err
		}
	}
	t.Footnote = "telemetry share = fraction of cluster users loading the module at least once"
	return t, nil
}

// ---- figures ----

func figure1(a *Artifacts, w io.Writer) error {
	modules := []string{"python", "matlab", "fortran", "cuda", "r"}
	xs := make([]float64, len(a.ModAgg))
	for i, ys := range a.ModAgg {
		xs[i] = float64(ys.Year)
	}
	series := make([]report.LineSeries, 0, len(modules))
	for _, m := range modules {
		_, shares := modlog.Series(a.ModAgg, m)
		series = append(series, report.LineSeries{Name: m, Ys: shares})
	}
	return report.LineChart(w, "Figure 1: Module adoption per year (share of cluster users)",
		xs, series, "year", "share of users", true)
}

func figure2(a *Artifacts, w io.Writer) error {
	sums, err := a.JobSummaries()
	if err != nil {
		return err
	}
	xs := make([]float64, len(sums))
	gpuShare := make([]float64, len(sums))
	gpuJobShare := make([]float64, len(sums))
	for i, s := range sums {
		xs[i] = float64(s.Year)
		if s.CPUHours+s.GPUHours > 0 {
			gpuShare[i] = s.GPUHours / (s.CPUHours + s.GPUHours)
		}
		gpuJobShare[i] = s.GPUJobShare
	}
	return report.LineChart(w, "Figure 2: GPU adoption in cluster telemetry",
		xs, []report.LineSeries{
			{Name: "gpu-hours share", Ys: gpuShare},
			{Name: "gpu-job share", Ys: gpuJobShare},
		}, "year", "share", true)
}

func figure3(a *Artifacts, w io.Writer) error {
	var series []report.LineSeries
	var pointSets [][]float64
	for _, year := range []int{2011, a.Config.SimYear} {
		jobs, ok := a.JobsByYr[year]
		if !ok {
			return fmt.Errorf("core: figure3: no jobs for %d", year)
		}
		// Core counts are integers, so the sharded collect is order-free
		// in value; it still preserves row order by contract.
		cores, err := table.ShardCollect[trace.Job](jobs, a.Config.tableShards(), func(j trace.Job) float64 {
			return float64(j.Cores())
		})
		if err != nil {
			return err
		}
		pts, probs, err := stats.ECDF(cores)
		if err != nil {
			return err
		}
		// Thin the ECDF so figures stay small: keep every kth point.
		k := len(pts)/400 + 1
		var tp, tq []float64
		for i := 0; i < len(pts); i += k {
			tp = append(tp, pts[i])
			tq = append(tq, probs[i])
		}
		tp = append(tp, pts[len(pts)-1])
		tq = append(tq, probs[len(probs)-1])
		series = append(series, report.LineSeries{Name: fmt.Sprintf("%d", year), Ys: tq})
		pointSets = append(pointSets, tp)
	}
	return report.CDFChart(w, "Figure 3: Job-size CDF by year", series, pointSets, "cores per job (log)")
}

func figure4(a *Artifacts, w io.Writer) error {
	// Bucket jobs by width; plot median and p90 wait per bucket.
	buckets := []struct {
		label  string
		lo, hi int // cores, inclusive range
	}{
		{"1", 1, 1}, {"2-16", 2, 16}, {"17-64", 17, 64},
		{"65-256", 65, 256}, {"257-1024", 257, 1024}, {">1024", 1025, 1 << 30},
	}
	cats := make([]string, len(buckets))
	med := make([]float64, len(buckets))
	p90 := make([]float64, len(buckets))
	for bi, b := range buckets {
		cats[bi] = b.label
		var waits []float64
		for _, r := range a.Sim.Results {
			c := r.Job.Cores()
			if c >= b.lo && c <= b.hi {
				waits = append(waits, float64(r.Wait)/3600)
			}
		}
		if len(waits) == 0 {
			continue
		}
		m, err := stats.Quantile(waits, 0.5)
		if err != nil {
			return err
		}
		p, err := stats.Quantile(waits, 0.9)
		if err != nil {
			return err
		}
		med[bi], p90[bi] = m, p
	}
	return report.GroupedBarChart(w, fmt.Sprintf("Figure 4: Queue wait vs job width (%s)", a.Sim.Metrics.Policy),
		cats, []report.BarSeries{
			{Name: "median wait (h)", Values: med},
			{Name: "p90 wait (h)", Values: p90},
		}, "hours", false)
}

func figure5(a *Artifacts, w io.Writer) error {
	samples := a.Sim.Samples
	if len(samples) < 2 {
		return fmt.Errorf("core: figure5: only %d samples", len(samples))
	}
	// Thin to <= 300 points.
	k := len(samples)/300 + 1
	var xs []float64
	var cpu, gpu []float64
	for i := 0; i < len(samples); i += k {
		xs = append(xs, float64(samples[i].Time)/86400)
		cpu = append(cpu, samples[i].CPUUtil)
		gpu = append(gpu, samples[i].GPUUtil)
	}
	return report.LineChart(w, "Figure 5: Cluster utilization over the simulated month",
		xs, []report.LineSeries{
			{Name: "cpu cores busy", Ys: cpu},
			{Name: "gpus busy", Ys: gpu},
		}, "day", "utilization", true)
}

func figure6(a *Artifacts, w io.Writer) error {
	items := []struct{ qid, opt string }{
		{survey.QPractices, "version control"},
		{survey.QPractices, "automated testing"},
		{survey.QPractices, "continuous integration"},
		{survey.QPractices, "code review"},
		{survey.QParallelism, "gpu"},
		{survey.QModernTools, "ai code assistants"},
		{survey.QModernTools, "containers (docker/apptainer)"},
	}
	n := len(items)
	labels := make([]string, n)
	matrix := make([][]float64, n)
	for i := range matrix {
		matrix[i] = make([]float64, n)
		labels[i] = trend.HeatmapLabel(items[i].opt)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				matrix[i][j] = 1
				continue
			}
			phi, err := trend.CoAdoption(a.Instrument, items[i].qid, items[i].opt,
				items[j].qid, items[j].opt, a.Cohort2024)
			if err != nil {
				return err
			}
			matrix[i][j] = phi
		}
	}
	return report.Heatmap(w, "Figure 6: Practice co-adoption (phi), 2024 cohort", labels, matrix, 1)
}

func figure7(a *Artifacts, w io.Writer) error {
	jobs := a.JobsByYr[a.Config.SimYear]
	cpuH := map[string]float64{}
	gpuH := map[string]float64{}
	// Float accumulation: must stream in row order (FoldSeq, not a
	// sharded fold) so the sums re-associate identically on every run.
	if _, err := table.FoldSeq[trace.Job](jobs, struct{}{}, func(z struct{}, j trace.Job) struct{} {
		cpuH[j.Account] += j.CPUHours()
		gpuH[j.Account] += j.GPUHours()
		return z
	}); err != nil {
		return err
	}
	fields := make([]string, 0, len(cpuH))
	for f := range cpuH {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool {
		return cpuH[fields[i]]+gpuH[fields[i]] > cpuH[fields[j]]+gpuH[fields[j]]
	})
	if len(fields) > 10 {
		fields = fields[:10]
	}
	cpu := make([]float64, len(fields))
	gpu := make([]float64, len(fields))
	for i, f := range fields {
		cpu[i] = cpuH[f]
		gpu[i] = gpuH[f]
	}
	return report.StackedBarChart(w, fmt.Sprintf("Figure 7: Core-hours by field (%d)", a.Config.SimYear),
		fields, []report.BarSeries{
			{Name: "cpu core-hours", Values: cpu},
			{Name: "gpu-hours", Values: gpu},
		}, "hours")
}

func figure8(a *Artifacts, w io.Writer) error {
	tr := a.Rake2024.DeviationTrace
	if len(tr) == 0 {
		return fmt.Errorf("core: figure8: no raking trace (raking disabled?)")
	}
	// Pad single-iteration traces so the line chart has two points, and
	// plot on a log-ish scale by taking log10 of deviation.
	xs := make([]float64, 0, len(tr)+1)
	ys := make([]float64, 0, len(tr)+1)
	for i, d := range tr {
		xs = append(xs, float64(i+1))
		ys = append(ys, safeNegLog10(d))
	}
	if len(xs) == 1 {
		xs = append(xs, 2)
		ys = append(ys, ys[0])
	}
	return report.LineChart(w, "Figure 8: Raking convergence (2024 cohort)",
		xs, []report.LineSeries{{Name: "-log10(max margin deviation)", Ys: ys}},
		"iteration", "-log10 deviation", false)
}

func safeNegLog10(d float64) float64 {
	if d <= 1e-15 {
		d = 1e-15
	}
	v := -math.Log10(d)
	if v < 0 {
		v = 0
	}
	return v
}
