package core

// Seed-sensitivity experiment (T16): re-run the survey side of the
// pipeline across independent seeds and report the spread of the
// headline estimates — the robustness check a synthetic-data study owes
// its readers. Only the (cheap) cohort generation and raking re-run;
// the telemetry side is already exercised by its own experiments.

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/population"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/survey"
	"repro/internal/weighting"
)

// sweepReplicates is the number of Monte Carlo re-runs for T16.
const sweepReplicates = 8

func sweepExperiments() []Experiment {
	return []Experiment{
		{ID: "T16", Title: "Seed sensitivity of headline estimates", Kind: KindTable, Table: table16},
	}
}

// headline is one replicate's key estimates.
type headline struct {
	Python24 float64
	GPU24    float64
	VCS24    float64
	PyDelta  float64 // python 2024 - 2011
}

// headlineFor generates both cohorts from one seed, rakes them, and
// extracts the headline shares.
func headlineFor(seed uint64, n11, n24 int) (headline, error) {
	var h headline
	cohort := func(m *population.Model, name string, n int) ([]*survey.Response, error) {
		g, err := population.NewGenerator(m)
		if err != nil {
			return nil, err
		}
		rs, err := g.GenerateRespondents(rng.New(seed).SplitNamed(name), n)
		if err != nil {
			return nil, err
		}
		// Small replicates can miss rare strata entirely; collapse
		// unobserved categories so raking stays feasible.
		margins := make([]weighting.Margin, 0, 2)
		for _, m := range weighting.FrameMargins(m.FieldShare, m.CareerShare) {
			rm, err := weighting.RestrictToObserved(m, rs)
			if err != nil {
				return nil, err
			}
			margins = append(margins, rm)
		}
		if _, err := weighting.Rake(rs, margins, weighting.Options{TrimRatio: 6}); err != nil {
			return nil, err
		}
		return rs, nil
	}
	r11, err := cohort(population.Model2011(), "sweep-2011", n11)
	if err != nil {
		return h, err
	}
	r24, err := cohort(population.Model2024(), "sweep-2024", n24)
	if err != nil {
		return h, err
	}
	ins := survey.Canonical()
	share := func(rs []*survey.Response, qid, opt string) (float64, error) {
		tab, err := ins.Tabulate(qid, rs)
		if err != nil {
			return 0, err
		}
		return tab.Share(opt), nil
	}
	if h.Python24, err = share(r24, survey.QLanguages, "python"); err != nil {
		return h, err
	}
	if h.GPU24, err = share(r24, survey.QParallelism, "gpu"); err != nil {
		return h, err
	}
	if h.VCS24, err = share(r24, survey.QPractices, "version control"); err != nil {
		return h, err
	}
	py11, err := share(r11, survey.QLanguages, "python")
	if err != nil {
		return h, err
	}
	h.PyDelta = h.Python24 - py11
	return h, nil
}

func table16(a *Artifacts) (*report.Table, error) {
	seeds := make([]uint64, sweepReplicates)
	for i := range seeds {
		seeds[i] = a.Config.Seed + uint64(i)*1_000_003
	}
	reps, err := parallel.Map(a.Config.Workers, seeds, func(_ int, s uint64) (headline, error) {
		return headlineFor(s, a.Config.N2011, a.Config.N2024)
	})
	if err != nil {
		return nil, fmt.Errorf("core: sweep: %w", err)
	}
	t := report.NewTable(fmt.Sprintf("Table 16: Headline estimates across %d seeds", sweepReplicates),
		"estimate", "mean", "sd", "min", "max")
	for _, spec := range []struct {
		name string
		get  func(headline) float64
	}{
		{"python share 2024", func(h headline) float64 { return h.Python24 }},
		{"gpu share 2024", func(h headline) float64 { return h.GPU24 }},
		{"version control 2024", func(h headline) float64 { return h.VCS24 }},
		{"python delta 2011->2024", func(h headline) float64 { return h.PyDelta }},
	} {
		vals := make([]float64, len(reps))
		for i, rep := range reps {
			vals[i] = spec.get(rep)
		}
		sum, err := stats.Summarize(vals)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(spec.name, report.Pct(sum.Mean), report.Pct(sum.Std),
			report.Pct(sum.Min), report.Pct(sum.Max)); err != nil {
			return nil, err
		}
	}
	t.Footnote = fmt.Sprintf(
		"each replicate regenerates and rakes both cohorts (n=%d/%d) from an independent seed; every direction claim must survive the spread",
		a.Config.N2011, a.Config.N2024)
	return t, nil
}
