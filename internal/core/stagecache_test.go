package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/stagecache"
	"repro/internal/survey"
	"repro/internal/trace"
)

// mapStageCache is a minimal in-memory StageCache with counters,
// independent of internal/stagecache so these tests pin the core-side
// contract alone.
type mapStageCache struct {
	mu      sync.Mutex
	m       map[string][]byte
	loads   int
	hits    int
	stores  int
	deletes int
}

func newMapStageCache() *mapStageCache { return &mapStageCache{m: map[string][]byte{}} }

func (c *mapStageCache) Load(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loads++
	p, ok := c.m[key]
	if ok {
		c.hits++
	}
	return p, ok
}

func (c *mapStageCache) Store(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	c.m[key] = payload
}

func (c *mapStageCache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deletes++
	delete(c.m, key)
}

func (c *mapStageCache) stats() (loads, hits, stores, deletes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loads, c.hits, c.stores, c.deletes
}

// runCached executes cfg against cache.
func runCached(t *testing.T, cfg Config, cache StageCache) *Artifacts {
	t.Helper()
	a, err := RunWithOptions(t.Context(), cfg, RunOptions{StageCache: cache})
	if err != nil {
		t.Fatalf("cached run: %v", err)
	}
	return a
}

// TestStageCacheEquivalence is the tentpole equivalence matrix: for
// every worker count × spill combination, a run restored entirely from
// a warm stage cache must be byte-identical to the cold run that filled
// it — and to a plain uncached run.
func TestStageCacheEquivalence(t *testing.T) {
	base := equivConfig()
	for _, workers := range []int{1, 2, 8} {
		for _, spill := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d,spill=%v", workers, spill)
			t.Run(name, func(t *testing.T) {
				cfg := base
				cfg.Workers = workers
				if spill {
					cfg.Table.SpillDir = t.TempDir()
					cfg.Table.Resident = 2
					cfg.Table.BatchRows = 64
				}
				plain, err := RunWithOptions(t.Context(), cfg, RunOptions{})
				if err != nil {
					t.Fatalf("uncached run: %v", err)
				}
				cache := newMapStageCache()
				cold := runCached(t, cfg, cache)
				assertArtifactsEqual(t, "uncached", "cold-cached", plain, cold)
				_, hitsBefore, stores, _ := cache.stats()
				if hitsBefore != 0 {
					t.Fatalf("cold run hit %d entries in an empty cache", hitsBefore)
				}
				if stores == 0 {
					t.Fatal("cold run stored nothing")
				}
				warm := runCached(t, cfg, cache)
				assertArtifactsEqual(t, "cold-cached", "warm-cached", cold, warm)
				loads, hits, _, _ := cache.stats()
				// Every cacheable stage must hit on the warm run: total hits
				// equal the warm run's loads minus the cold run's misses.
				if warmHits := hits; warmHits < stores {
					t.Fatalf("warm run hit %d of %d cached stages (loads %d)", warmHits, stores, loads)
				}
			})
		}
	}
}

// TestStageCachePartialInvalidation pins the invalidation matrix: a
// late-DAG policy change must recompute exactly the sim-policy stage
// and reuse everything else, byte-identical to a cold run of the new
// config.
func TestStageCachePartialInvalidation(t *testing.T) {
	cfg := equivConfig()
	cache := newMapStageCache()
	runCached(t, cfg, cache)
	_, _, storesCold, _ := cache.stats()

	changed := cfg
	changed.Policy = sched.ConservativeBackfill
	fresh, err := RunWithOptions(t.Context(), changed, RunOptions{})
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	warm := runCached(t, changed, cache)
	assertArtifactsEqual(t, "fresh", "warm-after-policy-change", fresh, warm)

	loads2, hits2, stores2, _ := cache.stats()
	recomputed := stores2 - storesCold
	if recomputed != 1 {
		t.Fatalf("policy change recomputed %d stages, want exactly 1 (sim-policy)", recomputed)
	}
	if misses := loads2 - hits2 - storesCold; misses != 1 {
		t.Fatalf("policy change missed %d stages, want 1", misses)
	}
}

// TestStageCacheFieldSubsets pins which config fields reach which stage
// keys — the machine-readable half of DESIGN.md's invalidation matrix.
func TestStageCacheFieldSubsets(t *testing.T) {
	base := equivConfig()
	keysFor := func(cfg Config) map[string]string {
		return stageKeys(t, cfg, newStageCacher(newMapStageCache()))
	}
	baseKeys := keysFor(base)

	t.Run("policy touches only sim-policy", func(t *testing.T) {
		cfg := base
		cfg.Policy = sched.FCFS
		diff := diffKeys(baseKeys, keysFor(cfg))
		want := map[string]bool{"sim-policy": true}
		if !sameSet(diff, want) {
			t.Fatalf("policy change invalidated %v, want %v", diff, want)
		}
	})
	t.Run("n2011 touches the 2011 chain only", func(t *testing.T) {
		cfg := base
		cfg.N2011 += 5
		diff := diffKeys(baseKeys, keysFor(cfg))
		want := map[string]bool{"cohort-2011": true, "rake-2011": true, "cohort-table-2011": true}
		if !sameSet(diff, want) {
			t.Fatalf("n2011 change invalidated %v, want %v", diff, want)
		}
	})
	t.Run("paneln touches only panel", func(t *testing.T) {
		cfg := base
		cfg.PanelN += 5
		diff := diffKeys(baseKeys, keysFor(cfg))
		want := map[string]bool{"panel": true}
		if !sameSet(diff, want) {
			t.Fatalf("paneln change invalidated %v, want %v", diff, want)
		}
	})
	t.Run("seed touches everything cacheable", func(t *testing.T) {
		cfg := base
		cfg.Seed++
		diff := diffKeys(baseKeys, keysFor(cfg))
		if len(diff) != len(baseKeys) {
			t.Fatalf("seed change invalidated %d of %d stages", len(diff), len(baseKeys))
		}
	})
}

// stageKeys builds the graph (without running it) and returns the
// derived key map.
func stageKeys(t *testing.T, cfg Config, sc *stageCacher) map[string]string {
	t.Helper()
	a := &Artifacts{
		Config:     cfg,
		Instrument: survey.Canonical(),
		Model2011:  population.Model2011(),
		Model2024:  population.Model2024(),
		JobsByYr:   map[int]trace.JobTable{},
	}
	if _, err := buildGraph(t.Context(), cfg, a, nil, sc); err != nil {
		t.Fatalf("buildGraph: %v", err)
	}
	return sc.keys
}

func diffKeys(a, b map[string]string) map[string]bool {
	diff := map[string]bool{}
	for k, v := range a {
		if b[k] != v {
			diff[k] = true
		}
	}
	for k, v := range b {
		if a[k] != v {
			diff[k] = true
		}
	}
	return diff
}

func sameSet(got map[string]bool, want map[string]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for k := range want {
		if !got[k] {
			return false
		}
	}
	return true
}

// TestTraceScaleReusesReplicas: growing TraceScale must keep every
// previously derived replica key, so a 3× run reuses the 2× run's
// stages.
func TestTraceScaleReusesReplicas(t *testing.T) {
	cfg := equivConfig()
	cfg.TraceScale = 2
	sc2 := newStageCacher(newMapStageCache())
	keys2 := stageKeys(t, cfg, sc2)
	cfg.TraceScale = 3
	sc3 := newStageCacher(newMapStageCache())
	keys3 := stageKeys(t, cfg, sc3)
	for name, k := range keys2 {
		switch name {
		case "sim-policy", "sim-fcfs", "sim-conservative", "modlog-merge":
			// Merge/sim keys change with the replica set — correct, their
			// inputs changed.
			continue
		}
		if keys3[name] != k {
			t.Fatalf("stage %s key changed when TraceScale grew 2→3", name)
		}
	}
}

// TestStageCacheRealStoreEquivalence runs the equivalence check through
// the production internal/stagecache store with its disk tier — the
// integration the daemon actually ships.
func TestStageCacheRealStoreEquivalence(t *testing.T) {
	cfg := equivConfig()
	dir := t.TempDir()
	cache, err := stagecache.New(stagecache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold := runCached(t, cfg, cache)

	// A fresh store over the same directory: every payload must come
	// back through the checksummed disk tier.
	cache2, err := stagecache.New(stagecache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if restored, corrupt := cache2.Warm(); restored == 0 || corrupt != 0 {
		t.Fatalf("Warm = (%d, %d), want (>0, 0)", restored, corrupt)
	}
	warm := runCached(t, cfg, cache2)
	assertArtifactsEqual(t, "cold", "warm-from-disk", cold, warm)
}

// TestTraceStageKeyMatchesGraph pins the exported TraceStageKey to the
// key buildGraph derives, which the peer-stage serving path depends on.
func TestTraceStageKeyMatchesGraph(t *testing.T) {
	cfg := equivConfig()
	sc := newStageCacher(newMapStageCache())
	keys := stageKeys(t, cfg, sc)
	for _, year := range cfg.TraceYears {
		name := TraceStageName(year, 0)
		if keys[name] == "" {
			t.Fatalf("no graph key for %s", name)
		}
		if got := TraceStageKey(cfg, year, 0); got != keys[name] {
			t.Fatalf("TraceStageKey(%d, 0) = %s, graph derived %s", year, got, keys[name])
		}
	}
}
