//go:build chaos

package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/stagecache"
)

// Chaos coverage for the stage-cache failure contract: a damaged stage
// envelope — torn write, bit flip, or a payload that passes the
// checksum but no longer decodes — must degrade to a verified
// recompute. Faults cost latency, never bytes: every artifact of the
// damaged-cache run is identical to the clean run's.

func flipLastByte(t *testing.T, path string) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func truncateHalf(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
}

// TestChaosStageCacheDiskCorruption damages every persisted stage
// entry — alternating bit flips and truncations — and re-runs against
// the damaged store. The checksum envelope must reject every entry
// (zero hits), the run must recompute everything, and the artifacts
// must match the cold run byte for byte.
func TestChaosStageCacheDiskCorruption(t *testing.T) {
	cfg := equivConfig()
	dir := t.TempDir()
	c1, err := stagecache.New(stagecache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold := runCached(t, cfg, c1)

	files, err := filepath.Glob(filepath.Join(dir, "*.stg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("cold run spilled no stage entries")
	}
	for i, p := range files {
		if i%2 == 0 {
			flipLastByte(t, p)
		} else {
			truncateHalf(t, p)
		}
	}

	reg := obs.NewRegistry()
	m := &stagecache.Metrics{
		Hits:    reg.Counter("chaos_hits", "t"),
		Corrupt: reg.Counter("chaos_corrupt", "t"),
	}
	c2, err := stagecache.New(stagecache.Options{Dir: dir, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	warm := runCached(t, cfg, c2)
	assertArtifactsEqual(t, "cold", "after-disk-corruption", cold, warm)
	if m.Hits.Value() != 0 {
		t.Fatalf("%d corrupted entries served as hits", m.Hits.Value())
	}
	if m.Corrupt.Value() == 0 {
		t.Fatal("no corruption detected despite damaging every entry")
	}

	// The recompute re-stored every stage; a third cache over the same
	// directory must warm-start clean and serve a fully cached run.
	c3, err := stagecache.New(stagecache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if restored, corrupt := c3.Warm(); restored == 0 || corrupt != 0 {
		t.Fatalf("Warm after recompute = (%d, %d), want (>0, 0)", restored, corrupt)
	}
	again := runCached(t, cfg, c3)
	assertArtifactsEqual(t, "cold", "rewarmed", cold, again)
}

// TestChaosStageCacheCodecSkew feeds the run garbage payloads that the
// storage layer vouches for (a fake cache returns them as valid hits):
// the decode layer must reject each one, delete the poisoned entry so
// it is never retried, recompute, and still produce artifacts identical
// to an uncached run.
func TestChaosStageCacheCodecSkew(t *testing.T) {
	cfg := equivConfig()
	plain, err := RunWithOptions(t.Context(), cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	keys := stageKeys(t, cfg, newStageCacher(newMapStageCache()))
	cache := newMapStageCache()
	garbage := [][]byte{
		nil,                          // empty payload
		[]byte("not a stage payload"), // wrong magic
		[]byte("rcpt-stage-cohort/1"), // right magic for one kind, truncated
	}
	i := 0
	for _, k := range keys {
		cache.m[k] = garbage[i%len(garbage)]
		i++
	}

	got := runCached(t, cfg, cache)
	assertArtifactsEqual(t, "uncached", "poisoned-cache", plain, got)
	_, _, _, deletes := cache.stats()
	if deletes != len(keys) {
		t.Fatalf("deleted %d poisoned entries, want %d", deletes, len(keys))
	}
	// Every poisoned entry must have been replaced by a freshly computed
	// payload that now round-trips: a second run is all hits.
	before, hitsBefore, _, _ := cache.stats()
	warm := runCached(t, cfg, cache)
	assertArtifactsEqual(t, "uncached", "repaired-cache", plain, warm)
	loads, hits, _, _ := cache.stats()
	if warmLoads, warmHits := loads-before, hits-hitsBefore; warmHits != warmLoads {
		t.Fatalf("repaired cache hit %d of %d loads", warmHits, warmLoads)
	}
}
