package core

// Free-text experiments: coded bottleneck categories by cohort (T13).

import (
	"fmt"

	"repro/internal/growth"
	"repro/internal/modlog"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/survey"
	"repro/internal/textcode"
)

func textExperiments() []Experiment {
	return []Experiment{
		{ID: "T13", Title: "Reported bottlenecks coded from free text", Kind: KindTable, Table: table13},
	}
}

func table13(a *Artifacts) (*report.Table, error) {
	tax := textcode.BottleneckTaxonomy()
	texts := func(rs []*survey.Response) []string {
		var out []string
		for _, r := range rs {
			if t := r.Text(survey.QBottleneck); t != "" {
				out = append(out, t)
			}
		}
		return out
	}
	t11 := texts(a.Cohort2011)
	t24 := texts(a.Cohort2024)
	if len(t11) == 0 || len(t24) == 0 {
		return nil, fmt.Errorf("core: table13: missing bottleneck texts (%d / %d)", len(t11), len(t24))
	}
	c11, u11 := tax.CodeAll(t11)
	c24, u24 := tax.CodeAll(t24)

	t := report.NewTable("Table 13: What limits computational research (coded free text)",
		"category", "2011", "2024", "delta", "q")
	ps := make([]float64, 0, len(tax.Categories()))
	type row struct {
		cat            string
		s11, s24, diff float64
	}
	rows := make([]row, 0, len(tax.Categories()))
	for _, cat := range tax.Categories() {
		s11 := float64(c11[cat]) / float64(len(t11))
		s24 := float64(c24[cat]) / float64(len(t24))
		_, p, err := stats.TwoProportionZ(float64(c24[cat]), float64(len(t24)),
			float64(c11[cat]), float64(len(t11)))
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
		rows = append(rows, row{cat: cat, s11: s11, s24: s24, diff: s24 - s11})
	}
	qs, err := stats.BHAdjust(ps)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if err := t.AddRow(r.cat, report.Pct(r.s11), report.Pct(r.s24),
			fmt.Sprintf("%+.1fpp", r.diff*100), report.PValue(qs[i])); err != nil {
			return nil, err
		}
	}
	t.Footnote = fmt.Sprintf("taxonomy-coded shares of respondents; uncoded: %d (2011), %d (2024); multi-coding allowed", u11, u24)
	return t, nil
}

// Adoption-model comparison (T14): logistic vs Bass RMSE on the rising
// telemetry series.
func modelComparisonExperiments() []Experiment {
	return []Experiment{
		{ID: "T14", Title: "Adoption model comparison (logistic vs Bass)", Kind: KindTable, Table: table14},
	}
}

func table14(a *Artifacts) (*report.Table, error) {
	if len(a.ModAgg) < 4 {
		return nil, fmt.Errorf("core: table14 needs >= 4 telemetry years, have %d", len(a.ModAgg))
	}
	years := make([]float64, len(a.ModAgg))
	for i, ys := range a.ModAgg {
		years[i] = float64(ys.Year)
	}
	t := report.NewTable("Table 14: Adoption model comparison on rising modules",
		"module", "logistic rmse", "bass rmse", "better")
	for _, mod := range []string{"python", "cuda", "anaconda", "julia"} {
		_, shares := modlogSeries(a, mod)
		mc, err := growth.CompareModels(mod, years, shares)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(mc.Name, report.F(mc.LogisticRMSE, 4),
			report.F(mc.BassRMSE, 4), mc.Better); err != nil {
			return nil, err
		}
	}
	t.Footnote = "both fitted by deterministic grid + coordinate descent; 'tie' when RMSEs are within 5%"
	return t, nil
}

// modlogSeries extracts one module's yearly share series.
func modlogSeries(a *Artifacts, mod string) ([]int, []float64) {
	return modlog.Series(a.ModAgg, mod)
}
