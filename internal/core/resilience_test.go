package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/parallel"
)

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, equivConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := RunContext(ctx, equivConfig()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want context.DeadlineExceeded", err)
	}
}

// TestRunWithRetryMatchesCleanRun is the retry half of the determinism
// contract: a run whose stages fail transiently and get retried must
// produce byte-identical artifacts to a clean run, because every stage
// re-derives its rng streams by name at the top of each attempt.
func TestRunWithRetryMatchesCleanRun(t *testing.T) {
	cfg := equivConfig()
	clean, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	failed := map[string]bool{}
	var retries []parallel.Event
	bumpy, err := RunWithOptions(context.Background(), cfg, RunOptions{
		Middleware: func(stage string, attempt int, run func() error) error {
			mu.Lock()
			first := !failed[stage]
			failed[stage] = true
			mu.Unlock()
			if first {
				return errors.New("transient fault")
			}
			return run()
		},
		Events: func(ev parallel.Event) {
			if ev.Kind == parallel.EventRetry {
				mu.Lock()
				retries = append(retries, ev)
				mu.Unlock()
			}
		},
		Retry: parallel.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(retries) == 0 {
		t.Fatal("no retries recorded; middleware did not fire")
	}
	assertArtifactsEqual(t, "clean", "retried", clean, bumpy)
}

// TestRunStageFailureIsTyped: a stage that keeps failing surfaces as a
// *parallel.StageError naming the stage, with the run failing cleanly.
func TestRunStageFailureIsTyped(t *testing.T) {
	cfg := equivConfig()
	boom := errors.New("persistent fault")
	_, err := RunWithOptions(context.Background(), cfg, RunOptions{
		Middleware: func(stage string, attempt int, run func() error) error {
			if stage == "rake-2024" {
				return boom
			}
			return run()
		},
	})
	var se *parallel.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err=%T %v, want *parallel.StageError", err, err)
	}
	if se.Stage != "rake-2024" || !errors.Is(err, boom) {
		t.Fatalf("StageError=%+v", se)
	}
}
