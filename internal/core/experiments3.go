package core

// Panel experiments: within-person language dynamics (T11) and the
// transition-matrix heatmap (F11). Both require Config.PanelN > 0.

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/survey"
	"repro/internal/trend"
)

func panelExperiments() []Experiment {
	return []Experiment{
		{ID: "T11", Title: "Panel language retention and adoption", Kind: KindTable, Table: table11},
		{ID: "F11", Title: "Panel language transition matrix", Kind: KindFigure, Figure: figure11},
	}
}

func panelWavesOf(a *Artifacts) ([]*survey.Response, []*survey.Response, error) {
	return a.PanelWaves()
}

func table11(a *Artifacts) (*report.Table, error) {
	w1, w2, err := panelWavesOf(a)
	if err != nil {
		return nil, err
	}
	rets, err := trend.Retentions(a.Instrument, survey.QLanguages, w1, w2)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 11: Within-person language dynamics (panel)",
		"language", "kept", "95% CI", "adopted", "95% CI", "wave-1 users")
	for _, r := range rets {
		if r.HadN == 0 {
			continue // language did not exist in wave 1
		}
		if err := t.AddRow(r.Option,
			report.Pct(r.Keep), report.CI(r.KeepCI.Lo, r.KeepCI.Hi),
			report.Pct(r.Adopt), report.CI(r.AdoptCI.Lo, r.AdoptCI.Hi),
			fmt.Sprintf("%d", r.HadN)); err != nil {
			return nil, err
		}
	}
	ml2py, py2ml, err := trend.NetSwitchers(survey.QLanguages, "matlab", "python", w1, w2)
	if err != nil {
		return nil, err
	}
	t.Footnote = fmt.Sprintf("n=%d panel members; kept = P(use in 2024 | used in 2011); matlab→python switchers: %d, reverse: %d",
		len(a.Panel), ml2py, py2ml)
	return t, nil
}

func figure11(a *Artifacts, w io.Writer) error {
	w1, w2, err := panelWavesOf(a)
	if err != nil {
		return err
	}
	opts := []string{"python", "matlab", "fortran", "c", "r", "julia"}
	m, err := trend.TransitionMatrix(a.Instrument, survey.QLanguages, opts, w1, w2)
	if err != nil {
		return err
	}
	return report.Heatmap(w,
		"Figure 11: P(uses column in 2024 | used row in 2011), panel",
		opts, m, 1)
}
