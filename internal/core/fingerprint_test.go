package core

import "testing"

func TestFingerprintWorkerInvariance(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.Workers = 7
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint varies with Workers; the contract says artifacts do not")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := DefaultConfig()
	mutations := map[string]func(*Config){
		"seed":       func(c *Config) { c.Seed++ },
		"n2011":      func(c *Config) { c.N2011++ },
		"n2024":      func(c *Config) { c.N2024++ },
		"traceyears": func(c *Config) { c.TraceYears = append(append([]int(nil), c.TraceYears...), 2025) },
		"simyear":    func(c *Config) { c.SimYear = c.TraceYears[0] },
		"policy":     func(c *Config) { c.Policy++ },
		"rake":       func(c *Config) { c.Rake = !c.Rake },
		"paneln":     func(c *Config) { c.PanelN++ },
		"noiserate":  func(c *Config) { c.NoiseRate += 0.01 },
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, mutate := range mutations {
		c := base
		c.TraceYears = append([]int(nil), base.TraceYears...)
		mutate(&c)
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutating %s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

func TestFingerprintStableAcrossCalls(t *testing.T) {
	c := DefaultConfig()
	if c.Fingerprint() != c.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	if got := len(c.Fingerprint()); got != 64 {
		t.Fatalf("fingerprint length = %d, want 64 hex chars", got)
	}
}
