package core

// Data-quality experiment: the screening summary table (T12).

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/survey"
)

func qualityExperiments() []Experiment {
	return []Experiment{
		{ID: "T12", Title: "Data-quality screening summary", Kind: KindTable, Table: table12},
	}
}

func table12(a *Artifacts) (*report.Table, error) {
	t := report.NewTable("Table 12: Data-quality screening by cohort",
		"rule", "severity", "2011 flags", "2024 flags")
	type key struct {
		rule string
		sev  survey.Severity
	}
	count := func(qr survey.QualityReport) map[key]int {
		out := map[key]int{}
		for _, f := range qr.Flags {
			out[key{f.Rule, f.Severity}]++
		}
		return out
	}
	c11 := count(a.Quality2011)
	c24 := count(a.Quality2024)
	// Fixed row order: built-in duplicate rule then the canonical rules.
	rows := []key{{"duplicate-id", survey.Hard}}
	for _, r := range survey.CanonicalRules() {
		rows = append(rows, key{r.Name, r.Severity})
	}
	for _, k := range rows {
		if err := t.AddRow(k.rule, k.sev.String(),
			fmt.Sprintf("%d", c11[k]), fmt.Sprintf("%d", c24[k])); err != nil {
			return nil, err
		}
	}
	t.Footnote = fmt.Sprintf(
		"screened %d / %d raw responses; clean share %.1f%% / %.1f%%; hard-flagged respondents dropped before weighting (noise rate %.0f%%)",
		a.Quality2011.Responses, a.Quality2024.Responses,
		a.Quality2011.CleanShare()*100, a.Quality2024.CleanShare()*100,
		a.Config.NoiseRate*100)
	return t, nil
}
