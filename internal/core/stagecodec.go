package core

// Stage-output payload codecs for the Merkle stage cache (see
// stagecache.go). Each cacheable stage kind serializes its output into
// a small versioned payload: table-valued stages reuse the checksummed
// "rcpt-col/1" stream envelope internal/table already defines, and
// value-shaped outputs (quality reports, raking results, panel members,
// telemetry aggregates, simulation results) get hand-rolled encodings
// over the same Writer/Reader primitives the column codecs use.
//
// The payload's leading magic names its kind and version. The cache key
// already commits to a version tag, so a magic mismatch should be
// unreachable; it exists as defense in depth — a payload that decodes
// under the wrong kind would corrupt artifacts, and the contract here
// is that a bad payload may only ever cost a recompute. Decoders
// therefore validate structure (lengths, counts, reader state) and
// return errors; they never trust a field they can check.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/modlog"
	"repro/internal/population"
	"repro/internal/sched"
	"repro/internal/survey"
	"repro/internal/table"
	"repro/internal/trace"
	"repro/internal/weighting"
)

// Payload kind magics, one per stage-output shape.
const (
	payloadCohort    = "rcpt-stage-cohort/1"
	payloadRake      = "rcpt-stage-rake/1"
	payloadPanel     = "rcpt-stage-panel/1"
	payloadResponses = "rcpt-stage-responses/1"
	payloadJobs      = "rcpt-stage-jobs/1"
	payloadEvents    = "rcpt-stage-events/1"
	payloadModAgg    = "rcpt-stage-modagg/1"
	payloadSim       = "rcpt-stage-sim/1"
)

// maxStageItems bounds any decoded count before allocation: no stage
// output in any plausible configuration approaches it, so a larger
// value can only be a damaged or hostile payload.
const maxStageItems = 1 << 28

// checkMagic consumes and verifies the payload's kind marker.
func checkMagic(r *table.Reader, want string) error {
	got := r.String()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: stage payload magic: %w", err)
	}
	if got != want {
		return fmt.Errorf("core: stage payload kind %q, want %q", got, want)
	}
	return nil
}

// readCount reads a length-prefix and sanity-bounds it.
func readCount(r *table.Reader, what string) (int, error) {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("core: stage payload %s count: %w", what, err)
	}
	if n > maxStageItems {
		return 0, fmt.Errorf("core: stage payload %s count %d out of range", what, n)
	}
	return int(n), nil
}

// encodeTableBlock frames a whole table as one rcpt-col/1 stream
// envelope carried as a length-prefixed block, so table payloads can
// embed in larger payloads without the stream decoder's buffering
// swallowing trailing fields.
func encodeTableBlock[T any](w *table.Writer, codec table.Codec[T], tab table.Table[T]) error {
	var block bytes.Buffer
	if err := table.EncodeStream[T](&block, codec, tab); err != nil {
		return err
	}
	w.String(block.String())
	return w.Err()
}

// decodeTableBlock reverses encodeTableBlock into a resident table.
func decodeTableBlock[T any](r *table.Reader, codec table.Codec[T]) (table.Table[T], error) {
	block := r.String()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: stage payload table block: %w", err)
	}
	return table.DecodeStream[T](strings.NewReader(block), codec)
}

// --- generic table payloads (trace replicas, cohort tables, telemetry) ---

func encodeTablePayload[T any](magic string, codec table.Codec[T], tab table.Table[T]) ([]byte, error) {
	var buf bytes.Buffer
	w := table.NewWriter(&buf)
	w.String(magic)
	if err := encodeTableBlock(w, codec, tab); err != nil {
		return nil, err
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeTablePayload[T any](magic string, codec table.Codec[T], payload []byte) (table.Table[T], error) {
	r := table.NewReader(bytes.NewReader(payload))
	if err := checkMagic(r, magic); err != nil {
		return nil, err
	}
	return decodeTableBlock(r, codec)
}

// --- cohort: final screened responses + the quality report ---

// writeEmptyChoices records which (row, question) answers carry an
// empty-but-allocated Choices slice. The columnar response form stores
// only answer counts, so []string{} (a multi-choice question answered
// with zero selections) collapses into nil on decode — but a restored
// stage must reproduce exactly the values the computed stage held, down
// to reflect.DeepEqual, so payloads that embed responses carry this
// sidecar. Rows are emitted in order with questions sorted, keeping the
// payload canonical.
func writeEmptyChoices(w *table.Writer, vals []survey.Response) {
	var refs []struct {
		row int
		qid string
	}
	for i := range vals {
		var qids []string
		for qid, a := range vals[i].Answers {
			if a.Choices != nil && len(a.Choices) == 0 {
				qids = append(qids, qid)
			}
		}
		sort.Strings(qids)
		for _, qid := range qids {
			refs = append(refs, struct {
				row int
				qid string
			}{i, qid})
		}
	}
	w.Uvarint(uint64(len(refs)))
	for _, e := range refs {
		w.Uvarint(uint64(e.row))
		w.String(e.qid)
	}
}

// applyEmptyChoices reverses writeEmptyChoices over freshly
// materialized responses.
func applyEmptyChoices(r *table.Reader, rs []*survey.Response) error {
	n, err := readCount(r, "empty-choice")
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := int(r.Uvarint())
		qid := r.String()
		if r.Err() != nil {
			break
		}
		if row < 0 || row >= len(rs) {
			return fmt.Errorf("core: empty-choice sidecar row %d out of range", row)
		}
		a, ok := rs[row].Answers[qid]
		if !ok {
			return fmt.Errorf("core: empty-choice sidecar names unanswered question %q", qid)
		}
		a.Choices = []string{}
		rs[row].Answers[qid] = a
	}
	return r.Err()
}

func encodeCohortPayload(rs []*survey.Response, qr survey.QualityReport) ([]byte, error) {
	var buf bytes.Buffer
	w := table.NewWriter(&buf)
	w.String(payloadCohort)
	vals := make([]survey.Response, len(rs))
	for i, r := range rs {
		vals[i] = *r
	}
	if err := encodeTableBlock(w, survey.ResponseCodec{}, table.NewSlice(vals, survey.ResponseCodec{}.HashRow)); err != nil {
		return nil, err
	}
	writeEmptyChoices(w, vals)
	w.Uvarint(uint64(len(qr.Flags)))
	for _, f := range qr.Flags {
		w.String(f.ResponseID)
		w.String(f.Rule)
		w.Varint(int64(f.Severity))
		w.String(f.Detail)
	}
	hard := make([]string, 0, len(qr.HardIDs))
	for id := range qr.HardIDs {
		hard = append(hard, id)
	}
	sort.Strings(hard)
	w.Uvarint(uint64(len(hard)))
	for _, id := range hard {
		w.String(id)
	}
	w.Uvarint(uint64(qr.Responses))
	if err := w.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCohortPayload(payload []byte) ([]*survey.Response, survey.QualityReport, error) {
	var qr survey.QualityReport
	r := table.NewReader(bytes.NewReader(payload))
	if err := checkMagic(r, payloadCohort); err != nil {
		return nil, qr, err
	}
	tab, err := decodeTableBlock(r, survey.ResponseCodec{})
	if err != nil {
		return nil, qr, err
	}
	rs, err := survey.MaterializeResponses(tab)
	if err != nil {
		return nil, qr, err
	}
	if err := applyEmptyChoices(r, rs); err != nil {
		return nil, qr, err
	}
	nf, err := readCount(r, "flag")
	if err != nil {
		return nil, qr, err
	}
	if nf > 0 {
		qr.Flags = make([]survey.Flag, nf)
		for i := range qr.Flags {
			qr.Flags[i] = survey.Flag{
				ResponseID: r.String(),
				Rule:       r.String(),
				Severity:   survey.Severity(r.Varint()),
				Detail:     r.String(),
			}
		}
	}
	nh, err := readCount(r, "hard ID")
	if err != nil {
		return nil, qr, err
	}
	qr.HardIDs = make(map[string]bool, nh)
	for i := 0; i < nh; i++ {
		qr.HardIDs[r.String()] = true
	}
	qr.Responses = int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, qr, fmt.Errorf("core: cohort payload: %w", err)
	}
	return rs, qr, nil
}

// --- rake: the raking diagnostics + the per-response weights it set ---

// encodeRakePayload snapshots res plus the weight the stage assigned to
// each response, by cohort index. Restoring weights positionally is
// sound because the cohort the weights apply to is itself pinned by the
// rake stage's upstream key: same key, same responses in the same
// order.
func encodeRakePayload(res weighting.Result, cohort []*survey.Response) ([]byte, error) {
	var buf bytes.Buffer
	w := table.NewWriter(&buf)
	w.String(payloadRake)
	w.Varint(int64(res.Iterations))
	converged := uint64(0)
	if res.Converged {
		converged = 1
	}
	w.Uvarint(converged)
	w.Float64(res.MaxDeviation)
	w.Float64(res.EffectiveN)
	w.Float64(res.DesignEffect)
	w.Float64(res.MinWeight)
	w.Float64(res.MaxWeight)
	w.Uvarint(uint64(len(res.DeviationTrace)))
	for _, d := range res.DeviationTrace {
		w.Float64(d)
	}
	w.Uvarint(uint64(len(cohort)))
	for _, resp := range cohort {
		w.Float64(resp.Weight)
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeRakePayload(payload []byte) (weighting.Result, []float64, error) {
	var res weighting.Result
	r := table.NewReader(bytes.NewReader(payload))
	if err := checkMagic(r, payloadRake); err != nil {
		return res, nil, err
	}
	res.Iterations = int(r.Varint())
	res.Converged = r.Uvarint() == 1
	res.MaxDeviation = r.Float64()
	res.EffectiveN = r.Float64()
	res.DesignEffect = r.Float64()
	res.MinWeight = r.Float64()
	res.MaxWeight = r.Float64()
	nt, err := readCount(r, "deviation trace")
	if err != nil {
		return res, nil, err
	}
	if nt > 0 {
		res.DeviationTrace = make([]float64, nt)
		for i := range res.DeviationTrace {
			res.DeviationTrace[i] = r.Float64()
		}
	}
	nw, err := readCount(r, "weight")
	if err != nil {
		return res, nil, err
	}
	weights := make([]float64, nw)
	for i := range weights {
		weights[i] = r.Float64()
	}
	if err := r.Err(); err != nil {
		return res, nil, fmt.Errorf("core: rake payload: %w", err)
	}
	return res, weights, nil
}

// --- panel: longitudinal members as IDs + two wave tables ---

func encodePanelPayload(members []population.PanelMember) ([]byte, error) {
	var buf bytes.Buffer
	w := table.NewWriter(&buf)
	w.String(payloadPanel)
	w.Uvarint(uint64(len(members)))
	wave1 := make([]survey.Response, len(members))
	wave2 := make([]survey.Response, len(members))
	for i, m := range members {
		if m.Wave1 == nil || m.Wave2 == nil {
			return nil, fmt.Errorf("core: panel member %d missing a wave", i)
		}
		w.String(m.PersonID)
		wave1[i] = *m.Wave1
		wave2[i] = *m.Wave2
	}
	for _, wave := range [][]survey.Response{wave1, wave2} {
		if err := encodeTableBlock(w, survey.ResponseCodec{}, table.NewSlice(wave, survey.ResponseCodec{}.HashRow)); err != nil {
			return nil, err
		}
		writeEmptyChoices(w, wave)
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePanelPayload(payload []byte) ([]population.PanelMember, error) {
	r := table.NewReader(bytes.NewReader(payload))
	if err := checkMagic(r, payloadPanel); err != nil {
		return nil, err
	}
	n, err := readCount(r, "panel member")
	if err != nil {
		return nil, err
	}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = r.String()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: panel payload: %w", err)
	}
	waves := make([][]*survey.Response, 2)
	for wi := range waves {
		tab, err := decodeTableBlock(r, survey.ResponseCodec{})
		if err != nil {
			return nil, err
		}
		rs, err := survey.MaterializeResponses(tab)
		if err != nil {
			return nil, err
		}
		if err := applyEmptyChoices(r, rs); err != nil {
			return nil, err
		}
		if len(rs) != n {
			return nil, fmt.Errorf("core: panel payload wave %d has %d responses, want %d", wi+1, len(rs), n)
		}
		waves[wi] = rs
	}
	members := make([]population.PanelMember, n)
	for i := range members {
		members[i] = population.PanelMember{PersonID: ids[i], Wave1: waves[0][i], Wave2: waves[1][i]}
	}
	return members, nil
}

// --- modlog-merge: per-year telemetry shares ---

func encodeModAggPayload(agg []modlog.YearShares) ([]byte, error) {
	var buf bytes.Buffer
	w := table.NewWriter(&buf)
	w.String(payloadModAgg)
	w.Uvarint(uint64(len(agg)))
	for _, ys := range agg {
		w.Varint(int64(ys.Year))
		w.Varint(int64(ys.Users))
		keys := make([]string, 0, len(ys.Shares))
		for k := range ys.Shares {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			w.String(k)
			w.Float64(ys.Shares[k])
		}
	}
	if err := w.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeModAggPayload(payload []byte) ([]modlog.YearShares, error) {
	r := table.NewReader(bytes.NewReader(payload))
	if err := checkMagic(r, payloadModAgg); err != nil {
		return nil, err
	}
	n, err := readCount(r, "year shares")
	if err != nil {
		return nil, err
	}
	agg := make([]modlog.YearShares, n)
	for i := range agg {
		agg[i].Year = int(r.Varint())
		agg[i].Users = int(r.Varint())
		nk, err := readCount(r, "module share")
		if err != nil {
			return nil, err
		}
		agg[i].Shares = make(map[string]float64, nk)
		for j := 0; j < nk; j++ {
			k := r.String()
			agg[i].Shares[k] = r.Float64()
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: modagg payload: %w", err)
	}
	return agg, nil
}

// --- simulations: job results, utilization samples, metrics ---

func encodeSimPayload(res *sched.Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("core: nil simulation result")
	}
	var buf bytes.Buffer
	w := table.NewWriter(&buf)
	w.String(payloadSim)
	cols := trace.JobCodec{}.NewColumns()
	for _, jr := range res.Results {
		cols.Append(jr.Job)
	}
	w.Uvarint(uint64(len(res.Results)))
	if err := cols.EncodeTo(w); err != nil {
		return nil, err
	}
	for _, jr := range res.Results {
		w.Varint(jr.Start)
		w.Varint(jr.Wait)
	}
	w.Uvarint(uint64(len(res.Samples)))
	for _, s := range res.Samples {
		w.Varint(s.Time)
		w.Float64(s.CPUUtil)
		w.Float64(s.GPUUtil)
		w.Varint(int64(s.Queued))
	}
	m := res.Metrics
	w.Varint(int64(m.Policy))
	w.Varint(int64(m.Jobs))
	w.Varint(m.Makespan)
	w.Float64(m.MeanWait)
	w.Float64(m.MedianWait)
	w.Float64(m.P95Wait)
	w.Varint(m.MaxWait)
	w.Float64(m.AvgCPUUtil)
	w.Float64(m.AvgGPUUtil)
	w.Varint(int64(m.BackfillStarts))
	w.Float64(m.BoundedSlowdown)
	w.Float64(m.CPUMeanWait)
	w.Float64(m.GPUMeanWait)
	w.Float64(m.UserFairness)
	if err := w.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeSimPayload(payload []byte) (*sched.Result, error) {
	r := table.NewReader(bytes.NewReader(payload))
	if err := checkMagic(r, payloadSim); err != nil {
		return nil, err
	}
	n, err := readCount(r, "job result")
	if err != nil {
		return nil, err
	}
	cols := trace.JobCodec{}.NewColumns()
	if err := cols.DecodeFrom(r); err != nil {
		return nil, fmt.Errorf("core: sim payload jobs: %w", err)
	}
	if cols.Len() != n {
		return nil, fmt.Errorf("core: sim payload has %d jobs, header says %d", cols.Len(), n)
	}
	res := &sched.Result{Results: make([]sched.JobResult, n)}
	for i := 0; i < n; i++ {
		res.Results[i] = sched.JobResult{Job: cols.Row(i), Start: r.Varint(), Wait: r.Varint()}
	}
	ns, err := readCount(r, "utilization sample")
	if err != nil {
		return nil, err
	}
	res.Samples = make([]sched.UtilSample, ns)
	for i := range res.Samples {
		res.Samples[i] = sched.UtilSample{
			Time:    r.Varint(),
			CPUUtil: r.Float64(),
			GPUUtil: r.Float64(),
			Queued:  int(r.Varint()),
		}
	}
	res.Metrics = sched.Metrics{
		Policy:          sched.Policy(r.Varint()),
		Jobs:            int(r.Varint()),
		Makespan:        r.Varint(),
		MeanWait:        r.Float64(),
		MedianWait:      r.Float64(),
		P95Wait:         r.Float64(),
		MaxWait:         r.Varint(),
		AvgCPUUtil:      r.Float64(),
		AvgGPUUtil:      r.Float64(),
		BackfillStarts:  int(r.Varint()),
		BoundedSlowdown: r.Float64(),
		CPUMeanWait:     r.Float64(),
		GPUMeanWait:     r.Float64(),
		UserFairness:    r.Float64(),
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: sim payload: %w", err)
	}
	return res, nil
}
