// Package growth fits technology-adoption curves to yearly share series
// — the "trends" half of practices-and-trends. The workhorse is a
// three-parameter logistic s(t) = L / (1 + exp(-k (t - t0))) fit by
// deterministic coarse-grid search plus coordinate-descent refinement
// (no randomness, no external solver), which classifies each series as
// rising, declining, or flat, and reports the saturation level L, the
// growth rate k, and the inflection year t0 — "when did Python's takeoff
// happen, and where does it plateau".
package growth

import (
	"errors"
	"fmt"
	"math"
)

// LogisticFit is a fitted adoption curve.
type LogisticFit struct {
	L    float64 // saturation level (asymptote), in (0, 1.5]
	K    float64 // growth rate per year; negative for decline
	T0   float64 // inflection year
	RMSE float64
	N    int
	// YearLo and YearHi record the observed window; classification is
	// based on the fitted change across it (a steep logistic centered
	// decades before the window is effectively flat within it).
	YearLo, YearHi float64
}

// Eval returns the fitted share at year t.
func (f LogisticFit) Eval(t float64) float64 {
	return f.L / (1 + math.Exp(-f.K*(t-f.T0)))
}

// WindowDelta returns the fitted share change over the observed window.
func (f LogisticFit) WindowDelta() float64 {
	return f.Eval(f.YearHi) - f.Eval(f.YearLo)
}

// Classify labels the fit by its fitted change over the observed window.
func (f LogisticFit) Classify() string {
	d := f.WindowDelta()
	switch {
	case math.Abs(d) < 0.02:
		return "flat"
	case d > 0:
		return "rising"
	default:
		return "declining"
	}
}

// FitLogistic fits the curve to (years, shares). Shares must be in
// [0, 1]; at least 4 points are required. The optimizer is a coarse
// grid over (L, k, t0) followed by cyclic coordinate refinement with
// shrinking steps — deterministic and derivative-free.
func FitLogistic(years, shares []float64) (LogisticFit, error) {
	if len(years) != len(shares) {
		return LogisticFit{}, fmt.Errorf("growth: %d years vs %d shares", len(years), len(shares))
	}
	n := len(years)
	if n < 4 {
		return LogisticFit{}, fmt.Errorf("growth: need >= 4 points, got %d", n)
	}
	minY, maxY := years[0], years[0]
	maxS := 0.0
	for i := range years {
		if shares[i] < 0 || shares[i] > 1 || math.IsNaN(shares[i]) {
			return LogisticFit{}, fmt.Errorf("growth: share %g at index %d outside [0,1]", shares[i], i)
		}
		if years[i] < minY {
			minY = years[i]
		}
		if years[i] > maxY {
			maxY = years[i]
		}
		if shares[i] > maxS {
			maxS = shares[i]
		}
	}
	if maxY == minY {
		return LogisticFit{}, errors.New("growth: all observations in one year")
	}

	rmse := func(L, k, t0 float64) float64 {
		ss := 0.0
		for i := range years {
			p := L / (1 + math.Exp(-k*(years[i]-t0)))
			d := p - shares[i]
			ss += d * d
		}
		return math.Sqrt(ss / float64(n))
	}

	// Coarse grid. L spans observed max up to full saturation; k spans
	// both directions; t0 spans the window with margin.
	span := maxY - minY
	bestL, bestK, bestT0 := math.Max(maxS, 0.05), 0.0, (minY+maxY)/2
	best := math.Inf(1)
	for _, L := range gridRange(math.Max(maxS, 0.02), 1.2, 12) {
		for _, k := range gridRange(-2, 2, 21) {
			for _, t0 := range gridRange(minY-span/2, maxY+span/2, 15) {
				if e := rmse(L, k, t0); e < best {
					best, bestL, bestK, bestT0 = e, L, k, t0
				}
			}
		}
	}
	// Coordinate refinement with shrinking steps.
	stepL, stepK, stepT := 0.1, 0.2, span/8
	for iter := 0; iter < 200; iter++ {
		improved := false
		for _, cand := range []struct{ l, k, t float64 }{
			{bestL + stepL, bestK, bestT0}, {bestL - stepL, bestK, bestT0},
			{bestL, bestK + stepK, bestT0}, {bestL, bestK - stepK, bestT0},
			{bestL, bestK, bestT0 + stepT}, {bestL, bestK, bestT0 - stepT},
		} {
			if cand.l < 0.01 || cand.l > 1.5 {
				continue
			}
			if e := rmse(cand.l, cand.k, cand.t); e < best-1e-12 {
				best, bestL, bestK, bestT0 = e, cand.l, cand.k, cand.t
				improved = true
			}
		}
		if !improved {
			stepL /= 2
			stepK /= 2
			stepT /= 2
			if stepL < 1e-5 && stepK < 1e-5 && stepT < 1e-4 {
				break
			}
		}
	}
	return LogisticFit{L: bestL, K: bestK, T0: bestT0, RMSE: best, N: n, YearLo: minY, YearHi: maxY}, nil
}

func gridRange(lo, hi float64, steps int) []float64 {
	out := make([]float64, steps)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(steps-1)
	}
	return out
}

// Trend summarizes one series: the logistic fit plus the plain linear
// slope (pp/year) as a robustness check, and the projected share at a
// future year.
type Trend struct {
	Name        string
	Fit         LogisticFit
	LinearSlope float64 // share points per year from OLS
	Class       string
	Projected   float64 // Eval at the projection year
	ProjectYear float64
}

// AnalyzeSeries fits and classifies one named adoption series,
// projecting to projectYear. The linear slope is computed directly
// (closed form) rather than through the stats package to keep growth
// dependency-free.
func AnalyzeSeries(name string, years, shares []float64, projectYear float64) (Trend, error) {
	fit, err := FitLogistic(years, shares)
	if err != nil {
		return Trend{}, fmt.Errorf("growth: series %q: %w", name, err)
	}
	// OLS slope.
	n := float64(len(years))
	var sx, sy, sxx, sxy float64
	for i := range years {
		sx += years[i]
		sy += shares[i]
		sxx += years[i] * years[i]
		sxy += years[i] * shares[i]
	}
	den := n*sxx - sx*sx
	slope := 0.0
	if den != 0 {
		slope = (n*sxy - sx*sy) / den
	}
	cls := fit.Classify()
	// The logistic can misclassify a clearly sloped series as "flat"
	// when saturation is distant; let the linear slope arbitrate.
	if cls == "flat" && math.Abs(slope) > 0.005 {
		if slope > 0 {
			cls = "rising"
		} else {
			cls = "declining"
		}
	}
	proj := fit.Eval(projectYear)
	if proj < 0 {
		proj = 0
	}
	if proj > 1 {
		proj = 1
	}
	return Trend{
		Name: name, Fit: fit, LinearSlope: slope, Class: cls,
		Projected: proj, ProjectYear: projectYear,
	}, nil
}
