package growth

import (
	"errors"
	"fmt"
	"math"
)

// Bass diffusion model: the other canonical technology-adoption curve.
// Cumulative adoption F(t) = M * (1 - e^{-(p+q)τ}) / (1 + (q/p) e^{-(p+q)τ})
// with τ = t - t0, p the coefficient of innovation (external influence),
// q the coefficient of imitation (word of mouth), and M the market
// potential (saturation share). Comparing Bass and logistic RMSE per
// series is the model-selection ablation (T14): logistic is symmetric
// around its inflection, Bass can rise faster than it saturates.

// BassFit is a fitted Bass diffusion curve.
type BassFit struct {
	M    float64 // market potential (saturation share)
	P    float64 // innovation coefficient
	Q    float64 // imitation coefficient
	T0   float64 // adoption start year
	RMSE float64
	N    int
}

// Eval returns the fitted cumulative adoption share at year t. Before
// T0 adoption is 0.
func (f BassFit) Eval(t float64) float64 {
	tau := t - f.T0
	if tau <= 0 {
		return 0
	}
	e := math.Exp(-(f.P + f.Q) * tau)
	return f.M * (1 - e) / (1 + (f.Q/f.P)*e)
}

// FitBass fits the Bass model by deterministic grid search plus
// coordinate refinement, mirroring FitLogistic. Shares must be in
// [0, 1]; at least 4 points are required. Declining series cannot be
// represented by Bass (it is cumulative); callers should fit only
// rising or flat series, and the fit will return the best flat-ish
// approximation otherwise.
func FitBass(years, shares []float64) (BassFit, error) {
	if len(years) != len(shares) {
		return BassFit{}, fmt.Errorf("growth: %d years vs %d shares", len(years), len(shares))
	}
	n := len(years)
	if n < 4 {
		return BassFit{}, fmt.Errorf("growth: need >= 4 points, got %d", n)
	}
	minY, maxY := years[0], years[0]
	maxS := 0.0
	for i := range years {
		if shares[i] < 0 || shares[i] > 1 || math.IsNaN(shares[i]) {
			return BassFit{}, fmt.Errorf("growth: share %g at index %d outside [0,1]", shares[i], i)
		}
		if years[i] < minY {
			minY = years[i]
		}
		if years[i] > maxY {
			maxY = years[i]
		}
		if shares[i] > maxS {
			maxS = shares[i]
		}
	}
	if maxY == minY {
		return BassFit{}, errors.New("growth: all observations in one year")
	}
	rmse := func(f BassFit) float64 {
		ss := 0.0
		for i := range years {
			d := f.Eval(years[i]) - shares[i]
			ss += d * d
		}
		return math.Sqrt(ss / float64(n))
	}
	span := maxY - minY
	best := BassFit{M: math.Max(maxS, 0.05), P: 0.03, Q: 0.4, T0: minY - 1}
	bestE := rmse(best)
	for _, m := range gridRange(math.Max(maxS, 0.02), 1.2, 10) {
		for _, p := range []float64{0.001, 0.005, 0.01, 0.03, 0.08, 0.2} {
			for _, q := range []float64{0.05, 0.15, 0.3, 0.5, 0.8, 1.2} {
				for _, t0 := range gridRange(minY-span, maxY, 12) {
					cand := BassFit{M: m, P: p, Q: q, T0: t0}
					if e := rmse(cand); e < bestE {
						best, bestE = cand, e
					}
				}
			}
		}
	}
	stepM, stepP, stepQ, stepT := 0.05, 0.01, 0.1, span/8
	for iter := 0; iter < 200; iter++ {
		improved := false
		for _, cand := range []BassFit{
			{M: best.M + stepM, P: best.P, Q: best.Q, T0: best.T0},
			{M: best.M - stepM, P: best.P, Q: best.Q, T0: best.T0},
			{M: best.M, P: best.P + stepP, Q: best.Q, T0: best.T0},
			{M: best.M, P: best.P - stepP, Q: best.Q, T0: best.T0},
			{M: best.M, P: best.P, Q: best.Q + stepQ, T0: best.T0},
			{M: best.M, P: best.P, Q: best.Q - stepQ, T0: best.T0},
			{M: best.M, P: best.P, Q: best.Q, T0: best.T0 + stepT},
			{M: best.M, P: best.P, Q: best.Q, T0: best.T0 - stepT},
		} {
			if cand.M < 0.01 || cand.M > 1.5 || cand.P <= 1e-5 || cand.Q < 0 {
				continue
			}
			if e := rmse(cand); e < bestE-1e-12 {
				best, bestE = cand, e
				improved = true
			}
		}
		if !improved {
			stepM /= 2
			stepP /= 2
			stepQ /= 2
			stepT /= 2
			if stepM < 1e-5 && stepT < 1e-4 {
				break
			}
		}
	}
	best.RMSE = bestE
	best.N = n
	return best, nil
}

// ModelComparison reports which adoption model explains one series
// better.
type ModelComparison struct {
	Name         string
	LogisticRMSE float64
	BassRMSE     float64
	Better       string // "logistic", "bass", or "tie"
}

// CompareModels fits both models to a rising series and reports RMSEs.
// A relative difference under 5% is called a tie.
func CompareModels(name string, years, shares []float64) (ModelComparison, error) {
	lf, err := FitLogistic(years, shares)
	if err != nil {
		return ModelComparison{}, err
	}
	bf, err := FitBass(years, shares)
	if err != nil {
		return ModelComparison{}, err
	}
	mc := ModelComparison{Name: name, LogisticRMSE: lf.RMSE, BassRMSE: bf.RMSE}
	ref := math.Max(lf.RMSE, bf.RMSE)
	switch {
	case ref == 0 || math.Abs(lf.RMSE-bf.RMSE) < 0.05*ref:
		mc.Better = "tie"
	case lf.RMSE < bf.RMSE:
		mc.Better = "logistic"
	default:
		mc.Better = "bass"
	}
	return mc, nil
}
