package growth

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/modlog"
	"repro/internal/rng"
)

func logistic(L, k, t0, t float64) float64 {
	return L / (1 + math.Exp(-k*(t-t0)))
}

func TestFitRecoversKnownCurve(t *testing.T) {
	trueL, trueK, trueT0 := 0.85, 0.45, 2017.0
	years := []float64{2011, 2013, 2015, 2017, 2019, 2021, 2023, 2024}
	shares := make([]float64, len(years))
	for i, y := range years {
		shares[i] = logistic(trueL, trueK, trueT0, y)
	}
	fit, err := FitLogistic(years, shares)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSE > 0.01 {
		t.Fatalf("rmse %g: %+v", fit.RMSE, fit)
	}
	if math.Abs(fit.L-trueL) > 0.05 || math.Abs(fit.K-trueK) > 0.1 || math.Abs(fit.T0-trueT0) > 1 {
		t.Fatalf("fit %+v vs true (%.2f %.2f %.0f)", fit, trueL, trueK, trueT0)
	}
	if fit.Classify() != "rising" {
		t.Fatalf("class %q", fit.Classify())
	}
}

func TestFitDecliningCurve(t *testing.T) {
	years := []float64{2011, 2014, 2017, 2020, 2024}
	shares := make([]float64, len(years))
	for i, y := range years {
		shares[i] = logistic(0.6, -0.4, 2016, y)
	}
	fit, err := FitLogistic(years, shares)
	if err != nil {
		t.Fatal(err)
	}
	if fit.K >= 0 {
		t.Fatalf("declining series fit with k=%g", fit.K)
	}
	if fit.Classify() != "declining" {
		t.Fatalf("class %q", fit.Classify())
	}
}

func TestFitFlatSeries(t *testing.T) {
	years := []float64{2011, 2014, 2017, 2020, 2024}
	shares := []float64{0.31, 0.30, 0.31, 0.30, 0.31}
	fit, err := FitLogistic(years, shares)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSE > 0.02 {
		t.Fatalf("flat series rmse %g", fit.RMSE)
	}
	tr, err := AnalyzeSeries("r", years, shares, 2030)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Class != "flat" {
		t.Fatalf("class %q (fit %+v, slope %g)", tr.Class, tr.Fit, tr.LinearSlope)
	}
}

func TestFitNoisyRecovery(t *testing.T) {
	r := rng.New(5)
	years := make([]float64, 14)
	shares := make([]float64, 14)
	for i := range years {
		years[i] = float64(2011 + i)
		s := logistic(0.8, 0.5, 2018, years[i]) + r.NormMeanStd(0, 0.02)
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		shares[i] = s
	}
	fit, err := FitLogistic(years, shares)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSE > 0.05 {
		t.Fatalf("noisy rmse %g", fit.RMSE)
	}
	if math.Abs(fit.T0-2018) > 2 {
		t.Fatalf("inflection %g", fit.T0)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitLogistic([]float64{1, 2, 3}, []float64{0.1, 0.2, 0.3}); err == nil {
		t.Fatal("3 points accepted")
	}
	if _, err := FitLogistic([]float64{1, 2, 3, 4}, []float64{0.1, 0.2, 0.3}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLogistic([]float64{1, 2, 3, 4}, []float64{0.1, 0.2, 1.3, 0.4}); err == nil {
		t.Fatal("share > 1 accepted")
	}
	if _, err := FitLogistic([]float64{5, 5, 5, 5}, []float64{0.1, 0.2, 0.3, 0.4}); err == nil {
		t.Fatal("single-year data accepted")
	}
}

func TestAnalyzeSeriesProjectionClamped(t *testing.T) {
	years := []float64{2011, 2015, 2019, 2024}
	shares := []float64{0.05, 0.2, 0.55, 0.8}
	tr, err := AnalyzeSeries("python", years, shares, 2035)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Class != "rising" {
		t.Fatalf("class %q", tr.Class)
	}
	if tr.Projected < shares[3] || tr.Projected > 1 {
		t.Fatalf("projected %g", tr.Projected)
	}
	if tr.LinearSlope <= 0 {
		t.Fatalf("slope %g", tr.LinearSlope)
	}
}

// Integration: fit the synthetic module-load telemetry and verify the
// trend classifications match the era model.
func TestFitsTelemetryTrends(t *testing.T) {
	r := rng.New(77)
	var events []modlog.Event
	years := []int{2011, 2014, 2017, 2020, 2024}
	for _, y := range years {
		ev, err := modlog.CampusModulesModel(y).Generate(r.SplitNamed(string(rune('a' + y - 2011))))
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev...)
	}
	agg := modlog.AggregateByYear(events)
	fy := make([]float64, len(agg))
	for i, ys := range agg {
		fy[i] = float64(ys.Year)
	}
	expect := map[string]string{
		"python":  "rising",
		"cuda":    "rising",
		"fortran": "declining",
		"matlab":  "declining",
	}
	for mod, wantClass := range expect {
		_, shares := modlog.Series(agg, mod)
		tr, err := AnalyzeSeries(mod, fy, shares, 2030)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Class != wantClass {
			t.Fatalf("%s classified %q (want %q); fit %+v slope %g shares %v",
				mod, tr.Class, wantClass, tr.Fit, tr.LinearSlope, shares)
		}
	}
}

// Property: fitting never panics and RMSE is finite and non-negative on
// arbitrary in-range series.
func TestQuickFitStable(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		years := make([]float64, len(raw))
		shares := make([]float64, len(raw))
		for i, v := range raw {
			years[i] = float64(2011 + i)
			shares[i] = float64(v) / 255
		}
		fit, err := FitLogistic(years, shares)
		if err != nil {
			return false
		}
		return fit.RMSE >= 0 && !math.IsNaN(fit.RMSE) && !math.IsInf(fit.RMSE, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
