package growth

import (
	"math"
	"testing"
)

func bassEval(m, p, q, t0, t float64) float64 {
	tau := t - t0
	if tau <= 0 {
		return 0
	}
	e := math.Exp(-(p + q) * tau)
	return m * (1 - e) / (1 + (q/p)*e)
}

func TestFitBassRecoversKnownCurve(t *testing.T) {
	trueM, trueP, trueQ, trueT0 := 0.7, 0.02, 0.5, 2012.0
	years := []float64{2011, 2013, 2015, 2017, 2019, 2021, 2023, 2024}
	shares := make([]float64, len(years))
	for i, y := range years {
		shares[i] = bassEval(trueM, trueP, trueQ, trueT0, y)
	}
	fit, err := FitBass(years, shares)
	if err != nil {
		t.Fatal(err)
	}
	if fit.RMSE > 0.01 {
		t.Fatalf("rmse %g: %+v", fit.RMSE, fit)
	}
	if math.Abs(fit.M-trueM) > 0.1 {
		t.Fatalf("M %g vs %g", fit.M, trueM)
	}
	// Eval is 0 before the adoption start.
	if fit.Eval(fit.T0-5) != 0 {
		t.Fatal("adoption before T0")
	}
	// Monotone non-decreasing after T0.
	prev := 0.0
	for y := fit.T0; y < fit.T0+40; y++ {
		v := fit.Eval(y)
		if v < prev-1e-12 {
			t.Fatalf("bass curve decreased at %g", y)
		}
		prev = v
	}
}

func TestFitBassErrors(t *testing.T) {
	if _, err := FitBass([]float64{1, 2, 3}, []float64{0.1, 0.2, 0.3}); err == nil {
		t.Fatal("3 points accepted")
	}
	if _, err := FitBass([]float64{1, 2, 3, 4}, []float64{0.1, 0.2, 0.3}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitBass([]float64{1, 2, 3, 4}, []float64{0.1, 0.2, 1.5, 0.3}); err == nil {
		t.Fatal("share > 1 accepted")
	}
	if _, err := FitBass([]float64{5, 5, 5, 5}, []float64{0.1, 0.2, 0.3, 0.4}); err == nil {
		t.Fatal("degenerate years accepted")
	}
}

func TestCompareModelsPrefersGeneratingModel(t *testing.T) {
	years := []float64{2011, 2012, 2013, 2014, 2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022, 2023, 2024}
	// Bass-generated data with strong imitation: asymmetric takeoff that
	// a symmetric logistic fits worse.
	shares := make([]float64, len(years))
	for i, y := range years {
		shares[i] = bassEval(0.8, 0.002, 0.9, 2011, y)
	}
	mc, err := CompareModels("bass-data", years, shares)
	if err != nil {
		t.Fatal(err)
	}
	// Both models can track this curve; the requirement is that Bass
	// fits its own data near-perfectly and is not catastrophically
	// behind logistic.
	if mc.BassRMSE > 0.02 {
		t.Fatalf("bass rmse %g on its own data", mc.BassRMSE)
	}
	if mc.BassRMSE > 5*mc.LogisticRMSE+0.01 {
		t.Fatalf("bass collapsed on its own data: %+v", mc)
	}
	// Logistic-generated data: logistic must not lose badly.
	for i, y := range years {
		shares[i] = logistic(0.8, 0.6, 2017, y)
	}
	mc, err = CompareModels("logistic-data", years, shares)
	if err != nil {
		t.Fatal(err)
	}
	if mc.LogisticRMSE > 0.02 {
		t.Fatalf("logistic rmse %g on its own data", mc.LogisticRMSE)
	}
	if mc.Better == "bass" && mc.BassRMSE < mc.LogisticRMSE/2 {
		t.Fatalf("implausible bass win on logistic data: %+v", mc)
	}
}
