// Package analysis is rcpt's self-contained static-analysis framework:
// a module-aware package loader (load.go) plus a small analyzer API that
// encodes the pipeline's reproducibility contract as machine-checkable
// rules. It is intentionally std-lib only (go/ast, go/parser, go/types,
// go/token) so the repo keeps its zero-dependency go.mod.
//
// An Analyzer inspects one type-checked package at a time and reports
// Findings. The driver (cmd/rcptlint) loads packages, runs every
// registered analyzer, filters findings through //rcpt:allow suppression
// comments, and renders the survivors as "file:line: [analyzer] message"
// lines or JSON.
//
// Suppression: a comment of the form
//
//	//rcpt:allow <analyzer>[,<analyzer>...] [rationale]
//
// on the flagged line, or alone on the line directly above it, silences
// those analyzers for that line. The rationale text is free-form and
// ignored by the parser.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects the package held by the
// Pass and reports findings via Pass.Reportf; it returns an error only
// for internal failures (a clean package is a nil error and no reports).
type Analyzer struct {
	Name string // short lower-case identifier, used in output and //rcpt:allow
	Doc  string // one-line description of the invariant the analyzer encodes
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported rule violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the canonical "file:line: [analyzer]
// message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Run executes every analyzer over every package, applies //rcpt:allow
// suppression, and returns the surviving findings sorted by file, line,
// column, and analyzer. Duplicate (analyzer, position) reports are
// collapsed to the first.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var all []Finding
	for _, pkg := range pkgs {
		allow := allowMap(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(f Finding) {
				if !allow.suppressed(f) {
					all = append(all, f)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// Collapse exact duplicates (same analyzer, same position) that can
	// arise when two rules of one analyzer match the same expression.
	out := all[:0]
	for i, f := range all {
		if i > 0 {
			p := out[len(out)-1]
			if p.Analyzer == f.Analyzer && p.Pos.Filename == f.Pos.Filename &&
				p.Pos.Line == f.Pos.Line && p.Pos.Column == f.Pos.Column {
				continue
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// allowances maps file -> line -> set of analyzer names allowed there.
type allowances map[string]map[int]map[string]bool

// allowMap scans a package's comments for //rcpt:allow directives.
func allowMap(pkg *Package) allowances {
	al := allowances{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := al[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					al[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = map[string]bool{}
					byLine[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return al
}

// suppressed reports whether f is covered by an allow directive on its
// own line or the line directly above.
func (al allowances) suppressed(f Finding) bool {
	byLine := al[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if byLine[line][f.Analyzer] {
			return true
		}
	}
	return false
}

// parseAllow extracts analyzer names from an //rcpt:allow comment.
// Accepted forms: "//rcpt:allow errdrop", "// rcpt:allow maporder,errdrop
// stderr diagnostics". Name parsing stops at the first token that is not
// a plain lower-case identifier, so a trailing rationale is ignored.
func parseAllow(comment string) ([]string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "rcpt:allow") {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "rcpt:allow"))
	var names []string
	for _, field := range strings.Fields(rest) {
		stop := false
		for _, name := range strings.Split(field, ",") {
			if name == "" {
				continue
			}
			if !isAnalyzerName(name) {
				stop = true
				break
			}
			names = append(names, name)
		}
		if stop {
			break
		}
	}
	return names, len(names) > 0
}

func isAnalyzerName(s string) bool {
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
			return false
		}
	}
	return len(s) > 0
}

// --- shared type helpers used by the analyzers ---

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isRNGStream reports whether t is *rng.RNG (a deterministic stream from
// internal/rng).
func isRNGStream(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && obj.Pkg().Name() == "rng"
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj.Pos() >= lo && obj.Pos() <= hi
}

// useObj resolves an identifier to the variable it uses, or nil.
func useObj(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return v
}
