// Package analysis is rcpt's self-contained static-analysis framework:
// a module-aware package loader (load.go) plus a small analyzer API that
// encodes the pipeline's reproducibility contract as machine-checkable
// rules. It is intentionally std-lib only (go/ast, go/parser, go/types,
// go/token) so the repo keeps its zero-dependency go.mod.
//
// An Analyzer inspects one type-checked package at a time and reports
// Findings. The driver (cmd/rcptlint) loads packages, runs every
// registered analyzer, filters findings through //rcpt:allow suppression
// comments, and renders the survivors as "file:line: [analyzer] message"
// lines or JSON.
//
// Suppression: a comment of the form
//
//	//rcpt:allow <analyzer>[,<analyzer>...] [rationale]
//
// on the flagged line, or alone on the line directly above it, silences
// those analyzers for that line. The rationale text is free-form and
// ignored by the parser.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis/flow"
)

// Analyzer is one static check. Run inspects the package held by the
// Pass and reports findings via Pass.Reportf; it returns an error only
// for internal failures (a clean package is a nil error and no reports).
type Analyzer struct {
	Name string // short lower-case identifier, used in output and //rcpt:allow
	Doc  string // one-line description of the invariant the analyzer encodes
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Flow is the interprocedural dataflow engine built once over the
	// whole loaded package set and shared by every analyzer in the
	// suite. Call-graph-aware analyzers consult it; purely syntactic
	// ones ignore it.
	Flow *flow.Engine

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported rule violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the canonical "file:line: [analyzer]
// message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Timing is one analyzer's cumulative wall time across every package
// it ran over; the pseudo-entry "flowengine" is the shared engine's
// build-plus-summarize time (paid once, not per analyzer).
type Timing struct {
	Analyzer string
	Seconds  float64
}

// Suite is the full result of one rcptlint run: surviving findings,
// stale suppression directives (for -strict), and per-analyzer wall
// times (for -timing / -budget).
type Suite struct {
	Findings []Finding
	// Stale holds one synthetic Finding (Analyzer "staleallow") per
	// //rcpt:allow directive that names an analyzer which ran over the
	// directive's package yet reported nothing the directive suppressed.
	// A stale allowance is a lie in the source: it claims a violation
	// that no longer exists.
	Stale   []Finding
	Timings []Timing
}

// Run executes every analyzer over every package, applies //rcpt:allow
// suppression, and returns the surviving findings sorted by file, line,
// column, and analyzer. Duplicate (analyzer, position) reports are
// collapsed to the first.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	suite, err := RunSuite(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return suite.Findings, nil
}

// RunSuite is Run plus suite metadata: it builds the shared dataflow
// engine once over the whole package set, hands it to every Pass,
// tracks which //rcpt:allow directives actually suppressed something,
// and records per-analyzer wall times.
//
// deps are extra packages folded into the engine (typically
// Loader.Loaded(): module-internal dependencies of the requested
// patterns) so call-graph summaries exist for helpers the analyzed
// code calls. Analyzers run — and findings are reported — only over
// pkgs; duplicates between pkgs and deps are ignored.
func RunSuite(pkgs []*Package, analyzers []*Analyzer, deps ...*Package) (*Suite, error) {
	var all []Finding
	durations := map[string]time.Duration{}

	var engine *flow.Engine
	if len(pkgs) > 0 {
		start := time.Now()
		units := make([]flow.PackageUnit, 0, len(pkgs)+len(deps))
		seen := map[string]bool{}
		for _, pkg := range append(append([]*Package{}, pkgs...), deps...) {
			if seen[pkg.PkgPath] {
				continue
			}
			seen[pkg.PkgPath] = true
			units = append(units, flow.PackageUnit{
				Path:  pkg.PkgPath,
				Files: pkg.Files,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
			})
		}
		engine = flow.Build(pkgs[0].Fset, units)
		durations["flowengine"] = time.Since(start)
	}

	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}

	var allows []allowances
	for _, pkg := range pkgs {
		allow := allowMap(pkg)
		allows = append(allows, allow)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Flow:     engine,
			}
			pass.report = func(f Finding) {
				if !allow.suppressed(f) {
					all = append(all, f)
				}
			}
			start := time.Now()
			err := a.Run(pass)
			durations[a.Name] += time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}

	suite := &Suite{Findings: sortFindings(all)}
	for _, allow := range allows {
		suite.Stale = append(suite.Stale, allow.stale(names)...)
	}
	suite.Stale = sortFindings(suite.Stale)
	for _, a := range analyzers {
		suite.Timings = append(suite.Timings, Timing{Analyzer: a.Name, Seconds: durations[a.Name].Seconds()})
	}
	suite.Timings = append(suite.Timings, Timing{Analyzer: "flowengine", Seconds: durations["flowengine"].Seconds()})
	return suite, nil
}

// sortFindings orders findings by file, line, column, analyzer and
// collapses exact duplicates.
func sortFindings(all []Finding) []Finding {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// Collapse exact duplicates (same analyzer, same position) that can
	// arise when two rules of one analyzer match the same expression.
	out := all[:0]
	for i, f := range all {
		if i > 0 {
			p := out[len(out)-1]
			if p.Analyzer == f.Analyzer && p.Pos.Filename == f.Pos.Filename &&
				p.Pos.Line == f.Pos.Line && p.Pos.Column == f.Pos.Column {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// allowSite is one //rcpt:allow directive: the analyzers it names, which
// of them it actually suppressed during the run, and where it sits.
type allowSite struct {
	names map[string]bool
	hits  map[string]bool
	pos   token.Position
}

// allowances maps file -> line -> the allow directive on that line.
type allowances map[string]map[int]*allowSite

// allowMap scans a package's comments for //rcpt:allow directives.
func allowMap(pkg *Package) allowances {
	al := allowances{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := al[pos.Filename]
				if byLine == nil {
					byLine = map[int]*allowSite{}
					al[pos.Filename] = byLine
				}
				site := byLine[pos.Line]
				if site == nil {
					site = &allowSite{names: map[string]bool{}, hits: map[string]bool{}, pos: pos}
					byLine[pos.Line] = site
				}
				for _, n := range names {
					site.names[n] = true
				}
			}
		}
	}
	return al
}

// suppressed reports whether f is covered by an allow directive on its
// own line or the line directly above, marking the directive as used.
func (al allowances) suppressed(f Finding) bool {
	byLine := al[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if site := byLine[line]; site != nil && site.names[f.Analyzer] {
			site.hits[f.Analyzer] = true
			return true
		}
	}
	return false
}

// stale returns one synthetic finding per directive name that either
// refers to an analyzer outside the running set (typo) or suppressed
// nothing during the run. Iteration is over sorted keys so output
// order never depends on map iteration.
func (al allowances) stale(running map[string]bool) []Finding {
	var out []Finding
	files := make([]string, 0, len(al))
	for file := range al {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		byLine := al[file]
		lines := make([]int, 0, len(byLine))
		for line := range byLine {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			site := byLine[line]
			names := make([]string, 0, len(site.names))
			for name := range site.names {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if site.hits[name] {
					continue
				}
				msg := fmt.Sprintf("stale //rcpt:allow %s: the analyzer reported nothing here; delete the directive", name)
				if !running[name] {
					msg = fmt.Sprintf("unknown analyzer %q in //rcpt:allow; delete or fix the directive", name)
				}
				out = append(out, Finding{Analyzer: "staleallow", Pos: site.pos, Message: msg})
			}
		}
	}
	return out
}

// parseAllow extracts analyzer names from an //rcpt:allow comment.
// Accepted forms: "//rcpt:allow errdrop", "// rcpt:allow maporder,errdrop
// stderr diagnostics". Name parsing stops at the first token that is not
// a plain lower-case identifier, so a trailing rationale is ignored.
func parseAllow(comment string) ([]string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "rcpt:allow") {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "rcpt:allow"))
	var names []string
	for _, field := range strings.Fields(rest) {
		stop := false
		for _, name := range strings.Split(field, ",") {
			if name == "" {
				continue
			}
			if !isAnalyzerName(name) {
				stop = true
				break
			}
			names = append(names, name)
		}
		if stop {
			break
		}
	}
	return names, len(names) > 0
}

func isAnalyzerName(s string) bool {
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
			return false
		}
	}
	return len(s) > 0
}

// --- shared type helpers used by the analyzers ---

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isRNGStream reports whether t is *rng.RNG (a deterministic stream from
// internal/rng).
func isRNGStream(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && obj.Pkg().Name() == "rng"
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj.Pos() >= lo && obj.Pos() <= hi
}

// useObj resolves an identifier to the variable it uses, or nil.
func useObj(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return v
}
