package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFold flags float reductions whose accumulation order is decided
// by goroutine completion rather than by data: accumulating into an
// outer float while ranging over a channel, and compound float updates
// (or float-slice appends) to captured variables inside concurrently
// executed closures — the "shared accumulator guarded only by a mutex"
// pattern. Float addition is not associative, so these fold to different
// bits run-to-run even when every partial value is identical. The
// deterministic alternative is parallel.Fold over index-ordered chunk
// partials.
//
// Whether a closure argument actually runs concurrently is decided by
// the flow engine's dispatch summaries (the callee's parameter is
// handed to a `go` statement, stored, or sent down a channel —
// transitively), not by method-name pattern matching, so closures
// handed to sequential helpers (sort.Slice, table.FoldSeq, a local
// forEach) are not flagged.
var FloatFold = &Analyzer{
	Name: "floatfold",
	Doc:  "float reductions must fold partials in a fixed order, not goroutine completion order",
	Run:  runFloatFold,
}

func runFloatFold(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Chan); ok {
					checkOrderSensitiveBody(pass, n.Body, n.Pos(), n.End(),
						"while ranging over a channel: receive order is completion order")
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkOrderSensitiveBody(pass, lit.Body, lit.Pos(), lit.End(),
						"inside a goroutine: update order is completion order")
				}
			case *ast.CallExpr:
				if pass.Flow == nil {
					return true
				}
				for ai, arg := range n.Args {
					lit, ok := ast.Unparen(arg).(*ast.FuncLit)
					if !ok {
						continue
					}
					if pass.Flow.SpawnsArg(pass.Info, n, ai) {
						checkOrderSensitiveBody(pass, lit.Body, lit.Pos(), lit.End(),
							"inside a concurrently executed closure: update order is completion order")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkOrderSensitiveBody reports float accumulation into, and
// float-slice appends to, variables declared outside [lo, hi].
func checkOrderSensitiveBody(pass *Pass, body *ast.BlockStmt, lo, hi token.Pos, context string) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Don't descend into nested function literals here; if they are
		// themselves spawned they get their own visit from runFloatFold.
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != lo {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && pass.Flow != nil {
			// Accumulation hidden behind a helper: passing &outer to a
			// callee whose summary marks that parameter as a float
			// accumulator (*p += x somewhere inside, transitively).
			for ai, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				v := outerPlainVar(pass, u.X, lo, hi)
				if v == nil || !isFloat(v.Type()) {
					continue
				}
				if pass.Flow.FloatAccumArg(pass.Info, call, ai) {
					pass.Reportf(arg.Pos(),
						"float accumulation into shared %q through a helper %s; fold index-ordered partials instead", v.Name(), context)
				}
			}
			return true
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) != 1 {
				return true
			}
			if v := outerPlainVar(pass, as.Lhs[0], lo, hi); v != nil && isFloat(v.Type()) {
				pass.Reportf(as.Pos(),
					"float accumulation into shared %q %s; fold index-ordered partials instead", v.Name(), context)
			}
		case token.ASSIGN:
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				v := outerPlainVar(pass, lhs, lo, hi)
				if v == nil {
					continue
				}
				if isSelfAppend(pass, as.Rhs[i], v) && floatElemSlice(v.Type()) {
					pass.Reportf(as.Pos(),
						"append of float values to shared %q %s; collect per-worker partials and merge in index order", v.Name(), context)
				} else if isFloat(v.Type()) && isSelfArithmetic(pass, as.Rhs[i], v) {
					pass.Reportf(as.Pos(),
						"float accumulation into shared %q %s; fold index-ordered partials instead", v.Name(), context)
				}
			}
		}
		return true
	})
}

// outerPlainVar resolves lhs to a variable declared outside [lo, hi].
func outerPlainVar(pass *Pass, lhs ast.Expr, lo, hi token.Pos) *types.Var {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	v := useObj(pass.Info, id)
	if v == nil || declaredWithin(v, lo, hi) {
		return nil
	}
	return v
}

// floatElemSlice reports whether t is a slice of floats.
func floatElemSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFloat(s.Elem())
}
