package analysis_test

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/analysis"
)

// TestJSONGolden pins the rcptlint -json output shape byte-for-byte so
// downstream tooling (CI annotators, editors) can depend on it. The
// fixture has one errdrop and one maporder violation; file names are
// rewritten relative to the module root so the golden file is stable
// across checkouts.
func TestJSONGolden(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("testdata/src/golden")
	if err != nil {
		t.Fatalf("Load golden fixture: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("golden fixture does not type-check: %v", terr)
		}
	}
	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatalf("golden fixture produced no findings")
	}
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, findings, loader.ModuleRoot); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	const goldenPath = "testdata/rcptlint.golden.json"
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s: %v (regenerate by writing the got output below)", goldenPath, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from %s.\ngot:\n%s\nwant:\n%s", goldenPath, buf.Bytes(), want)
	}
}

// TestJSONEmpty checks the clean-tree shape: count 0 and an empty (not
// null) findings array.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, nil, ""); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := "{\n  \"count\": 0,\n  \"findings\": []\n}\n"
	if buf.String() != want {
		t.Errorf("empty report = %q, want %q", buf.String(), want)
	}
}
