package analysis_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestJSONGolden pins the rcptlint -json output shape byte-for-byte so
// downstream tooling (CI annotators, editors) can depend on it. The
// fixture has one errdrop and one maporder violation; file names are
// rewritten relative to the module root so the golden file is stable
// across checkouts.
func TestJSONGolden(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("testdata/src/golden")
	if err != nil {
		t.Fatalf("Load golden fixture: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("golden fixture does not type-check: %v", terr)
		}
	}
	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatalf("golden fixture produced no findings")
	}
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, findings, loader.ModuleRoot); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	const goldenPath = "testdata/rcptlint.golden.json"
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s: %v (regenerate by writing the got output below)", goldenPath, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from %s.\ngot:\n%s\nwant:\n%s", goldenPath, buf.Bytes(), want)
	}
}

// TestSARIFGolden pins the rcptlint -sarif output byte-for-byte against
// the same golden fixture as the JSON test, so the code-scanning upload
// format cannot drift silently.
func TestSARIFGolden(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("testdata/src/golden")
	if err != nil {
		t.Fatalf("Load golden fixture: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Fatalf("golden fixture does not type-check: %v", terr)
		}
	}
	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) == 0 {
		t.Fatalf("golden fixture produced no findings")
	}
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, findings, analysis.All(), loader.ModuleRoot); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	const goldenPath = "testdata/rcptlint.golden.sarif"
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s: %v (regenerate by writing the got output below)", goldenPath, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from %s.\ngot:\n%s\nwant:\n%s", goldenPath, buf.Bytes(), want)
	}
}

// TestSARIFEmpty checks the clean-tree shape: rules still listed,
// results an empty (not null) array.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, nil, analysis.All(), ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"results": []`) {
		t.Errorf("empty SARIF lacks an empty results array:\n%s", out)
	}
	if !strings.Contains(out, `"id": "nondetflow"`) {
		t.Errorf("empty SARIF lacks the analyzer rule listing:\n%s", out)
	}
}

// TestJSONEmpty checks the clean-tree shape: count 0 and an empty (not
// null) findings array.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, nil, ""); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := "{\n  \"count\": 0,\n  \"findings\": []\n}\n"
	if buf.String() != want {
		t.Errorf("empty report = %q, want %q", buf.String(), want)
	}
}
