package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF output (-sarif) for code-scanning upload. The document is the
// minimal static-analysis interchange subset: one run, one driver, one
// reportingDescriptor per analyzer, one result per finding. Field order
// is fixed by the struct definitions and results arrive pre-sorted, so
// the bytes are deterministic and golden-testable.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// staleAllowDoc describes the synthetic staleallow rule emitted by
// -strict; it has no Analyzer in the registry, so the SARIF writer
// declares it explicitly whenever a finding references it.
const staleAllowDoc = "//rcpt:allow directives must suppress a live finding"

// WriteSARIF renders findings as a SARIF 2.1.0 log. analyzers defines
// the rule metadata (registry order); any finding naming an analyzer
// outside that set (staleallow) gets a rule appended on the fly. File
// names are rewritten relative to base when base is non-empty, matching
// WriteJSON, with %SRCROOT% as the uriBaseId so upload actions resolve
// them against the checkout root.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, base string) error {
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "rcptlint", Rules: []sarifRule{}}},
		Results: []sarifResult{},
	}
	ruleIndex := map[string]int{}
	addRule := func(id, doc string) int {
		if i, ok := ruleIndex[id]; ok {
			return i
		}
		ruleIndex[id] = len(run.Tool.Driver.Rules)
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: doc},
		})
		return ruleIndex[id]
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	for _, f := range findings {
		doc := f.Analyzer
		if f.Analyzer == "staleallow" {
			doc = staleAllowDoc
		}
		idx := addRule(f.Analyzer, doc)
		file := f.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, file); err == nil {
				file = filepath.ToSlash(rel)
			}
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       file,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{Schema: sarifSchema, Version: sarifVersion, Runs: []sarifRun{run}})
}
