package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/flow"
)

// ShardPure enforces table.ShardFold's "ORDER-FREE AGGREGATIONS ONLY"
// contract on the closures passed to the shard-parallel helpers
// (ShardFold, ShardFoldParts, ShardCollect):
//
//   - fold and merge closures must not accumulate floats into the
//     accumulator: float addition is not associative, so changing the
//     shard count (a pure performance knob) re-associates the sum and
//     changes artifact bits — the package contract points float folds
//     at FoldSeq. Covered spellings: acc.x += v, acc = acc + v,
//     accumulating return expressions, and accumulation hidden behind
//     a helper taking a *float64 (via the engine's FloatAccumParams
//     summaries);
//   - no closure may write to variables captured from the enclosing
//     scope: shards run concurrently, so escaping writes race and land
//     in completion order;
//   - no closure may draw ambient nondeterminism (time.Now, env,
//     global rand — the nondetflow source set): per-row values must be
//     functions of the row.
//
// ShardCollect's per-row fn keeps row order (results land by index),
// so float math there is legal; the capture and nondeterminism rules
// still apply.
var ShardPure = &Analyzer{
	Name: "shardpure",
	Doc:  "closures passed to table shard helpers must be order-insensitive and capture-free",
	Run:  runShardPure,
}

// closureRole describes what a closure argument is for, which decides
// where its accumulator parameters are.
type closureRole int

const (
	roleMap    closureRole = iota // per-row map: no accumulator
	roleNewAcc                    // constructor: no accumulator
	roleFold                      // fold(acc, row): acc is param 0
	roleMerge                     // merge(a, b): both params accumulate
)

// shardHelperRoles maps helper name -> arg index -> closure role.
var shardHelperRoles = map[string]map[int]closureRole{
	"ShardFold":      {2: roleNewAcc, 3: roleFold, 4: roleMerge},
	"ShardFoldParts": {2: roleFold},
	"ShardCollect":   {2: roleMap},
}

func runShardPure(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := flow.FuncOf(pass.Info, call)
			if fn == nil {
				return true
			}
			path, name := flow.PathAndName(fn)
			roles, isHelper := shardHelperRoles[name]
			if !isHelper || !strings.HasSuffix(path, "internal/table") {
				return true
			}
			for ai, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				role, known := roles[ai]
				if !known {
					role = roleMap
				}
				checkShardClosure(pass, name, lit, role)
			}
			return true
		})
	}
	return nil
}

// accumulatorVars returns the closure parameters that carry partial
// aggregates between calls, per the closure's role.
func accumulatorVars(pass *Pass, lit *ast.FuncLit, role closureRole) map[*types.Var]bool {
	acc := map[*types.Var]bool{}
	if role != roleFold && role != roleMerge {
		return acc
	}
	first := role == roleFold
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok {
				acc[v] = true
			}
		}
		if first {
			break // fold: only param 0 accumulates
		}
	}
	return acc
}

func checkShardClosure(pass *Pass, helper string, lit *ast.FuncLit, role closureRole) {
	lo, hi := lit.Pos(), lit.End()
	acc := accumulatorVars(pass, lit, role)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkShardAssign(pass, helper, n, lo, hi, acc)
		case *ast.IncDecStmt:
			// x++ / x-- are accumulation too: escaping targets race,
			// float accumulator targets re-associate.
			if v := outerPlainVar(pass, n.X, lo, hi); v != nil {
				pass.Reportf(n.Pos(),
					"%s closure writes captured variable %q; shards run concurrently, so escaping writes land in completion order",
					helper, v.Name())
			} else if root := lvalueRoot(pass, n.X); root != nil && acc[root] && isFloat(pass.Info.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), shardFloatMsg, helper)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkAccumReturn(pass, helper, res, acc)
			}
		case *ast.CallExpr:
			checkShardCall(pass, helper, n, acc)
		}
		return true
	})
}

const shardFloatMsg = "order-sensitive float accumulation in a %s closure; float folds re-associate across shard counts — use table.FoldSeq"

// checkShardAssign flags escaping writes (any type) and float
// accumulation into accumulator parameters.
func checkShardAssign(pass *Pass, helper string, as *ast.AssignStmt, lo, hi token.Pos, acc map[*types.Var]bool) {
	for i, lhs := range as.Lhs {
		if v := outerPlainVar(pass, lhs, lo, hi); v != nil && as.Tok != token.DEFINE {
			pass.Reportf(as.Pos(),
				"%s closure writes captured variable %q; shards run concurrently, so escaping writes land in completion order",
				helper, v.Name())
			continue
		}
		root := lvalueRoot(pass, lhs)
		if root == nil || !acc[root] || !isFloat(pass.Info.TypeOf(lhs)) {
			continue
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			pass.Reportf(as.Pos(), shardFloatMsg, helper)
		case token.ASSIGN:
			if i < len(as.Rhs) && mentionsVar(pass, as.Rhs[i], root) {
				pass.Reportf(as.Pos(), shardFloatMsg, helper)
			}
		}
	}
}

// checkAccumReturn flags float arithmetic combining an accumulator
// parameter anywhere inside a returned expression — `return a + r.V`
// and the struct spelling `return A{sum: a.sum + r.V}` alike.
func checkAccumReturn(pass *Pass, helper string, res ast.Expr, acc map[*types.Var]bool) {
	if len(acc) == 0 {
		return
	}
	ast.Inspect(res, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return true
		}
		if !isFloat(pass.Info.TypeOf(bin)) {
			return true
		}
		for v := range acc {
			if mentionsVar(pass, bin, v) {
				pass.Reportf(bin.Pos(), shardFloatMsg, helper)
				return false
			}
		}
		return true
	})
}

// checkShardCall flags ambient-nondeterminism sources and float
// accumulation hidden behind helpers taking a pointer into the
// accumulator.
func checkShardCall(pass *Pass, helper string, call *ast.CallExpr, acc map[*types.Var]bool) {
	fn := flow.FuncOf(pass.Info, call)
	if fn == nil {
		return
	}
	if desc, ok := nondetSource(fn, call); ok {
		pass.Reportf(call.Pos(),
			"%s closure calls %s; per-row values must be a function of the row, not ambient state", helper, desc)
		return
	}
	if len(acc) == 0 || pass.Flow == nil {
		return
	}
	for ai, arg := range call.Args {
		u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		root := lvalueRoot(pass, u.X)
		if root == nil || !acc[root] {
			continue
		}
		if pass.Flow.FloatAccumArg(pass.Info, call, ai) {
			pass.Reportf(arg.Pos(),
				"%s closure passes %s to a float-accumulating helper; the hidden += re-associates across shard counts — use table.FoldSeq",
				helper, types.ExprString(arg))
		}
	}
}

// lvalueRoot walks selectors/indexes/stars to the base variable of an
// lvalue, resolving either a use or a definition.
func lvalueRoot(pass *Pass, expr ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.Ident:
			if v := useObj(pass.Info, x); v != nil {
				return v
			}
			if v, ok := pass.Info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// mentionsVar reports whether expr references v.
func mentionsVar(pass *Pass, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && useObj(pass.Info, id) == v {
			found = true
		}
		return true
	})
	return found
}
