package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestLoadWholeModule loads and type-checks every package in the repo
// the way cmd/rcptlint does, proving the loader resolves module-internal
// and standard-library imports without the go tool.
func TestLoadWholeModule(t *testing.T) {
	loader, err := analysis.NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.ModulePath != "repro" {
		t.Fatalf("module path = %q, want repro", loader.ModulePath)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded %d packages, want >= 15 (repo has root, cmd/*, examples/*, internal/*)", len(pkgs))
	}
	byPath := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: unexpected type error: %v", p.PkgPath, terr)
		}
	}
	for _, want := range []string{"repro", "repro/internal/core", "repro/internal/rng", "repro/cmd/rcptlint"} {
		if byPath[want] == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	if core := byPath["repro/internal/core"]; core != nil {
		if core.Types == nil || core.Types.Name() != "core" {
			t.Errorf("core package not type-checked: %+v", core.Types)
		}
		if len(core.Files) == 0 {
			t.Errorf("core package has no files")
		}
	}
	// "..." expansion must not descend into fixture trees.
	for path := range byPath {
		if strings.Contains(path, "testdata") {
			t.Errorf("Load ./... picked up fixture package %s", path)
		}
	}
}

// TestLoadTypeError loads a deliberately broken fixture: the loader must
// return the package with diagnostics attached, not panic or refuse.
func TestLoadTypeError(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("testdata/src/broken")
	if err != nil {
		t.Fatalf("Load broken fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) == 0 {
		t.Fatalf("broken fixture produced no type errors")
	}
	found := false
	for _, terr := range pkg.TypeErrors {
		if strings.Contains(terr.Error(), "cannot use") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics %v do not mention the int/string mismatch", pkg.TypeErrors)
	}
}

// TestLoadBadPattern covers the not-a-directory error path.
func TestLoadBadPattern(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := loader.Load("./no/such/dir"); err == nil {
		t.Fatalf("Load of missing directory succeeded, want error")
	}
}

// TestLoadMemoized checks that two patterns resolving to one package
// yield one Package value, so analyzers never see duplicates.
func TestLoadMemoized(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("testdata/src/maporder", "testdata/src/maporder")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("duplicate pattern loaded %d packages, want 1", len(pkgs))
	}
}
